// Command ulint runs the project's invariant-checker suite — the five
// analyzers in internal/analysis — over the packages matched by its
// arguments (default ./...). It prints one line per finding,
//
//	file:line:col: message (analyzer)
//
// and exits nonzero when anything is flagged. Findings are suppressed
// per line with `//ulint:ignore <analyzer> <reason>` on the flagged
// line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/framework"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ulint [-list] [packages]\n\n"+
			"Runs the repro invariant-checker suite over the matched packages\n"+
			"(default ./...). Exits 1 when any invariant is violated.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := framework.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ulint: %v\n", err)
		os.Exit(2)
	}

	type finding struct {
		file      string
		line, col int
		msg       string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analysis.All() {
			diags, err := framework.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ulint: %v\n", err)
				os.Exit(2)
			}
			for _, d := range diags {
				p := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{
					file: p.Filename, line: p.Line, col: p.Column,
					msg: fmt.Sprintf("%s (%s)", d.Message, a.Name),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.col < b.col
	})
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: %s\n", f.file, f.line, f.col, f.msg)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
