// Command ubench reproduces the tables and figures of the U-tree paper's
// evaluation (Section 6). Each experiment prints the same rows/series the
// paper reports.
//
// Usage:
//
//	ubench -experiment all                    # everything, scaled down
//	ubench -experiment fig9 -scale 0.1        # one figure, 10% data scale
//	ubench -experiment table1 -scale 1        # paper-scale dataset sizes
//	ubench -experiment ablations
//	ubench -parallel -workers 8               # batch engine throughput sweep
//	ubench -experiment sharded -shards 4      # scatter-gather vs single tree
//	ubench -experiment pipeline -prefetch 8   # intra-query I/O pipelining sweep
//	ubench -experiment pipeline -json out.json  # machine-readable results
//	ubench -experiment writepath -group 32    # group-commit write-path sweep
//	ubench -parallel -query-timeout 5         # per-query deadlines; cancelled counts in -json rows
//	ubench -parallel -limit 8 -page-budget 32 -mc-samples 500   # per-query option knobs
//	ubench -experiment faultpath -short       # chaos-injection fault-tolerance check, CI size
//	ubench -experiment planner -json out.json # adaptive planning vs full fan-out
//
// Experiments: fig7, fig8, table1, fig9, fig10, fig11, ablations, parallel,
// sharded, pipeline, writepath, cpupath, faultpath, planner, all.
//
// -json writes the throughput experiments' structured rows (workload
// params, q/s, merged query stats) to a file, so perf trajectories can be
// recorded across revisions (BENCH_*.json).
//
// -cpuprofile and -memprofile write pprof profiles covering the experiment
// run (the heap profile is taken at exit), for digging into what -experiment
// cpupath summarizes.
// At -scale 1 the datasets match the paper (53k/62k/100k objects); smaller
// scales preserve the qualitative shapes at a fraction of the runtime.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
)

// jsonReport is the machine-readable output of -json: the workload
// parameters plus the structured rows of every throughput experiment that
// ran (each row carries q/s and the merged per-query stats).
type jsonReport struct {
	Experiment  string
	Scale       float64
	Queries     int
	Seed        int64
	IOLatencyMS float64
	GOMAXPROCS  int

	// Per-query option knobs (0 = off), echoed so a row's cancelled /
	// budget-exceeded counts can be interpreted.
	QueryTimeoutMS float64 `json:",omitempty"`
	QueryLimit     int     `json:",omitempty"`
	PageBudget     int     `json:",omitempty"`
	MCSamples      int     `json:",omitempty"`

	Parallel  []experiments.ParallelRow  `json:",omitempty"`
	Sharded   []experiments.ShardedRow   `json:",omitempty"`
	Pipeline  []experiments.PipelineRow  `json:",omitempty"`
	WritePath []experiments.WritePathRow `json:",omitempty"`
	CPUPath   []experiments.CPUPathRow   `json:",omitempty"`
	FaultPath []experiments.FaultPathRow `json:",omitempty"`
	Planner   []experiments.PlannerRow   `json:",omitempty"`
}

func main() {
	var (
		exp      = flag.String("experiment", "all", "fig7|fig8|table1|fig9|fig10|fig11|ablations|parallel|sharded|pipeline|writepath|cpupath|faultpath|planner|all")
		short    = flag.Bool("short", false, "shrink the dataset scale and query count for CI smoke runs")
		scale    = flag.Float64("scale", 0.05, "dataset scale (1.0 = paper size)")
		queries  = flag.Int("queries", 0, "queries per workload (0 = default)")
		samples  = flag.Int("mc", 0, "monte-carlo samples per probability (0 = default)")
		seed     = flag.Int64("seed", 42, "generator seed")
		parallel = flag.Bool("parallel", false, "run the batch query engine throughput sweep (alias for -experiment parallel)")
		workers  = flag.Int("workers", 2*runtime.GOMAXPROCS(0), "max worker fan-out for -parallel (sweeps 1,2,4,... up to this)")
		iolatMS  = flag.Float64("iolat", 2, "simulated per-page storage latency for -parallel, -experiment sharded and -experiment pipeline, milliseconds (0 disables; paper era model: 10)")
		shards   = flag.Int("shards", 4, "max shard count for -experiment sharded (sweeps 1,2,4,... up to this)")
		prefetch = flag.Int("prefetch", 8, "max intra-query prefetch fan-out for -experiment pipeline (sweeps 0,1,2,4,... up to this)")
		group    = flag.Int("group", 32, "max group-commit size for -experiment writepath (sweeps 1, max/4, max)")
		jsonPath = flag.String("json", "", "write machine-readable results of the throughput experiments to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile covering the experiment run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile taken after the experiment run to this file")

		// Per-query options of the context-first query API, applied to the
		// -experiment parallel measured batches (0 disables each).
		queryTimeoutMS = flag.Float64("query-timeout", 0, "per-query wall-time deadline for -experiment parallel, milliseconds; timed-out queries are counted as cancelled in the JSON rows")
		queryLimit     = flag.Int("limit", 0, "per-query top-N result cut (WithLimit) for -experiment parallel")
		pageBudget     = flag.Int("page-budget", 0, "per-query physical page-fetch budget (WithPageBudget) for -experiment parallel; exhausted queries are counted in the JSON rows")
		mcSamples      = flag.Int("mc-samples", 0, "per-query Monte Carlo sample override (WithMonteCarloSamples) for -experiment parallel")
	)
	flag.Parse()
	if *parallel {
		expSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "experiment" {
				expSet = true
			}
		})
		if expSet && *exp != "parallel" {
			fmt.Fprintf(os.Stderr, "-parallel conflicts with -experiment %s; use one or the other\n", *exp)
			os.Exit(2)
		}
		*exp = "parallel"
	}
	if (*parallel || *exp == "parallel" || *exp == "all") && *workers < 1 {
		fmt.Fprintf(os.Stderr, "-workers must be ≥ 1, got %d\n", *workers)
		os.Exit(2)
	}
	if (*exp == "sharded" || *exp == "all") && *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards must be ≥ 1, got %d\n", *shards)
		os.Exit(2)
	}
	if (*exp == "pipeline" || *exp == "all") && *prefetch < 0 {
		fmt.Fprintf(os.Stderr, "-prefetch must be ≥ 0, got %d\n", *prefetch)
		os.Exit(2)
	}
	if (*exp == "writepath" || *exp == "all") && *group < 1 {
		fmt.Fprintf(os.Stderr, "-group must be ≥ 1, got %d\n", *group)
		os.Exit(2)
	}

	if *queryTimeoutMS < 0 || *queryLimit < 0 || *pageBudget < 0 || *mcSamples < 0 {
		fmt.Fprintln(os.Stderr, "-query-timeout, -limit, -page-budget and -mc-samples must be ≥ 0")
		os.Exit(2)
	}

	if *short {
		if *scale > 0.02 {
			*scale = 0.02
		}
		if *queries == 0 {
			*queries = 16
		}
	}

	cfg := experiments.Config{
		Scale:           *scale,
		Queries:         *queries,
		MCSamples:       *samples,
		Seed:            *seed,
		IOLatency:       time.Duration(*iolatMS * float64(time.Millisecond)),
		Out:             os.Stdout,
		QueryTimeout:    time.Duration(*queryTimeoutMS * float64(time.Millisecond)),
		QueryLimit:      *queryLimit,
		QueryPageBudget: *pageBudget,
		QueryMCSamples:  *mcSamples,
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}

	run := func(name string, fn func() error) {
		start := time.Now()
		fmt.Printf("── %s ──────────────────────────────────────────\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			pprof.StopCPUProfile()
			os.Exit(1)
		}
		fmt.Printf("   (%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	all := *exp == "all"
	ran := false
	eff := cfg.WithDefaults()
	report := jsonReport{
		Experiment:     *exp,
		Scale:          eff.Scale,
		Queries:        eff.Queries,
		Seed:           eff.Seed,
		IOLatencyMS:    *iolatMS,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		QueryTimeoutMS: *queryTimeoutMS,
		QueryLimit:     *queryLimit,
		PageBudget:     *pageBudget,
		MCSamples:      *mcSamples,
	}
	if all || *exp == "fig7" {
		run("fig7", func() error { _, err := experiments.Fig7(cfg, nil); return err })
		ran = true
	}
	if all || *exp == "fig8" {
		run("fig8", func() error { _, err := experiments.Fig8(cfg, nil, nil); return err })
		ran = true
	}
	if all || *exp == "table1" {
		run("table1", func() error { _, err := experiments.Table1(cfg); return err })
		ran = true
	}
	if all || *exp == "fig9" {
		run("fig9", func() error { _, err := experiments.Fig9(cfg, nil); return err })
		ran = true
	}
	if all || *exp == "fig10" {
		run("fig10", func() error { _, err := experiments.Fig10(cfg, nil); return err })
		ran = true
	}
	if all || *exp == "fig11" {
		run("fig11", func() error { _, err := experiments.Fig11(cfg); return err })
		ran = true
	}
	if all || *exp == "parallel" {
		run("parallel", func() error {
			rows, err := experiments.ParallelBatch(cfg, sweepUpTo(*workers))
			report.Parallel = rows
			return err
		})
		ran = true
	}
	if all || *exp == "sharded" {
		run("sharded", func() error {
			rows, err := experiments.ShardedMixed(cfg, sweepUpTo(*shards))
			report.Sharded = rows
			return err
		})
		ran = true
	}
	if all || *exp == "pipeline" {
		run("pipeline", func() error {
			rows, err := experiments.PipelineSweep(cfg, append([]int{0}, sweepUpTo(*prefetch)...))
			report.Pipeline = rows
			return err
		})
		ran = true
	}
	if all || *exp == "writepath" {
		run("writepath", func() error {
			rows, err := experiments.WritePath(cfg, groupSweep(*group))
			report.WritePath = rows
			return err
		})
		ran = true
	}
	if all || *exp == "faultpath" {
		run("faultpath", func() error {
			rows, err := experiments.FaultPath(cfg)
			report.FaultPath = rows
			return err
		})
		ran = true
	}
	if all || *exp == "planner" {
		run("planner", func() error {
			rows, err := experiments.PlannerAdaptive(cfg)
			report.Planner = rows
			return err
		})
		ran = true
	}
	if all || *exp == "cpupath" {
		run("cpupath", func() error {
			rows, err := experiments.CPUPath(cfg)
			report.CPUPath = rows
			return err
		})
		ran = true
	}
	if all || *exp == "ablations" {
		run("ablation-split", func() error { _, err := experiments.AblationSplit(cfg); return err })
		run("ablation-reinsert", func() error { _, err := experiments.AblationReinsert(cfg); return err })
		run("ablation-catalog", func() error { _, err := experiments.AblationCatalog(cfg, nil); return err })
		run("ablation-cfb", func() error { _, err := experiments.AblationCFB(cfg); return err })
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, report); err != nil {
			fmt.Fprintf(os.Stderr, "writing -json %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	pprof.StopCPUProfile() // no-op when -cpuprofile is off
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // materialize the final live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}

// writeJSON persists the structured report for the perf trajectory.
func writeJSON(path string, report jsonReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// groupSweep builds the group-commit sweep {1, max/4, max}, deduplicated
// and ordered — the per-op baseline, a mid point, and the target size.
func groupSweep(max int) []int {
	vs := []int{1}
	if mid := max / 4; mid > 1 && mid < max {
		vs = append(vs, mid)
	}
	if max > 1 {
		vs = append(vs, max)
	}
	return vs
}

// sweepUpTo builds the doubling sweep 1, 2, 4, … capped at max, always
// ending on max itself (shared by the -workers and -shards sweeps).
func sweepUpTo(max int) []int {
	var vs []int
	for v := 1; v <= max; v *= 2 {
		vs = append(vs, v)
	}
	if len(vs) > 0 && vs[len(vs)-1] != max {
		vs = append(vs, max)
	}
	return vs
}
