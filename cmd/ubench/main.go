// Command ubench reproduces the tables and figures of the U-tree paper's
// evaluation (Section 6). Each experiment prints the same rows/series the
// paper reports.
//
// Usage:
//
//	ubench -experiment all                    # everything, scaled down
//	ubench -experiment fig9 -scale 0.1        # one figure, 10% data scale
//	ubench -experiment table1 -scale 1        # paper-scale dataset sizes
//	ubench -experiment ablations
//	ubench -parallel -workers 8               # batch engine throughput sweep
//	ubench -experiment sharded -shards 4      # scatter-gather vs single tree
//
// Experiments: fig7, fig8, table1, fig9, fig10, fig11, ablations, parallel,
// sharded, all.
// At -scale 1 the datasets match the paper (53k/62k/100k objects); smaller
// scales preserve the qualitative shapes at a fraction of the runtime.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("experiment", "all", "fig7|fig8|table1|fig9|fig10|fig11|ablations|parallel|all")
		scale    = flag.Float64("scale", 0.05, "dataset scale (1.0 = paper size)")
		queries  = flag.Int("queries", 0, "queries per workload (0 = default)")
		samples  = flag.Int("mc", 0, "monte-carlo samples per probability (0 = default)")
		seed     = flag.Int64("seed", 42, "generator seed")
		parallel = flag.Bool("parallel", false, "run the batch query engine throughput sweep (alias for -experiment parallel)")
		workers  = flag.Int("workers", 2*runtime.GOMAXPROCS(0), "max worker fan-out for -parallel (sweeps 1,2,4,... up to this)")
		iolatMS  = flag.Float64("iolat", 2, "simulated per-page storage latency for -parallel and -experiment sharded, milliseconds (0 disables; paper era model: 10)")
		shards   = flag.Int("shards", 4, "max shard count for -experiment sharded (sweeps 1,2,4,... up to this)")
	)
	flag.Parse()
	if *parallel {
		expSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "experiment" {
				expSet = true
			}
		})
		if expSet && *exp != "parallel" {
			fmt.Fprintf(os.Stderr, "-parallel conflicts with -experiment %s; use one or the other\n", *exp)
			os.Exit(2)
		}
		*exp = "parallel"
	}
	if (*parallel || *exp == "parallel" || *exp == "all") && *workers < 1 {
		fmt.Fprintf(os.Stderr, "-workers must be ≥ 1, got %d\n", *workers)
		os.Exit(2)
	}
	if (*exp == "sharded" || *exp == "all") && *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards must be ≥ 1, got %d\n", *shards)
		os.Exit(2)
	}

	cfg := experiments.Config{
		Scale:     *scale,
		Queries:   *queries,
		MCSamples: *samples,
		Seed:      *seed,
		IOLatency: time.Duration(*iolatMS * float64(time.Millisecond)),
		Out:       os.Stdout,
	}

	run := func(name string, fn func() error) {
		start := time.Now()
		fmt.Printf("── %s ──────────────────────────────────────────\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("   (%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	all := *exp == "all"
	ran := false
	if all || *exp == "fig7" {
		run("fig7", func() error { _, err := experiments.Fig7(cfg, nil); return err })
		ran = true
	}
	if all || *exp == "fig8" {
		run("fig8", func() error { _, err := experiments.Fig8(cfg, nil, nil); return err })
		ran = true
	}
	if all || *exp == "table1" {
		run("table1", func() error { _, err := experiments.Table1(cfg); return err })
		ran = true
	}
	if all || *exp == "fig9" {
		run("fig9", func() error { _, err := experiments.Fig9(cfg, nil); return err })
		ran = true
	}
	if all || *exp == "fig10" {
		run("fig10", func() error { _, err := experiments.Fig10(cfg, nil); return err })
		ran = true
	}
	if all || *exp == "fig11" {
		run("fig11", func() error { _, err := experiments.Fig11(cfg); return err })
		ran = true
	}
	if all || *exp == "parallel" {
		run("parallel", func() error {
			_, err := experiments.ParallelBatch(cfg, sweepUpTo(*workers))
			return err
		})
		ran = true
	}
	if all || *exp == "sharded" {
		run("sharded", func() error {
			_, err := experiments.ShardedMixed(cfg, sweepUpTo(*shards))
			return err
		})
		ran = true
	}
	if all || *exp == "ablations" {
		run("ablation-split", func() error { _, err := experiments.AblationSplit(cfg); return err })
		run("ablation-reinsert", func() error { _, err := experiments.AblationReinsert(cfg); return err })
		run("ablation-catalog", func() error { _, err := experiments.AblationCatalog(cfg, nil); return err })
		run("ablation-cfb", func() error { _, err := experiments.AblationCFB(cfg); return err })
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// sweepUpTo builds the doubling sweep 1, 2, 4, … capped at max, always
// ending on max itself (shared by the -workers and -shards sweeps).
func sweepUpTo(max int) []int {
	var vs []int
	for v := 1; v <= max; v *= 2 {
		vs = append(vs, v)
	}
	if len(vs) > 0 && vs[len(vs)-1] != max {
		vs = append(vs, max)
	}
	return vs
}
