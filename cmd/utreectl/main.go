// Command utreectl builds, inspects, verifies and queries file-backed
// U-tree indexes.
//
//	utreectl build  -index /tmp/lb.utree -dataset LB -scale 0.05
//	utreectl stats  -index /tmp/lb.utree
//	utreectl verify -index /tmp/lb.utree
//	utreectl query  -index /tmp/lb.utree -rect 1000,1000,2000,2000 -prob 0.7
//	utreectl nn     -index /tmp/lb.utree -point 5000,5000 -k 5
//
// Every subcommand accepts -buffer (page-cache size in pages) and -latency
// (simulated per-page storage delay, milliseconds) to exercise the index
// under the paper's disk-era cost model — e.g. `utreectl query -latency 10
// -buffer 32 ...` reports wall times dominated by the charged page I/O.
// -prefetch N arms intra-query I/O pipelining: up to N of one query's page
// fetches proceed concurrently (results are identical; only wall time
// changes), e.g. `utreectl query -latency 10 -prefetch 8 ...`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/uncertain"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		index    = fs.String("index", "", "index file path (required)")
		ds       = fs.String("dataset", "LB", "dataset for build: LB|CA|Aircraft")
		scale    = fs.Float64("scale", 0.05, "dataset scale for build")
		rect     = fs.String("rect", "", "query rectangle lo1,lo2[,lo3],hi1,hi2[,hi3]")
		prob     = fs.Float64("prob", 0.5, "query probability threshold")
		point    = fs.String("point", "", "query point for nn: x1,x2[,x3]")
		k        = fs.Int("k", 5, "neighbor count for nn")
		upcr     = fs.Bool("upcr", false, "build the U-PCR variant instead")
		buffer   = fs.Int("buffer", 0, "buffer pool size in pages (0 = default 256)")
		latency  = fs.Float64("latency", 0, "simulated per-page storage latency, milliseconds (0 disables; paper era model: 10)")
		prefetch = fs.Int("prefetch", 0, "intra-query prefetch fan-out: concurrent page fetches one query may have in flight (0 disables)")
	)
	fs.Parse(os.Args[2:])
	if *index == "" {
		fmt.Fprintln(os.Stderr, "missing -index")
		usage()
	}
	if *buffer < 0 || *latency < 0 || *prefetch < 0 {
		fmt.Fprintln(os.Stderr, "-buffer, -latency and -prefetch must be ≥ 0")
		usage()
	}
	cfg := uncertain.Config{
		BufferPages:          *buffer,
		SimulatedPageLatency: time.Duration(*latency * float64(time.Millisecond)),
		PrefetchWorkers:      *prefetch,
	}

	var err error
	switch cmd {
	case "build":
		err = build(*index, dataset.Name(*ds), *scale, *upcr, cfg)
	case "stats":
		err = stats(*index, cfg)
	case "verify":
		err = verify(*index, cfg)
	case "query":
		err = query(*index, *rect, *prob, cfg)
	case "nn":
		err = nearest(*index, *point, *k, cfg)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "utreectl %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: utreectl build|stats|verify|query|nn -index PATH [flags]")
	os.Exit(2)
}

func build(path string, name dataset.Name, scale float64, upcr bool, cfg uncertain.Config) error {
	objs := dataset.Generate(dataset.Config{Name: name, Scale: scale})
	cfg.Dimensions = name.Dim()
	cfg.Path = path
	cfg.UPCR = upcr
	tree, err := uncertain.NewTree(cfg)
	if err != nil {
		return err
	}
	start := time.Now()
	for _, o := range objs {
		if err := tree.Insert(o.ID, o.PDF); err != nil {
			tree.Close()
			return err
		}
	}
	elapsed := time.Since(start)
	if err := tree.Close(); err != nil {
		return err
	}
	fmt.Printf("built %s over %s (%d objects) in %v → %s\n",
		kindName(upcr), name, len(objs), elapsed.Round(time.Millisecond), path)
	return nil
}

func kindName(upcr bool) string {
	if upcr {
		return "U-PCR"
	}
	return "U-tree"
}

func stats(path string, cfg uncertain.Config) error {
	tree, err := uncertain.OpenTree(path, cfg)
	if err != nil {
		return err
	}
	defer tree.Close()
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("objects:   %d\n", tree.Len())
	fmt.Printf("height:    %d levels\n", tree.Height())
	fmt.Printf("file size: %d bytes\n", fi.Size())
	return nil
}

func verify(path string, cfg uncertain.Config) error {
	tree, err := uncertain.OpenTree(path, cfg)
	if err != nil {
		return err
	}
	defer tree.Close()
	if err := tree.CheckInvariants(); err != nil {
		return err
	}
	fmt.Println("ok: all structural and containment invariants hold")
	return nil
}

func query(path, rectSpec string, prob float64, cfg uncertain.Config) error {
	if rectSpec == "" {
		return fmt.Errorf("missing -rect")
	}
	parts := strings.Split(rectSpec, ",")
	if len(parts)%2 != 0 {
		return fmt.Errorf("rect needs an even number of coordinates, got %d", len(parts))
	}
	d := len(parts) / 2
	coords := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return fmt.Errorf("coordinate %d: %w", i, err)
		}
		coords[i] = v
	}
	rq := geom.NewRect(coords[:d], coords[d:])

	tree, err := uncertain.OpenTree(path, cfg)
	if err != nil {
		return err
	}
	defer tree.Close()
	start := time.Now()
	results, s, err := tree.Search(rq, prob)
	if err != nil {
		return err
	}
	fmt.Printf("%d results in %v (node accesses %d, prob computations %d, validated %d, refinement IOs %d)\n",
		len(results), time.Since(start).Round(time.Microsecond),
		s.NodeAccesses, s.ProbComputations, s.Validated, s.RefinementIOs)
	if s.PrefetchIssued > 0 {
		fmt.Printf("prefetch: %d issued, %d coalesced, %d wasted\n",
			s.PrefetchIssued, s.PrefetchCoalesced, s.PrefetchWasted)
	}
	for i, r := range results {
		if i == 20 {
			fmt.Printf("  … %d more\n", len(results)-20)
			break
		}
		if r.Validated {
			fmt.Printf("  object %d (validated without probability computation)\n", r.ID)
		} else {
			fmt.Printf("  object %d (P_app = %.4f)\n", r.ID, r.Prob)
		}
	}
	return nil
}

func nearest(path, pointSpec string, k int, cfg uncertain.Config) error {
	if pointSpec == "" {
		return fmt.Errorf("missing -point")
	}
	parts := strings.Split(pointSpec, ",")
	q := make(geom.Point, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return fmt.Errorf("coordinate %d: %w", i, err)
		}
		q[i] = v
	}
	tree, err := uncertain.OpenTree(path, cfg)
	if err != nil {
		return err
	}
	defer tree.Close()
	start := time.Now()
	nns, s, err := tree.NearestNeighbors(q, k)
	if err != nil {
		return err
	}
	fmt.Printf("%d nearest neighbors of %v in %v (node accesses %d, distance computations %d)\n",
		len(nns), q, time.Since(start).Round(time.Microsecond), s.NodeAccesses, s.DistanceComps)
	for rank, n := range nns {
		fmt.Printf("  #%d object %d  E[dist] = %.2f\n", rank+1, n.ID, n.ExpectedDist)
	}
	return nil
}
