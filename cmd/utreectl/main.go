// Command utreectl builds, inspects, verifies and queries file-backed
// U-tree indexes.
//
//	utreectl build  -index /tmp/lb.utree -dataset LB -scale 0.05
//	utreectl stats  -index /tmp/lb.utree
//	utreectl verify -index /tmp/lb.utree
//	utreectl query  -index /tmp/lb.utree -rect 1000,1000,2000,2000 -prob 0.7
//	utreectl nn     -index /tmp/lb.utree -point 5000,5000 -k 5
//	utreectl migrate -index /tmp/old.utree -out /tmp/new.utree
//
// migrate rewrites an index file into the current checksummed page format
// (v2): every page gains a CRC32-C trailer verified on each read. A v1
// (pre-checksum) source is upgraded; a v2 source is re-verified and
// resealed — a corrupt source page fails the migration rather than being
// laundered into a fresh checksum. stats reports storage health alongside
// structure: retry counts, quarantined pages and scrubber progress.
//
// Every subcommand accepts -buffer (page-cache size in pages) and -latency
// (simulated per-page storage delay, milliseconds) to exercise the index
// under the paper's disk-era cost model — e.g. `utreectl query -latency 10
// -buffer 32 ...` reports wall times dominated by the charged page I/O.
// -prefetch N arms intra-query I/O pipelining: up to N of one query's page
// fetches proceed concurrently (results are identical; only wall time
// changes), e.g. `utreectl query -latency 10 -prefetch 8 ...`.
// -adaptive turns on cost-model-driven planning for the session: queries
// pick their prefetch fan-out from predicted I/O and arm the
// probability-bound filter (results stay identical); query prints the
// planner's prediction next to the measured accesses, and stats reports
// the planner's lifetime diagnostics.
//
// query and nn additionally take the per-query options of the
// context-first API: -timeout (wall-time deadline, ms; a timed-out query
// reports its partial results), -mc-samples (Monte Carlo refinement
// samples), -limit (top-N early cut) and -page-budget (max physical page
// fetches; an exhausted budget reports the partial results found within
// it), e.g. `utreectl query -latency 10 -page-budget 32 ...`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/pagefile"
	"repro/uncertain"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		index    = fs.String("index", "", "index file path (required)")
		ds       = fs.String("dataset", "LB", "dataset for build: LB|CA|Aircraft")
		scale    = fs.Float64("scale", 0.05, "dataset scale for build")
		rect     = fs.String("rect", "", "query rectangle lo1,lo2[,lo3],hi1,hi2[,hi3]")
		prob     = fs.Float64("prob", 0.5, "query probability threshold")
		point    = fs.String("point", "", "query point for nn: x1,x2[,x3]")
		k        = fs.Int("k", 5, "neighbor count for nn")
		upcr     = fs.Bool("upcr", false, "build the U-PCR variant instead")
		outPath  = fs.String("out", "", "destination file for migrate (required by migrate)")
		buffer   = fs.Int("buffer", 0, "buffer pool size in pages (0 = default 256)")
		latency  = fs.Float64("latency", 0, "simulated per-page storage latency, milliseconds (0 disables; paper era model: 10)")
		prefetch = fs.Int("prefetch", 0, "intra-query prefetch fan-out: concurrent page fetches one query may have in flight (0 disables)")
		adaptive = fs.Bool("adaptive", false, "enable cost-model-driven adaptive planning and the probability-bound filter for this session")

		// Per-query options for query and nn.
		timeoutMS  = fs.Float64("timeout", 0, "per-query wall-time deadline, milliseconds (0 = none); a timed-out query prints its partial results")
		mcSamples  = fs.Int("mc-samples", 0, "Monte Carlo refinement samples for this query (0 = index default)")
		limit      = fs.Int("limit", 0, "stop after this many results (top-N early cut; 0 = unlimited)")
		pageBudget = fs.Int("page-budget", 0, "max physical page fetches for this query (0 = unlimited); an exhausted budget prints the partial results")
	)
	fs.Parse(os.Args[2:])
	if *index == "" {
		fmt.Fprintln(os.Stderr, "missing -index")
		usage()
	}
	if *buffer < 0 || *latency < 0 || *prefetch < 0 {
		fmt.Fprintln(os.Stderr, "-buffer, -latency and -prefetch must be ≥ 0")
		usage()
	}
	if *timeoutMS < 0 || *mcSamples < 0 || *limit < 0 || *pageBudget < 0 {
		fmt.Fprintln(os.Stderr, "-timeout, -mc-samples, -limit and -page-budget must be ≥ 0")
		usage()
	}
	cfg := uncertain.Config{
		BufferPages:          *buffer,
		SimulatedPageLatency: time.Duration(*latency * float64(time.Millisecond)),
		PrefetchWorkers:      *prefetch,
		AdaptivePlanning:     *adaptive,
		ProbFilter:           *adaptive,
	}
	q := queryParams{
		timeout:    time.Duration(*timeoutMS * float64(time.Millisecond)),
		mcSamples:  *mcSamples,
		limit:      *limit,
		pageBudget: *pageBudget,
	}

	var err error
	switch cmd {
	case "build":
		err = build(*index, dataset.Name(*ds), *scale, *upcr, cfg)
	case "stats":
		err = stats(*index, cfg)
	case "verify":
		err = verify(*index, cfg)
	case "query":
		err = query(*index, *rect, *prob, cfg, q)
	case "nn":
		err = nearest(*index, *point, *k, cfg, q)
	case "migrate":
		err = migrate(*index, *outPath)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "utreectl %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

// queryParams carries the per-query option flags of query and nn.
type queryParams struct {
	timeout    time.Duration
	mcSamples  int
	limit      int
	pageBudget int
}

// context builds the query context (with deadline when -timeout is set)
// and the option list.
func (p queryParams) context() (context.Context, context.CancelFunc, []uncertain.QueryOption) {
	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if p.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, p.timeout)
	}
	var opts []uncertain.QueryOption
	if p.mcSamples > 0 {
		opts = append(opts, uncertain.WithMonteCarloSamples(p.mcSamples))
	}
	if p.limit > 0 {
		opts = append(opts, uncertain.WithLimit(p.limit))
	}
	if p.pageBudget > 0 {
		opts = append(opts, uncertain.WithPageBudget(p.pageBudget))
	}
	return ctx, cancel, opts
}

// explainPartial reports an expected early stop (deadline, cancellation,
// page budget) as a notice and returns nil so the partial results print;
// any other error is returned as-is.
func explainPartial(err error, elapsed time.Duration, budget int) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, uncertain.ErrBudgetExceeded):
		fmt.Printf("page budget of %d exhausted after %v; partial results follow\n", budget, elapsed.Round(time.Microsecond))
		return nil
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		fmt.Printf("query cancelled after %v (%v); partial results follow\n", elapsed.Round(time.Microsecond), err)
		return nil
	default:
		return err
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: utreectl build|stats|verify|query|nn|migrate -index PATH [flags]")
	os.Exit(2)
}

func build(path string, name dataset.Name, scale float64, upcr bool, cfg uncertain.Config) error {
	objs := dataset.Generate(dataset.Config{Name: name, Scale: scale})
	cfg.Dimensions = name.Dim()
	cfg.Path = path
	cfg.UPCR = upcr
	tree, err := uncertain.NewTree(cfg)
	if err != nil {
		return err
	}
	start := time.Now()
	for _, o := range objs {
		if err := tree.Insert(o.ID, o.PDF); err != nil {
			tree.Close()
			return err
		}
	}
	elapsed := time.Since(start)
	if err := tree.Close(); err != nil {
		return err
	}
	fmt.Printf("built %s over %s (%d objects) in %v → %s\n",
		kindName(upcr), name, len(objs), elapsed.Round(time.Millisecond), path)
	return nil
}

func kindName(upcr bool) string {
	if upcr {
		return "U-PCR"
	}
	return "U-tree"
}

func stats(path string, cfg uncertain.Config) error {
	tree, err := uncertain.OpenTree(path, cfg)
	if err != nil {
		return err
	}
	defer tree.Close()
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("objects:   %d\n", tree.Len())
	fmt.Printf("height:    %d levels\n", tree.Height())
	fmt.Printf("file size: %d bytes\n", fi.Size())
	gc := tree.GCInfo()
	fmt.Printf("epoch:     %d (%d snapshot pins)\n", gc.Epoch, gc.Pins)
	fmt.Printf("gc:        pending %d epochs / %d pages / %d tombstones; reclaimed %d pages, %d tombstones lifetime\n",
		gc.PendingEpochs, gc.PendingPages, gc.PendingTombstones,
		gc.ReclaimedPages, gc.ReclaimedTombstones)
	if gc.ReclaimerRunning {
		fmt.Printf("reclaimer: running in background\n")
	}
	nh, nm := tree.NodeCacheStats()
	if lookups := nh + nm; lookups > 0 {
		fmt.Printf("node cache: %.1f%% hit rate (%d hits / %d lookups)\n",
			100*float64(nh)/float64(lookups), nh, lookups)
	} else {
		fmt.Printf("node cache: no lookups\n")
	}
	h := tree.Health()
	fmt.Printf("health:    %d quarantined pages, %d transient-fault retries; scrubbed %d pages (%d corrupt)\n",
		h.QuarantinedPages, h.Retries, h.ScrubbedPages, h.ScrubErrors)
	for _, qp := range h.Quarantined {
		fmt.Printf("  quarantined page %d (epoch %d): %s\n", qp.Page, qp.Epoch, qp.Cause)
	}
	if info := tree.PlannerInfo(); info.Enabled {
		fmt.Printf("planner:   %d model rebuilds, %d queries planned; predicted/measured io %.0f/%.0f (calibration %.3f)\n",
			info.ModelRebuilds, info.Queries,
			info.PredictedAccesses, info.MeasuredAccesses, info.CalibrationFactor)
	} else {
		fmt.Printf("planner:   off (-adaptive enables cost-model-driven planning)\n")
	}
	return nil
}

// migrate rewrites the index file at src into the checksummed v2 page
// format at dst. The source is never modified; a corrupt v2 source page
// aborts the migration.
func migrate(src, dst string) error {
	if dst == "" {
		return fmt.Errorf("missing -out")
	}
	s, err := pagefile.OpenFileStore(src)
	if err != nil {
		return err
	}
	from, pages := s.Version(), s.NumPages()
	if err := s.Close(); err != nil {
		return err
	}
	start := time.Now()
	if err := pagefile.MigrateFileStore(src, dst); err != nil {
		return err
	}
	fmt.Printf("migrated %s (format v%d, %d pages) → %s (format v2, CRC32-C page trailers) in %v\n",
		src, from, pages, dst, time.Since(start).Round(time.Millisecond))
	return nil
}

func verify(path string, cfg uncertain.Config) error {
	tree, err := uncertain.OpenTree(path, cfg)
	if err != nil {
		return err
	}
	defer tree.Close()
	if err := tree.CheckInvariants(); err != nil {
		return err
	}
	fmt.Println("ok: all structural and containment invariants hold")
	return nil
}

func query(path, rectSpec string, prob float64, cfg uncertain.Config, qp queryParams) error {
	if rectSpec == "" {
		return fmt.Errorf("missing -rect")
	}
	parts := strings.Split(rectSpec, ",")
	if len(parts)%2 != 0 {
		return fmt.Errorf("rect needs an even number of coordinates, got %d", len(parts))
	}
	d := len(parts) / 2
	coords := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return fmt.Errorf("coordinate %d: %w", i, err)
		}
		coords[i] = v
	}
	rq := geom.NewRect(coords[:d], coords[d:])

	tree, err := uncertain.OpenTree(path, cfg)
	if err != nil {
		return err
	}
	defer tree.Close()
	ctx, cancel, opts := qp.context()
	defer cancel()
	start := time.Now()
	results, s, err := tree.Search(ctx, rq, prob, opts...)
	if err := explainPartial(err, time.Since(start), qp.pageBudget); err != nil {
		return err
	}
	fmt.Printf("%d results in %v (node accesses %d, prob computations %d, validated %d, refinement IOs %d)\n",
		len(results), time.Since(start).Round(time.Microsecond),
		s.NodeAccesses, s.ProbComputations, s.Validated, s.RefinementIOs)
	if s.PagesFetched > 0 {
		fmt.Printf("physical page fetches: %d (budget %d)\n", s.PagesFetched, qp.pageBudget)
	}
	if s.PrefetchIssued > 0 {
		fmt.Printf("prefetch: %d issued, %d coalesced, %d wasted\n",
			s.PrefetchIssued, s.PrefetchCoalesced, s.PrefetchWasted)
	}
	if s.ProbFilterPruned > 0 {
		fmt.Printf("prob filter: %d candidates pruned before refinement\n", s.ProbFilterPruned)
	}
	if info := tree.PlannerInfo(); info.Enabled && info.Queries > 0 {
		fmt.Printf("planner: predicted %.1f node accesses, measured %d (calibration %.3f)\n",
			info.PredictedAccesses, s.NodeAccesses, info.CalibrationFactor)
	}
	for i, r := range results {
		if i == 20 {
			fmt.Printf("  … %d more\n", len(results)-20)
			break
		}
		if r.Validated {
			fmt.Printf("  object %d (validated without probability computation)\n", r.ID)
		} else {
			fmt.Printf("  object %d (P_app = %.4f)\n", r.ID, r.Prob)
		}
	}
	return nil
}

func nearest(path, pointSpec string, k int, cfg uncertain.Config, qp queryParams) error {
	if pointSpec == "" {
		return fmt.Errorf("missing -point")
	}
	parts := strings.Split(pointSpec, ",")
	q := make(geom.Point, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return fmt.Errorf("coordinate %d: %w", i, err)
		}
		q[i] = v
	}
	tree, err := uncertain.OpenTree(path, cfg)
	if err != nil {
		return err
	}
	defer tree.Close()
	ctx, cancel, opts := qp.context()
	defer cancel()
	start := time.Now()
	nns, s, err := tree.NearestNeighbors(ctx, q, k, opts...)
	if err := explainPartial(err, time.Since(start), qp.pageBudget); err != nil {
		return err
	}
	fmt.Printf("%d nearest neighbors of %v in %v (node accesses %d, distance computations %d)\n",
		len(nns), q, time.Since(start).Round(time.Microsecond), s.NodeAccesses, s.DistanceComps)
	for rank, n := range nns {
		fmt.Printf("  #%d object %d  E[dist] = %.2f\n", rank+1, n.ID, n.ExpectedDist)
	}
	return nil
}
