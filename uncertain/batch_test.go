package uncertain

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// Tests of the group-commit write path: size/age auto-grouping, the
// explicit WriteBatch epoch, snapshot isolation across a batch boundary,
// rollback of grouped mutations, per-shard batches, and the background
// reclaimer's pin safety under -race.

func batchPDF(rng *rand.Rand) PDF {
	return UniformCircle(Pt(rng.Float64()*1000, rng.Float64()*1000), 10)
}

func TestGroupCommitSizeThreshold(t *testing.T) {
	tree, err := NewTree(Config{Dimensions: 2, ExactRefinement: true, GroupCommitOps: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	rng := rand.New(rand.NewSource(1))
	epoch0 := tree.Epoch()

	for i := int64(0); i < 7; i++ {
		if err := tree.Insert(i, batchPDF(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if got := tree.inner.CommittedLen(); got != 0 {
		t.Fatalf("7 grouped inserts already visible: CommittedLen=%d, want 0", got)
	}
	if tree.Epoch() != epoch0 {
		t.Fatalf("epoch advanced mid-group: %d -> %d", epoch0, tree.Epoch())
	}
	// The 8th op reaches GroupCommitOps and publishes the whole group.
	if err := tree.Insert(7, batchPDF(rng)); err != nil {
		t.Fatal(err)
	}
	if got := tree.inner.CommittedLen(); got != 8 {
		t.Fatalf("after group commit: CommittedLen=%d, want 8", got)
	}
	if tree.Epoch() != epoch0+1 {
		t.Fatalf("group committed %d epochs, want exactly 1", tree.Epoch()-epoch0)
	}
}

func TestGroupCommitAgeDeadline(t *testing.T) {
	tree, err := NewTree(Config{Dimensions: 2, ExactRefinement: true, GroupCommitInterval: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	rng := rand.New(rand.NewSource(2))

	if err := tree.Insert(1, batchPDF(rng)); err != nil {
		t.Fatal(err)
	}
	if got := tree.inner.CommittedLen(); got != 0 {
		t.Fatalf("young group already committed: CommittedLen=%d", got)
	}
	time.Sleep(50 * time.Millisecond)
	// A bare Tree checks the deadline at the next mutation: this op finds
	// the group over age and seals it (itself included).
	if err := tree.Insert(2, batchPDF(rng)); err != nil {
		t.Fatal(err)
	}
	if got := tree.inner.CommittedLen(); got != 2 {
		t.Fatalf("aged group not committed at next op: CommittedLen=%d, want 2", got)
	}
}

func TestConcurrentGroupTimerSealsIdleTail(t *testing.T) {
	c, err := NewConcurrentTree(Config{Dimensions: 2, ExactRefinement: true,
		GroupCommitOps: 100, GroupCommitInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(3))
	for i := int64(0); i < 3; i++ {
		if err := c.Insert(i, batchPDF(rng)); err != nil {
			t.Fatal(err)
		}
	}
	// No further mutations arrive; only the deadline timer can seal the
	// 3-op tail.
	deadline := time.Now().Add(2 * time.Second)
	for c.Len() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("idle group tail not sealed by timer: Len=%d, want 3", c.Len())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestWriteBatchSnapshotIsolation(t *testing.T) {
	c, err := NewConcurrentTree(Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(4))
	for i := int64(0); i < 2; i++ {
		if err := c.Insert(i, batchPDF(rng)); err != nil {
			t.Fatal(err)
		}
	}

	midBatch := make(chan struct{})
	readerDone := make(chan error, 1)
	go func() {
		<-midBatch
		// Mid-batch, lock-free readers must see exactly the pre-batch
		// epoch: 2 objects, valid structure.
		snap := c.Snapshot()
		defer snap.Close()
		if n := snap.Len(); n != 2 {
			readerDone <- fmt.Errorf("mid-batch snapshot Len=%d, want 2 (saw a batch prefix)", n)
			return
		}
		if n := c.Len(); n != 2 {
			readerDone <- fmt.Errorf("mid-batch Len=%d, want 2", n)
			return
		}
		readerDone <- snap.CheckInvariants()
	}()

	err = c.WriteBatch(func(w BatchWriter) error {
		for i := int64(10); i < 15; i++ {
			if err := w.Insert(i, batchPDF(rng)); err != nil {
				return err
			}
		}
		if err := w.Delete(0); err != nil {
			return err
		}
		close(midBatch)
		return <-readerDone // reader asserts while the batch is open
	})
	if err != nil {
		t.Fatalf("WriteBatch: %v", err)
	}
	if n := c.Len(); n != 6 {
		t.Fatalf("post-batch Len=%d, want 6 (2 - 1 + 5)", n)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBatchRollback(t *testing.T) {
	tree, err := NewTree(Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	rng := rand.New(rand.NewSource(5))
	if err := tree.Insert(1, batchPDF(rng)); err != nil {
		t.Fatal(err)
	}
	epoch0 := tree.Epoch()

	boom := errors.New("boom")
	err = tree.WriteBatch(func(w BatchWriter) error {
		for i := int64(20); i < 23; i++ {
			if err := w.Insert(i, batchPDF(rng)); err != nil {
				return err
			}
		}
		if err := w.Delete(1); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("WriteBatch error = %v, want %v", err, boom)
	}
	if tree.Epoch() != epoch0 {
		t.Fatalf("failed batch advanced the epoch: %d -> %d", epoch0, tree.Epoch())
	}
	if n := tree.Len(); n != 1 {
		t.Fatalf("failed batch left Len=%d, want 1", n)
	}
	// The pdfs bookkeeping must roll back with the index: id 1 is still
	// deletable by bare ID, the batch's inserts are not.
	if err := tree.Delete(20); err == nil {
		t.Fatal("rolled-back insert still tracked in pdfs map")
	}
	if err := tree.Delete(1); err != nil {
		t.Fatalf("pre-batch object lost its pdfs tracking: %v", err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Batches do not nest.
	err = tree.WriteBatch(func(BatchWriter) error {
		return tree.WriteBatch(func(BatchWriter) error { return nil })
	})
	if err == nil {
		t.Fatal("nested WriteBatch accepted")
	}
}

func TestShardedWriteBatchAndGCInfo(t *testing.T) {
	s, err := NewShardedTree(4, Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(6))
	if err := s.Insert(500, batchPDF(rng)); err != nil {
		t.Fatal(err)
	}

	const n = 64
	err = s.WriteBatch(func(w BatchWriter) error {
		for i := int64(0); i < n; i++ {
			if err := w.Insert(i, batchPDF(rng)); err != nil {
				return err
			}
		}
		return w.Delete(500)
	})
	if err != nil {
		t.Fatalf("sharded WriteBatch: %v", err)
	}
	if got := s.Len(); got != n {
		t.Fatalf("sharded batch Len=%d, want %d", got, n)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// An fn error must apply nothing on any shard.
	boom := errors.New("boom")
	err = s.WriteBatch(func(w BatchWriter) error {
		for i := int64(100); i < 110; i++ {
			if err := w.Insert(i, batchPDF(rng)); err != nil {
				return err
			}
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("sharded WriteBatch error = %v, want %v", err, boom)
	}
	if got := s.Len(); got != n {
		t.Fatalf("failed sharded batch mutated the index: Len=%d, want %d", got, n)
	}

	// GCInfo merges across shards: epochs advanced everywhere, nothing
	// pending once deferred garbage drained.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	info := s.GCInfo()
	if info.Epoch == 0 {
		t.Fatal("merged GCInfo reports epoch 0")
	}
	if info.PendingPages != 0 || info.PendingTombstones != 0 || info.PendingEpochs != 0 {
		t.Fatalf("pending garbage after Flush with no pins: %+v", info)
	}
}

// TestBackgroundReclaimerPinSafety hammers a file-backed ConcurrentTree
// with a grouped writer, snapshot readers validating invariants on every
// pinned epoch, and the background reclaimer draining on 1 ms ticks with a
// small page budget. Under -race this doubles as the data race check; the
// per-snapshot CheckInvariants would catch the reclaimer freeing any page
// a pinned epoch can still reach. Once the writer idles, pending garbage
// must drain to zero through the reclaimer alone — no Flush, no explicit
// Reclaim.
func TestBackgroundReclaimerPinSafety(t *testing.T) {
	cfg := Config{
		Dimensions:        2,
		ExactRefinement:   true,
		Path:              filepath.Join(t.TempDir(), "hammer.utree"),
		BufferPages:       32,
		GroupCommitOps:    4,
		ReclaimInterval:   time.Millisecond,
		ReclaimPageBudget: 8,
	}
	c, err := NewConcurrentTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if !c.GCInfo().ReclaimerRunning {
		t.Fatal("background reclaimer not running")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	readerErr := make(chan error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := c.Snapshot()
				err := snap.CheckInvariants()
				if err == nil {
					_, _, err = snap.Search(context.Background(),
						Box(Pt(0, 0), Pt(1000, 1000)), 0.5)
				}
				snap.Close()
				if err != nil {
					select {
					case readerErr <- err:
					default:
					}
					return
				}
			}
		}(int64(r))
	}

	// 240 ops = 60 groups of 4; every 3rd insert is later deleted, so the
	// reclaimer sees both retired COW pages and data-record tombstones.
	rng := rand.New(rand.NewSource(7))
	ops := 0
	for i := int64(0); i < 160; i++ {
		if err := c.Insert(i, batchPDF(rng)); err != nil {
			t.Fatal(err)
		}
		ops++
		if i%2 == 1 {
			if err := c.Delete(i - 1); err != nil {
				t.Fatal(err)
			}
			ops++
		}
	}
	if ops%cfg.GroupCommitOps != 0 {
		t.Fatalf("test bug: %d ops leave an open group tail", ops)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-readerErr:
		t.Fatalf("reader during hammer: %v", err)
	default:
	}

	// Writer idle, no pins: the reclaimer must drain everything on its own.
	deadline := time.Now().Add(10 * time.Second)
	for {
		info := c.GCInfo()
		if info.PendingPages == 0 && info.PendingTombstones == 0 && info.PendingEpochs == 0 {
			if info.ReclaimedPages == 0 {
				t.Fatal("reclaimer drained nothing despite COW churn")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending garbage never drained while idle: %+v", info)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
