package uncertain

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the batch query engine: a bounded worker pool fanning many
// independent queries across one shared Index — a ConcurrentTree (each
// worker's query pins its own snapshot of the committed epoch, so batches
// interleave freely with live updates and never wait on a writer) or a
// ShardedTree (each worker's query additionally scatters across the
// shards). The design follows the scalable filter/refinement
// pipelines of Bernecker et al. (probabilistic similarity ranking): the
// per-query work is already filter-then-refine, so throughput comes from
// running many queries' pipelines concurrently against a page cache that
// tolerates parallel readers.

// RangeQuery is one probabilistic range query in a batch.
type RangeQuery struct {
	Rect Rect
	// Prob is the appearance-probability threshold in (0, 1].
	Prob float64
}

// NNQuery is one expected-distance k-NN query in a batch.
type NNQuery struct {
	Point Point
	K     int
}

// BatchStats aggregates the paper's per-query cost metrics over a batch.
type BatchStats struct {
	Queries int
	Workers int
	// WallTime is the end-to-end batch latency; QueriesPerSec = Queries /
	// WallTime.
	WallTime      time.Duration
	QueriesPerSec float64

	NodeAccesses     int     // total tree pages visited
	MeanNodeAccesses float64 // per query
	// ProbComputations counts appearance-probability evaluations for range
	// batches and expected-distance evaluations for NN batches — the
	// expensive refinement step either way.
	ProbComputations     int
	MeanProbComputations float64
	// Validated and ValidatedPct report how many results were proven without
	// any probability computation (range batches only; the PCR filter's win).
	Validated    int
	ValidatedPct float64
	Results      int

	// Buffer-pool deltas over the batch's wall-time window. The pool's
	// counters are tree-wide, so when batches overlap on one tree — or
	// writers run concurrently — these include the other parties' traffic;
	// they are exact only for a batch running alone.
	CacheHits    int64
	CacheMisses  int64
	CacheHitRate float64 // hits / (hits+misses); 0 when the window had no pool I/O

	// Per-query wall-time latency distribution (nearest-rank percentiles
	// over the batch). Latency is measured at the engine boundary — one
	// timed unit per query — so a sharded index's scatter-gather counts as
	// one query latency, and percentiles merge consistently whatever Index
	// is underneath.
	P50Latency time.Duration
	P95Latency time.Duration
	MaxLatency time.Duration

	// Intra-query prefetch totals over the batch (zero when prefetching is
	// off; see Config.PrefetchWorkers).
	PrefetchIssued    int
	PrefetchCoalesced int
	PrefetchWasted    int

	// Cancelled counts queries that returned a context error: ones that hit
	// the engine's per-query timeout (EngineOptions.QueryTimeout — counted
	// and skipped, the batch continues) and ones aborted by the batch
	// context going away. BudgetExceeded counts queries stopped by
	// WithPageBudget; their partial results are kept and the batch
	// continues.
	Cancelled      int
	BudgetExceeded int

	// AdmissionRejected counts queries shed by the engine's admission
	// control (EngineOptions.MaxInFlightIO): their predicted I/O would have
	// pushed the in-flight total past the ceiling and capacity did not free
	// up within AdmissionWait. A shed query's result slot stays nil and the
	// batch continues.
	AdmissionRejected int

	// Planner effect totals over the batch: shards skipped by the adaptive
	// scatter-gather and candidates discarded by the probabilistic filter
	// bound before refinement (range batches only for the latter).
	ShardsPruned     int
	ProbFilterPruned int
}

// EngineOptions configures a QueryEngine.
type EngineOptions struct {
	// Workers bounds the query fan-out (0 → runtime.GOMAXPROCS(0)).
	Workers int
	// QueryTimeout, when > 0, bounds each query's wall time with its own
	// context deadline (derived from the batch context). A timed-out query
	// is counted in BatchStats.Cancelled and its result slot holds the
	// partial results its deadline allowed (possibly none); the rest of
	// the batch proceeds. Use the batch context's own deadline to bound
	// the whole batch instead.
	QueryTimeout time.Duration

	// MaxInFlightIO, when > 0, turns on admission control for SearchBatch:
	// each query's node accesses are predicted by the index's cost model
	// (Config.AdaptivePlanning) before it starts, and a query whose
	// prediction would push the batch's in-flight predicted I/O past this
	// ceiling waits up to AdmissionWait for capacity, then is shed with
	// ErrAdmission (a *AdmissionError carrying a retry-after hint). An
	// otherwise-idle engine always admits — a single query larger than the
	// ceiling must not deadlock — and queries the model cannot predict
	// (planning off, tree below modeling size) are admitted untracked.
	MaxInFlightIO float64
	// AdmissionWait bounds how long an over-ceiling query waits for
	// capacity before being shed; 0 sheds immediately.
	AdmissionWait time.Duration
}

// ErrAdmission is returned (wrapped in a *AdmissionError) for queries shed
// by admission control: the engine predicted the query would push the
// in-flight I/O past EngineOptions.MaxInFlightIO and capacity did not free
// up in time. The query did not run; retry it after the error's RetryAfter
// hint, or raise the ceiling. Test with errors.Is.
var ErrAdmission = errors.New("uncertain: query shed by admission control")

// AdmissionError carries the admission decision's inputs and a retry hint;
// errors.Is(err, ErrAdmission) matches it.
type AdmissionError struct {
	// Predicted is the query's predicted node accesses.
	Predicted float64
	// InFlight was the admitted queries' predicted I/O at decision time.
	InFlight float64
	// Ceiling is EngineOptions.MaxInFlightIO.
	Ceiling float64
	// RetryAfter is a heuristic backoff hint: roughly when enough in-flight
	// work should have drained for this query to fit.
	RetryAfter time.Duration
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("%v: predicted %.1f node accesses, %.1f already in flight, ceiling %.1f (retry after %v)",
		ErrAdmission, e.Predicted, e.InFlight, e.Ceiling, e.RetryAfter)
}

func (e *AdmissionError) Unwrap() error { return ErrAdmission }

// ioPredictor is the optional index capability admission control needs;
// Tree, ConcurrentTree and ShardedTree provide it when adaptive planning
// is on.
type ioPredictor interface {
	PredictSearchIO(rect Rect, prob float64) (float64, bool)
}

// admitter tracks the predicted I/O of in-flight queries against a
// ceiling. Admission blocks until the query fits, the wait expires, or the
// system is idle (an empty system always admits, whatever the prediction).
type admitter struct {
	mu       sync.Mutex
	cond     *sync.Cond
	inFlight float64
	ceiling  float64
	wait     time.Duration
}

func newAdmitter(ceiling float64, wait time.Duration) *admitter {
	a := &admitter{ceiling: ceiling, wait: wait}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// admit blocks until pred fits under the ceiling (or the system is idle)
// and reserves it; past the wait budget it sheds the query with a
// *AdmissionError instead.
func (a *admitter) admit(pred float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	expired := a.wait <= 0
	var timer *time.Timer
	for a.inFlight > 0 && a.inFlight+pred > a.ceiling {
		if expired {
			if timer != nil {
				timer.Stop()
			}
			retry := a.wait
			if retry <= 0 {
				// No wait budget: hint a backoff proportional to how much
				// in-flight work must drain before this query fits.
				retry = time.Duration(a.inFlight+pred-a.ceiling) * time.Millisecond
			}
			return &AdmissionError{Predicted: pred, InFlight: a.inFlight, Ceiling: a.ceiling, RetryAfter: retry}
		}
		if timer == nil {
			timer = time.AfterFunc(a.wait, func() {
				a.mu.Lock()
				expired = true
				a.mu.Unlock()
				a.cond.Broadcast()
			})
		}
		a.cond.Wait()
	}
	if timer != nil {
		timer.Stop()
	}
	a.inFlight += pred
	return nil
}

// release returns an admitted query's reservation and wakes the waiters.
func (a *admitter) release(pred float64) {
	a.mu.Lock()
	a.inFlight -= pred
	if a.inFlight < 0 {
		a.inFlight = 0
	}
	a.mu.Unlock()
	a.cond.Broadcast()
}

// QueryEngine runs batches of queries concurrently against one shared
// index. The index must tolerate concurrent readers — ConcurrentTree and
// ShardedTree do; a bare Tree does NOT (its Search advances a shared
// refinement sampler), so wrap one in a ConcurrentTree before handing it
// to an engine. The engine holds no per-batch state, so one engine may
// serve many goroutines, and batches may overlap with Insert/Delete on
// the same concurrent index.
//
//	ct, _ := uncertain.NewConcurrentTree(uncertain.Config{Dimensions: 2})
//	// ... load objects ...
//	eng := uncertain.NewQueryEngine(ct, uncertain.EngineOptions{Workers: 4})
//	results, stats, err := eng.SearchBatch(ctx, queries)
type QueryEngine struct {
	idx          Index
	workers      int
	queryTimeout time.Duration
	pred         ioPredictor // nil when the index cannot predict
	adm          *admitter   // nil when admission control is off
}

// NewQueryEngine builds an engine over idx.
func NewQueryEngine(idx Index, opt EngineOptions) *QueryEngine {
	w := opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	e := &QueryEngine{idx: idx, workers: w, queryTimeout: opt.QueryTimeout}
	e.pred, _ = idx.(ioPredictor)
	if opt.MaxInFlightIO > 0 {
		e.adm = newAdmitter(opt.MaxInFlightIO, opt.AdmissionWait)
	}
	return e
}

// Workers reports the configured fan-out bound.
func (e *QueryEngine) Workers() int { return e.workers }

// SearchBatch answers every query and returns per-query results (index i
// answers queries[i]) plus aggregated stats. Per-query options apply to
// every query of the batch. Budget-exceeded, per-query-timeout and
// admission-shed errors are non-fatal (counted in BatchStats, the batch
// continues, partial results are kept); the first other error — or the
// batch context going away — cancels the remaining in-flight queries
// promptly and is returned together with the results and stats of the
// work that did complete.
func (e *QueryEngine) SearchBatch(ctx context.Context, queries []RangeQuery, opts ...QueryOption) ([][]Result, BatchStats, error) {
	out := make([][]Result, len(queries))
	perQuery := make([]Stats, len(queries))
	stats, err := e.run(ctx, len(queries), func(qctx context.Context, i int) error {
		if e.adm != nil && e.pred != nil {
			if p, ok := e.pred.PredictSearchIO(queries[i].Rect, queries[i].Prob); ok {
				if aerr := e.adm.admit(p); aerr != nil {
					return fmt.Errorf("uncertain: batch query %d: %w", i, aerr)
				}
				defer e.adm.release(p)
			}
		}
		res, st, qerr := e.idx.Search(qctx, queries[i].Rect, queries[i].Prob, opts...)
		out[i], perQuery[i] = res, st
		if qerr != nil {
			return fmt.Errorf("uncertain: batch query %d: %w", i, qerr)
		}
		return nil
	})
	var agg Stats
	for i := range perQuery {
		agg.Add(perQuery[i])
	}
	stats.NodeAccesses = agg.NodeAccesses
	stats.ProbComputations = agg.ProbComputations
	stats.Validated = agg.Validated
	stats.Results = agg.Results
	stats.PrefetchIssued = agg.PrefetchIssued
	stats.PrefetchCoalesced = agg.PrefetchCoalesced
	stats.PrefetchWasted = agg.PrefetchWasted
	stats.ShardsPruned = agg.ShardsPruned
	stats.ProbFilterPruned = agg.ProbFilterPruned
	stats.finish()
	if err != nil {
		return out, stats, err
	}
	return out, stats, nil
}

// NNBatch answers every k-NN query (index i answers queries[i]) plus
// aggregated stats; ProbComputations counts expected-distance evaluations.
// Context, options and error semantics match SearchBatch.
func (e *QueryEngine) NNBatch(ctx context.Context, queries []NNQuery, opts ...QueryOption) ([][]Neighbor, BatchStats, error) {
	out := make([][]Neighbor, len(queries))
	perQuery := make([]NNStats, len(queries))
	stats, err := e.run(ctx, len(queries), func(qctx context.Context, i int) error {
		res, st, qerr := e.idx.NearestNeighbors(qctx, queries[i].Point, queries[i].K, opts...)
		out[i], perQuery[i] = res, st
		if qerr != nil {
			return fmt.Errorf("uncertain: batch query %d: %w", i, qerr)
		}
		return nil
	})
	var agg NNStats
	for i := range perQuery {
		agg.Add(perQuery[i])
	}
	stats.NodeAccesses = agg.NodeAccesses
	stats.ProbComputations = agg.DistanceComps
	stats.PrefetchIssued = agg.PrefetchIssued
	stats.PrefetchCoalesced = agg.PrefetchCoalesced
	stats.PrefetchWasted = agg.PrefetchWasted
	stats.ShardsPruned = agg.ShardsPruned
	for i := range out {
		stats.Results += len(out[i])
	}
	stats.finish()
	if err != nil {
		return out, stats, err
	}
	return out, stats, nil
}

// run fans n tasks across the worker pool and times the batch — both
// end-to-end and per query, for the latency percentiles. Workers pull
// indices from a shared counter. The batch context is propagated into
// every query, so the first fatal error cancels the in-flight queries
// mid-traversal instead of letting them run to completion (the old engine
// only stopped *unstarted* tasks); budget and per-query-timeout errors are
// counted and skipped.
func (e *QueryEngine) run(ctx context.Context, n int, task func(ctx context.Context, i int) error) (BatchStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	h0, m0 := e.idx.CacheStats()
	start := time.Now()

	workers := e.workers
	if workers > n {
		workers = n
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	durations := make([]time.Duration, n)
	var (
		next      atomic.Int64
		failed    atomic.Bool
		errOnce   sync.Once
		firstErr  error
		cancelled atomic.Int64
		budget    atomic.Int64
		shed      atomic.Int64
		wg        sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
		cancel() // abort the sibling workers' in-flight queries
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				qctx := bctx
				qcancel := context.CancelFunc(func() {})
				if e.queryTimeout > 0 {
					qctx, qcancel = context.WithTimeout(bctx, e.queryTimeout)
				}
				qStart := time.Now()
				err := task(qctx, i)
				qcancel()
				durations[i] = time.Since(qStart)
				// Classify by the error's identity, not by context state: a
				// genuine failure that happens to return after a deadline
				// expired must still fail the batch, not be miscounted as a
				// timeout.
				switch {
				case err == nil:
				case errors.Is(err, ErrAdmission):
					shed.Add(1) // shed load is the mechanism working, not a failure
				case errors.Is(err, ErrBudgetExceeded):
					budget.Add(1)
				case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
					cancelled.Add(1)
					if ctx.Err() != nil {
						// The caller's context is gone: the whole batch stops.
						fail(ctx.Err())
						return
					}
					// Per-query deadline, or a sibling worker's fail()
					// cancelling bctx; count it and let the loop condition
					// decide whether to continue.
				default:
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	h1, m1 := e.idx.CacheStats()
	stats := BatchStats{
		Queries:           n,
		Workers:           workers,
		WallTime:          time.Since(start),
		CacheHits:         h1 - h0,
		CacheMisses:       m1 - m0,
		Cancelled:         int(cancelled.Load()),
		BudgetExceeded:    int(budget.Load()),
		AdmissionRejected: int(shed.Load()),
	}
	// Percentiles cover only the queries that actually ran: on an aborted
	// batch the never-started tasks' zero durations would otherwise drag
	// P50/P95 to zero in the partial stats returned with the error.
	ran := durations[:0]
	for _, d := range durations {
		if d > 0 {
			ran = append(ran, d)
		}
	}
	sort.Slice(ran, func(a, b int) bool { return ran[a] < ran[b] })
	stats.P50Latency = percentile(ran, 50)
	stats.P95Latency = percentile(ran, 95)
	if len(ran) > 0 {
		stats.MaxLatency = ran[len(ran)-1]
	}
	return stats, firstErr
}

// percentile returns the nearest-rank p-th percentile of an ascending
// latency list.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// finish derives the per-query and rate metrics from the accumulated sums.
func (s *BatchStats) finish() {
	if s.Queries > 0 {
		s.MeanNodeAccesses = float64(s.NodeAccesses) / float64(s.Queries)
		s.MeanProbComputations = float64(s.ProbComputations) / float64(s.Queries)
	}
	if s.Results > 0 {
		s.ValidatedPct = 100 * float64(s.Validated) / float64(s.Results)
	}
	if io := s.CacheHits + s.CacheMisses; io > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(io)
	}
	if s.WallTime > 0 {
		s.QueriesPerSec = float64(s.Queries) / s.WallTime.Seconds()
	}
}
