package uncertain

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the batch query engine: a bounded worker pool fanning many
// independent queries across one shared Index — a ConcurrentTree (workers
// read under its shared lock, so batches interleave freely with live
// updates) or a ShardedTree (each worker's query additionally scatters
// across the shards). The design follows the scalable filter/refinement
// pipelines of Bernecker et al. (probabilistic similarity ranking): the
// per-query work is already filter-then-refine, so throughput comes from
// running many queries' pipelines concurrently against a page cache that
// tolerates parallel readers.

// RangeQuery is one probabilistic range query in a batch.
type RangeQuery struct {
	Rect Rect
	// Prob is the appearance-probability threshold in (0, 1].
	Prob float64
}

// NNQuery is one expected-distance k-NN query in a batch.
type NNQuery struct {
	Point Point
	K     int
}

// BatchStats aggregates the paper's per-query cost metrics over a batch.
type BatchStats struct {
	Queries int
	Workers int
	// WallTime is the end-to-end batch latency; QueriesPerSec = Queries /
	// WallTime.
	WallTime      time.Duration
	QueriesPerSec float64

	NodeAccesses     int     // total tree pages visited
	MeanNodeAccesses float64 // per query
	// ProbComputations counts appearance-probability evaluations for range
	// batches and expected-distance evaluations for NN batches — the
	// expensive refinement step either way.
	ProbComputations     int
	MeanProbComputations float64
	// Validated and ValidatedPct report how many results were proven without
	// any probability computation (range batches only; the PCR filter's win).
	Validated    int
	ValidatedPct float64
	Results      int

	// Buffer-pool deltas over the batch's wall-time window. The pool's
	// counters are tree-wide, so when batches overlap on one tree — or
	// writers run concurrently — these include the other parties' traffic;
	// they are exact only for a batch running alone.
	CacheHits    int64
	CacheMisses  int64
	CacheHitRate float64 // hits / (hits+misses); 0 when the window had no pool I/O

	// Per-query wall-time latency distribution (nearest-rank percentiles
	// over the batch). Latency is measured at the engine boundary — one
	// timed unit per query — so a sharded index's scatter-gather counts as
	// one query latency, and percentiles merge consistently whatever Index
	// is underneath.
	P50Latency time.Duration
	P95Latency time.Duration
	MaxLatency time.Duration

	// Intra-query prefetch totals over the batch (zero when prefetching is
	// off; see Config.PrefetchWorkers).
	PrefetchIssued    int
	PrefetchCoalesced int
	PrefetchWasted    int
}

// EngineOptions configures a QueryEngine.
type EngineOptions struct {
	// Workers bounds the query fan-out (0 → runtime.GOMAXPROCS(0)).
	Workers int
}

// QueryEngine runs batches of queries concurrently against one shared
// index. The index must tolerate concurrent readers — ConcurrentTree and
// ShardedTree do; a bare Tree does NOT (its Search advances a shared
// refinement sampler), so wrap one in a ConcurrentTree before handing it
// to an engine. The engine holds no per-batch state, so one engine may
// serve many goroutines, and batches may overlap with Insert/Delete on
// the same concurrent index.
//
//	ct, _ := uncertain.NewConcurrentTree(uncertain.Config{Dimensions: 2})
//	// ... load objects ...
//	eng := uncertain.NewQueryEngine(ct, uncertain.EngineOptions{Workers: 4})
//	results, stats, err := eng.SearchBatch(queries)
type QueryEngine struct {
	idx     Index
	workers int
}

// NewQueryEngine builds an engine over idx.
func NewQueryEngine(idx Index, opt EngineOptions) *QueryEngine {
	w := opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &QueryEngine{idx: idx, workers: w}
}

// Workers reports the configured fan-out bound.
func (e *QueryEngine) Workers() int { return e.workers }

// SearchBatch answers every query and returns per-query results (index i
// answers queries[i]) plus aggregated stats. On the first query error the
// batch stops and that error is returned.
func (e *QueryEngine) SearchBatch(queries []RangeQuery) ([][]Result, BatchStats, error) {
	out := make([][]Result, len(queries))
	perQuery := make([]Stats, len(queries))
	stats, err := e.run(len(queries), func(i int) error {
		res, st, err := e.idx.Search(queries[i].Rect, queries[i].Prob)
		if err != nil {
			return fmt.Errorf("uncertain: batch query %d: %w", i, err)
		}
		out[i], perQuery[i] = res, st
		return nil
	})
	if err != nil {
		return nil, BatchStats{}, err
	}
	var agg Stats
	for i := range perQuery {
		agg.Add(perQuery[i])
	}
	stats.NodeAccesses = agg.NodeAccesses
	stats.ProbComputations = agg.ProbComputations
	stats.Validated = agg.Validated
	stats.Results = agg.Results
	stats.PrefetchIssued = agg.PrefetchIssued
	stats.PrefetchCoalesced = agg.PrefetchCoalesced
	stats.PrefetchWasted = agg.PrefetchWasted
	stats.finish()
	return out, stats, nil
}

// NNBatch answers every k-NN query (index i answers queries[i]) plus
// aggregated stats; ProbComputations counts expected-distance evaluations.
func (e *QueryEngine) NNBatch(queries []NNQuery) ([][]Neighbor, BatchStats, error) {
	out := make([][]Neighbor, len(queries))
	perQuery := make([]NNStats, len(queries))
	stats, err := e.run(len(queries), func(i int) error {
		res, st, err := e.idx.NearestNeighbors(queries[i].Point, queries[i].K)
		if err != nil {
			return fmt.Errorf("uncertain: batch query %d: %w", i, err)
		}
		out[i], perQuery[i] = res, st
		return nil
	})
	if err != nil {
		return nil, BatchStats{}, err
	}
	var agg NNStats
	for i := range perQuery {
		agg.Add(perQuery[i])
	}
	stats.NodeAccesses = agg.NodeAccesses
	stats.ProbComputations = agg.DistanceComps
	stats.PrefetchIssued = agg.PrefetchIssued
	stats.PrefetchCoalesced = agg.PrefetchCoalesced
	stats.PrefetchWasted = agg.PrefetchWasted
	for i := range out {
		stats.Results += len(out[i])
	}
	stats.finish()
	return out, stats, nil
}

// run fans n tasks across the worker pool and times the batch — both
// end-to-end and per query, for the latency percentiles. Workers pull
// indices from a shared counter; the first error latches, the workers exit,
// and any unstarted tasks are abandoned.
func (e *QueryEngine) run(n int, task func(i int) error) (BatchStats, error) {
	h0, m0 := e.idx.CacheStats()
	start := time.Now()

	workers := e.workers
	if workers > n {
		workers = n
	}
	durations := make([]time.Duration, n)
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				qStart := time.Now()
				err := task(i)
				durations[i] = time.Since(qStart)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return BatchStats{}, firstErr
	}

	h1, m1 := e.idx.CacheStats()
	stats := BatchStats{
		Queries:     n,
		Workers:     workers,
		WallTime:    time.Since(start),
		CacheHits:   h1 - h0,
		CacheMisses: m1 - m0,
	}
	sort.Slice(durations, func(a, b int) bool { return durations[a] < durations[b] })
	stats.P50Latency = percentile(durations, 50)
	stats.P95Latency = percentile(durations, 95)
	if n > 0 {
		stats.MaxLatency = durations[n-1]
	}
	return stats, nil
}

// percentile returns the nearest-rank p-th percentile of an ascending
// latency list.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// finish derives the per-query and rate metrics from the accumulated sums.
func (s *BatchStats) finish() {
	if s.Queries > 0 {
		s.MeanNodeAccesses = float64(s.NodeAccesses) / float64(s.Queries)
		s.MeanProbComputations = float64(s.ProbComputations) / float64(s.Queries)
	}
	if s.Results > 0 {
		s.ValidatedPct = 100 * float64(s.Validated) / float64(s.Results)
	}
	if io := s.CacheHits + s.CacheMisses; io > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(io)
	}
	if s.WallTime > 0 {
		s.QueriesPerSec = float64(s.Queries) / s.WallTime.Seconds()
	}
}
