package uncertain

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	tree, err := NewTree(Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	// A client whose position is uniform in a circle of radius 25 around
	// (300, 400).
	if err := tree.Insert(1, UniformCircle(Pt(300, 400), 25)); err != nil {
		t.Fatal(err)
	}
	// A sensor reading with Gaussian noise in a box.
	if err := tree.Insert(2, TruncatedGaussianBox(
		Box(Pt(500, 500), Pt(560, 560)), Pt(530, 530), []float64{15, 15})); err != nil {
		t.Fatal(err)
	}

	// Query covering object 1 entirely: must validate it.
	res, stats, err := tree.Search(context.Background(), Box(Pt(250, 350), Pt(350, 450)), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 1 {
		t.Fatalf("results: %+v", res)
	}
	if stats.ProbComputations != 0 {
		t.Fatalf("full containment should not compute probabilities: %+v", stats)
	}

	// Query covering half of object 1: P = 0.5, threshold 0.6 fails,
	// threshold 0.4 qualifies.
	half := Box(Pt(250, 350), Pt(300, 450))
	res, _, err = tree.Search(context.Background(), half, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("P=0.5 object returned at pq=0.6: %+v", res)
	}
	res, _, err = tree.Search(context.Background(), half, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 1 {
		t.Fatalf("P=0.5 object at pq=0.4: %+v", res)
	}
	// The index may validate it directly (Rule 5: mass left of the covered
	// half ≥ 0.4) or refine it; both are correct.
	if !res[0].Validated && (res[0].Prob < 0.49 || res[0].Prob > 0.51) {
		t.Fatalf("refined probability off: %+v", res[0])
	}
}

func TestAllConstructors(t *testing.T) {
	tree, err := NewTree(Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	pdfs := []PDF{
		UniformCircle(Pt(100, 100), 10),
		UniformBox(Box(Pt(200, 200), Pt(220, 230))),
		ConstrainedGaussian(Pt(300, 300), 20, 10),
		TruncatedGaussianBox(Box(Pt(400, 400), Pt(440, 440)), Pt(420, 420), []float64{10, 10}),
		ExponentialBox(Box(Pt(500, 500), Pt(540, 540)), []float64{0.1, 0.05}),
		Histogram(Box(Pt(600, 600), Pt(630, 630)), []int{3, 3}, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}),
	}
	for i, p := range pdfs {
		if err := tree.Insert(int64(i), p); err != nil {
			t.Fatalf("pdf %d: %v", i, err)
		}
	}
	res, _, err := tree.Search(context.Background(), Box(Pt(0, 0), Pt(1000, 1000)), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(pdfs) {
		t.Fatalf("covering search found %d of %d", len(res), len(pdfs))
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteByID(t *testing.T) {
	tree, _ := NewTree(Config{Dimensions: 2, ExactRefinement: true})
	defer tree.Close()
	tree.Insert(7, UniformCircle(Pt(50, 50), 5))
	if err := tree.Delete(7); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 0 {
		t.Fatal("delete left object behind")
	}
	if err := tree.Delete(7); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestFileBackedRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.utree")
	tree, err := NewTree(Config{Dimensions: 2, Path: path, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	type obj struct {
		id int64
		p  PDF
	}
	var objs []obj
	for i := 0; i < 300; i++ {
		p := UniformCircle(Pt(rng.Float64()*1000, rng.Float64()*1000), 12)
		objs = append(objs, obj{int64(i), p})
		if err := tree.Insert(int64(i), p); err != nil {
			t.Fatal(err)
		}
	}
	probe := Box(Pt(200, 200), Pt(600, 600))
	want, _, err := tree.Search(context.Background(), probe, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenTree(path, Config{ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 300 {
		t.Fatalf("reopened Len = %d", re.Len())
	}
	got, _, err := re.Search(context.Background(), probe, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("reopened search: %d vs %d results", len(got), len(want))
	}
	// Deletion after reopen requires the region MBR.
	if err := re.DeleteWithRegion(objs[0].id, objs[0].p.MBR()); err != nil {
		t.Fatal(err)
	}
	if re.Len() != 299 {
		t.Fatalf("Len after delete = %d", re.Len())
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUPCRVariant(t *testing.T) {
	tree, err := NewTree(Config{Dimensions: 2, UPCR: true, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	for i := 0; i < 100; i++ {
		if err := tree.Insert(int64(i), UniformCircle(Pt(float64(i*9%500), float64(i*13%500)), 8)); err != nil {
			t.Fatal(err)
		}
	}
	res, _, err := tree.Search(context.Background(), Box(Pt(-10, -10), Pt(510, 510)), 0.9)
	if err != nil || len(res) != 100 {
		t.Fatalf("UPCR search: %v, %d results", err, len(res))
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := NewTree(Config{}); err == nil {
		t.Error("zero dimensions accepted")
	}
	if _, err := NewTree(Config{Dimensions: 2, Path: "/nonexistent-dir-xyz/idx"}); err == nil {
		t.Error("unwritable path accepted")
	}
	if _, err := OpenTree("/nonexistent-dir-xyz/idx", Config{}); err == nil {
		t.Error("open of missing file succeeded")
	}
}

func TestSizeAndHeightReporting(t *testing.T) {
	tree, _ := NewTree(Config{Dimensions: 2})
	defer tree.Close()
	if tree.Height() != 1 || tree.Len() != 0 {
		t.Fatal("empty tree geometry wrong")
	}
	for i := 0; i < 500; i++ {
		tree.Insert(int64(i), UniformCircle(Pt(float64(i%100)*10, float64(i/100)*10), 3))
	}
	if tree.Height() < 2 {
		t.Fatalf("height %d after 500 inserts", tree.Height())
	}
	if tree.SizeBytes() <= 0 {
		t.Fatal("SizeBytes not positive")
	}
}
