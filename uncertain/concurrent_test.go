package uncertain

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestConcurrentTreeParallelMixedOps(t *testing.T) {
	ct, err := NewConcurrentTree(Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	// Seed with a base population.
	for i := int64(0); i < 200; i++ {
		if err := ct.Insert(i, UniformCircle(Pt(float64(i%20)*50, float64(i/20)*50), 8)); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*3)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			base := int64(1000 + w*1000)
			for i := 0; i < 60; i++ {
				id := base + int64(i)
				if err := ct.Insert(id, UniformCircle(
					Pt(rng.Float64()*1000, rng.Float64()*1000), 8)); err != nil {
					errs <- fmt.Errorf("worker %d insert: %w", w, err)
					return
				}
				if _, _, err := ct.Search(context.Background(), Box(Pt(0, 0), Pt(500, 500)), 0.5); err != nil {
					errs <- fmt.Errorf("worker %d search: %w", w, err)
					return
				}
				if i%3 == 0 {
					if err := ct.Delete(id); err != nil {
						errs <- fmt.Errorf("worker %d delete: %w", w, err)
						return
					}
				}
				if i%7 == 0 {
					if _, _, err := ct.NearestNeighbors(context.Background(), Pt(rng.Float64()*1000, rng.Float64()*1000), 3); err != nil {
						errs <- fmt.Errorf("worker %d nn: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// 200 base + 8 workers × 60 inserts − 8 × 20 deletes.
	want := 200 + workers*60 - workers*20
	if got := ct.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if err := ct.CheckInvariants(); err != nil {
		t.Fatalf("tree invariants violated after mixed ops: %v", err)
	}
}

func TestConcurrentTreeConfigError(t *testing.T) {
	if _, err := NewConcurrentTree(Config{}); err == nil {
		t.Fatal("zero dimensions accepted")
	}
}

// TestSearchWhileInsertStress runs a writer inserting continuously while
// many readers search and take NN queries in parallel (readers share the
// RLock; run with -race). Reader results must always be internally
// consistent: every reported probability meets the threshold.
func TestSearchWhileInsertStress(t *testing.T) {
	ct, err := NewConcurrentTree(Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	for i := int64(0); i < 300; i++ {
		if err := ct.Insert(i, UniformCircle(Pt(float64(i%20)*50, float64(i/20)*50), 8)); err != nil {
			t.Fatal(err)
		}
	}

	const readers = 8
	const searchesPerReader = 150
	stop := make(chan struct{})
	errs := make(chan error, readers+1)
	var readerWG, writerWG sync.WaitGroup

	// One writer mutating the tree until the readers finish.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		rng := rand.New(rand.NewSource(99))
		for id := int64(10000); ; id++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := ct.Insert(id, UniformCircle(
				Pt(rng.Float64()*1000, rng.Float64()*1000), 8)); err != nil {
				errs <- fmt.Errorf("writer insert: %w", err)
				return
			}
			if id%4 == 0 {
				if err := ct.Delete(id); err != nil {
					errs <- fmt.Errorf("writer delete: %w", err)
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < searchesPerReader; i++ {
				cx, cy := rng.Float64()*1000, rng.Float64()*1000
				res, _, err := ct.Search(context.Background(), Box(Pt(cx-100, cy-100), Pt(cx+100, cy+100)), 0.5)
				if err != nil {
					errs <- fmt.Errorf("reader %d search: %w", r, err)
					return
				}
				for _, item := range res {
					if !item.Validated && item.Prob < 0.5 {
						errs <- fmt.Errorf("reader %d: result %d below threshold (p=%g)", r, item.ID, item.Prob)
						return
					}
				}
				if i%10 == 0 {
					if _, _, err := ct.NearestNeighbors(context.Background(), Pt(cx, cy), 3); err != nil {
						errs <- fmt.Errorf("reader %d nn: %w", r, err)
						return
					}
				}
			}
		}(r)
	}

	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := ct.CheckInvariants(); err != nil {
		t.Fatalf("tree invariants violated after stress: %v", err)
	}
}

// TestSearchBatchMatchesSerial checks the batch engine is a pure
// parallelization: with exact refinement, SearchBatch must return exactly
// what serial Search returns for every query.
func TestSearchBatchMatchesSerial(t *testing.T) {
	ct, err := NewConcurrentTree(Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	rng := rand.New(rand.NewSource(7))
	for i := int64(0); i < 500; i++ {
		if err := ct.Insert(i, UniformCircle(
			Pt(rng.Float64()*1000, rng.Float64()*1000), 5+rng.Float64()*10)); err != nil {
			t.Fatal(err)
		}
	}

	queries := make([]RangeQuery, 64)
	for i := range queries {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		half := 40 + rng.Float64()*120
		queries[i] = RangeQuery{
			Rect: Box(Pt(cx-half, cy-half), Pt(cx+half, cy+half)),
			Prob: 0.1 + 0.8*rng.Float64(),
		}
	}

	serial := make([][]Result, len(queries))
	for i, q := range queries {
		res, _, err := ct.Search(context.Background(), q.Rect, q.Prob)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}

	eng := NewQueryEngine(ct, EngineOptions{Workers: 4})
	batch, stats, err := eng.SearchBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queries != len(queries) || stats.Workers != 4 {
		t.Fatalf("stats = %+v, want %d queries on 4 workers", stats, len(queries))
	}
	nonEmpty := 0
	for i := range queries {
		if !sameResults(serial[i], batch[i]) {
			t.Fatalf("query %d: batch %v != serial %v", i, batch[i], serial[i])
		}
		if len(serial[i]) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("degenerate workload: every query returned nothing")
	}
}

// sameResults compares result sets order-insensitively (worker scheduling
// does not perturb per-query order, but keep the test honest about what the
// engine guarantees: the same set with the same probabilities).
func sameResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[int64]Result, len(a))
	for _, r := range a {
		am[r.ID] = r
	}
	for _, r := range b {
		o, ok := am[r.ID]
		if !ok || o.Prob != r.Prob || o.Validated != r.Validated {
			return false
		}
	}
	return true
}

// TestNNBatchMatchesSerial does the same for the k-NN batch path (NN
// refinement is deterministic by construction: per-object seeded samplers).
func TestNNBatchMatchesSerial(t *testing.T) {
	ct, err := NewConcurrentTree(Config{Dimensions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	rng := rand.New(rand.NewSource(11))
	for i := int64(0); i < 300; i++ {
		if err := ct.Insert(i, UniformCircle(
			Pt(rng.Float64()*1000, rng.Float64()*1000), 10)); err != nil {
			t.Fatal(err)
		}
	}
	queries := make([]NNQuery, 32)
	for i := range queries {
		queries[i] = NNQuery{Point: Pt(rng.Float64()*1000, rng.Float64()*1000), K: 5}
	}
	serial := make([][]Neighbor, len(queries))
	for i, q := range queries {
		res, _, err := ct.NearestNeighbors(context.Background(), q.Point, q.K)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}
	eng := NewQueryEngine(ct, EngineOptions{})
	batch, stats, err := eng.NNBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if len(batch[i]) != len(serial[i]) {
			t.Fatalf("query %d: %d neighbors, want %d", i, len(batch[i]), len(serial[i]))
		}
		for j := range batch[i] {
			if batch[i][j] != serial[i][j] {
				t.Fatalf("query %d neighbor %d: %+v != %+v", i, j, batch[i][j], serial[i][j])
			}
		}
	}
	if stats.ProbComputations == 0 || stats.NodeAccesses == 0 {
		t.Fatalf("stats not aggregated: %+v", stats)
	}
}

// TestSearchBatchPropagatesError: an invalid query in the batch must surface
// as an error, not a partial result set.
func TestSearchBatchPropagatesError(t *testing.T) {
	ct, err := NewConcurrentTree(Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	if err := ct.Insert(1, UniformCircle(Pt(10, 10), 5)); err != nil {
		t.Fatal(err)
	}
	queries := []RangeQuery{
		{Rect: Box(Pt(0, 0), Pt(100, 100)), Prob: 0.5},
		{Rect: Box(Pt(0, 0), Pt(100, 100)), Prob: 1.5}, // invalid threshold
	}
	eng := NewQueryEngine(ct, EngineOptions{Workers: 2})
	if _, _, err := eng.SearchBatch(context.Background(), queries); err == nil {
		t.Fatal("invalid query accepted")
	}
}

// TestSearchBatchEmpty: a zero-length batch is a no-op, not a hang.
func TestSearchBatchEmpty(t *testing.T) {
	ct, err := NewConcurrentTree(Config{Dimensions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	eng := NewQueryEngine(ct, EngineOptions{})
	out, stats, err := eng.SearchBatch(context.Background(), nil)
	if err != nil || len(out) != 0 || stats.Queries != 0 {
		t.Fatalf("out=%v stats=%+v err=%v", out, stats, err)
	}
}
