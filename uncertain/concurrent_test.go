package uncertain

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestConcurrentTreeParallelMixedOps(t *testing.T) {
	ct, err := NewConcurrentTree(Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	// Seed with a base population.
	for i := int64(0); i < 200; i++ {
		if err := ct.Insert(i, UniformCircle(Pt(float64(i%20)*50, float64(i/20)*50), 8)); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*3)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			base := int64(1000 + w*1000)
			for i := 0; i < 60; i++ {
				id := base + int64(i)
				if err := ct.Insert(id, UniformCircle(
					Pt(rng.Float64()*1000, rng.Float64()*1000), 8)); err != nil {
					errs <- fmt.Errorf("worker %d insert: %w", w, err)
					return
				}
				if _, _, err := ct.Search(Box(Pt(0, 0), Pt(500, 500)), 0.5); err != nil {
					errs <- fmt.Errorf("worker %d search: %w", w, err)
					return
				}
				if i%3 == 0 {
					if err := ct.Delete(id); err != nil {
						errs <- fmt.Errorf("worker %d delete: %w", w, err)
						return
					}
				}
				if i%7 == 0 {
					if _, _, err := ct.NearestNeighbors(Pt(rng.Float64()*1000, rng.Float64()*1000), 3); err != nil {
						errs <- fmt.Errorf("worker %d nn: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// 200 base + 8 workers × 60 inserts − 8 × 20 deletes.
	want := 200 + workers*60 - workers*20
	if got := ct.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

func TestConcurrentTreeConfigError(t *testing.T) {
	if _, err := NewConcurrentTree(Config{}); err == nil {
		t.Fatal("zero dimensions accepted")
	}
}
