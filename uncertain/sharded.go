package uncertain

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// ShardedTree partitions the object set across K independent
// ConcurrentTree shards, each with its own store, buffer pool and writer
// lock. Objects are routed to a shard by a hash of their ID, and queries
// scatter-gather: every shard is searched concurrently and the partial
// answers are merged (with Stats summed via core's merge helpers).
//
// Compared to a single ConcurrentTree this buys two things on
// latency-bound storage (the paper's setting — its cost model charges
// 10 ms per page access):
//
//   - One query overlaps its page stalls across shards: latency ≈ the
//     slowest shard's share instead of the sum.
//   - Writers on different shards proceed in parallel (each shard
//     serializes only its own writers); readers never stall on writers at
//     all — every shard query runs on a pinned snapshot of that shard's
//     latest committed epoch.
//
// The split is by ID hash, not by space, so every shard sees queries from
// the whole domain; each sub-tree indexes a uniform 1/K sample of the
// data. Search results are returned sorted by ID (the merge order), and
// with Config.ExactRefinement they are identical — probabilities included
// — to a single tree over the same objects, whatever the shard count.
//
// NewSpatialShardedTree routes by location instead, giving the shards
// (mostly) disjoint root MBRs; combined with Config.AdaptivePlanning the
// scatter-gather then skips shards whose committed root box cannot
// intersect the query — see Search and NearestNeighbors.
type ShardedTree struct {
	shards []*ConcurrentTree

	// adaptive turns the scatter-gather into a planned fan-out: Search
	// prunes shards by their committed root MBR, NearestNeighbors visits
	// shards in ascending min-distance order under a shared k-th-distance
	// bound. Both prune only provably non-contributing shards, so results
	// stay identical to the full fan-out.
	adaptive bool

	// Spatial routing state (NewSpatialShardedTree). Objects are routed by
	// their pdf-MBR center into equal slabs of domain along dimension 0
	// rather than by ID hash, so the per-shard root MBRs are prunable.
	// routes remembers each live object's shard for Delete-by-ID — the
	// sharded analogue of Tree's session-lifetime ID tracking.
	spatial  bool
	domain   Rect
	routesMu sync.Mutex
	routes   map[int64]int
}

// NewShardedTree creates an index with the given shard count. Every shard
// is built from cfg; with Config.Path set, shard i is backed by the file
// "<path>.shard<i>".
func NewShardedTree(shards int, cfg Config) (*ShardedTree, error) {
	if shards < 1 {
		return nil, fmt.Errorf("uncertain: shard count %d, need ≥ 1", shards)
	}
	s := &ShardedTree{shards: make([]*ConcurrentTree, shards), adaptive: cfg.AdaptivePlanning}
	for i := range s.shards {
		scfg := cfg
		if cfg.Path != "" {
			scfg.Path = fmt.Sprintf("%s.shard%d", cfg.Path, i)
		}
		ct, err := NewConcurrentTree(scfg)
		if err != nil {
			for _, built := range s.shards[:i] {
				built.Close()
			}
			return nil, fmt.Errorf("uncertain: shard %d: %w", i, err)
		}
		s.shards[i] = ct
	}
	return s, nil
}

// NewSpatialShardedTree creates an index whose shards partition the data
// domain into equal slabs along dimension 0 (objects are routed by their
// pdf-MBR center; objects outside the domain land in the nearest edge
// slab). Spatial sharding makes the per-shard root MBRs disjoint-ish,
// which is what gives Config.AdaptivePlanning's shard pruning its teeth —
// under ID-hash sharding every shard covers the whole domain and no query
// can skip any of them.
//
// Because the shard is no longer derivable from the ID alone, Delete by
// bare ID only works for objects inserted (or bulk-loaded) through this
// handle during its lifetime; other objects need DeleteWithRegion, the
// same contract Tree has for reopened files.
func NewSpatialShardedTree(shards int, cfg Config, domain Rect) (*ShardedTree, error) {
	if !domain.IsValid() || domain.Side(0) <= 0 {
		return nil, fmt.Errorf("uncertain: spatial sharding needs a valid domain with positive extent on dimension 0, got %v", domain)
	}
	s, err := NewShardedTree(shards, cfg)
	if err != nil {
		return nil, err
	}
	s.spatial = true
	s.domain = domain.Clone()
	s.routes = make(map[int64]int)
	return s, nil
}

// Shards returns the shard count.
func (s *ShardedTree) Shards() int { return len(s.shards) }

// spatialIndex routes a region MBR to the slab holding its center,
// clamped to the edge slabs for out-of-domain objects.
func (s *ShardedTree) spatialIndex(mbr Rect) int {
	if mbr.Dim() == 0 {
		return 0
	}
	c := (mbr.Lo[0] + mbr.Hi[0]) / 2
	i := int(float64(len(s.shards)) * (c - s.domain.Lo[0]) / s.domain.Side(0))
	if i < 0 {
		i = 0
	}
	if i >= len(s.shards) {
		i = len(s.shards) - 1
	}
	return i
}

// shardIndex routes an object ID to its shard with a splitmix64-style
// finalizer, so dense sequential IDs still spread uniformly.
func (s *ShardedTree) shardIndex(id int64) int {
	h := uint64(id)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % uint64(len(s.shards)))
}

func (s *ShardedTree) shardFor(id int64) *ConcurrentTree {
	return s.shards[s.shardIndex(id)]
}

// Insert adds an object to the shard owning its ID (hash sharding) or the
// slab holding its pdf-MBR center (spatial sharding); only that shard's
// writer lock is taken.
func (s *ShardedTree) Insert(id int64, pdf PDF) error {
	if !s.spatial {
		return s.shardFor(id).Insert(id, pdf)
	}
	i := s.spatialIndex(pdf.MBR())
	if err := s.shards[i].Insert(id, pdf); err != nil {
		return err
	}
	s.routesMu.Lock()
	s.routes[id] = i
	s.routesMu.Unlock()
	return nil
}

// Delete removes an object from the shard owning its ID. On a spatial
// index the shard is looked up in the session's routing table, so only
// objects inserted through this handle can be deleted by bare ID — others
// need DeleteWithRegion.
func (s *ShardedTree) Delete(id int64) error {
	if !s.spatial {
		return s.shardFor(id).Delete(id)
	}
	s.routesMu.Lock()
	i, ok := s.routes[id]
	s.routesMu.Unlock()
	if !ok {
		return fmt.Errorf("uncertain: id %d not routed in this session; use DeleteWithRegion", id)
	}
	if err := s.shards[i].Delete(id); err != nil {
		return err
	}
	s.routesMu.Lock()
	delete(s.routes, id)
	s.routesMu.Unlock()
	return nil
}

// DeleteWithRegion removes an object by ID and its region MBR. It is the
// deletion path that needs no session routing state: hash sharding
// derives the shard from the ID, spatial sharding from the MBR's center —
// exactly where Insert/BulkLoad placed the object.
func (s *ShardedTree) DeleteWithRegion(id int64, regionMBR Rect) error {
	if !s.spatial {
		return s.shardFor(id).DeleteWithRegion(id, regionMBR)
	}
	i := s.spatialIndex(regionMBR)
	if err := s.shards[i].DeleteWithRegion(id, regionMBR); err != nil {
		return err
	}
	s.routesMu.Lock()
	delete(s.routes, id)
	s.routesMu.Unlock()
	return nil
}

// shardOp is one buffered mutation of a sharded WriteBatch.
type shardOp struct {
	insert bool
	id     int64
	pdf    PDF
	mbr    Rect
	hasMBR bool
}

// shardedBatch buffers a WriteBatch's mutations, routed per shard, without
// applying anything — replay happens after fn returns successfully. On a
// spatial index routed tracks the batch's own pending inserts so a batch
// can delete by bare ID an object it inserted itself.
type shardedBatch struct {
	s      *ShardedTree
	ops    [][]shardOp
	routed map[int64]int // spatial only: batch-local insert routes
}

func (b *shardedBatch) Insert(id int64, pdf PDF) error {
	var i int
	if b.s.spatial {
		i = b.s.spatialIndex(pdf.MBR())
		b.routed[id] = i
	} else {
		i = b.s.shardIndex(id)
	}
	b.ops[i] = append(b.ops[i], shardOp{insert: true, id: id, pdf: pdf})
	return nil
}

func (b *shardedBatch) Delete(id int64) error {
	var i int
	if b.s.spatial {
		var ok bool
		if i, ok = b.routed[id]; !ok {
			b.s.routesMu.Lock()
			i, ok = b.s.routes[id]
			b.s.routesMu.Unlock()
			if !ok {
				return fmt.Errorf("uncertain: id %d not routed in this session; use DeleteWithRegion", id)
			}
		}
	} else {
		i = b.s.shardIndex(id)
	}
	b.ops[i] = append(b.ops[i], shardOp{id: id})
	return nil
}

func (b *shardedBatch) DeleteWithRegion(id int64, regionMBR Rect) error {
	var i int
	if b.s.spatial {
		i = b.s.spatialIndex(regionMBR)
	} else {
		i = b.s.shardIndex(id)
	}
	b.ops[i] = append(b.ops[i], shardOp{id: id, mbr: regionMBR, hasMBR: true})
	return nil
}

// WriteBatch buffers fn's mutations, partitions them by ID hash, and
// commits each shard's share as one per-shard batch, all shards
// concurrently. Atomicity is PER SHARD: within a shard readers see none or
// all of its share; across shards a reader may briefly observe some shards
// committed and others not (and a failed shard rolls back only its own
// share). fn itself runs before anything is applied, so an fn error has
// zero side effects.
func (s *ShardedTree) WriteBatch(fn func(BatchWriter) error) error {
	b := &shardedBatch{s: s, ops: make([][]shardOp, len(s.shards))}
	if s.spatial {
		b.routed = make(map[int64]int)
	}
	if err := fn(b); err != nil {
		return err
	}
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		if len(b.ops[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.shards[i].WriteBatch(func(w BatchWriter) error {
				for _, op := range b.ops[i] {
					var err error
					switch {
					case op.insert:
						err = w.Insert(op.id, op.pdf)
					case op.hasMBR:
						err = w.DeleteWithRegion(op.id, op.mbr)
					default:
						err = w.Delete(op.id)
					}
					if err != nil {
						return err
					}
				}
				return nil
			})
		}(i)
	}
	wg.Wait()
	if s.spatial {
		// Replay the committed shards' share into the routing table; a
		// failed shard rolled back its own share, so its routes stay as
		// they were.
		s.routesMu.Lock()
		for i := range s.shards {
			if errs[i] != nil {
				continue
			}
			for _, op := range b.ops[i] {
				if op.insert {
					s.routes[op.id] = i
				} else {
					delete(s.routes, op.id)
				}
			}
		}
		s.routesMu.Unlock()
	}
	return s.firstError(errs)
}

// BulkLoad partitions the batch — by ID hash, or by pdf-MBR center on a
// spatial index — and bulk-loads every shard concurrently; all shards
// must be empty.
func (s *ShardedTree) BulkLoad(objects map[int64]PDF) error {
	parts := make([]map[int64]PDF, len(s.shards))
	for i := range parts {
		parts[i] = make(map[int64]PDF, len(objects)/len(s.shards)+1)
	}
	for id, pdf := range objects {
		if s.spatial {
			parts[s.spatialIndex(pdf.MBR())][id] = pdf
		} else {
			parts[s.shardIndex(id)][id] = pdf
		}
	}
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.shards[i].BulkLoad(parts[i])
		}(i)
	}
	wg.Wait()
	if s.spatial {
		s.routesMu.Lock()
		for i := range parts {
			if errs[i] != nil {
				continue
			}
			for id := range parts[i] {
				s.routes[id] = i
			}
		}
		s.routesMu.Unlock()
	}
	return s.firstError(errs)
}

// Search scatter-gathers a probabilistic range query: every shard runs the
// query concurrently (each on a pinned snapshot of its latest committed
// epoch, overlapping page latencies), and the partial results are
// concatenated, sorted by ID, and returned with the per-shard Stats
// merged. The per-shard snapshots are pinned independently, so under a
// live writer the merged answer reflects each shard's epoch at its own
// pin time — within one shard the view is always consistent.
//
// Cancellation fans out: cancelling ctx (or passing its deadline) stops
// every shard's traversal, and the partial answers the shards had already
// found are merged and returned together with ctx.Err() — the same
// partial-result contract as a single tree. The first real shard error
// cancels the sibling shards instead of letting them run to completion
// and returns nothing — unless the query opted into degraded mode with
// WithAllowDegraded, in which case the healthy shards run to completion
// and the merged answer returns with ErrDegraded (fatal only when every
// shard failed). Per-shard page-budget exhaustion is likewise not fatal to
// the fan-out — the shards' answers are merged and returned with
// ErrBudgetExceeded.
//
// With Config.AdaptivePlanning the fan-out is planned: shards whose
// committed root MBR (the p=0 boundary box, which contains every object
// region in the shard) is disjoint from rect cannot contribute a result
// and are skipped without being queried, counted in Stats.ShardsPruned.
// The pruning is purely subtractive of provably-empty work, so the merged
// answer is identical to the full fan-out; it only bites when the shards
// partition space (NewSpatialShardedTree).
func (s *ShardedTree) Search(ctx context.Context, rect Rect, prob float64, opts ...QueryOption) ([]Result, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	plan := resolveOptions(opts)
	if s.adaptive {
		return s.searchAdaptive(ctx, rect, prob, plan)
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	partRes := make([][]Result, len(s.shards))
	partStats := make([]Stats, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partRes[i], partStats[i], errs[i] = s.shards[i].Search(sctx, rect, prob, opts...)
			if errs[i] != nil && !errors.Is(errs[i], ErrBudgetExceeded) && !plan.AllowDegraded {
				cancel() // first real failure stops the sibling shards
			}
		}(i)
	}
	wg.Wait()
	softErr, err := s.gatherError(ctx, errs, plan.AllowDegraded)
	if err != nil {
		return nil, Stats{}, err
	}
	var out []Result
	var stats Stats
	for i := range s.shards {
		out = append(out, partRes[i]...)
		stats.Add(partStats[i])
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	if plan.Limit > 0 && len(out) > plan.Limit {
		out = out[:plan.Limit]
	}
	return out, stats, softErr
}

// searchAdaptive is the planned fan-out behind Search when adaptive
// planning is on: pin every shard's latest committed epoch, prune the
// shards whose root MBR cannot intersect rect, and scatter the query over
// the survivors. A shard is pruned only when the check is provably sound:
// the query itself must be valid (otherwise it is sent down so the usual
// validation error surfaces) and the shard's cached root MBR known and of
// matching dimensionality — an unknown (zero) MBR is never pruned on.
func (s *ShardedTree) searchAdaptive(ctx context.Context, rect Rect, prob float64, plan core.QueryOpts) ([]Result, Stats, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	snaps := make([]*Snapshot, len(s.shards))
	for i := range s.shards {
		snaps[i] = s.shards[i].Snapshot()
	}
	defer func() {
		for _, sn := range snaps {
			if sn != nil {
				sn.Close()
			}
		}
	}()
	canPrune := rect.IsValid() && prob > 0 && prob <= 1
	pruned := 0
	partRes := make([][]Result, len(s.shards))
	partStats := make([]Stats, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		if canPrune {
			root := snaps[i].inner.RootMBR()
			if root.Dim() == rect.Dim() && root.IsValid() && !root.Intersects(rect) {
				pruned++
				snaps[i].Close()
				snaps[i] = nil
				continue
			}
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partRes[i], partStats[i], errs[i] = snaps[i].inner.RangeQuery(sctx, core.Query{Rect: rect, Prob: prob}, plan)
			if errs[i] != nil && !errors.Is(errs[i], ErrBudgetExceeded) && !plan.AllowDegraded {
				cancel() // first real failure stops the sibling shards
			}
		}(i)
	}
	wg.Wait()
	softErr, err := s.gatherError(ctx, errs, plan.AllowDegraded)
	if err != nil {
		return nil, Stats{}, err
	}
	var out []Result
	var stats Stats
	for i := range s.shards {
		out = append(out, partRes[i]...)
		stats.Add(partStats[i])
	}
	stats.ShardsPruned += pruned
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	if plan.Limit > 0 && len(out) > plan.Limit {
		out = out[:plan.Limit]
	}
	return out, stats, softErr
}

// NearestNeighbors scatter-gathers an expected-distance k-NN query: each
// shard reports its own top k concurrently, and the k-way merge keeps the
// k globally smallest expected distances. The merge is exact — an object
// in the global top k is necessarily in its own shard's top k. See Search
// for the cancellation and budget fan-out semantics.
//
// With Config.AdaptivePlanning the shards are visited in ascending order
// of min-distance from q to their committed root MBR: the nearest shard
// runs first and seeds a shared k-th-distance upper bound, the rest run
// concurrently, and any shard whose min-distance already exceeds the
// bound is skipped (NNStats.ShardsPruned) — every object it holds has
// expected distance at least that min-distance, so none can reach the
// global top k. Results are identical to the full fan-out.
func (s *ShardedTree) NearestNeighbors(ctx context.Context, q Point, k int, opts ...QueryOption) ([]Neighbor, NNStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	plan := resolveOptions(opts)
	if s.adaptive {
		return s.nnAdaptive(ctx, q, k, plan)
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	partRes := make([][]Neighbor, len(s.shards))
	partStats := make([]NNStats, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partRes[i], partStats[i], errs[i] = s.shards[i].NearestNeighbors(sctx, q, k, opts...)
			if errs[i] != nil && !errors.Is(errs[i], ErrBudgetExceeded) && !plan.AllowDegraded {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	softErr, err := s.gatherError(ctx, errs, plan.AllowDegraded)
	if err != nil {
		return nil, NNStats{}, err
	}
	var merged []Neighbor
	var stats NNStats
	for i := range s.shards {
		merged = append(merged, partRes[i]...)
		stats.Add(partStats[i])
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].ExpectedDist != merged[b].ExpectedDist {
			return merged[a].ExpectedDist < merged[b].ExpectedDist
		}
		return merged[a].ID < merged[b].ID // deterministic tie-break
	})
	if plan.Limit > 0 && plan.Limit < k {
		k = plan.Limit
	}
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, stats, softErr
}

// nnAdaptive is the cost-ranked fan-out behind NearestNeighbors when
// adaptive planning is on. Shards are ranked by min-distance from q to
// their committed root MBR (unknown MBRs rank first and are never
// pruned). The nearest shard runs serially to fill the shared bound with
// its k-th expected distance; the remaining shards then run concurrently,
// each double-gated — skipped outright when its min-distance exceeds the
// bound at launch, and internally cut short by the same bound inside
// core's traversal (NNStats.BoundPruned).
func (s *ShardedTree) nnAdaptive(ctx context.Context, q Point, k int, plan core.QueryOpts) ([]Neighbor, NNStats, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	snaps := make([]*Snapshot, len(s.shards))
	for i := range s.shards {
		snaps[i] = s.shards[i].Snapshot()
	}
	defer func() {
		for _, sn := range snaps {
			sn.Close()
		}
	}()
	type rankedShard struct {
		idx int
		d   float64 // min possible expected distance of any object in the shard
	}
	order := make([]rankedShard, len(s.shards))
	for i := range s.shards {
		d := 0.0
		if root := snaps[i].inner.RootMBR(); root.Dim() == len(q) && root.IsValid() {
			d = core.MinDist(q, root)
		}
		order[i] = rankedShard{idx: i, d: d}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].d != order[b].d {
			return order[a].d < order[b].d
		}
		return order[a].idx < order[b].idx
	})
	bound := core.NewNNBound()
	plan.NNBound = bound
	partRes := make([][]Neighbor, len(s.shards))
	partStats := make([]NNStats, len(s.shards))
	errs := make([]error, len(s.shards))
	pruned := 0
	first := order[0].idx
	partRes[first], partStats[first], errs[first] = snaps[first].inner.NearestNeighbors(sctx, q, k, plan)
	fatalFirst := errs[first] != nil && !errors.Is(errs[first], ErrBudgetExceeded) && !plan.AllowDegraded
	if !fatalFirst {
		var wg sync.WaitGroup
		for _, r := range order[1:] {
			// Strict >: a shard tying the bound may still hold an
			// equal-distance, smaller-ID neighbor the merge must see.
			if r.d > bound.Load() {
				pruned++
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				partRes[i], partStats[i], errs[i] = snaps[i].inner.NearestNeighbors(sctx, q, k, plan)
				if errs[i] != nil && !errors.Is(errs[i], ErrBudgetExceeded) && !plan.AllowDegraded {
					cancel()
				}
			}(r.idx)
		}
		wg.Wait()
	}
	softErr, err := s.gatherError(ctx, errs, plan.AllowDegraded)
	if err != nil {
		return nil, NNStats{}, err
	}
	var merged []Neighbor
	var stats NNStats
	for i := range s.shards {
		merged = append(merged, partRes[i]...)
		stats.Add(partStats[i])
	}
	stats.ShardsPruned += pruned
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].ExpectedDist != merged[b].ExpectedDist {
			return merged[a].ExpectedDist < merged[b].ExpectedDist
		}
		return merged[a].ID < merged[b].ID // deterministic tie-break
	})
	if plan.Limit > 0 && plan.Limit < k {
		k = plan.Limit
	}
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, stats, softErr
}

// gatherError classifies the per-shard errors of one scatter-gather into a
// soft error — budget exhaustion or the caller's cancellation, where the
// shards' partial answers are still merged and returned alongside the
// error, honoring the Index contract — and a fatal one (any real shard
// failure), where nothing is returned. Context errors are reported bare so
// callers can match them with errors.Is against context.Canceled /
// DeadlineExceeded, and a real shard error wins over the context errors
// its cancel() induced on the sibling shards; cancellation wins over
// budget exhaustion.
//
// With allowDegraded (WithAllowDegraded), real shard failures become soft
// too — the merged answer carries a *DegradedError naming the failed
// shards — unless EVERY shard failed, which stays fatal: there is no
// healthy remainder to serve. The caller's own cancellation still wins
// over degraded reporting.
func (s *ShardedTree) gatherError(ctx context.Context, errs []error, allowDegraded bool) (soft, fatal error) {
	var budgetErr, ctxErr error
	var failed []int
	var failedErrs []error
	for i, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, ErrBudgetExceeded):
			if budgetErr == nil {
				budgetErr = fmt.Errorf("uncertain: shard %d: %w", i, err)
			}
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if ctxErr == nil {
				ctxErr = err
			}
		default:
			if !allowDegraded {
				return nil, fmt.Errorf("uncertain: shard %d: %w", i, err)
			}
			failed = append(failed, i)
			failedErrs = append(failedErrs, err)
		}
	}
	if len(failed) == len(s.shards) && len(s.shards) > 0 {
		// Degraded mode cannot help when no shard answered.
		return nil, fmt.Errorf("uncertain: all %d shards failed; first: shard %d: %w",
			len(s.shards), failed[0], failedErrs[0])
	}
	if ctxErr != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr, nil // the caller's context, not a sibling-induced cancel
		}
		return ctxErr, nil
	}
	if len(failed) > 0 {
		return &DegradedError{Shards: failed, Errs: failedErrs}, nil
	}
	return budgetErr, nil
}

// PlannerInfo merges the shards' adaptive-planner diagnostics (counters
// sum, the calibration factor is query-weighted).
func (s *ShardedTree) PlannerInfo() PlannerInfo {
	var info PlannerInfo
	for _, sh := range s.shards {
		info.Add(sh.PlannerInfo())
	}
	return info
}

// PredictSearchIO sums the shards' predicted node accesses for a Search,
// skipping shards the adaptive fan-out would prune — the engine's
// admission-control input. ok is false when no shard has a model yet.
func (s *ShardedTree) PredictSearchIO(rect Rect, prob float64) (float64, bool) {
	canPrune := s.adaptive && rect.IsValid() && prob > 0 && prob <= 1
	var sum float64
	any := false
	for _, sh := range s.shards {
		if canPrune {
			snap := sh.Snapshot()
			root := snap.inner.RootMBR()
			snap.Close()
			if root.Dim() == rect.Dim() && root.IsValid() && !root.Intersects(rect) {
				continue
			}
		}
		if p, ok := sh.PredictSearchIO(rect, prob); ok {
			sum += p
			any = true
		}
	}
	return sum, any
}

// Len sums the object counts over all shards.
func (s *ShardedTree) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// GCInfo merges the shards' epoch-collector health reports: epochs take
// the max, counters sum.
func (s *ShardedTree) GCInfo() GCInfo {
	var info GCInfo
	for _, sh := range s.shards {
		info.Add(sh.GCInfo())
	}
	return info
}

// CacheStats sums the shards' buffer-pool hit/miss counters.
func (s *ShardedTree) CacheStats() (hits, misses int64) {
	for _, sh := range s.shards {
		h, m := sh.CacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// NodeCacheStats sums the shards' decoded-node-cache hit/miss counters.
func (s *ShardedTree) NodeCacheStats() (hits, misses int64) {
	for _, sh := range s.shards {
		h, m := sh.NodeCacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// SetSimulatedPageLatency re-arms the simulated storage latency on every
// shard; safe to call concurrently with queries. A tooling hook for
// build-then-measure harnesses — not part of the Index interface;
// production code sets Config.SimulatedPageLatency.
func (s *ShardedTree) SetSimulatedPageLatency(d time.Duration) {
	for _, sh := range s.shards {
		sh.SetSimulatedPageLatency(d)
	}
}

// Flush writes every shard's buffered dirty pages through to its store.
func (s *ShardedTree) Flush() error {
	errs := make([]error, len(s.shards))
	for i, sh := range s.shards {
		errs[i] = sh.Flush()
	}
	return s.firstError(errs)
}

// CheckInvariants validates every shard's structure.
func (s *ShardedTree) CheckInvariants() error {
	for i, sh := range s.shards {
		if err := sh.CheckInvariants(); err != nil {
			return fmt.Errorf("uncertain: shard %d: %w", i, err)
		}
	}
	return nil
}

// Close closes every shard; every shard is closed even if one fails, and
// the first error is returned. Idempotent (each shard's Close is).
func (s *ShardedTree) Close() error {
	errs := make([]error, len(s.shards))
	for i, sh := range s.shards {
		errs[i] = sh.Close()
	}
	return s.firstError(errs)
}

// Discard releases every shard without committing (see Tree.Discard);
// idempotent and safe after Close.
func (s *ShardedTree) Discard() error {
	errs := make([]error, len(s.shards))
	for i, sh := range s.shards {
		errs[i] = sh.Discard()
	}
	return s.firstError(errs)
}

// firstError returns the first non-nil error, annotated with its shard.
func (s *ShardedTree) firstError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("uncertain: shard %d: %w", i, err)
		}
	}
	return nil
}
