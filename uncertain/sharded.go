package uncertain

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ShardedTree partitions the object set across K independent
// ConcurrentTree shards, each with its own store, buffer pool and writer
// lock. Objects are routed to a shard by a hash of their ID, and queries
// scatter-gather: every shard is searched concurrently and the partial
// answers are merged (with Stats summed via core's merge helpers).
//
// Compared to a single ConcurrentTree this buys two things on
// latency-bound storage (the paper's setting — its cost model charges
// 10 ms per page access):
//
//   - One query overlaps its page stalls across shards: latency ≈ the
//     slowest shard's share instead of the sum.
//   - Writers on different shards proceed in parallel (each shard
//     serializes only its own writers); readers never stall on writers at
//     all — every shard query runs on a pinned snapshot of that shard's
//     latest committed epoch.
//
// The split is by ID hash, not by space, so every shard sees queries from
// the whole domain; each sub-tree indexes a uniform 1/K sample of the
// data. Search results are returned sorted by ID (the merge order), and
// with Config.ExactRefinement they are identical — probabilities included
// — to a single tree over the same objects, whatever the shard count.
type ShardedTree struct {
	shards []*ConcurrentTree
}

// NewShardedTree creates an index with the given shard count. Every shard
// is built from cfg; with Config.Path set, shard i is backed by the file
// "<path>.shard<i>".
func NewShardedTree(shards int, cfg Config) (*ShardedTree, error) {
	if shards < 1 {
		return nil, fmt.Errorf("uncertain: shard count %d, need ≥ 1", shards)
	}
	s := &ShardedTree{shards: make([]*ConcurrentTree, shards)}
	for i := range s.shards {
		scfg := cfg
		if cfg.Path != "" {
			scfg.Path = fmt.Sprintf("%s.shard%d", cfg.Path, i)
		}
		ct, err := NewConcurrentTree(scfg)
		if err != nil {
			for _, built := range s.shards[:i] {
				built.Close()
			}
			return nil, fmt.Errorf("uncertain: shard %d: %w", i, err)
		}
		s.shards[i] = ct
	}
	return s, nil
}

// Shards returns the shard count.
func (s *ShardedTree) Shards() int { return len(s.shards) }

// shardIndex routes an object ID to its shard with a splitmix64-style
// finalizer, so dense sequential IDs still spread uniformly.
func (s *ShardedTree) shardIndex(id int64) int {
	h := uint64(id)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % uint64(len(s.shards)))
}

func (s *ShardedTree) shardFor(id int64) *ConcurrentTree {
	return s.shards[s.shardIndex(id)]
}

// Insert adds an object to the shard owning its ID; only that shard's
// writer lock is taken.
func (s *ShardedTree) Insert(id int64, pdf PDF) error {
	return s.shardFor(id).Insert(id, pdf)
}

// Delete removes an object from the shard owning its ID.
func (s *ShardedTree) Delete(id int64) error {
	return s.shardFor(id).Delete(id)
}

// shardOp is one buffered mutation of a sharded WriteBatch.
type shardOp struct {
	insert bool
	id     int64
	pdf    PDF
	mbr    Rect
	hasMBR bool
}

// shardedBatch buffers a WriteBatch's mutations, routed per shard, without
// applying anything — replay happens after fn returns successfully.
type shardedBatch struct {
	s   *ShardedTree
	ops [][]shardOp
}

func (b *shardedBatch) Insert(id int64, pdf PDF) error {
	i := b.s.shardIndex(id)
	b.ops[i] = append(b.ops[i], shardOp{insert: true, id: id, pdf: pdf})
	return nil
}

func (b *shardedBatch) Delete(id int64) error {
	i := b.s.shardIndex(id)
	b.ops[i] = append(b.ops[i], shardOp{id: id})
	return nil
}

func (b *shardedBatch) DeleteWithRegion(id int64, regionMBR Rect) error {
	i := b.s.shardIndex(id)
	b.ops[i] = append(b.ops[i], shardOp{id: id, mbr: regionMBR, hasMBR: true})
	return nil
}

// WriteBatch buffers fn's mutations, partitions them by ID hash, and
// commits each shard's share as one per-shard batch, all shards
// concurrently. Atomicity is PER SHARD: within a shard readers see none or
// all of its share; across shards a reader may briefly observe some shards
// committed and others not (and a failed shard rolls back only its own
// share). fn itself runs before anything is applied, so an fn error has
// zero side effects.
func (s *ShardedTree) WriteBatch(fn func(BatchWriter) error) error {
	b := &shardedBatch{s: s, ops: make([][]shardOp, len(s.shards))}
	if err := fn(b); err != nil {
		return err
	}
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		if len(b.ops[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.shards[i].WriteBatch(func(w BatchWriter) error {
				for _, op := range b.ops[i] {
					var err error
					switch {
					case op.insert:
						err = w.Insert(op.id, op.pdf)
					case op.hasMBR:
						err = w.DeleteWithRegion(op.id, op.mbr)
					default:
						err = w.Delete(op.id)
					}
					if err != nil {
						return err
					}
				}
				return nil
			})
		}(i)
	}
	wg.Wait()
	return s.firstError(errs)
}

// BulkLoad partitions the batch by ID hash and bulk-loads every shard
// concurrently; all shards must be empty.
func (s *ShardedTree) BulkLoad(objects map[int64]PDF) error {
	parts := make([]map[int64]PDF, len(s.shards))
	for i := range parts {
		parts[i] = make(map[int64]PDF, len(objects)/len(s.shards)+1)
	}
	for id, pdf := range objects {
		parts[s.shardIndex(id)][id] = pdf
	}
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.shards[i].BulkLoad(parts[i])
		}(i)
	}
	wg.Wait()
	return s.firstError(errs)
}

// Search scatter-gathers a probabilistic range query: every shard runs the
// query concurrently (each on a pinned snapshot of its latest committed
// epoch, overlapping page latencies), and the partial results are
// concatenated, sorted by ID, and returned with the per-shard Stats
// merged. The per-shard snapshots are pinned independently, so under a
// live writer the merged answer reflects each shard's epoch at its own
// pin time — within one shard the view is always consistent.
//
// Cancellation fans out: cancelling ctx (or passing its deadline) stops
// every shard's traversal, and the partial answers the shards had already
// found are merged and returned together with ctx.Err() — the same
// partial-result contract as a single tree. The first real shard error
// cancels the sibling shards instead of letting them run to completion
// and returns nothing — unless the query opted into degraded mode with
// WithAllowDegraded, in which case the healthy shards run to completion
// and the merged answer returns with ErrDegraded (fatal only when every
// shard failed). Per-shard page-budget exhaustion is likewise not fatal to
// the fan-out — the shards' answers are merged and returned with
// ErrBudgetExceeded.
func (s *ShardedTree) Search(ctx context.Context, rect Rect, prob float64, opts ...QueryOption) ([]Result, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	plan := resolveOptions(opts)
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	partRes := make([][]Result, len(s.shards))
	partStats := make([]Stats, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partRes[i], partStats[i], errs[i] = s.shards[i].Search(sctx, rect, prob, opts...)
			if errs[i] != nil && !errors.Is(errs[i], ErrBudgetExceeded) && !plan.AllowDegraded {
				cancel() // first real failure stops the sibling shards
			}
		}(i)
	}
	wg.Wait()
	softErr, err := s.gatherError(ctx, errs, plan.AllowDegraded)
	if err != nil {
		return nil, Stats{}, err
	}
	var out []Result
	var stats Stats
	for i := range s.shards {
		out = append(out, partRes[i]...)
		stats.Add(partStats[i])
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	if plan.Limit > 0 && len(out) > plan.Limit {
		out = out[:plan.Limit]
	}
	return out, stats, softErr
}

// NearestNeighbors scatter-gathers an expected-distance k-NN query: each
// shard reports its own top k concurrently, and the k-way merge keeps the
// k globally smallest expected distances. The merge is exact — an object
// in the global top k is necessarily in its own shard's top k. See Search
// for the cancellation and budget fan-out semantics.
func (s *ShardedTree) NearestNeighbors(ctx context.Context, q Point, k int, opts ...QueryOption) ([]Neighbor, NNStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	plan := resolveOptions(opts)
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	partRes := make([][]Neighbor, len(s.shards))
	partStats := make([]NNStats, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partRes[i], partStats[i], errs[i] = s.shards[i].NearestNeighbors(sctx, q, k, opts...)
			if errs[i] != nil && !errors.Is(errs[i], ErrBudgetExceeded) && !plan.AllowDegraded {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	softErr, err := s.gatherError(ctx, errs, plan.AllowDegraded)
	if err != nil {
		return nil, NNStats{}, err
	}
	var merged []Neighbor
	var stats NNStats
	for i := range s.shards {
		merged = append(merged, partRes[i]...)
		stats.Add(partStats[i])
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].ExpectedDist != merged[b].ExpectedDist {
			return merged[a].ExpectedDist < merged[b].ExpectedDist
		}
		return merged[a].ID < merged[b].ID // deterministic tie-break
	})
	if plan.Limit > 0 && plan.Limit < k {
		k = plan.Limit
	}
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, stats, softErr
}

// gatherError classifies the per-shard errors of one scatter-gather into a
// soft error — budget exhaustion or the caller's cancellation, where the
// shards' partial answers are still merged and returned alongside the
// error, honoring the Index contract — and a fatal one (any real shard
// failure), where nothing is returned. Context errors are reported bare so
// callers can match them with errors.Is against context.Canceled /
// DeadlineExceeded, and a real shard error wins over the context errors
// its cancel() induced on the sibling shards; cancellation wins over
// budget exhaustion.
//
// With allowDegraded (WithAllowDegraded), real shard failures become soft
// too — the merged answer carries a *DegradedError naming the failed
// shards — unless EVERY shard failed, which stays fatal: there is no
// healthy remainder to serve. The caller's own cancellation still wins
// over degraded reporting.
func (s *ShardedTree) gatherError(ctx context.Context, errs []error, allowDegraded bool) (soft, fatal error) {
	var budgetErr, ctxErr error
	var failed []int
	var failedErrs []error
	for i, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, ErrBudgetExceeded):
			if budgetErr == nil {
				budgetErr = fmt.Errorf("uncertain: shard %d: %w", i, err)
			}
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if ctxErr == nil {
				ctxErr = err
			}
		default:
			if !allowDegraded {
				return nil, fmt.Errorf("uncertain: shard %d: %w", i, err)
			}
			failed = append(failed, i)
			failedErrs = append(failedErrs, err)
		}
	}
	if len(failed) == len(s.shards) && len(s.shards) > 0 {
		// Degraded mode cannot help when no shard answered.
		return nil, fmt.Errorf("uncertain: all %d shards failed; first: shard %d: %w",
			len(s.shards), failed[0], failedErrs[0])
	}
	if ctxErr != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr, nil // the caller's context, not a sibling-induced cancel
		}
		return ctxErr, nil
	}
	if len(failed) > 0 {
		return &DegradedError{Shards: failed, Errs: failedErrs}, nil
	}
	return budgetErr, nil
}

// Len sums the object counts over all shards.
func (s *ShardedTree) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// GCInfo merges the shards' epoch-collector health reports: epochs take
// the max, counters sum.
func (s *ShardedTree) GCInfo() GCInfo {
	var info GCInfo
	for _, sh := range s.shards {
		info.Add(sh.GCInfo())
	}
	return info
}

// CacheStats sums the shards' buffer-pool hit/miss counters.
func (s *ShardedTree) CacheStats() (hits, misses int64) {
	for _, sh := range s.shards {
		h, m := sh.CacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// NodeCacheStats sums the shards' decoded-node-cache hit/miss counters.
func (s *ShardedTree) NodeCacheStats() (hits, misses int64) {
	for _, sh := range s.shards {
		h, m := sh.NodeCacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// SetSimulatedPageLatency re-arms the simulated storage latency on every
// shard; safe to call concurrently with queries. A tooling hook for
// build-then-measure harnesses — not part of the Index interface;
// production code sets Config.SimulatedPageLatency.
func (s *ShardedTree) SetSimulatedPageLatency(d time.Duration) {
	for _, sh := range s.shards {
		sh.SetSimulatedPageLatency(d)
	}
}

// Flush writes every shard's buffered dirty pages through to its store.
func (s *ShardedTree) Flush() error {
	errs := make([]error, len(s.shards))
	for i, sh := range s.shards {
		errs[i] = sh.Flush()
	}
	return s.firstError(errs)
}

// CheckInvariants validates every shard's structure.
func (s *ShardedTree) CheckInvariants() error {
	for i, sh := range s.shards {
		if err := sh.CheckInvariants(); err != nil {
			return fmt.Errorf("uncertain: shard %d: %w", i, err)
		}
	}
	return nil
}

// Close closes every shard; every shard is closed even if one fails, and
// the first error is returned. Idempotent (each shard's Close is).
func (s *ShardedTree) Close() error {
	errs := make([]error, len(s.shards))
	for i, sh := range s.shards {
		errs[i] = sh.Close()
	}
	return s.firstError(errs)
}

// Discard releases every shard without committing (see Tree.Discard);
// idempotent and safe after Close.
func (s *ShardedTree) Discard() error {
	errs := make([]error, len(s.shards))
	for i, sh := range s.shards {
		errs[i] = sh.Discard()
	}
	return s.firstError(errs)
}

// firstError returns the first non-nil error, annotated with its shard.
func (s *ShardedTree) firstError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("uncertain: shard %d: %w", i, err)
		}
	}
	return nil
}
