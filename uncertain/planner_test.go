package uncertain

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"
)

// spatialCfg is the adaptive-planning config the planner tests share.
func spatialCfg() Config {
	return Config{Dimensions: 2, ExactRefinement: true, AdaptivePlanning: true}
}

// TestSpatialShardedEquivalenceAndPruning: a spatially-sharded adaptive
// index must answer every query identically to a single tree over the same
// objects, and must actually skip shards on localized queries — the
// tentpole's byte-identity and shard-pruning claims in one test.
func TestSpatialShardedEquivalenceAndPruning(t *testing.T) {
	objects := shardedFixtureObjects(600, 5)
	queries := shardedFixtureQueries(60, 6)
	// Add localized queries that touch a single slab of the [0,1000]²
	// domain — the ones pruning must fire on.
	for i := 0; i < 20; i++ {
		cx := 60 + float64(i)*10
		queries = append(queries, RangeQuery{
			Rect: Box(Pt(cx-30, 400), Pt(cx+30, 520)),
			Prob: 0.3,
		})
	}

	single, err := NewConcurrentTree(Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if err := single.BulkLoad(objects); err != nil {
		t.Fatal(err)
	}

	st, err := NewSpatialShardedTree(4, spatialCfg(), Box(Pt(0, 0), Pt(1000, 1000)))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.BulkLoad(objects); err != nil {
		t.Fatal(err)
	}
	if got := st.Len(); got != len(objects) {
		t.Fatalf("Len = %d, want %d", got, len(objects))
	}

	totalPruned := 0
	for i, q := range queries {
		want, _, err := single.Search(context.Background(), q.Rect, q.Prob)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := st.Search(context.Background(), q.Rect, q.Prob)
		if err != nil {
			t.Fatal(err)
		}
		w := sortByID(want)
		if len(got) != len(w) {
			t.Fatalf("query %d: %d results, single tree %d", i, len(got), len(w))
		}
		for j := range got {
			if got[j] != w[j] {
				t.Fatalf("query %d result %d: %+v, single tree %+v", i, j, got[j], w[j])
			}
		}
		totalPruned += stats.ShardsPruned
	}
	if totalPruned == 0 {
		t.Fatal("no shard was ever pruned on a spatially-partitioned index")
	}
}

// TestSpatialShardedNNEquivalence: the cost-ranked, bound-pruned NN
// fan-out must reproduce the full fan-out's answers exactly.
func TestSpatialShardedNNEquivalence(t *testing.T) {
	objects := shardedFixtureObjects(500, 7)

	single, err := NewConcurrentTree(Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if err := single.BulkLoad(objects); err != nil {
		t.Fatal(err)
	}

	st, err := NewSpatialShardedTree(4, spatialCfg(), Box(Pt(0, 0), Pt(1000, 1000)))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.BulkLoad(objects); err != nil {
		t.Fatal(err)
	}

	pruned := 0
	for i := 0; i < 25; i++ {
		q := Pt(float64(i)*40+20, 500)
		for _, k := range []int{1, 5, 10} {
			want, _, err := single.NearestNeighbors(context.Background(), q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, stats, err := st.NearestNeighbors(context.Background(), q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("q=%v k=%d: %d neighbors, single tree %d", q, k, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("q=%v k=%d neighbor %d: %+v, single tree %+v", q, k, j, got[j], want[j])
				}
			}
			pruned += stats.ShardsPruned
		}
	}
	if pruned == 0 {
		t.Fatal("NN shard pruning never fired on edge-of-domain query points")
	}
}

// TestSpatialRoutingLifecycle covers the session routing table: deletes by
// bare ID for routed objects, DeleteWithRegion for unrouted ones, batch
// self-delete, and the untracked-ID error.
func TestSpatialRoutingLifecycle(t *testing.T) {
	st, err := NewSpatialShardedTree(4, spatialCfg(), Box(Pt(0, 0), Pt(1000, 1000)))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	p1 := UniformCircle(Pt(100, 500), 10)
	p2 := UniformCircle(Pt(900, 500), 10)
	if err := st.Insert(1, p1); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert(2, p2); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d", st.Len())
	}
	if err := st.Delete(1); err != nil {
		t.Fatalf("routed delete: %v", err)
	}
	if err := st.Delete(99); err == nil {
		t.Fatal("unrouted bare-ID delete accepted")
	}
	if err := st.DeleteWithRegion(2, p2.MBR()); err != nil {
		t.Fatalf("DeleteWithRegion: %v", err)
	}
	if st.Len() != 0 {
		t.Fatalf("Len after deletes = %d", st.Len())
	}

	// A batch must be able to delete its own pending insert by bare ID.
	err = st.WriteBatch(func(w BatchWriter) error {
		if err := w.Insert(10, p1); err != nil {
			return err
		}
		if err := w.Insert(11, p2); err != nil {
			return err
		}
		return w.Delete(10)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("Len after batch = %d", st.Len())
	}
	if err := st.Delete(11); err != nil {
		t.Fatalf("delete of batch-inserted object: %v", err)
	}
}

// TestAdmissionControl: an engine with a tiny in-flight I/O ceiling must
// shed overlapping queries with ErrAdmission (counted, non-fatal) while an
// idle engine always admits, whatever the prediction.
func TestAdmissionControl(t *testing.T) {
	ct, err := NewConcurrentTree(spatialCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	if err := ct.BulkLoad(shardedFixtureObjects(400, 8)); err != nil {
		t.Fatal(err)
	}
	if _, ok := ct.PredictSearchIO(Box(Pt(0, 0), Pt(1000, 1000)), 0.5); !ok {
		t.Fatal("no cost model after BulkLoad commit; admission would be vacuous")
	}

	// Single query on an idle engine: a prediction far above the ceiling
	// must still be admitted (no deadlock on oversized queries).
	eng := NewQueryEngine(ct, EngineOptions{Workers: 4, MaxInFlightIO: 0.001})
	big := []RangeQuery{{Rect: Box(Pt(0, 0), Pt(1000, 1000)), Prob: 0.3}}
	res, stats, err := eng.SearchBatch(context.Background(), big)
	if err != nil {
		t.Fatal(err)
	}
	if stats.AdmissionRejected != 0 {
		t.Fatalf("idle engine shed its only query: %+v", stats)
	}
	if len(res[0]) == 0 {
		t.Fatal("degenerate fixture: whole-domain query returned nothing")
	}

	// Many concurrent queries against the same tiny ceiling: everything
	// that overlaps an in-flight query must be shed, and shedding is
	// non-fatal (nil error, nil result slots).
	queries := shardedFixtureQueries(40, 9)
	res, stats, err = eng.SearchBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if stats.AdmissionRejected == 0 {
		t.Fatal("tiny ceiling never shed a query at workers=4")
	}
	if stats.AdmissionRejected >= len(queries) {
		t.Fatalf("every query shed (%d): the idle-admit rule is broken", stats.AdmissionRejected)
	}
	shedSlots := 0
	for i := range res {
		if res[i] == nil {
			shedSlots++
		}
	}
	if shedSlots == 0 {
		t.Fatal("admission rejections reported but every result slot is populated")
	}

	// A generous ceiling with a wait budget sheds nothing.
	eng = NewQueryEngine(ct, EngineOptions{Workers: 4, MaxInFlightIO: 1e9, AdmissionWait: time.Second})
	_, stats, err = eng.SearchBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if stats.AdmissionRejected != 0 {
		t.Fatalf("generous ceiling shed %d queries", stats.AdmissionRejected)
	}
}

// TestAdmissionErrorShape: the typed error unwraps to the sentinel and
// carries the decision's inputs.
func TestAdmissionErrorShape(t *testing.T) {
	a := newAdmitter(10, 0)
	if err := a.admit(5); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	err := a.admit(6) // 5 + 6 > 10, no wait budget
	if err == nil {
		t.Fatal("over-ceiling admit accepted")
	}
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("errors.Is(ErrAdmission) = false for %v", err)
	}
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("errors.As(*AdmissionError) = false for %v", err)
	}
	if ae.Predicted != 6 || ae.InFlight != 5 || ae.Ceiling != 10 || ae.RetryAfter <= 0 {
		t.Fatalf("admission error fields: %+v", ae)
	}
	a.release(5)
	if err := a.admit(6); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	a.release(6)

	// With a wait budget, a waiter is admitted once capacity frees up.
	a = newAdmitter(10, 2*time.Second)
	if err := a.admit(8); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- a.admit(5) }()
	time.Sleep(20 * time.Millisecond)
	a.release(8)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiter not admitted after release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter stuck after release")
	}
}

// TestShardedPlannerInfo: the merged diagnostics must reflect per-shard
// planner activity.
func TestShardedPlannerInfo(t *testing.T) {
	st, err := NewSpatialShardedTree(2, spatialCfg(), Box(Pt(0, 0), Pt(1000, 1000)))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.BulkLoad(shardedFixtureObjects(400, 10)); err != nil {
		t.Fatal(err)
	}
	for _, q := range shardedFixtureQueries(10, 11) {
		if _, _, err := st.Search(context.Background(), q.Rect, q.Prob); err != nil {
			t.Fatal(err)
		}
	}
	info := st.PlannerInfo()
	if !info.Enabled {
		t.Fatal("merged PlannerInfo not enabled")
	}
	if info.Queries == 0 || info.MeasuredAccesses <= 0 {
		t.Fatalf("merged PlannerInfo shows no activity: %+v", info)
	}
	if info.ModelRebuilds < 2 {
		t.Fatalf("expected a model rebuild per shard, got %d", info.ModelRebuilds)
	}

	if p, ok := st.PredictSearchIO(Box(Pt(0, 0), Pt(1000, 1000)), 0.5); !ok || p <= 0 {
		t.Fatalf("sharded PredictSearchIO = %v ok=%v", p, ok)
	}
	// A query confined to the left slab must predict less than the whole
	// domain (the right shard is pruned from the sum).
	left, ok := st.PredictSearchIO(Box(Pt(0, 0), Pt(100, 1000)), 0.5)
	if !ok {
		t.Fatal("left-slab prediction unavailable")
	}
	whole, _ := st.PredictSearchIO(Box(Pt(0, 0), Pt(1000, 1000)), 0.5)
	if left >= whole {
		t.Fatalf("pruning-aware prediction %v not below whole-domain %v", left, whole)
	}
}

// sortNeighbors is a test helper guard: the merge contract says results
// arrive sorted by (distance, ID); verify on a sample.
func TestShardedNNSortedContract(t *testing.T) {
	st, err := NewSpatialShardedTree(3, spatialCfg(), Box(Pt(0, 0), Pt(1000, 1000)))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.BulkLoad(shardedFixtureObjects(300, 12)); err != nil {
		t.Fatal(err)
	}
	got, _, err := st.NearestNeighbors(context.Background(), Pt(500, 500), 20)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(got, func(a, b int) bool {
		if got[a].ExpectedDist != got[b].ExpectedDist {
			return got[a].ExpectedDist < got[b].ExpectedDist
		}
		return got[a].ID < got[b].ID
	}) {
		t.Fatal("adaptive NN merge not sorted by (distance, ID)")
	}
}
