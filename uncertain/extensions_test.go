package uncertain

import (
	"context"
	"math/rand"
	"testing"
)

func TestFacadeNearestNeighbors(t *testing.T) {
	tree, err := NewTree(Config{Dimensions: 2, MonteCarloSamples: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	// A line of circles; nearest to the origin is object 0.
	for i := int64(0); i < 10; i++ {
		tree.Insert(i, UniformCircle(Pt(float64(i)*100+50, 50), 10))
	}
	nns, stats, err := tree.NearestNeighbors(context.Background(), Pt(0, 50), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nns) != 3 || nns[0].ID != 0 || nns[1].ID != 1 || nns[2].ID != 2 {
		t.Fatalf("nns = %+v", nns)
	}
	if nns[0].ExpectedDist >= nns[1].ExpectedDist {
		t.Fatal("not ascending")
	}
	if stats.NodeAccesses == 0 {
		t.Fatal("no node accesses recorded")
	}
}

func TestFacadeBulkLoad(t *testing.T) {
	tree, err := NewTree(Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	rng := rand.New(rand.NewSource(5))
	batch := make(map[int64]PDF, 400)
	for i := int64(0); i < 400; i++ {
		batch[i] = UniformCircle(Pt(rng.Float64()*1000, rng.Float64()*1000), 10)
	}
	if err := tree.BulkLoad(batch); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 400 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Delete-by-ID works for bulk-loaded objects too.
	if err := tree.Delete(7); err != nil {
		t.Fatal(err)
	}
	res, _, err := tree.Search(context.Background(), Box(Pt(-10, -10), Pt(1010, 1010)), 0.5)
	if err != nil || len(res) != 399 {
		t.Fatalf("search after bulk+delete: %v, %d results", err, len(res))
	}
}

func TestFacadePolygonAndMixture(t *testing.T) {
	tree, err := NewTree(Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	poly := UniformPolygon([]Point{Pt(0, 0), Pt(40, 0), Pt(40, 30), Pt(0, 30)})
	mix := MixturePDF([]PDF{
		UniformCircle(Pt(200, 200), 10),
		UniformCircle(Pt(240, 200), 10),
	}, []float64{1, 1})
	tree.Insert(1, poly)
	tree.Insert(2, mix)
	res, _, err := tree.Search(context.Background(), Box(Pt(-10, -10), Pt(300, 300)), 0.9)
	if err != nil || len(res) != 2 {
		t.Fatalf("search: %v, %d results", err, len(res))
	}
	// Half of the mixture: P = 0.5.
	res, _, err = tree.Search(context.Background(), Box(Pt(150, 150), Pt(220, 250)), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ID == 2 {
			t.Fatalf("mixture with P=0.5 returned at pq=0.6: %+v", r)
		}
	}
}

func TestFacadeCostModel(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running; skipped with -short")
	}
	tree, err := NewTree(Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	rng := rand.New(rand.NewSource(6))
	for i := int64(0); i < 1500; i++ {
		tree.Insert(i, UniformCircle(Pt(rng.Float64()*1000, rng.Float64()*1000), 8))
	}
	cm, err := tree.BuildCostModel(Box(Pt(0, 0), Pt(1000, 1000)))
	if err != nil {
		t.Fatal(err)
	}
	j := tree.CatalogIndexFor(0.6)
	small := cm.EstimateNodeAccesses([]float64{50, 50}, 0.6, j)
	large := cm.EstimateNodeAccesses([]float64{500, 500}, 0.6, j)
	if small >= large {
		t.Fatalf("estimates not monotone: %g vs %g", small, large)
	}
	if small < 1 {
		t.Fatalf("estimate below 1 (root always visited): %g", small)
	}
}
