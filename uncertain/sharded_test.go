package uncertain

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

// shardedFixtureObjects builds a deterministic population of uniform-circle
// objects (exact refinement capable).
func shardedFixtureObjects(n int, seed int64) map[int64]PDF {
	rng := rand.New(rand.NewSource(seed))
	objs := make(map[int64]PDF, n)
	for i := int64(0); i < int64(n); i++ {
		objs[i] = UniformCircle(
			Pt(rng.Float64()*1000, rng.Float64()*1000), 5+rng.Float64()*15)
	}
	return objs
}

func shardedFixtureQueries(n int, seed int64) []RangeQuery {
	rng := rand.New(rand.NewSource(seed))
	queries := make([]RangeQuery, n)
	for i := range queries {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		half := 40 + rng.Float64()*120
		queries[i] = RangeQuery{
			Rect: Box(Pt(cx-half, cy-half), Pt(cx+half, cy+half)),
			Prob: 0.1 + 0.8*rng.Float64(),
		}
	}
	return queries
}

func sortByID(res []Result) []Result {
	out := make([]Result, len(res))
	copy(out, res)
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// TestShardedSingleEquivalence is the sharding correctness contract: the
// same objects and the same queries must yield identical result sets —
// IDs, probabilities (exact refinement), validated flags — whether the
// index is a single tree or sharded 1/2/4 ways.
func TestShardedSingleEquivalence(t *testing.T) {
	objects := shardedFixtureObjects(600, 3)
	queries := shardedFixtureQueries(80, 4)

	single, err := NewConcurrentTree(Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if err := single.BulkLoad(objects); err != nil {
		t.Fatal(err)
	}
	want := make([][]Result, len(queries))
	for i, q := range queries {
		res, _, err := single.Search(context.Background(), q.Rect, q.Prob)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sortByID(res)
	}

	nonEmpty := 0
	for _, w := range want {
		if len(w) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("degenerate workload: every query returned nothing")
	}

	for _, shards := range []int{1, 2, 4} {
		st, err := NewShardedTree(shards, Config{Dimensions: 2, ExactRefinement: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.BulkLoad(objects); err != nil {
			t.Fatal(err)
		}
		if got := st.Len(); got != len(objects) {
			t.Fatalf("%d shards: Len = %d, want %d", shards, got, len(objects))
		}
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("%d shards: invariants after BulkLoad: %v", shards, err)
		}
		for i, q := range queries {
			res, stats, err := st.Search(context.Background(), q.Rect, q.Prob)
			if err != nil {
				t.Fatal(err)
			}
			// ShardedTree.Search returns ID-sorted results already; sortByID
			// would mask a violation of that documented contract.
			if !sort.SliceIsSorted(res, func(a, b int) bool { return res[a].ID < res[b].ID }) {
				t.Fatalf("%d shards query %d: results not sorted by ID", shards, i)
			}
			if len(res) != len(want[i]) {
				t.Fatalf("%d shards query %d: %d results, single tree %d",
					shards, i, len(res), len(want[i]))
			}
			for j := range res {
				if res[j] != want[i][j] {
					t.Fatalf("%d shards query %d result %d: %+v, single tree %+v",
						shards, i, j, res[j], want[i][j])
				}
			}
			if stats.Results != len(res) {
				t.Fatalf("%d shards query %d: merged stats.Results = %d, want %d",
					shards, i, stats.Results, len(res))
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedNNMatchesSingle: the per-shard top-k / k-way merge must
// reproduce the single tree's k-NN answers (expected distances are
// deterministic per object).
func TestShardedNNMatchesSingle(t *testing.T) {
	objects := shardedFixtureObjects(400, 7)

	single, err := NewConcurrentTree(Config{Dimensions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if err := single.BulkLoad(objects); err != nil {
		t.Fatal(err)
	}

	st, err := NewShardedTree(4, Config{Dimensions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.BulkLoad(objects); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 24; i++ {
		q := Pt(rng.Float64()*1000, rng.Float64()*1000)
		k := 1 + rng.Intn(8)
		want, _, err := single.NearestNeighbors(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := st.NearestNeighbors(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d neighbors, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %d neighbor %d: %+v, single tree %+v", i, j, got[j], want[j])
			}
		}
		if stats.NodeAccesses == 0 || stats.DistanceComps == 0 {
			t.Fatalf("query %d: shard NN stats not merged: %+v", i, stats)
		}
	}
}

// TestShardedRoutingAndDelete: inserts spread across shards, deletes route
// back to the owning shard, and missing IDs error.
func TestShardedRoutingAndDelete(t *testing.T) {
	st, err := NewShardedTree(4, Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const n = 200
	for i := int64(0); i < n; i++ {
		if err := st.Insert(i, UniformCircle(Pt(float64(i%20)*50, float64(i/20)*50), 8)); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	// Sequential IDs must not pile onto one shard.
	for i, sh := range st.shards {
		if sh.Len() == 0 {
			t.Fatalf("shard %d received no objects from %d sequential IDs", i, n)
		}
	}
	for i := int64(0); i < n; i += 2 {
		if err := st.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Len(); got != n/2 {
		t.Fatalf("Len after deletes = %d, want %d", got, n/2)
	}
	if err := st.Delete(0); err == nil {
		t.Fatal("double delete accepted")
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("invariants after insert/delete sequence: %v", err)
	}
}

// TestShardedFileBacked: Config.Path fans out to one file per shard.
func TestShardedFileBacked(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "lb.utree")
	st, err := NewShardedTree(2, Config{Dimensions: 2, Path: base})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		if err := st.Insert(i, UniformCircle(Pt(float64(i)*10, float64(i)*10), 5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		path := fmt.Sprintf("%s.shard%d", base, i)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("shard file %s: %v", path, err)
		}
	}
}

// TestShardedConfigErrors: invalid shard counts and shard configs fail up
// front, without leaking half-built shards.
func TestShardedConfigErrors(t *testing.T) {
	if _, err := NewShardedTree(0, Config{Dimensions: 2}); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := NewShardedTree(4, Config{}); err == nil {
		t.Fatal("zero dimensions accepted")
	}
}

// TestEngineOverShardedTree: the batch engine is index-agnostic — batches
// over a ShardedTree must match the serial sharded answers exactly.
func TestEngineOverShardedTree(t *testing.T) {
	objects := shardedFixtureObjects(500, 11)
	queries := shardedFixtureQueries(48, 12)

	st, err := NewShardedTree(3, Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.BulkLoad(objects); err != nil {
		t.Fatal(err)
	}

	serial := make([][]Result, len(queries))
	for i, q := range queries {
		res, _, err := st.Search(context.Background(), q.Rect, q.Prob)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}
	eng := NewQueryEngine(st, EngineOptions{Workers: 4})
	batch, stats, err := eng.SearchBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if !sameResults(serial[i], batch[i]) {
			t.Fatalf("query %d: batch %v != serial %v", i, batch[i], serial[i])
		}
	}
	if stats.Queries != len(queries) || stats.NodeAccesses == 0 {
		t.Fatalf("stats not aggregated: %+v", stats)
	}
}

// TestShardedMixedOpsStress runs concurrent writers and readers over a
// ShardedTree (run with -race), then asserts every shard's invariants.
func TestShardedMixedOpsStress(t *testing.T) {
	st, err := NewShardedTree(4, Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := int64(0); i < 200; i++ {
		if err := st.Insert(i, UniformCircle(Pt(float64(i%20)*50, float64(i/20)*50), 8)); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*3)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			base := int64(1000 + w*1000)
			for i := 0; i < 40; i++ {
				id := base + int64(i)
				if err := st.Insert(id, UniformCircle(
					Pt(rng.Float64()*1000, rng.Float64()*1000), 8)); err != nil {
					errs <- fmt.Errorf("worker %d insert: %w", w, err)
					return
				}
				if _, _, err := st.Search(context.Background(), Box(Pt(0, 0), Pt(500, 500)), 0.5); err != nil {
					errs <- fmt.Errorf("worker %d search: %w", w, err)
					return
				}
				if i%3 == 0 {
					if err := st.Delete(id); err != nil {
						errs <- fmt.Errorf("worker %d delete: %w", w, err)
						return
					}
				}
				if i%7 == 0 {
					if _, _, err := st.NearestNeighbors(context.Background(), Pt(rng.Float64()*1000, rng.Float64()*1000), 3); err != nil {
						errs <- fmt.Errorf("worker %d nn: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := 200 + workers*40 - workers*14 // 40 inserts, ⌈40/3⌉ = 14 deletes each
	if got := st.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("shard invariants violated after stress: %v", err)
	}
}
