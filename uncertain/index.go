package uncertain

import (
	"context"
)

// Index is the unified contract of every U-tree variant in this package:
// the single-goroutine Tree, the snapshot-isolated ConcurrentTree, and
// the scatter-gather ShardedTree. Code that drives an index — the batch
// QueryEngine, the experiment harness, CLIs — should accept an Index so
// callers pick the concurrency story that fits their workload:
//
//   - Tree: one goroutine, lowest overhead.
//   - ConcurrentTree: lock-free snapshot reads beside one serialized
//     writer; queries pin the committed epoch and never wait on a
//     writer's page I/O.
//   - ShardedTree: K independent ConcurrentTrees; queries fan out across
//     all shards and overlap their page latencies, and writers on
//     different shards proceed in parallel.
//
// The query surface is context-first: every query takes a
// context.Context for cancellation and deadlines (queries check it before
// every page fetch and every refinement integration, so a cancelled query
// returns within roughly one page latency) plus per-query QueryOptions
// resolved into an immutable plan — precision, prefetch fan-out, result
// limits and I/O budgets are per-query decisions, with no global mutator
// and no lock taken to change them.
type Index interface {
	// Insert adds an object. IDs must be unique across the whole index.
	Insert(id int64, pdf PDF) error
	// Delete removes an object inserted in this process lifetime.
	Delete(id int64) error
	// BulkLoad batch-builds an empty index bottom-up.
	BulkLoad(objects map[int64]PDF) error
	// WriteBatch applies fn's mutations as one commit epoch (per shard for
	// sharded indexes): readers observe the whole batch or none of it, and
	// file-backed durability moves in batch granularity.
	WriteBatch(fn func(BatchWriter) error) error
	// GCInfo reports epoch-collector health: pending epochs, pages and
	// tombstones, lifetime reclaim counters, and whether the background
	// reclaimer runs (merged over shards for sharded indexes).
	GCInfo() GCInfo
	// Health reports storage health: quarantined (corrupt) pages,
	// cumulative transient-fault retries, and background-scrubber progress
	// (merged over shards for sharded indexes). All zeroes on a healthy
	// index.
	Health() HealthInfo
	// Search answers a probabilistic range query: objects appearing in rect
	// with probability ≥ prob. A cancelled or deadline-exceeded ctx stops
	// the traversal promptly with ctx.Err() and the partial results found
	// so far; WithPageBudget stops it with ErrBudgetExceeded the same way.
	Search(ctx context.Context, rect Rect, prob float64, opts ...QueryOption) ([]Result, Stats, error)
	// NearestNeighbors returns the k objects with the smallest expected
	// distance to q, ascending, under the same context and option contract
	// as Search.
	NearestNeighbors(ctx context.Context, q Point, k int, opts ...QueryOption) ([]Neighbor, NNStats, error)
	// Len returns the number of indexed objects.
	Len() int
	// CacheStats reports cumulative buffer-pool hits and misses (summed
	// over shards for sharded indexes).
	//
	// The deprecated SetSimulatedPageLatency / SetPrefetchWorkers mutators
	// were removed from this interface (PR 4 deprecation note): prefetch
	// fan-out is per query (WithPrefetchWorkers) or per open
	// (Config.PrefetchWorkers), and simulated latency is per open
	// (Config.SimulatedPageLatency). The concrete index types keep
	// SetSimulatedPageLatency as a tooling hook for build-then-measure
	// harnesses.
	CacheStats() (hits, misses int64)
	// NodeCacheStats reports cumulative decoded-node-cache hits and misses
	// (summed over shards for sharded indexes; both zero when
	// Config.NodeCacheEntries is negative).
	NodeCacheStats() (hits, misses int64)
	// Flush writes buffered dirty pages through to the store(s) and drains
	// retired copy-on-write pages no snapshot pins.
	Flush() error
	// CheckInvariants validates the index structure (every shard for
	// sharded indexes).
	CheckInvariants() error
	// Close flushes and releases the index.
	Close() error
}

// Compile-time checks that every variant satisfies the interface.
var (
	_ Index = (*Tree)(nil)
	_ Index = (*ConcurrentTree)(nil)
	_ Index = (*ShardedTree)(nil)
)
