package uncertain

import (
	"context"
	"time"
)

// Index is the unified contract of every U-tree variant in this package:
// the single-goroutine Tree, the lock-protected ConcurrentTree, and the
// scatter-gather ShardedTree. Code that drives an index — the batch
// QueryEngine, the experiment harness, CLIs — should accept an Index so
// callers pick the concurrency story that fits their workload:
//
//   - Tree: one goroutine, lowest overhead.
//   - ConcurrentTree: shared readers behind one writer lock; a writer
//     stalls every reader for the duration of its page I/O.
//   - ShardedTree: K independent ConcurrentTrees; queries fan out across
//     all shards and overlap their page latencies, and a writer stalls
//     only the one shard that owns the object.
//
// The query surface is context-first: every query takes a
// context.Context for cancellation and deadlines (queries check it before
// every page fetch and every refinement integration, so a cancelled query
// returns within roughly one page latency) plus per-query QueryOptions
// resolved into an immutable plan — precision, prefetch fan-out, result
// limits and I/O budgets are per-query decisions, with no global mutator
// and no lock taken to change them.
type Index interface {
	// Insert adds an object. IDs must be unique across the whole index.
	Insert(id int64, pdf PDF) error
	// Delete removes an object inserted in this process lifetime.
	Delete(id int64) error
	// BulkLoad batch-builds an empty index bottom-up.
	BulkLoad(objects map[int64]PDF) error
	// Search answers a probabilistic range query: objects appearing in rect
	// with probability ≥ prob. A cancelled or deadline-exceeded ctx stops
	// the traversal promptly with ctx.Err() and the partial results found
	// so far; WithPageBudget stops it with ErrBudgetExceeded the same way.
	Search(ctx context.Context, rect Rect, prob float64, opts ...QueryOption) ([]Result, Stats, error)
	// NearestNeighbors returns the k objects with the smallest expected
	// distance to q, ascending, under the same context and option contract
	// as Search.
	NearestNeighbors(ctx context.Context, q Point, k int, opts ...QueryOption) ([]Neighbor, NNStats, error)
	// Len returns the number of indexed objects.
	Len() int
	// CacheStats reports cumulative buffer-pool hits and misses (summed
	// over shards for sharded indexes).
	CacheStats() (hits, misses int64)
	// SetSimulatedPageLatency arms or disarms the simulated storage latency
	// on every underlying store.
	//
	// Deprecated: set Config.SimulatedPageLatency when opening the index.
	// The mutator remains for tooling that re-arms latency between build
	// and measurement phases (utreectl, the experiment harness).
	SetSimulatedPageLatency(d time.Duration)
	// SetPrefetchWorkers re-arms the index-wide default intra-query
	// prefetch fan-out (0 disables). Takes the writer lock(s), so
	// in-flight queries finish first.
	//
	// Deprecated: pass WithPrefetchWorkers to the query instead — it takes
	// no lock and applies to that query only — or set
	// Config.PrefetchWorkers when opening the index. The mutator remains
	// as a shim over the per-open default.
	SetPrefetchWorkers(n int)
	// Flush writes buffered dirty pages through to the store(s).
	Flush() error
	// CheckInvariants validates the index structure (every shard for
	// sharded indexes).
	CheckInvariants() error
	// Close flushes and releases the index.
	Close() error
}

// Compile-time checks that every variant satisfies the interface.
var (
	_ Index = (*Tree)(nil)
	_ Index = (*ConcurrentTree)(nil)
	_ Index = (*ShardedTree)(nil)
)
