package uncertain

import "time"

// Index is the unified contract of every U-tree variant in this package:
// the single-goroutine Tree, the lock-protected ConcurrentTree, and the
// scatter-gather ShardedTree. Code that drives an index — the batch
// QueryEngine, the experiment harness, CLIs — should accept an Index so
// callers pick the concurrency story that fits their workload:
//
//   - Tree: one goroutine, lowest overhead.
//   - ConcurrentTree: shared readers behind one writer lock; a writer
//     stalls every reader for the duration of its page I/O.
//   - ShardedTree: K independent ConcurrentTrees; queries fan out across
//     all shards and overlap their page latencies, and a writer stalls
//     only the one shard that owns the object.
type Index interface {
	// Insert adds an object. IDs must be unique across the whole index.
	Insert(id int64, pdf PDF) error
	// Delete removes an object inserted in this process lifetime.
	Delete(id int64) error
	// BulkLoad batch-builds an empty index bottom-up.
	BulkLoad(objects map[int64]PDF) error
	// Search answers a probabilistic range query: objects appearing in rect
	// with probability ≥ prob.
	Search(rect Rect, prob float64) ([]Result, Stats, error)
	// NearestNeighbors returns the k objects with the smallest expected
	// distance to q, ascending.
	NearestNeighbors(q Point, k int) ([]Neighbor, NNStats, error)
	// Len returns the number of indexed objects.
	Len() int
	// CacheStats reports cumulative buffer-pool hits and misses (summed
	// over shards for sharded indexes).
	CacheStats() (hits, misses int64)
	// SetSimulatedPageLatency arms or disarms the simulated storage latency
	// on every underlying store.
	SetSimulatedPageLatency(d time.Duration)
	// SetPrefetchWorkers re-arms the intra-query prefetch fan-out: how many
	// async page fetches one query may have in flight (0 disables). Takes
	// the writer lock(s), so in-flight queries finish first.
	SetPrefetchWorkers(n int)
	// Flush writes buffered dirty pages through to the store(s).
	Flush() error
	// CheckInvariants validates the index structure (every shard for
	// sharded indexes).
	CheckInvariants() error
	// Close flushes and releases the index.
	Close() error
}

// Compile-time checks that every variant satisfies the interface.
var (
	_ Index = (*Tree)(nil)
	_ Index = (*ConcurrentTree)(nil)
	_ Index = (*ShardedTree)(nil)
)
