package uncertain

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pagefile"
)

// This file is the crash-consistency contract of the copy-on-write commit
// scheme: a file-backed index killed at ANY store-operation offset inside
// a mutation — shadow writes, data appends, the metadata write, the
// post-commit reclamation — must reopen at the last committed epoch, with
// intact invariants and byte-identical query results. A mutation is
// atomic: the recovered tree either contains the full operation or none
// of it, never a partial state.

// crashQueries are fixed probes over the base population's region; the
// crash-victim objects live far outside them, so the expected results are
// identical whether or not the killed operation committed.
func crashQueries() []RangeQuery {
	rng := rand.New(rand.NewSource(17))
	qs := make([]RangeQuery, 12)
	for i := range qs {
		lo := Pt(rng.Float64()*700, rng.Float64()*700)
		qs[i] = RangeQuery{
			Rect: Box(lo, Pt(lo[0]+220, lo[1]+220)),
			Prob: 0.3 + 0.4*rng.Float64(),
		}
	}
	return qs
}

func crashSearchAll(t *testing.T, idx Index, queries []RangeQuery) [][]Result {
	t.Helper()
	out := make([][]Result, len(queries))
	for i, q := range queries {
		res, _, err := idx.Search(context.Background(), q.Rect, q.Prob)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		out[i] = res
	}
	return out
}

// buildCrashGolden creates the committed baseline file: a base population
// inside [0,1000]^2 (some of it then deleted, so the file has lived
// through COW churn and tombstones) plus one far-away object the
// delete-crash sweep will target.
func buildCrashGolden(t *testing.T, path string, cfg Config) (wantLen int, want [][]Result) {
	t.Helper()
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	const base = 140
	for i := int64(0); i < base; i++ {
		if err := tree.Insert(i, UniformCircle(Pt(rng.Float64()*1000, rng.Float64()*1000), 12)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < base; i += 9 {
		if err := tree.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	// The delete-sweep victim, far outside every probe query.
	if err := tree.Insert(9000, UniformCircle(Pt(6000, 6000), 12)); err != nil {
		t.Fatal(err)
	}
	want = crashSearchAll(t, tree, crashQueries())
	wantLen = tree.Len()
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	return wantLen, want
}

// runCrashSweep kills op(tree) at every store-operation offset k: each
// round restores a pristine copy of the golden file, reopens it with a
// FaultStore armed to fail after k operations, runs op, simulates the
// crash (Discard: no flush, no commit, no header write), reopens without
// faults and verifies the recovered tree. verify receives the recovered
// tree and whether op had reported success. The sweep ends when the
// countdown outlives the whole operation.
func runCrashSweep(t *testing.T, golden []byte, cfg Config, queries []RangeQuery,
	op func(*Tree) error, verify func(t *testing.T, k int, rt *Tree, opOK bool)) {
	t.Helper()
	work := filepath.Join(t.TempDir(), "crash.utree")
	for k := 0; ; k++ {
		if k > 500 {
			t.Fatal("crash sweep did not terminate: operation exceeds 500 store ops")
		}
		if err := os.WriteFile(work, golden, 0o644); err != nil {
			t.Fatal(err)
		}
		var fault *pagefile.FaultStore
		fcfg := cfg
		fcfg.WrapStore = func(s pagefile.Store) pagefile.Store {
			fault = pagefile.NewFaultStore(s, int64(k))
			return fault
		}
		opOK := false
		survived := false
		tree, err := OpenTree(work, fcfg)
		if err == nil {
			opErr := op(tree)
			opOK = opErr == nil
			survived = opOK && fault.Remaining() > 0
			if err := tree.Discard(); err != nil {
				t.Fatalf("offset %d: discard: %v", k, err)
			}
		}

		rt, err := OpenTree(work, cfg)
		if err != nil {
			t.Fatalf("offset %d: reopen after crash: %v", k, err)
		}
		if err := rt.CheckInvariants(); err != nil {
			t.Fatalf("offset %d: recovered invariants: %v", k, err)
		}
		if rt.Epoch() == 0 {
			t.Fatalf("offset %d: recovered epoch 0", k)
		}
		verify(t, k, rt, opOK)
		if err := rt.Close(); err != nil {
			t.Fatalf("offset %d: closing recovered tree: %v", k, err)
		}
		if survived {
			return // every offset inside the operation has been exercised
		}
	}
}

func TestCrashRecoveryKilledInsert(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep skipped in -short")
	}
	cfg := Config{Dimensions: 2, ExactRefinement: true, Seed: 5}
	path := filepath.Join(t.TempDir(), "golden.utree")
	gcfg := cfg
	gcfg.Path = path
	wantLen, want := buildCrashGolden(t, path, gcfg)
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	queries := crashQueries()

	// The killed operation: insert one object far outside the probes.
	const crashID = int64(9100)
	runCrashSweep(t, golden, cfg, queries,
		func(tree *Tree) error {
			return tree.Insert(crashID, UniformCircle(Pt(5000, 5000), 12))
		},
		func(t *testing.T, k int, rt *Tree, opOK bool) {
			got := crashSearchAll(t, rt, queries)
			requireSameResults(t, "recovered", want, got)
			// Strict atomicity: a reported success means the epoch published
			// (meta written) before the fault, so the insert must be durable;
			// a reported failure means it never published (reclaim faults
			// after publication are stashed, not returned), so the recovered
			// tree must not contain it.
			switch {
			case opOK && rt.Len() == wantLen+1:
			case !opOK && rt.Len() == wantLen:
			default:
				t.Fatalf("offset %d: opOK=%v but recovered Len %d (atomicity: want %d on failure, %d on success)",
					k, opOK, rt.Len(), wantLen, wantLen+1)
			}
		})
}

// TestCrashRecoveryKilledBatch sweeps a crash through a multi-op
// WriteBatch: three far-away inserts plus the delete of the golden
// victim, published as ONE epoch. Recovery must land exactly on a batch
// boundary — the recovered tree holds either the full batch or none of
// it, never two of the inserts or the delete alone.
func TestCrashRecoveryKilledBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep skipped in -short")
	}
	cfg := Config{Dimensions: 2, ExactRefinement: true, Seed: 5}
	path := filepath.Join(t.TempDir(), "golden.utree")
	gcfg := cfg
	gcfg.Path = path
	wantLen, want := buildCrashGolden(t, path, gcfg)
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	queries := crashQueries()

	runCrashSweep(t, golden, cfg, queries,
		func(tree *Tree) error {
			return tree.WriteBatch(func(w BatchWriter) error {
				for i := int64(0); i < 3; i++ {
					if err := w.Insert(9100+i, UniformCircle(Pt(5000+float64(i)*40, 5000), 12)); err != nil {
						return err
					}
				}
				return w.DeleteWithRegion(9000, Box(Pt(5988, 5988), Pt(6012, 6012)))
			})
		},
		func(t *testing.T, k int, rt *Tree, opOK bool) {
			got := crashSearchAll(t, rt, queries)
			requireSameResults(t, "recovered", want, got)
			// Batch boundary: +3 inserts, -1 delete when the batch epoch
			// published; byte-identical golden state when it did not.
			switch {
			case opOK && rt.Len() == wantLen+2:
			case !opOK && rt.Len() == wantLen:
			default:
				t.Fatalf("offset %d: opOK=%v but recovered Len %d (batch atomicity: want %d on failure, %d on success)",
					k, opOK, rt.Len(), wantLen, wantLen+2)
			}
		})
}

// TestOpenTreeSweepsLeakedPages is the regression test for the open-time
// reachability sweep: kill an insert at every store-operation offset and
// require that reopening leaves NO unreachable live page — every page the
// crash leaked (aborted shadow copies, unpublished fresh pages, undrained
// epoch garbage) is back on the free list. At least one offset must
// actually leak, or the test isn't testing the sweep.
func TestOpenTreeSweepsLeakedPages(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep skipped in -short")
	}
	cfg := Config{Dimensions: 2, ExactRefinement: true, Seed: 5}
	path := filepath.Join(t.TempDir(), "golden.utree")
	gcfg := cfg
	gcfg.Path = path
	buildCrashGolden(t, path, gcfg)
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	work := filepath.Join(t.TempDir(), "leak.utree")
	sweptAny := false
	for k := 0; ; k++ {
		if k > 500 {
			t.Fatal("leak sweep did not terminate: operation exceeds 500 store ops")
		}
		if err := os.WriteFile(work, golden, 0o644); err != nil {
			t.Fatal(err)
		}
		var fault *pagefile.FaultStore
		fcfg := cfg
		fcfg.WrapStore = func(s pagefile.Store) pagefile.Store {
			fault = pagefile.NewFaultStore(s, int64(k))
			return fault
		}
		survived := false
		tree, err := OpenTree(work, fcfg)
		if err == nil {
			opErr := tree.Insert(9100, UniformCircle(Pt(5000, 5000), 12))
			survived = opErr == nil && fault.Remaining() > 0
			if err := tree.Discard(); err != nil {
				t.Fatalf("offset %d: discard: %v", k, err)
			}
		}

		// Live-page count as the crash left it (Alloc persists the header,
		// so leaked fresh pages are counted live here).
		raw, err := pagefile.OpenFileStore(work)
		if err != nil {
			t.Fatalf("offset %d: raw reopen: %v", k, err)
		}
		liveBefore := raw.NumPages()
		if err := raw.Close(); err != nil {
			t.Fatal(err)
		}

		rt, err := OpenTree(work, cfg)
		if err != nil {
			t.Fatalf("offset %d: reopen after crash: %v", k, err)
		}
		reach, err := rt.inner.ReachablePages()
		if err != nil {
			t.Fatalf("offset %d: reachable walk: %v", k, err)
		}
		reach[pagefile.PageID(1)] = true // metadata page
		if live := rt.file.NumPages(); live != len(reach) {
			t.Fatalf("offset %d: %d live pages but only %d reachable — sweep left leaks", k, live, len(reach))
		}
		if rt.file.NumPages() < liveBefore {
			sweptAny = true
		}
		if err := rt.CheckInvariants(); err != nil {
			t.Fatalf("offset %d: recovered invariants: %v", k, err)
		}
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		if survived {
			break
		}
	}
	if !sweptAny {
		t.Fatal("no crash offset leaked a page; the sweep was never exercised")
	}
}

func TestCrashRecoveryKilledDelete(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep skipped in -short")
	}
	cfg := Config{Dimensions: 2, ExactRefinement: true, Seed: 5}
	path := filepath.Join(t.TempDir(), "golden.utree")
	gcfg := cfg
	gcfg.Path = path
	wantLen, want := buildCrashGolden(t, path, gcfg)
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	queries := crashQueries()

	// The killed operation: delete the far-away victim (id 9000 at
	// (6000,6000), inserted by the golden build).
	runCrashSweep(t, golden, cfg, queries,
		func(tree *Tree) error {
			return tree.DeleteWithRegion(9000, Box(Pt(5988, 5988), Pt(6012, 6012)))
		},
		func(t *testing.T, k int, rt *Tree, opOK bool) {
			got := crashSearchAll(t, rt, queries)
			requireSameResults(t, "recovered", want, got)
			switch {
			case opOK && rt.Len() == wantLen-1: // delete committed and durable
			case !opOK && rt.Len() == wantLen: // delete never published
			default:
				t.Fatalf("offset %d: opOK=%v but recovered Len %d (atomicity: want %d on failure, %d on success)",
					k, opOK, rt.Len(), wantLen, wantLen-1)
			}
		})
}
