package uncertain

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// This file is the correctness contract of the context-first query API:
// cancellation must take effect within a couple of page latencies and must
// not leak prefetch goroutines or corrupt the index; WithPageBudget must
// stop a query after exactly the budgeted number of physical fetches; the
// batch engine must propagate cancellation to in-flight queries instead of
// letting a failed batch run to completion.

// cancelFixture builds a file-backed ConcurrentTree whose physical page
// accesses cost `latency` each (armed only after the build, which runs at
// zero latency), with a pool small enough that real queries miss.
func cancelFixture(t *testing.T, latency time.Duration, prefetch int) (*ConcurrentTree, []RangeQuery) {
	t.Helper()
	ct, err := NewConcurrentTree(Config{
		Dimensions:      2,
		ExactRefinement: true,
		BufferPages:     8,
		PrefetchWorkers: prefetch,
		Path:            filepath.Join(t.TempDir(), "cancel.utree"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ct.Close() })
	if err := ct.BulkLoad(shardedFixtureObjects(800, 61)); err != nil {
		t.Fatal(err)
	}
	if err := ct.Flush(); err != nil {
		t.Fatal(err)
	}
	ct.SetSimulatedPageLatency(latency)
	return ct, shardedFixtureQueries(40, 62)
}

// waitGoroutines waits for the goroutine count to settle back to the
// baseline (small slack for runtime housekeeping goroutines).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d alive, baseline %d", n, baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSearchCancelMidTraversal is the headline cancellation contract: a
// file-backed query over 2 ms page latency, cancelled mid-traversal, must
// return context.Canceled within ~2 page latencies, leave no prefetch
// goroutines behind, and leave the index structurally intact and fully
// usable. Run with -race: the prefetch fan-out's fetch goroutines must be
// drained inside the query's lock window even on the cancel path.
func TestSearchCancelMidTraversal(t *testing.T) {
	const latency = 2 * time.Millisecond
	for _, prefetch := range []int{0, 4} {
		t.Run(fmt.Sprintf("prefetch=%d", prefetch), func(t *testing.T) {
			ct, queries := cancelFixture(t, latency, prefetch)
			baseline := runtime.NumGoroutine()

			// The whole-domain query touches far more pages than fit in the
			// 8-page pool: uncancelled it costs hundreds of milliseconds.
			big := Box(Pt(0, 0), Pt(1000, 1000))
			ctx, cancel := context.WithCancel(context.Background())
			var cancelledAt time.Time
			timer := time.AfterFunc(5*time.Millisecond, func() {
				cancelledAt = time.Now()
				cancel()
			})
			defer timer.Stop()

			res, stats, err := ct.Search(ctx, big, 0.3)
			returned := time.Now()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if cancelledAt.IsZero() {
				t.Fatal("query finished before the cancel fired; grow the fixture")
			}
			if lag := returned.Sub(cancelledAt); lag > 10*time.Millisecond {
				t.Fatalf("cancel-to-return took %v, want < 10ms (~2 page latencies + drain)", lag)
			}
			if stats.Results != len(res) {
				t.Fatalf("partial stats.Results = %d, len(res) = %d", stats.Results, len(res))
			}
			waitGoroutines(t, baseline)

			// The index must stay sound and answer the same query fully once
			// the pressure is off.
			ct.SetSimulatedPageLatency(0)
			if err := ct.CheckInvariants(); err != nil {
				t.Fatalf("invariants after cancel: %v", err)
			}
			full, _, err := ct.Search(context.Background(), big, 0.3)
			if err != nil {
				t.Fatalf("query after cancel: %v", err)
			}
			if len(full) == 0 {
				t.Fatal("full query empty after cancel")
			}
			// The cancelled run's results must be a prefix of the full run's:
			// the traversal order is deterministic, the cancel only cut it.
			if len(res) > len(full) {
				t.Fatalf("partial run returned %d results, full run %d", len(res), len(full))
			}
			for i := range res {
				if res[i] != full[i] {
					t.Fatalf("partial result %d = %+v, full run has %+v", i, res[i], full[i])
				}
			}
			_ = queries
		})
	}
}

// TestSearchDeadlineAlreadyPassed: a context that is dead on arrival must
// stop the query before any page is fetched.
func TestSearchDeadlineAlreadyPassed(t *testing.T) {
	ct, queries := cancelFixture(t, 0, 0)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, stats, err := ct.Search(ctx, queries[0].Rect, queries[0].Prob)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if len(res) != 0 || stats.NodeAccesses != 0 {
		t.Fatalf("dead-on-arrival query did work: %d results, %d node accesses", len(res), stats.NodeAccesses)
	}
}

// TestNNCancel: the best-first NN traversal honors cancellation the same
// way (partial neighbors + ctx error + intact index).
func TestNNCancel(t *testing.T) {
	ct, _ := cancelFixture(t, 2*time.Millisecond, 0)
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(5*time.Millisecond, cancel)
	start := time.Now()
	_, _, err := ct.NearestNeighbors(ctx, Pt(500, 500), 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Millisecond {
		t.Fatalf("cancelled NN took %v", elapsed)
	}
	ct.SetSimulatedPageLatency(0)
	if err := ct.CheckInvariants(); err != nil {
		t.Fatalf("invariants after NN cancel: %v", err)
	}
}

// TestShardedCancel: cancelling a scatter-gathered query stops every shard
// and returns the caller's context error, not a shard-wrapped one.
func TestShardedCancel(t *testing.T) {
	st, err := NewShardedTree(4, Config{Dimensions: 2, ExactRefinement: true, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.BulkLoad(shardedFixtureObjects(800, 71)); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	st.SetSimulatedPageLatency(2 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(5*time.Millisecond, cancel)
	res, stats, err := st.Search(ctx, Box(Pt(0, 0), Pt(1000, 1000)), 0.3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The partial-result contract holds across the scatter-gather: the
	// merged stats reflect the work the shards did before the cancel, and
	// any partial results are real answers (5 ms bought each shard at
	// least its ~2 ms root read).
	if stats.NodeAccesses == 0 {
		t.Fatal("cancelled scatter-gather reported no work in its partial stats")
	}
	if stats.Results != len(res) {
		t.Fatalf("partial stats.Results = %d, len(res) = %d", stats.Results, len(res))
	}
	st.SetSimulatedPageLatency(0)
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("invariants after sharded cancel: %v", err)
	}
}

// TestPageBudgetExact is the WithPageBudget contract: with a 1-page pool
// (every distinct page access is physical) a query needing N fetches must
// fail with ErrBudgetExceeded at every budget < N — after performing
// exactly the budgeted number of fetches — and succeed at N with results
// identical to the unbudgeted query. Partial results must be a prefix of
// the full result sequence.
func TestPageBudgetExact(t *testing.T) {
	// NodeCacheEntries: -1 — the decoded-node cache serves repeat node
	// reads without any physical fetch, which would break this test's
	// premise; budget accounting under the cache is covered separately.
	ct, err := NewConcurrentTree(Config{Dimensions: 2, ExactRefinement: true, BufferPages: 1, NodeCacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	if err := ct.BulkLoad(shardedFixtureObjects(400, 81)); err != nil {
		t.Fatal(err)
	}
	if err := ct.Flush(); err != nil {
		t.Fatal(err)
	}

	rect := Box(Pt(200, 200), Pt(700, 700))
	const prob = 0.4
	full, fullStats, err := ct.Search(context.Background(), rect, prob, WithPageBudget(1<<30))
	if err != nil {
		t.Fatalf("unbounded budget: %v", err)
	}
	need := fullStats.PagesFetched
	// With a 1-page pool every node access and refinement I/O is physical.
	if want := fullStats.NodeAccesses + fullStats.RefinementIOs; need != want {
		t.Fatalf("full query fetched %d pages, want node+refinement = %d", need, want)
	}
	if need < 5 {
		t.Fatalf("fixture too small: full query needs only %d fetches", need)
	}
	plain, _, err := ct.Search(context.Background(), rect, prob)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, "budget=inf", [][]Result{plain}, [][]Result{full})

	for budget := 1; budget < need; budget++ {
		res, stats, err := ct.Search(context.Background(), rect, prob, WithPageBudget(budget))
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("budget %d: err = %v, want ErrBudgetExceeded", budget, err)
		}
		if stats.PagesFetched != budget {
			t.Fatalf("budget %d: performed %d physical fetches, want exactly the budget", budget, stats.PagesFetched)
		}
		if len(res) > len(full) {
			t.Fatalf("budget %d: %d results, full query %d", budget, len(res), len(full))
		}
		for i := range res {
			if res[i] != full[i] {
				t.Fatalf("budget %d: result %d = %+v, full run has %+v", budget, i, res[i], full[i])
			}
		}
	}
	res, stats, err := ct.Search(context.Background(), rect, prob, WithPageBudget(need))
	if err != nil {
		t.Fatalf("budget %d (= need): %v", need, err)
	}
	if stats.PagesFetched != need {
		t.Fatalf("budget = need: fetched %d, want %d", stats.PagesFetched, need)
	}
	requireSameResults(t, "budget=need", [][]Result{full}, [][]Result{res})
}

// TestPageBudgetNN: the NN traversal honors the budget with the same
// error identity and partial-answer semantics.
func TestPageBudgetNN(t *testing.T) {
	ct, err := NewConcurrentTree(Config{Dimensions: 2, BufferPages: 1, NodeCacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	if err := ct.BulkLoad(shardedFixtureObjects(400, 91)); err != nil {
		t.Fatal(err)
	}
	_, fullStats, err := ct.NearestNeighbors(context.Background(), Pt(500, 500), 5, WithPageBudget(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if fullStats.PagesFetched < 4 {
		t.Fatalf("fixture too small: NN needs only %d fetches", fullStats.PagesFetched)
	}
	budget := fullStats.PagesFetched / 2
	nns, stats, err := ct.NearestNeighbors(context.Background(), Pt(500, 500), 5, WithPageBudget(budget))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if stats.PagesFetched != budget {
		t.Fatalf("performed %d fetches, want exactly %d", stats.PagesFetched, budget)
	}
	if len(nns) > 5 {
		t.Fatalf("partial NN returned %d > k results", len(nns))
	}
}

// TestShardedBudgetPartial: per-shard budget exhaustion is not fatal to
// the scatter-gather — the merged partial results come back together with
// ErrBudgetExceeded.
func TestShardedBudgetPartial(t *testing.T) {
	st, err := NewShardedTree(2, Config{Dimensions: 2, ExactRefinement: true, BufferPages: 1, NodeCacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.BulkLoad(shardedFixtureObjects(600, 95)); err != nil {
		t.Fatal(err)
	}
	rect := Box(Pt(0, 0), Pt(1000, 1000))
	full, _, err := st.Search(context.Background(), rect, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := st.Search(context.Background(), rect, 0.3, WithPageBudget(3))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if len(res) >= len(full) {
		t.Fatalf("budgeted scatter returned %d results, full %d — expected a strict subset", len(res), len(full))
	}
	if stats.PagesFetched == 0 || stats.PagesFetched > 2*3 {
		t.Fatalf("merged PagesFetched = %d, want in (0, shards×budget]", stats.PagesFetched)
	}
	// Partial results must be real answers.
	fullByID := make(map[int64]Result, len(full))
	for _, r := range full {
		fullByID[r.ID] = r
	}
	for _, r := range res {
		if want, ok := fullByID[r.ID]; !ok || want != r {
			t.Fatalf("partial result %+v not among the full query's answers", r)
		}
	}
}

// TestQueryOptions covers the remaining per-query knobs: limit prefix
// semantics, per-query prefetch arming without the index-wide mutator, and
// per-query refinement control.
func TestQueryOptions(t *testing.T) {
	ct, err := NewConcurrentTree(Config{Dimensions: 2, MonteCarloSamples: 400, BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	if err := ct.BulkLoad(shardedFixtureObjects(600, 101)); err != nil {
		t.Fatal(err)
	}
	rect := Box(Pt(100, 100), Pt(900, 900))
	const prob = 0.3
	ctx := context.Background()

	full, fullStats, err := ct.Search(ctx, rect, prob)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 10 {
		t.Fatalf("fixture too small: %d results", len(full))
	}
	if fullStats.PrefetchIssued != 0 {
		t.Fatalf("default query issued %d prefetches on an unarmed index", fullStats.PrefetchIssued)
	}

	t.Run("WithLimit", func(t *testing.T) {
		limited, _, err := ct.Search(ctx, rect, prob, WithLimit(5))
		if err != nil {
			t.Fatal(err)
		}
		if len(limited) != 5 {
			t.Fatalf("limit 5 returned %d results", len(limited))
		}
		for i := range limited {
			if limited[i] != full[i] {
				t.Fatalf("limited result %d = %+v, want prefix of full run (%+v)", i, limited[i], full[i])
			}
		}
	})

	t.Run("WithPrefetchWorkers", func(t *testing.T) {
		res, stats, err := ct.Search(ctx, rect, prob, WithPrefetchWorkers(8))
		if err != nil {
			t.Fatal(err)
		}
		requireSameResults(t, "per-query prefetch", [][]Result{full}, [][]Result{res})
		if stats.PrefetchIssued == 0 {
			t.Fatal("WithPrefetchWorkers(8) issued no prefetches")
		}
		// The option must not have armed the index: the next plain query
		// runs serial again.
		_, after, err := ct.Search(ctx, rect, prob)
		if err != nil {
			t.Fatal(err)
		}
		if after.PrefetchIssued != 0 {
			t.Fatal("per-query prefetch leaked into the index default")
		}
	})

	t.Run("WithMonteCarloSamples", func(t *testing.T) {
		coarse, coarseStats, err := ct.Search(ctx, rect, prob, WithMonteCarloSamples(10))
		if err != nil {
			t.Fatal(err)
		}
		if coarseStats.ProbComputations != fullStats.ProbComputations {
			t.Fatalf("sample override changed refinement count: %d vs %d",
				coarseStats.ProbComputations, fullStats.ProbComputations)
		}
		differs := false
		for _, r := range coarse {
			for _, f := range full {
				if r.ID == f.ID && !r.Validated && !f.Validated && r.Prob != f.Prob {
					differs = true
				}
			}
		}
		if !differs && fullStats.ProbComputations > 0 {
			t.Fatal("10-sample refinement produced identical probabilities to 400-sample")
		}
	})

	t.Run("WithExactRefinement", func(t *testing.T) {
		exact1, _, err := ct.Search(ctx, rect, prob, WithExactRefinement(true))
		if err != nil {
			t.Fatal(err)
		}
		exact2, _, err := ct.Search(ctx, rect, prob, WithExactRefinement(true))
		if err != nil {
			t.Fatal(err)
		}
		requireSameResults(t, "exact repeat", [][]Result{exact1}, [][]Result{exact2})
		// The mode really switched: some object refined by both runs got a
		// different (exact vs Monte Carlo) probability. Membership may
		// differ by a borderline object or two, which is fine.
		differs := false
		for _, e := range exact1 {
			for _, f := range full {
				if e.ID == f.ID && !e.Validated && !f.Validated && e.Prob != f.Prob {
					differs = true
				}
			}
		}
		if !differs {
			t.Fatal("exact refinement produced identical probabilities to Monte Carlo")
		}
	})

	t.Run("NNWithLimit", func(t *testing.T) {
		nns, _, err := ct.NearestNeighbors(ctx, Pt(500, 500), 10, WithLimit(3))
		if err != nil {
			t.Fatal(err)
		}
		if len(nns) != 3 {
			t.Fatalf("NN limit 3 returned %d neighbors", len(nns))
		}
		fullNN, _, err := ct.NearestNeighbors(ctx, Pt(500, 500), 10)
		if err != nil {
			t.Fatal(err)
		}
		for i := range nns {
			if nns[i] != fullNN[i] {
				t.Fatalf("limited NN %d = %+v, full %+v", i, nns[i], fullNN[i])
			}
		}
	})
}

// TestEngineEarlyCancelLargeBatch is the QueryEngine leak-class
// regression: before the redesign, a batch error or cancellation only
// stopped *unstarted* tasks — everything in flight ran to completion. Now
// the batch context must abort in-flight queries mid-traversal, so an
// early-cancelled large batch over slow storage returns in milliseconds,
// not seconds.
func TestEngineEarlyCancelLargeBatch(t *testing.T) {
	ct, queries := cancelFixture(t, 2*time.Millisecond, 0)
	baseline := runtime.NumGoroutine()

	// 200 slow queries ≈ many seconds of serial page stalls at 4 workers.
	batch := make([]RangeQuery, 0, 200)
	for len(batch) < 200 {
		batch = append(batch, queries...)
	}
	eng := NewQueryEngine(ct, EngineOptions{Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(15*time.Millisecond, cancel)
	start := time.Now()
	_, stats, err := eng.SearchBatch(ctx, batch)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 200*time.Millisecond {
		t.Fatalf("early-cancelled batch took %v, want prompt abort (in-flight queries must observe ctx)", elapsed)
	}
	if stats.Cancelled == 0 {
		t.Fatal("cancelled batch reported zero cancelled queries")
	}
	waitGoroutines(t, baseline)
}

// TestEngineFirstErrorCancelsInFlight: the first real query error must
// cancel the in-flight siblings, not just stop handing out new tasks.
func TestEngineFirstErrorCancelsInFlight(t *testing.T) {
	ct, queries := cancelFixture(t, 2*time.Millisecond, 0)
	batch := make([]RangeQuery, 0, 101)
	batch = append(batch, RangeQuery{Rect: Box(Pt(0, 0), Pt(1, 1)), Prob: 42}) // invalid prob → immediate error
	for len(batch) < 101 {
		batch = append(batch, queries...)
	}
	eng := NewQueryEngine(ct, EngineOptions{Workers: 2})
	start := time.Now()
	_, _, err := eng.SearchBatch(context.Background(), batch)
	elapsed := time.Since(start)
	if err == nil || errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want the query-0 validation error", err)
	}
	if elapsed > 200*time.Millisecond {
		t.Fatalf("failed batch took %v before returning — in-flight work was not cancelled", elapsed)
	}
}

// TestEnginePerQueryTimeout: EngineOptions.QueryTimeout bounds each query
// without failing the batch; timed-out queries are counted.
func TestEnginePerQueryTimeout(t *testing.T) {
	ct, queries := cancelFixture(t, 2*time.Millisecond, 0)
	eng := NewQueryEngine(ct, EngineOptions{Workers: 2, QueryTimeout: 3 * time.Millisecond})
	out, stats, err := eng.SearchBatch(context.Background(), queries)
	if err != nil {
		t.Fatalf("per-query timeouts must not fail the batch: %v", err)
	}
	if stats.Cancelled == 0 {
		t.Fatal("3ms per-query timeout over 2ms page latency cancelled nothing")
	}
	if len(out) != len(queries) {
		t.Fatalf("batch returned %d slots for %d queries", len(out), len(queries))
	}
}

// TestEngineBudgetCounting: budget-exceeded queries keep their partial
// results, are counted, and do not fail the batch.
func TestEngineBudgetCounting(t *testing.T) {
	ct, err := NewConcurrentTree(Config{Dimensions: 2, ExactRefinement: true, BufferPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	if err := ct.BulkLoad(shardedFixtureObjects(600, 111)); err != nil {
		t.Fatal(err)
	}
	queries := shardedFixtureQueries(20, 112)
	eng := NewQueryEngine(ct, EngineOptions{Workers: 2})
	_, stats, err := eng.SearchBatch(context.Background(), queries, WithPageBudget(2))
	if err != nil {
		t.Fatalf("budget exhaustion must not fail the batch: %v", err)
	}
	if stats.BudgetExceeded == 0 {
		t.Fatal("2-page budget over a 1-page pool exhausted nothing")
	}
}
