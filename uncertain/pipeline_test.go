package uncertain

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// This file is the intra-query pipelining correctness contract: with any
// prefetch fan-out, every query must return byte-for-byte what the serial
// path returns — IDs, probabilities (Monte Carlo included: the pipelined
// path consumes the per-query-seeded refinement sampler in the identical
// order), validated flags, NN distances — on memory and file-backed
// stores, at 1/2/4 shards, and under a live writer stream. Run with -race:
// the prefetcher's fetch goroutines touch the buffer pool and store
// concurrently.

// pipelineSearchAll runs every query (with the given per-query options,
// e.g. WithPrefetchWorkers) and returns raw (unsorted) results — order is
// part of the byte-identical contract for a single index.
func pipelineSearchAll(t *testing.T, idx Index, queries []RangeQuery, opts ...QueryOption) [][]Result {
	t.Helper()
	out := make([][]Result, len(queries))
	for i, q := range queries {
		res, stats, err := idx.Search(context.Background(), q.Rect, q.Prob, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Results != len(res) {
			t.Fatalf("query %d: stats.Results = %d, len = %d", i, stats.Results, len(res))
		}
		out[i] = res
	}
	return out
}

func requireSameResults(t *testing.T, label string, want, got [][]Result) {
	t.Helper()
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("%s query %d: %d results, serial %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("%s query %d result %d: %+v, serial %+v",
					label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestPipelinedRangeEquivalence compares the serial and pipelined range
// paths on one ConcurrentTree, Monte Carlo refinement (the strictest
// check: any reordering of sampler consumption would change
// probabilities), memory and file-backed stores.
func TestPipelinedRangeEquivalence(t *testing.T) {
	objects := shardedFixtureObjects(600, 11)
	queries := shardedFixtureQueries(60, 12)

	for _, backend := range []string{"mem", "file"} {
		t.Run(backend, func(t *testing.T) {
			cfg := Config{Dimensions: 2, MonteCarloSamples: 400, Seed: 7, BufferPages: 32}
			if backend == "file" {
				cfg.Path = filepath.Join(t.TempDir(), "pipe.utree")
			}
			ct, err := NewConcurrentTree(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer ct.Close()
			if err := ct.BulkLoad(objects); err != nil {
				t.Fatal(err)
			}

			want := pipelineSearchAll(t, ct, queries)
			nonEmpty, refined := 0, 0
			for _, w := range want {
				if len(w) > 0 {
					nonEmpty++
				}
				for _, r := range w {
					if !r.Validated {
						refined++
					}
				}
			}
			if nonEmpty == 0 || refined == 0 {
				t.Fatalf("degenerate workload: %d non-empty queries, %d refined results", nonEmpty, refined)
			}

			for _, w := range []int{1, 2, 4, 8} {
				got := pipelineSearchAll(t, ct, queries, WithPrefetchWorkers(w))
				requireSameResults(t, fmt.Sprintf("prefetch=%d", w), want, got)

				// Deterministic RO seeding: repeating a query with prefetch
				// on must reproduce its own Monte Carlo probabilities.
				again := pipelineSearchAll(t, ct, queries, WithPrefetchWorkers(w))
				requireSameResults(t, fmt.Sprintf("prefetch=%d repeat", w), got, again)
			}
			got := pipelineSearchAll(t, ct, queries, WithPrefetchWorkers(0))
			requireSameResults(t, "prefetch disarmed", want, got)
		})
	}
}

// TestPipelinedStatsParity checks the logical cost counters are unchanged
// by pipelining (only wall time and the prefetch counters may differ).
func TestPipelinedStatsParity(t *testing.T) {
	objects := shardedFixtureObjects(500, 21)
	queries := shardedFixtureQueries(40, 22)
	ct, err := NewConcurrentTree(Config{Dimensions: 2, ExactRefinement: true, BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	if err := ct.BulkLoad(objects); err != nil {
		t.Fatal(err)
	}

	serial := make([]Stats, len(queries))
	for i, q := range queries {
		_, serial[i], err = ct.Search(context.Background(), q.Rect, q.Prob)
		if err != nil {
			t.Fatal(err)
		}
	}
	issued := 0
	for i, q := range queries {
		_, st, err := ct.Search(context.Background(), q.Rect, q.Prob, WithPrefetchWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		issued += st.PrefetchIssued
		if st.PrefetchWasted != 0 {
			t.Fatalf("query %d: range prefetch wasted %d pages (range queries claim every prefetch)", i, st.PrefetchWasted)
		}
		st.PrefetchIssued, st.PrefetchCoalesced, st.PrefetchWasted = 0, 0, 0
		// Node-cache outcomes depend on cache warmth (the serial pass ran
		// cold, this pass runs hot), not on pipelining — but the total
		// node reads they split must match the logical node accesses.
		if st.NodeCacheHits+st.NodeCacheMisses != serial[i].NodeCacheHits+serial[i].NodeCacheMisses {
			t.Fatalf("query %d: pipelined cache lookups %d+%d, serial %d+%d",
				i, st.NodeCacheHits, st.NodeCacheMisses, serial[i].NodeCacheHits, serial[i].NodeCacheMisses)
		}
		st.NodeCacheHits, st.NodeCacheMisses = serial[i].NodeCacheHits, serial[i].NodeCacheMisses
		st.FilterTime, st.RefineTime = serial[i].FilterTime, serial[i].RefineTime
		if st != serial[i] {
			t.Fatalf("query %d: pipelined stats %+v, serial %+v", i, st, serial[i])
		}
	}
	if issued == 0 {
		t.Fatal("prefetch armed but no prefetches issued over the workload")
	}
}

// TestPipelinedShardedEquivalence: pipelined sharded scatter-gather must
// match the serial single tree byte-for-byte (exact refinement, ID-sorted
// merge contract).
func TestPipelinedShardedEquivalence(t *testing.T) {
	objects := shardedFixtureObjects(600, 31)
	queries := shardedFixtureQueries(50, 32)

	single, err := NewConcurrentTree(Config{Dimensions: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if err := single.BulkLoad(objects); err != nil {
		t.Fatal(err)
	}
	want := make([][]Result, len(queries))
	for i, q := range queries {
		res, _, err := single.Search(context.Background(), q.Rect, q.Prob)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sortByID(res)
	}

	for _, shards := range []int{1, 2, 4} {
		st, err := NewShardedTree(shards, Config{
			Dimensions: 2, ExactRefinement: true, PrefetchWorkers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.BulkLoad(objects); err != nil {
			t.Fatal(err)
		}
		got := pipelineSearchAll(t, st, queries)
		requireSameResults(t, fmt.Sprintf("shards=%d", shards), want, got)
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPipelinedNNEquivalence compares serial and pipelined NN traversals
// (speculative prefetch must never change the k results or their
// expected distances).
func TestPipelinedNNEquivalence(t *testing.T) {
	objects := shardedFixtureObjects(500, 41)
	ct, err := NewConcurrentTree(Config{Dimensions: 2, MonteCarloSamples: 300, BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	if err := ct.BulkLoad(objects); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	points := make([]Point, 25)
	for i := range points {
		points[i] = Pt(rng.Float64()*1000, rng.Float64()*1000)
	}

	type nnAnswer struct {
		res []Neighbor
	}
	var want []nnAnswer
	for _, p := range points {
		for _, k := range []int{1, 5, 10} {
			res, _, err := ct.NearestNeighbors(context.Background(), p, k)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, nnAnswer{res})
		}
	}

	for _, w := range []int{2, 8} {
		i := 0
		for _, p := range points {
			for _, k := range []int{1, 5, 10} {
				res, stats, err := ct.NearestNeighbors(context.Background(), p, k, WithPrefetchWorkers(w))
				if err != nil {
					t.Fatal(err)
				}
				if len(res) != len(want[i].res) {
					t.Fatalf("prefetch=%d point %v k=%d: %d results, serial %d",
						w, p, k, len(res), len(want[i].res))
				}
				for j := range res {
					if res[j] != want[i].res[j] {
						t.Fatalf("prefetch=%d point %v k=%d result %d: %+v, serial %+v",
							w, p, k, j, res[j], want[i].res[j])
					}
				}
				if stats.PrefetchIssued == 0 && stats.NodeAccesses > 2 {
					t.Fatalf("prefetch=%d point %v k=%d: multi-node NN issued no prefetches", w, p, k)
				}
				i++
			}
		}
	}
}

// TestPipelinedSearchUnderWriter runs pipelined searches concurrently with
// a writer stream on memory- and file-backed trees (1 and 2 shards): the
// prefetcher's fetch goroutines must stay inside the readers-writer
// exclusion (run with -race), and the index must stay sound. Afterwards,
// with the writer quiesced, pipelined results must again match serial.
func TestPipelinedSearchUnderWriter(t *testing.T) {
	objects := shardedFixtureObjects(400, 51)
	queries := shardedFixtureQueries(30, 52)

	for _, tc := range []struct {
		name   string
		shards int
		file   bool
	}{
		{"mem-1shard", 1, false},
		{"mem-2shards", 2, false},
		{"file-2shards", 2, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Dimensions: 2, ExactRefinement: true, PrefetchWorkers: 4, BufferPages: 32}
			if tc.file {
				cfg.Path = filepath.Join(t.TempDir(), "pipe.utree")
			}
			var idx Index
			var err error
			if tc.shards == 1 {
				idx, err = NewConcurrentTree(cfg)
			} else {
				idx, err = NewShardedTree(tc.shards, cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer idx.Close()
			if err := idx.BulkLoad(objects); err != nil {
				t.Fatal(err)
			}

			stop := make(chan struct{})
			var writerErr error
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(99))
				for id := int64(10_000_000); ; id++ {
					select {
					case <-stop:
						return
					default:
					}
					c := Pt(rng.Float64()*1000, rng.Float64()*1000)
					if err := idx.Insert(id, UniformCircle(c, 10)); err != nil {
						writerErr = err
						return
					}
					if id%3 == 0 {
						if err := idx.Delete(id); err != nil {
							writerErr = err
							return
						}
					}
					time.Sleep(200 * time.Microsecond)
				}
			}()

			var searchWG sync.WaitGroup
			for g := 0; g < 4; g++ {
				searchWG.Add(1)
				go func(g int) {
					defer searchWG.Done()
					for pass := 0; pass < 3; pass++ {
						for i, q := range queries {
							if (i+pass)%4 != g {
								continue
							}
							if _, _, err := idx.Search(context.Background(), q.Rect, q.Prob); err != nil {
								t.Errorf("goroutine %d: %v", g, err)
								return
							}
						}
					}
				}(g)
			}
			searchWG.Wait()
			close(stop)
			wg.Wait()
			if writerErr != nil {
				t.Fatalf("writer: %v", writerErr)
			}
			if err := idx.CheckInvariants(); err != nil {
				t.Fatalf("invariants after mixed load: %v", err)
			}

			// Quiesced: pipelined vs serial on the mutated index.
			serialWant := pipelineSearchAll(t, idx, queries, WithPrefetchWorkers(0))
			got := pipelineSearchAll(t, idx, queries, WithPrefetchWorkers(4))
			requireSameResults(t, tc.name+" quiesced", serialWant, got)
		})
	}
}
