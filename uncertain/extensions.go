package uncertain

import (
	"context"

	"repro/internal/core"
	"repro/internal/updf"
)

// This file exposes the library's extensions beyond the paper's prob-range
// query: polygon and mixture pdfs ("uncertainty regions of any shapes"),
// expected-distance nearest neighbors, STR bulk loading and the analytical
// cost model (the paper's stated future work, Section 7).

// UniformPolygon is a uniform pdf over a 2D convex polygon (the convex hull
// of the given points is used).
func UniformPolygon(vertices []Point) PDF {
	vs := make([]Point, len(vertices))
	copy(vs, vertices)
	return updf.NewUniformPolygon(vs)
}

// MixturePDF is a weighted mixture of pdfs — multi-modal uncertainty.
// Weights are normalized internally.
func MixturePDF(components []PDF, weights []float64) PDF {
	return updf.NewMixture(components, weights)
}

// Neighbor is one nearest-neighbor result.
type Neighbor = core.NNResult

// NNStats reports nearest-neighbor traversal cost.
type NNStats = core.NNStats

// NearestNeighbors returns the k objects with the smallest expected
// distance E[dist(o, q)] to the query point, ascending. It honors ctx and
// the per-query options under the same contract as Search (WithLimit caps
// k; a cancelled traversal returns the neighbors found so far with
// ctx.Err()).
func (t *Tree) NearestNeighbors(ctx context.Context, q Point, k int, opts ...QueryOption) ([]Neighbor, NNStats, error) {
	return t.inner.NearestNeighborsCtx(ctx, q, k, resolveOptions(opts))
}

// BulkLoad builds the index bottom-up (STR packing) from a batch of
// objects; the tree must be empty. Far faster than repeated Insert and
// produces a tighter tree; the index stays fully dynamic afterwards. The
// whole load commits as a single epoch: snapshots see either the empty
// tree or the complete load, never a partial one.
func (t *Tree) BulkLoad(objects map[int64]PDF) error {
	if err := t.commitPending(); err != nil {
		return err
	}
	objs := make([]core.Object, 0, len(objects))
	for id, p := range objects {
		objs = append(objs, core.Object{ID: id, PDF: p})
	}
	if err := t.inner.BulkLoad(objs); err != nil {
		return t.rollback(err)
	}
	if err := t.commit(); err != nil {
		return t.rollback(err)
	}
	for id, p := range objects {
		t.pdfs[id] = p.MBR()
	}
	return nil
}

// CostModel predicts query node accesses without executing queries; see
// Tree.BuildCostModel.
type CostModel = core.CostModel

// BuildCostModel summarizes the tree for analytical cost prediction over
// the given data domain.
func (t *Tree) BuildCostModel(domain Rect) (*CostModel, error) {
	return t.inner.BuildCostModel(domain)
}

// CatalogIndexFor maps a probability threshold to the catalog index used by
// the query descent (input to CostModel.EstimateNodeAccesses).
func (t *Tree) CatalogIndexFor(pq float64) int {
	return t.inner.CatalogIndexFor(pq)
}

// PlannerInfo is the adaptive planner's observability snapshot: whether
// planning is on, how many queries it decided, the lifetime predicted and
// measured node-access sums (their ratio is the live prediction error),
// the model's current calibration factor, and how often the model was
// rebuilt at commit.
type PlannerInfo = core.PlannerInfo

// PlannerInfo reports the adaptive planner's diagnostics (all zero
// without Config.AdaptivePlanning).
func (t *Tree) PlannerInfo() PlannerInfo { return t.inner.PlannerInfo() }

// PredictSearchIO predicts the node accesses of a Search with the given
// rectangle and threshold without executing it — the cost model's query
// surface, also used by the engine's admission control. ok is false when
// adaptive planning is off or no model has been built yet (tree too
// small or not committed since reaching modeling size).
func (t *Tree) PredictSearchIO(rect Rect, prob float64) (float64, bool) {
	return t.inner.PredictSearchIO(rect, prob)
}
