package uncertain

import (
	"context"

	"repro/internal/core"
	"repro/internal/updf"
)

// This file exposes the library's extensions beyond the paper's prob-range
// query: polygon and mixture pdfs ("uncertainty regions of any shapes"),
// expected-distance nearest neighbors, STR bulk loading and the analytical
// cost model (the paper's stated future work, Section 7).

// UniformPolygon is a uniform pdf over a 2D convex polygon (the convex hull
// of the given points is used).
func UniformPolygon(vertices []Point) PDF {
	vs := make([]Point, len(vertices))
	copy(vs, vertices)
	return updf.NewUniformPolygon(vs)
}

// MixturePDF is a weighted mixture of pdfs — multi-modal uncertainty.
// Weights are normalized internally.
func MixturePDF(components []PDF, weights []float64) PDF {
	return updf.NewMixture(components, weights)
}

// Neighbor is one nearest-neighbor result.
type Neighbor = core.NNResult

// NNStats reports nearest-neighbor traversal cost.
type NNStats = core.NNStats

// NearestNeighbors returns the k objects with the smallest expected
// distance E[dist(o, q)] to the query point, ascending. It honors ctx and
// the per-query options under the same contract as Search (WithLimit caps
// k; a cancelled traversal returns the neighbors found so far with
// ctx.Err()).
func (t *Tree) NearestNeighbors(ctx context.Context, q Point, k int, opts ...QueryOption) ([]Neighbor, NNStats, error) {
	return t.inner.NearestNeighborsCtx(ctx, q, k, resolveOptions(opts))
}

// BulkLoad builds the index bottom-up (STR packing) from a batch of
// objects; the tree must be empty. Far faster than repeated Insert and
// produces a tighter tree; the index stays fully dynamic afterwards. The
// whole load commits as a single epoch: snapshots see either the empty
// tree or the complete load, never a partial one.
func (t *Tree) BulkLoad(objects map[int64]PDF) error {
	if err := t.commitPending(); err != nil {
		return err
	}
	objs := make([]core.Object, 0, len(objects))
	for id, p := range objects {
		objs = append(objs, core.Object{ID: id, PDF: p})
	}
	if err := t.inner.BulkLoad(objs); err != nil {
		return t.rollback(err)
	}
	if err := t.commit(); err != nil {
		return t.rollback(err)
	}
	for id, p := range objects {
		t.pdfs[id] = p.MBR()
	}
	return nil
}

// CostModel predicts query node accesses without executing queries; see
// Tree.BuildCostModel.
type CostModel = core.CostModel

// BuildCostModel summarizes the tree for analytical cost prediction over
// the given data domain.
func (t *Tree) BuildCostModel(domain Rect) (*CostModel, error) {
	return t.inner.BuildCostModel(domain)
}

// CatalogIndexFor maps a probability threshold to the catalog index used by
// the query descent (input to CostModel.EstimateNodeAccesses).
func (t *Tree) CatalogIndexFor(pq float64) int {
	return t.inner.CatalogIndexFor(pq)
}
