package uncertain

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/pagefile"
)

// End-to-end fault-tolerance tests: chaos injection under the full index
// stack (checksummed file store → chaos → latency → retry → buffer pool →
// tree), checking the user-visible contract — transient faults invisible,
// corruption typed and quarantined, shard failures degradable — plus
// resource hygiene on every error path.

// faultTestConfig is the shared shape of these tests: a tiny page cache
// and no decoded-node cache, so queries genuinely hit the store and the
// fault machinery under test.
func faultTestConfig(path string) Config {
	return Config{
		Dimensions:       2,
		ExactRefinement:  true,
		Seed:             11,
		BufferPages:      4,
		NodeCacheEntries: -1,
		Path:             path,
		RetryAttempts:    6,
		RetryBaseDelay:   50 * time.Microsecond,
		RetryMaxDelay:    time.Millisecond,
	}
}

// TestTransientFaultsAbsorbedEndToEnd checks acceptance property (a):
// a workload under injected transient I/O faults completes with zero
// user-visible errors and answers identical to a fault-free twin.
func TestTransientFaultsAbsorbedEndToEnd(t *testing.T) {
	objects := shardedFixtureObjects(300, 7)
	queries := shardedFixtureQueries(25, 8)
	dir := t.TempDir()

	clean, err := NewConcurrentTree(faultTestConfig(filepath.Join(dir, "clean.utree")))
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()

	var chaos *pagefile.ChaosStore
	cfg := faultTestConfig(filepath.Join(dir, "chaotic.utree"))
	cfg.WrapStore = func(s pagefile.Store) pagefile.Store {
		chaos = pagefile.NewChaosStore(s, 3)
		return chaos
	}
	faulty, err := NewConcurrentTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer faulty.Close()
	chaos.MustAddRule(pagefile.ChaosRule{Op: pagefile.OpAny, Fault: pagefile.FaultTransient, Prob: 0.05})

	for _, idx := range []Index{clean, faulty} {
		if err := idx.BulkLoad(objects); err != nil {
			t.Fatalf("bulk load: %v", err)
		}
		if err := idx.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}

	for i, q := range queries {
		want, _, err := clean.Search(context.Background(), q.Rect, q.Prob)
		if err != nil {
			t.Fatalf("clean query %d: %v", i, err)
		}
		got, _, err := faulty.Search(context.Background(), q.Rect, q.Prob)
		if err != nil {
			t.Fatalf("query %d failed under transient faults: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results under faults, clean twin found %d", i, len(got), len(want))
		}
	}

	// The write path retries too: every mutation must succeed.
	for i := int64(0); i < 40; i++ {
		if err := faulty.Insert(10_000+i, UniformCircle(Pt(float64(10*i)+5, 500), 10)); err != nil {
			t.Fatalf("insert %d under transient faults: %v", i, err)
		}
		if i%4 == 3 {
			if err := faulty.Delete(10_000 + i); err != nil {
				t.Fatalf("delete %d under transient faults: %v", i, err)
			}
		}
	}
	if err := faulty.Flush(); err != nil {
		t.Fatalf("flush under transient faults: %v", err)
	}
	if err := faulty.CheckInvariants(); err != nil {
		t.Fatalf("invariants after faulted workload: %v", err)
	}

	h := faulty.Health()
	if injected := chaos.InjectedCount(pagefile.FaultTransient); injected == 0 {
		t.Fatal("chaos layer injected no faults — the test exercised nothing")
	} else if h.Retries == 0 {
		t.Fatalf("%d transient faults injected but Health reports zero retries", injected)
	}
	if h.QuarantinedPages != 0 {
		t.Fatalf("transient faults must not quarantine pages, got %d", h.QuarantinedPages)
	}
}

// TestBitFlipTypedErrorAndQuarantine checks acceptance property (b): a
// bit flip under the checksummed store surfaces as ErrChecksum/ErrBadPage
// — never as data — and the damaged page is quarantined so later reads
// fail fast with the recorded cause.
func TestBitFlipTypedErrorAndQuarantine(t *testing.T) {
	var chaos *pagefile.ChaosStore
	cfg := faultTestConfig(filepath.Join(t.TempDir(), "flip.utree"))
	cfg.BufferPages = 1 // evict aggressively so reads actually hit the medium
	cfg.WrapStore = func(s pagefile.Store) pagefile.Store {
		chaos = pagefile.NewChaosStore(s, 5)
		return chaos
	}
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Discard()
	flip, err := chaos.AddRule(pagefile.ChaosRule{Op: pagefile.OpRead, Fault: pagefile.FaultBitFlip, Countdown: -1, Bit: 12})
	if err != nil {
		t.Fatal(err)
	}

	if err := tree.BulkLoad(shardedFixtureObjects(200, 9)); err != nil {
		t.Fatal(err)
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}

	flip.Arm(0) // corrupt the medium under the next read
	all := Box(Pt(0, 0), Pt(1000, 1000))
	_, _, err = tree.Search(context.Background(), all, 0.3)
	if err == nil {
		t.Fatal("query over a flipped page succeeded — corruption was believed")
	}
	if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrBadPage) {
		t.Fatalf("corruption surfaced untyped: %v", err)
	}

	h := tree.Health()
	if h.QuarantinedPages == 0 {
		t.Fatalf("no page quarantined after checksum failure (health %+v)", h)
	}
	rec := h.Quarantined[0]
	if rec.Cause == "" {
		t.Fatalf("quarantine record has no cause: %+v", rec)
	}

	// The rule is spent; the second failure comes from quarantine alone.
	if _, _, err := tree.Search(context.Background(), all, 0.3); err == nil {
		t.Fatal("second query over the quarantined page succeeded")
	} else if !errors.Is(err, ErrBadPage) {
		t.Fatalf("quarantine fast-fail is untyped: %v", err)
	}

	// The medium is deliberately corrupt, so the teardown path is Discard;
	// both it and a late Close must be idempotent no-ops afterwards.
	if err := tree.Discard(); err != nil {
		t.Fatalf("discard: %v", err)
	}
	if err := tree.Discard(); err != nil {
		t.Fatalf("second discard: %v", err)
	}
	if err := tree.Close(); err != nil {
		t.Fatalf("close after discard: %v", err)
	}
}

// TestScrubberFindsSilentCorruption flips a bit directly on the medium —
// no query ever touches it — and waits for the background scrubber to
// find and quarantine the page.
func TestScrubberFindsSilentCorruption(t *testing.T) {
	var base pagefile.Corrupter
	cfg := faultTestConfig(filepath.Join(t.TempDir(), "scrub.utree"))
	cfg.ScrubInterval = time.Millisecond
	cfg.ScrubPageBudget = 32
	cfg.WrapStore = func(s pagefile.Store) pagefile.Store {
		base = s.(pagefile.Corrupter)
		return s
	}
	ct, err := NewConcurrentTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	if err := ct.BulkLoad(shardedFixtureObjects(200, 13)); err != nil {
		t.Fatal(err)
	}
	if err := ct.Flush(); err != nil {
		t.Fatal(err)
	}

	reach, err := ct.tree.inner.ReachablePages()
	if err != nil {
		t.Fatal(err)
	}
	var victim pagefile.PageID
	for p := range reach {
		if p > victim {
			victim = p
		}
	}
	if err := base.CorruptPayload(victim, 3); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		h := ct.Health()
		if h.QuarantinedPages > 0 {
			if h.ScrubErrors == 0 {
				t.Fatalf("page quarantined but no scrub error recorded: %+v", h)
			}
			found := false
			for _, rec := range h.Quarantined {
				if rec.Page == victim {
					found = true
				}
			}
			if !found {
				t.Fatalf("scrubber quarantined %+v, corrupted page was %d", h.Quarantined, victim)
			}
			if !h.ScrubberRunning {
				t.Fatal("health says the scrubber is not running")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrubber never found the corrupt page %d (health %+v)", victim, h)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDegradedShardedReads kills one shard's storage and checks the
// degraded-read contract: without WithAllowDegraded the query fails
// whole; with it, the healthy shards answer and the error is a
// *DegradedError naming the dead shard. All shards dead stays fatal.
func TestDegradedShardedReads(t *testing.T) {
	const shards = 3
	var stores []*pagefile.ChaosStore
	st, err := NewShardedTree(shards, Config{
		Dimensions:       2,
		ExactRefinement:  true,
		Seed:             17,
		BufferPages:      1,
		NodeCacheEntries: -1,
		WrapStore: func(s pagefile.Store) pagefile.Store {
			cs := pagefile.NewChaosStore(s, int64(len(stores)))
			stores = append(stores, cs)
			return cs
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if len(stores) != shards {
		t.Fatalf("WrapStore ran %d times for %d shards", len(stores), shards)
	}
	if err := st.BulkLoad(shardedFixtureObjects(400, 21)); err != nil {
		t.Fatal(err)
	}

	all := Box(Pt(0, 0), Pt(1000, 1000))
	baseline, _, err := st.Search(context.Background(), all, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	baseIDs := make(map[int64]float64, len(baseline))
	for _, r := range baseline {
		baseIDs[r.ID] = r.Prob
	}

	const dead = 1
	kill := stores[dead].MustAddRule(pagefile.ChaosRule{Op: pagefile.OpRead, Fault: pagefile.FaultPermanent, Countdown: -1, Sticky: true})
	kill.Arm(0)

	// Without the option the whole query fails, and not as degraded.
	if _, _, err := st.Search(context.Background(), all, 0.3); err == nil {
		t.Fatal("query with a dead shard succeeded without WithAllowDegraded")
	} else if errors.Is(err, ErrDegraded) {
		t.Fatalf("non-degraded query reported ErrDegraded: %v", err)
	}

	res, _, err := st.Search(context.Background(), all, 0.3, WithAllowDegraded(true))
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded query error = %v, want ErrDegraded", err)
	}
	var derr *DegradedError
	if !errors.As(err, &derr) {
		t.Fatalf("degraded error is not a *DegradedError: %v", err)
	}
	if len(derr.Shards) != 1 || derr.Shards[0] != dead {
		t.Fatalf("DegradedError.Shards = %v, want [%d]", derr.Shards, dead)
	}
	if len(res) == 0 {
		t.Fatal("degraded query returned no partial results")
	}
	for _, r := range res {
		prob, ok := baseIDs[r.ID]
		if !ok || prob != r.Prob {
			t.Fatalf("degraded result %d (P=%v) not in the clean baseline", r.ID, r.Prob)
		}
		if st.shardIndex(r.ID) == dead {
			t.Fatalf("degraded result %d is routed to the dead shard %d", r.ID, dead)
		}
	}

	// NN follows the same contract.
	nns, _, err := st.NearestNeighbors(context.Background(), Pt(500, 500), 5, WithAllowDegraded(true))
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded NN error = %v, want ErrDegraded", err)
	}
	if len(nns) == 0 {
		t.Fatal("degraded NN returned no partial neighbors")
	}
	for _, n := range nns {
		if st.shardIndex(n.ID) == dead {
			t.Fatalf("degraded neighbor %d is routed to the dead shard", n.ID)
		}
	}

	// Every shard dead → fatal even with the option.
	for i, cs := range stores {
		if i != dead {
			cs.MustAddRule(pagefile.ChaosRule{Op: pagefile.OpRead, Fault: pagefile.FaultPermanent, Sticky: true})
		}
	}
	if _, _, err := st.Search(context.Background(), all, 0.3, WithAllowDegraded(true)); err == nil {
		t.Fatal("query with every shard dead succeeded")
	} else if errors.Is(err, ErrDegraded) {
		t.Fatalf("all-shards-dead query downgraded to ErrDegraded: %v", err)
	}
}

// TestCloseDiscardIdempotentAllVariants double-Closes and cross-calls
// Close/Discard on every index variant; repeated teardown must be a nil
// no-op, including the group-commit timer's.
func TestCloseDiscardIdempotentAllVariants(t *testing.T) {
	mk := map[string]func() (Index, error){
		"tree": func() (Index, error) { return NewTree(Config{Dimensions: 2}) },
		"concurrent": func() (Index, error) {
			return NewConcurrentTree(Config{Dimensions: 2, GroupCommitInterval: time.Millisecond})
		},
		"sharded": func() (Index, error) { return NewShardedTree(2, Config{Dimensions: 2}) },
	}
	type discarder interface{ Discard() error }
	for name, build := range mk {
		idx, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := idx.Insert(1, UniformCircle(Pt(10, 10), 5)); err != nil {
			t.Fatalf("%s insert: %v", name, err)
		}
		if err := idx.Close(); err != nil {
			t.Fatalf("%s close: %v", name, err)
		}
		if err := idx.Close(); err != nil {
			t.Fatalf("%s second close: %v", name, err)
		}
		if err := idx.(discarder).Discard(); err != nil {
			t.Fatalf("%s discard after close: %v", name, err)
		}

		idx, err = build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := idx.(discarder).Discard(); err != nil {
			t.Fatalf("%s discard: %v", name, err)
		}
		if err := idx.Close(); err != nil {
			t.Fatalf("%s close after discard: %v", name, err)
		}
	}
}

// TestWriteBatchRollbackUnderWriteFaults fails a batch's commit with an
// injected permanent write fault and checks the rollback contract: the
// index reverts to the pre-batch epoch and stays fully usable.
func TestWriteBatchRollbackUnderWriteFaults(t *testing.T) {
	var chaos *pagefile.ChaosStore
	ct, err := NewConcurrentTree(Config{
		Dimensions:       2,
		ExactRefinement:  true,
		BufferPages:      4,
		NodeCacheEntries: -1,
		WrapStore: func(s pagefile.Store) pagefile.Store {
			chaos = pagefile.NewChaosStore(s, 19)
			return chaos
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	if err := ct.BulkLoad(shardedFixtureObjects(100, 23)); err != nil {
		t.Fatal(err)
	}
	all := Box(Pt(0, 0), Pt(1000, 1000))
	baseline, _, err := ct.Search(context.Background(), all, 0.3)
	if err != nil {
		t.Fatal(err)
	}

	boom := chaos.MustAddRule(pagefile.ChaosRule{Op: pagefile.OpWrite, Fault: pagefile.FaultPermanent, Countdown: -1})
	boom.Arm(0)
	err = ct.WriteBatch(func(w BatchWriter) error {
		for i := int64(0); i < 20; i++ {
			if err := w.Insert(5_000+i, UniformCircle(Pt(float64(40*i)+20, 700), 12)); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("batch with a failing write committed")
	}
	if boom.Triggered() == 0 {
		t.Fatal("write fault never fired — the batch failed for another reason")
	}

	if got := ct.Len(); got != 100 {
		t.Fatalf("len after rolled-back batch = %d, want 100", got)
	}
	after, _, err := ct.Search(context.Background(), all, 0.3)
	if err != nil {
		t.Fatalf("query after rollback: %v", err)
	}
	if len(after) != len(baseline) {
		t.Fatalf("results after rollback: %d, want %d", len(after), len(baseline))
	}
	if err := ct.CheckInvariants(); err != nil {
		t.Fatalf("invariants after rollback: %v", err)
	}

	// The rule is spent; the same batch must now commit.
	err = ct.WriteBatch(func(w BatchWriter) error {
		for i := int64(0); i < 20; i++ {
			if err := w.Insert(5_000+i, UniformCircle(Pt(float64(40*i)+20, 700), 12)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retried batch: %v", err)
	}
	if got := ct.Len(); got != 120 {
		t.Fatalf("len after retried batch = %d, want 120", got)
	}
}

// TestFaultedQueriesLeakNothing hammers prefetching queries with a mix of
// absorbed transient faults and hard failures, then checks the error
// paths released everything: no leaked snapshot pins, the reclaimer still
// drains, and no goroutines outlive Close.
func TestFaultedQueriesLeakNothing(t *testing.T) {
	baseline := runtime.NumGoroutine()

	var chaos *pagefile.ChaosStore
	cfg := faultTestConfig(filepath.Join(t.TempDir(), "leak.utree"))
	cfg.PrefetchWorkers = 4
	cfg.ReclaimInterval = time.Millisecond
	// The scrubber runs too (its goroutine is part of the leak check), but
	// at a loose interval: each collection cycle briefly pins the committed
	// epoch, and at a 1ms cadence under injected faults (retry backoff on
	// the collection reads) those pins are held almost continuously — the
	// pins==0 poll below needs scrubber-idle windows to observe.
	cfg.ScrubInterval = 20 * time.Millisecond
	cfg.WrapStore = func(s pagefile.Store) pagefile.Store {
		chaos = pagefile.NewChaosStore(s, 29)
		return chaos
	}
	ct, err := NewConcurrentTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.BulkLoad(shardedFixtureObjects(300, 31)); err != nil {
		t.Fatal(err)
	}
	chaos.MustAddRule(pagefile.ChaosRule{Op: pagefile.OpAny, Fault: pagefile.FaultTransient, Prob: 0.05})
	hard := chaos.MustAddRule(pagefile.ChaosRule{Op: pagefile.OpRead, Fault: pagefile.FaultPermanent, Countdown: -1})

	queries := shardedFixtureQueries(10, 33)
	failures := 0
	for round := 0; round < 8; round++ {
		hard.Arm(0) // one hard failure somewhere in this round
		for _, q := range queries {
			if _, _, err := ct.Search(context.Background(), q.Rect, q.Prob); err != nil {
				failures++
			}
		}
	}
	if failures == 0 {
		t.Fatal("no query failed — the hard-fault paths were never exercised")
	}

	// Error paths must have released their snapshot pins.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, pins, _ := ct.GCStats(); pins == 0 {
			break
		}
		if time.Now().After(deadline) {
			_, pins, _ := ct.GCStats()
			t.Fatalf("%d snapshot pins leaked by faulted queries", pins)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// With the hard rule spent, the index still works end to end and the
	// background reclaimer still drains garbage.
	if err := ct.WriteBatch(func(w BatchWriter) error {
		return w.Insert(9_999, UniformCircle(Pt(500, 500), 10))
	}); err != nil {
		t.Fatalf("write after faulted queries: %v", err)
	}
	for {
		info := ct.GCInfo()
		if info.PendingPages+info.PendingTombstones+info.PendingEpochs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reclaimer stalled after faults: %+v", ct.GCInfo())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := ct.CheckInvariants(); err != nil {
		t.Fatalf("invariants after faulted workload: %v", err)
	}
	if err := ct.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	for i := 0; i < 200; i++ {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d alive, baseline %d", runtime.NumGoroutine(), baseline)
}
