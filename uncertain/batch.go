package uncertain

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
)

// Group commit: instead of publishing one commit epoch per mutation (the
// pre-group behavior, still the default), a Tree can gather mutations into
// an open group and publish them together — one metadata write, one pool
// flush, one data-page flush, and at most one shadow relocation per node
// for the whole group. Groups close on a size threshold
// (Config.GroupCommitOps), an age deadline (Config.GroupCommitInterval),
// an explicit WriteBatch, or Flush/Close. Snapshots only ever observe
// committed group boundaries; a crash recovers to the last committed
// boundary, never mid-group.

// pdfUndo is one entry of the open group's bookkeeping journal: enough to
// restore the pdfs map if the group rolls back.
type pdfUndo struct {
	id   int64
	prev Rect
	had  bool
}

// grouping reports whether mutations should accumulate instead of
// auto-committing per op.
func (t *Tree) grouping() bool { return t.inBatch || t.gcOps > 1 || t.gcInterval > 0 }

// beginGroupOp opens the core batch lazily before a mutation joins a
// group, so the core layer sees the whole group as one explicit batch.
func (t *Tree) beginGroupOp() {
	if t.grouping() && !t.inner.InBatch() {
		_ = t.inner.BeginBatch() // only fails when already in a batch
	}
}

// trackInsert records the pdfs-map update (with its undo entry) for an
// insert that joined the open group.
func (t *Tree) trackInsert(id int64, mbr Rect) {
	prev, had := t.pdfs[id]
	t.undo = append(t.undo, pdfUndo{id: id, prev: prev, had: had})
	t.pdfs[id] = mbr
}

// trackDelete records the pdfs-map removal for a delete that joined the
// open group.
func (t *Tree) trackDelete(id int64) {
	prev, had := t.pdfs[id]
	t.undo = append(t.undo, pdfUndo{id: id, prev: prev, had: had})
	delete(t.pdfs, id)
}

// revertUndo replays the open group's bookkeeping journal backwards.
func (t *Tree) revertUndo() {
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		if u.had {
			t.pdfs[u.id] = u.prev
		} else {
			delete(t.pdfs, u.id)
		}
	}
	t.undo = t.undo[:0]
}

// noteOp counts a completed mutation into the open group and commits the
// group if the policy says so.
func (t *Tree) noteOp() error {
	if t.groupOps == 0 {
		t.groupStart = time.Now()
	}
	t.groupOps++
	return t.maybeCommit()
}

// maybeCommit applies the group-commit policy: never inside an explicit
// WriteBatch; immediately with grouping disabled; otherwise on the size
// threshold or the age deadline.
func (t *Tree) maybeCommit() error {
	if t.inBatch {
		return nil
	}
	if t.gcOps <= 1 && t.gcInterval == 0 {
		return t.commitGroupNow()
	}
	if t.gcOps > 1 && t.groupOps >= t.gcOps {
		return t.commitGroupNow()
	}
	if t.gcInterval > 0 && time.Since(t.groupStart) >= t.gcInterval {
		return t.commitGroupNow()
	}
	return nil
}

// commitGroupNow seals the open group as one epoch; on a commit failure
// the whole group rolls back.
func (t *Tree) commitGroupNow() error {
	if err := t.commit(); err != nil {
		return t.rollback(err)
	}
	t.groupOps = 0
	t.undo = t.undo[:0]
	return nil
}

// commitPending seals the open group if it holds any mutations.
func (t *Tree) commitPending() error {
	if t.groupOps == 0 {
		return nil
	}
	return t.commitGroupNow()
}

// pendingGroup reports the open group's size and age (zero age when
// empty) — the probe ConcurrentTree's deadline timer uses.
func (t *Tree) pendingGroup() (ops int, age time.Duration) {
	if t.groupOps == 0 {
		return 0, 0
	}
	return t.groupOps, time.Since(t.groupStart)
}

// BatchWriter is the mutation surface inside Tree.WriteBatch /
// ConcurrentTree.WriteBatch. Errors are sticky: after a failed operation
// (other than a not-found delete) the batch is already rolled back and
// every later call returns the same error.
type BatchWriter interface {
	// Insert adds an object to the batch.
	Insert(id int64, pdf PDF) error
	// Delete removes an object inserted in this process lifetime.
	Delete(id int64) error
	// DeleteWithRegion removes an object by ID and region MBR. A not-found
	// delete returns core's not-found error without poisoning the batch.
	DeleteWithRegion(id int64, regionMBR Rect) error
}

// treeBatch implements BatchWriter over a Tree whose inBatch flag
// suppresses the auto-commit policy.
type treeBatch struct {
	t   *Tree
	err error
}

func (b *treeBatch) run(op func() error) error {
	if b.err != nil {
		return fmt.Errorf("uncertain: batch already failed: %w", b.err)
	}
	if err := op(); err != nil {
		if !errors.Is(err, core.ErrNotFound) {
			b.err = err
		}
		return err
	}
	return nil
}

func (b *treeBatch) Insert(id int64, pdf PDF) error {
	return b.run(func() error { return b.t.Insert(id, pdf) })
}

func (b *treeBatch) Delete(id int64) error {
	return b.run(func() error { return b.t.Delete(id) })
}

func (b *treeBatch) DeleteWithRegion(id int64, regionMBR Rect) error {
	return b.run(func() error { return b.t.DeleteWithRegion(id, regionMBR) })
}

// WriteBatch runs fn against a batch writer and commits everything it did
// as ONE epoch: readers (snapshots, CommittedLen) observe either none of
// the batch or all of it, and for file-backed trees the whole batch
// becomes durable atomically — a crash recovers to this batch boundary or
// the previous one, never between. If fn returns an error or any mutation
// fails, the whole batch rolls back and the tree is unchanged. Any open
// auto-commit group is sealed (as its own epoch) first. Batches do not
// nest.
func (t *Tree) WriteBatch(fn func(BatchWriter) error) error {
	if t.inBatch {
		return fmt.Errorf("uncertain: nested WriteBatch")
	}
	if err := t.commitPending(); err != nil {
		return err
	}
	t.inBatch = true
	b := &treeBatch{t: t}
	err := fn(b)
	t.inBatch = false
	if b.err != nil {
		// The failing mutation already rolled the whole batch back.
		if err != nil {
			return err
		}
		return b.err
	}
	if err != nil {
		return t.rollback(err)
	}
	return t.commitPending()
}
