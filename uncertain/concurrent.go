package uncertain

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
)

// ConcurrentTree wraps a Tree with a readers-writer lock so searches run in
// parallel while updates serialize. The underlying U-tree is single-writer
// by design (like most paged trees); this wrapper is the supported way to
// share one index across goroutines.
type ConcurrentTree struct {
	mu   sync.RWMutex
	tree *Tree
}

// NewConcurrentTree creates a lock-protected index.
func NewConcurrentTree(cfg Config) (*ConcurrentTree, error) {
	t, err := NewTree(cfg)
	if err != nil {
		return nil, err
	}
	return &ConcurrentTree{tree: t}, nil
}

// Insert adds an object (exclusive lock).
func (c *ConcurrentTree) Insert(id int64, pdf PDF) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.Insert(id, pdf)
}

// Delete removes an object by ID (exclusive lock).
func (c *ConcurrentTree) Delete(id int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.Delete(id)
}

// BulkLoad batch-builds an empty index (exclusive lock).
func (c *ConcurrentTree) BulkLoad(objects map[int64]PDF) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.BulkLoad(objects)
}

// Search answers a probabilistic range query under the read lock: any
// number of goroutines may search in parallel while updates serialize. The
// read path is genuinely shared-state free — the buffer pool is sharded,
// and each query's refinement sampler is seeded deterministically from the
// (tree seed, query) pair (core.RangeQueryRO) — so parallel searches scale
// with cores and results are reproducible per query. Cancellation releases
// the read lock within roughly one page latency, so a stuck query cannot
// starve a waiting writer. QueryEngine builds batch fan-out on top of
// this.
func (c *ConcurrentTree) Search(ctx context.Context, rect Rect, prob float64, opts ...QueryOption) ([]Result, Stats, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tree.inner.RangeQueryROCtx(ctx, core.Query{Rect: rect, Prob: prob}, resolveOptions(opts))
}

// NearestNeighbors answers an expected-distance k-NN query (read lock; see
// Search for concurrency and cancellation semantics).
func (c *ConcurrentTree) NearestNeighbors(ctx context.Context, q Point, k int, opts ...QueryOption) ([]Neighbor, NNStats, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tree.inner.NearestNeighborsCtx(ctx, q, k, resolveOptions(opts))
}

// CacheStats reports the underlying buffer pool's cumulative hit/miss
// counters (atomic; callable concurrently with searches).
func (c *ConcurrentTree) CacheStats() (hits, misses int64) {
	return c.tree.inner.CacheStats()
}

// SetSimulatedPageLatency re-arms the simulated storage latency (see
// Tree.SetSimulatedPageLatency); safe to call concurrently with queries.
//
// Deprecated: set Config.SimulatedPageLatency when opening the index; the
// mutator remains for build-then-measure tooling.
func (c *ConcurrentTree) SetSimulatedPageLatency(d time.Duration) {
	c.tree.SetSimulatedPageLatency(d)
}

// SetPrefetchWorkers re-arms the default intra-query prefetch fan-out
// (exclusive lock: in-flight queries finish on the old setting before it
// swaps).
//
// Deprecated: pass WithPrefetchWorkers per query — it takes no lock and
// stalls no reader — or set Config.PrefetchWorkers at open time.
func (c *ConcurrentTree) SetPrefetchWorkers(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tree.SetPrefetchWorkers(n)
}

// Flush writes buffered dirty pages through to the store (exclusive lock;
// see Tree.Flush for why this helps before read-heavy phases).
func (c *ConcurrentTree) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.Flush()
}

// Len returns the object count.
func (c *ConcurrentTree) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tree.Len()
}

// CheckInvariants validates the index structure. The traversal is
// read-only, so it shares the read lock with searches.
func (c *ConcurrentTree) CheckInvariants() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tree.CheckInvariants()
}

// Close flushes and closes the underlying tree.
func (c *ConcurrentTree) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.Close()
}
