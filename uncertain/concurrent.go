package uncertain

import "sync"

// ConcurrentTree wraps a Tree with a readers-writer lock so searches run in
// parallel while updates serialize. The underlying U-tree is single-writer
// by design (like most paged trees); this wrapper is the supported way to
// share one index across goroutines.
type ConcurrentTree struct {
	mu   sync.RWMutex
	tree *Tree
}

// NewConcurrentTree creates a lock-protected index.
func NewConcurrentTree(cfg Config) (*ConcurrentTree, error) {
	t, err := NewTree(cfg)
	if err != nil {
		return nil, err
	}
	return &ConcurrentTree{tree: t}, nil
}

// Insert adds an object (exclusive lock).
func (c *ConcurrentTree) Insert(id int64, pdf PDF) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.Insert(id, pdf)
}

// Delete removes an object by ID (exclusive lock).
func (c *ConcurrentTree) Delete(id int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.Delete(id)
}

// BulkLoad batch-builds an empty index (exclusive lock).
func (c *ConcurrentTree) BulkLoad(objects map[int64]PDF) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.BulkLoad(objects)
}

// Search answers a probabilistic range query.
//
// Note: this still takes the exclusive lock, not the read lock — a query
// mutates shared state (the buffer pool's LRU list and the refinement
// sampler), so concurrent queries on one tree are serialized. The win over
// bare Tree is safety, not parallel reads; use one ConcurrentTree per
// goroutine-pool shard for read scaling.
func (c *ConcurrentTree) Search(rect Rect, prob float64) ([]Result, Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.Search(rect, prob)
}

// NearestNeighbors answers an expected-distance k-NN query (see Search for
// locking semantics).
func (c *ConcurrentTree) NearestNeighbors(q Point, k int) ([]Neighbor, NNStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.NearestNeighbors(q, k)
}

// Len returns the object count.
func (c *ConcurrentTree) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tree.Len()
}

// Close flushes and closes the underlying tree.
func (c *ConcurrentTree) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.Close()
}
