package uncertain

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
)

// ConcurrentTree shares one U-tree across goroutines with snapshot
// isolation: every query pins the latest committed epoch and traverses it
// with NO lock held, while mutations — serialized among themselves by a
// writer mutex — build copy-on-write shadow pages and atomically publish
// a new epoch on commit. A long-running query therefore never blocks a
// writer and a slow writer never stalls a single read; a query sees
// exactly the epoch that was committed when it started (queries started
// before a delete still return the deleted object; queries started after
// do not). Retired pages are reclaimed by the epoch GC once no snapshot
// pins them.
type ConcurrentTree struct {
	mu   sync.Mutex // serializes writers; the read path takes no lock
	tree *Tree

	// Group-commit deadline timer (Config.GroupCommitInterval > 0): a bare
	// Tree only checks the deadline when the next mutation arrives, so an
	// idle writer's tail would sit uncommitted; the timer seals it within
	// roughly the interval. tickErr stashes a timer-side commit failure,
	// surfaced at the next Flush or Close.
	tickStop chan struct{}
	tickDone chan struct{}
	tickErr  error // under mu
}

// NewConcurrentTree creates a snapshot-isolated index.
func NewConcurrentTree(cfg Config) (*ConcurrentTree, error) {
	t, err := NewTree(cfg)
	if err != nil {
		return nil, err
	}
	c := &ConcurrentTree{tree: t}
	c.startGroupTimer(cfg.GroupCommitInterval)
	return c, nil
}

// startGroupTimer arms the group-commit deadline timer; no-op without an
// interval.
func (c *ConcurrentTree) startGroupTimer(interval time.Duration) {
	if interval <= 0 {
		return
	}
	period := interval / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	c.tickStop = make(chan struct{})
	c.tickDone = make(chan struct{})
	go func() {
		defer close(c.tickDone)
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-c.tickStop:
				return
			case <-tick.C:
				c.mu.Lock()
				if ops, age := c.tree.pendingGroup(); ops > 0 && age >= interval {
					if err := c.tree.commitPending(); err != nil && c.tickErr == nil {
						c.tickErr = err
					}
				}
				c.mu.Unlock()
			}
		}
	}()
}

// stopGroupTimer stops the deadline timer; idempotent.
func (c *ConcurrentTree) stopGroupTimer() {
	if c.tickStop == nil {
		return
	}
	close(c.tickStop)
	<-c.tickDone
	c.tickStop, c.tickDone = nil, nil
}

// takeTickErr returns and clears a stashed timer-side commit failure.
// Caller holds c.mu.
func (c *ConcurrentTree) takeTickErr() error {
	err := c.tickErr
	c.tickErr = nil
	return err
}

// Insert adds an object (writer lock; commit granularity follows the
// group-commit policy — its own epoch by default).
func (c *ConcurrentTree) Insert(id int64, pdf PDF) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.Insert(id, pdf)
}

// Delete removes an object by ID (writer lock; commit granularity follows
// the group-commit policy — snapshots pinned before the group's commit
// still see the object).
func (c *ConcurrentTree) Delete(id int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.Delete(id)
}

// DeleteWithRegion removes an object by ID and its region MBR (writer
// lock; see Tree.DeleteWithRegion for the session-tracking rationale).
func (c *ConcurrentTree) DeleteWithRegion(id int64, regionMBR Rect) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.DeleteWithRegion(id, regionMBR)
}

// WriteBatch runs fn under the writer lock and commits its mutations as
// ONE epoch: concurrent readers — who pin snapshots without the lock —
// observe either none of the batch or all of it, never a prefix. See
// Tree.WriteBatch for the rollback contract.
func (c *ConcurrentTree) WriteBatch(fn func(BatchWriter) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.WriteBatch(fn)
}

// BulkLoad batch-builds an empty index (writer lock; one epoch for the
// whole load).
func (c *ConcurrentTree) BulkLoad(objects map[int64]PDF) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.BulkLoad(objects)
}

// Search answers a probabilistic range query against a snapshot of the
// latest committed epoch, with no lock held: any number of goroutines
// search in parallel with each other AND with a live writer — a writer's
// page I/O never stalls a reader, because the writer only touches shadow
// pages the snapshot cannot reach. Each query's refinement sampler is
// seeded deterministically from the (tree seed, query) pair, so results
// are reproducible per query whatever the interleaving. QueryEngine
// builds batch fan-out on top of this.
func (c *ConcurrentTree) Search(ctx context.Context, rect Rect, prob float64, opts ...QueryOption) ([]Result, Stats, error) {
	snap := c.tree.inner.Snapshot()
	defer snap.Close()
	return snap.RangeQuery(ctx, core.Query{Rect: rect, Prob: prob}, resolveOptions(opts))
}

// NearestNeighbors answers an expected-distance k-NN query against a
// pinned snapshot (see Search for the isolation contract).
func (c *ConcurrentTree) NearestNeighbors(ctx context.Context, q Point, k int, opts ...QueryOption) ([]Neighbor, NNStats, error) {
	snap := c.tree.inner.Snapshot()
	defer snap.Close()
	return snap.NearestNeighbors(ctx, q, k, resolveOptions(opts))
}

// Snapshot pins the latest committed epoch and returns a handle whose
// queries all observe that same frozen tree — a consistent multi-query
// read. Close it when done; the pin holds the epoch's retired pages from
// reclamation until then.
func (c *ConcurrentTree) Snapshot() *Snapshot {
	return &Snapshot{inner: c.tree.inner.Snapshot()}
}

// CacheStats reports the underlying buffer pool's cumulative hit/miss
// counters (atomic; callable concurrently with searches).
func (c *ConcurrentTree) CacheStats() (hits, misses int64) {
	return c.tree.inner.CacheStats()
}

// NodeCacheStats reports the decoded-node cache's cumulative hit/miss
// counters. Safe to call concurrently with queries and the writer.
func (c *ConcurrentTree) NodeCacheStats() (hits, misses int64) {
	return c.tree.inner.NodeCacheStats()
}

// Epoch returns the last committed epoch number.
func (c *ConcurrentTree) Epoch() uint64 { return c.tree.Epoch() }

// PlannerInfo reports the adaptive planner's diagnostics (see
// Tree.PlannerInfo).
func (c *ConcurrentTree) PlannerInfo() PlannerInfo { return c.tree.PlannerInfo() }

// PredictSearchIO predicts a Search's node accesses without executing it
// (see Tree.PredictSearchIO).
func (c *ConcurrentTree) PredictSearchIO(rect Rect, prob float64) (float64, bool) {
	return c.tree.PredictSearchIO(rect, prob)
}

// GCStats reports the epoch collector's state (committed epoch, live
// snapshot pins, pages awaiting reclamation).
func (c *ConcurrentTree) GCStats() (epoch uint64, pins int, pendingPages int) {
	return c.tree.GCStats()
}

// GCInfo reports the epoch collector's full health (see Tree.GCInfo).
func (c *ConcurrentTree) GCInfo() GCInfo { return c.tree.GCInfo() }

// SetSimulatedPageLatency re-arms the simulated storage latency (see
// Tree.SetSimulatedPageLatency); safe to call concurrently with queries.
// A tooling hook for build-then-measure harnesses — not part of the Index
// interface; production code sets Config.SimulatedPageLatency.
func (c *ConcurrentTree) SetSimulatedPageLatency(d time.Duration) {
	c.tree.SetSimulatedPageLatency(d)
}

// Flush seals any open commit group, writes buffered dirty pages through
// to the store and drains retired pages the current snapshot pins allow
// (writer lock). Also surfaces any commit failure stashed by the
// group-deadline timer.
func (c *ConcurrentTree) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.tree.Flush()
	if terr := c.takeTickErr(); err == nil {
		err = terr
	}
	return err
}

// Len returns the object count of the latest committed epoch (lock-free;
// an in-progress mutation is not yet visible).
func (c *ConcurrentTree) Len() int {
	return c.tree.inner.CommittedLen()
}

// CheckInvariants validates the latest committed epoch's structure on a
// pinned snapshot — safe to run concurrently with a writer.
func (c *ConcurrentTree) CheckInvariants() error {
	snap := c.tree.inner.Snapshot()
	defer snap.Close()
	return snap.CheckInvariants()
}

// Close stops the group-deadline timer, commits final state (sealing any
// open group) and closes the underlying tree (writer lock). A commit
// failure stashed by the timer surfaces here if no Flush saw it first.
// Idempotent: the timer stops on the first call whatever the commit
// outcome, and repeated calls return nil.
func (c *ConcurrentTree) Close() error {
	c.stopGroupTimer()
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.tree.Close()
	if terr := c.takeTickErr(); err == nil {
		err = terr
	}
	return err
}

// Discard releases the index WITHOUT committing — the crash-simulation
// exit and the cleanup path after a storage failure (see Tree.Discard).
// Stops the group-deadline timer like Close; idempotent and safe after
// Close (and vice versa).
func (c *ConcurrentTree) Discard() error {
	c.stopGroupTimer()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tickErr = nil
	return c.tree.Discard()
}

// Snapshot is a pinned, immutable view of one committed epoch of a
// ConcurrentTree. All queries on it observe the same tree regardless of
// concurrent writers; Close releases the pin (idempotent). The zero value
// is not usable — obtain one from ConcurrentTree.Snapshot.
type Snapshot struct {
	inner *core.Snapshot
}

// Search answers a probabilistic range query against the pinned epoch
// (same contract as ConcurrentTree.Search, minus the "latest epoch" part).
func (s *Snapshot) Search(ctx context.Context, rect Rect, prob float64, opts ...QueryOption) ([]Result, Stats, error) {
	return s.inner.RangeQuery(ctx, core.Query{Rect: rect, Prob: prob}, resolveOptions(opts))
}

// NearestNeighbors answers an expected-distance k-NN query against the
// pinned epoch.
func (s *Snapshot) NearestNeighbors(ctx context.Context, q Point, k int, opts ...QueryOption) ([]Neighbor, NNStats, error) {
	return s.inner.NearestNeighbors(ctx, q, k, resolveOptions(opts))
}

// Len returns the object count at the pinned epoch.
func (s *Snapshot) Len() int { return s.inner.Len() }

// Epoch returns the pinned epoch number.
func (s *Snapshot) Epoch() uint64 { return s.inner.Epoch() }

// CheckInvariants validates the pinned epoch's structure.
func (s *Snapshot) CheckInvariants() error { return s.inner.CheckInvariants() }

// Close releases the pin; idempotent. Retired pages of later epochs drain
// at the next writer-side commit or flush.
func (s *Snapshot) Close() { s.inner.Close() }
