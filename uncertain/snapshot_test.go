package uncertain

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// This file is the snapshot-isolation contract: queries pin the epoch
// that was committed when they started — a query started before a delete
// still sees the deleted object, one started after does not — readers
// take no lock at all, and the epoch GC reclaims every retired page once
// the pins drain (no page leak, no goroutine leak). Run with -race: the
// whole point is readers and a writer on the same tree at once.

func snapshotFixture(t *testing.T, n int) (*ConcurrentTree, Rect) {
	t.Helper()
	ct, err := NewConcurrentTree(Config{Dimensions: 2, ExactRefinement: true, BufferPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ct.Close() })
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < n; i++ {
		center := Pt(rng.Float64()*1000, rng.Float64()*1000)
		if err := ct.Insert(int64(i), UniformCircle(center, 10)); err != nil {
			t.Fatal(err)
		}
	}
	return ct, Box(Pt(-20, -20), Pt(1020, 1020)) // covers every object
}

func hasID(res []Result, id int64) bool {
	for _, r := range res {
		if r.ID == id {
			return true
		}
	}
	return false
}

// TestSnapshotSeesPreDeleteState is the deterministic core of the
// contract: a snapshot pinned before a delete keeps returning the deleted
// object; queries after the delete do not; and the snapshot's view is
// stable across arbitrarily many later writes.
func TestSnapshotSeesPreDeleteState(t *testing.T) {
	ct, all := snapshotFixture(t, 300)
	ctx := context.Background()
	const victim = int64(123)

	snap := ct.Snapshot()
	defer snap.Close()
	preEpoch := snap.Epoch()

	if err := ct.Delete(victim); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ { // more epochs of churn on top
		if err := ct.Insert(int64(10_000+i), UniformCircle(Pt(rand.Float64()*1000, rand.Float64()*1000), 10)); err != nil {
			t.Fatal(err)
		}
	}

	res, _, err := snap.Search(ctx, all, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !hasID(res, victim) {
		t.Fatalf("snapshot at epoch %d lost object %d deleted after the pin", preEpoch, victim)
	}
	if snap.Len() != 300 {
		t.Fatalf("snapshot Len = %d, want 300", snap.Len())
	}
	if err := snap.CheckInvariants(); err != nil {
		t.Fatalf("pinned epoch invariants: %v", err)
	}

	after, _, err := ct.Search(ctx, all, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if hasID(after, victim) {
		t.Fatalf("post-delete query still returns object %d", victim)
	}
	if ct.Epoch() <= preEpoch {
		t.Fatalf("epoch did not advance: %d -> %d", preEpoch, ct.Epoch())
	}

	// NN through the snapshot also sees the victim's record (refinement
	// must read a data record whose tombstone is deferred behind the pin).
	nn, _, err := snap.NearestNeighbors(ctx, Pt(500, 500), 300)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range nn {
		if n.ID == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapshot NN lost deleted object %d", victim)
	}
}

// TestSnapshotReclamation: once every snapshot is closed, a writer-side
// flush drains all retired pages and deferred tombstones — no page leak.
func TestSnapshotReclamation(t *testing.T) {
	ct, all := snapshotFixture(t, 200)
	ctx := context.Background()

	snap := ct.Snapshot()
	for i := int64(0); i < 40; i++ {
		if err := ct.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, pins, pending := ct.GCStats(); pins != 1 || pending == 0 {
		t.Fatalf("with a live pin: pins=%d pending=%d, want pins=1 and pending>0", pins, pending)
	}
	if _, _, err := snap.Search(ctx, all, 0.5); err != nil {
		t.Fatal(err)
	}
	snap.Close()
	snap.Close() // idempotent

	if err := ct.Flush(); err != nil { // writer-side reclaim
		t.Fatal(err)
	}
	if _, pins, pending := ct.GCStats(); pins != 0 || pending != 0 {
		t.Fatalf("after close+flush: pins=%d pending=%d, want 0/0", pins, pending)
	}
	if err := ct.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotReaderWriterHammer races many lock-free readers against a
// committing writer: every query must return internally consistent
// results (exact refinement: base objects outside the churn range are
// always present; churned IDs may or may not be, depending on the pinned
// epoch), invariants must hold on every pinned epoch, and after the storm
// drains there must be no goroutine leak and no retained garbage.
func TestSnapshotReaderWriterHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test skipped in -short")
	}
	before := runtime.NumGoroutine()

	ct, all := snapshotFixture(t, 150)
	ctx := context.Background()
	baseline, _, err := ct.Search(ctx, all, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	baseIDs := make(map[int64]bool, len(baseline))
	for _, r := range baseline {
		baseIDs[r.ID] = true
	}

	var stop atomic.Bool
	var writerErr, readerErr atomic.Value
	var wg sync.WaitGroup

	// Writer: churn a disjoint ID range [5000, ...), committing per op.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for id := int64(5000); !stop.Load(); id++ {
			center := Pt(rng.Float64()*1000, rng.Float64()*1000)
			if err := ct.Insert(id, UniformCircle(center, 10)); err != nil {
				writerErr.Store(err)
				return
			}
			if id%2 == 0 {
				if err := ct.Delete(id); err != nil {
					writerErr.Store(err)
					return
				}
			}
		}
	}()

	const readers = 6
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				res, _, err := ct.Search(ctx, all, 0.5)
				if err != nil {
					readerErr.Store(fmt.Errorf("reader %d search: %w", r, err))
					return
				}
				got := make(map[int64]bool, len(res))
				for _, re := range res {
					got[re.ID] = true
				}
				// Every base object is in every epoch; churned IDs are
				// epoch-dependent but must come from the writer's range.
				for id := range baseIDs {
					if !got[id] {
						readerErr.Store(fmt.Errorf("reader %d: base object %d missing", r, id))
						return
					}
				}
				for id := range got {
					if !baseIDs[id] && id < 5000 {
						readerErr.Store(fmt.Errorf("reader %d: phantom object %d", r, id))
						return
					}
				}
				if i%10 == 0 {
					snap := ct.Snapshot()
					if err := snap.CheckInvariants(); err != nil {
						snap.Close()
						readerErr.Store(fmt.Errorf("reader %d epoch %d invariants: %w", r, snap.Epoch(), err))
						return
					}
					snap.Close()
				}
			}
		}(r)
	}

	time.Sleep(1500 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if err, _ := writerErr.Load().(error); err != nil {
		t.Fatalf("writer: %v", err)
	}
	if err, _ := readerErr.Load().(error); err != nil {
		t.Fatalf("reader: %v", err)
	}

	// Quiesced: reclaim everything, then assert no leaks of any kind.
	if err := ct.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, pins, pending := ct.GCStats(); pins != 0 || pending != 0 {
		t.Fatalf("after drain: pins=%d pendingPages=%d, want 0/0", pins, pending)
	}
	if err := ct.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(50 * time.Millisecond) // let finished goroutines unwind
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutine leak: %d before, %d after drain", before, after)
	}
}
