// Package uncertain is the public API of the U-tree library: indexing
// multi-dimensional uncertain data with arbitrary probability density
// functions, after Tao, Cheng, Xiao, Ngai, Kao and Prabhakar (VLDB 2005).
//
// An uncertain object is a point whose position is described by a pdf over
// an uncertainty region. The U-tree answers probabilistic range queries —
// "find the objects inside rectangle r with probability at least p" —
// while avoiding expensive appearance-probability integration for almost
// all objects, using pre-computed probabilistically constrained regions
// compressed into linear conservative functional boxes.
//
// Quick start:
//
//	tree, _ := uncertain.NewTree(uncertain.Config{Dimensions: 2})
//	tree.Insert(1, uncertain.UniformCircle(uncertain.Pt(300, 400), 25))
//	results, _, _ := tree.Search(context.Background(),
//		uncertain.Box(uncertain.Pt(250, 350), uncertain.Pt(350, 450)), 0.8)
//
// Queries take a context (cancellation, deadlines) and per-query options
// (WithMonteCarloSamples, WithLimit, WithPageBudget, ...); see the
// QueryOption docs and examples/ for complete programs.
package uncertain

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/pagefile"
	"repro/internal/updf"
)

// Point is a position in d-dimensional space.
type Point = geom.Point

// Rect is an axis-aligned hyper-rectangle.
type Rect = geom.Rect

// PDF is a probability density function over an uncertainty region. Build
// one with the constructors below, or implement updf.PDF directly for fully
// custom distributions.
type PDF = updf.PDF

// Result is one object qualifying a probabilistic range query. When the
// index validated the object directly from its PCRs — the paper's headline
// saving — no appearance probability was ever computed: Validated is true
// and Prob is -1 ("validated without probability computation"). Prob holds
// the computed probability only for objects that went through refinement.
type Result = core.Result

// Stats reports the cost of one query in the paper's metrics: node
// accesses, appearance-probability computations, directly-validated counts
// and refinement I/Os.
type Stats = core.QueryStats

// Pt builds a Point.
func Pt(coords ...float64) Point { return Point(coords) }

// Box builds a rectangle from its corners; it panics on malformed corners.
func Box(lo, hi Point) Rect { return geom.NewRect(lo, hi) }

// UniformCircle is a uniform pdf over a d-dimensional ball (circle, sphere)
// — the paper's location-uncertainty model.
func UniformCircle(center Point, radius float64) PDF {
	return updf.NewUniformBall(center, radius)
}

// UniformBox is a uniform pdf over a rectangle.
func UniformBox(region Rect) PDF { return updf.NewUniformRect(region) }

// ConstrainedGaussian is the paper's Con-Gau (Equation 16): an isotropic
// Gaussian centered on the ball, renormalized over it.
func ConstrainedGaussian(center Point, radius, sigma float64) PDF {
	return updf.NewConGauBall(center, radius, sigma)
}

// TruncatedGaussianBox is an independent-Gaussian product truncated to a
// rectangle (closed-form marginals and probabilities).
func TruncatedGaussianBox(region Rect, mean Point, sigma []float64) PDF {
	return updf.NewGaussRect(region, mean, sigma)
}

// ExponentialBox is a truncated exponential product on a rectangle — a
// heavily skewed (Zipf-like) model.
func ExponentialBox(region Rect, rates []float64) PDF {
	return updf.NewExpoRect(region, rates)
}

// Histogram is a piecewise-constant pdf on a grid over a rectangle: the
// "arbitrary pdf" workhorse — any density can be approximated this way.
// weights are row-major cell masses (normalized internally).
func Histogram(region Rect, bins []int, weights []float64) PDF {
	return updf.NewHistogramRect(region, bins, weights)
}

// Config parameterizes a Tree.
type Config struct {
	// Dimensions of the data space (required).
	Dimensions int
	// UPCR selects the paper's comparison structure instead of the U-tree
	// (bigger entries storing all catalog PCRs). Mostly for experiments.
	UPCR bool
	// CatalogSize m (0 → paper defaults: 15 for U-tree, 9 for U-PCR).
	CatalogSize int
	// MonteCarloSamples is n1 of the refinement estimator (0 → 10000; the
	// paper uses 10^6 for <1% error).
	MonteCarloSamples int
	// ExactRefinement uses closed-form/quadrature probabilities instead of
	// Monte Carlo when the pdf supports it.
	ExactRefinement bool
	// Path makes the index file-backed (empty → in-memory).
	Path string
	// Seed for the refinement sampler (0 → 1).
	Seed int64
	// BufferPages sizes the page cache (0 → 256).
	BufferPages int
	// NodeCacheEntries sizes the decoded-node cache sitting above the page
	// cache: committed tree pages are immutable under the copy-on-write
	// epoch protocol, so their decoded in-memory nodes are shared across
	// queries (and across lock-free snapshot readers) until the page is
	// physically reclaimed. A hit skips the page fetch and the node decode
	// entirely — the query hot path runs allocation-free. 0 → 1024 entries;
	// negative disables the cache.
	NodeCacheEntries int
	// SimulatedPageLatency adds a fixed delay to every physical page read
	// and write, modeling disk- or network-resident storage (the paper's
	// cost model charges 10 ms per page access). Cache hits skip it, so it
	// makes buffer-pool effectiveness and batch-query parallelism
	// measurable on fast hardware. Zero (the default) disables it.
	SimulatedPageLatency time.Duration
	// PrefetchWorkers bounds the async page fetches a single query may
	// have in flight: queries overlap the independent page reads a
	// traversal already knows it needs (a level's surviving children, the
	// refinement data pages, the pages behind the next NN heap entries).
	// On latency-bound storage this pipelines one query's I/O stalls the
	// way the batch engine overlaps stalls across queries. 0 (the default)
	// disables intra-query prefetching. Results are byte-identical either
	// way; use WithPrefetchWorkers to override per query.
	PrefetchWorkers int
	// WrapStore, when set, wraps the base page store (file or memory)
	// before the latency and versioning layers — the fault-injection and
	// instrumentation hook (e.g. pagefile.FaultStore for crash-recovery
	// tests). Production code leaves it nil.
	WrapStore func(pagefile.Store) pagefile.Store
	// GroupCommitOps > 1 enables size-based group commit: mutations
	// accumulate in one open commit epoch and publish together once this
	// many have gathered (or earlier — at Flush, Close, an explicit
	// WriteBatch, or the GroupCommitInterval deadline). Grouping amortizes
	// the per-epoch cost (metadata write, pool flush, shadow relocations of
	// the root path) across the group; the trade-off is durability
	// granularity: a crash loses the uncommitted tail of the open group,
	// never a committed prefix. 0 or 1 keeps one-epoch-per-op auto-commit.
	GroupCommitOps int
	// GroupCommitInterval > 0 bounds how long an open group may age before
	// it commits. On a bare Tree the deadline is checked at each mutation;
	// ConcurrentTree additionally runs a timer so an idle writer's tail
	// commits within roughly the interval. Usable with or without
	// GroupCommitOps.
	GroupCommitInterval time.Duration
	// ReclaimInterval > 0 starts the background epoch reclaimer: retired
	// pages and data-record tombstones drain on a dedicated goroutine's
	// ticks instead of inline at commit — the commit path stops paying for
	// garbage, and garbage drains even while the writer idles.
	ReclaimInterval time.Duration
	// ReclaimPageBudget bounds the page operations (tombstone
	// read-modify-writes + page frees) one reclaimer tick may perform
	// (0 → pagefile.DefaultReclaimBudget). Ignored without ReclaimInterval.
	ReclaimPageBudget int
	// RetryAttempts bounds the storage stack's transient-fault retry loop:
	// the total attempts per page operation, including the first. 0 selects
	// the default (3); negative disables retrying entirely. Retries are
	// per-operation storage events, not logical I/O — a read that needed
	// three attempts is still one buffer-pool miss and one page-budget
	// charge. The traffic is observable in query Stats.Retries and
	// Health().Retries.
	RetryAttempts int
	// RetryBaseDelay / RetryMaxDelay shape the jittered exponential backoff
	// between retry attempts (0 → 100µs base, 10ms cap).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// ScrubInterval > 0 starts the background page scrubber: a goroutine
	// periodically walks the committed tree verifying page checksums (up to
	// ScrubPageBudget pages per tick), quarantining latent corruption
	// before any query trips over it. Progress appears in Health().
	ScrubInterval time.Duration
	// ScrubPageBudget bounds the verifications one scrub tick performs
	// (0 → core default). Ignored without ScrubInterval.
	ScrubPageBudget int
	// AdaptivePlanning enables the cost-model-driven query planner: the
	// index keeps an analytical cost model of its committed shape, predicts
	// each query's node accesses before descent, and picks the prefetch
	// fan-out and speculation budget from the prediction (serial when
	// cheap, deep pipeline when expensive). Measured accesses feed back
	// into the model on a sliding window. On a sharded index it also
	// enables root-MBR shard pruning and cost-ranked NN scatter-gather.
	// Explicit per-query options always override the planner's choices;
	// results are byte-identical with planning on or off. See PlannerInfo.
	AdaptivePlanning bool
	// ProbFilter enables the probabilistic candidate filter: candidates
	// whose qualification-probability upper bound (computed from their PCR
	// slabs) falls below the query threshold are discarded before
	// refinement. Only provably non-qualifying candidates drop, so the
	// result set is unchanged; under Monte-Carlo refinement the sampler
	// stream shifts, so bit-exact reproducibility against a filter-off run
	// is guaranteed only with ExactRefinement. Override per query with
	// WithProbFilter.
	ProbFilter bool
}

// Tree is a dynamic index over uncertain objects supporting probabilistic
// range search. Not safe for concurrent use.
type Tree struct {
	inner   *core.Tree
	file    *pagefile.FileStore
	meta    pagefile.PageID
	latency *pagefile.LatencyStore // always interposed by NewTree/OpenTree
	retry   *pagefile.RetryStore   // nil when Config.RetryAttempts < 0
	pdfs    map[int64]Rect         // id → region MBR, to make Delete(id) ergonomic
	closed  bool                   // set by Close/Discard; makes both idempotent

	// Group-commit state (see Config.GroupCommitOps and batch.go). undo
	// records the pdfs-map mutations of the open group so a rollback can
	// revert the session's Delete(id) bookkeeping along with the index.
	gcOps      int
	gcInterval time.Duration
	groupOps   int       // mutations in the open group
	groupStart time.Time // first mutation of the open group
	inBatch    bool      // explicit WriteBatch in progress
	undo       []pdfUndo
}

// NewTree creates an empty index.
func NewTree(cfg Config) (*Tree, error) {
	opt := core.Options{
		Dim:              cfg.Dimensions,
		CatalogSize:      cfg.CatalogSize,
		MCSamples:        cfg.MonteCarloSamples,
		ExactRefinement:  cfg.ExactRefinement,
		Seed:             cfg.Seed,
		BufferPages:      cfg.BufferPages,
		NodeCacheEntries: cfg.NodeCacheEntries,
		PrefetchWorkers:  cfg.PrefetchWorkers,
		ReclaimInterval:  cfg.ReclaimInterval,
		ReclaimBudget:    cfg.ReclaimPageBudget,
		ScrubInterval:    cfg.ScrubInterval,
		ScrubBudget:      cfg.ScrubPageBudget,
		AdaptivePlanning: cfg.AdaptivePlanning,
		ProbFilter:       cfg.ProbFilter,
	}
	if cfg.UPCR {
		opt.Kind = core.UPCR
	}
	t := &Tree{pdfs: make(map[int64]Rect), gcOps: cfg.GroupCommitOps, gcInterval: cfg.GroupCommitInterval}
	if cfg.Path != "" {
		fs, err := pagefile.CreateFileStore(cfg.Path)
		if err != nil {
			return nil, err
		}
		t.file = fs
		opt.Store = fs
		// Reserve the metadata page before the tree allocates its root so
		// OpenTree can always find it at page 1.
		meta, err := fs.Alloc()
		if err != nil {
			fs.Close()
			return nil, err
		}
		t.meta = meta
	}
	// Always interpose the latency store (zero delay is a no-sleep fast
	// path) so SetSimulatedPageLatency can arm or disarm at any time — a
	// conditional wrap would make later calls silent no-ops.
	base := opt.Store
	if base == nil {
		base = pagefile.NewMemStore()
	}
	if cfg.WrapStore != nil {
		base = cfg.WrapStore(base)
	}
	t.latency = pagefile.NewLatencyStore(base, cfg.SimulatedPageLatency, cfg.SimulatedPageLatency)
	opt.Store = t.buildRetry(cfg)
	inner, err := core.New(opt)
	if err != nil {
		if t.file != nil {
			t.file.Close()
		}
		return nil, err
	}
	t.inner = inner
	// Make the empty tree the first durable epoch: for file-backed trees
	// the metadata page now points at a committed root, so even a process
	// that dies before its first mutation leaves a reopenable file.
	if err := t.commit(); err != nil {
		t.Discard()
		return nil, err
	}
	return t, nil
}

// buildRetry tops the store stack with the transient-fault retry layer —
// above the simulated-latency store (each retry attempt is a fresh I/O and
// pays the modeled latency again) and below the versioning and buffer-pool
// layers (a retried read stays one pool miss and one page-budget charge).
// Enabled by default; Config.RetryAttempts < 0 disables it.
func (t *Tree) buildRetry(cfg Config) pagefile.Store {
	if cfg.RetryAttempts < 0 {
		return t.latency
	}
	t.retry = pagefile.NewRetryStore(t.latency, pagefile.RetryPolicy{
		MaxAttempts: cfg.RetryAttempts,
		BaseDelay:   cfg.RetryBaseDelay,
		MaxDelay:    cfg.RetryMaxDelay,
		Seed:        cfg.Seed,
	})
	return t.retry
}

// commit seals the open mutations as a new epoch — through the metadata
// page for file-backed trees (the crash-consistency point), directly for
// in-memory ones. With grouping disabled every mutating method
// auto-commits, so each completed Insert/Delete/BulkLoad is an epoch of
// its own; with group commit (Config.GroupCommitOps/Interval, WriteBatch)
// the whole group publishes as one epoch and snapshots see completed
// groups, never a partial one.
func (t *Tree) commit() error {
	if t.inner.InBatch() {
		if t.file != nil {
			return t.inner.CommitBatchWithMeta(t.meta)
		}
		return t.inner.CommitBatch()
	}
	if t.file != nil {
		return t.inner.CommitWithMeta(t.meta)
	}
	return t.inner.Commit()
}

// rollback rewinds every uncommitted mutation — the failing one and any
// grouped ones before it — to the last committed epoch, reverting the
// session's pdfs bookkeeping with them. The mutation's error wins over any
// rollback error; when grouped ops were dropped with it, the error says so.
func (t *Tree) rollback(opErr error) error {
	dropped := t.groupOps
	var rbErr error
	if t.inner.InBatch() {
		rbErr = t.inner.RollbackBatch()
	} else {
		rbErr = t.inner.Rollback()
	}
	t.revertUndo()
	t.groupOps = 0
	if rbErr != nil {
		return fmt.Errorf("%w (rollback also failed: %w)", opErr, rbErr)
	}
	if dropped > 1 {
		return fmt.Errorf("%w (rolled back %d uncommitted grouped operations)", opErr, dropped)
	}
	return opErr
}

// Insert adds an object. IDs must be unique; inserting a duplicate ID is
// not detected (two entries will coexist). Without group commit the insert
// publishes as its own epoch; under grouping it joins the open group. On
// failure the tree rolls back to the last committed epoch — dropping any
// uncommitted grouped operations with it — and remains usable.
func (t *Tree) Insert(id int64, pdf PDF) error {
	t.beginGroupOp()
	if err := t.inner.Insert(core.Object{ID: id, PDF: pdf}); err != nil {
		return t.rollback(err)
	}
	t.trackInsert(id, pdf.MBR())
	return t.noteOp()
}

// Delete removes an object by ID. Objects inserted in a previous process
// lifetime (reopened file-backed trees) need DeleteWithRegion instead.
// Commit granularity follows the group-commit policy (see Insert);
// snapshots pinned before the group's commit still see the object.
func (t *Tree) Delete(id int64) error {
	mbr, ok := t.pdfs[id]
	if !ok {
		return fmt.Errorf("uncertain: id %d not tracked in this session; use DeleteWithRegion", id)
	}
	return t.DeleteWithRegion(id, mbr)
}

// DeleteWithRegion removes an object by ID and its region MBR (the pdf's
// MBR at insertion time). Commit granularity follows the group-commit
// policy (see Insert). A not-found delete mutates nothing and leaves the
// open group intact.
func (t *Tree) DeleteWithRegion(id int64, regionMBR Rect) error {
	t.beginGroupOp()
	if err := t.inner.Delete(id, regionMBR); err != nil {
		if errors.Is(err, core.ErrNotFound) {
			return err // nothing mutated; no rollback needed
		}
		return t.rollback(err)
	}
	t.trackDelete(id)
	return t.noteOp()
}

// Search answers a probabilistic range query: the objects appearing in
// rect with probability ≥ prob (prob in (0, 1]). The traversal checks ctx
// before every page fetch and refinement integration, so cancellation and
// deadlines take effect within roughly one page latency; on early exit
// (ctx.Err(), or ErrBudgetExceeded under WithPageBudget) the results and
// stats gathered so far are returned alongside the error.
func (t *Tree) Search(ctx context.Context, rect Rect, prob float64, opts ...QueryOption) ([]Result, Stats, error) {
	return t.inner.RangeQueryCtx(ctx, core.Query{Rect: rect, Prob: prob}, resolveOptions(opts))
}

// SetSimulatedPageLatency arms or disarms the simulated storage latency at
// runtime — e.g. zero during a bulk build, then the target value for
// measurement. Works on any tree built by NewTree/OpenTree, whatever the
// Config started with.
//
// Deprecated: set Config.SimulatedPageLatency when opening the index; the
// mutator remains for build-then-measure tooling.
func (t *Tree) SetSimulatedPageLatency(d time.Duration) {
	if t.latency != nil {
		t.latency.SetDelays(d, d)
	}
}

// Flush seals any open commit group, writes every buffered dirty page
// through to the store and drains whatever retired epochs' pages the
// current snapshot pins allow. Useful before a read-heavy phase: a clean
// pool evicts without write-backs, so concurrent searches never stall on
// flushing another query's victim.
func (t *Tree) Flush() error {
	if err := t.commitPending(); err != nil {
		return err
	}
	return t.inner.Flush()
}

// Epoch returns the last committed epoch number (each completed mutation
// is one epoch).
func (t *Tree) Epoch() uint64 { return t.inner.Epoch() }

// GCStats reports the epoch collector's state: committed epoch, live
// snapshot pins, and pages awaiting reclamation — the observability
// surface for leak assertions in tests and tooling.
func (t *Tree) GCStats() (epoch uint64, pins int, pendingPages int) {
	return t.inner.GCStats()
}

// GCInfo is the epoch collector's full health report: pending
// epochs/pages/tombstones, lifetime reclaim counters, and whether the
// background reclaimer is running.
type GCInfo = pagefile.GCInfo

// GCInfo reports the epoch collector's full health (see GCStats for the
// compact form).
func (t *Tree) GCInfo() GCInfo { return t.inner.GCInfo() }

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.inner.Len() }

// Height returns the tree height in levels.
func (t *Tree) Height() int { return t.inner.Height() }

// SizeBytes reports the total storage footprint (index + data pages).
func (t *Tree) SizeBytes() int64 { return t.inner.SizeBytes() }

// CacheStats reports the buffer pool's cumulative hit/miss counters.
func (t *Tree) CacheStats() (hits, misses int64) { return t.inner.CacheStats() }

// NodeCacheStats reports the decoded-node cache's cumulative hit/miss
// counters (both zero when Config.NodeCacheEntries is negative).
func (t *Tree) NodeCacheStats() (hits, misses int64) { return t.inner.NodeCacheStats() }

// CheckInvariants validates the index structure (for tests and tooling).
func (t *Tree) CheckInvariants() error { return t.inner.CheckInvariants() }

// Close stops the background reclaimer and scrubber, commits any final
// state — sealing an open commit group — drains the last retired pages,
// and, for file-backed trees, closes the file. Without grouping every
// mutation already committed durably, so Close adds nothing a crash would
// lose; under group commit the open group's tail becomes durable here.
// Close is also the last chance to surface a reclaim failure stashed by an
// earlier commit (such a failure leaked pages; it never corrupted data).
//
// Close is idempotent, and remains safe after a failed commit or after
// Discard: repeated calls return nil without touching the (already
// released) storage again.
func (t *Tree) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	t.unblockRetries()
	t.inner.StopBackgroundReclaim()
	err := t.commit()
	t.groupOps, t.undo = 0, t.undo[:0]
	if err == nil {
		err = t.inner.Reclaim()
	}
	if t.file != nil {
		if cerr := t.file.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// unblockRetries binds a cancelled context to the retry layer so no
// concurrent reader sits out a backoff sleep while the index tears down.
func (t *Tree) unblockRetries() {
	if t.retry == nil {
		return
	}
	//ulint:ignore ctxflow constructs an already-cancelled context on purpose; nothing upstream can cancel sooner
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t.retry.BindContext(ctx)
}

// Discard releases a file-backed tree WITHOUT committing or flushing —
// the crash-simulation exit (and the cleanup path for a handle whose
// storage already failed): the file keeps exactly the pages that were
// durable when the last operation stopped, as if the process died there.
// OpenTree then recovers the last committed epoch — under group commit,
// the last committed group boundary. In-memory trees just drop their
// state. Discard is idempotent and safe after Close (and vice versa).
func (t *Tree) Discard() error {
	if t.closed {
		return nil
	}
	t.closed = true
	t.unblockRetries()
	t.inner.StopBackgroundReclaim()
	if t.file == nil {
		return nil
	}
	return t.file.Abort()
}

// OpenTree reopens a file-backed index created with Config.Path. The
// metadata page is the first page after the store header (as written by
// NewTree). After recovering the last committed epoch it sweeps pages a
// crash may have leaked — shadow pages retired by a published epoch that
// died before its garbage drained, or fresh pages of an aborted batch —
// back to the free list.
func OpenTree(path string, cfg Config) (*Tree, error) {
	fs, err := pagefile.OpenFileStore(path)
	if err != nil {
		return nil, err
	}
	t := &Tree{file: fs, meta: 1, pdfs: make(map[int64]Rect), gcOps: cfg.GroupCommitOps, gcInterval: cfg.GroupCommitInterval}
	var base pagefile.Store = fs
	if cfg.WrapStore != nil {
		base = cfg.WrapStore(base)
	}
	t.latency = pagefile.NewLatencyStore(base, cfg.SimulatedPageLatency, cfg.SimulatedPageLatency)
	inner, err := core.Open(t.buildRetry(cfg), 1, core.Options{
		MCSamples:        cfg.MonteCarloSamples,
		ExactRefinement:  cfg.ExactRefinement,
		Seed:             cfg.Seed,
		BufferPages:      cfg.BufferPages,
		NodeCacheEntries: cfg.NodeCacheEntries,
		PrefetchWorkers:  cfg.PrefetchWorkers,
		ReclaimInterval:  cfg.ReclaimInterval,
		ReclaimBudget:    cfg.ReclaimPageBudget,
		ScrubInterval:    cfg.ScrubInterval,
		ScrubBudget:      cfg.ScrubPageBudget,
		AdaptivePlanning: cfg.AdaptivePlanning,
		ProbFilter:       cfg.ProbFilter,
	})
	if err != nil {
		fs.Close()
		return nil, err
	}
	t.inner = inner
	if err := t.sweepLeakedPages(); err != nil {
		inner.StopBackgroundReclaim()
		fs.Close()
		return nil, fmt.Errorf("uncertain: open-time leak sweep: %w", err)
	}
	return t, nil
}

// sweepLeakedPages walks the recovered tree for its reachable page set and
// returns everything else in the file to the free list. The walk goes
// through the wrapped store (fault injection and simulated latency apply);
// the sweep itself runs directly on the file store — it is allocator
// repair below the versioning layer, not part of any epoch.
func (t *Tree) sweepLeakedPages() error {
	reach, err := t.inner.ReachablePages()
	if err != nil {
		return err
	}
	reach[t.meta] = true
	_, err = t.file.SweepLeaked(reach)
	return err
}
