// Package uncertain is the public API of the U-tree library: indexing
// multi-dimensional uncertain data with arbitrary probability density
// functions, after Tao, Cheng, Xiao, Ngai, Kao and Prabhakar (VLDB 2005).
//
// An uncertain object is a point whose position is described by a pdf over
// an uncertainty region. The U-tree answers probabilistic range queries —
// "find the objects inside rectangle r with probability at least p" —
// while avoiding expensive appearance-probability integration for almost
// all objects, using pre-computed probabilistically constrained regions
// compressed into linear conservative functional boxes.
//
// Quick start:
//
//	tree, _ := uncertain.NewTree(uncertain.Config{Dimensions: 2})
//	tree.Insert(1, uncertain.UniformCircle(uncertain.Pt(300, 400), 25))
//	results, _, _ := tree.Search(context.Background(),
//		uncertain.Box(uncertain.Pt(250, 350), uncertain.Pt(350, 450)), 0.8)
//
// Queries take a context (cancellation, deadlines) and per-query options
// (WithMonteCarloSamples, WithLimit, WithPageBudget, ...); see the
// QueryOption docs and examples/ for complete programs.
package uncertain

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/pagefile"
	"repro/internal/updf"
)

// Point is a position in d-dimensional space.
type Point = geom.Point

// Rect is an axis-aligned hyper-rectangle.
type Rect = geom.Rect

// PDF is a probability density function over an uncertainty region. Build
// one with the constructors below, or implement updf.PDF directly for fully
// custom distributions.
type PDF = updf.PDF

// Result is one object qualifying a probabilistic range query. When the
// index validated the object directly from its PCRs — the paper's headline
// saving — no appearance probability was ever computed: Validated is true
// and Prob is -1 ("validated without probability computation"). Prob holds
// the computed probability only for objects that went through refinement.
type Result = core.Result

// Stats reports the cost of one query in the paper's metrics: node
// accesses, appearance-probability computations, directly-validated counts
// and refinement I/Os.
type Stats = core.QueryStats

// Pt builds a Point.
func Pt(coords ...float64) Point { return Point(coords) }

// Box builds a rectangle from its corners; it panics on malformed corners.
func Box(lo, hi Point) Rect { return geom.NewRect(lo, hi) }

// UniformCircle is a uniform pdf over a d-dimensional ball (circle, sphere)
// — the paper's location-uncertainty model.
func UniformCircle(center Point, radius float64) PDF {
	return updf.NewUniformBall(center, radius)
}

// UniformBox is a uniform pdf over a rectangle.
func UniformBox(region Rect) PDF { return updf.NewUniformRect(region) }

// ConstrainedGaussian is the paper's Con-Gau (Equation 16): an isotropic
// Gaussian centered on the ball, renormalized over it.
func ConstrainedGaussian(center Point, radius, sigma float64) PDF {
	return updf.NewConGauBall(center, radius, sigma)
}

// TruncatedGaussianBox is an independent-Gaussian product truncated to a
// rectangle (closed-form marginals and probabilities).
func TruncatedGaussianBox(region Rect, mean Point, sigma []float64) PDF {
	return updf.NewGaussRect(region, mean, sigma)
}

// ExponentialBox is a truncated exponential product on a rectangle — a
// heavily skewed (Zipf-like) model.
func ExponentialBox(region Rect, rates []float64) PDF {
	return updf.NewExpoRect(region, rates)
}

// Histogram is a piecewise-constant pdf on a grid over a rectangle: the
// "arbitrary pdf" workhorse — any density can be approximated this way.
// weights are row-major cell masses (normalized internally).
func Histogram(region Rect, bins []int, weights []float64) PDF {
	return updf.NewHistogramRect(region, bins, weights)
}

// Config parameterizes a Tree.
type Config struct {
	// Dimensions of the data space (required).
	Dimensions int
	// UPCR selects the paper's comparison structure instead of the U-tree
	// (bigger entries storing all catalog PCRs). Mostly for experiments.
	UPCR bool
	// CatalogSize m (0 → paper defaults: 15 for U-tree, 9 for U-PCR).
	CatalogSize int
	// MonteCarloSamples is n1 of the refinement estimator (0 → 10000; the
	// paper uses 10^6 for <1% error).
	MonteCarloSamples int
	// ExactRefinement uses closed-form/quadrature probabilities instead of
	// Monte Carlo when the pdf supports it.
	ExactRefinement bool
	// Path makes the index file-backed (empty → in-memory).
	Path string
	// Seed for the refinement sampler (0 → 1).
	Seed int64
	// BufferPages sizes the page cache (0 → 256).
	BufferPages int
	// SimulatedPageLatency adds a fixed delay to every physical page read
	// and write, modeling disk- or network-resident storage (the paper's
	// cost model charges 10 ms per page access). Cache hits skip it, so it
	// makes buffer-pool effectiveness and batch-query parallelism
	// measurable on fast hardware. Zero (the default) disables it.
	SimulatedPageLatency time.Duration
	// PrefetchWorkers bounds the async page fetches a single query may
	// have in flight: queries overlap the independent page reads a
	// traversal already knows it needs (a level's surviving children, the
	// refinement data pages, the pages behind the next NN heap entries).
	// On latency-bound storage this pipelines one query's I/O stalls the
	// way the batch engine overlaps stalls across queries. 0 (the default)
	// disables intra-query prefetching. Results are byte-identical either
	// way; see also SetPrefetchWorkers for re-arming at runtime.
	PrefetchWorkers int
}

// Tree is a dynamic index over uncertain objects supporting probabilistic
// range search. Not safe for concurrent use.
type Tree struct {
	inner   *core.Tree
	file    *pagefile.FileStore
	meta    pagefile.PageID
	latency *pagefile.LatencyStore // always interposed by NewTree/OpenTree
	pdfs    map[int64]Rect         // id → region MBR, to make Delete(id) ergonomic
}

// NewTree creates an empty index.
func NewTree(cfg Config) (*Tree, error) {
	opt := core.Options{
		Dim:             cfg.Dimensions,
		CatalogSize:     cfg.CatalogSize,
		MCSamples:       cfg.MonteCarloSamples,
		ExactRefinement: cfg.ExactRefinement,
		Seed:            cfg.Seed,
		BufferPages:     cfg.BufferPages,
		PrefetchWorkers: cfg.PrefetchWorkers,
	}
	if cfg.UPCR {
		opt.Kind = core.UPCR
	}
	t := &Tree{pdfs: make(map[int64]Rect)}
	if cfg.Path != "" {
		fs, err := pagefile.CreateFileStore(cfg.Path)
		if err != nil {
			return nil, err
		}
		t.file = fs
		opt.Store = fs
		// Reserve the metadata page before the tree allocates its root so
		// OpenTree can always find it at page 1.
		meta, err := fs.Alloc()
		if err != nil {
			fs.Close()
			return nil, err
		}
		t.meta = meta
	}
	// Always interpose the latency store (zero delay is a no-sleep fast
	// path) so SetSimulatedPageLatency can arm or disarm at any time — a
	// conditional wrap would make later calls silent no-ops.
	base := opt.Store
	if base == nil {
		base = pagefile.NewMemStore()
	}
	t.latency = pagefile.NewLatencyStore(base, cfg.SimulatedPageLatency, cfg.SimulatedPageLatency)
	opt.Store = t.latency
	inner, err := core.New(opt)
	if err != nil {
		if t.file != nil {
			t.file.Close()
		}
		return nil, err
	}
	t.inner = inner
	return t, nil
}

// Insert adds an object. IDs must be unique; inserting a duplicate ID is
// not detected (two entries will coexist).
func (t *Tree) Insert(id int64, pdf PDF) error {
	if err := t.inner.Insert(core.Object{ID: id, PDF: pdf}); err != nil {
		return err
	}
	t.pdfs[id] = pdf.MBR()
	return nil
}

// Delete removes an object by ID. Objects inserted in a previous process
// lifetime (reopened file-backed trees) need DeleteWithRegion instead.
func (t *Tree) Delete(id int64) error {
	mbr, ok := t.pdfs[id]
	if !ok {
		return fmt.Errorf("uncertain: id %d not tracked in this session; use DeleteWithRegion", id)
	}
	if err := t.inner.Delete(id, mbr); err != nil {
		return err
	}
	delete(t.pdfs, id)
	return nil
}

// DeleteWithRegion removes an object by ID and its region MBR (the pdf's
// MBR at insertion time).
func (t *Tree) DeleteWithRegion(id int64, regionMBR Rect) error {
	if err := t.inner.Delete(id, regionMBR); err != nil {
		return err
	}
	delete(t.pdfs, id)
	return nil
}

// Search answers a probabilistic range query: the objects appearing in
// rect with probability ≥ prob (prob in (0, 1]). The traversal checks ctx
// before every page fetch and refinement integration, so cancellation and
// deadlines take effect within roughly one page latency; on early exit
// (ctx.Err(), or ErrBudgetExceeded under WithPageBudget) the results and
// stats gathered so far are returned alongside the error.
func (t *Tree) Search(ctx context.Context, rect Rect, prob float64, opts ...QueryOption) ([]Result, Stats, error) {
	return t.inner.RangeQueryCtx(ctx, core.Query{Rect: rect, Prob: prob}, resolveOptions(opts))
}

// SetSimulatedPageLatency arms or disarms the simulated storage latency at
// runtime — e.g. zero during a bulk build, then the target value for
// measurement. Works on any tree built by NewTree/OpenTree, whatever the
// Config started with.
//
// Deprecated: set Config.SimulatedPageLatency when opening the index; the
// mutator remains for build-then-measure tooling.
func (t *Tree) SetSimulatedPageLatency(d time.Duration) {
	if t.latency != nil {
		t.latency.SetDelays(d, d)
	}
}

// SetPrefetchWorkers re-arms the default intra-query prefetch fan-out at
// runtime (0 disables): how many async page fetches one query may have in
// flight when it passes no WithPrefetchWorkers option. Like the tree's
// other mutators it must not run concurrently with queries; ConcurrentTree
// and ShardedTree serialize it behind their writer locks.
//
// Deprecated: pass WithPrefetchWorkers per query (lock-free, per-query
// scope) or set Config.PrefetchWorkers at open time.
func (t *Tree) SetPrefetchWorkers(n int) { t.inner.SetPrefetchWorkers(n) }

// Flush writes every buffered dirty page through to the store. Useful
// before a read-heavy phase: a clean pool evicts without write-backs, so
// concurrent searches never stall on flushing another query's victim.
func (t *Tree) Flush() error { return t.inner.Flush() }

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.inner.Len() }

// Height returns the tree height in levels.
func (t *Tree) Height() int { return t.inner.Height() }

// SizeBytes reports the total storage footprint (index + data pages).
func (t *Tree) SizeBytes() int64 { return t.inner.SizeBytes() }

// CacheStats reports the buffer pool's cumulative hit/miss counters.
func (t *Tree) CacheStats() (hits, misses int64) { return t.inner.CacheStats() }

// CheckInvariants validates the index structure (for tests and tooling).
func (t *Tree) CheckInvariants() error { return t.inner.CheckInvariants() }

// Close flushes and, for file-backed trees, persists metadata and closes
// the file.
func (t *Tree) Close() error {
	if t.file == nil {
		return t.inner.Flush()
	}
	if err := t.inner.SaveMeta(t.meta); err != nil {
		t.file.Close()
		return err
	}
	return t.file.Close()
}

// OpenTree reopens a file-backed index created with Config.Path. The
// metadata page is the first page after the store header (as written by
// NewTree).
func OpenTree(path string, cfg Config) (*Tree, error) {
	fs, err := pagefile.OpenFileStore(path)
	if err != nil {
		return nil, err
	}
	t := &Tree{file: fs, meta: 1, pdfs: make(map[int64]Rect)}
	t.latency = pagefile.NewLatencyStore(fs, cfg.SimulatedPageLatency, cfg.SimulatedPageLatency)
	inner, err := core.Open(t.latency, 1, core.Options{
		MCSamples:       cfg.MonteCarloSamples,
		ExactRefinement: cfg.ExactRefinement,
		Seed:            cfg.Seed,
		BufferPages:     cfg.BufferPages,
		PrefetchWorkers: cfg.PrefetchWorkers,
	})
	if err != nil {
		fs.Close()
		return nil, err
	}
	t.inner = inner
	return t, nil
}
