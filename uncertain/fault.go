package uncertain

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/pagefile"
)

// Storage fault tolerance, public surface. The storage stack underneath an
// index detects corruption with per-page checksums (ErrChecksum), retries
// transient faults with jittered backoff (Config.RetryAttempts; the
// retries appear in Stats.Retries and Health().Retries), quarantines pages
// proven corrupt so they are never served from a cache (Health()), scrubs
// the committed tree in the background (Config.ScrubInterval), and — on
// sharded indexes — can serve degraded partial answers when some shards
// fail (WithAllowDegraded, ErrDegraded).

// ErrChecksum matches (via errors.Is) any error caused by a page whose
// stored checksum does not cover the bytes read back — detected storage
// corruption. The index never returns wrong answers from such a page; it
// returns this error instead.
var ErrChecksum = pagefile.ErrChecksum

// ErrBadPage matches (via errors.Is) any error caused by a structurally
// unusable page: quarantined after a checksum failure, a misdirected
// write, or an impossible decode.
var ErrBadPage = pagefile.ErrBadPage

// ErrDegraded matches (via errors.Is) a degraded-mode partial answer from
// a sharded index: some shards failed with a storage error, and the query
// opted in with WithAllowDegraded. The results alongside the error are the
// healthy shards' complete answers (plus whatever the failing shards had
// gathered); every returned object truly qualifies — the set may just be
// incomplete.
var ErrDegraded = errors.New("uncertain: degraded results (some shards failed)")

// DegradedError is the concrete error behind ErrDegraded, reporting which
// shards failed and why. Unwrap exposes the per-shard causes, so
// errors.Is(err, ErrChecksum) also matches when a failure was corruption.
type DegradedError struct {
	// Shards lists the failed shard indexes, ascending.
	Shards []int
	// Errs holds the corresponding per-shard errors.
	Errs []error
}

func (e *DegradedError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "uncertain: degraded results: %d shard(s) failed:", len(e.Shards))
	for i, s := range e.Shards {
		fmt.Fprintf(&b, " [shard %d: %v]", s, e.Errs[i])
	}
	return b.String()
}

// Is makes errors.Is(err, ErrDegraded) match.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// Unwrap exposes the per-shard causes to errors.Is/As.
func (e *DegradedError) Unwrap() []error { return e.Errs }

// HealthInfo is an index's storage-health report: quarantined pages,
// cumulative transient-fault retries, and background-scrubber progress.
// Sharded indexes merge the per-shard reports (counters sum, quarantine
// lists concatenate).
type HealthInfo = core.HealthInfo

// QuarantinedPage identifies one page the index has condemned: its ID, the
// committed epoch when the damage was first observed, and the error that
// condemned it.
type QuarantinedPage = core.QuarantinedPage

// Health reports the tree's storage-health state. Safe to call at any
// time; on a healthy index the report is all zeroes.
func (t *Tree) Health() HealthInfo { return t.inner.Health() }

// Health reports the underlying tree's storage-health state (safe to call
// concurrently with queries and the writer).
func (c *ConcurrentTree) Health() HealthInfo { return c.tree.Health() }

// Health merges the shards' storage-health reports: counters sum,
// quarantine lists concatenate (each page belongs to exactly one shard's
// store).
func (s *ShardedTree) Health() HealthInfo {
	var info HealthInfo
	for _, sh := range s.shards {
		info.Add(sh.Health())
	}
	return info
}
