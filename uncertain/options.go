package uncertain

import (
	"repro/internal/core"
)

// This file is the per-query options surface of the context-first query
// API. Search and NearestNeighbors accept functional options that are
// resolved once, up front, into an immutable per-query plan — so queries
// with different precision/latency trade-offs run concurrently on one
// index without any global mutator (and without the writer-lock stall the
// old SetPrefetchWorkers mutator paid). The per-query precision knobs
// follow the probabilistic-pruning literature (Bernecker et al.), where
// refinement effort is a query-time choice, not an index-time one.

// ErrBudgetExceeded is returned by a query whose WithPageBudget ran out:
// the traversal performed exactly the budgeted number of physical page
// fetches and stopped. The partial results accompanying the error are
// valid answers (every returned object truly qualifies); the set is just
// incomplete. Test with errors.Is.
var ErrBudgetExceeded = core.ErrBudgetExceeded

// QueryOption customizes one query. Options are applied in order; later
// options override earlier ones. The zero option set reproduces the
// index's configured behavior bit for bit.
type QueryOption func(*queryPlan)

// queryPlan accumulates the options before they are handed to the core
// traversal as a resolved core.QueryOpts.
type queryPlan struct {
	o core.QueryOpts
}

// resolveOptions folds opts into the core per-query option block.
func resolveOptions(opts []QueryOption) core.QueryOpts {
	var p queryPlan
	for _, opt := range opts {
		if opt != nil {
			opt(&p)
		}
	}
	return p.o
}

// WithMonteCarloSamples overrides Config.MonteCarloSamples for this query:
// n1 of the refinement estimator (Equation 3). Lower is faster and
// coarser, higher is slower and tighter — the per-query precision/latency
// trade-off. n ≤ 0 is ignored (the index default applies).
func WithMonteCarloSamples(n int) QueryOption {
	return func(p *queryPlan) { p.o.MCSamples = n }
}

// WithExactRefinement overrides Config.ExactRefinement for this query:
// when on, pdfs exposing a closed-form/quadrature probability oracle are
// refined exactly instead of by Monte Carlo.
func WithExactRefinement(on bool) QueryOption {
	return func(p *queryPlan) { p.o.ExactSet, p.o.Exact = true, on }
}

// WithPrefetchWorkers overrides the intra-query prefetch fan-out for this
// query only: how many async page fetches it may have in flight (n ≤ 0
// disables prefetching for the query). Unlike the deprecated
// SetPrefetchWorkers mutator this takes no lock and stalls no other query;
// results are byte-identical whatever the fan-out. On a sharded index the
// bound applies per shard.
func WithPrefetchWorkers(n int) QueryOption {
	return func(p *queryPlan) { p.o.PrefetchSet, p.o.Prefetch = true, n }
}

// WithLimit stops a range query after n results (a top-N early cut) and
// caps k for NN queries. The cut is deterministic — a limited query
// returns a prefix of the unlimited query's result sequence — but which
// objects form that prefix depends on traversal order, and on a sharded
// index each shard cuts at n before the ID-sorted merge truncates to n.
// n ≤ 0 means unlimited.
func WithLimit(n int) QueryOption {
	return func(p *queryPlan) { p.o.Limit = n }
}

// WithAllowDegraded opts a sharded query into degraded partial answers:
// when some (not all) shards fail with a storage error — a corrupt page, a
// fault that outlasted the retry budget — the healthy shards' results are
// returned together with ErrDegraded (a *DegradedError naming the failed
// shards) instead of failing the whole query. Every returned object truly
// qualifies; the set may be incomplete. If every shard fails, the query
// fails outright as before. Single-tree indexes ignore the option — with
// one store there is no healthy remainder to serve.
func WithAllowDegraded(on bool) QueryOption {
	return func(p *queryPlan) { p.o.AllowDegraded = on }
}

// WithProbFilter overrides Config.ProbFilter for this query: when on,
// candidates whose qualification-probability upper bound (from their PCR
// slabs) is provably below the query threshold are discarded before
// refinement — fewer probability integrations and data-page reads. The
// result set is unchanged either way; under Monte-Carlo refinement the
// sampler stream shifts, so bit-exact reproducibility against a
// filter-off run needs ExactRefinement. NN queries ignore the option.
func WithProbFilter(on bool) QueryOption {
	return func(p *queryPlan) { p.o.ProbFilterSet, p.o.ProbFilter = true, on }
}

// WithPageBudget bounds the physical page fetches (buffer-pool misses plus
// data-page reads) this query may perform; when the budget runs out the
// query returns ErrBudgetExceeded together with the partial results and
// stats gathered up to that point — after exactly n physical fetches. A
// budgeted query runs without prefetching so the accounting is exact
// (stats report the fetches in PagesFetched). On a sharded index the
// budget applies per shard. n ≤ 0 means unlimited.
func WithPageBudget(n int) QueryOption {
	return func(p *queryPlan) { p.o.PageBudget = n }
}
