// Package repro reproduces the U-tree of Tao, Cheng, Xiao, Ngai, Kao,
// and Prabhakar ("Indexing Multi-Dimensional Uncertain Data with
// Arbitrary Probability Density Functions", VLDB 2005): a disk-based
// index over uncertain objects that answers probability-threshold range
// queries via probabilistically constrained regions (PCRs).
//
// The root package holds only cross-cutting benchmarks; the
// implementation lives in uncertain (public API), internal/core (the
// tree), internal/pagefile (the page store), and their siblings.
package repro
