package numeric

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestAdaptiveSimpsonPolynomial(t *testing.T) {
	// ∫₀¹ x² dx = 1/3. Simpson is exact for cubics.
	v, err := AdaptiveSimpson(func(x float64) float64 { return x * x }, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1.0/3) > 1e-12 {
		t.Fatalf("∫x² = %g, want 1/3", v)
	}
}

func TestAdaptiveSimpsonTranscendental(t *testing.T) {
	// ∫₀^π sin x dx = 2.
	v, err := AdaptiveSimpson(math.Sin, 0, math.Pi, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 1e-9 {
		t.Fatalf("∫sin = %.15g, want 2", v)
	}
}

func TestAdaptiveSimpsonGaussian(t *testing.T) {
	// ∫_{-8}^{8} φ(x) dx ≈ 1.
	v, err := AdaptiveSimpson(NormalPDF, -8, 8, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-10 {
		t.Fatalf("∫φ = %.15g, want 1", v)
	}
}

func TestAdaptiveSimpsonReversedAndEmpty(t *testing.T) {
	v, err := AdaptiveSimpson(math.Sin, math.Pi, 0, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v+2) > 1e-9 {
		t.Fatalf("reversed ∫sin = %g, want -2", v)
	}
	v, err = AdaptiveSimpson(math.Sin, 1, 1, 1e-10)
	if err != nil || v != 0 {
		t.Fatalf("empty interval = %g err=%v", v, err)
	}
}

func TestAdaptiveSimpsonSemicircle(t *testing.T) {
	// ∫_{-1}^{1} √(1-x²) dx = π/2. Endpoint derivative blowup exercises the
	// adaptivity.
	f := func(x float64) float64 { return math.Sqrt(math.Max(0, 1-x*x)) }
	v, err := AdaptiveSimpson(f, -1, 1, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-math.Pi/2) > 1e-7 {
		t.Fatalf("semicircle = %.12g, want %.12g", v, math.Pi/2)
	}
}

func TestBisectBasic(t *testing.T) {
	x, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-11 {
		t.Fatalf("root = %.15g, want √2", x)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if x, err := Bisect(f, 0, 1, 1e-12); err != nil || x != 0 {
		t.Fatalf("endpoint root lo: %g, %v", x, err)
	}
	if x, err := Bisect(f, -1, 0, 1e-12); err != nil || x != 0 {
		t.Fatalf("endpoint root hi: %g, %v", x, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	_, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9)
	if !errors.Is(err, ErrNoBracket) {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

func TestBisectMonotoneCDFStyle(t *testing.T) {
	// Invert Φ at several quantiles via bisection; compare round trip.
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		x, err := Bisect(func(x float64) float64 { return NormalCDF(x) - p }, -10, 10, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if got := NormalCDF(x); math.Abs(got-p) > 1e-10 {
			t.Fatalf("Φ(Φ⁻¹(%g)) = %g", p, got)
		}
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Φ(%g) = %.16g, want %.16g", c.x, got, c.want)
		}
	}
}

func TestNormalIntervalMass(t *testing.T) {
	// Whole line ≈ 1; empty interval = 0; symmetric interval matches 2Φ(z)-1.
	if got := NormalIntervalMass(0, 1, -40, 40); math.Abs(got-1) > 1e-12 {
		t.Fatalf("full mass = %g", got)
	}
	if got := NormalIntervalMass(0, 1, 3, 1); got != 0 {
		t.Fatalf("inverted interval = %g, want 0", got)
	}
	want := 2*NormalCDF(1) - 1
	if got := NormalIntervalMass(5, 2, 3, 7); math.Abs(got-want) > 1e-12 {
		t.Fatalf("μ=5 σ=2 mass = %g, want %g", got, want)
	}
}

func TestPropertyNormalCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return NormalCDF(lo) <= NormalCDF(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// boxSampler samples uniformly in a rectangle — a trivial region for testing
// the Monte-Carlo machinery.
type boxSampler struct{ r geom.Rect }

func (b boxSampler) SampleUniform(rng *rand.Rand, dst geom.Point) {
	for i := range dst {
		dst[i] = b.r.Lo[i] + rng.Float64()*(b.r.Hi[i]-b.r.Lo[i])
	}
}

func TestMonteCarloUniformBox(t *testing.T) {
	// Uniform pdf on [0,1]²; query covers the left half: P = 0.5 exactly.
	region := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	rq := geom.NewRect(geom.Point{0, 0}, geom.Point{0.5, 1})
	rng := rand.New(rand.NewSource(42))
	res := MonteCarloAppearance(boxSampler{region}, func(geom.Point) float64 { return 1 }, 2, rq, 200000, rng)
	if math.Abs(res.P-0.5) > 0.01 {
		t.Fatalf("P = %g, want ≈0.5", res.P)
	}
	if res.Samples != 200000 || res.Hits <= 0 || res.Hits >= res.Samples {
		t.Fatalf("bookkeeping: %+v", res)
	}
}

func TestMonteCarloFullContainmentExactlyOne(t *testing.T) {
	region := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	rq := geom.NewRect(geom.Point{-1, -1}, geom.Point{2, 2})
	rng := rand.New(rand.NewSource(7))
	res := MonteCarloAppearance(boxSampler{region}, func(geom.Point) float64 { return 3.7 }, 2, rq, 1000, rng)
	if res.P != 1 {
		t.Fatalf("P = %g, want exactly 1 (n2 = n1 special case)", res.P)
	}
	if res.Hits != res.Samples {
		t.Fatalf("hits = %d, samples = %d", res.Hits, res.Samples)
	}
}

func TestMonteCarloDisjointZero(t *testing.T) {
	region := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	rq := geom.NewRect(geom.Point{5, 5}, geom.Point{6, 6})
	rng := rand.New(rand.NewSource(7))
	res := MonteCarloAppearance(boxSampler{region}, func(geom.Point) float64 { return 1 }, 2, rq, 1000, rng)
	if res.P != 0 || res.Hits != 0 {
		t.Fatalf("disjoint query: %+v", res)
	}
}

func TestMonteCarloWeightedPDF(t *testing.T) {
	// pdf(x,y) ∝ x on [0,1]²; P(x ≤ 1/2) = ∫₀^½ x dx / ∫₀¹ x dx = 1/4.
	region := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	rq := geom.NewRect(geom.Point{0, 0}, geom.Point{0.5, 1})
	rng := rand.New(rand.NewSource(99))
	res := MonteCarloAppearance(boxSampler{region}, func(p geom.Point) float64 { return p[0] }, 2, rq, 400000, rng)
	if math.Abs(res.P-0.25) > 0.01 {
		t.Fatalf("P = %g, want ≈0.25", res.P)
	}
}

func TestMonteCarloZeroDensity(t *testing.T) {
	region := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	rq := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	rng := rand.New(rand.NewSource(1))
	res := MonteCarloAppearance(boxSampler{region}, func(geom.Point) float64 { return 0 }, 2, rq, 100, rng)
	if res.P != 0 {
		t.Fatalf("zero-density pdf should give P=0, got %g", res.P)
	}
}

func TestMonteCarloErrorShrinksWithSamples(t *testing.T) {
	// Relative error at n=100 should comfortably exceed error at n=100000
	// for a P=0.5 target (averaged over trials). This is the Fig. 7 shape.
	region := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	rq := geom.NewRect(geom.Point{0, 0}, geom.Point{0.5, 1})
	avgErr := func(n, trials int, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		var sum float64
		for i := 0; i < trials; i++ {
			res := MonteCarloAppearance(boxSampler{region}, func(geom.Point) float64 { return 1 }, 2, rq, n, rng)
			sum += math.Abs(res.P-0.5) / 0.5
		}
		return sum / float64(trials)
	}
	small := avgErr(100, 30, 5)
	large := avgErr(100000, 30, 6)
	if large >= small {
		t.Fatalf("error did not shrink: n=100 → %g, n=100000 → %g", small, large)
	}
}
