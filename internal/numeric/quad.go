// Package numeric provides the numerical building blocks of the U-tree
// reproduction: adaptive Simpson quadrature, robust bisection root finding,
// the standard normal distribution, and the Monte-Carlo appearance
// probability estimator of the paper's Equation 3.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned by Bisect when f(lo) and f(hi) do not bracket a
// root.
var ErrNoBracket = errors.New("numeric: root not bracketed")

// ErrMaxDepth is returned by AdaptiveSimpson when the recursion limit is hit
// before the tolerance is met.
var ErrMaxDepth = errors.New("numeric: quadrature recursion limit reached")

// simpson computes Simpson's rule on [a,b] given endpoint/midpoint values.
func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

// AdaptiveSimpson integrates f over [a, b] to absolute tolerance tol using
// adaptive Simpson quadrature with Richardson correction. It is accurate for
// the smooth marginal densities used in this repository and degrades
// gracefully (returns ErrMaxDepth alongside the best estimate) on pathological
// integrands.
func AdaptiveSimpson(f func(float64) float64, a, b, tol float64) (float64, error) {
	if a == b {
		return 0, nil
	}
	if b < a {
		v, err := AdaptiveSimpson(f, b, a, tol)
		return -v, err
	}
	m := (a + b) / 2
	fa, fm, fb := f(a), f(m), f(b)
	whole := simpson(a, b, fa, fm, fb)
	const maxDepth = 60
	v, ok := adaptiveAux(f, a, b, fa, fm, fb, whole, tol, maxDepth)
	if !ok {
		return v, ErrMaxDepth
	}
	return v, nil
}

func adaptiveAux(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) (float64, bool) {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	delta := left + right - whole
	if math.Abs(delta) <= 15*tol || depth <= 0 {
		ok := depth > 0 || math.Abs(delta) <= 15*tol
		return left + right + delta/15, ok
	}
	lv, lok := adaptiveAux(f, a, m, fa, flm, fm, left, tol/2, depth-1)
	rv, rok := adaptiveAux(f, m, b, fm, frm, fb, right, tol/2, depth-1)
	return lv + rv, lok && rok
}

// Bisect finds x in [lo, hi] with f(x) = 0 to absolute tolerance xtol, given
// that f is monotone enough that f(lo) and f(hi) have opposite signs (or one
// of them is zero). It refines with bisection, which is unconditionally
// convergent — important because marginal CDFs of regions can have flat
// stretches where Newton steps stall.
func Bisect(f func(float64) float64, lo, hi, xtol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, lo, flo, hi, fhi)
	}
	for i := 0; i < 200 && hi-lo > xtol; i++ {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (fhi > 0) {
			hi, fhi = mid, fm
		} else {
			lo, flo = mid, fm
		}
	}
	return lo + (hi-lo)/2, nil
}

// NormalCDF returns Φ(x), the standard normal cumulative distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalPDF returns φ(x), the standard normal density.
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// NormalIntervalMass returns Φ((b−μ)/σ) − Φ((a−μ)/σ), the mass a N(μ,σ²)
// variate places on [a, b].
func NormalIntervalMass(mu, sigma, a, b float64) float64 {
	if b < a {
		return 0
	}
	return NormalCDF((b-mu)/sigma) - NormalCDF((a-mu)/sigma)
}
