package numeric

import (
	"math/rand"

	"repro/internal/geom"
)

// UniformRegionSampler yields points uniformly distributed over an
// uncertainty region; it is the sampling primitive of the paper's
// Monte-Carlo evaluation (Section 3).
type UniformRegionSampler interface {
	// SampleUniform draws a point uniformly from the region into dst
	// (which has the region's dimensionality).
	SampleUniform(rng *rand.Rand, dst geom.Point)
}

// DensityFunc evaluates an (unnormalized or normalized) pdf at a point.
type DensityFunc func(geom.Point) float64

// MonteCarloResult carries the estimate together with the bookkeeping the
// experiments report.
type MonteCarloResult struct {
	P       float64 // estimated appearance probability
	Samples int     // n1 of Equation 3
	Hits    int     // n2 of Equation 3 (samples falling in the query rect)
}

// MonteCarloAppearance estimates Equation 3 of the paper:
//
//	P_app ≈ Σ_{x_i ∈ r_q} pdf(x_i) / Σ_i pdf(x_i)
//
// with n1 points drawn uniformly from the uncertainty region. When the whole
// region lies inside rq the estimate is exactly 1 (n2 = n1), mirroring the
// special case the paper notes.
func MonteCarloAppearance(sampler UniformRegionSampler, pdf DensityFunc, dim int, rq geom.Rect, n1 int, rng *rand.Rand) MonteCarloResult {
	x := make(geom.Point, dim)
	var num, den float64
	hits := 0
	for i := 0; i < n1; i++ {
		sampler.SampleUniform(rng, x)
		w := pdf(x)
		den += w
		if rq.ContainsPoint(x) {
			num += w
			hits++
		}
	}
	if den == 0 {
		return MonteCarloResult{P: 0, Samples: n1, Hits: hits}
	}
	return MonteCarloResult{P: num / den, Samples: n1, Hits: hits}
}
