package updf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// allPDFs returns one instance of every pdf type for generic conformance
// tests, all 2-dimensional and roughly co-located.
func allPDFs() map[string]PDF {
	rect := geom.NewRect(geom.Point{100, 200}, geom.Point{300, 500})
	return map[string]PDF{
		"uniform-ball": NewUniformBall(geom.Point{200, 350}, 120),
		"uniform-rect": NewUniformRect(rect),
		"congau-ball":  NewConGauBall(geom.Point{200, 350}, 120, 60),
		"gauss-rect":   NewGaussRect(rect, geom.Point{180, 400}, []float64{70, 90}),
		"expo-rect":    NewExpoRect(rect, []float64{0.01, 0.004}),
		"histogram": NewHistogramRect(rect, []int{4, 3}, []float64{
			1, 2, 3,
			4, 0, 2,
			5, 1, 1,
			2, 2, 7,
		}),
	}
}

func TestMarginalCDFBounds(t *testing.T) {
	for name, p := range allPDFs() {
		mbr := p.MBR()
		for dim := 0; dim < p.Dim(); dim++ {
			if got := p.MarginalCDF(dim, mbr.Lo[dim]-1); got != 0 {
				t.Errorf("%s: CDF below region = %g, want 0", name, got)
			}
			if got := p.MarginalCDF(dim, mbr.Hi[dim]+1); got != 1 {
				t.Errorf("%s: CDF above region = %g, want 1", name, got)
			}
			// Monotone over a sweep.
			prev := -1.0
			for k := 0; k <= 50; k++ {
				x := mbr.Lo[dim] + (mbr.Hi[dim]-mbr.Lo[dim])*float64(k)/50
				c := p.MarginalCDF(dim, x)
				if c < prev-1e-9 {
					t.Fatalf("%s dim %d: CDF not monotone at x=%g: %g < %g", name, dim, x, c, prev)
				}
				if c < -1e-12 || c > 1+1e-12 {
					t.Fatalf("%s dim %d: CDF out of range: %g", name, dim, c)
				}
				prev = c
			}
		}
	}
}

func TestMarginalCDFMatchesMonteCarlo(t *testing.T) {
	// Empirical check: fraction of pdf-weighted samples left of x must match
	// MarginalCDF. Uses importance weighting with uniform region samples.
	rng := rand.New(rand.NewSource(17))
	for name, p := range allPDFs() {
		mbr := p.MBR()
		for dim := 0; dim < p.Dim(); dim++ {
			x := mbr.Lo[dim] + 0.6*(mbr.Hi[dim]-mbr.Lo[dim])
			want := p.MarginalCDF(dim, x)
			const n = 120000
			pt := make(geom.Point, p.Dim())
			var num, den float64
			for i := 0; i < n; i++ {
				p.SampleUniform(rng, pt)
				w := p.Density(pt)
				den += w
				if pt[dim] <= x {
					num += w
				}
			}
			got := num / den
			if math.Abs(got-want) > 0.015 {
				t.Errorf("%s dim %d: empirical CDF %g vs analytic %g", name, dim, got, want)
			}
		}
	}
}

func TestDensityIntegratesToOne(t *testing.T) {
	// Monte-Carlo integral of the density over the region ≈ 1:
	// E_uniform[pdf] · Vol(region) = 1.
	rng := rand.New(rand.NewSource(23))
	vol := map[string]float64{
		"uniform-ball": math.Pi * 120 * 120,
		"uniform-rect": 200 * 300,
		"congau-ball":  math.Pi * 120 * 120,
		"gauss-rect":   200 * 300,
		"expo-rect":    200 * 300,
		"histogram":    200 * 300,
	}
	for name, p := range allPDFs() {
		const n = 200000
		pt := make(geom.Point, p.Dim())
		var sum float64
		for i := 0; i < n; i++ {
			p.SampleUniform(rng, pt)
			sum += p.Density(pt)
		}
		integral := sum / float64(n) * vol[name]
		if math.Abs(integral-1) > 0.02 {
			t.Errorf("%s: ∫pdf = %g, want 1", name, integral)
		}
	}
}

func TestSamplesInsideRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for name, p := range allPDFs() {
		mbr := p.MBR()
		pt := make(geom.Point, p.Dim())
		for i := 0; i < 5000; i++ {
			p.SampleUniform(rng, pt)
			if !mbr.ContainsPoint(pt) {
				t.Fatalf("%s: sample %v outside MBR %v", name, pt, mbr)
			}
			// Ball samplers must stay in the ball, not just the MBR.
			if name == "uniform-ball" || name == "congau-ball" {
				if !inBall(geom.Point{200, 350}, 120+1e-9, pt) {
					t.Fatalf("%s: sample %v outside ball", name, pt)
				}
			}
		}
	}
}

func TestExactProbAgainstMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	queries := []geom.Rect{
		geom.NewRect(geom.Point{150, 250}, geom.Point{250, 420}), // overlaps center
		geom.NewRect(geom.Point{90, 190}, geom.Point{310, 510}),  // covers everything
		geom.NewRect(geom.Point{0, 0}, geom.Point{50, 50}),       // disjoint
		geom.NewRect(geom.Point{200, 350}, geom.Point{600, 800}), // corner overlap
	}
	for name, p := range allPDFs() {
		ex, ok := p.(ExactProber)
		if !ok {
			t.Fatalf("%s does not implement ExactProber", name)
		}
		for qi, rq := range queries {
			want := ex.ExactProb(rq)
			got := MonteCarloProb(p, rq, 400000, rng)
			if math.Abs(got-want) > 0.01 {
				t.Errorf("%s query %d: exact %g vs monte-carlo %g", name, qi, want, got)
			}
		}
	}
}

func TestExactProbFullAndEmpty(t *testing.T) {
	for name, p := range allPDFs() {
		ex := p.(ExactProber)
		mbr := p.MBR()
		big := geom.NewRect(
			geom.Point{mbr.Lo[0] - 10, mbr.Lo[1] - 10},
			geom.Point{mbr.Hi[0] + 10, mbr.Hi[1] + 10},
		)
		if got := ex.ExactProb(big); math.Abs(got-1) > 1e-6 {
			t.Errorf("%s: prob over superset = %g, want 1", name, got)
		}
		far := geom.NewRect(geom.Point{1e6, 1e6}, geom.Point{1e6 + 1, 1e6 + 1})
		if got := ex.ExactProb(far); got != 0 {
			t.Errorf("%s: prob over distant rect = %g, want 0", name, got)
		}
	}
}

func TestMarginalQuantileRoundTrip(t *testing.T) {
	for name, p := range allPDFs() {
		for dim := 0; dim < p.Dim(); dim++ {
			for _, prob := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
				x := MarginalQuantile(p, dim, prob)
				if got := p.MarginalCDF(dim, x); math.Abs(got-prob) > 1e-6 {
					t.Errorf("%s dim %d: CDF(Q(%g)) = %g", name, dim, prob, got)
				}
			}
			mbr := p.MBR()
			if got := MarginalQuantile(p, dim, 0); got != mbr.Lo[dim] {
				t.Errorf("%s: Q(0) = %g, want lo %g", name, got, mbr.Lo[dim])
			}
			if got := MarginalQuantile(p, dim, 1); got != mbr.Hi[dim] {
				t.Errorf("%s: Q(1) = %g, want hi %g", name, got, mbr.Hi[dim])
			}
		}
	}
}

func TestUniformBallMarginal3D(t *testing.T) {
	u := NewUniformBall(geom.Point{0, 0, 0}, 2)
	// At the center the CDF is 1/2 by symmetry.
	if got := u.MarginalCDF(0, 0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("3D ball CDF(0) = %g", got)
	}
	// Closed form check at t = 1, R = 2: 1/2 + 3/(4·8)·(4·1 − 1/3) = 0.84375...
	want := 0.5 + 3.0/32*(4-1.0/3)
	if got := u.MarginalCDF(0, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("3D ball CDF(1) = %.15g, want %.15g", got, want)
	}
}

func TestUniformBallExactProb3D(t *testing.T) {
	u := NewUniformBall(geom.Point{0, 0, 0}, 1)
	// Half-space: exactly 1/2.
	half := geom.NewRect(geom.Point{-2, -2, -2}, geom.Point{0, 2, 2})
	if got := u.ExactProb(half); math.Abs(got-0.5) > 1e-5 {
		t.Fatalf("3D half-space prob = %g, want 0.5", got)
	}
	// Octant: exactly 1/8.
	oct := geom.NewRect(geom.Point{0, 0, 0}, geom.Point{2, 2, 2})
	if got := u.ExactProb(oct); math.Abs(got-0.125) > 1e-5 {
		t.Fatalf("3D octant prob = %g, want 0.125", got)
	}
}

func TestConGauLambdaClosedForms(t *testing.T) {
	// d=2: λ = 1 − exp(−R²/2σ²).
	g2 := NewConGauBall(geom.Point{0, 0}, 250, 125)
	want2 := 1 - math.Exp(-4.0/2)
	if math.Abs(g2.Lambda()-want2) > 1e-12 {
		t.Fatalf("2D λ = %.15g, want %.15g", g2.Lambda(), want2)
	}
	// d=1: λ = 2Φ(R/σ) − 1.
	g1 := NewConGauBall(geom.Point{0}, 2, 1)
	want1 := 2*0.9772498680518208 - 1
	if math.Abs(g1.Lambda()-want1) > 1e-9 {
		t.Fatalf("1D λ = %.15g, want %.15g", g1.Lambda(), want1)
	}
	// d=3 must match a Monte-Carlo estimate of the Gaussian ball mass.
	g3 := NewConGauBall(geom.Point{0, 0, 0}, 2, 1)
	rng := rand.New(rand.NewSource(5))
	hits := 0
	const n = 400000
	for i := 0; i < n; i++ {
		x, y, z := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		if x*x+y*y+z*z <= 4 {
			hits++
		}
	}
	mc := float64(hits) / n
	if math.Abs(g3.Lambda()-mc) > 0.005 {
		t.Fatalf("3D λ = %g vs monte-carlo %g", g3.Lambda(), mc)
	}
}

func TestConGauSymmetry(t *testing.T) {
	g := NewConGauBall(geom.Point{100, 100}, 50, 25)
	// Marginal quantiles symmetric around center.
	qlo := MarginalQuantile(g, 0, 0.2)
	qhi := MarginalQuantile(g, 0, 0.8)
	if math.Abs((100-qlo)-(qhi-100)) > 1e-6 {
		t.Fatalf("asymmetric quantiles: %g, %g", qlo, qhi)
	}
	// CDF at center = 1/2.
	if got := g.MarginalCDF(1, 100); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("CDF at center = %g", got)
	}
}

func TestConGau3DExactProbHalfSpace(t *testing.T) {
	g := NewConGauBall(geom.Point{0, 0, 0}, 2, 1)
	half := geom.NewRect(geom.Point{-3, -3, -3}, geom.Point{3, 3, 0})
	if got := g.ExactProb(half); math.Abs(got-0.5) > 1e-4 {
		t.Fatalf("3D ConGau half-space = %g, want 0.5", got)
	}
}

func TestHistogramMarginalExact(t *testing.T) {
	rect := geom.NewRect(geom.Point{0, 0}, geom.Point{4, 2})
	// 2x2 grid with masses 0.1, 0.2 / 0.3, 0.4 (row-major: x-major here).
	h := NewHistogramRect(rect, []int{2, 2}, []float64{1, 2, 3, 4})
	// proj over dim 0: slab x∈[0,2) = (1+2)/10 = 0.3, slab [2,4] = 0.7.
	if got := h.MarginalCDF(0, 2); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("CDF(x=2) = %g, want 0.3", got)
	}
	// Halfway through second slab: 0.3 + 0.5·0.7 = 0.65.
	if got := h.MarginalCDF(0, 3); math.Abs(got-0.65) > 1e-12 {
		t.Fatalf("CDF(x=3) = %g, want 0.65", got)
	}
	// proj over dim 1: slab y∈[0,1) = (1+3)/10 = 0.4.
	if got := h.MarginalCDF(1, 1); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("CDF(y=1) = %g, want 0.4", got)
	}
	// ExactProb of one full cell.
	cell := geom.NewRect(geom.Point{0, 0}, geom.Point{2, 1})
	if got := h.ExactProb(cell); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("cell prob = %g, want 0.1", got)
	}
	// Fractional overlap: half of that cell.
	halfCell := geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1})
	if got := h.ExactProb(halfCell); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("half-cell prob = %g, want 0.05", got)
	}
}

func TestExpoRectSkew(t *testing.T) {
	rect := geom.NewRect(geom.Point{0, 0}, geom.Point{100, 100})
	e := NewExpoRect(rect, []float64{0.1, 0})
	// Strong decay on x: most mass near lo. Median far left of center.
	med := MarginalQuantile(e, 0, 0.5)
	if med > 20 {
		t.Fatalf("exponential median = %g, expected ≤ 20", med)
	}
	// Rate 0 on y degrades to uniform: median at center.
	if got := MarginalQuantile(e, 1, 0.5); math.Abs(got-50) > 1e-6 {
		t.Fatalf("uniform-dim median = %g, want 50", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for name, p := range allPDFs() {
		buf, err := Encode(p)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		q, err := Decode(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		// Compare behaviourally: densities and marginals agree.
		mbr := p.MBR()
		if !q.MBR().Equal(mbr) {
			t.Fatalf("%s: MBR mismatch after round trip", name)
		}
		rng := rand.New(rand.NewSource(3))
		pt := make(geom.Point, p.Dim())
		for i := 0; i < 200; i++ {
			p.SampleUniform(rng, pt)
			if math.Abs(p.Density(pt)-q.Density(pt)) > 1e-12 {
				t.Fatalf("%s: density mismatch at %v", name, pt)
			}
		}
		for dim := 0; dim < p.Dim(); dim++ {
			x := mbr.Lo[dim] + 0.37*(mbr.Hi[dim]-mbr.Lo[dim])
			if math.Abs(p.MarginalCDF(dim, x)-q.MarginalCDF(dim, x)) > 1e-12 {
				t.Fatalf("%s: marginal mismatch", name)
			}
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},         // unknown tag
		{1, 2},       // truncated uniform ball
		{1, 0},       // zero dimension
		{2, 2, 0, 0}, // truncated rect
		{1, 17},      // absurd dimension
	}
	for i, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("case %d: corrupt input decoded without error", i)
		}
	}
}

func TestDecodeInvalidParams(t *testing.T) {
	// Encode a valid ball then corrupt the radius to a negative value; the
	// constructor panic must surface as ErrCorruptPDF, not a crash.
	p := NewUniformBall(geom.Point{0, 0}, 5)
	buf, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	// Radius is the last 8 bytes.
	for i := len(buf) - 8; i < len(buf); i++ {
		buf[i] = 0
	}
	buf[len(buf)-1] = 0xC0 // -2.0 in float64 little-endian (sign+exp bits)
	if _, err := Decode(buf); err == nil {
		t.Fatal("negative radius decoded without error")
	}
}

func TestShapeKeyTranslationInvariant(t *testing.T) {
	a := NewUniformBall(geom.Point{0, 0}, 250)
	b := NewUniformBall(geom.Point{5000, 7000}, 250)
	c := NewUniformBall(geom.Point{0, 0}, 125)
	if a.ShapeKey() != b.ShapeKey() {
		t.Error("translated balls should share a shape key")
	}
	if a.ShapeKey() == c.ShapeKey() {
		t.Error("different radii must not share a shape key")
	}
	g1 := NewConGauBall(geom.Point{1, 2}, 250, 125)
	g2 := NewConGauBall(geom.Point{9, 9}, 250, 125)
	if g1.ShapeKey() != g2.ShapeKey() {
		t.Error("translated ConGau should share a shape key")
	}
	h := NewHistogramRect(geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1}), []int{1, 1}, []float64{1})
	if h.ShapeKey() != "" {
		t.Error("histogram shape key must be empty (no unsound caching)")
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewUniformBall(geom.Point{0, 0}, 0) },
		func() { NewUniformBall(geom.Point{0, 0}, -1) },
		func() { NewUniformRect(geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{0, 5}}) },
		func() { NewConGauBall(geom.Point{0, 0}, 10, 0) },
		func() { NewConGauBall(geom.Point{0, 0, 0, 0}, 10, 1) }, // d=4 unsupported
		func() { NewGaussRect(geom.NewRect(geom.Point{0}, geom.Point{1}), geom.Point{0, 0}, []float64{1}) },
		func() { NewExpoRect(geom.NewRect(geom.Point{0}, geom.Point{1}), []float64{-1}) },
		func() { NewHistogramRect(geom.NewRect(geom.Point{0}, geom.Point{1}), []int{2}, []float64{1}) },
		func() { NewHistogramRect(geom.NewRect(geom.Point{0}, geom.Point{1}), []int{1}, []float64{0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
