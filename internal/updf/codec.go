package updf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// Type tags for the binary pdf encoding stored in the data file.
const (
	tagUniformBall   = 1
	tagUniformRect   = 2
	tagConGauBall    = 3
	tagGaussRect     = 4
	tagExpoRect      = 5
	tagHistogramRect = 6
	tagPolygon       = 7
	tagMixture       = 8
)

// ErrCorruptPDF is returned by Decode on malformed input.
var ErrCorruptPDF = errors.New("updf: corrupt pdf encoding")

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *encoder) point(p geom.Point) {
	for _, v := range p {
		e.f64(v)
	}
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.err = ErrCorruptPDF
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.buf) {
		d.err = ErrCorruptPDF
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) f64() float64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.err = ErrCorruptPDF
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) point(n int) geom.Point {
	p := make(geom.Point, n)
	for i := range p {
		p[i] = d.f64()
	}
	return p
}

// Encode serializes a pdf into the compact binary form stored in the data
// file (the "parameters of o.pdf" the paper keeps at the leaf's disk
// address).
func Encode(p PDF) ([]byte, error) {
	e := &encoder{}
	switch v := p.(type) {
	case *UniformBall:
		e.u8(tagUniformBall)
		e.u8(uint8(v.Dim()))
		e.point(v.Ctr)
		e.f64(v.R)
	case *UniformRect:
		e.u8(tagUniformRect)
		e.u8(uint8(v.Dim()))
		e.point(v.Rect.Lo)
		e.point(v.Rect.Hi)
	case *ConGauBall:
		e.u8(tagConGauBall)
		e.u8(uint8(v.Dim()))
		e.point(v.Ctr)
		e.f64(v.R)
		e.f64(v.Sigma)
	case *GaussRect:
		e.u8(tagGaussRect)
		e.u8(uint8(v.Dim()))
		e.point(v.Rect.Lo)
		e.point(v.Rect.Hi)
		e.point(v.Mu)
		e.point(v.Sigma)
	case *ExpoRect:
		e.u8(tagExpoRect)
		e.u8(uint8(v.Dim()))
		e.point(v.Rect.Lo)
		e.point(v.Rect.Hi)
		e.point(v.Rate)
	case *HistogramRect:
		e.u8(tagHistogramRect)
		e.u8(uint8(v.Dim()))
		e.point(v.Rect.Lo)
		e.point(v.Rect.Hi)
		for _, b := range v.Bins {
			e.u16(uint16(b))
		}
		e.u16(uint16(len(v.Mass)))
		e.point(v.Mass)
	case *UniformPolygon:
		e.u8(tagPolygon)
		e.u8(2)
		e.u16(uint16(len(v.verts)))
		for _, vert := range v.verts {
			e.point(vert)
		}
	case *Mixture:
		e.u8(tagMixture)
		e.u8(uint8(v.Dim()))
		e.u16(uint16(len(v.comps)))
		for i, c := range v.comps {
			e.f64(v.weights[i])
			sub, err := Encode(c)
			if err != nil {
				return nil, err
			}
			e.u16(uint16(len(sub)))
			e.buf = append(e.buf, sub...)
		}
	default:
		return nil, fmt.Errorf("updf: cannot encode pdf of type %T", p)
	}
	return e.buf, nil
}

// Decode reverses Encode. Corrupt input yields ErrCorruptPDF (constructor
// panics on decoded-but-invalid parameters are converted to errors).
func Decode(buf []byte) (p PDF, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("%w: %v", ErrCorruptPDF, r)
		}
	}()
	return decode(buf)
}

func decode(buf []byte) (PDF, error) {
	d := &decoder{buf: buf}
	tag := d.u8()
	dim := int(d.u8())
	if d.err != nil {
		return nil, d.err
	}
	if dim < 1 || dim > 16 {
		return nil, fmt.Errorf("%w: dimensionality %d", ErrCorruptPDF, dim)
	}
	var p PDF
	switch tag {
	case tagUniformBall:
		ctr := d.point(dim)
		r := d.f64()
		if d.err == nil {
			p = NewUniformBall(ctr, r)
		}
	case tagUniformRect:
		lo := d.point(dim)
		hi := d.point(dim)
		if d.err == nil {
			p = NewUniformRect(geom.Rect{Lo: lo, Hi: hi})
		}
	case tagConGauBall:
		ctr := d.point(dim)
		r := d.f64()
		s := d.f64()
		if d.err == nil {
			p = NewConGauBall(ctr, r, s)
		}
	case tagGaussRect:
		lo := d.point(dim)
		hi := d.point(dim)
		mu := d.point(dim)
		sigma := d.point(dim)
		if d.err == nil {
			p = NewGaussRect(geom.Rect{Lo: lo, Hi: hi}, mu, sigma)
		}
	case tagExpoRect:
		lo := d.point(dim)
		hi := d.point(dim)
		rate := d.point(dim)
		if d.err == nil {
			p = NewExpoRect(geom.Rect{Lo: lo, Hi: hi}, rate)
		}
	case tagHistogramRect:
		lo := d.point(dim)
		hi := d.point(dim)
		bins := make([]int, dim)
		for i := range bins {
			bins[i] = int(d.u16())
		}
		n := int(d.u16())
		mass := d.point(n)
		if d.err == nil {
			want := 1
			for _, b := range bins {
				want *= b
			}
			if want != n {
				return nil, fmt.Errorf("%w: %d cells for bins %v", ErrCorruptPDF, n, bins)
			}
			p = NewHistogramRect(geom.Rect{Lo: lo, Hi: hi}, bins, mass)
		}
	case tagPolygon:
		nv := int(d.u16())
		if d.err == nil && (nv < 3 || nv > 1024) {
			return nil, fmt.Errorf("%w: polygon with %d vertices", ErrCorruptPDF, nv)
		}
		verts := make([]geom.Point, 0, nv)
		for i := 0; i < nv; i++ {
			verts = append(verts, d.point(2))
		}
		if d.err == nil {
			p = NewUniformPolygon(verts)
		}
	case tagMixture:
		nc := int(d.u16())
		if d.err == nil && (nc < 1 || nc > 256) {
			return nil, fmt.Errorf("%w: mixture with %d components", ErrCorruptPDF, nc)
		}
		comps := make([]PDF, 0, nc)
		weights := make([]float64, 0, nc)
		for i := 0; i < nc; i++ {
			w := d.f64()
			ln := int(d.u16())
			if d.err != nil {
				return nil, d.err
			}
			if d.off+ln > len(d.buf) {
				return nil, ErrCorruptPDF
			}
			sub, err := Decode(d.buf[d.off : d.off+ln])
			if err != nil {
				return nil, err
			}
			d.off += ln
			comps = append(comps, sub)
			weights = append(weights, w)
		}
		if d.err == nil {
			p = NewMixture(comps, weights)
		}
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrCorruptPDF, tag)
	}
	if d.err != nil {
		return nil, d.err
	}
	return p, nil
}
