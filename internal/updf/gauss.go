package updf

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/numeric"
)

// ConGauBall is the paper's Constrained Gaussian (Equation 16): an isotropic
// Gaussian with mean at the ball center and standard deviation Sigma,
// renormalized over the ball of radius R:
//
//	pdf_CG(x) = pdf_G(x)/λ  if x ∈ ball,  0 otherwise,
//	λ = ∫_ball pdf_G(x) dx.
//
// λ has a closed form for d ≤ 3 because |X| follows a χ distribution.
type ConGauBall struct {
	Ctr    geom.Point
	R      float64
	Sigma  float64
	lambda float64
}

// NewConGauBall constructs a constrained-Gaussian pdf; the CA dataset of the
// paper uses R=250, Sigma=125 (σ = half the region radius). Supported for
// d ∈ {1,2,3}.
func NewConGauBall(ctr geom.Point, r, sigma float64) *ConGauBall {
	if r <= 0 || sigma <= 0 {
		panic(fmt.Sprintf("updf: invalid ConGau parameters r=%g sigma=%g", r, sigma))
	}
	d := len(ctr)
	if d < 1 || d > 3 {
		panic(fmt.Sprintf("updf: ConGauBall supports d ∈ {1,2,3}, got %d", d))
	}
	g := &ConGauBall{Ctr: ctr.Clone(), R: r, Sigma: sigma}
	g.lambda = chiBallMass(d, r/sigma)
	return g
}

// chiBallMass returns P(|Z| ≤ z) for a d-dimensional standard isotropic
// Gaussian, i.e. the mass a Gaussian N(0, σ²I) places on a ball of radius
// z·σ.
func chiBallMass(d int, z float64) float64 {
	switch d {
	case 1:
		return 2*numeric.NormalCDF(z) - 1
	case 2:
		return 1 - math.Exp(-z*z/2)
	case 3:
		return math.Erf(z/math.Sqrt2) - math.Sqrt(2/math.Pi)*z*math.Exp(-z*z/2)
	default:
		panic("updf: chiBallMass unsupported dimension")
	}
}

func (g *ConGauBall) Dim() int       { return len(g.Ctr) }
func (g *ConGauBall) MBR() geom.Rect { return ballMBR(g.Ctr, g.R) }

// Lambda exposes the normalization constant (for tests and documentation;
// the paper notes it is computed once per shape).
func (g *ConGauBall) Lambda() float64 { return g.lambda }

func (g *ConGauBall) Density(x geom.Point) float64 {
	if !inBall(g.Ctr, g.R, x) {
		return 0
	}
	p := 1.0
	for i := range g.Ctr {
		p *= numeric.NormalPDF((x[i]-g.Ctr[i])/g.Sigma) / g.Sigma
	}
	return p / g.lambda
}

func (g *ConGauBall) SampleUniform(rng *rand.Rand, dst geom.Point) {
	sampleBall(rng, g.Ctr, g.R, dst)
}

// marginalDensityOffset returns the marginal density of the offset t from
// the center along any axis (isotropy makes all axes identical).
func (g *ConGauBall) marginalDensityOffset(t float64) float64 {
	r, s := g.R, g.Sigma
	if t <= -r || t >= r {
		return 0
	}
	phi := numeric.NormalPDF(t/s) / s
	rest := r*r - t*t
	switch g.Dim() {
	case 1:
		return phi / g.lambda
	case 2:
		// Mass of a 1D Gaussian over the chord [−h, h].
		h := math.Sqrt(rest)
		return phi * (2*numeric.NormalCDF(h/s) - 1) / g.lambda
	case 3:
		// Mass of a 2D isotropic Gaussian over the disk of radius h.
		return phi * (1 - math.Exp(-rest/(2*s*s))) / g.lambda
	default:
		panic("updf: unsupported dimension")
	}
}

func (g *ConGauBall) MarginalCDF(dim int, x float64) float64 {
	t := x - g.Ctr[dim]
	if t <= -g.R {
		return 0
	}
	if t >= g.R {
		return 1
	}
	if g.Dim() == 1 {
		s := g.Sigma
		return clamp01((numeric.NormalCDF(t/s) - numeric.NormalCDF(-g.R/s)) / g.lambda)
	}
	v, _ := numeric.AdaptiveSimpson(g.marginalDensityOffset, -g.R, t, 1e-10)
	return clamp01(v)
}

func (g *ConGauBall) ShapeKey() string {
	return fmt.Sprintf("congau:d=%d:r=%g:s=%g", g.Dim(), g.R, g.Sigma)
}

func (g *ConGauBall) Center() geom.Point { return g.Ctr }

// ExactProb evaluates Equation 2 by quadrature: for d=2 a single integral of
// Gaussian chord masses, for d=3 a nested integral. Used as ground truth.
func (g *ConGauBall) ExactProb(rq geom.Rect) float64 {
	r, s := g.R, g.Sigma
	switch g.Dim() {
	case 1:
		lo := math.Max(rq.Lo[0], g.Ctr[0]-r)
		hi := math.Min(rq.Hi[0], g.Ctr[0]+r)
		if lo >= hi {
			return 0
		}
		return clamp01(numeric.NormalIntervalMass(g.Ctr[0], s, lo, hi) / g.lambda)
	case 2:
		v := g.gaussDiskRectMass(g.Ctr[0], g.Ctr[1], r, rq.Lo[0], rq.Lo[1], rq.Hi[0], rq.Hi[1])
		return clamp01(v / g.lambda)
	case 3:
		zlo := math.Max(rq.Lo[2], g.Ctr[2]-r)
		zhi := math.Min(rq.Hi[2], g.Ctr[2]+r)
		if zlo >= zhi {
			return 0
		}
		f := func(z float64) float64 {
			rest := r*r - (z-g.Ctr[2])*(z-g.Ctr[2])
			if rest <= 0 {
				return 0
			}
			rad := math.Sqrt(rest)
			inner := g.gaussDiskRectMass(g.Ctr[0], g.Ctr[1], rad, rq.Lo[0], rq.Lo[1], rq.Hi[0], rq.Hi[1])
			return numeric.NormalPDF((z-g.Ctr[2])/s) / s * inner
		}
		v, _ := numeric.AdaptiveSimpson(f, zlo, zhi, 1e-8)
		return clamp01(v / g.lambda)
	default:
		panic("updf: unsupported dimension")
	}
}

// gaussDiskRectMass returns the (unnormalized) mass the 2D isotropic
// Gaussian at (cx, cy) with deviation g.Sigma places on disk(r) ∩ rect.
func (g *ConGauBall) gaussDiskRectMass(cx, cy, r, lx, ly, hx, hy float64) float64 {
	s := g.Sigma
	xlo := math.Max(lx, cx-r)
	xhi := math.Min(hx, cx+r)
	if xlo >= xhi {
		return 0
	}
	f := func(x float64) float64 {
		rest := r*r - (x-cx)*(x-cx)
		if rest <= 0 {
			return 0
		}
		half := math.Sqrt(rest)
		lo := math.Max(ly, cy-half)
		hi := math.Min(hy, cy+half)
		if lo >= hi {
			return 0
		}
		return numeric.NormalPDF((x-cx)/s) / s * numeric.NormalIntervalMass(cy, s, lo, hi)
	}
	v, _ := numeric.AdaptiveSimpson(f, xlo, xhi, 1e-9)
	return v
}

// GaussRect is a product of independent Gaussians truncated to a rectangle.
// Every quantity (marginals, quantiles, appearance probabilities) is closed
// form, which makes it the exact-oracle Gaussian for correctness tests, and
// a realistic sensor-noise model for rectangular uncertainty regions.
type GaussRect struct {
	Rect  geom.Rect
	Mu    geom.Point
	Sigma []float64
	mass  []float64 // per-dimension truncation mass
}

// NewGaussRect constructs a truncated-Gaussian-product pdf on rect.
func NewGaussRect(rect geom.Rect, mu geom.Point, sigma []float64) *GaussRect {
	d := rect.Dim()
	if len(mu) != d || len(sigma) != d {
		panic("updf: GaussRect parameter dimensionality mismatch")
	}
	g := &GaussRect{Rect: rect.Clone(), Mu: mu.Clone(), Sigma: append([]float64(nil), sigma...)}
	g.mass = make([]float64, d)
	for i := 0; i < d; i++ {
		if sigma[i] <= 0 {
			panic(fmt.Sprintf("updf: non-positive sigma on dim %d", i))
		}
		g.mass[i] = numeric.NormalIntervalMass(mu[i], sigma[i], rect.Lo[i], rect.Hi[i])
		if g.mass[i] <= 0 {
			panic(fmt.Sprintf("updf: Gaussian places no mass on dim %d extent", i))
		}
	}
	return g
}

func (g *GaussRect) Dim() int       { return g.Rect.Dim() }
func (g *GaussRect) MBR() geom.Rect { return g.Rect.Clone() }

func (g *GaussRect) Density(x geom.Point) float64 {
	if !g.Rect.ContainsPoint(x) {
		return 0
	}
	p := 1.0
	for i := range x {
		p *= numeric.NormalPDF((x[i]-g.Mu[i])/g.Sigma[i]) / g.Sigma[i] / g.mass[i]
	}
	return p
}

func (g *GaussRect) SampleUniform(rng *rand.Rand, dst geom.Point) {
	for i := range dst {
		dst[i] = g.Rect.Lo[i] + rng.Float64()*(g.Rect.Hi[i]-g.Rect.Lo[i])
	}
}

func (g *GaussRect) MarginalCDF(dim int, x float64) float64 {
	lo, hi := g.Rect.Lo[dim], g.Rect.Hi[dim]
	if x <= lo {
		return 0
	}
	if x >= hi {
		return 1
	}
	return clamp01(numeric.NormalIntervalMass(g.Mu[dim], g.Sigma[dim], lo, x) / g.mass[dim])
}

func (g *GaussRect) ShapeKey() string {
	key := fmt.Sprintf("grect:d=%d", g.Dim())
	c := g.Rect.Center()
	for i := range g.Sigma {
		key += fmt.Sprintf(":%g,%g,%g", g.Rect.Side(i), g.Sigma[i], g.Mu[i]-c[i])
	}
	return key
}

func (g *GaussRect) Center() geom.Point { return g.Rect.Center() }

func (g *GaussRect) ExactProb(rq geom.Rect) float64 {
	p := 1.0
	for i := 0; i < g.Dim(); i++ {
		lo := math.Max(rq.Lo[i], g.Rect.Lo[i])
		hi := math.Min(rq.Hi[i], g.Rect.Hi[i])
		if lo >= hi {
			return 0
		}
		p *= numeric.NormalIntervalMass(g.Mu[i], g.Sigma[i], lo, hi) / g.mass[i]
	}
	return clamp01(p)
}
