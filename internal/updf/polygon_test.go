package updf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func pentagon() *UniformPolygon {
	// Convex pentagon roughly centered at (100, 100).
	return NewUniformPolygon([]geom.Point{
		{60, 80}, {100, 50}, {145, 75}, {135, 130}, {75, 140},
	})
}

func TestPolygonAreaAndMBR(t *testing.T) {
	sq := NewUniformPolygon([]geom.Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}})
	if math.Abs(sq.Area()-100) > 1e-12 {
		t.Fatalf("square area = %g", sq.Area())
	}
	mbr := sq.MBR()
	if !mbr.Equal(geom.NewRect(geom.Point{0, 0}, geom.Point{10, 10})) {
		t.Fatalf("square MBR = %v", mbr)
	}
	tri := NewUniformPolygon([]geom.Point{{0, 0}, {4, 0}, {0, 3}})
	if math.Abs(tri.Area()-6) > 1e-12 {
		t.Fatalf("triangle area = %g", tri.Area())
	}
}

func TestPolygonHullFromUnorderedInput(t *testing.T) {
	// Same square with shuffled vertices and an interior point: the hull
	// must discard the interior point.
	sq := NewUniformPolygon([]geom.Point{{10, 10}, {0, 0}, {5, 5}, {10, 0}, {0, 10}})
	if math.Abs(sq.Area()-100) > 1e-12 {
		t.Fatalf("hull area = %g, want 100", sq.Area())
	}
	if len(sq.Vertices()) != 4 {
		t.Fatalf("hull has %d vertices, want 4", len(sq.Vertices()))
	}
}

func TestPolygonDensityAndContainment(t *testing.T) {
	p := pentagon()
	in := geom.Point{100, 100}
	out := geom.Point{200, 200}
	if p.Density(in) <= 0 {
		t.Fatal("interior point has zero density")
	}
	if math.Abs(p.Density(in)-1/p.Area()) > 1e-15 {
		t.Fatal("density is not 1/area")
	}
	if p.Density(out) != 0 {
		t.Fatal("exterior point has positive density")
	}
}

func TestPolygonMarginalCDF(t *testing.T) {
	// Square: marginals are linear.
	sq := NewUniformPolygon([]geom.Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}})
	if got := sq.MarginalCDF(0, 5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("square CDF(5) = %g", got)
	}
	// Right triangle (0,0)-(4,0)-(0,4): P(x ≤ 2) = 1 − (2/4)² = 0.75.
	tri := NewUniformPolygon([]geom.Point{{0, 0}, {4, 0}, {0, 4}})
	if got := tri.MarginalCDF(0, 2); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("triangle CDF(2) = %g, want 0.75", got)
	}
	// Generic polygon: monotone, 0/1 at extremes, consistent with sampling.
	p := pentagon()
	prev := -1.0
	for x := 55.0; x <= 150; x += 5 {
		c := p.MarginalCDF(0, x)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %g", x)
		}
		prev = c
	}
}

func TestPolygonExactProbAgainstMonteCarlo(t *testing.T) {
	p := pentagon()
	rng := rand.New(rand.NewSource(8))
	queries := []geom.Rect{
		geom.NewRect(geom.Point{80, 80}, geom.Point{120, 120}),
		geom.NewRect(geom.Point{0, 0}, geom.Point{100, 100}),
		geom.NewRect(geom.Point{50, 40}, geom.Point{150, 150}), // superset
		geom.NewRect(geom.Point{300, 300}, geom.Point{400, 400}),
	}
	for qi, rq := range queries {
		want := p.ExactProb(rq)
		got := MonteCarloProb(p, rq, 300000, rng)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("query %d: exact %g vs MC %g", qi, want, got)
		}
	}
	// Full containment must be exactly 1.
	if got := p.ExactProb(geom.NewRect(geom.Point{0, 0}, geom.Point{500, 500})); math.Abs(got-1) > 1e-9 {
		t.Fatalf("superset prob = %g", got)
	}
}

func TestPolygonSamplesInside(t *testing.T) {
	p := pentagon()
	rng := rand.New(rand.NewSource(4))
	pt := make(geom.Point, 2)
	for i := 0; i < 5000; i++ {
		p.SampleUniform(rng, pt)
		if p.Density(pt) == 0 {
			t.Fatalf("sample %v outside polygon", pt)
		}
	}
}

func TestPolygonQuantileRoundTrip(t *testing.T) {
	p := pentagon()
	for dim := 0; dim < 2; dim++ {
		for _, prob := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			x := MarginalQuantile(p, dim, prob)
			if got := p.MarginalCDF(dim, x); math.Abs(got-prob) > 1e-6 {
				t.Fatalf("dim %d: CDF(Q(%g)) = %g", dim, prob, got)
			}
		}
	}
}

func TestPolygonShapeKeyTranslation(t *testing.T) {
	a := NewUniformPolygon([]geom.Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}})
	b := NewUniformPolygon([]geom.Point{{500, 700}, {510, 700}, {510, 710}, {500, 710}})
	c := NewUniformPolygon([]geom.Point{{0, 0}, {20, 0}, {20, 10}, {0, 10}})
	if a.ShapeKey() != b.ShapeKey() {
		t.Error("translated polygons should share a key")
	}
	if a.ShapeKey() == c.ShapeKey() {
		t.Error("different polygons must not share a key")
	}
}

func TestPolygonCentroid(t *testing.T) {
	sq := NewUniformPolygon([]geom.Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}})
	c := sq.Center()
	if math.Abs(c[0]-5) > 1e-12 || math.Abs(c[1]-5) > 1e-12 {
		t.Fatalf("centroid = %v", c)
	}
}

func TestPolygonPanics(t *testing.T) {
	cases := []func(){
		func() { NewUniformPolygon([]geom.Point{{0, 0}, {1, 1}}) },                  // too few
		func() { NewUniformPolygon([]geom.Point{{0, 0}, {1, 1}, {2, 2}}) },          // collinear
		func() { NewUniformPolygon([]geom.Point{{0, 0, 0}, {1, 1, 0}, {2, 0, 0}}) }, // 3D points
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPolygonCodecRoundTrip(t *testing.T) {
	p := pentagon()
	buf, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	qq, ok := q.(*UniformPolygon)
	if !ok {
		t.Fatalf("decoded type %T", q)
	}
	if math.Abs(qq.Area()-p.Area()) > 1e-9 {
		t.Fatalf("area changed: %g vs %g", qq.Area(), p.Area())
	}
	rq := geom.NewRect(geom.Point{80, 80}, geom.Point{120, 120})
	if math.Abs(qq.ExactProb(rq)-p.ExactProb(rq)) > 1e-12 {
		t.Fatal("probability changed through codec")
	}
}

func TestMixtureBasics(t *testing.T) {
	a := NewUniformBall(geom.Point{100, 100}, 20)
	b := NewUniformBall(geom.Point{200, 100}, 30)
	m := NewMixture([]PDF{a, b}, []float64{1, 3})
	if m.Dim() != 2 || m.Components() != 2 {
		t.Fatal("mixture metadata wrong")
	}
	// Weights normalized.
	if _, w := m.Component(0); math.Abs(w-0.25) > 1e-12 {
		t.Fatalf("weight = %g", w)
	}
	// MBR is the union.
	mbr := m.MBR()
	if mbr.Lo[0] != 80 || mbr.Hi[0] != 230 {
		t.Fatalf("MBR = %v", mbr)
	}
}

func TestMixtureExactAndMarginals(t *testing.T) {
	a := NewUniformRect(geom.NewRect(geom.Point{0, 0}, geom.Point{10, 10}))
	b := NewUniformRect(geom.NewRect(geom.Point{20, 0}, geom.Point{30, 10}))
	m := NewMixture([]PDF{a, b}, []float64{0.5, 0.5})
	// Query covering only a: P = 0.5.
	q := geom.NewRect(geom.Point{-1, -1}, geom.Point{11, 11})
	if got := m.ExactProb(q); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("P = %g, want 0.5", got)
	}
	// CDF at the gap between components: exactly 0.5.
	if got := m.MarginalCDF(0, 15); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CDF(15) = %g", got)
	}
	if !m.Exactable() {
		t.Fatal("all-exact mixture reported not exactable")
	}
}

func TestMixtureMonteCarloAgreement(t *testing.T) {
	a := NewGaussRect(geom.NewRect(geom.Point{0, 0}, geom.Point{40, 40}),
		geom.Point{20, 20}, []float64{10, 10})
	b := NewUniformBall(geom.Point{80, 20}, 15)
	m := NewMixture([]PDF{a, b}, []float64{2, 1})
	rng := rand.New(rand.NewSource(12))
	for qi, rq := range []geom.Rect{
		geom.NewRect(geom.Point{10, 10}, geom.Point{30, 30}),
		geom.NewRect(geom.Point{60, 0}, geom.Point{100, 40}),
		geom.NewRect(geom.Point{0, 0}, geom.Point{100, 40}),
	} {
		want := m.ExactProb(rq)
		got := MonteCarloProb(m, rq, 400000, rng)
		if math.Abs(got-want) > 0.012 {
			t.Errorf("query %d: exact %g vs MC %g", qi, want, got)
		}
	}
}

func TestMixtureQuantiles(t *testing.T) {
	a := NewUniformRect(geom.NewRect(geom.Point{0, 0}, geom.Point{10, 10}))
	b := NewUniformRect(geom.NewRect(geom.Point{20, 0}, geom.Point{30, 10}))
	m := NewMixture([]PDF{a, b}, []float64{0.5, 0.5})
	// 25% quantile on x: middle of the first component = 5.
	if got := MarginalQuantile(m, 0, 0.25); math.Abs(got-5) > 1e-6 {
		t.Fatalf("Q(0.25) = %g", got)
	}
	// 75% quantile: middle of the second = 25.
	if got := MarginalQuantile(m, 0, 0.75); math.Abs(got-25) > 1e-6 {
		t.Fatalf("Q(0.75) = %g", got)
	}
}

func TestMixtureCodecRoundTrip(t *testing.T) {
	m := NewMixture(
		[]PDF{
			NewUniformBall(geom.Point{10, 10}, 5),
			NewExpoRect(geom.NewRect(geom.Point{30, 0}, geom.Point{50, 20}), []float64{0.2, 0}),
		},
		[]float64{0.3, 0.7},
	)
	buf, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	qm, ok := q.(*Mixture)
	if !ok {
		t.Fatalf("decoded type %T", q)
	}
	rq := geom.NewRect(geom.Point{5, 5}, geom.Point{40, 15})
	if math.Abs(qm.ExactProb(rq)-m.ExactProb(rq)) > 1e-12 {
		t.Fatal("probability changed through codec")
	}
}

func TestMixturePanics(t *testing.T) {
	ball := NewUniformBall(geom.Point{0, 0}, 1)
	cases := []func(){
		func() { NewMixture(nil, nil) },
		func() { NewMixture([]PDF{ball}, []float64{1, 2}) },
		func() { NewMixture([]PDF{ball}, []float64{-1}) },
		func() { NewMixture([]PDF{ball}, []float64{0}) },
		func() {
			NewMixture([]PDF{ball, NewUniformBall(geom.Point{0, 0, 0}, 1)}, []float64{1, 1})
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// TestPolygonAndMixtureFilterSoundness pushes the new pdfs through the PCR
// machinery indirectly: their marginal quantiles must be consistent enough
// that pcr-nesting holds (checked by Compute in package pcr; here we verify
// the underlying monotonicity of quantiles).
func TestPolygonAndMixtureQuantileMonotone(t *testing.T) {
	pdfs := []PDF{
		pentagon(),
		NewMixture([]PDF{
			NewUniformBall(geom.Point{50, 50}, 10),
			NewUniformBall(geom.Point{90, 60}, 15),
		}, []float64{1, 1}),
	}
	for pi, p := range pdfs {
		for dim := 0; dim < 2; dim++ {
			prev := math.Inf(-1)
			for _, prob := range []float64{0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95} {
				q := MarginalQuantile(p, dim, prob)
				if q < prev-1e-9 {
					t.Fatalf("pdf %d dim %d: quantiles not monotone", pi, dim)
				}
				prev = q
			}
		}
	}
}
