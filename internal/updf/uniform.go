package updf

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/numeric"
)

// UniformBall is the paper's canonical location-uncertainty model: the
// object lies uniformly in a d-dimensional ball (circle for d=2, sphere for
// d=3) centered at the last reported location.
type UniformBall struct {
	Ctr geom.Point
	R   float64
	vol float64
}

// NewUniformBall constructs a uniform-ball pdf. It panics on non-positive
// radius, which would make the density undefined.
func NewUniformBall(ctr geom.Point, r float64) *UniformBall {
	if r <= 0 {
		panic(fmt.Sprintf("updf: non-positive ball radius %g", r))
	}
	d := len(ctr)
	return &UniformBall{Ctr: ctr.Clone(), R: r, vol: unitBallVolume(d) * math.Pow(r, float64(d))}
}

func (u *UniformBall) Dim() int       { return len(u.Ctr) }
func (u *UniformBall) MBR() geom.Rect { return ballMBR(u.Ctr, u.R) }

func (u *UniformBall) Density(x geom.Point) float64 {
	if !inBall(u.Ctr, u.R, x) {
		return 0
	}
	return 1 / u.vol
}

func (u *UniformBall) SampleUniform(rng *rand.Rand, dst geom.Point) {
	sampleBall(rng, u.Ctr, u.R, dst)
}

// MarginalCDF uses the closed-form ball marginals for d ≤ 3 and quadrature
// for higher dimensions.
func (u *UniformBall) MarginalCDF(dim int, x float64) float64 {
	t := x - u.Ctr[dim]
	r := u.R
	switch {
	case t <= -r:
		return 0
	case t >= r:
		return 1
	}
	switch u.Dim() {
	case 1:
		return (t + r) / (2 * r)
	case 2:
		return 0.5 + (t*math.Sqrt(r*r-t*t)+r*r*math.Asin(t/r))/(math.Pi*r*r)
	case 3:
		return 0.5 + (3/(4*r*r*r))*(r*r*t-t*t*t/3)
	default:
		d := u.Dim()
		vSlice := unitBallVolume(d - 1)
		f := func(s float64) float64 {
			h := r*r - s*s
			if h <= 0 {
				return 0
			}
			return vSlice * math.Pow(math.Sqrt(h), float64(d-1))
		}
		v, _ := numeric.AdaptiveSimpson(f, -r, t, u.vol*1e-10)
		return clamp01(v / u.vol)
	}
}

func (u *UniformBall) ShapeKey() string {
	return fmt.Sprintf("uball:d=%d:r=%g", u.Dim(), u.R)
}

func (u *UniformBall) Center() geom.Point { return u.Ctr }

// ExactProb integrates the uniform density over rq ∩ ball exactly (to
// quadrature tolerance): the ratio Vol(ball ∩ rq) / Vol(ball), Equation 1.
func (u *UniformBall) ExactProb(rq geom.Rect) float64 {
	v := ballRectVolume(u.Ctr, u.R, rq, u.Dim())
	return clamp01(v / u.vol)
}

// ballRectVolume computes Vol(ball(ctr,r) ∩ rect) for d ∈ {1,2,3} by nested
// chord integration.
func ballRectVolume(ctr geom.Point, r float64, rect geom.Rect, d int) float64 {
	switch d {
	case 1:
		lo := math.Max(rect.Lo[0], ctr[0]-r)
		hi := math.Min(rect.Hi[0], ctr[0]+r)
		return math.Max(0, hi-lo)
	case 2:
		return circleRectArea(ctr[0], ctr[1], r, rect.Lo[0], rect.Lo[1], rect.Hi[0], rect.Hi[1], 1e-10*r*r)
	case 3:
		zlo := math.Max(rect.Lo[2], ctr[2]-r)
		zhi := math.Min(rect.Hi[2], ctr[2]+r)
		if zlo >= zhi {
			return 0
		}
		f := func(z float64) float64 {
			h := r*r - (z-ctr[2])*(z-ctr[2])
			if h <= 0 {
				return 0
			}
			rad := math.Sqrt(h)
			return circleRectArea(ctr[0], ctr[1], rad, rect.Lo[0], rect.Lo[1], rect.Hi[0], rect.Hi[1], 1e-8*rad*rad)
		}
		v, _ := numeric.AdaptiveSimpson(f, zlo, zhi, 1e-7*r*r*r)
		return v
	default:
		panic(fmt.Sprintf("updf: ballRectVolume unsupported for d=%d", d))
	}
}

// circleRectArea returns the area of circle((cx,cy), r) ∩ [lx,ly,hx,hy] by
// integrating the vertical chord overlap along x.
func circleRectArea(cx, cy, r, lx, ly, hx, hy, tol float64) float64 {
	xlo := math.Max(lx, cx-r)
	xhi := math.Min(hx, cx+r)
	if xlo >= xhi {
		return 0
	}
	f := func(x float64) float64 {
		h := r*r - (x-cx)*(x-cx)
		if h <= 0 {
			return 0
		}
		half := math.Sqrt(h)
		lo := math.Max(ly, cy-half)
		hi := math.Min(hy, cy+half)
		return math.Max(0, hi-lo)
	}
	v, _ := numeric.AdaptiveSimpson(f, xlo, xhi, tol)
	return v
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// UniformRect is the product-uniform pdf on a rectangle. Every quantity is
// closed form, making it the workhorse of deterministic correctness tests.
type UniformRect struct {
	Rect geom.Rect
}

// NewUniformRect constructs a uniform pdf on the given rectangle, which must
// have positive volume.
func NewUniformRect(r geom.Rect) *UniformRect {
	if r.Area() <= 0 {
		panic(fmt.Sprintf("updf: uniform rect with non-positive volume %v", r))
	}
	return &UniformRect{Rect: r.Clone()}
}

func (u *UniformRect) Dim() int       { return u.Rect.Dim() }
func (u *UniformRect) MBR() geom.Rect { return u.Rect.Clone() }

func (u *UniformRect) Density(x geom.Point) float64 {
	if !u.Rect.ContainsPoint(x) {
		return 0
	}
	return 1 / u.Rect.Area()
}

func (u *UniformRect) SampleUniform(rng *rand.Rand, dst geom.Point) {
	for i := range dst {
		dst[i] = u.Rect.Lo[i] + rng.Float64()*(u.Rect.Hi[i]-u.Rect.Lo[i])
	}
}

func (u *UniformRect) MarginalCDF(dim int, x float64) float64 {
	lo, hi := u.Rect.Lo[dim], u.Rect.Hi[dim]
	return clamp01((x - lo) / (hi - lo))
}

func (u *UniformRect) ShapeKey() string {
	key := fmt.Sprintf("urect:d=%d", u.Dim())
	for i := range u.Rect.Lo {
		key += fmt.Sprintf(":%g", u.Rect.Hi[i]-u.Rect.Lo[i])
	}
	return key
}

func (u *UniformRect) Center() geom.Point { return u.Rect.Center() }

func (u *UniformRect) ExactProb(rq geom.Rect) float64 {
	return clamp01(u.Rect.Overlap(rq) / u.Rect.Area())
}
