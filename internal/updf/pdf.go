// Package updf models uncertain objects' probability distributions: an
// uncertainty region plus a probability density function over it (Section 3
// of the U-tree paper). The package provides
//
//   - concrete pdfs: Uniform over balls and rectangles, the paper's
//     Constrained Gaussian (Con-Gau, Equation 16), truncated Gaussian and
//     exponential products on rectangles, and piecewise-constant histogram
//     pdfs standing in for fully arbitrary densities;
//   - per-dimension marginal CDFs and quantiles (closed-form where the
//     math allows, adaptive quadrature otherwise) — the primitive from
//     which PCRs are computed (Section 4.1);
//   - uniform region sampling for the Monte-Carlo estimator (Equation 3);
//   - exact appearance-probability oracles used as ground truth in tests
//     and in the Fig. 7 error study;
//   - compact binary serialization for the data file leaf entries point at.
package updf

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/numeric"
)

// PDF describes an uncertain object's distribution. Implementations must be
// immutable after construction: they are shared across index entries and
// cached quantile tables.
type PDF interface {
	// Dim returns the dimensionality d.
	Dim() int
	// MBR returns the minimum bounding rectangle of the uncertainty region.
	MBR() geom.Rect
	// Density returns the normalized density at x (0 outside the region).
	Density(x geom.Point) float64
	// SampleUniform draws a point uniformly from the uncertainty region
	// (not from the pdf); this is the sampling scheme of Equation 3.
	SampleUniform(rng *rand.Rand, dst geom.Point)
	// MarginalCDF returns P(X_dim ≤ x).
	MarginalCDF(dim int, x float64) float64
	// ShapeKey identifies the pdf's shape up to translation by Center();
	// two pdfs with equal non-empty ShapeKeys have identical marginal
	// quantile offsets from their centers, enabling the paper's "compute λ
	// once for all of CA" style of caching. An empty key disables caching.
	ShapeKey() string
	// Center returns the translation anchor used with ShapeKey.
	Center() geom.Point
}

// ExactProber is implemented by pdfs that can compute the appearance
// probability in a rectangle exactly (up to quadrature tolerance); used as
// the ground-truth oracle in tests and the Fig. 7 experiment.
type ExactProber interface {
	ExactProb(rq geom.Rect) float64
}

// MarginalQuantile inverts p.MarginalCDF on dimension dim by bisection over
// the MBR extent. prob must be in [0, 1]; values at the boundaries return
// the region's extremes.
func MarginalQuantile(p PDF, dim int, prob float64) float64 {
	mbr := p.MBR()
	lo, hi := mbr.Lo[dim], mbr.Hi[dim]
	if prob <= 0 {
		return lo
	}
	if prob >= 1 {
		return hi
	}
	x, err := numeric.Bisect(func(x float64) float64 {
		return p.MarginalCDF(dim, x) - prob
	}, lo, hi, quantileTol(hi-lo))
	if err != nil {
		// CDF numerically flat at an endpoint; clamp to the nearer side.
		if p.MarginalCDF(dim, lo) >= prob {
			return lo
		}
		return hi
	}
	return x
}

func quantileTol(extent float64) float64 {
	t := extent * 1e-9
	if t < 1e-12 {
		t = 1e-12
	}
	return t
}

// MonteCarloProb estimates the appearance probability of p in rq with n1
// uniform samples (Equation 3).
func MonteCarloProb(p PDF, rq geom.Rect, n1 int, rng *rand.Rand) float64 {
	return MonteCarloProbScratch(p, rq, n1, rng, make(geom.Point, p.Dim()))
}

// MonteCarloProbScratch is MonteCarloProb writing samples into the caller's
// scratch point (len p.Dim()) instead of allocating one, for the query hot
// path. The accumulation replicates numeric.MonteCarloAppearance exactly —
// same draw order, same summation order — so estimates are bit-identical to
// MonteCarloProb's.
func MonteCarloProbScratch(p PDF, rq geom.Rect, n1 int, rng *rand.Rand, x geom.Point) float64 {
	if len(x) != p.Dim() {
		x = make(geom.Point, p.Dim())
	}
	var num, den float64
	for i := 0; i < n1; i++ {
		p.SampleUniform(rng, x)
		w := p.Density(x)
		den += w
		if rq.ContainsPoint(x) {
			num += w
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// unitBallVolume returns the volume of the d-dimensional unit ball.
func unitBallVolume(d int) float64 {
	switch d {
	case 1:
		return 2
	case 2:
		return math.Pi
	case 3:
		return 4 * math.Pi / 3
	}
	// V_d = π^{d/2} / Γ(d/2 + 1)
	return math.Pow(math.Pi, float64(d)/2) / math.Gamma(float64(d)/2+1)
}

// sampleBall fills dst with a point uniform in the ball of radius r at ctr.
// Direction via normalized Gaussians, radius via U^{1/d}: exact and free of
// rejection loops in any dimension.
func sampleBall(rng *rand.Rand, ctr geom.Point, r float64, dst geom.Point) {
	d := len(ctr)
	var norm float64
	for i := 0; i < d; i++ {
		g := rng.NormFloat64()
		dst[i] = g
		norm += g * g
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		copy(dst, ctr)
		return
	}
	rad := r * math.Pow(rng.Float64(), 1/float64(d))
	for i := 0; i < d; i++ {
		dst[i] = ctr[i] + dst[i]/norm*rad
	}
}

// ballMBR returns the bounding box of the ball at ctr with radius r.
func ballMBR(ctr geom.Point, r float64) geom.Rect {
	lo := make(geom.Point, len(ctr))
	hi := make(geom.Point, len(ctr))
	for i := range ctr {
		lo[i] = ctr[i] - r
		hi[i] = ctr[i] + r
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// inBall reports whether x is within distance r of ctr.
func inBall(ctr geom.Point, r float64, x geom.Point) bool {
	var s float64
	for i := range ctr {
		d := x[i] - ctr[i]
		s += d * d
	}
	return s <= r*r
}
