package updf

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
)

// Mixture is a finite weighted mixture of pdfs — multi-modal uncertainty,
// e.g. "the client is near one of two plausible road exits". Marginal CDFs
// and appearance probabilities are weighted sums of the components', so
// exactness is preserved whenever every component is exact.
//
// The uncertainty region is the union of component regions; uniform region
// sampling draws from the union's MBR, which is sound for the Monte-Carlo
// estimator (points outside the support have zero density and cancel from
// both sums of Equation 3).
type Mixture struct {
	comps   []PDF
	weights []float64
	mbr     geom.Rect
}

// NewMixture builds a mixture; weights are normalized internally. All
// components must share a dimensionality, and weights must be non-negative
// with a positive sum.
func NewMixture(comps []PDF, weights []float64) *Mixture {
	if len(comps) == 0 || len(comps) != len(weights) {
		panic(fmt.Sprintf("updf: mixture with %d components, %d weights", len(comps), len(weights)))
	}
	d := comps[0].Dim()
	var total float64
	for i, c := range comps {
		if c.Dim() != d {
			panic("updf: mixture components with mixed dimensionality")
		}
		if weights[i] < 0 {
			panic("updf: negative mixture weight")
		}
		total += weights[i]
	}
	if total <= 0 {
		panic("updf: mixture weights sum to zero")
	}
	m := &Mixture{comps: comps}
	m.weights = make([]float64, len(weights))
	for i, w := range weights {
		m.weights[i] = w / total
	}
	m.mbr = comps[0].MBR()
	for _, c := range comps[1:] {
		m.mbr.UnionInPlace(c.MBR())
	}
	return m
}

// Components returns the component count.
func (m *Mixture) Components() int { return len(m.comps) }

// Component returns component i and its normalized weight.
func (m *Mixture) Component(i int) (PDF, float64) { return m.comps[i], m.weights[i] }

func (m *Mixture) Dim() int       { return m.comps[0].Dim() }
func (m *Mixture) MBR() geom.Rect { return m.mbr.Clone() }

func (m *Mixture) Density(x geom.Point) float64 {
	var s float64
	for i, c := range m.comps {
		s += m.weights[i] * c.Density(x)
	}
	return s
}

func (m *Mixture) SampleUniform(rng *rand.Rand, dst geom.Point) {
	for i := range dst {
		dst[i] = m.mbr.Lo[i] + rng.Float64()*(m.mbr.Hi[i]-m.mbr.Lo[i])
	}
}

func (m *Mixture) MarginalCDF(dim int, x float64) float64 {
	var s float64
	for i, c := range m.comps {
		s += m.weights[i] * c.MarginalCDF(dim, x)
	}
	return clamp01(s)
}

// ShapeKey is empty: mixtures are treated as unique shapes (component
// translation offsets rarely coincide across objects).
func (m *Mixture) ShapeKey() string { return "" }

func (m *Mixture) Center() geom.Point { return m.mbr.Center() }

// ExactProb sums component probabilities. Every pdf shipped by this package
// is an ExactProber; mixing in a custom component without exact support
// panics — guard with Exactable when composing user-defined pdfs.
func (m *Mixture) ExactProb(rq geom.Rect) float64 {
	var s float64
	for i, c := range m.comps {
		ex, ok := c.(ExactProber)
		if !ok {
			panic(fmt.Sprintf("updf: mixture component %d (%T) has no exact oracle", i, c))
		}
		s += m.weights[i] * ex.ExactProb(rq)
	}
	return clamp01(s)
}

// Exactable reports whether every component supports exact probabilities.
func (m *Mixture) Exactable() bool {
	for _, c := range m.comps {
		if _, ok := c.(ExactProber); !ok {
			return false
		}
	}
	return true
}
