package updf

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// ExpoRect is a product of truncated exponential densities on a rectangle:
//
//	pdf(x) ∝ Π_i exp(−Rate_i · (x_i − lo_i)),   x ∈ rect.
//
// It models the heavily skewed ("Zipf-like") distributions the paper lists
// among common stochastic models, while keeping every marginal and
// appearance probability in closed form.
type ExpoRect struct {
	Rect geom.Rect
	Rate []float64
	mass []float64 // per-dimension normalizer ∫ exp(−rate·t) dt over the side
}

// NewExpoRect constructs a truncated-exponential-product pdf. A zero rate on
// a dimension degrades gracefully to uniform on that dimension.
func NewExpoRect(rect geom.Rect, rate []float64) *ExpoRect {
	d := rect.Dim()
	if len(rate) != d {
		panic("updf: ExpoRect rate dimensionality mismatch")
	}
	e := &ExpoRect{Rect: rect.Clone(), Rate: append([]float64(nil), rate...)}
	e.mass = make([]float64, d)
	for i := 0; i < d; i++ {
		if rate[i] < 0 {
			panic(fmt.Sprintf("updf: negative rate on dim %d", i))
		}
		e.mass[i] = expoMass(rate[i], rect.Side(i))
		if e.mass[i] <= 0 {
			panic(fmt.Sprintf("updf: zero extent on dim %d", i))
		}
	}
	return e
}

// expoMass returns ∫₀^w exp(−rate·t) dt.
func expoMass(rate, w float64) float64 {
	if rate == 0 {
		return w
	}
	return (1 - math.Exp(-rate*w)) / rate
}

func (e *ExpoRect) Dim() int       { return e.Rect.Dim() }
func (e *ExpoRect) MBR() geom.Rect { return e.Rect.Clone() }

func (e *ExpoRect) Density(x geom.Point) float64 {
	if !e.Rect.ContainsPoint(x) {
		return 0
	}
	p := 1.0
	for i := range x {
		p *= math.Exp(-e.Rate[i]*(x[i]-e.Rect.Lo[i])) / e.mass[i]
	}
	return p
}

func (e *ExpoRect) SampleUniform(rng *rand.Rand, dst geom.Point) {
	for i := range dst {
		dst[i] = e.Rect.Lo[i] + rng.Float64()*(e.Rect.Hi[i]-e.Rect.Lo[i])
	}
}

func (e *ExpoRect) MarginalCDF(dim int, x float64) float64 {
	lo, hi := e.Rect.Lo[dim], e.Rect.Hi[dim]
	if x <= lo {
		return 0
	}
	if x >= hi {
		return 1
	}
	return clamp01(expoMass(e.Rate[dim], x-lo) / e.mass[dim])
}

func (e *ExpoRect) ShapeKey() string {
	key := fmt.Sprintf("expo:d=%d", e.Dim())
	for i := range e.Rate {
		key += fmt.Sprintf(":%g,%g", e.Rect.Side(i), e.Rate[i])
	}
	return key
}

func (e *ExpoRect) Center() geom.Point { return e.Rect.Center() }

func (e *ExpoRect) ExactProb(rq geom.Rect) float64 {
	p := 1.0
	for i := 0; i < e.Dim(); i++ {
		lo := math.Max(rq.Lo[i], e.Rect.Lo[i])
		hi := math.Min(rq.Hi[i], e.Rect.Hi[i])
		if lo >= hi {
			return 0
		}
		seg := expoMass(e.Rate[i], hi-e.Rect.Lo[i]) - expoMass(e.Rate[i], lo-e.Rect.Lo[i])
		p *= seg / e.mass[i]
	}
	return clamp01(p)
}

// HistogramRect is a piecewise-constant pdf over a regular grid on a
// rectangle. It is the package's stand-in for fully *arbitrary* pdfs — any
// density can be approximated by a histogram — while keeping marginals and
// appearance probabilities exactly computable, which is what makes the
// "arbitrary pdf" correctness tests deterministic.
type HistogramRect struct {
	Rect geom.Rect
	Bins []int     // number of cells per dimension
	Mass []float64 // probability mass per cell, row-major, sums to 1
	proj [][]float64
	cdf  [][]float64 // per-dimension prefix sums of proj
}

// NewHistogramRect builds a histogram pdf from non-negative cell weights
// (row-major over the grid; normalized internally). It panics on a shape
// mismatch or all-zero weights.
func NewHistogramRect(rect geom.Rect, bins []int, weights []float64) *HistogramRect {
	d := rect.Dim()
	if len(bins) != d {
		panic("updf: histogram bins dimensionality mismatch")
	}
	n := 1
	for i, b := range bins {
		if b <= 0 {
			panic(fmt.Sprintf("updf: non-positive bin count on dim %d", i))
		}
		n *= b
	}
	if len(weights) != n {
		panic(fmt.Sprintf("updf: %d weights for %d cells", len(weights), n))
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("updf: negative histogram weight")
		}
		total += w
	}
	if total <= 0 {
		panic("updf: all-zero histogram")
	}
	h := &HistogramRect{
		Rect: rect.Clone(),
		Bins: append([]int(nil), bins...),
		Mass: make([]float64, n),
	}
	for i, w := range weights {
		h.Mass[i] = w / total
	}
	// Per-dimension slab projections and prefix sums for marginal CDFs.
	h.proj = make([][]float64, d)
	h.cdf = make([][]float64, d)
	for i := 0; i < d; i++ {
		h.proj[i] = make([]float64, bins[i])
	}
	idx := make([]int, d)
	for c := 0; c < n; c++ {
		h.cellIndex(c, idx)
		for i := 0; i < d; i++ {
			h.proj[i][idx[i]] += h.Mass[c]
		}
	}
	for i := 0; i < d; i++ {
		h.cdf[i] = make([]float64, bins[i]+1)
		for k := 0; k < bins[i]; k++ {
			h.cdf[i][k+1] = h.cdf[i][k] + h.proj[i][k]
		}
	}
	return h
}

// cellIndex decodes the row-major cell number c into per-dimension indices.
func (h *HistogramRect) cellIndex(c int, idx []int) {
	for i := len(h.Bins) - 1; i >= 0; i-- {
		idx[i] = c % h.Bins[i]
		c /= h.Bins[i]
	}
}

// cellNumber is the inverse of cellIndex.
func (h *HistogramRect) cellNumber(idx []int) int {
	c := 0
	for i := 0; i < len(h.Bins); i++ {
		c = c*h.Bins[i] + idx[i]
	}
	return c
}

func (h *HistogramRect) Dim() int       { return h.Rect.Dim() }
func (h *HistogramRect) MBR() geom.Rect { return h.Rect.Clone() }

// cellVolume is the volume of a single grid cell.
func (h *HistogramRect) cellVolume() float64 {
	v := h.Rect.Area()
	for _, b := range h.Bins {
		v /= float64(b)
	}
	return v
}

func (h *HistogramRect) Density(x geom.Point) float64 {
	if !h.Rect.ContainsPoint(x) {
		return 0
	}
	idx := make([]int, h.Dim())
	for i := range x {
		f := (x[i] - h.Rect.Lo[i]) / h.Rect.Side(i)
		k := int(f * float64(h.Bins[i]))
		if k >= h.Bins[i] {
			k = h.Bins[i] - 1 // x on the upper boundary
		}
		idx[i] = k
	}
	return h.Mass[h.cellNumber(idx)] / h.cellVolume()
}

func (h *HistogramRect) SampleUniform(rng *rand.Rand, dst geom.Point) {
	for i := range dst {
		dst[i] = h.Rect.Lo[i] + rng.Float64()*h.Rect.Side(i)
	}
}

func (h *HistogramRect) MarginalCDF(dim int, x float64) float64 {
	lo := h.Rect.Lo[dim]
	side := h.Rect.Side(dim)
	if x <= lo {
		return 0
	}
	if x >= lo+side {
		return 1
	}
	f := (x - lo) / side * float64(h.Bins[dim])
	k := int(f)
	if k >= h.Bins[dim] {
		k = h.Bins[dim] - 1
	}
	frac := f - float64(k)
	return clamp01(h.cdf[dim][k] + frac*h.proj[dim][k])
}

// ShapeKey is empty: histograms are arbitrary, so quantile caching across
// objects would be unsound unless the weights match exactly.
func (h *HistogramRect) ShapeKey() string { return "" }

func (h *HistogramRect) Center() geom.Point { return h.Rect.Center() }

// ExactProb sums cell masses weighted by the fraction of each cell inside
// rq; exact because the density is constant per cell.
func (h *HistogramRect) ExactProb(rq geom.Rect) float64 {
	d := h.Dim()
	idx := make([]int, d)
	var total float64
	for c := range h.Mass {
		if h.Mass[c] == 0 {
			continue
		}
		h.cellIndex(c, idx)
		frac := 1.0
		for i := 0; i < d; i++ {
			w := h.Rect.Side(i) / float64(h.Bins[i])
			clo := h.Rect.Lo[i] + w*float64(idx[i])
			chi := clo + w
			lo := math.Max(clo, rq.Lo[i])
			hi := math.Min(chi, rq.Hi[i])
			if lo >= hi {
				frac = 0
				break
			}
			frac *= (hi - lo) / w
		}
		total += h.Mass[c] * frac
	}
	return clamp01(total)
}
