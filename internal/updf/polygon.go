package updf

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/geom"
)

// UniformPolygon is a uniform pdf over a 2D convex polygon — the paper's
// illustrations (Figures 1, 3) draw uncertainty regions as polygons and
// note "our technique can be applied to uncertainty regions of any shapes".
// Marginal CDFs and appearance probabilities are exact via half-plane and
// rectangle clipping (Sutherland–Hodgman).
type UniformPolygon struct {
	verts []geom.Point // convex hull vertices, counter-clockwise
	area  float64
	mbr   geom.Rect
	tris  []triangle // fan triangulation for uniform sampling
	cumA  []float64  // cumulative triangle areas
}

type triangle struct{ a, b, c geom.Point }

// NewUniformPolygon builds a uniform pdf over the convex polygon with the
// given vertices (any order; the convex hull is taken). It panics when
// fewer than 3 distinct points or a degenerate (zero-area) polygon is
// supplied, and when points are not 2-dimensional.
func NewUniformPolygon(verts []geom.Point) *UniformPolygon {
	for _, v := range verts {
		if len(v) != 2 {
			panic("updf: UniformPolygon requires 2D points")
		}
	}
	hull := convexHull(verts)
	if len(hull) < 3 {
		panic(fmt.Sprintf("updf: polygon needs ≥3 hull vertices, got %d", len(hull)))
	}
	p := &UniformPolygon{verts: hull}
	p.area = polygonArea(hull)
	if p.area <= 0 {
		panic("updf: degenerate polygon")
	}
	lo := hull[0].Clone()
	hi := hull[0].Clone()
	for _, v := range hull[1:] {
		for k := 0; k < 2; k++ {
			lo[k] = math.Min(lo[k], v[k])
			hi[k] = math.Max(hi[k], v[k])
		}
	}
	p.mbr = geom.Rect{Lo: lo, Hi: hi}
	// Fan triangulation from vertex 0 (valid for convex polygons).
	cum := 0.0
	for i := 1; i+1 < len(hull); i++ {
		t := triangle{hull[0], hull[i], hull[i+1]}
		cum += triangleArea(t)
		p.tris = append(p.tris, t)
		p.cumA = append(p.cumA, cum)
	}
	return p
}

// Vertices returns a copy of the hull vertices (CCW).
func (p *UniformPolygon) Vertices() []geom.Point {
	out := make([]geom.Point, len(p.verts))
	for i, v := range p.verts {
		out[i] = v.Clone()
	}
	return out
}

// Area returns the polygon area.
func (p *UniformPolygon) Area() float64 { return p.area }

func (p *UniformPolygon) Dim() int       { return 2 }
func (p *UniformPolygon) MBR() geom.Rect { return p.mbr.Clone() }

func (p *UniformPolygon) Density(x geom.Point) float64 {
	if !pointInConvex(p.verts, x) {
		return 0
	}
	return 1 / p.area
}

func (p *UniformPolygon) SampleUniform(rng *rand.Rand, dst geom.Point) {
	// Pick a triangle proportionally to area, then a uniform point in it.
	u := rng.Float64() * p.cumA[len(p.cumA)-1]
	idx := 0
	for idx < len(p.cumA)-1 && p.cumA[idx] < u {
		idx++
	}
	t := p.tris[idx]
	r1 := math.Sqrt(rng.Float64())
	r2 := rng.Float64()
	dst[0] = (1-r1)*t.a[0] + r1*(1-r2)*t.b[0] + r1*r2*t.c[0]
	dst[1] = (1-r1)*t.a[1] + r1*(1-r2)*t.b[1] + r1*r2*t.c[1]
}

// MarginalCDF clips the polygon at the plane x_dim = x and returns the area
// fraction on the low side — exact.
func (p *UniformPolygon) MarginalCDF(dim int, x float64) float64 {
	if x <= p.mbr.Lo[dim] {
		return 0
	}
	if x >= p.mbr.Hi[dim] {
		return 1
	}
	clipped := clipHalfplane(p.verts, dim, x, true)
	if len(clipped) < 3 {
		return 0
	}
	return clamp01(polygonArea(clipped) / p.area)
}

func (p *UniformPolygon) ShapeKey() string {
	// Translation-invariant: vertex offsets from the centroid.
	c := p.Center()
	var b strings.Builder
	b.WriteString("upoly:")
	for _, v := range p.verts {
		fmt.Fprintf(&b, "%g,%g;", v[0]-c[0], v[1]-c[1])
	}
	return b.String()
}

func (p *UniformPolygon) Center() geom.Point {
	// Area centroid (stable under translation).
	var cx, cy float64
	for _, t := range p.tris {
		a := triangleArea(t)
		cx += a * (t.a[0] + t.b[0] + t.c[0]) / 3
		cy += a * (t.a[1] + t.b[1] + t.c[1]) / 3
	}
	return geom.Point{cx / p.area, cy / p.area}
}

// ExactProb clips the polygon by the query rectangle and returns the area
// ratio (Equation 1 generalized to polygonal regions).
func (p *UniformPolygon) ExactProb(rq geom.Rect) float64 {
	poly := p.verts
	// Clip against the four half-planes of rq.
	poly = clipHalfplane(poly, 0, rq.Lo[0], false) // x ≥ lo
	poly = clipHalfplane(poly, 0, rq.Hi[0], true)  // x ≤ hi
	poly = clipHalfplane(poly, 1, rq.Lo[1], false)
	poly = clipHalfplane(poly, 1, rq.Hi[1], true)
	if len(poly) < 3 {
		return 0
	}
	return clamp01(polygonArea(poly) / p.area)
}

// convexHull computes the convex hull (Andrew's monotone chain), returning
// CCW vertices without the closing duplicate.
func convexHull(pts []geom.Point) []geom.Point {
	n := len(pts)
	if n < 3 {
		return pts
	}
	sorted := make([]geom.Point, n)
	copy(sorted, pts)
	// Sort by (x, y).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && less2(sorted[j], sorted[j-1]); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var lower, upper []geom.Point
	for _, p := range sorted {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := n - 1; i >= 0; i-- {
		p := sorted[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	return append(lower[:len(lower)-1], upper[:len(upper)-1]...)
}

func less2(a, b geom.Point) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

func cross(o, a, b geom.Point) float64 {
	return (a[0]-o[0])*(b[1]-o[1]) - (a[1]-o[1])*(b[0]-o[0])
}

func polygonArea(verts []geom.Point) float64 {
	var s float64
	for i := range verts {
		j := (i + 1) % len(verts)
		s += verts[i][0]*verts[j][1] - verts[j][0]*verts[i][1]
	}
	return math.Abs(s) / 2
}

func triangleArea(t triangle) float64 {
	return math.Abs(cross(t.a, t.b, t.c)) / 2
}

func pointInConvex(verts []geom.Point, x geom.Point) bool {
	// CCW polygon: x is inside iff it is left of (or on) every edge.
	for i := range verts {
		j := (i + 1) % len(verts)
		if cross(verts[i], verts[j], x) < -1e-12 {
			return false
		}
	}
	return true
}

// clipHalfplane clips a convex polygon against x_dim ≤ bound (keepBelow) or
// x_dim ≥ bound (Sutherland–Hodgman, one half-plane).
func clipHalfplane(verts []geom.Point, dim int, bound float64, keepBelow bool) []geom.Point {
	inside := func(p geom.Point) bool {
		if keepBelow {
			return p[dim] <= bound
		}
		return p[dim] >= bound
	}
	var out []geom.Point
	n := len(verts)
	for i := 0; i < n; i++ {
		cur, next := verts[i], verts[(i+1)%n]
		ci, ni := inside(cur), inside(next)
		if ci {
			out = append(out, cur)
		}
		if ci != ni {
			// Edge crosses the plane: interpolate the intersection.
			t := (bound - cur[dim]) / (next[dim] - cur[dim])
			p := geom.Point{
				cur[0] + t*(next[0]-cur[0]),
				cur[1] + t*(next[1]-cur[1]),
			}
			out = append(out, p)
		}
	}
	return out
}
