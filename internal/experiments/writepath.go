package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/uncertain"
)

// This experiment is not in the paper: it measures the write path of a
// file-backed index under simulated page latency, sweeping the group-commit
// size. At group size 1 (the baseline, and the pre-group default) every
// insert or delete publishes its own epoch — a data-page flush, dirty node
// write-backs and a metadata write per operation, each charged the page
// latency. Grouping amortizes all of that across the group: one durable
// boundary per G operations, at most one shadow relocation per node per
// group, and data-record tombstones batched into one read-modify-write per
// data page per epoch. The trade-off is durability granularity — a crash
// loses at most the open group's tail, never a committed prefix.
//
// Each row also measures the writer with concurrent snapshot readers (the
// group's epoch publishes atomically, so readers never see a partial
// group), and then verifies the background reclaimer drains every retired
// page and pending tombstone while the writer idles — no explicit Flush or
// Reclaim, just the reclaimer's ticks.

// WritePathRow is one group-size sample of the write-path sweep.
type WritePathRow struct {
	// GroupSize is Config.GroupCommitOps for this row; 1 is the per-op
	// commit baseline.
	GroupSize int
	// Ops is how many mutations (inserts + deletes) the timed solo phase
	// performed.
	Ops int
	// OpsPerSec is solo writer throughput (no concurrent readers).
	OpsPerSec float64
	// Speedup is OpsPerSec relative to the GroupSize = 1 baseline.
	Speedup float64
	// OpsPerSecUnderReaders is writer throughput while snapshot readers
	// query concurrently.
	OpsPerSecUnderReaders float64
	// ReaderQPS is the readers' aggregate query throughput during that
	// same window.
	ReaderQPS float64
	// PendingAfterIdle is the garbage (pages + tombstones + epochs) still
	// pending after the idle-drain window — 0 when the background
	// reclaimer kept up, which is the acceptance condition.
	PendingAfterIdle int
	// GC is the epoch collector's health report at the end of the row.
	GC uncertain.GCInfo
}

// writePathSoloOps is the mutation count of the timed solo phase (plus one
// delete per four inserts; see writePathOps).
const writePathSoloOps = 128

// writePathReaderN is how many concurrent snapshot readers phase B runs.
const writePathReaderN = 4

// writePathDrainWindow bounds how long the idle-drain phase waits for the
// background reclaimer to drain all pending garbage.
const writePathDrainWindow = 5 * time.Second

// WritePath sweeps the group-commit size over a file-backed ConcurrentTree
// loaded with the LB dataset: solo writer throughput, writer + snapshot
// readers, then the reclaimer idle-drain check. groupSizes defaults to
// {1, 8, 32}; a leading 1 is enforced since Speedup is relative to it.
func WritePath(cfg Config, groupSizes []int) ([]WritePathRow, error) {
	cfg = cfg.withDefaults()
	if len(groupSizes) == 0 {
		groupSizes = []int{1, 8, 32}
	}
	if groupSizes[0] != 1 {
		groupSizes = append([]int{1}, groupSizes...)
	}
	out := cfg.Out
	fprintf(out, "Write path: group commit sweep (LB, file-backed, page latency %v, reclaimer 1ms ticks)\n",
		cfg.IOLatency)

	objects, queries := mixedWorkload(cfg)
	dir, err := os.MkdirTemp("", "utree-writepath")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var rows []WritePathRow
	for _, g := range groupSizes {
		row, err := runWritePathRow(g, dir, cfg, objects, queries)
		if err != nil {
			return nil, fmt.Errorf("writepath group=%d: %w", g, err)
		}
		if len(rows) > 0 {
			row.Speedup = row.OpsPerSec / rows[0].OpsPerSec
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
		fprintf(out, "  group=%-3d %8.1f ops/s  %5.2fx  (with readers: %7.1f ops/s, %7.1f q/s; pending after idle %d; reclaimed %d pages, %d tombstones)\n",
			row.GroupSize, row.OpsPerSec, row.Speedup,
			row.OpsPerSecUnderReaders, row.ReaderQPS,
			row.PendingAfterIdle, row.GC.ReclaimedPages, row.GC.ReclaimedTombstones)
	}
	return rows, nil
}

// runWritePathRow measures one group size on a fresh file-backed tree.
func runWritePathRow(g int, dir string, cfg Config,
	objects map[int64]uncertain.PDF, queries []uncertain.RangeQuery) (WritePathRow, error) {
	row := WritePathRow{GroupSize: g}
	idx, err := uncertain.NewConcurrentTree(uncertain.Config{
		Dimensions:      dataset.LB.Dim(),
		ExactRefinement: true,
		Seed:            cfg.Seed,
		// A small PCR catalog keeps per-insert PCR precomputation (pure
		// CPU, identical at every group size) from drowning the page
		// latency this sweep measures: at the paper's m = 15 the catalog
		// integrations alone cost several ms per insert — more than the
		// entire amortized I/O of a grouped op.
		CatalogSize: 2,
		// A cache that covers the working set isolates the write path: what
		// remains latency-bound is exactly what grouping amortizes (the
		// per-epoch data flush, dirty node write-backs and metadata write),
		// not descent read misses every row pays identically.
		BufferPages:       256,
		Path:              filepath.Join(dir, fmt.Sprintf("wp-%d.utree", g)),
		GroupCommitOps:    g,
		ReclaimInterval:   time.Millisecond,
		ReclaimPageBudget: 64,
	})
	if err != nil {
		return row, err
	}
	closed := false
	defer func() {
		if !closed {
			idx.Close()
		}
	}()

	// Build at zero latency; arm the measured value afterwards.
	if err := idx.BulkLoad(objects); err != nil {
		return row, err
	}
	if err := idx.Flush(); err != nil {
		return row, err
	}
	if !ArmLatency(idx, cfg.IOLatency) {
		return row, fmt.Errorf("index %T does not support simulated latency", idx)
	}

	// Phase A: solo writer. The Flush inside the window seals the open
	// group's tail, so every row pays for full durability of every op.
	start := time.Now()
	ops, err := writePathOps(idx, 2_000_000, writePathSoloOps)
	if err != nil {
		return row, err
	}
	if err := idx.Flush(); err != nil {
		return row, err
	}
	elapsed := time.Since(start)
	row.Ops = ops
	row.OpsPerSec = float64(ops) / elapsed.Seconds()

	// Phase B: the same writer with concurrent snapshot readers. Group
	// epochs publish atomically, so readers only ever see committed group
	// boundaries.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var readerQueries atomic.Int64
	readerErrs := make([]error, writePathReaderN)
	for r := 0; r < writePathReaderN; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(i*writePathReaderN+r)%len(queries)]
				if _, _, err := idx.Search(context.Background(), q.Rect, q.Prob); err != nil {
					readerErrs[r] = err
					return
				}
				readerQueries.Add(1)
			}
		}(r)
	}
	startB := time.Now()
	opsB, err := writePathOps(idx, 3_000_000, writePathSoloOps/2)
	elapsedB := time.Since(startB)
	close(stop)
	wg.Wait()
	if err != nil {
		return row, err
	}
	if err := firstErr(readerErrs); err != nil {
		return row, fmt.Errorf("snapshot reader: %w", err)
	}
	row.OpsPerSecUnderReaders = float64(opsB) / elapsedB.Seconds()
	row.ReaderQPS = float64(readerQueries.Load()) / elapsedB.Seconds()

	// Idle drain: latency off, writer idle, no Flush and no explicit
	// Reclaim — pending garbage must drain through the background
	// reclaimer's ticks alone. The empty WriteBatch seals the open group's
	// tail as an epoch (its commit defers draining to the reclaimer);
	// without it the tail's retired pages would legitimately never drain.
	ArmLatency(idx, 0)
	if err := idx.WriteBatch(func(uncertain.BatchWriter) error { return nil }); err != nil {
		return row, err
	}
	deadline := time.Now().Add(writePathDrainWindow)
	for {
		info := idx.GCInfo()
		row.PendingAfterIdle = info.PendingPages + info.PendingTombstones + info.PendingEpochs
		if row.PendingAfterIdle == 0 || time.Now().After(deadline) {
			row.GC = info
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := idx.CheckInvariants(); err != nil {
		return row, fmt.Errorf("invariants after write-path row: %w", err)
	}
	closed = true
	return row, idx.Close()
}

// writePathOps is the writer stream of the sweep: insert a fresh object,
// delete every fourth — deletes feed the batched-tombstone path. Returns
// the mutation count performed.
func writePathOps(idx uncertain.Index, baseID int64, n int) (int, error) {
	rng := rand.New(rand.NewSource(baseID))
	ops := 0
	for i := 0; i < n; i++ {
		id := baseID + int64(i)
		center := uncertain.Pt(
			250+rng.Float64()*(dataset.Domain-500),
			250+rng.Float64()*(dataset.Domain-500))
		if err := idx.Insert(id, uncertain.UniformCircle(center, 250)); err != nil {
			return ops, err
		}
		ops++
		if i%4 == 3 {
			if err := idx.Delete(id); err != nil {
				return ops, err
			}
			ops++
		}
	}
	return ops, nil
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
