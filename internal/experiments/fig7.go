package experiments

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/updf"
)

// Fig7Row is one column group of Figure 7: Monte-Carlo accuracy and cost at
// a given sample count.
type Fig7Row struct {
	N1          int
	Err2D       float64 // workload relative error, 2D circle (r = 250)
	Err3D       float64 // workload relative error, 3D sphere (r = 125)
	CostPerComp time.Duration
}

// Fig7 reproduces Figure 7: the workload error of the monte-carlo
// evaluation (Equation 3) as a function of n1, and the time per probability
// computation. Queries have qs = 500 and intersect the uncertainty region
// to varying degrees, exactly as described in Section 6.1. The exact
// probabilities come from the quadrature oracles.
//
// n1Values defaults (nil) to 10^3..10^6; pass the paper's 10^4..10^8 for a
// full-scale run.
func Fig7(cfg Config, n1Values []int) ([]Fig7Row, error) {
	cfg = cfg.withDefaults()
	if len(n1Values) == 0 {
		n1Values = []int{1000, 10000, 100000, 1000000}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// One uncertainty region per dimensionality, paper parameters.
	obj2 := updf.NewUniformBall(geom.Point{5000, 5000}, 250)
	obj3 := updf.NewUniformBall(geom.Point{5000, 5000, 5000}, 125)

	// Queries: qs = 500 squares/cubes whose centers slide across the
	// region so intersections range from slivers to full containment.
	queries2 := overlapSweepQueries(rng, obj2.MBR(), 500, cfg.Queries)
	queries3 := overlapSweepQueries(rng, obj3.MBR(), 500, cfg.Queries)

	rows := make([]Fig7Row, 0, len(n1Values))
	for _, n1 := range n1Values {
		var row Fig7Row
		row.N1 = n1
		comps := 0
		var mcTime time.Duration
		row.Err2D = workloadError(obj2, queries2, n1, rng, &comps, &mcTime)
		row.Err3D = workloadError(obj3, queries3, n1, rng, &comps, &mcTime)
		row.CostPerComp = mcTime / time.Duration(comps)
		rows = append(rows, row)
	}

	out := cfg.Out
	fprintf(out, "Figure 7: cost of numerical (monte-carlo) evaluation\n")
	fprintf(out, "%12s %14s %14s %16s\n", "n1", "err 2D", "err 3D", "time/comp")
	for _, r := range rows {
		fprintf(out, "%12d %13.3f%% %13.3f%% %16v\n", r.N1, 100*r.Err2D, 100*r.Err3D, r.CostPerComp)
	}
	return rows, nil
}

// overlapSweepQueries builds query rectangles of side qs with centers
// spread over (and around) the region so overlap fractions vary.
func overlapSweepQueries(rng *rand.Rand, mbr geom.Rect, qs float64, count int) []geom.Rect {
	d := mbr.Dim()
	c := mbr.Center()
	span := mbr.Side(0) * 1.2
	qs = scaledQS(qs)
	out := make([]geom.Rect, 0, count)
	for i := 0; i < count; i++ {
		lo := make(geom.Point, d)
		hi := make(geom.Point, d)
		for k := 0; k < d; k++ {
			off := (rng.Float64() - 0.5) * span
			lo[k] = c[k] + off - qs/2
			hi[k] = lo[k] + qs
		}
		r := geom.Rect{Lo: lo, Hi: hi}
		if r.Intersects(mbr) {
			out = append(out, r)
		} else {
			i-- // only queries that actually intersect carry error signal
		}
	}
	return out
}

// workloadError computes the average relative error of monte-carlo
// estimates against the exact oracle, skipping near-zero true values (the
// paper's relative-error metric is undefined there).
func workloadError(p updf.PDF, queries []geom.Rect, n1 int, rng *rand.Rand, comps *int, mcTime *time.Duration) float64 {
	ex := p.(updf.ExactProber)
	var sum float64
	var n int
	for _, rq := range queries {
		act := ex.ExactProb(rq)
		if act < 1e-4 {
			continue
		}
		// Time only the monte-carlo evaluation — the cost the paper's
		// Fig. 7 annotates — not the quadrature oracle used for grading.
		start := time.Now()
		est := updf.MonteCarloProb(p, rq, n1, rng)
		*mcTime += time.Since(start)
		*comps++
		sum += math.Abs(act-est) / act
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Domain re-exports the dataset domain for callers printing axes.
const Domain = dataset.Domain
