package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/workload"
	"repro/uncertain"
)

// This experiment is not in the paper: it measures the sharded index under
// a mixed read/write load — the Fig. 9 workload (LB dataset, qs = 1500,
// pq = 0.6) queried serially while a steady writer stream inserts and
// deletes objects, over simulated page latency. A single ConcurrentTree
// pays the writer twice: every query's page stalls are serial, and the
// writer's exclusive lock (page stalls included) blocks every reader. The
// ShardedTree pays neither: one query overlaps its stalls across K shards,
// and a write locks only the shard owning the object. The per-shard buffer
// pool is the single tree's pool divided by K, so the comparison holds the
// total page-cache budget constant.
//
// On a single-core host the speedup comes entirely from overlapping the
// simulated I/O latency — which is the point: this models the paper's
// disk-resident setting (10 ms per page access), not CPU parallelism.

// ShardedRow is one shard-count sample of the mixed read/write sweep.
type ShardedRow struct {
	// Shards is the shard count; 1 is the single-ConcurrentTree baseline.
	Shards int
	// QPS is serial query throughput while the writer stream runs.
	QPS float64
	// Speedup is QPS relative to the Shards = 1 baseline.
	Speedup float64
	// WriteOps is how many writer operations (inserts + deletes) completed
	// during the measurement window.
	WriteOps int64
	// Stats is the merged query-cost total over the measured queries.
	Stats uncertain.Stats
}

// mixedTotalBufferPages is the page-cache budget split across shards.
const mixedTotalBufferPages = 64

// mixedWriterPause is the writer stream's think time between operations —
// a steady ingest, not a saturating writer hammering the lock.
const mixedWriterPause = 2 * time.Millisecond

// mixedPasses is how many times the measurement loop runs the workload.
const mixedPasses = 2

// ShardedMixed builds the LB dataset into a single ConcurrentTree and into
// ShardedTrees at each shard count, verifies the sharded indexes return
// byte-for-byte the baseline's results (sorted by ID; exact refinement),
// then measures serial query throughput under the writer stream at each
// shard count.
func ShardedMixed(cfg Config, shardCounts []int) ([]ShardedRow, error) {
	cfg = cfg.withDefaults()
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4}
	}
	if shardCounts[0] != 1 {
		shardCounts = append([]int{1}, shardCounts...)
	}
	out := cfg.Out
	fprintf(out, "Sharded scatter-gather under mixed read/write: Fig. 9 workload (LB, qs=1500, pq=0.6), %d queries, page latency %v\n",
		cfg.Queries, cfg.IOLatency)

	objects, queries := mixedWorkload(cfg)

	var rows []ShardedRow
	var baseline [][]uncertain.Result // sorted by ID, captured at Shards = 1
	for _, k := range shardCounts {
		idx, err := buildMixedIndex(k, 0, cfg, objects)
		if err != nil {
			return nil, err
		}
		row, results, err := runMixedRow(k, cfg, idx, queries)
		closeErr := idx.Close()
		if err != nil {
			return nil, err
		}
		if closeErr != nil {
			return nil, closeErr
		}
		if k == 1 {
			baseline = results
		} else if err := compareToBaseline(baseline, results, k); err != nil {
			return nil, err
		}
		if len(rows) > 0 {
			row.Speedup = row.QPS / rows[0].QPS
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
		label := fmt.Sprintf("shards=%d", k)
		if k == 1 {
			label = "single  "
		}
		measured := mixedPasses * len(queries)
		if per := mixedBufferPagesPerShard(k); per*k != mixedTotalBufferPages {
			fprintf(out, "  note: %d shards × %d-page floor = %d cached pages, above the %d-page budget\n",
				k, per, per*k, mixedTotalBufferPages)
		}
		fprintf(out, "  %s %8.1f q/s  %5.2fx  (writer ops %d, io/q=%.1f, validated %d/%d)\n",
			label, row.QPS, row.Speedup, row.WriteOps,
			float64(row.Stats.NodeAccesses)/float64(measured),
			row.Stats.Validated, row.Stats.Results)
	}
	return rows, nil
}

// mixedWorkload generates the LB objects and the Fig. 9 query workload
// shared by the sweep rows.
func mixedWorkload(cfg Config) (map[int64]uncertain.PDF, []uncertain.RangeQuery) {
	objs := dataset.Generate(dataset.Config{Name: dataset.LB, Scale: cfg.Scale, Seed: cfg.Seed})
	objects := make(map[int64]uncertain.PDF, len(objs))
	for _, o := range objs {
		objects[o.ID] = o.PDF
	}
	w := workload.New(workload.Config{
		QS: scaledQS(1500), PQ: 0.6, Count: cfg.Queries,
		Seed: cfg.Seed, Domain: dataset.Domain, Centers: centersOf(objs),
	})
	queries := make([]uncertain.RangeQuery, len(w.Queries))
	for i, q := range w.Queries {
		queries[i] = uncertain.RangeQuery{Rect: q.Rect, Prob: q.Prob}
	}
	return objects, queries
}

// BuildShardedFixture loads the LB dataset into a ShardedTree (a single
// ConcurrentTree at shards = 1) with the sweep's divided page-cache
// budget, and returns the Fig. 9 workload queries — the root benchmarks'
// counterpart of BuildParallelFixture. The caller arms the measurement
// latency via ArmLatency.
func BuildShardedFixture(cfg Config, shards int) (uncertain.Index, []uncertain.RangeQuery, error) {
	cfg = cfg.withDefaults()
	objects, queries := mixedWorkload(cfg)
	idx, err := buildMixedIndex(shards, 0, cfg, objects)
	if err != nil {
		return nil, nil, err
	}
	return idx, queries, nil
}

// latencyArmer is the build-then-measure tooling hook the concrete index
// types keep now that the Index interface no longer carries the latency
// mutator: experiments build at zero latency, then arm the measured value.
type latencyArmer interface {
	SetSimulatedPageLatency(time.Duration)
}

// ArmLatency re-arms the simulated per-page storage latency on an index
// built by this package and reports whether the index actually supports
// the hook. Callers must treat false as an error when d > 0: measuring a
// "latency-bound" workload with the latency silently disarmed would
// report CPU-bound throughput as if it were I/O-overlapped.
func ArmLatency(idx uncertain.Index, d time.Duration) bool {
	a, ok := idx.(latencyArmer)
	if ok {
		a.SetSimulatedPageLatency(d)
	}
	return ok
}

// buildMixedIndex constructs the index under test: a ConcurrentTree at
// k = 1, a ShardedTree otherwise, bulk-loaded with the dataset; prefetch
// arms the index-wide intra-query fan-out (per shard when k > 1). The
// page-cache budget is divided across shards so every configuration caches
// the same total number of pages.
func buildMixedIndex(k, prefetch int, cfg Config, objects map[int64]uncertain.PDF) (uncertain.Index, error) {
	ucfg := uncertain.Config{
		Dimensions:      dataset.LB.Dim(),
		ExactRefinement: true, // deterministic probabilities → exact equivalence
		Seed:            cfg.Seed,
		BufferPages:     mixedBufferPagesPerShard(k),
		PrefetchWorkers: prefetch,
	}
	var idx uncertain.Index
	var err error
	if k == 1 {
		idx, err = uncertain.NewConcurrentTree(ucfg)
	} else {
		idx, err = uncertain.NewShardedTree(k, ucfg)
	}
	if err != nil {
		return nil, err
	}
	if err := idx.BulkLoad(objects); err != nil {
		idx.Close()
		return nil, err
	}
	// Write back build-time dirty pages so measured evictions are clean.
	if err := idx.Flush(); err != nil {
		idx.Close()
		return nil, err
	}
	return idx, nil
}

// mixedBufferPagesPerShard divides the cache budget across shards, with a
// floor of 8 pages so tiny shards stay functional; past 8 shards the floor
// exceeds the budget and ShardedMixed prints a disclosure note.
func mixedBufferPagesPerShard(k int) int {
	per := mixedTotalBufferPages / k
	if per < 8 {
		per = 8
	}
	return per
}

// runMixedRow measures one configuration: capture the query results at
// zero latency (for the equivalence check), then arm the latency, start
// the writer stream, run the queries serially, stop the writer, and check
// invariants after the mixed sequence.
func runMixedRow(k int, cfg Config, idx uncertain.Index, queries []uncertain.RangeQuery) (ShardedRow, [][]uncertain.Result, error) {
	row := ShardedRow{Shards: k}

	// Result capture doubles as the cache warm-up pass.
	results := make([][]uncertain.Result, len(queries))
	for i, q := range queries {
		res, _, err := idx.Search(context.Background(), q.Rect, q.Prob)
		if err != nil {
			return row, nil, err
		}
		results[i] = sortedByID(res)
	}

	if !ArmLatency(idx, cfg.IOLatency) {
		return row, nil, fmt.Errorf("index %T does not support simulated latency", idx)
	}
	writer := startWriterStream(idx, int64(1_000_000*(k+1)))

	start := time.Now()
	for p := 0; p < mixedPasses; p++ {
		for _, q := range queries {
			_, st, err := idx.Search(context.Background(), q.Rect, q.Prob)
			if err != nil {
				writer.stopAndWait()
				return row, nil, err
			}
			row.Stats.Add(st)
		}
	}
	elapsed := time.Since(start)

	row.WriteOps = writer.stopAndWait()
	if writer.err != nil {
		return row, nil, writer.err
	}
	row.QPS = float64(mixedPasses*len(queries)) / elapsed.Seconds()

	// The index must be structurally sound after interleaving scatter
	// queries with the writer stream (latency disarmed: the check walks
	// every page).
	ArmLatency(idx, 0)
	if err := idx.CheckInvariants(); err != nil {
		return row, nil, fmt.Errorf("invariants after mixed load at %d shards: %w", k, err)
	}
	return row, results, nil
}

// compareToBaseline demands exact equality — IDs, probabilities, validated
// flags — between a configuration's results and the baseline
// configuration's (value is the configuration knob, for the error text:
// shard count, prefetch fan-out).
func compareToBaseline(baseline, got [][]uncertain.Result, value int) error {
	for i := range baseline {
		if len(baseline[i]) != len(got[i]) {
			return fmt.Errorf("query %d at setting %d: %d results, baseline %d",
				i, value, len(got[i]), len(baseline[i]))
		}
		for j := range baseline[i] {
			if baseline[i][j] != got[i][j] {
				return fmt.Errorf("query %d result %d at setting %d: %+v, baseline %+v",
					i, j, value, got[i][j], baseline[i][j])
			}
		}
	}
	return nil
}

func sortedByID(res []uncertain.Result) []uncertain.Result {
	out := make([]uncertain.Result, len(res))
	copy(out, res)
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// writerStream is a steady background mutation load: insert a fresh
// object, delete every fourth, pause, repeat.
type writerStream struct {
	stop chan struct{}
	done chan struct{}
	ops  int64
	err  error
}

func startWriterStream(idx uncertain.Index, baseID int64) *writerStream {
	ws := &writerStream{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(ws.done)
		rng := rand.New(rand.NewSource(baseID))
		for id := baseID; ; id++ {
			select {
			case <-ws.stop:
				return
			default:
			}
			center := uncertain.Pt(
				250+rng.Float64()*(dataset.Domain-500),
				250+rng.Float64()*(dataset.Domain-500))
			if err := idx.Insert(id, uncertain.UniformCircle(center, 250)); err != nil {
				ws.err = err
				return
			}
			ws.ops++
			if id%4 == 0 {
				if err := idx.Delete(id); err != nil {
					ws.err = err
					return
				}
				ws.ops++
			}
			time.Sleep(mixedWriterPause)
		}
	}()
	return ws
}

// stopAndWait signals the writer to finish and returns its completed ops.
func (ws *writerStream) stopAndWait() int64 {
	close(ws.stop)
	<-ws.done
	return ws.ops
}
