package experiments

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pagefile"
)

// Table1Row is one dataset row of Table 1 (index sizes in bytes).
type Table1Row struct {
	Dataset    dataset.Name
	UPCRBytes  int64
	UTreeBytes int64
	// Fanouts explain the size gap (Section 6.3's discussion).
	UTreeLeafFanout, UTreeInnerFanout int
	UPCRLeafFanout, UPCRInnerFanout   int
}

// Table1 reproduces Table 1: the space consumption of U-PCR (m = 9/9/10)
// versus the U-tree (m = 15) on the three datasets. The paper's absolute
// numbers (e.g. 11.9M vs 5.0M on LB) scale with the dataset; the invariant
// is the ratio ≈ 2.4–2.8× driven by fanout.
func Table1(cfg Config) ([]Table1Row, error) {
	cfg = cfg.withDefaults()
	var rows []Table1Row
	out := cfg.Out
	fprintf(out, "Table 1: size comparison (bytes, index pages only)\n")
	fprintf(out, "%10s %14s %14s %8s\n", "dataset", "U-PCR", "U-tree", "ratio")
	for _, name := range dataset.All() {
		var row Table1Row
		row.Dataset = name
		for _, kind := range []core.Kind{core.UPCR, core.UTree} {
			t, _, err := buildTree(name, kind, paperCatalog(name, kind), cfg)
			if err != nil {
				return nil, err
			}
			pages, err := t.IndexPages()
			if err != nil {
				return nil, err
			}
			bytes := int64(pages) * pagefile.PageSize
			if kind == core.UPCR {
				row.UPCRBytes = bytes
				row.UPCRLeafFanout, row.UPCRInnerFanout = t.Fanout()
			} else {
				row.UTreeBytes = bytes
				row.UTreeLeafFanout, row.UTreeInnerFanout = t.Fanout()
			}
		}
		rows = append(rows, row)
		fprintf(out, "%10s %14d %14d %8.2f\n",
			name, row.UPCRBytes, row.UTreeBytes,
			float64(row.UPCRBytes)/float64(row.UTreeBytes))
	}
	return rows, nil
}
