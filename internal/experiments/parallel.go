package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/workload"
	"repro/uncertain"
)

// This experiment is not in the paper: it measures the batch query engine's
// throughput scaling — the Fig. 9 workload (LB dataset, qs = 1500, pq =
// 0.6) pushed through uncertain.QueryEngine at increasing worker counts,
// against the serial Search loop as baseline. The index runs over simulated
// disk latency (Config.IOLatency; the paper's era model charges 10 ms per
// page access), which is where fan-out pays off: workers overlap each
// other's page stalls, so throughput scales even when cores don't.

// ParallelRow is one worker-count sample of the throughput sweep.
type ParallelRow struct {
	// Workers is the fan-out; 0 marks the serial Search baseline row.
	Workers int
	// QPS is queries per second of wall time.
	QPS float64
	// Speedup is QPS relative to the serial baseline.
	Speedup float64
	// Stats carries the merged batch metrics of the measured pass,
	// including Cancelled (queries stopped by Config.QueryTimeout) and
	// BudgetExceeded (stopped by Config.QueryPageBudget).
	Stats uncertain.BatchStats
}

// queryOptions builds the per-query option set the Config asks for.
func queryOptions(cfg Config) []uncertain.QueryOption {
	var opts []uncertain.QueryOption
	if cfg.QueryLimit > 0 {
		opts = append(opts, uncertain.WithLimit(cfg.QueryLimit))
	}
	if cfg.QueryPageBudget > 0 {
		opts = append(opts, uncertain.WithPageBudget(cfg.QueryPageBudget))
	}
	if cfg.QueryMCSamples > 0 {
		opts = append(opts, uncertain.WithMonteCarloSamples(cfg.QueryMCSamples))
	}
	return opts
}

// ParallelBatch builds the Fig. 9 index once, then runs the same workload
// serially and through the batch engine at each worker count.
func ParallelBatch(cfg Config, workers []int) ([]ParallelRow, error) {
	cfg = cfg.withDefaults()
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	out := cfg.Out
	fprintf(out, "Parallel batch engine: Fig. 9 workload (LB, qs=1500, pq=0.6), %d queries, page latency %v\n",
		cfg.Queries, cfg.IOLatency)

	ct, queries, err := BuildParallelFixture(cfg)
	if err != nil {
		return nil, err
	}
	defer ct.Close()
	ct.SetSimulatedPageLatency(cfg.IOLatency)
	ctx := context.Background()
	opts := queryOptions(cfg)

	// Serial baseline: the plain Search loop every other experiment uses
	// (no per-query options — the baseline is the untuned query).
	warm := func() error { // one pass to fill the page cache fairly for all rows
		for _, q := range queries {
			if _, _, err := ct.Search(ctx, q.Rect, q.Prob); err != nil {
				return err
			}
		}
		return nil
	}
	if err := warm(); err != nil {
		return nil, err
	}
	start := time.Now()
	if err := warm(); err != nil {
		return nil, err
	}
	serialSec := time.Since(start).Seconds()
	baseQPS := float64(len(queries)) / serialSec
	rows := []ParallelRow{{Workers: 0, QPS: baseQPS, Speedup: 1}}
	fprintf(out, "  serial      %8.1f q/s\n", baseQPS)

	for _, w := range workers {
		eng := uncertain.NewQueryEngine(ct, uncertain.EngineOptions{
			Workers:      w,
			QueryTimeout: cfg.QueryTimeout,
		})
		if _, _, err := eng.SearchBatch(ctx, queries, opts...); err != nil { // warm pass
			return nil, err
		}
		_, stats, err := eng.SearchBatch(ctx, queries, opts...)
		if err != nil {
			return nil, err
		}
		row := ParallelRow{
			Workers: w,
			QPS:     stats.QueriesPerSec,
			Speedup: stats.QueriesPerSec / baseQPS,
			Stats:   stats,
		}
		rows = append(rows, row)
		fprintf(out, "  workers=%-3d %8.1f q/s  %5.2fx  (io/q=%.1f probs/q=%.1f val=%.0f%% cache=%.0f%%)\n",
			w, row.QPS, row.Speedup, stats.MeanNodeAccesses, stats.MeanProbComputations,
			stats.ValidatedPct, 100*stats.CacheHitRate)
		if stats.Cancelled > 0 || stats.BudgetExceeded > 0 {
			fprintf(out, "              %d cancelled (timeout %v), %d budget-exceeded (budget %d pages)\n",
				stats.Cancelled, cfg.QueryTimeout, stats.BudgetExceeded, cfg.QueryPageBudget)
		}
	}
	return rows, nil
}

// BuildParallelFixture loads the LB dataset into a ConcurrentTree and builds
// the Fig. 9 mid-point workload as engine queries.
func BuildParallelFixture(cfg Config) (*uncertain.ConcurrentTree, []uncertain.RangeQuery, error) {
	objs := dataset.Generate(dataset.Config{Name: dataset.LB, Scale: cfg.Scale, Seed: cfg.Seed})
	ct, err := uncertain.NewConcurrentTree(uncertain.Config{
		Dimensions:        dataset.LB.Dim(),
		MonteCarloSamples: cfg.MCSamples,
		Seed:              cfg.Seed,
		BufferPages:       64, // smaller than the index: some queries miss
		// Load at zero latency; the caller arms the measurement latency
		// afterwards via SetSimulatedPageLatency.
	})
	if err != nil {
		return nil, nil, err
	}
	for _, o := range objs {
		if err := ct.Insert(o.ID, o.PDF); err != nil {
			ct.Close()
			return nil, nil, fmt.Errorf("loading %s: %w", dataset.LB, err)
		}
	}
	// Write back build-time dirty pages: measured batches must evict clean
	// frames only, or early queries serialize on victim write-backs.
	if err := ct.Flush(); err != nil {
		ct.Close()
		return nil, nil, err
	}
	w := workload.New(workload.Config{
		QS: scaledQS(1500), PQ: 0.6, Count: cfg.Queries,
		Seed: cfg.Seed, Domain: dataset.Domain, Centers: centersOf(objs),
	})
	queries := make([]uncertain.RangeQuery, len(w.Queries))
	for i, q := range w.Queries {
		queries[i] = uncertain.RangeQuery{Rect: q.Rect, Prob: q.Prob}
	}
	return ct, queries, nil
}
