package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/uncertain"
)

// This experiment is not in the paper: it measures intra-query I/O
// pipelining — the third parallelism layer after the batch engine (PR 1,
// across queries) and shards (PR 2, across partitions). The Fig. 9
// workload (LB dataset, qs = 1500, pq = 0.6) is queried *serially* against
// one ConcurrentTree over simulated page latency, sweeping the prefetch
// fan-out: at 0 every page read is a sequential stall (the paper's serial
// cost model); at w a single query may overlap up to w of the independent
// fetches its own traversal already knows it needs (a level's surviving
// children, the refinement data pages). Each configuration is measured
// both alone and under a steady insert/delete writer stream, and every
// pipelined run must return byte-for-byte the serial configuration's
// results — the prefetcher changes wall-clock only, never answers.

// PipelineRow is one prefetch-worker sample of the sweep.
type PipelineRow struct {
	// Workers is the intra-query prefetch fan-out; 0 is the serial
	// baseline.
	Workers int
	// QPS is serial-loop query throughput with no concurrent writer.
	QPS float64
	// Speedup is QPS relative to the Workers = 0 baseline.
	Speedup float64
	// WriterQPS and WriterSpeedup repeat the measurement with a live
	// insert/delete stream contending for the tree's writer lock.
	WriterQPS     float64
	WriterSpeedup float64
	// WriteOps is how many writer operations completed during the writer
	// window.
	WriteOps int64
	// Stats is the merged query-cost total over the no-writer measured
	// passes, including the prefetch counters.
	Stats uncertain.Stats
}

// PipelineSweep builds the LB dataset into a ConcurrentTree (the same
// fixture shape as the sharded experiment's single-tree baseline: 64
// buffer pages, exact refinement) and measures serial query throughput at
// each prefetch fan-out, alone and under the writer stream. The index is
// rebuilt per row so every configuration faces an identical tree.
func PipelineSweep(cfg Config, workers []int) ([]PipelineRow, error) {
	cfg = cfg.withDefaults()
	if len(workers) == 0 {
		workers = []int{2, 4, 8}
	}
	if workers[0] != 0 {
		workers = append([]int{0}, workers...)
	}
	out := cfg.Out
	fprintf(out, "Intra-query I/O pipelining: Fig. 9 workload (LB, qs=1500, pq=0.6), %d queries serial, page latency %v, %d buffer pages\n",
		cfg.Queries, cfg.IOLatency, mixedTotalBufferPages)

	objects, queries := mixedWorkload(cfg)

	var rows []PipelineRow
	var baseline [][]uncertain.Result // captured at Workers = 0
	for _, w := range workers {
		// The index is rebuilt per row anyway, so the fan-out is an
		// open-time knob (Config.PrefetchWorkers) — the removed
		// SetPrefetchWorkers mutator is not missed.
		idx, err := buildMixedIndex(1, w, cfg, objects)
		if err != nil {
			return nil, err
		}
		row, results, err := runPipelineRow(w, cfg, idx, queries)
		closeErr := idx.Close()
		if err != nil {
			return nil, err
		}
		if closeErr != nil {
			return nil, closeErr
		}
		if w == 0 {
			baseline = results
		} else if err := compareToBaseline(baseline, results, w); err != nil {
			return nil, fmt.Errorf("pipelined results diverge at prefetch=%d: %w", w, err)
		}
		if len(rows) > 0 {
			row.Speedup = row.QPS / rows[0].QPS
			row.WriterSpeedup = row.WriterQPS / rows[0].WriterQPS
		} else {
			row.Speedup = 1
			row.WriterSpeedup = 1
		}
		rows = append(rows, row)
		label := fmt.Sprintf("prefetch=%d", w)
		if w == 0 {
			label = "serial    "
		}
		measured := mixedPasses * len(queries)
		fprintf(out, "  %s %8.1f q/s %5.2fx | writer %8.1f q/s %5.2fx (ops %d) | io/q=%.1f prefetch issued=%d wasted=%d\n",
			label, row.QPS, row.Speedup, row.WriterQPS, row.WriterSpeedup, row.WriteOps,
			float64(row.Stats.NodeAccesses)/float64(measured),
			row.Stats.PrefetchIssued, row.Stats.PrefetchWasted)
	}
	return rows, nil
}

// runPipelineRow measures one fan-out: capture results at zero latency
// (equivalence check + cache warm-up), then measure the serial query loop
// alone, then again under the writer stream, and verify invariants after
// the mixed phase.
func runPipelineRow(w int, cfg Config, idx uncertain.Index, queries []uncertain.RangeQuery) (PipelineRow, [][]uncertain.Result, error) {
	row := PipelineRow{Workers: w}

	results := make([][]uncertain.Result, len(queries))
	for i, q := range queries {
		res, _, err := idx.Search(context.Background(), q.Rect, q.Prob)
		if err != nil {
			return row, nil, err
		}
		results[i] = sortedByID(res)
	}

	if !ArmLatency(idx, cfg.IOLatency) {
		return row, nil, fmt.Errorf("index %T does not support simulated latency", idx)
	}
	start := time.Now()
	for p := 0; p < mixedPasses; p++ {
		for _, q := range queries {
			_, st, err := idx.Search(context.Background(), q.Rect, q.Prob)
			if err != nil {
				return row, nil, err
			}
			row.Stats.Add(st)
		}
	}
	row.QPS = float64(mixedPasses*len(queries)) / time.Since(start).Seconds()

	writer := startWriterStream(idx, int64(2_000_000*(w+1)))
	start = time.Now()
	for p := 0; p < mixedPasses; p++ {
		for _, q := range queries {
			if _, _, err := idx.Search(context.Background(), q.Rect, q.Prob); err != nil {
				writer.stopAndWait()
				return row, nil, err
			}
		}
	}
	elapsed := time.Since(start)
	row.WriteOps = writer.stopAndWait()
	if writer.err != nil {
		return row, nil, writer.err
	}
	row.WriterQPS = float64(mixedPasses*len(queries)) / elapsed.Seconds()

	ArmLatency(idx, 0)
	if err := idx.CheckInvariants(); err != nil {
		return row, nil, fmt.Errorf("invariants after writer stream at prefetch=%d: %w", w, err)
	}
	return row, results, nil
}
