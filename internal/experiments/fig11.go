package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Fig11Row is one dataset's update-cost breakdown (Figure 11).
type Fig11Row struct {
	Dataset dataset.Name
	// Per-insertion averages during index construction.
	InsertIOCostSec float64 // era model over logical page accesses
	InsertCPUSec    float64 // measured CPU (simplex + PCR computation)
	InsertWallPerOp time.Duration
	// Per-deletion averages while draining the index.
	DeleteIOCostSec float64
	DeleteCPUSec    float64
	DeleteWallPerOp time.Duration
}

// Fig11 reproduces Figure 11: the amortized insertion cost (I/O + CPU
// breakdown; CPU is dominated by the simplex CFB fitting and PCR
// computation) during construction of the U-tree on each dataset, then the
// amortized deletion cost while removing every object. The paper's shape:
// insertions cost ≈ tens of ms dominated by CPU; deletions are several
// times pricier and I/O-dominated.
func Fig11(cfg Config) ([]Fig11Row, error) {
	cfg = cfg.withDefaults()
	var rows []Fig11Row
	out := cfg.Out
	fprintf(out, "Figure 11: update overhead (U-tree, per operation)\n")
	fprintf(out, "%10s %14s %14s %16s %14s %14s %16s\n",
		"dataset", "ins I/O(s)", "ins CPU(s)", "ins wall", "del I/O(s)", "del CPU(s)", "del wall")
	for _, name := range dataset.All() {
		t, objs, err := buildTree(name, core.UTree, 15, cfg)
		if err != nil {
			return nil, err
		}
		var row Fig11Row
		row.Dataset = name
		ins := t.InsertStats()
		row.InsertIOCostSec = float64(ins.PageReads+ins.PageWrites) / float64(ins.Ops) * IOCostSec
		row.InsertCPUSec = ins.CPUTime.Seconds() / float64(ins.Ops)
		row.InsertWallPerOp = ins.CPUTime / time.Duration(ins.Ops)

		for _, o := range objs {
			if err := t.Delete(o.ID, o.PDF.MBR()); err != nil {
				return nil, err
			}
		}
		del := t.DeleteStats()
		row.DeleteIOCostSec = float64(del.PageReads+del.PageWrites) / float64(del.Ops) * IOCostSec
		row.DeleteCPUSec = del.CPUTime.Seconds() / float64(del.Ops)
		row.DeleteWallPerOp = del.CPUTime / time.Duration(del.Ops)
		rows = append(rows, row)
		fprintf(out, "%10s %14.4f %14.4f %16v %14.4f %14.4f %16v\n",
			name, row.InsertIOCostSec, row.InsertCPUSec, row.InsertWallPerOp,
			row.DeleteIOCostSec, row.DeleteCPUSec, row.DeleteWallPerOp)
	}
	return rows, nil
}
