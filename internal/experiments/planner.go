package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/workload"
	"repro/uncertain"
)

// This experiment is not in the paper: it measures the cost-model-driven
// adaptive planner on a spatially-sharded index under a skewed Fig. 9-style
// workload (LB dataset, query centers confined to a hotspot slab of the
// domain). The baseline fans every query out to all K shards; the planner
// prunes shards whose committed root box cannot intersect the query rect
// and arms the Bernecker-style probability-bound filter inside the
// surviving shards. Results must stay byte-identical — the planner only
// skips work that provably cannot contribute.
//
// Costs are reported two ways. EraCostSec applies the paper's serial-disk
// model (10 ms/page, 1.3 ms/probability) to the measured access counts —
// on 2005 hardware every root page of a pruned shard is a seek that never
// happens, which is where the headline speedup comes from. QPS is modern
// in-memory wall clock, where the saving is the pruned shards' CPU.
//
// The run closes with two planner-feedback checks: prediction accuracy
// (the calibrated cost model's predicted I/O vs measured accesses) and
// admission control (a tiny in-flight I/O ceiling must shed some of a
// concurrent batch, and an idle engine must still admit).

// PlannerRow is one mode of the adaptive-planning comparison.
type PlannerRow struct {
	// Mode is "fanout" (full scatter-gather baseline) or "planner"
	// (shard pruning + probability filter + adaptive prefetch).
	Mode string
	// QPS is serial wall-clock query throughput (CPU-bound, warm cache).
	QPS float64
	// Speedup is QPS relative to the fanout baseline.
	Speedup float64
	// EraCostSec is the era cost model's per-query cost.
	EraCostSec float64
	// EraSpeedup is the baseline's EraCostSec over this mode's.
	EraSpeedup float64
	// NodeAccesses is the average tree pages visited per query.
	NodeAccesses float64
	// ShardsPruned / ProbFilterPruned total the planner's pruning
	// decisions over the measured queries (zero for the baseline).
	ShardsPruned     int
	ProbFilterPruned int
	// Identical reports whether this mode's results matched the baseline
	// byte-for-byte on every query (trivially true for the baseline).
	Identical bool
	// PredictedIO / MeasuredIO are the planner's lifetime sums of
	// predicted and measured node accesses; CalibrationFactor is the
	// fitted correction. Zero for the baseline.
	PredictedIO       float64
	MeasuredIO        float64
	CalibrationFactor float64
	// AdmissionRejected is how many queries the overload phase shed
	// (planner row only; the baseline has no prediction to admit on).
	AdmissionRejected int
}

// plannerShards is the spatial shard count: enough that a hotspot query
// overlaps one or two slabs and the rest of the fan-out is pure waste.
const plannerShards = 8

// plannerPasses is how many times the measurement loop runs the workload
// (the first full pass doubles as calibration warm-up).
const plannerPasses = 3

// PlannerAdaptive builds the LB dataset into two spatially-sharded indexes
// — full fan-out and adaptive — runs the skewed workload against both,
// verifies byte-identity, and measures the pruning, calibration and
// admission behaviour.
func PlannerAdaptive(cfg Config) ([]PlannerRow, error) {
	cfg = cfg.withDefaults()
	out := cfg.Out
	objects, queries := plannerWorkload(cfg)
	fprintf(out, "Adaptive planning on %d spatial shards: skewed Fig. 9 workload (LB, hotspot slab), %d queries × %d passes\n",
		plannerShards, len(queries), plannerPasses)

	domain := uncertain.Box(uncertain.Pt(0, 0), uncertain.Pt(dataset.Domain, dataset.Domain))
	build := func(adaptive bool) (*uncertain.ShardedTree, error) {
		st, err := uncertain.NewSpatialShardedTree(plannerShards, uncertain.Config{
			Dimensions:       dataset.LB.Dim(),
			ExactRefinement:  true, // deterministic probabilities → exact equivalence
			Seed:             cfg.Seed,
			BufferPages:      mixedBufferPagesPerShard(plannerShards),
			AdaptivePlanning: adaptive,
			ProbFilter:       adaptive,
		}, domain)
		if err != nil {
			return nil, err
		}
		if err := st.BulkLoad(objects); err != nil {
			st.Close()
			return nil, err
		}
		return st, nil
	}

	baselineIdx, err := build(false)
	if err != nil {
		return nil, err
	}
	defer baselineIdx.Close()
	plannerIdx, err := build(true)
	if err != nil {
		return nil, err
	}
	defer plannerIdx.Close()

	var rows []PlannerRow
	var baseline [][]uncertain.Result
	for _, mode := range []struct {
		name string
		idx  *uncertain.ShardedTree
	}{{"fanout", baselineIdx}, {"planner", plannerIdx}} {
		row := PlannerRow{Mode: mode.name, Identical: true}

		// Warm-up pass: fills caches, captures results for the identity
		// check, and (planner mode) feeds the calibration window.
		results := make([][]uncertain.Result, len(queries))
		for i, q := range queries {
			res, _, err := mode.idx.Search(context.Background(), q.Rect, q.Prob)
			if err != nil {
				return nil, err
			}
			results[i] = res // sharded results arrive sorted by ID
		}
		if mode.name == "fanout" {
			baseline = results
		} else if err := compareToBaseline(baseline, results, len(rows)); err != nil {
			row.Identical = false
			return rows, fmt.Errorf("planner results diverged from full fan-out: %w", err)
		}

		var agg uncertain.Stats
		start := time.Now()
		for p := 0; p < plannerPasses; p++ {
			for _, q := range queries {
				_, st, err := mode.idx.Search(context.Background(), q.Rect, q.Prob)
				if err != nil {
					return nil, err
				}
				agg.Add(st)
			}
		}
		elapsed := time.Since(start)

		n := float64(plannerPasses * len(queries))
		row.QPS = n / elapsed.Seconds()
		row.NodeAccesses = float64(agg.NodeAccesses) / n
		row.ShardsPruned = agg.ShardsPruned
		row.ProbFilterPruned = agg.ProbFilterPruned
		row.EraCostSec = (float64(agg.NodeAccesses+agg.RefinementIOs)*IOCostSec +
			float64(agg.ProbComputations)*ProbCostSec) / n
		if len(rows) > 0 {
			row.Speedup = row.QPS / rows[0].QPS
			row.EraSpeedup = rows[0].EraCostSec / row.EraCostSec
		} else {
			row.Speedup, row.EraSpeedup = 1, 1
		}
		if mode.name == "planner" {
			info := mode.idx.PlannerInfo()
			row.PredictedIO = info.PredictedAccesses
			row.MeasuredIO = info.MeasuredAccesses
			row.CalibrationFactor = info.CalibrationFactor
			rej, err := plannerAdmissionPhase(mode.idx, queries)
			if err != nil {
				return nil, err
			}
			row.AdmissionRejected = rej
		}
		rows = append(rows, row)

		fprintf(out, "  %-8s %8.1f q/s  %5.2fx   era %7.4f s/q  %5.2fx   io/q=%5.1f  shards-pruned=%d  prob-pruned=%d\n",
			row.Mode, row.QPS, row.Speedup, row.EraCostSec, row.EraSpeedup,
			row.NodeAccesses, row.ShardsPruned, row.ProbFilterPruned)
		if mode.name == "planner" {
			ratio := 0.0
			if row.MeasuredIO > 0 {
				ratio = row.PredictedIO / row.MeasuredIO
			}
			fprintf(out, "           predicted/measured io %.0f/%.0f (ratio %.2f, calib %.3f)  admission shed %d/%d\n",
				row.PredictedIO, row.MeasuredIO, ratio, row.CalibrationFactor,
				row.AdmissionRejected, len(queries))
		}
	}
	return rows, nil
}

// plannerWorkload generates the LB objects and the skewed query mix: the
// Fig. 9 parameters (qs = 1500, pq = 0.6) with every query center drawn
// from objects inside the hotspot slab (the first spatial shard's strip
// plus its neighbor), interleaved with narrow high-threshold probes of the
// same hotspot objects — the class the probability-bound filter prunes.
func plannerWorkload(cfg Config) (map[int64]uncertain.PDF, []uncertain.RangeQuery) {
	objs := dataset.Generate(dataset.Config{Name: dataset.LB, Scale: cfg.Scale, Seed: cfg.Seed})
	objects := make(map[int64]uncertain.PDF, len(objs))
	for _, o := range objs {
		objects[o.ID] = o.PDF
	}

	// Hotspot: objects whose center falls in the leftmost quarter of the
	// domain — queries landing there overlap at most 2-3 of the 8 slabs.
	hotspot := objs[:0:0]
	for _, o := range objs {
		if o.PDF.Center()[0] < dataset.Domain/4 {
			hotspot = append(hotspot, o)
		}
	}
	if len(hotspot) == 0 {
		hotspot = objs // degenerate scale: fall back to the full set
	}
	w := workload.New(workload.Config{
		QS: scaledQS(1500), PQ: 0.6, Count: cfg.Queries,
		Seed: cfg.Seed, Domain: dataset.Domain, Centers: centersOf(hotspot),
	})
	queries := make([]uncertain.RangeQuery, 0, 2*len(w.Queries))
	rng := rand.New(rand.NewSource(cfg.Seed + 101))
	for _, q := range w.Queries {
		queries = append(queries, uncertain.RangeQuery{Rect: q.Rect, Prob: q.Prob})
		// Narrow probe over a hotspot object's core: a rect far smaller
		// than the pdf support with a threshold above the mass it can
		// capture — prunable only by the probability-bound filter.
		c := hotspot[rng.Intn(len(hotspot))].PDF.Center()
		h := 10 + rng.Float64()*40
		queries = append(queries, uncertain.RangeQuery{
			Rect: uncertain.Box(uncertain.Pt(c[0]-h, c[1]-h), uncertain.Pt(c[0]+h, c[1]+h)),
			Prob: 0.3 + rng.Float64()*0.5,
		})
	}
	return objects, queries
}

// plannerAdmissionPhase runs the workload through the batch engine twice:
// once with a tiny in-flight I/O ceiling (must shed part of the concurrent
// batch without failing it) and once as single queries (an idle engine
// must admit whatever the prediction says).
func plannerAdmissionPhase(idx *uncertain.ShardedTree, queries []uncertain.RangeQuery) (int, error) {
	// Ceiling sized to roughly two average queries: with four workers the
	// batch genuinely overloads it, but a healthy fraction still runs.
	ceiling := 1.0
	if p, ok := idx.PredictSearchIO(queries[0].Rect, queries[0].Prob); ok && p > 0 {
		ceiling = 2 * p
	}
	eng := uncertain.NewQueryEngine(idx, uncertain.EngineOptions{
		Workers:       4,
		MaxInFlightIO: ceiling,
	})
	_, stats, err := eng.SearchBatch(context.Background(), queries)
	if err != nil {
		return 0, err
	}
	if stats.AdmissionRejected == 0 {
		return 0, errors.New("planner admission: tiny ceiling shed nothing from a concurrent batch")
	}
	if stats.AdmissionRejected >= len(queries) {
		return 0, fmt.Errorf("planner admission: every query shed (%d) — idle-admit rule broken",
			stats.AdmissionRejected)
	}
	rejected := stats.AdmissionRejected
	// Idle engine: one query at a time always runs, whatever its cost.
	_, st1, err := eng.SearchBatch(context.Background(), queries[:1])
	if err != nil {
		return 0, err
	}
	if st1.AdmissionRejected != 0 {
		return 0, errors.New("planner admission: idle engine shed its only query")
	}
	return rejected, nil
}
