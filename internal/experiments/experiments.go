// Package experiments regenerates every table and figure of the U-tree
// paper's evaluation (Section 6). Each experiment prints the same rows or
// series the paper reports and returns structured results so tests and
// benchmarks can assert the qualitative shapes (who wins, by what factor,
// where the crossovers are).
//
// Hardware-era metrics: the paper ran on an 800 MHz Pentium III with
// seek-bound disks. We report the paper's own hardware-independent counts
// (node accesses, probability computations, validated fractions) and
// translate them into "total cost" seconds with an era cost model — 10 ms
// per page access and 1.3 ms per appearance-probability computation (the
// paper's own Fig. 7 measurement at n1 = 10^6). Wall-clock on modern
// hardware is reported alongside. See DESIGN.md substitutions.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/workload"
)

// Era cost model constants.
const (
	// IOCostSec is the 2005-era cost of one page access (seek-dominated).
	IOCostSec = 0.010
	// ProbCostSec is the paper's measured cost of one Monte-Carlo
	// appearance-probability computation at n1 = 10^6 (Fig. 7).
	ProbCostSec = 0.0013
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale shrinks datasets (1.0 = paper scale; default 0.02 keeps a full
	// suite under a minute).
	Scale float64
	// Queries per workload (paper: 100; default 40 at small scale).
	Queries int
	// MCSamples for refinement (default 2000 for experiments; Fig. 7
	// sweeps its own values).
	MCSamples int
	Seed      int64
	// IOLatency is the simulated per-page storage latency for the parallel
	// batch experiment; zero genuinely disables it (pure CPU). cmd/ubench
	// defaults its -iolat flag to 2 ms; the era model's 10 ms is -iolat 10.
	IOLatency time.Duration
	// Out receives the printed tables (nil = io.Discard).
	Out io.Writer

	// Per-query knobs for the parallel batch experiment, surfacing the
	// context-first query API (cmd/ubench -query-timeout, -limit,
	// -page-budget, -mc-samples). Zero disables each. QueryTimeout bounds
	// each measured query's wall time (timed-out queries are counted, not
	// fatal); QueryLimit is a top-N early cut; QueryPageBudget caps
	// physical page fetches per query; QueryMCSamples overrides the
	// refinement sample count per query.
	QueryTimeout    time.Duration
	QueryLimit      int
	QueryPageBudget int
	QueryMCSamples  int
}

// WithDefaults returns c with unset fields filled in with the experiment
// defaults — what an experiment actually runs with (e.g. for reporting the
// effective workload parameters).
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.02
	}
	if c.Queries == 0 {
		c.Queries = 40
	}
	if c.MCSamples == 0 {
		c.MCSamples = 2000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// WorkloadMetrics aggregates the paper's per-workload cost metrics
// (averages over the workload's queries).
type WorkloadMetrics struct {
	NodeAccesses float64 // avg tree node accesses per query (Fig 9/10 col 1)
	ProbComps    float64 // avg probability computations (col 2)
	ValidatedPct float64 // % of qualifying objects reported without refinement
	RefineIOs    float64 // avg data-page fetches
	Results      float64 // avg result cardinality
	TotalCostSec float64 // era cost model (col 3)
	WallTime     time.Duration
}

// runWorkload executes a workload against an index and aggregates metrics.
func runWorkload(t *core.Tree, w workload.Workload) (WorkloadMetrics, error) {
	var m WorkloadMetrics
	start := time.Now()
	var validated, results int
	for _, q := range w.Queries {
		_, stats, err := t.RangeQuery(q)
		if err != nil {
			return m, err
		}
		m.NodeAccesses += float64(stats.NodeAccesses)
		m.ProbComps += float64(stats.ProbComputations)
		m.RefineIOs += float64(stats.RefinementIOs)
		m.Results += float64(stats.Results)
		validated += stats.Validated
		results += stats.Results
	}
	n := float64(len(w.Queries))
	m.NodeAccesses /= n
	m.ProbComps /= n
	m.RefineIOs /= n
	m.Results /= n
	if results > 0 {
		m.ValidatedPct = 100 * float64(validated) / float64(results)
	}
	m.TotalCostSec = (m.NodeAccesses+m.RefineIOs)*IOCostSec + m.ProbComps*ProbCostSec
	m.WallTime = time.Since(start) / time.Duration(len(w.Queries))
	return m, nil
}

// buildTree constructs an index of the given kind over a dataset.
func buildTree(name dataset.Name, kind core.Kind, catalogSize int, cfg Config) (*core.Tree, []core.Object, error) {
	objs := dataset.Generate(dataset.Config{Name: name, Scale: cfg.Scale, Seed: cfg.Seed})
	t, err := core.New(core.Options{
		Dim:         name.Dim(),
		Kind:        kind,
		CatalogSize: catalogSize,
		MCSamples:   cfg.MCSamples,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, o := range objs {
		if err := t.Insert(o); err != nil {
			return nil, nil, fmt.Errorf("building %s/%v: %w", name, kind, err)
		}
	}
	return t, objs, nil
}

// centersOf extracts dataset points for workload generation.
func centersOf(objs []core.Object) []geom.Point {
	pts := make([]geom.Point, len(objs))
	for i, o := range objs {
		pts[i] = o.PDF.Center()
	}
	return pts
}

// paperCatalog returns the paper's tuned U-PCR catalog size for a dataset
// (Fig. 8: m = 9 for LB and CA, m = 10 for Aircraft) and the U-tree's
// m = 15.
func paperCatalog(name dataset.Name, kind core.Kind) int {
	if kind == core.UTree {
		return 15
	}
	if name == dataset.Aircraft {
		return 10
	}
	return 9
}

// scaledQS converts a paper query extent to the current dataset scale.
// Query selectivity in the paper is tied to object density; at dataset
// scale s the object count shrinks by s, so keeping the *absolute* extents
// preserves the geometry of regions (radius 250 etc.) while the result
// cardinalities shrink proportionally — which is what we want: shapes, not
// absolute numbers.
func scaledQS(qs float64) float64 { return qs }

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
