package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{Scale: 0.004, Queries: 10, MCSamples: 500, Seed: 7}
}

func TestFig7ErrorShrinksWithSamples(t *testing.T) {
	rows, err := Fig7(tiny(), []int{200, 20000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].Err2D >= rows[0].Err2D {
		t.Fatalf("2D error did not shrink: %g → %g", rows[0].Err2D, rows[1].Err2D)
	}
	if rows[1].Err3D >= rows[0].Err3D {
		t.Fatalf("3D error did not shrink: %g → %g", rows[0].Err3D, rows[1].Err3D)
	}
	if rows[1].CostPerComp <= rows[0].CostPerComp {
		t.Fatalf("cost per computation did not grow: %v → %v", rows[0].CostPerComp, rows[1].CostPerComp)
	}
}

func TestTable1Shapes(t *testing.T) {
	rows, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.UTreeBytes >= r.UPCRBytes {
			t.Errorf("%s: U-tree %d ≥ U-PCR %d bytes", r.Dataset, r.UTreeBytes, r.UPCRBytes)
		}
		ratio := float64(r.UPCRBytes) / float64(r.UTreeBytes)
		if ratio < 1.4 {
			t.Errorf("%s: size ratio %.2f below expected band (paper ≈ 2.4–2.8)", r.Dataset, ratio)
		}
		if r.UTreeLeafFanout <= r.UPCRLeafFanout {
			t.Errorf("%s: U-tree leaf fanout %d not above U-PCR %d",
				r.Dataset, r.UTreeLeafFanout, r.UPCRLeafFanout)
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	points, err := Fig9(tiny(), []float64{500, 2500})
	if err != nil {
		t.Fatal(err)
	}
	// Index points by (dataset, kind, x).
	get := func(d dataset.Name, k core.Kind, x float64) WorkloadMetrics {
		for _, p := range points {
			if p.Dataset == d && p.Kind == k && p.X == x {
				return p.Metrics
			}
		}
		t.Fatalf("missing point %s/%v/%g", d, k, x)
		return WorkloadMetrics{}
	}
	for _, d := range dataset.All() {
		// Node accesses grow with qs for both structures.
		for _, k := range []core.Kind{core.UTree, core.UPCR} {
			if get(d, k, 2500).NodeAccesses <= get(d, k, 500).NodeAccesses {
				t.Errorf("%s/%v: node accesses did not grow with qs", d, k)
			}
		}
		// The U-tree's I/O advantage (the paper's headline).
		if get(d, core.UTree, 2500).NodeAccesses >= get(d, core.UPCR, 2500).NodeAccesses {
			t.Errorf("%s: U-tree node accesses not below U-PCR at qs=2500", d)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	points, err := Fig10(tiny(), []float64{0.3, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[core.Kind]float64{}
	for _, p := range points {
		byKind[p.Kind] += p.Metrics.NodeAccesses
	}
	if byKind[core.UTree] >= byKind[core.UPCR] {
		t.Errorf("U-tree total node accesses %.1f ≥ U-PCR %.1f", byKind[core.UTree], byKind[core.UPCR])
	}
}

func TestFig11Shapes(t *testing.T) {
	rows, err := Fig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.InsertCPUSec <= 0 || r.InsertIOCostSec <= 0 {
			t.Errorf("%s: empty insert stats: %+v", r.Dataset, r)
		}
		if r.DeleteIOCostSec <= 0 {
			t.Errorf("%s: empty delete stats", r.Dataset)
		}
		// The paper's shape: deletion I/O exceeds insertion I/O.
		if r.DeleteIOCostSec <= r.InsertIOCostSec {
			t.Errorf("%s: delete I/O %.4f not above insert I/O %.4f",
				r.Dataset, r.DeleteIOCostSec, r.InsertIOCostSec)
		}
	}
}

func TestFig8CatalogCurve(t *testing.T) {
	points, err := Fig8(Config{Scale: 0.004, Queries: 8, MCSamples: 500, Seed: 7},
		[]int{3, 9}, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 { // 3 datasets × 2 catalog sizes
		t.Fatalf("%d points", len(points))
	}
	for _, p := range points {
		if p.Cost.NodeAccesses <= 0 {
			t.Errorf("%s m=%d: zero node accesses", p.Dataset, p.M)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	cfg := Config{Scale: 0.003, Queries: 6, MCSamples: 300, Seed: 7}
	if _, err := AblationSplit(cfg); err != nil {
		t.Fatal(err)
	}
	pts, err := AblationReinsert(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("reinsert ablation points: %d", len(pts))
	}
	if _, err := AblationCatalog(cfg, []int{5, 15}); err != nil {
		t.Fatal(err)
	}
	cfbPts, err := AblationCFB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// CFB entries (U-tree) must yield fewer pages at equal catalog.
	if cfbPts[0].BuildWritesPerOp >= cfbPts[1].BuildWritesPerOp {
		t.Errorf("CFB pages %.0f ≥ PCR pages %.0f at equal m",
			cfbPts[0].BuildWritesPerOp, cfbPts[1].BuildWritesPerOp)
	}
}

// TestShardedMixedShapes runs the mixed read/write sweep at test scale:
// the experiment itself enforces shard/single result equivalence and
// post-stress invariants, so this asserts the rows and that sharding did
// not lose throughput outright.
func TestShardedMixedShapes(t *testing.T) {
	cfg := tiny()
	cfg.IOLatency = 500 * time.Microsecond // enough to make stalls overlappable, cheap enough for CI
	rows, err := ShardedMixed(cfg, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Shards != 1 || rows[1].Shards != 2 {
		t.Fatalf("unexpected shard counts: %+v", rows)
	}
	for _, r := range rows {
		if r.QPS <= 0 {
			t.Errorf("%d shards: QPS %g", r.Shards, r.QPS)
		}
		if r.WriteOps == 0 {
			t.Errorf("%d shards: writer stream did nothing", r.Shards)
		}
		if r.Stats.NodeAccesses == 0 {
			t.Errorf("%d shards: stats not merged: %+v", r.Shards, r.Stats)
		}
	}
}

// TestPlannerAdaptiveShapes runs the adaptive-planning comparison at CI
// scale: the experiment itself enforces byte-identity with the full
// fan-out and the admission-control properties; this asserts the planner
// actually pruned, sped the workload up, and predicted its own I/O within
// the calibration budget. Scale 0.02 (not tiny()) so every spatial shard
// crosses the planner's minimum tree size and builds a cost model.
func TestPlannerAdaptiveShapes(t *testing.T) {
	rows, err := PlannerAdaptive(Config{Scale: 0.02, Queries: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Mode != "fanout" || rows[1].Mode != "planner" {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	base, plan := rows[0], rows[1]
	if !base.Identical || !plan.Identical {
		t.Fatal("identity flag not set (the experiment should have failed outright)")
	}
	if plan.ShardsPruned == 0 {
		t.Error("no shard pruned on the hotspot workload")
	}
	if plan.ProbFilterPruned == 0 {
		t.Error("probability filter never pruned a narrow probe")
	}
	if plan.NodeAccesses >= base.NodeAccesses {
		t.Errorf("planner io/q %.1f not below fan-out %.1f", plan.NodeAccesses, base.NodeAccesses)
	}
	if plan.EraSpeedup < 1.2 {
		t.Errorf("era-model speedup %.2fx below 1.2x", plan.EraSpeedup)
	}
	if plan.MeasuredIO <= 0 {
		t.Fatal("planner recorded no measured accesses")
	}
	ratio := plan.PredictedIO / plan.MeasuredIO
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("prediction ratio %.2f outside the 2x budget", ratio)
	}
	if plan.AdmissionRejected == 0 {
		t.Error("overload phase shed nothing")
	}
}

func TestCPUPathShapes(t *testing.T) {
	rows, err := CPUPath(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].NodeCache || !rows[1].NodeCache {
		t.Fatalf("unexpected rows: %+v", rows)
	}
	for _, r := range rows {
		if r.QPS <= 0 || r.AllocsPerQuery <= 0 {
			t.Errorf("cache=%v: QPS %g, allocs/q %g", r.NodeCache, r.QPS, r.AllocsPerQuery)
		}
	}
	if rows[0].HitRate != 0 {
		t.Errorf("cache-off row reports hit rate %g", rows[0].HitRate)
	}
	if rows[1].HitRate < 0.9 {
		t.Errorf("warm cache-on row hit rate %g, want ≈1", rows[1].HitRate)
	}
	if rows[1].AllocsPerQuery >= rows[0].AllocsPerQuery {
		t.Errorf("cache on did not cut allocations: %g vs %g",
			rows[1].AllocsPerQuery, rows[0].AllocsPerQuery)
	}
}

func TestPrintedOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Out = &buf
	if _, err := Table1(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "LB", "CA", "Aircraft", "ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
