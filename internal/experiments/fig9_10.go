package experiments

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// SweepPoint is one (dataset, structure, x) sample of Figures 9 and 10:
// the three cost metrics at one sweep position.
type SweepPoint struct {
	Dataset dataset.Name
	Kind    core.Kind
	X       float64 // qs (Fig 9) or pq (Fig 10)
	Metrics WorkloadMetrics
}

// Fig9 reproduces Figure 9: query cost versus the search-region size qs ∈
// {500..2500} at pq = 0.6, for both structures on all three datasets. Each
// dataset yields three panels (node accesses, probability computations +
// validated %, total cost).
func Fig9(cfg Config, qsValues []float64) ([]SweepPoint, error) {
	cfg = cfg.withDefaults()
	if len(qsValues) == 0 {
		qsValues = []float64{500, 1000, 1500, 2000, 2500}
	}
	return sweep(cfg, "Figure 9: effect of query size qs (pq = 0.6)", qsValues, nil)
}

// Fig10 reproduces Figure 10: query cost versus the probability threshold
// pq ∈ {0.3..0.9} at qs = 1500.
func Fig10(cfg Config, pqValues []float64) ([]SweepPoint, error) {
	cfg = cfg.withDefaults()
	if len(pqValues) == 0 {
		pqValues = []float64{0.3, 0.45, 0.6, 0.75, 0.9}
	}
	return sweep(cfg, "Figure 10: effect of probability threshold pq (qs = 1500)", nil, pqValues)
}

// sweep runs the shared Fig 9/10 machinery: exactly one of qsValues /
// pqValues is non-nil; the other parameter is fixed to the paper's value.
func sweep(cfg Config, title string, qsValues []float64, pqValues []float64) ([]SweepPoint, error) {
	var points []SweepPoint
	out := cfg.Out
	fprintf(out, "%s\n", title)
	for _, name := range dataset.All() {
		objs := dataset.Generate(dataset.Config{Name: name, Scale: cfg.Scale, Seed: cfg.Seed})
		centers := centersOf(objs)
		for _, kind := range []core.Kind{core.UTree, core.UPCR} {
			t, _, err := buildTree(name, kind, paperCatalog(name, kind), cfg)
			if err != nil {
				return nil, err
			}
			xs := qsValues
			if xs == nil {
				xs = pqValues
			}
			fprintf(out, "%10s %-7v", name, kind)
			for wi, x := range xs {
				qs, pq := x, 0.6
				if qsValues == nil {
					qs, pq = 1500, x
				}
				w := workload.New(workload.Config{
					QS: scaledQS(qs), PQ: pq, Count: cfg.Queries,
					Seed: cfg.Seed + int64(wi), Domain: dataset.Domain, Centers: centers,
				})
				m, err := runWorkload(t, w)
				if err != nil {
					return nil, err
				}
				points = append(points, SweepPoint{Dataset: name, Kind: kind, X: x, Metrics: m})
				fprintf(out, "  [x=%g io=%.1f probs=%.1f val=%.0f%% cost=%.3fs]",
					x, m.NodeAccesses, m.ProbComps, m.ValidatedPct, m.TotalCostSec)
			}
			fprintf(out, "\n")
		}
	}
	return points, nil
}
