package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/uncertain"
)

// This experiment is not in the paper: it measures the query hot path as a
// CPU problem. With zero simulated latency and a warm buffer pool there is
// no I/O to hide, so throughput is set by per-query CPU work — of which, on
// a cached tree, decode allocations were the dominant share. The sweep runs
// the Fig. 9 workload (LB dataset, qs = 1500, pq = 0.6) serially, fully
// warmed, with the decoded-node cache off and on, reporting q/s, allocs per
// query (runtime Mallocs delta over the measured pass) and the node-cache
// hit rate. Results are checked identical between the rows — the cache and
// the pooled scratch may only change where time and memory go, never what a
// query answers.

// CPUPathRow is one cache configuration of the CPU hot-path sweep.
type CPUPathRow struct {
	// NodeCache reports whether the decoded-node cache was enabled.
	NodeCache bool
	// QPS is serial warm-cache query throughput.
	QPS float64
	// Speedup is QPS relative to the cache-off baseline row.
	Speedup float64
	// AllocsPerQuery is the heap allocation count per query over the
	// measured pass (runtime.MemStats.Mallocs delta / queries).
	AllocsPerQuery float64
	// BytesPerQuery is the allocated bytes per query over the measured
	// pass (runtime.MemStats.TotalAlloc delta / queries).
	BytesPerQuery float64
	// HitRate is the decoded-node-cache hit fraction over the measured
	// pass (0 when the cache is off).
	HitRate float64
	// Stats is the merged query-cost total over the measured queries.
	Stats uncertain.Stats
}

// cpupathPasses is how many times the measurement loop runs the workload.
const cpupathPasses = 4

// CPUPath measures the warm-cache serial query path with the decoded-node
// cache off and on: same index contents, same Fig. 9 workload, zero
// latency. The cache-on row must return byte-for-byte the baseline row's
// results (exact refinement).
func CPUPath(cfg Config) ([]CPUPathRow, error) {
	cfg = cfg.withDefaults()
	out := cfg.Out
	fprintf(out, "CPU hot path: Fig. 9 workload (LB, qs=1500, pq=0.6), %d queries, zero latency, warm cache\n",
		cfg.Queries)

	objects, queries := mixedWorkload(cfg)

	var rows []CPUPathRow
	var baseline [][]uncertain.Result
	for _, cached := range []bool{false, true} {
		nodeCacheEntries := -1 // off
		if cached {
			nodeCacheEntries = 0 // default size
		}
		ct, err := uncertain.NewConcurrentTree(uncertain.Config{
			Dimensions:       dataset.LB.Dim(),
			ExactRefinement:  true, // deterministic probabilities → exact equivalence
			Seed:             cfg.Seed,
			BufferPages:      mixedTotalBufferPages,
			NodeCacheEntries: nodeCacheEntries,
		})
		if err != nil {
			return nil, err
		}
		if err := ct.BulkLoad(objects); err != nil {
			ct.Close()
			return nil, err
		}
		if err := ct.Flush(); err != nil {
			ct.Close()
			return nil, err
		}
		row, results, err := runCPUPathRow(cached, ct, queries)
		closeErr := ct.Close()
		if err != nil {
			return nil, err
		}
		if closeErr != nil {
			return nil, closeErr
		}
		if !cached {
			baseline = results
			row.Speedup = 1
		} else {
			if err := compareToBaseline(baseline, results, 1); err != nil {
				return nil, fmt.Errorf("node cache changed results: %w", err)
			}
			row.Speedup = row.QPS / rows[0].QPS
		}
		rows = append(rows, row)
		label := "cache off"
		if cached {
			label = "cache on "
		}
		fprintf(out, "  %s %8.1f q/s  %5.2fx  %8.1f allocs/q  %9.0f B/q  hit rate %5.1f%%\n",
			label, row.QPS, row.Speedup, row.AllocsPerQuery, row.BytesPerQuery, 100*row.HitRate)
	}
	return rows, nil
}

// runCPUPathRow measures one configuration: a capture pass that doubles as
// the warm-up (pages and decoded nodes hot), then the timed pass bracketed
// by MemStats reads and the node-cache counters.
func runCPUPathRow(cached bool, ct *uncertain.ConcurrentTree, queries []uncertain.RangeQuery) (CPUPathRow, [][]uncertain.Result, error) {
	row := CPUPathRow{NodeCache: cached}

	// Result capture doubles as the warm-up pass.
	results := make([][]uncertain.Result, len(queries))
	for i, q := range queries {
		res, _, err := ct.Search(context.Background(), q.Rect, q.Prob)
		if err != nil {
			return row, nil, err
		}
		results[i] = sortedByID(res)
	}

	ops := cpupathPasses * len(queries)
	h0, m0 := ct.NodeCacheStats()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for p := 0; p < cpupathPasses; p++ {
		for _, q := range queries {
			_, st, err := ct.Search(context.Background(), q.Rect, q.Prob)
			if err != nil {
				return row, nil, err
			}
			row.Stats.Add(st)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	h1, m1 := ct.NodeCacheStats()

	row.QPS = float64(ops) / elapsed.Seconds()
	row.AllocsPerQuery = float64(ms1.Mallocs-ms0.Mallocs) / float64(ops)
	row.BytesPerQuery = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(ops)
	if lookups := (h1 - h0) + (m1 - m0); lookups > 0 {
		row.HitRate = float64(h1-h0) / float64(lookups)
	}
	return row, results, nil
}
