package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// AblationPoint is one configuration's cost in an ablation study.
type AblationPoint struct {
	Label   string
	Dataset dataset.Name
	Metrics WorkloadMetrics
	// BuildWritesPerOp supports update-cost ablations.
	BuildWritesPerOp float64
}

// ablationWorkloads runs the standard (qs=1500, pq=0.6) workload against a
// configured tree.
func ablationWorkloads(t *core.Tree, objs []core.Object, cfg Config) (WorkloadMetrics, error) {
	w := workload.New(workload.Config{
		QS: scaledQS(1500), PQ: 0.6, Count: cfg.Queries,
		Seed: cfg.Seed, Domain: dataset.Domain, Centers: centersOf(objs),
	})
	return runWorkload(t, w)
}

// ablationBuild constructs a tree over the LB dataset with the given
// options applied on top of the defaults.
func ablationBuild(cfg Config, name dataset.Name, mutate func(*core.Options)) (*core.Tree, []core.Object, error) {
	objs := dataset.Generate(dataset.Config{Name: name, Scale: cfg.Scale, Seed: cfg.Seed})
	opt := core.Options{
		Dim:         name.Dim(),
		Kind:        core.UTree,
		CatalogSize: 15,
		MCSamples:   cfg.MCSamples,
		Seed:        cfg.Seed,
	}
	mutate(&opt)
	t, err := core.New(opt)
	if err != nil {
		return nil, nil, err
	}
	for _, o := range objs {
		if err := t.Insert(o); err != nil {
			return nil, nil, err
		}
	}
	return t, objs, nil
}

// AblationSplit compares the paper's median-value split against the naive
// p=0 split and the exhaustive summed split (DESIGN.md §7).
func AblationSplit(cfg Config) ([]AblationPoint, error) {
	cfg = cfg.withDefaults()
	out := cfg.Out
	fprintf(out, "Ablation: split strategy (U-tree, LB, qs=1500, pq=0.6)\n")
	variants := []struct {
		label string
		strat core.SplitStrategy
	}{
		{"median (paper)", core.SplitMedian},
		{"p=0 only", core.SplitAtZero},
		{"summed (ideal)", core.SplitSummed},
	}
	var points []AblationPoint
	for _, v := range variants {
		t, objs, err := ablationBuild(cfg, dataset.LB, func(o *core.Options) { o.SplitStrategy = v.strat })
		if err != nil {
			return nil, err
		}
		m, err := ablationWorkloads(t, objs, cfg)
		if err != nil {
			return nil, err
		}
		ins := t.InsertStats()
		points = append(points, AblationPoint{
			Label: v.label, Dataset: dataset.LB, Metrics: m,
			BuildWritesPerOp: float64(ins.PageWrites) / float64(ins.Ops),
		})
		fprintf(out, "%16s  io=%.1f probs=%.1f cost=%.3fs buildWrites/op=%.2f\n",
			v.label, m.NodeAccesses, m.ProbComps, m.TotalCostSec, points[len(points)-1].BuildWritesPerOp)
	}
	return points, nil
}

// AblationReinsert compares forced reinsertion on/off.
func AblationReinsert(cfg Config) ([]AblationPoint, error) {
	cfg = cfg.withDefaults()
	out := cfg.Out
	fprintf(out, "Ablation: forced reinsertion (U-tree, LB, qs=1500, pq=0.6)\n")
	var points []AblationPoint
	for _, disable := range []bool{false, true} {
		label := "reinsert on (paper)"
		if disable {
			label = "reinsert off"
		}
		t, objs, err := ablationBuild(cfg, dataset.LB, func(o *core.Options) { o.DisableReinsert = disable })
		if err != nil {
			return nil, err
		}
		m, err := ablationWorkloads(t, objs, cfg)
		if err != nil {
			return nil, err
		}
		ins := t.InsertStats()
		points = append(points, AblationPoint{
			Label: label, Dataset: dataset.LB, Metrics: m,
			BuildWritesPerOp: float64(ins.PageWrites) / float64(ins.Ops),
		})
		fprintf(out, "%20s  io=%.1f cost=%.3fs buildWrites/op=%.2f\n",
			label, m.NodeAccesses, m.TotalCostSec, points[len(points)-1].BuildWritesPerOp)
	}
	return points, nil
}

// AblationCatalog sweeps the U-tree catalog size: Section 6.2 argues that a
// larger U-tree catalog only hurts update cost (entry size is independent
// of m), so query cost should flatten while insert CPU rises.
func AblationCatalog(cfg Config, mValues []int) ([]AblationPoint, error) {
	cfg = cfg.withDefaults()
	if len(mValues) == 0 {
		mValues = []int{5, 10, 15, 20}
	}
	out := cfg.Out
	fprintf(out, "Ablation: U-tree catalog size (LB, qs=1500, pq=0.6)\n")
	var points []AblationPoint
	for _, m := range mValues {
		t, objs, err := ablationBuild(cfg, dataset.LB, func(o *core.Options) { o.CatalogSize = m })
		if err != nil {
			return nil, err
		}
		wm, err := ablationWorkloads(t, objs, cfg)
		if err != nil {
			return nil, err
		}
		ins := t.InsertStats()
		cpuPerOp := ins.CPUTime.Seconds() / float64(ins.Ops)
		points = append(points, AblationPoint{
			Label: fmt.Sprintf("m=%d", m), Dataset: dataset.LB, Metrics: wm,
			BuildWritesPerOp: cpuPerOp,
		})
		fprintf(out, "%8s  io=%.1f probs=%.1f cost=%.3fs insertCPU/op=%.4fs\n",
			points[len(points)-1].Label, wm.NodeAccesses, wm.ProbComps, wm.TotalCostSec, cpuPerOp)
	}
	return points, nil
}

// AblationCFB isolates the CFB representation: U-tree (CFB entries, m=9)
// versus U-PCR (PCR entries, m=9) on identical data — the fanout-versus-
// tightness trade of Section 4.3 with the catalog held fixed.
func AblationCFB(cfg Config) ([]AblationPoint, error) {
	cfg = cfg.withDefaults()
	out := cfg.Out
	fprintf(out, "Ablation: CFB vs PCR entries at equal catalog (m=9, LB, qs=1500, pq=0.6)\n")
	var points []AblationPoint
	for _, kind := range []core.Kind{core.UTree, core.UPCR} {
		t, objs, err := buildTree(dataset.LB, kind, 9, cfg)
		if err != nil {
			return nil, err
		}
		m, err := ablationWorkloads(t, objs, cfg)
		if err != nil {
			return nil, err
		}
		pages, err := t.IndexPages()
		if err != nil {
			return nil, err
		}
		points = append(points, AblationPoint{
			Label: kind.String(), Dataset: dataset.LB, Metrics: m,
			BuildWritesPerOp: float64(pages),
		})
		fprintf(out, "%8v  io=%.1f probs=%.1f cost=%.3fs pages=%d\n",
			kind, m.NodeAccesses, m.ProbComps, m.TotalCostSec, pages)
	}
	return points, nil
}
