package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/pagefile"
	"repro/uncertain"
)

// This experiment is not in the paper: it drives the storage fault-
// tolerance stack end to end — checksummed file store, retrying reads,
// quarantine containment, the background scrubber and degraded sharded
// reads — under chaos injection, and checks the three acceptance
// properties of the robustness work:
//
//  (a) transient faults are absorbed: a workload under ~1% injected
//      transient I/O faults completes with ZERO user-visible errors
//      (the retry layer re-drives every faulted operation);
//  (b) corruption is contained, never believed: under bit-flip injection
//      no query ever returns a wrong answer — every affected query fails
//      with a typed error (ErrChecksum / ErrBadPage) and the damaged
//      pages land in quarantine, while unaffected queries keep answering
//      exactly;
//  (c) fault tolerance is cheap: throughput under the 1% transient-fault
//      workload stays within 1.3x of the clean run.
//
// A fourth phase kills one shard of a ShardedTree outright and verifies
// WithAllowDegraded turns whole-query failures into partial answers
// carrying ErrDegraded — and that those partials are always a subset of
// the clean answers.
//
// Properties (a) and (b) are enforced here (the run fails if they do not
// hold); the throughput ratio (c) is reported in the row for the CI gate
// to assert, since it is the one timing-sensitive number.

// FaultPathRow is one phase of the fault-path run.
type FaultPathRow struct {
	// Phase is "clean", "transient", "bitflip" or "degraded".
	Phase string
	// Queries is how many range queries the phase ran.
	Queries int
	// QPS is the phase's query throughput (latency armed).
	QPS float64
	// SlowdownVsClean is cleanQPS / thisQPS (1.0 for the clean phase);
	// the transient phase's acceptance bound is ≤ 1.3.
	SlowdownVsClean float64
	// UserErrors counts errors that are NOT part of the fault-tolerance
	// contract (anything other than ErrChecksum / ErrBadPage /
	// ErrDegraded). Must be 0 in every phase.
	UserErrors int
	// TypedErrors counts queries that failed with ErrChecksum or
	// ErrBadPage — corruption surfaced as a typed refusal, not as data.
	TypedErrors int
	// DegradedQueries counts queries that returned partial results with
	// ErrDegraded.
	DegradedQueries int
	// WrongAnswers counts successful queries whose results differ from
	// the clean baseline (degraded partials count when they are not a
	// subset of the baseline). Must be 0 in every phase.
	WrongAnswers int
	// WriteOps is how many mutations the phase's writer stream performed
	// (transient phase only; all must succeed).
	WriteOps int
	// InjectedFaults is how many faults the chaos layer fired.
	InjectedFaults int64
	// Retries is the retry layer's re-drive count over the phase.
	Retries int64
	// Health is the index's storage-health report at the end of the
	// phase: quarantined pages, scrubber progress.
	Health uncertain.HealthInfo
}

// faultBufferPages keeps the page cache small enough that queries do
// real I/O — the fault machinery under test sits on the read path, and a
// fully-cached run would never exercise it. The decoded-node cache is
// disabled for the same reason.
const faultBufferPages = 16

// FaultPath runs the four-phase fault-tolerance check on the LB mixed
// workload. Phases (a)/(b) failing their acceptance property is an error;
// the returned rows carry the numbers for the CI throughput gate.
func FaultPath(cfg Config) ([]FaultPathRow, error) {
	cfg = cfg.withDefaults()
	out := cfg.Out
	fprintf(out, "Fault path: chaos injection vs the fault-tolerance stack (LB, file-backed, page latency %v)\n",
		cfg.IOLatency)

	objects, queries := mixedWorkload(cfg)
	dir, err := os.MkdirTemp("", "utree-faultpath")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var rows []FaultPathRow

	// Phase 1+2: clean baseline, then ~1% transient faults on every
	// operation kind, on identically-built trees. The clean phase's
	// results are the equivalence baseline for every later phase.
	clean, baseline, err := runCleanPhase(dir, cfg, objects, queries)
	if err != nil {
		return nil, fmt.Errorf("faultpath clean: %w", err)
	}
	rows = append(rows, clean)
	printFaultRow(out, clean)

	transient, err := runTransientPhase(dir, cfg, objects, queries, baseline, clean.QPS)
	if err != nil {
		return nil, fmt.Errorf("faultpath transient: %w", err)
	}
	rows = append(rows, transient)
	printFaultRow(out, transient)

	bitflip, err := runBitFlipPhase(dir, cfg, objects, queries, baseline, clean.QPS)
	if err != nil {
		return nil, fmt.Errorf("faultpath bitflip: %w", err)
	}
	rows = append(rows, bitflip)
	printFaultRow(out, bitflip)

	degraded, err := runDegradedPhase(cfg, objects, queries)
	if err != nil {
		return nil, fmt.Errorf("faultpath degraded: %w", err)
	}
	rows = append(rows, degraded)
	printFaultRow(out, degraded)

	return rows, nil
}

func printFaultRow(out io.Writer, r FaultPathRow) {
	fprintf(out, "  %-9s %7.1f q/s  %5.2fx  (injected %d, retries %d, typed %d, degraded %d, wrong %d, user errs %d, quarantined %d, scrubbed %d)\n",
		r.Phase, r.QPS, r.SlowdownVsClean, r.InjectedFaults, r.Retries,
		r.TypedErrors, r.DegradedQueries, r.WrongAnswers, r.UserErrors,
		r.Health.QuarantinedPages, r.Health.ScrubbedPages)
}

// buildFaultIndex constructs the phase's file-backed ConcurrentTree with
// a ChaosStore spliced under the latency/retry layers, bulk-loads it at
// zero latency, and arms the measurement latency. Rules are installed by
// the caller AFTER the build, so construction itself runs clean.
func buildFaultIndex(path string, cfg Config, objects map[int64]uncertain.PDF,
	scrub bool) (*uncertain.ConcurrentTree, *pagefile.ChaosStore, error) {
	var chaos *pagefile.ChaosStore
	ucfg := uncertain.Config{
		Dimensions:      dataset.LB.Dim(),
		ExactRefinement: true, // deterministic probabilities → exact equivalence
		Seed:            cfg.Seed,
		BufferPages:     faultBufferPages,
		// The decoded-node cache would serve repeat node reads without
		// touching storage, hiding the fault machinery under test.
		NodeCacheEntries: -1,
		Path:             path,
		// Generous retry budget with tight backoff: property (a) demands
		// zero user-visible errors, and 1%^6 per-op residual risk is zero
		// for this run length; property (c) demands the backoff not
		// dominate the 1%-inflated latency bill.
		RetryAttempts:  6,
		RetryBaseDelay: 100 * time.Microsecond,
		RetryMaxDelay:  time.Millisecond,
		WrapStore: func(s pagefile.Store) pagefile.Store {
			chaos = pagefile.NewChaosStore(s, cfg.Seed)
			return chaos
		},
	}
	if scrub {
		ucfg.ScrubInterval = 2 * time.Millisecond
		ucfg.ScrubPageBudget = 64
	}
	idx, err := uncertain.NewConcurrentTree(ucfg)
	if err != nil {
		return nil, nil, err
	}
	if err := idx.BulkLoad(objects); err != nil {
		idx.Close()
		return nil, nil, err
	}
	if err := idx.Flush(); err != nil {
		idx.Close()
		return nil, nil, err
	}
	if !ArmLatency(idx, cfg.IOLatency) {
		idx.Close()
		return nil, nil, fmt.Errorf("index %T does not support simulated latency", idx)
	}
	return idx, chaos, nil
}

// classifyFaultErr buckets a query error into the fault-tolerance
// taxonomy: corruption (typed), degraded partial, or a contract breach.
func classifyFaultErr(err error, row *FaultPathRow) {
	switch {
	case errors.Is(err, uncertain.ErrChecksum) || errors.Is(err, uncertain.ErrBadPage):
		row.TypedErrors++
	case errors.Is(err, uncertain.ErrDegraded):
		row.DegradedQueries++
	default:
		row.UserErrors++
	}
}

// runFaultQueries runs the workload once against idx, tallying outcomes
// into row. Successful queries are compared against baseline for exact
// equality; degraded partials are checked to be a subset of the baseline
// (any surplus object is a wrong answer). A nil baseline skips checking.
func runFaultQueries(idx uncertain.Index, queries []uncertain.RangeQuery,
	baseline [][]uncertain.Result, row *FaultPathRow, opts ...uncertain.QueryOption) [][]uncertain.Result {
	results := make([][]uncertain.Result, len(queries))
	start := time.Now()
	for i, q := range queries {
		res, _, err := idx.Search(context.Background(), q.Rect, q.Prob, opts...)
		row.Queries++
		sorted := sortedByID(res)
		results[i] = sorted
		switch {
		case err == nil:
			if baseline != nil && !equalResults(sorted, baseline[i]) {
				row.WrongAnswers++
			}
		case errors.Is(err, uncertain.ErrDegraded):
			row.DegradedQueries++
			if baseline != nil && !subsetOf(sorted, baseline[i]) {
				row.WrongAnswers++
			}
		default:
			classifyFaultErr(err, row)
		}
	}
	row.QPS = float64(len(queries)) / time.Since(start).Seconds()
	return results
}

// equalResults compares two ID-sorted result slices for exact equality.
func equalResults(a, b []uncertain.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Prob != b[i].Prob {
			return false
		}
	}
	return true
}

// subsetOf reports whether every result in sub also appears in super
// (both ID-sorted) with the same probability — the degraded-partial
// correctness condition: incomplete is allowed, invented is not.
func subsetOf(sub, super []uncertain.Result) bool {
	j := 0
	for _, r := range sub {
		for j < len(super) && super[j].ID < r.ID {
			j++
		}
		if j >= len(super) || super[j].ID != r.ID || super[j].Prob != r.Prob {
			return false
		}
		j++
	}
	return true
}

// runCleanPhase measures the no-fault baseline and captures the
// reference results every later phase is checked against.
func runCleanPhase(dir string, cfg Config, objects map[int64]uncertain.PDF,
	queries []uncertain.RangeQuery) (FaultPathRow, [][]uncertain.Result, error) {
	row := FaultPathRow{Phase: "clean", SlowdownVsClean: 1}
	idx, chaos, err := buildFaultIndex(filepath.Join(dir, "clean.utree"), cfg, objects, false)
	if err != nil {
		return row, nil, err
	}
	defer idx.Close()
	baseline := runFaultQueries(idx, queries, nil, &row)
	row.InjectedFaults = chaosTotal(chaos)
	row.Health = idx.Health()
	row.Retries = row.Health.Retries
	if row.UserErrors > 0 || row.TypedErrors > 0 || row.DegradedQueries > 0 {
		return row, nil, fmt.Errorf("clean run saw errors (user %d, typed %d, degraded %d)",
			row.UserErrors, row.TypedErrors, row.DegradedQueries)
	}
	return row, baseline, idx.Close()
}

// runTransientPhase re-runs the workload with ~1% transient faults on
// every operation, plus a writer stream exercising the write path's
// retries. Acceptance: zero user-visible errors, exact answers.
func runTransientPhase(dir string, cfg Config, objects map[int64]uncertain.PDF,
	queries []uncertain.RangeQuery, baseline [][]uncertain.Result, cleanQPS float64) (FaultPathRow, error) {
	row := FaultPathRow{Phase: "transient"}
	idx, chaos, err := buildFaultIndex(filepath.Join(dir, "transient.utree"), cfg, objects, false)
	if err != nil {
		return row, err
	}
	defer idx.Close()
	chaos.MustAddRule(pagefile.ChaosRule{Op: pagefile.OpAny, Fault: pagefile.FaultTransient, Prob: 0.01})

	runFaultQueries(idx, queries, baseline, &row)
	if cleanQPS > 0 {
		row.SlowdownVsClean = cleanQPS / row.QPS
	}

	// The write path retries too: inserts, deletes, group seals and
	// metadata writes all pass through the same faulted store.
	ops, err := writePathOps(idx, 4_000_000, 32)
	row.WriteOps = ops
	if err != nil {
		return row, fmt.Errorf("writer stream under transient faults: %w", err)
	}
	if err := idx.Flush(); err != nil {
		return row, fmt.Errorf("flush under transient faults: %w", err)
	}

	row.InjectedFaults = chaosTotal(chaos)
	row.Health = idx.Health()
	row.Retries = row.Health.Retries
	if row.UserErrors > 0 || row.TypedErrors > 0 || row.DegradedQueries > 0 || row.WrongAnswers > 0 {
		return row, fmt.Errorf("transient faults leaked to the user (user %d, typed %d, degraded %d, wrong %d; injected %d, retries %d)",
			row.UserErrors, row.TypedErrors, row.DegradedQueries, row.WrongAnswers,
			row.InjectedFaults, row.Retries)
	}
	if row.InjectedFaults > 0 && row.Retries == 0 {
		return row, fmt.Errorf("%d faults injected but the retry layer recorded none", row.InjectedFaults)
	}
	return row, idx.Close()
}

// runBitFlipPhase corrupts the medium under the checksummed store during
// reads. Acceptance: no wrong answers ever — only typed errors — and the
// damage lands in quarantine where the scrubber can report it.
func runBitFlipPhase(dir string, cfg Config, objects map[int64]uncertain.PDF,
	queries []uncertain.RangeQuery, baseline [][]uncertain.Result, cleanQPS float64) (FaultPathRow, error) {
	row := FaultPathRow{Phase: "bitflip"}
	idx, chaos, err := buildFaultIndex(filepath.Join(dir, "bitflip.utree"), cfg, objects, true)
	if err != nil {
		return row, err
	}
	defer idx.Close()
	chaos.MustAddRule(pagefile.ChaosRule{Op: pagefile.OpRead, Fault: pagefile.FaultBitFlip, Prob: 0.01, Bit: -1})

	runFaultQueries(idx, queries, baseline, &row)
	if cleanQPS > 0 {
		row.SlowdownVsClean = cleanQPS / row.QPS
	}

	// Give the background scrubber a few ticks to sweep the medium for
	// damage queries have not yet tripped over.
	time.Sleep(25 * time.Millisecond)

	row.InjectedFaults = chaosTotal(chaos)
	row.Health = idx.Health()
	row.Retries = row.Health.Retries
	if row.WrongAnswers > 0 {
		return row, fmt.Errorf("bit flips produced %d wrong answers — corruption was believed", row.WrongAnswers)
	}
	if row.UserErrors > 0 {
		return row, fmt.Errorf("bit flips surfaced %d untyped errors", row.UserErrors)
	}
	if row.InjectedFaults > 0 && row.TypedErrors == 0 && row.Health.QuarantinedPages == 0 {
		return row, fmt.Errorf("%d bit flips injected but no typed error and no quarantine followed", row.InjectedFaults)
	}
	// Discard, not Close: the medium is deliberately corrupt, so the
	// final commit's write-backs may legitimately fail.
	return row, idx.Discard()
}

// runDegradedPhase builds a memory-backed ShardedTree, kills one shard's
// reads outright, and checks that WithAllowDegraded turns the failures
// into partial answers carrying ErrDegraded — never invented results.
func runDegradedPhase(cfg Config, objects map[int64]uncertain.PDF,
	queries []uncertain.RangeQuery) (FaultPathRow, error) {
	const shards = 3
	row := FaultPathRow{Phase: "degraded"}
	var built atomic.Int32
	var shardChaos [shards]*pagefile.ChaosStore
	idx, err := uncertain.NewShardedTree(shards, uncertain.Config{
		Dimensions:       dataset.LB.Dim(),
		ExactRefinement:  true,
		Seed:             cfg.Seed,
		BufferPages:      faultBufferPages,
		NodeCacheEntries: -1,
		WrapStore: func(s pagefile.Store) pagefile.Store {
			cs := pagefile.NewChaosStore(s, cfg.Seed)
			shardChaos[built.Add(1)-1] = cs
			return cs
		},
	})
	if err != nil {
		return row, err
	}
	defer idx.Close()
	if err := idx.BulkLoad(objects); err != nil {
		return row, err
	}
	if !ArmLatency(idx, cfg.IOLatency) {
		return row, fmt.Errorf("index %T does not support simulated latency", idx)
	}

	// Clean sharded baseline (shard routing reshuffles traversal order,
	// so compare against this run, not the single-tree phases').
	var base FaultPathRow
	baseline := runFaultQueries(idx, queries, nil, &base)
	if base.UserErrors > 0 || base.TypedErrors > 0 || base.DegradedQueries > 0 {
		return row, fmt.Errorf("clean sharded run saw errors (user %d, typed %d, degraded %d)",
			base.UserErrors, base.TypedErrors, base.DegradedQueries)
	}

	// Kill shard 0's reads: sticky permanent faults from now on.
	dead := shardChaos[0].MustAddRule(pagefile.ChaosRule{Op: pagefile.OpRead, Fault: pagefile.FaultPermanent, Countdown: -1, Sticky: true})
	dead.Arm(0)

	runFaultQueries(idx, queries, baseline, &row, uncertain.WithAllowDegraded(true))
	row.SlowdownVsClean = 1
	if base.QPS > 0 {
		row.SlowdownVsClean = base.QPS / row.QPS
	}
	row.InjectedFaults = chaosTotal(shardChaos[0])
	row.Health = idx.Health()
	row.Retries = row.Health.Retries

	if row.WrongAnswers > 0 {
		return row, fmt.Errorf("degraded reads invented %d answers beyond the baseline", row.WrongAnswers)
	}
	if row.UserErrors > 0 || row.TypedErrors > 0 {
		return row, fmt.Errorf("shard failure escaped the degraded contract (user %d, typed %d)", row.UserErrors, row.TypedErrors)
	}
	if row.InjectedFaults > 0 && row.DegradedQueries == 0 {
		return row, fmt.Errorf("shard 0 failed %d reads but no query reported degradation", row.InjectedFaults)
	}
	return row, nil
}

// chaosTotal sums a chaos store's fired-fault counters over every kind.
func chaosTotal(cs *pagefile.ChaosStore) int64 {
	var n int64
	for _, k := range []pagefile.FaultKind{
		pagefile.FaultTransient, pagefile.FaultPermanent,
		pagefile.FaultBitFlip, pagefile.FaultTornWrite, pagefile.FaultLatency,
	} {
		n += cs.InjectedCount(k)
	}
	return n
}
