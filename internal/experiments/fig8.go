package experiments

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// Fig8Point is one (dataset, m) sample of Figure 8: the average query cost
// of U-PCR as a function of its catalog size.
type Fig8Point struct {
	Dataset dataset.Name
	M       int
	Cost    WorkloadMetrics
}

// Fig8 reproduces Figure 8 ("Tuning the catalog size for U-PCR"): for each
// dataset, U-PCR trees with m ∈ mValues answer workloads with qs = 500 and
// pq sweeping a range; the per-dataset cost curve is U-shaped with its
// minimum around m = 9..10. The paper uses 80 workloads (pq = 0.11..0.9);
// the default here sweeps a 6-point subset — the curve shape is preserved
// (each added pq multiplies runtime).
func Fig8(cfg Config, mValues []int, pqValues []float64) ([]Fig8Point, error) {
	cfg = cfg.withDefaults()
	if len(mValues) == 0 {
		mValues = []int{3, 4, 6, 8, 10, 12}
	}
	if len(pqValues) == 0 {
		pqValues = []float64{0.15, 0.3, 0.45, 0.6, 0.75, 0.9}
	}
	var points []Fig8Point
	out := cfg.Out
	fprintf(out, "Figure 8: tuning the catalog size m for U-PCR (qs=500)\n")
	fprintf(out, "%10s", "dataset")
	for _, m := range mValues {
		fprintf(out, "   m=%-7d", m)
	}
	fprintf(out, "\n")

	for _, name := range dataset.All() {
		objs := dataset.Generate(dataset.Config{Name: name, Scale: cfg.Scale, Seed: cfg.Seed})
		centers := centersOf(objs)
		fprintf(out, "%10s", name)
		for _, m := range mValues {
			t, err := core.New(core.Options{
				Dim:         name.Dim(),
				Kind:        core.UPCR,
				CatalogSize: m,
				MCSamples:   cfg.MCSamples,
				Seed:        cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			for _, o := range objs {
				if err := t.Insert(o); err != nil {
					return nil, err
				}
			}
			var agg WorkloadMetrics
			for wi, pq := range pqValues {
				w := workload.New(workload.Config{
					QS: scaledQS(500), PQ: pq, Count: cfg.Queries,
					Seed: cfg.Seed + int64(wi), Domain: dataset.Domain, Centers: centers,
				})
				wm, err := runWorkload(t, w)
				if err != nil {
					return nil, err
				}
				agg.NodeAccesses += wm.NodeAccesses
				agg.ProbComps += wm.ProbComps
				agg.RefineIOs += wm.RefineIOs
				agg.TotalCostSec += wm.TotalCostSec
			}
			k := float64(len(pqValues))
			agg.NodeAccesses /= k
			agg.ProbComps /= k
			agg.RefineIOs /= k
			agg.TotalCostSec /= k
			points = append(points, Fig8Point{Dataset: name, M: m, Cost: agg})
			fprintf(out, "   %-9.3f", agg.TotalCostSec)
		}
		fprintf(out, "   (query cost, sec)\n")
	}
	return points, nil
}
