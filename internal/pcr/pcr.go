package pcr

import (
	"strconv"
	"sync"

	"repro/internal/geom"
	"repro/internal/updf"
)

// PCRs holds an object's probabilistically constrained regions at every
// catalog value: Boxes[j] = o.pcr(p_j). By construction Boxes[0] (p=0) is
// the region MBR and boxes shrink (nest) as j grows.
type PCRs struct {
	Cat   Catalog
	Boxes []geom.Rect
}

// QuantileCache memoizes marginal quantile *offsets* (relative to the pdf's
// Center) per pdf ShapeKey, dimension and catalog. The paper observes that
// the normalization constant λ of the CA dataset "needs to be calculated
// only once" because every object shares the same pdf shape; this cache
// generalizes that: a dataset of identically-shaped objects computes its
// quantiles exactly once. Safe for concurrent use.
type QuantileCache struct {
	mu sync.Mutex
	m  map[string][]float64
}

// NewQuantileCache returns an empty cache.
func NewQuantileCache() *QuantileCache {
	return &QuantileCache{m: make(map[string][]float64)}
}

// offsets returns, for pdf p and dimension dim, the 2m quantile offsets
// {Q(p_1)−c, Q(1−p_1)−c, …} for catalog cat, computing and caching them when
// the pdf has a non-empty shape key.
func (qc *QuantileCache) offsets(p updf.PDF, dim int, cat Catalog) []float64 {
	key := ""
	if qc != nil {
		if sk := p.ShapeKey(); sk != "" {
			key = sk + "|dim=" + itoa(dim) + "|cat=" + catKey(cat)
			qc.mu.Lock()
			if off, ok := qc.m[key]; ok {
				qc.mu.Unlock()
				return off
			}
			qc.mu.Unlock()
		}
	}
	c := p.Center()[dim]
	m := cat.Size()
	off := make([]float64, 2*m)
	for j := 0; j < m; j++ {
		pj := cat.Value(j)
		off[2*j] = updf.MarginalQuantile(p, dim, pj) - c
		off[2*j+1] = updf.MarginalQuantile(p, dim, 1-pj) - c
	}
	if key != "" {
		qc.mu.Lock()
		qc.m[key] = off
		qc.mu.Unlock()
	}
	return off
}

func itoa(i int) string { return strconv.Itoa(i) }

func catKey(cat Catalog) string {
	// Size plus max suffices for the uniform catalogs used here, but include
	// the sum to disambiguate custom catalogs.
	return strconv.Itoa(cat.Size()) + ":" +
		strconv.FormatFloat(cat.Max(), 'g', -1, 64) + ":" +
		strconv.FormatFloat(cat.Sum(), 'g', -1, 64)
}

// Compute derives the PCRs of pdf p at all values of catalog cat. The
// optional cache (may be nil) memoizes quantiles across identically shaped
// pdfs. PCR faces obey the paper's definition: the appearance probability
// left of pcr_i−(p_j) and right of pcr_i+(p_j) both equal p_j.
func Compute(p updf.PDF, cat Catalog, cache *QuantileCache) PCRs {
	d := p.Dim()
	m := cat.Size()
	ctr := p.Center()
	boxes := make([]geom.Rect, m)
	los := make([][]float64, m)
	his := make([][]float64, m)
	for j := 0; j < m; j++ {
		los[j] = make([]float64, d)
		his[j] = make([]float64, d)
	}
	for i := 0; i < d; i++ {
		off := cache.offsets(p, i, cat)
		for j := 0; j < m; j++ {
			lo := ctr[i] + off[2*j]
			hi := ctr[i] + off[2*j+1]
			if lo > hi {
				// Numerical crossing near p = 0.5: collapse to midpoint.
				mid := (lo + hi) / 2
				lo, hi = mid, mid
			}
			los[j][i], his[j][i] = lo, hi
		}
	}
	for j := 0; j < m; j++ {
		boxes[j] = geom.Rect{Lo: los[j], Hi: his[j]}
	}
	// pcr(0) is the uncertainty region MBR by definition. Pin it exactly:
	// the quantile path computes ctr + (quantile − ctr') with the cache's
	// seed object ctr', whose rounding can land ~1e-13 inside the true MBR —
	// enough to break the strict containment chain (leaf CFB ⊆ parent boxes)
	// that Delete's descent relies on, in a way that depends on which object
	// warmed the cache. The nesting pass below re-expands pcr(0) if quantile
	// noise pushed an inner box outside the MBR.
	if cat.Value(0) == 0 {
		boxes[0] = p.MBR().Clone()
	}
	// Enforce nesting exactly (quantile noise could break it marginally):
	// pcr(p_{j}) must contain pcr(p_{j+1}).
	for j := m - 2; j >= 0; j-- {
		for i := 0; i < d; i++ {
			if boxes[j].Lo[i] > boxes[j+1].Lo[i] {
				boxes[j].Lo[i] = boxes[j+1].Lo[i]
			}
			if boxes[j].Hi[i] < boxes[j+1].Hi[i] {
				boxes[j].Hi[i] = boxes[j+1].Hi[i]
			}
		}
	}
	return PCRs{Cat: cat, Boxes: boxes}
}

// Box returns o.pcr(p_j).
func (p PCRs) Box(j int) geom.Rect { return p.Boxes[j] }
