// Package pcr implements the filtering layer of the U-tree paper:
// probabilistically constrained regions (PCRs, Section 4.1), the finite
// U-catalog rules (Observation 2, Section 4.2), conservative functional
// boxes (CFBs, Sections 4.3–4.4) fitted by linear programming, and the
// CFB-based rules (Observation 3). It also provides the exact
// (continuous-p) rules of Observation 1 used for testing and for
// no-catalog baselines.
package pcr

import (
	"fmt"
	"math"
)

// catalogEps absorbs floating-point noise when matching query thresholds
// against catalog values.
const catalogEps = 1e-12

// Catalog is the U-catalog: probability values p_1 < p_2 < … < p_m in
// [0, 0.5] at which PCRs are pre-computed. The paper (and the e.MBR(p)
// derivation in Section 5.1) requires p_1 = 0.
type Catalog struct {
	values []float64
}

// UniformCatalog returns the paper's evenly spaced catalog
// {0, 0.5/(m−1), …, 0.5}; the U-PCR experiments use m ∈ [3,12] and the
// U-tree uses m = 15 (values j/28).
func UniformCatalog(m int) Catalog {
	if m < 2 {
		panic(fmt.Sprintf("pcr: catalog needs at least 2 values, got %d", m))
	}
	v := make([]float64, m)
	for j := 0; j < m; j++ {
		v[j] = 0.5 * float64(j) / float64(m-1)
	}
	return Catalog{values: v}
}

// NewCatalog builds a catalog from explicit values, validating the paper's
// requirements: sorted ascending, within [0, 0.5], first value 0.
func NewCatalog(values []float64) (Catalog, error) {
	if len(values) < 2 {
		return Catalog{}, fmt.Errorf("pcr: catalog needs at least 2 values, got %d", len(values))
	}
	if values[0] != 0 {
		return Catalog{}, fmt.Errorf("pcr: catalog must start at 0, got %g", values[0])
	}
	for i, v := range values {
		if v < 0 || v > 0.5 {
			return Catalog{}, fmt.Errorf("pcr: catalog value %g outside [0, 0.5]", v)
		}
		if i > 0 && v <= values[i-1] {
			return Catalog{}, fmt.Errorf("pcr: catalog not strictly ascending at index %d", i)
		}
	}
	return Catalog{values: append([]float64(nil), values...)}, nil
}

// Size returns m, the number of catalog values.
func (c Catalog) Size() int { return len(c.values) }

// Value returns p_j (0-based j).
func (c Catalog) Value(j int) float64 { return c.values[j] }

// Values returns a copy of the catalog values.
func (c Catalog) Values() []float64 { return append([]float64(nil), c.values...) }

// Max returns p_m, the largest catalog value.
func (c Catalog) Max() float64 { return c.values[len(c.values)-1] }

// Sum returns P = Σ p_j, the constant appearing in the CFB objective
// (Formula 11).
func (c Catalog) Sum() float64 {
	var s float64
	for _, v := range c.values {
		s += v
	}
	return s
}

// MedianIndex returns the index of the median catalog value p_{⌈m/2⌉}, the
// value the U-tree split sorts by (Section 5.3).
func (c Catalog) MedianIndex() int { return len(c.values) / 2 }

// LargestLE returns the index of the largest catalog value ≤ x, with ok
// false when every value exceeds x.
func (c Catalog) LargestLE(x float64) (int, bool) {
	x += catalogEps
	idx, ok := -1, false
	for j, v := range c.values {
		if v <= x {
			idx, ok = j, true
		} else {
			break
		}
	}
	return idx, ok
}

// SmallestGE returns the index of the smallest catalog value ≥ x, with ok
// false when every value is below x.
func (c Catalog) SmallestGE(x float64) (int, bool) {
	x -= catalogEps
	for j, v := range c.values {
		if v >= x {
			return j, true
		}
	}
	return -1, false
}

// Equal reports whether two catalogs hold identical values.
func (c Catalog) Equal(other Catalog) bool {
	if len(c.values) != len(other.values) {
		return false
	}
	for i := range c.values {
		if math.Abs(c.values[i]-other.values[i]) > catalogEps {
			return false
		}
	}
	return true
}
