package pcr

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/updf"
)

// exactProber is the closed-form/quadrature oracle the refinement step
// uses; every test pdf here provides it, giving ground truth for the
// bound's soundness check.
type exactProber interface {
	ExactProb(rq geom.Rect) float64
}

func boundTestPDFs() []updf.PDF {
	r := geom.NewRect(geom.Point{100, 100}, geom.Point{180, 150})
	return []updf.PDF{
		updf.NewUniformRect(r),
		updf.NewUniformBall(geom.Point{140, 125}, 30),
		updf.NewConGauBall(geom.Point{140, 125}, 30, 15),
		updf.NewGaussRect(r, geom.Point{140, 125}, []float64{20, 12}),
	}
}

// TestProbUpperBoundSound is the filter's safety contract: for any pdf and
// query rectangle, the slab-derived upper bound must dominate the true
// qualification probability — from both the raw PCR boxes (U-PCR entries)
// and the fitted CFB pair (U-tree entries, whose repair steps the bound
// must survive).
func TestProbUpperBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, m := range []int{2, 5, 10} {
		cat := UniformCatalog(m)
		for pi, p := range boundTestPDFs() {
			pcrs := Compute(p, cat, nil)
			out := FitOut(pcrs)
			in := FitIn(pcrs)
			mbr := p.MBR()
			for q := 0; q < 300; q++ {
				// Mix rects straddling the support with far-away ones.
				cx := mbr.Lo[0] + (rng.Float64()*3-1)*mbr.Side(0)
				cy := mbr.Lo[1] + (rng.Float64()*3-1)*mbr.Side(1)
				w := rng.Float64() * 2 * mbr.Side(0)
				h := rng.Float64() * 2 * mbr.Side(1)
				rq := geom.NewRect(geom.Point{cx, cy}, geom.Point{cx + w, cy + h})
				exact := p.(exactProber).ExactProb(rq)
				const eps = 1e-9
				if ub := ProbUpperBoundPCR(pcrs, rq); ub+eps < exact {
					t.Fatalf("m=%d pdf=%d: PCR bound %.6f < exact %.6f for rq=%v", m, pi, ub, exact, rq)
				}
				if ub := ProbUpperBoundCFB(out, in, cat, rq); ub+eps < exact {
					t.Fatalf("m=%d pdf=%d: CFB bound %.6f < exact %.6f for rq=%v", m, pi, ub, exact, rq)
				}
			}
		}
	}
}

// TestProbUpperBoundBites checks the bound is not vacuous: a query rect
// covering only a thin edge sliver of a uniform support must get a bound
// well below 1, and a rect strictly left of the p_1 quantile must be
// bounded by p_1 itself.
func TestProbUpperBoundBites(t *testing.T) {
	cat := UniformCatalog(6) // p values 0, 0.1, ..., 0.5
	p := updf.NewUniformRect(geom.NewRect(geom.Point{0, 0}, geom.Point{100, 100}))
	pcrs := Compute(p, cat, nil)
	out := FitOut(pcrs)
	in := FitIn(pcrs)

	// Thin left sliver: true mass 5%, so a sound-but-useful bound must be
	// far under 0.5 (the slab at p=0.1 already excludes it).
	sliver := geom.NewRect(geom.Point{0, 0}, geom.Point{5, 100})
	if ub := ProbUpperBoundPCR(pcrs, sliver); ub > 0.2 {
		t.Fatalf("PCR bound %.3f too loose for 5%% sliver", ub)
	}
	if ub := ProbUpperBoundCFB(out, in, cat, sliver); ub > 0.2 {
		t.Fatalf("CFB bound %.3f too loose for 5%% sliver", ub)
	}

	// Disjoint rect: bound must collapse to ~0 (the p_1 = 0 slab).
	far := geom.NewRect(geom.Point{500, 500}, geom.Point{600, 600})
	if ub := ProbUpperBoundPCR(pcrs, far); ub > 1e-6 {
		t.Fatalf("PCR bound %.6f for disjoint rect, want ~0", ub)
	}
}
