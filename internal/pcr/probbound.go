package pcr

import "repro/internal/geom"

// This file implements a Bernecker-style probabilistic filter: an upper
// bound on an object's qualification probability P(X ∈ rq) computed from
// its PCR slab positions alone, with no assumption on the pdf beyond the
// PCR face property. Candidates whose bound falls below the query
// threshold are provably non-qualifying and never reach Monte-Carlo (or
// exact) refinement.
//
// The bound works per dimension. Write [a, b] for the query's interval on
// dimension i and recall the PCR face property: the low face of pcr(p_j)
// sits at the left p_j-quantile of X_i (P(X_i ≤ lo_j) = p_j) and the high
// face at the right one (P(X_i ≥ hi_j) = p_j). Three observations bound
// P(X_i ∈ [a, b]):
//
//   - side-left: if b ≤ lo_j the whole query interval sits in the left
//     p_j tail, so P ≤ p_j (smallest such p_j wins);
//   - side-right: symmetrically, if a ≥ hi_j then P ≤ p_j;
//   - middle: P(X_i ∈ [a, b]) = 1 − P(X_i < a) − P(X_i > b) ≤
//     1 − p_left − p_right, where p_left is the largest p_j whose low
//     face is strictly left of a and p_right the largest p_j whose high
//     face is strictly right of b.
//
// Since P(X ∈ rq) ≤ P(X_i ∈ [a_i, b_i]) for every dimension, the total
// bound is the minimum of the per-dimension bounds — no independence
// across dimensions is assumed.
//
// Conservativeness under storage noise: PCR nesting repair and CFB
// fitting only move outer faces outward and inner faces inward, which
// keeps the side bounds exact and can overstate the middle bound's
// p_left/p_right by float-level noise only; consumers compare against
// the threshold with a safety epsilon.

// ProbUpperBoundPCR bounds the qualification probability of an object
// stored as explicit catalog PCRs (the U-PCR leaf format).
func ProbUpperBoundPCR(p PCRs, rq geom.Rect) float64 {
	return probUpperBound(p.Cat, rq,
		func(j, i int) (float64, float64) { return p.Boxes[j].Lo[i], p.Boxes[j].Hi[i] },
		func(j, i int) (float64, float64) { return p.Boxes[j].Lo[i], p.Boxes[j].Hi[i] },
	)
}

// ProbUpperBoundCFB bounds the qualification probability of an object
// stored as a cfb_out/cfb_in pair (the U-tree leaf format). The out box
// covers pcr(p_j), so its faces substitute in the side bounds; the in box
// is contained in pcr(p_j), so its faces substitute in the middle bound —
// each substitution only weakens the bound, never breaks it.
func ProbUpperBoundCFB(out, in CFB, cat Catalog, rq geom.Rect) float64 {
	return probUpperBound(cat, rq,
		func(j, i int) (float64, float64) { p := cat.Value(j); return out.Lo(i, p), out.Hi(i, p) },
		func(j, i int) (float64, float64) { p := cat.Value(j); return in.Lo(i, p), in.Hi(i, p) },
	)
}

// probUpperBound is the shared slab scan. outFace supplies faces
// guaranteed to contain pcr(p_j) (used where a face position must not be
// understated) and inFace faces guaranteed to be contained in it (used
// where it must not be overstated); for raw PCRs both are the slabs
// themselves.
func probUpperBound(cat Catalog, rq geom.Rect, outFace, inFace func(j, i int) (float64, float64)) float64 {
	ub := 1.0
	for i := 0; i < rq.Dim(); i++ {
		a, b := rq.Lo[i], rq.Hi[i]
		sideLeft, sideRight := 1.0, 1.0
		pLeft, pRight := 0.0, 0.0
		for j := 0; j < cat.Size(); j++ {
			pj := cat.Value(j)
			olo, ohi := outFace(j, i)
			if olo >= b && pj < sideLeft {
				sideLeft = pj
			}
			if ohi <= a && pj < sideRight {
				sideRight = pj
			}
			ilo, ihi := inFace(j, i)
			if ilo < a && pj > pLeft {
				pLeft = pj
			}
			if ihi > b && pj > pRight {
				pRight = pj
			}
		}
		middle := 1 - pLeft - pRight
		if middle < 0 {
			middle = 0
		}
		dimUB := middle
		if sideLeft < dimUB {
			dimUB = sideLeft
		}
		if sideRight < dimUB {
			dimUB = sideRight
		}
		if dimUB < ub {
			ub = dimUB
		}
	}
	return ub
}
