package pcr

import (
	"math"

	"repro/internal/geom"
	"repro/internal/updf"
)

// Outcome is the result of applying prune/validate rules to one object.
type Outcome int

const (
	// Unknown means neither pruning nor validation applied: the object is a
	// candidate whose appearance probability must be computed.
	Unknown Outcome = iota
	// Pruned means the object cannot satisfy the query.
	Pruned
	// Validated means the object is guaranteed to satisfy the query.
	Validated
)

// String implements fmt.Stringer for diagnostics.
func (o Outcome) String() string {
	switch o {
	case Pruned:
		return "pruned"
	case Validated:
		return "validated"
	default:
		return "unknown"
	}
}

// coversSlab reports whether rq fully contains the part of mbr between the
// two planes perpendicular to dimension dim at coordinates lo and hi. This
// is the O(d) primitive the paper describes after Observation 1: rq must
// enclose mbr on every other dimension, and rq's extent on dim must cover
// the clipped interval. An empty slab reports false (validation must never
// fire on vacuous geometry).
func coversSlab(rq, mbr geom.Rect, dim int, lo, hi float64) bool {
	for k := 0; k < mbr.Dim(); k++ {
		if k == dim {
			continue
		}
		if rq.Lo[k] > mbr.Lo[k] || rq.Hi[k] < mbr.Hi[k] {
			return false
		}
	}
	l := math.Max(mbr.Lo[dim], lo)
	h := math.Min(mbr.Hi[dim], hi)
	if l > h {
		return false
	}
	return rq.Lo[dim] <= l && rq.Hi[dim] >= h
}

// validateOuterSides applies Rule 4's pattern (pq > 0.5): succeed if, on
// some dimension i, rq covers the part of mbr on the *right* of the box's
// low plane (mass ≥ 1−p_j) or on the *left* of its high plane.
func validateOuterSides(rq, mbr geom.Rect, box geom.Rect) bool {
	for i := 0; i < mbr.Dim(); i++ {
		if coversSlab(rq, mbr, i, box.Lo[i], math.Inf(1)) {
			return true
		}
		if coversSlab(rq, mbr, i, math.Inf(-1), box.Hi[i]) {
			return true
		}
	}
	return false
}

// validateInnerSides applies Rule 5's pattern (pq ≤ 0.5): succeed if, on
// some dimension i, rq covers the part of mbr on the *left* of the box's
// low plane (mass ≥ p_j) or on the *right* of its high plane.
func validateInnerSides(rq, mbr geom.Rect, box geom.Rect) bool {
	for i := 0; i < mbr.Dim(); i++ {
		if coversSlab(rq, mbr, i, math.Inf(-1), box.Lo[i]) {
			return true
		}
		if coversSlab(rq, mbr, i, box.Hi[i], math.Inf(1)) {
			return true
		}
	}
	return false
}

// validateBetween applies Rule 3's pattern: succeed if, on some dimension,
// rq covers the part of mbr between box's two faces.
func validateBetween(rq, mbr geom.Rect, box geom.Rect) bool {
	for i := 0; i < mbr.Dim(); i++ {
		if coversSlab(rq, mbr, i, box.Lo[i], box.Hi[i]) {
			return true
		}
	}
	return false
}

// FilterExact applies Observation 1 with exact PCRs computed on demand from
// the pdf's marginal quantiles (the idealized, infinite-catalog filter).
// Intended for testing and for the no-index scan baseline with exact
// filtering.
func FilterExact(p updf.PDF, rq geom.Rect, pq float64) Outcome {
	mbr := p.MBR()
	if !rq.Intersects(mbr) {
		return Pruned
	}
	if rq.Contains(mbr) {
		return Validated
	}
	d := p.Dim()
	pcrAt := func(prob float64) geom.Rect {
		lo := make(geom.Point, d)
		hi := make(geom.Point, d)
		for i := 0; i < d; i++ {
			lo[i] = updf.MarginalQuantile(p, i, prob)
			hi[i] = updf.MarginalQuantile(p, i, 1-prob)
			if lo[i] > hi[i] {
				mid := (lo[i] + hi[i]) / 2
				lo[i], hi[i] = mid, mid
			}
		}
		return geom.Rect{Lo: lo, Hi: hi}
	}
	if pq > 0.5 {
		// Rule 1: prune unless rq contains pcr(1−pq).
		if !rq.Contains(pcrAt(1 - pq)) {
			return Pruned
		}
		// Rule 4: one-sided validation with pcr(1−pq) planes.
		if validateOuterSides(rq, mbr, pcrAt(1-pq)) {
			return Validated
		}
	} else {
		// Rule 2: prune if rq misses pcr(pq).
		if !rq.Intersects(pcrAt(pq)) {
			return Pruned
		}
		// Rule 5: one-sided validation with pcr(pq) planes.
		if validateInnerSides(rq, mbr, pcrAt(pq)) {
			return Validated
		}
	}
	// Rule 3: two-sided validation with pcr((1−pq)/2).
	if validateBetween(rq, mbr, pcrAt((1-pq)/2)) {
		return Validated
	}
	return Unknown
}

// FilterCatalogPCR applies Observation 2: the finite-catalog PCR rules used
// by the U-PCR structure's leaf entries. mbr is the MBR of the uncertainty
// region. The rule order follows the paper: prune first (Rule 1 or 2), then
// the one-sided validation (Rule 4 or 5), then Rule 3.
func FilterCatalogPCR(pcrs PCRs, mbr, rq geom.Rect, pq float64) Outcome {
	if !rq.Intersects(mbr) {
		return Pruned
	}
	if rq.Contains(mbr) {
		return Validated
	}
	cat := pcrs.Cat
	pm := cat.Max()

	if pq > 1-pm {
		// Rule 1: p_j = smallest catalog value ≥ 1−pq.
		if j, ok := cat.SmallestGE(1 - pq); ok {
			if !rq.Contains(pcrs.Boxes[j]) {
				return Pruned
			}
		}
	} else {
		// Rule 2: p_j = largest catalog value ≤ pq.
		if j, ok := cat.LargestLE(pq); ok {
			if !rq.Intersects(pcrs.Boxes[j]) {
				return Pruned
			}
		}
	}

	if pq > 0.5 {
		// Rule 4: p_j = largest catalog value ≤ 1−pq.
		if j, ok := cat.LargestLE(1 - pq); ok {
			if validateOuterSides(rq, mbr, pcrs.Boxes[j]) {
				return Validated
			}
		}
	} else {
		// Rule 5: p_j = smallest catalog value ≥ pq.
		if j, ok := cat.SmallestGE(pq); ok {
			if validateInnerSides(rq, mbr, pcrs.Boxes[j]) {
				return Validated
			}
		}
	}

	// Rule 3: p_j = largest catalog value ≤ (1−pq)/2.
	if j, ok := cat.LargestLE((1 - pq) / 2); ok {
		if validateBetween(rq, mbr, pcrs.Boxes[j]) {
			return Validated
		}
	}
	return Unknown
}

// FilterCFB applies Observation 3: Observation 2 with PCRs replaced by the
// conservative functional boxes stored in U-tree leaf entries — cfb_in for
// the containment prune (Rule 1) and one-sided validation at low thresholds
// (Rule 5), cfb_out for the intersection prune (Rule 2) and validations at
// high thresholds (Rules 3 and 4).
func FilterCFB(out, in CFB, cat Catalog, mbr, rq geom.Rect, pq float64) Outcome {
	if !rq.Intersects(mbr) {
		return Pruned
	}
	if rq.Contains(mbr) {
		return Validated
	}
	pm := cat.Max()

	if pq > 1-pm {
		// Rule 1 with cfb_in (contained in pcr, so "rq fails to contain"
		// transfers).
		if j, ok := cat.SmallestGE(1 - pq); ok {
			if !rq.Contains(in.Rect(cat.Value(j))) {
				return Pruned
			}
		}
	} else {
		// Rule 2 with cfb_out (contains pcr, so "rq misses" transfers).
		if j, ok := cat.LargestLE(pq); ok {
			if !rq.Intersects(out.Rect(cat.Value(j))) {
				return Pruned
			}
		}
	}

	if pq > 0.5 {
		// Rule 4 with cfb_out planes.
		if j, ok := cat.LargestLE(1 - pq); ok {
			if validateOuterSides(rq, mbr, out.Rect(cat.Value(j))) {
				return Validated
			}
		}
	} else {
		// Rule 5 with cfb_in planes.
		if j, ok := cat.SmallestGE(pq); ok {
			if validateInnerSides(rq, mbr, in.Rect(cat.Value(j))) {
				return Validated
			}
		}
	}

	// Rule 3 with cfb_out planes.
	if j, ok := cat.LargestLE((1 - pq) / 2); ok {
		if validateBetween(rq, mbr, out.Rect(cat.Value(j))) {
			return Validated
		}
	}
	return Unknown
}
