package pcr

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/lp"
)

// CFB is a conservative functional box (Section 4.3): a rectangle-valued
// linear function of the catalog probability p,
//
//	box(p) = α − β·p    (per face),
//
// stored as per-dimension face coefficients. For cfb_out, box(p_j) contains
// the object's pcr(p_j) at every catalog value; for cfb_in it is contained
// in it. A CFB costs 4d floats, so the out/in pair costs 8d — the "16 (24)
// values in 2D (3D)" of the paper's Table 1 discussion.
type CFB struct {
	AlphaLo []float64
	BetaLo  []float64
	AlphaHi []float64
	BetaHi  []float64
}

// Dim returns the dimensionality.
func (c CFB) Dim() int { return len(c.AlphaLo) }

// Lo returns the low face position on dimension i at probability p.
func (c CFB) Lo(i int, p float64) float64 { return c.AlphaLo[i] - c.BetaLo[i]*p }

// Hi returns the high face position on dimension i at probability p.
func (c CFB) Hi(i int, p float64) float64 { return c.AlphaHi[i] - c.BetaHi[i]*p }

// Rect materializes box(p). Faces that cross due to floating-point noise
// collapse to their midpoint so the result is always a valid rectangle.
func (c CFB) Rect(p float64) geom.Rect {
	d := c.Dim()
	lo := make(geom.Point, d)
	hi := make(geom.Point, d)
	for i := 0; i < d; i++ {
		l, h := c.Lo(i, p), c.Hi(i, p)
		if l > h {
			mid := (l + h) / 2
			l, h = mid, mid
		}
		lo[i], hi[i] = l, h
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// FitOut fits cfb_out to the given PCRs: the margin-sum-minimal linear box
// family covering every pcr(p_j) (Section 4.4). Per dimension the problem
// decouples into two 2-variable LPs solved with simplex. The returned CFB
// satisfies Rect(p_j) ⊇ pcr(p_j) for every j.
func FitOut(pcrs PCRs) CFB {
	cat := pcrs.Cat
	m := cat.Size()
	d := pcrs.Boxes[0].Dim()
	P := cat.Sum()
	c := CFB{
		AlphaLo: make([]float64, d), BetaLo: make([]float64, d),
		AlphaHi: make([]float64, d), BetaHi: make([]float64, d),
	}
	for i := 0; i < d; i++ {
		// Low face: maximize m·α − P·β subject to α − β·p_j ≤ pcr_i−(p_j).
		aLo := make([][]float64, m)
		bLo := make([]float64, m)
		for j := 0; j < m; j++ {
			aLo[j] = []float64{1, -cat.Value(j)}
			bLo[j] = pcrs.Boxes[j].Lo[i]
		}
		xLo, _, errLo := lp.Solve(lp.Problem{C: []float64{float64(m), -P}, A: aLo, B: bLo})

		// High face: minimize m·α − P·β subject to α − β·p_j ≥ pcr_i+(p_j),
		// i.e. maximize −m·α + P·β subject to −α + β·p_j ≤ −pcr_i+(p_j).
		aHi := make([][]float64, m)
		bHi := make([]float64, m)
		for j := 0; j < m; j++ {
			aHi[j] = []float64{-1, cat.Value(j)}
			bHi[j] = -pcrs.Boxes[j].Hi[i]
		}
		xHi, _, errHi := lp.Solve(lp.Problem{C: []float64{-float64(m), P}, A: aHi, B: bHi})

		if errLo == nil && errHi == nil {
			c.AlphaLo[i], c.BetaLo[i] = xLo[0], xLo[1]
			c.AlphaHi[i], c.BetaHi[i] = xHi[0], xHi[1]
		} else {
			// Safe fallback: the constant box pcr(p_1) covers every PCR.
			c.AlphaLo[i], c.BetaLo[i] = pcrs.Boxes[0].Lo[i], 0
			c.AlphaHi[i], c.BetaHi[i] = pcrs.Boxes[0].Hi[i], 0
		}
		c.repairOut(pcrs, i)
	}
	return c
}

// repairOut nudges face i outward to absorb simplex round-off so the
// covering invariant holds exactly.
func (c *CFB) repairOut(pcrs PCRs, i int) {
	for j := 0; j < pcrs.Cat.Size(); j++ {
		p := pcrs.Cat.Value(j)
		if lo := c.Lo(i, p); lo > pcrs.Boxes[j].Lo[i] {
			c.AlphaLo[i] -= lo - pcrs.Boxes[j].Lo[i]
		}
		if hi := c.Hi(i, p); hi < pcrs.Boxes[j].Hi[i] {
			c.AlphaHi[i] += pcrs.Boxes[j].Hi[i] - hi
		}
	}
}

// FitIn fits cfb_in: the margin-sum-maximal linear box family contained in
// every pcr(p_j), subject to the non-degeneracy coupling (Inequality 14).
// Per dimension this is a single 4-variable LP.
func FitIn(pcrs PCRs) CFB {
	cat := pcrs.Cat
	m := cat.Size()
	d := pcrs.Boxes[0].Dim()
	P := cat.Sum()
	c := CFB{
		AlphaLo: make([]float64, d), BetaLo: make([]float64, d),
		AlphaHi: make([]float64, d), BetaHi: make([]float64, d),
	}
	for i := 0; i < d; i++ {
		// Variables x = (αlo, βlo, αhi, βhi).
		// maximize (m·αhi − P·βhi) − (m·αlo − P·βlo)
		// s.t.  −αlo + βlo·p_j ≤ −pcr_i−(p_j)       (inner ≥ pcr low face)
		//        αhi − βhi·p_j ≤  pcr_i+(p_j)       (inner ≤ pcr high face)
		//        αlo − βlo·p_j − αhi + βhi·p_j ≤ 0  (low ≤ high, Ineq. 14)
		a := make([][]float64, 0, 3*m)
		b := make([]float64, 0, 3*m)
		for j := 0; j < m; j++ {
			pj := cat.Value(j)
			a = append(a, []float64{-1, pj, 0, 0})
			b = append(b, -pcrs.Boxes[j].Lo[i])
			a = append(a, []float64{0, 0, 1, -pj})
			b = append(b, pcrs.Boxes[j].Hi[i])
			a = append(a, []float64{1, -pj, -1, pj})
			b = append(b, 0)
		}
		obj := []float64{-float64(m), P, float64(m), -P}
		x, _, err := lp.Solve(lp.Problem{C: obj, A: a, B: b})
		if err == nil {
			c.AlphaLo[i], c.BetaLo[i] = x[0], x[1]
			c.AlphaHi[i], c.BetaHi[i] = x[2], x[3]
		} else {
			// Safe fallback: the constant box pcr(p_m) sits inside every PCR.
			last := pcrs.Boxes[m-1]
			c.AlphaLo[i], c.BetaLo[i] = last.Lo[i], 0
			c.AlphaHi[i], c.BetaHi[i] = last.Hi[i], 0
		}
		c.repairIn(pcrs, i)
	}
	return c
}

// repairIn nudges face i inward to absorb simplex round-off so the
// containment invariant holds exactly.
func (c *CFB) repairIn(pcrs PCRs, i int) {
	for j := 0; j < pcrs.Cat.Size(); j++ {
		p := pcrs.Cat.Value(j)
		if lo := c.Lo(i, p); lo < pcrs.Boxes[j].Lo[i] {
			c.AlphaLo[i] += pcrs.Boxes[j].Lo[i] - lo
		}
		if hi := c.Hi(i, p); hi > pcrs.Boxes[j].Hi[i] {
			c.AlphaHi[i] -= hi - pcrs.Boxes[j].Hi[i]
		}
	}
}

// Validate checks the conservative invariants of an out/in CFB pair against
// the PCRs they were fitted to; it returns a descriptive error on the first
// violation beyond floating-point tolerance. Used by tests and by the
// utreectl verifier.
func Validate(out, in CFB, pcrs PCRs) error {
	for j := 0; j < pcrs.Cat.Size(); j++ {
		p := pcrs.Cat.Value(j)
		ob := out.Rect(p)
		ib := in.Rect(p)
		box := pcrs.Boxes[j]
		for i := 0; i < box.Dim(); i++ {
			tol := 1e-9 * (1 + absf(box.Lo[i]) + absf(box.Hi[i]))
			if ob.Lo[i] > box.Lo[i]+tol || ob.Hi[i] < box.Hi[i]-tol {
				return fmt.Errorf("pcr: cfb_out(%g) = %v does not contain pcr = %v", p, ob, box)
			}
			if ib.Lo[i] < box.Lo[i]-tol || ib.Hi[i] > box.Hi[i]+tol {
				return fmt.Errorf("pcr: cfb_in(%g) = %v not inside pcr = %v", p, ib, box)
			}
		}
	}
	return nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
