package pcr

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/updf"
)

func TestUniformCatalog(t *testing.T) {
	c := UniformCatalog(3)
	want := []float64{0, 0.25, 0.5}
	for i, v := range c.Values() {
		if math.Abs(v-want[i]) > 1e-15 {
			t.Fatalf("catalog[%d] = %g, want %g", i, v, want[i])
		}
	}
	// The paper's U-tree catalog: m=15 gives 0, 1/28, ..., 14/28.
	c15 := UniformCatalog(15)
	if math.Abs(c15.Value(1)-1.0/28) > 1e-15 || c15.Max() != 0.5 {
		t.Fatalf("m=15 catalog wrong: %v", c15.Values())
	}
	if c15.Sum() <= 0 {
		t.Fatal("catalog sum must be positive")
	}
}

func TestUniformCatalogPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("m=1 should panic")
		}
	}()
	UniformCatalog(1)
}

func TestNewCatalogValidation(t *testing.T) {
	if _, err := NewCatalog([]float64{0, 0.2, 0.5}); err != nil {
		t.Fatalf("valid catalog rejected: %v", err)
	}
	bad := [][]float64{
		{0.1, 0.2},    // must start at 0
		{0, 0.6},      // above 0.5
		{0, 0.3, 0.2}, // not ascending
		{0, 0.3, 0.3}, // not strictly ascending
		{0},           // too short
		{0, -0.1},     // negative (also not ascending)
	}
	for i, v := range bad {
		if _, err := NewCatalog(v); err == nil {
			t.Errorf("case %d: invalid catalog %v accepted", i, v)
		}
	}
}

func TestCatalogSelectors(t *testing.T) {
	c := UniformCatalog(6) // 0, 0.1, 0.2, 0.3, 0.4, 0.5
	if j, ok := c.LargestLE(0.35); !ok || j != 3 {
		t.Fatalf("LargestLE(0.35) = %d,%v", j, ok)
	}
	if j, ok := c.LargestLE(0.1); !ok || j != 1 {
		t.Fatalf("LargestLE(0.1) = %d,%v (exact match)", j, ok)
	}
	if j, ok := c.LargestLE(0.9); !ok || j != 5 {
		t.Fatalf("LargestLE(0.9) = %d,%v", j, ok)
	}
	if _, ok := c.LargestLE(-0.01); ok {
		t.Fatal("LargestLE below 0 should fail")
	}
	if j, ok := c.SmallestGE(0.15); !ok || j != 2 {
		t.Fatalf("SmallestGE(0.15) = %d,%v", j, ok)
	}
	if j, ok := c.SmallestGE(0.5); !ok || j != 5 {
		t.Fatalf("SmallestGE(0.5) = %d,%v", j, ok)
	}
	if _, ok := c.SmallestGE(0.51); ok {
		t.Fatal("SmallestGE above max should fail")
	}
	if j, ok := c.SmallestGE(0); !ok || j != 0 {
		t.Fatalf("SmallestGE(0) = %d,%v", j, ok)
	}
	// Median index used by the split algorithm.
	if c.MedianIndex() != 3 {
		t.Fatalf("MedianIndex = %d", c.MedianIndex())
	}
}

// testPDFs returns exact-oracle pdfs for the soundness checks.
func testPDFs(rng *rand.Rand) []updf.PDF {
	rect := func(cx, cy, w, h float64) geom.Rect {
		return geom.NewRect(geom.Point{cx - w/2, cy - h/2}, geom.Point{cx + w/2, cy + h/2})
	}
	pdfs := []updf.PDF{
		updf.NewUniformBall(geom.Point{500, 500}, 250),
		updf.NewUniformRect(rect(500, 500, 400, 300)),
		updf.NewGaussRect(rect(500, 500, 400, 300), geom.Point{450, 520}, []float64{120, 100}),
		updf.NewExpoRect(rect(500, 500, 400, 300), []float64{0.01, 0.002}),
		updf.NewConGauBall(geom.Point{500, 500}, 250, 125),
	}
	// A few random histograms = arbitrary pdfs.
	for k := 0; k < 3; k++ {
		w := make([]float64, 16)
		for i := range w {
			w[i] = rng.Float64()
		}
		pdfs = append(pdfs, updf.NewHistogramRect(rect(500, 500, 380, 290), []int{4, 4}, w))
	}
	return pdfs
}

func TestComputeNestingAndMBR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cat := UniformCatalog(8)
	cache := NewQuantileCache()
	for pi, p := range testPDFs(rng) {
		pcrs := Compute(p, cat, cache)
		mbr := p.MBR()
		if !mbr.Contains(pcrs.Boxes[0]) {
			t.Fatalf("pdf %d: pcr(0) %v outside MBR %v", pi, pcrs.Boxes[0], mbr)
		}
		for j := 1; j < cat.Size(); j++ {
			if !pcrs.Boxes[j-1].Contains(pcrs.Boxes[j]) {
				t.Fatalf("pdf %d: pcr nesting violated at j=%d: %v ⊄ %v",
					pi, j, pcrs.Boxes[j], pcrs.Boxes[j-1])
			}
		}
		// pcr(0) spans the full marginal support.
		if pcrs.Boxes[0].Area() <= 0 {
			t.Fatalf("pdf %d: pcr(0) degenerate", pi)
		}
	}
}

func TestComputeFaceMassSemantics(t *testing.T) {
	// The defining property: mass left of pcr_i−(p_j) = p_j and mass right
	// of pcr_i+(p_j) = p_j, checked through the marginal CDF.
	cat := UniformCatalog(6)
	p := updf.NewGaussRect(
		geom.NewRect(geom.Point{0, 0}, geom.Point{100, 60}),
		geom.Point{40, 30}, []float64{25, 15})
	pcrs := Compute(p, cat, nil)
	for j := 0; j < cat.Size(); j++ {
		pj := cat.Value(j)
		for i := 0; i < 2; i++ {
			left := p.MarginalCDF(i, pcrs.Boxes[j].Lo[i])
			right := 1 - p.MarginalCDF(i, pcrs.Boxes[j].Hi[i])
			if math.Abs(left-pj) > 1e-6 || math.Abs(right-pj) > 1e-6 {
				t.Fatalf("face mass at j=%d dim=%d: left=%g right=%g want %g",
					j, i, left, right, pj)
			}
		}
	}
}

func TestQuantileCacheHitsAcrossObjects(t *testing.T) {
	cat := UniformCatalog(10)
	cache := NewQuantileCache()
	a := updf.NewUniformBall(geom.Point{100, 100}, 250)
	b := updf.NewUniformBall(geom.Point{9000, 4000}, 250)
	pa := Compute(a, cat, cache)
	pb := Compute(b, cat, cache)
	// Same shape ⇒ identical offsets from centers.
	for j := 0; j < cat.Size(); j++ {
		offA := pa.Boxes[j].Lo[0] - 100
		offB := pb.Boxes[j].Lo[0] - 9000
		if math.Abs(offA-offB) > 1e-9 {
			t.Fatalf("cache produced inconsistent offsets: %g vs %g", offA, offB)
		}
	}
	if len(cache.m) == 0 {
		t.Fatal("cache unused for cacheable pdfs")
	}
	n := len(cache.m)
	Compute(b, cat, cache) // should not add entries
	if len(cache.m) != n {
		t.Fatal("repeat computation added cache entries")
	}
}

func TestComputeNilCache(t *testing.T) {
	cat := UniformCatalog(4)
	p := updf.NewUniformBall(geom.Point{0, 0}, 10)
	pcrs := Compute(p, cat, nil) // must not panic
	if len(pcrs.Boxes) != 4 {
		t.Fatalf("got %d boxes", len(pcrs.Boxes))
	}
}

func TestFitOutCoversAndFitInContained(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cat := UniformCatalog(9)
	cache := NewQuantileCache()
	for pi, p := range testPDFs(rng) {
		pcrs := Compute(p, cat, cache)
		out := FitOut(pcrs)
		in := FitIn(pcrs)
		if err := Validate(out, in, pcrs); err != nil {
			t.Fatalf("pdf %d: %v", pi, err)
		}
	}
}

func TestFitOutTightness(t *testing.T) {
	// For a uniform rect the marginal quantiles are linear in p, so the
	// optimal cfb_out must reproduce the PCRs exactly (zero slack).
	cat := UniformCatalog(5)
	p := updf.NewUniformRect(geom.NewRect(geom.Point{0, 0}, geom.Point{100, 50}))
	pcrs := Compute(p, cat, nil)
	out := FitOut(pcrs)
	in := FitIn(pcrs)
	for j := 0; j < cat.Size(); j++ {
		pj := cat.Value(j)
		ob := out.Rect(pj)
		ib := in.Rect(pj)
		box := pcrs.Boxes[j]
		for i := 0; i < 2; i++ {
			if math.Abs(ob.Lo[i]-box.Lo[i]) > 1e-6 || math.Abs(ob.Hi[i]-box.Hi[i]) > 1e-6 {
				t.Fatalf("cfb_out not tight for linear PCRs at j=%d: %v vs %v", j, ob, box)
			}
			if math.Abs(ib.Lo[i]-box.Lo[i]) > 1e-6 || math.Abs(ib.Hi[i]-box.Hi[i]) > 1e-6 {
				t.Fatalf("cfb_in not tight for linear PCRs at j=%d: %v vs %v", j, ib, box)
			}
		}
	}
}

func TestCFBRectCollapsesInversion(t *testing.T) {
	c := CFB{
		AlphaLo: []float64{10}, BetaLo: []float64{-20}, // lo(p) = 10 + 20p
		AlphaHi: []float64{12}, BetaHi: []float64{0}, // hi(p) = 12
	}
	r := c.Rect(0.5) // lo = 20 > hi = 12 → midpoint 16
	if r.Lo[0] != 16 || r.Hi[0] != 16 {
		t.Fatalf("inverted faces not collapsed: %v", r)
	}
}

// exactProb returns the ground-truth appearance probability.
func exactProb(p updf.PDF, rq geom.Rect) float64 {
	return p.(updf.ExactProber).ExactProb(rq)
}

// randomQuery builds query rectangles that stress all geometric relations:
// far, overlapping, contained, containing, and slab-shaped.
func randomQuery(rng *rand.Rand, mbr geom.Rect) geom.Rect {
	cx := mbr.Lo[0] + rng.Float64()*3*mbr.Side(0) - mbr.Side(0)
	cy := mbr.Lo[1] + rng.Float64()*3*mbr.Side(1) - mbr.Side(1)
	w := rng.Float64() * 2.5 * mbr.Side(0)
	h := rng.Float64() * 2.5 * mbr.Side(1)
	if rng.Intn(4) == 0 {
		// Slab: very wide on one axis to trigger Rule 3/4/5 coverage.
		w = 10 * mbr.Side(0)
	}
	return geom.NewRect(geom.Point{cx - w/2, cy - h/2}, geom.Point{cx + w/2, cy + h/2})
}

// assertSound checks the fundamental guarantee of every filter: pruning
// implies the object truly fails the query, validation implies it truly
// qualifies. The tolerance absorbs quadrature error in the oracles.
func assertSound(t *testing.T, name string, outcome Outcome, truth, pq float64) {
	t.Helper()
	const tol = 1e-5
	switch outcome {
	case Pruned:
		if truth >= pq+tol {
			t.Fatalf("%s: FALSE NEGATIVE: pruned object with P_app=%.8f ≥ pq=%g", name, truth, pq)
		}
	case Validated:
		if truth < pq-tol {
			t.Fatalf("%s: FALSE POSITIVE: validated object with P_app=%.8f < pq=%g", name, truth, pq)
		}
	}
}

func TestFilterExactSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range testPDFs(rng) {
		mbr := p.MBR()
		for trial := 0; trial < 300; trial++ {
			rq := randomQuery(rng, mbr)
			pq := 0.02 + rng.Float64()*0.96
			outcome := FilterExact(p, rq, pq)
			assertSound(t, "FilterExact", outcome, exactProb(p, rq), pq)
		}
	}
}

func TestFilterCatalogPCRSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cache := NewQuantileCache()
	for _, m := range []int{3, 9} {
		cat := UniformCatalog(m)
		for _, p := range testPDFs(rng) {
			pcrs := Compute(p, cat, cache)
			mbr := p.MBR()
			for trial := 0; trial < 200; trial++ {
				rq := randomQuery(rng, mbr)
				pq := 0.02 + rng.Float64()*0.96
				outcome := FilterCatalogPCR(pcrs, mbr, rq, pq)
				assertSound(t, "FilterCatalogPCR", outcome, exactProb(p, rq), pq)
			}
		}
	}
}

func TestFilterCFBSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cache := NewQuantileCache()
	for _, m := range []int{3, 15} {
		cat := UniformCatalog(m)
		for _, p := range testPDFs(rng) {
			pcrs := Compute(p, cat, cache)
			out := FitOut(pcrs)
			in := FitIn(pcrs)
			mbr := p.MBR()
			for trial := 0; trial < 200; trial++ {
				rq := randomQuery(rng, mbr)
				pq := 0.02 + rng.Float64()*0.96
				outcome := FilterCFB(out, in, cat, mbr, rq, pq)
				assertSound(t, "FilterCFB", outcome, exactProb(p, rq), pq)
			}
		}
	}
}

func TestFilterTrivialCases(t *testing.T) {
	p := updf.NewUniformBall(geom.Point{100, 100}, 50)
	cat := UniformCatalog(5)
	pcrs := Compute(p, cat, nil)
	out := FitOut(pcrs)
	in := FitIn(pcrs)
	mbr := p.MBR()

	far := geom.NewRect(geom.Point{900, 900}, geom.Point{950, 950})
	covering := geom.NewRect(geom.Point{0, 0}, geom.Point{200, 200})

	for _, pq := range []float64{0.1, 0.5, 0.9} {
		if got := FilterCatalogPCR(pcrs, mbr, far, pq); got != Pruned {
			t.Errorf("pq=%g: disjoint query not pruned (PCR): %v", pq, got)
		}
		if got := FilterCatalogPCR(pcrs, mbr, covering, pq); got != Validated {
			t.Errorf("pq=%g: covering query not validated (PCR): %v", pq, got)
		}
		if got := FilterCFB(out, in, cat, mbr, far, pq); got != Pruned {
			t.Errorf("pq=%g: disjoint query not pruned (CFB): %v", pq, got)
		}
		if got := FilterCFB(out, in, cat, mbr, covering, pq); got != Validated {
			t.Errorf("pq=%g: covering query not validated (CFB): %v", pq, got)
		}
		if got := FilterExact(p, far, pq); got != Pruned {
			t.Errorf("pq=%g: disjoint query not pruned (exact): %v", pq, got)
		}
		if got := FilterExact(p, covering, pq); got != Validated {
			t.Errorf("pq=%g: covering query not validated (exact): %v", pq, got)
		}
	}
}

func TestFilterPaperScenarios(t *testing.T) {
	// Reconstruction of Figure 3/4's reasoning with a uniform square:
	// pcr(0.2) faces sit at the 20% / 80% quantiles.
	p := updf.NewUniformRect(geom.NewRect(geom.Point{0, 0}, geom.Point{100, 100}))
	cat, err := NewCatalog([]float64{0, 0.1, 0.2, 0.3, 0.4, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pcrs := Compute(p, cat, nil)
	mbr := p.MBR()

	// Query q1 ~ Fig 3a: pq=0.8; rq covers most of the object but not all
	// of pcr(0.2) (cut at x=75 < 80) → Rule 1 prunes: P_app ≤ 0.75 < 0.8.
	rq1 := geom.NewRect(geom.Point{-10, -10}, geom.Point{75, 110})
	if got := FilterCatalogPCR(pcrs, mbr, rq1, 0.8); got != Pruned {
		t.Errorf("q1 (Rule 1): got %v, want pruned (true P=%g)", got, exactProb(p, rq1))
	}

	// Query q2: pq=0.2, rq beyond pcr(0.2)'s right face → Rule 2 prunes.
	rq2 := geom.NewRect(geom.Point{85, -10}, geom.Point{130, 110})
	if got := FilterCatalogPCR(pcrs, mbr, rq2, 0.2); got != Pruned {
		t.Errorf("q2 (Rule 2): got %v, want pruned (true P=%g)", got, exactProb(p, rq2))
	}

	// Query q3 ~ Fig 3b: pq=0.6, rq covers the full vertical slab between
	// the 0.2-quantile planes (x ∈ [15, 85] ⊇ [20, 80]) → Rule 3 validates.
	rq3 := geom.NewRect(geom.Point{15, -10}, geom.Point{85, 110})
	if got := FilterCatalogPCR(pcrs, mbr, rq3, 0.6); got != Validated {
		t.Errorf("q3 (Rule 3): got %v, want validated (true P=%g)", got, exactProb(p, rq3))
	}

	// Query q4: pq=0.8, rq covers everything right of the 0.2-quantile
	// plane (x ≥ 15 ≤ 20) → Rule 4 validates (mass ≥ 0.8).
	rq4 := geom.NewRect(geom.Point{15, -10}, geom.Point{110, 110})
	if got := FilterCatalogPCR(pcrs, mbr, rq4, 0.8); got != Validated {
		t.Errorf("q4 (Rule 4): got %v, want validated (true P=%g)", got, exactProb(p, rq4))
	}

	// Query q5: pq=0.2, rq covers everything left of pcr's low face on x
	// (x ≤ 25 ≥ 20) → Rule 5 validates (mass ≥ 0.2).
	rq5 := geom.NewRect(geom.Point{-10, -10}, geom.Point{25, 110})
	if got := FilterCatalogPCR(pcrs, mbr, rq5, 0.2); got != Validated {
		t.Errorf("q5 (Rule 5): got %v, want validated (true P=%g)", got, exactProb(p, rq5))
	}
}

func TestCoversSlab(t *testing.T) {
	mbr := geom.NewRect(geom.Point{0, 0}, geom.Point{10, 10})
	// rq covers dim-1 fully and x ∈ [2, 8]: slab [3, 7] covered.
	rq := geom.NewRect(geom.Point{2, -1}, geom.Point{8, 11})
	if !coversSlab(rq, mbr, 0, 3, 7) {
		t.Error("covered slab reported uncovered")
	}
	if coversSlab(rq, mbr, 0, 1, 7) {
		t.Error("slab extending past rq reported covered")
	}
	// rq not covering the other dimension.
	rq2 := geom.NewRect(geom.Point{2, 1}, geom.Point{8, 11})
	if coversSlab(rq2, mbr, 0, 3, 7) {
		t.Error("slab with uncovered cross-dimension reported covered")
	}
	// Empty slab (planes outside the MBR) must not validate.
	if coversSlab(rq, mbr, 0, 12, 15) {
		t.Error("empty slab reported covered")
	}
	// Infinite planes: slab clipped to MBR.
	rq3 := geom.NewRect(geom.Point{-1, -1}, geom.Point{5, 11})
	if !coversSlab(rq3, mbr, 0, math.Inf(-1), 5) {
		t.Error("left-infinite slab should be covered")
	}
	if coversSlab(rq3, mbr, 0, math.Inf(-1), 6) {
		t.Error("slab wider than rq reported covered")
	}
}

func TestOutcomeString(t *testing.T) {
	if Unknown.String() != "unknown" || Pruned.String() != "pruned" || Validated.String() != "validated" {
		t.Fatal("Outcome.String broken")
	}
}

// TestCFBWeakerThanPCR verifies the paper's observation that CFB rules have
// weaker (never stronger) pruning/validation power than catalog PCR rules:
// whenever CFB decides, PCR agrees (on the same catalog).
func TestCFBNeverContradictsPCR(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cat := UniformCatalog(9)
	cache := NewQuantileCache()
	for _, p := range testPDFs(rng) {
		pcrs := Compute(p, cat, cache)
		out := FitOut(pcrs)
		in := FitIn(pcrs)
		mbr := p.MBR()
		for trial := 0; trial < 300; trial++ {
			rq := randomQuery(rng, mbr)
			pq := 0.02 + rng.Float64()*0.96
			cfbOutcome := FilterCFB(out, in, cat, mbr, rq, pq)
			pcrOutcome := FilterCatalogPCR(pcrs, mbr, rq, pq)
			if cfbOutcome != Unknown && pcrOutcome != Unknown && cfbOutcome != pcrOutcome {
				t.Fatalf("CFB %v contradicts PCR %v (pq=%g rq=%v)", cfbOutcome, pcrOutcome, pq, rq)
			}
		}
	}
}

// TestComputePinsPCR0ToMBR: pcr(0) must be the uncertainty region MBR
// bit-for-bit, no matter which same-shape object warmed the quantile
// cache. The cached quantile offsets are relative to the seed object's
// center, so ctr + (q − ctr') can round a hair inside the true MBR for
// other centers; a pcr(0) even 1e-13 inside the MBR breaks the strict
// containment chain that delete descents rely on (regression: map-order
// dependent delete failures after BulkLoad).
func TestComputePinsPCR0ToMBR(t *testing.T) {
	cat := UniformCatalog(15)
	qc := NewQuantileCache()
	rng := rand.New(rand.NewSource(2000000))
	for i := 0; i < 500; i++ {
		ctr := geom.Point{250 + rng.Float64()*9500, 250 + rng.Float64()*9500}
		ball := updf.NewUniformBall(ctr, 250)
		pcrs := Compute(ball, cat, qc) // first iteration warms the shared cache
		mbr := ball.MBR()
		for d := 0; d < 2; d++ {
			if pcrs.Boxes[0].Lo[d] > mbr.Lo[d] || pcrs.Boxes[0].Hi[d] < mbr.Hi[d] {
				t.Fatalf("object %d: pcr(0) %v does not cover MBR %v", i, pcrs.Boxes[0], mbr)
			}
		}
	}
}
