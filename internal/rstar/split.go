// Package rstar implements the R*-tree of Beckmann et al. (SIGMOD 1990),
// the access method the U-tree paper builds on (Section 2.2): insertion
// with ChooseSubtree, margin-driven split (axis selection + distribution
// selection), forced reinsertion, and deletion with tree condensation.
//
// Beyond the standalone in-memory tree, the package exports the split and
// reinsertion primitives (SplitGroups, ReinsertOrder) that the paged U-tree
// reuses with its summed penalty metrics (Section 5.3 of the U-tree paper).
package rstar

import (
	"sort"

	"repro/internal/geom"
)

// SplitGroups partitions the given rectangles into two groups following the
// R*-tree split algorithm: choose the axis minimizing the summed margins of
// all candidate distributions, then the distribution minimizing overlap
// (ties: minimum total area). minFill is the minimum number of entries per
// group (R* uses 40% of capacity). It returns the index sets of the two
// groups; every index appears in exactly one group.
func SplitGroups(rects []geom.Rect, minFill int) (left, right []int) {
	n := len(rects)
	if minFill < 1 {
		minFill = 1
	}
	if n < 2*minFill {
		panic("rstar: too few entries to split at the requested fill")
	}
	d := rects[0].Dim()

	bestAxis := -1
	bestMargin := 0.0
	type axisOrder struct{ byLo, byHi []int }
	orders := make([]axisOrder, d)

	for axis := 0; axis < d; axis++ {
		byLo := sortedIdx(n, func(a, b int) bool {
			if rects[a].Lo[axis] != rects[b].Lo[axis] {
				return rects[a].Lo[axis] < rects[b].Lo[axis]
			}
			return rects[a].Hi[axis] < rects[b].Hi[axis]
		})
		byHi := sortedIdx(n, func(a, b int) bool {
			if rects[a].Hi[axis] != rects[b].Hi[axis] {
				return rects[a].Hi[axis] < rects[b].Hi[axis]
			}
			return rects[a].Lo[axis] < rects[b].Lo[axis]
		})
		orders[axis] = axisOrder{byLo, byHi}

		margin := 0.0
		for _, ord := range [][]int{byLo, byHi} {
			for k := minFill; k <= n-minFill; k++ {
				margin += mbrOf(rects, ord[:k]).Margin() + mbrOf(rects, ord[k:]).Margin()
			}
		}
		if bestAxis < 0 || margin < bestMargin {
			bestAxis, bestMargin = axis, margin
		}
	}

	// Distribution selection on the chosen axis.
	var bestL, bestR []int
	bestOverlap, bestArea := 0.0, 0.0
	first := true
	for _, ord := range [][]int{orders[bestAxis].byLo, orders[bestAxis].byHi} {
		for k := minFill; k <= n-minFill; k++ {
			l, r := ord[:k], ord[k:]
			bl, br := mbrOf(rects, l), mbrOf(rects, r)
			ov := bl.Overlap(br)
			ar := bl.Area() + br.Area()
			if first || ov < bestOverlap || (ov == bestOverlap && ar < bestArea) {
				first = false
				bestOverlap, bestArea = ov, ar
				bestL = append(bestL[:0], l...)
				bestR = append(bestR[:0], r...)
			}
		}
	}
	return bestL, bestR
}

func sortedIdx(n int, less func(a, b int) bool) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return less(idx[i], idx[j]) })
	return idx
}

func mbrOf(rects []geom.Rect, idx []int) geom.Rect {
	u := rects[idx[0]].Clone()
	for _, i := range idx[1:] {
		u.UnionInPlace(rects[i])
	}
	return u
}

// ReinsertOrder implements the forced-reinsertion selection: it returns all
// indices sorted by decreasing distance between each rectangle's centroid
// and the node MBR's centroid. The caller removes the first p entries and
// reinserts them closest-first (R*'s "close reinsert").
func ReinsertOrder(rects []geom.Rect, nodeMBR geom.Rect) []int {
	center := nodeMBR.Center()
	idx := sortedIdx(len(rects), func(a, b int) bool {
		return rects[a].Center().Dist(center) > rects[b].Center().Dist(center)
	})
	return idx
}
