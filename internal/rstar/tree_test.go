package rstar

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randRect(rng *rand.Rand, dim int, span, maxSide float64) geom.Rect {
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for i := 0; i < dim; i++ {
		a := rng.Float64() * span
		lo[i] = a
		hi[i] = a + rng.Float64()*maxSide
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// bruteSearch is the correctness oracle.
type bruteItem struct {
	rect geom.Rect
	id   int
}

func bruteSearch(items []bruteItem, rq geom.Rect) []int {
	var out []int
	for _, it := range items {
		if it.rect.Intersects(rq) {
			out = append(out, it.id)
		}
	}
	sort.Ints(out)
	return out
}

func sortedIDs(raw []any) []int {
	out := make([]int, len(raw))
	for i, v := range raw {
		out[i] = v.(int)
	}
	sort.Ints(out)
	return out
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInsertSearchAgainstBruteForce(t *testing.T) {
	for _, dim := range []int{2, 3} {
		rng := rand.New(rand.NewSource(int64(dim)))
		tree := NewTree(dim, 16)
		var items []bruteItem
		for i := 0; i < 3000; i++ {
			r := randRect(rng, dim, 1000, 30)
			tree.Insert(r, i)
			items = append(items, bruteItem{r, i})
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("dim %d: %v", dim, err)
		}
		if tree.Len() != 3000 {
			t.Fatalf("dim %d: Len = %d", dim, tree.Len())
		}
		for q := 0; q < 100; q++ {
			rq := randRect(rng, dim, 1000, 120)
			got := sortedIDs(tree.Search(rq))
			want := bruteSearch(items, rq)
			if !equalIDs(got, want) {
				t.Fatalf("dim %d query %d: got %d results, want %d", dim, q, len(got), len(want))
			}
		}
	}
}

func TestDeleteAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tree := NewTree(2, 12)
	var items []bruteItem
	for i := 0; i < 1500; i++ {
		r := randRect(rng, 2, 500, 20)
		tree.Insert(r, i)
		items = append(items, bruteItem{r, i})
	}
	// Delete a random half.
	perm := rng.Perm(len(items))
	var remaining []bruteItem
	deleted := make(map[int]bool)
	for _, idx := range perm[:750] {
		if !tree.Delete(items[idx].rect, items[idx].id) {
			t.Fatalf("delete of existing item %d failed", items[idx].id)
		}
		deleted[items[idx].id] = true
	}
	for _, it := range items {
		if !deleted[it.id] {
			remaining = append(remaining, it)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 750 {
		t.Fatalf("Len = %d, want 750", tree.Len())
	}
	for q := 0; q < 60; q++ {
		rq := randRect(rng, 2, 500, 80)
		got := sortedIDs(tree.Search(rq))
		want := bruteSearch(remaining, rq)
		if !equalIDs(got, want) {
			t.Fatalf("query %d after deletes: got %v, want %v", q, got, want)
		}
	}
}

func TestDeleteNonexistent(t *testing.T) {
	tree := NewTree(2, 8)
	r := randRect(rand.New(rand.NewSource(1)), 2, 10, 2)
	tree.Insert(r, 1)
	if tree.Delete(r, 2) {
		t.Fatal("deleted item with wrong payload")
	}
	other := geom.NewRect(geom.Point{900, 900}, geom.Point{901, 901})
	if tree.Delete(other, 1) {
		t.Fatal("deleted item with wrong rect")
	}
	if !tree.Delete(r, 1) {
		t.Fatal("failed to delete existing item")
	}
	if tree.Len() != 0 {
		t.Fatalf("Len = %d", tree.Len())
	}
}

func TestDeleteAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tree := NewTree(2, 8)
	type rec struct {
		r  geom.Rect
		id int
	}
	var recs []rec
	for i := 0; i < 400; i++ {
		r := randRect(rng, 2, 100, 5)
		tree.Insert(r, i)
		recs = append(recs, rec{r, i})
	}
	for _, rc := range recs {
		if !tree.Delete(rc.r, rc.id) {
			t.Fatalf("failed to delete %d", rc.id)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("after deleting %d: %v", rc.id, err)
		}
	}
	if tree.Len() != 0 || tree.Height() != 1 {
		t.Fatalf("Len=%d Height=%d after delete-all", tree.Len(), tree.Height())
	}
	// Tree remains usable.
	tree.Insert(recs[0].r, 99)
	if got := tree.Search(recs[0].r); len(got) != 1 || got[0].(int) != 99 {
		t.Fatalf("search after delete-all: %v", got)
	}
}

func TestRandomInterleavedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tree := NewTree(2, 10)
	live := map[int]geom.Rect{}
	nextID := 0
	for step := 0; step < 5000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			r := randRect(rng, 2, 300, 15)
			tree.Insert(r, nextID)
			live[nextID] = r
			nextID++
		} else {
			// Delete a random live item.
			var pick int
			k := rng.Intn(len(live))
			for id := range live {
				if k == 0 {
					pick = id
					break
				}
				k--
			}
			if !tree.Delete(live[pick], pick) {
				t.Fatalf("step %d: delete %d failed", step, pick)
			}
			delete(live, pick)
		}
		if step%500 == 0 {
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != len(live) {
		t.Fatalf("Len=%d, want %d", tree.Len(), len(live))
	}
	// Final search correctness.
	var items []bruteItem
	for id, r := range live {
		items = append(items, bruteItem{r, id})
	}
	for q := 0; q < 40; q++ {
		rq := randRect(rng, 2, 300, 60)
		got := sortedIDs(tree.Search(rq))
		want := bruteSearch(items, rq)
		if !equalIDs(got, want) {
			t.Fatalf("final query %d mismatch", q)
		}
	}
}

func TestDuplicateRectsAndPoints(t *testing.T) {
	tree := NewTree(2, 6)
	pt := geom.RectFromPoint(geom.Point{5, 5})
	for i := 0; i < 100; i++ {
		tree.Insert(pt, i)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tree.Search(pt)
	if len(got) != 100 {
		t.Fatalf("found %d of 100 identical points", len(got))
	}
	for i := 0; i < 100; i++ {
		if !tree.Delete(pt, i) {
			t.Fatalf("delete duplicate %d failed", i)
		}
	}
	if tree.Len() != 0 {
		t.Fatal("leftovers after deleting duplicates")
	}
}

func TestSplitGroupsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 8 + rng.Intn(20)
		minFill := 2 + rng.Intn(n/4)
		rects := make([]geom.Rect, n)
		for i := range rects {
			rects[i] = randRect(rng, 2, 100, 20)
		}
		l, r := SplitGroups(rects, minFill)
		if len(l) < minFill || len(r) < minFill {
			t.Fatalf("fill violated: %d/%d with minFill %d", len(l), len(r), minFill)
		}
		seen := make([]bool, n)
		for _, i := range append(append([]int{}, l...), r...) {
			if seen[i] {
				t.Fatalf("index %d in both groups", i)
			}
			seen[i] = true
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("index %d lost by split", i)
			}
		}
	}
}

func TestSplitGroupsSeparatesClusters(t *testing.T) {
	// Two well-separated clusters must be split apart.
	var rects []geom.Rect
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		rects = append(rects, randRect(rng, 2, 10, 2))
	}
	for i := 0; i < 10; i++ {
		r := randRect(rng, 2, 10, 2)
		for j := range r.Lo {
			r.Lo[j] += 1000
			r.Hi[j] += 1000
		}
		rects = append(rects, r)
	}
	l, r := SplitGroups(rects, 4)
	check := func(group []int) bool {
		low := 0
		for _, i := range group {
			if i < 10 {
				low++
			}
		}
		return low == 0 || low == len(group)
	}
	if !check(l) || !check(r) {
		t.Fatalf("clusters mixed: %v | %v", l, r)
	}
}

func TestReinsertOrder(t *testing.T) {
	rects := []geom.Rect{
		geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1}),     // near origin
		geom.NewRect(geom.Point{50, 50}, geom.Point{51, 51}), // center-ish
		geom.NewRect(geom.Point{99, 99}, geom.Point{100, 100}),
	}
	mbr := geom.MBR(rects...)
	order := ReinsertOrder(rects, mbr)
	// Farthest first: corners before the center element.
	if order[len(order)-1] != 1 {
		t.Fatalf("center rect should be last (closest), got order %v", order)
	}
}

func TestConstructorPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewTree(0, 8) },
		func() { NewTree(2, 3) },
		func() { NewTree(2, 8).Insert(geom.NewRect(geom.Point{0}, geom.Point{1}), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestHeightGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tree := NewTree(2, 8)
	if tree.Height() != 1 {
		t.Fatalf("empty tree height = %d", tree.Height())
	}
	for i := 0; i < 1000; i++ {
		tree.Insert(randRect(rng, 2, 100, 3), i)
	}
	if tree.Height() < 3 {
		t.Fatalf("height = %d after 1000 inserts with cap 8", tree.Height())
	}
}
