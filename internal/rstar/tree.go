package rstar

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Tree is an in-memory R*-tree over rectangles with opaque comparable
// payloads. It is fully dynamic: inserts and deletes may interleave freely.
type Tree struct {
	dim      int
	maxE     int // M: max entries per node
	minE     int // m: min entries per node (40% of M)
	root     *node
	size     int
	reinsert int // p: entries removed on forced reinsertion (30% of M)
}

type node struct {
	level   int // 0 = leaf
	entries []entry
}

type entry struct {
	rect  geom.Rect
	child *node // non-nil for internal entries
	item  any   // payload for leaf entries
}

func (n *node) leaf() bool { return n.level == 0 }

func (n *node) mbr() geom.Rect {
	u := n.entries[0].rect.Clone()
	for _, e := range n.entries[1:] {
		u.UnionInPlace(e.rect)
	}
	return u
}

// NewTree creates an R*-tree for dim-dimensional rectangles with the given
// node capacity (maximum entries per node, ≥ 4).
func NewTree(dim, capacity int) *Tree {
	if dim < 1 {
		panic("rstar: dimensionality must be positive")
	}
	if capacity < 4 {
		panic("rstar: capacity must be at least 4")
	}
	minE := capacity * 2 / 5 // 40%
	if minE < 1 {
		minE = 1
	}
	reins := capacity * 3 / 10 // 30%
	if reins < 1 {
		reins = 1
	}
	return &Tree{
		dim:      dim,
		maxE:     capacity,
		minE:     minE,
		reinsert: reins,
		root:     &node{level: 0},
	}
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a lone leaf root).
func (t *Tree) Height() int { return t.root.level + 1 }

// Insert adds an item with the given bounding rectangle.
func (t *Tree) Insert(rect geom.Rect, item any) {
	if rect.Dim() != t.dim {
		panic(fmt.Sprintf("rstar: rect dim %d, tree dim %d", rect.Dim(), t.dim))
	}
	reinserted := make(map[int]bool)
	t.insertAtLevel(entry{rect: rect.Clone(), item: item}, 0, reinserted)
	t.size++
}

// insertAtLevel inserts e so that it lands on a node of the given level.
// reinserted tracks which levels already used forced reinsertion during this
// top-level operation (R* allows it once per level).
func (t *Tree) insertAtLevel(e entry, level int, reinserted map[int]bool) {
	n, path := t.chooseNode(e.rect, level)
	n.entries = append(n.entries, e)
	t.adjustPath(path, n, e.rect)
	if len(n.entries) > t.maxE {
		t.overflow(n, path, reinserted)
	}
}

// chooseNode descends from the root to a node at the target level using the
// R* ChooseSubtree criterion, returning the node and the root-to-parent
// path.
func (t *Tree) chooseNode(rect geom.Rect, level int) (*node, []*node) {
	n := t.root
	var path []*node
	for n.level > level {
		path = append(path, n)
		best := t.chooseSubtreeIndex(n, rect)
		n = n.entries[best].child
	}
	return n, path
}

// chooseSubtreeIndex applies R* ChooseSubtree: minimal overlap enlargement
// when children are leaves, else minimal area enlargement; ties by area.
func (t *Tree) chooseSubtreeIndex(n *node, rect geom.Rect) int {
	best := 0
	if n.level == 1 {
		// Children are leaves: minimize overlap enlargement.
		bestOverlap, bestEnl, bestArea := math.Inf(1), math.Inf(1), math.Inf(1)
		for i, e := range n.entries {
			grown := e.rect.Union(rect)
			var before, after float64
			for j, o := range n.entries {
				if j == i {
					continue
				}
				before += e.rect.Overlap(o.rect)
				after += grown.Overlap(o.rect)
			}
			dOv := after - before
			enl := e.rect.Enlargement(rect)
			area := e.rect.Area()
			if dOv < bestOverlap ||
				(dOv == bestOverlap && enl < bestEnl) ||
				(dOv == bestOverlap && enl == bestEnl && area < bestArea) {
				bestOverlap, bestEnl, bestArea, best = dOv, enl, area, i
			}
		}
		return best
	}
	bestEnl, bestArea := math.Inf(1), math.Inf(1)
	for i, e := range n.entries {
		enl := e.rect.Enlargement(rect)
		area := e.rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			bestEnl, bestArea, best = enl, area, i
		}
	}
	return best
}

// adjustPath grows the parent entries along the insertion path to cover
// rect. Parent entry lookup is by child identity: the child of path[i] is
// path[i+1], except for the last path element whose child is target.
func (t *Tree) adjustPath(path []*node, target *node, rect geom.Rect) {
	for i := len(path) - 1; i >= 0; i-- {
		parent := path[i]
		child := target
		if i+1 < len(path) {
			child = path[i+1]
		}
		for j := range parent.entries {
			if parent.entries[j].child == child {
				parent.entries[j].rect.UnionInPlace(rect)
				break
			}
		}
	}
}

// refreshEntry recomputes the parent entry rectangle of child within parent.
func refreshEntry(parent *node, child *node) {
	for j := range parent.entries {
		if parent.entries[j].child == child {
			parent.entries[j].rect = child.mbr()
			return
		}
	}
}

// overflow handles a node exceeding capacity: forced reinsertion on the
// first overflow at a level (unless it is the root), split otherwise.
func (t *Tree) overflow(n *node, path []*node, reinserted map[int]bool) {
	if n != t.root && !reinserted[n.level] {
		reinserted[n.level] = true
		t.forceReinsert(n, path, reinserted)
		return
	}
	t.split(n, path, reinserted)
}

// forceReinsert removes the p entries farthest from the node's centroid and
// reinserts them (closest first).
func (t *Tree) forceReinsert(n *node, path []*node, reinserted map[int]bool) {
	rects := make([]geom.Rect, len(n.entries))
	for i, e := range n.entries {
		rects[i] = e.rect
	}
	order := ReinsertOrder(rects, n.mbr())
	p := t.reinsert
	removed := make([]entry, 0, p)
	removeSet := make(map[int]bool, p)
	for _, i := range order[:p] {
		removeSet[i] = true
	}
	kept := n.entries[:0]
	for i, e := range n.entries {
		if removeSet[i] {
			removed = append(removed, e)
		} else {
			kept = append(kept, e)
		}
	}
	n.entries = kept
	// Tighten ancestors now that entries left.
	t.tightenPath(path, n)
	// Close reinsert: nearest to the centroid first (they were selected as
	// the farthest; reinsert in reverse order of distance).
	for i := len(removed) - 1; i >= 0; i-- {
		t.insertAtLevel(removed[i], n.level, reinserted)
	}
}

// tightenPath recomputes parent entry MBRs bottom-up after removals.
func (t *Tree) tightenPath(path []*node, leafmost *node) {
	child := leafmost
	for i := len(path) - 1; i >= 0; i-- {
		refreshEntry(path[i], child)
		child = path[i]
	}
}

// split divides an overflowing node with the R* split and pushes the new
// sibling up, splitting ancestors as needed.
func (t *Tree) split(n *node, path []*node, reinserted map[int]bool) {
	rects := make([]geom.Rect, len(n.entries))
	for i, e := range n.entries {
		rects[i] = e.rect
	}
	li, ri := SplitGroups(rects, t.minE)
	le := make([]entry, 0, len(li))
	re := make([]entry, 0, len(ri))
	for _, i := range li {
		le = append(le, n.entries[i])
	}
	for _, i := range ri {
		re = append(re, n.entries[i])
	}
	n.entries = le
	sibling := &node{level: n.level, entries: re}

	if n == t.root {
		newRoot := &node{level: n.level + 1}
		newRoot.entries = []entry{
			{rect: n.mbr(), child: n},
			{rect: sibling.mbr(), child: sibling},
		}
		t.root = newRoot
		return
	}
	parent := path[len(path)-1]
	refreshEntry(parent, n)
	parent.entries = append(parent.entries, entry{rect: sibling.mbr(), child: sibling})
	t.tightenPath(path[:len(path)-1], parent)
	if len(parent.entries) > t.maxE {
		t.overflow(parent, path[:len(path)-1], reinserted)
	}
}

// Search returns the payloads of all items whose rectangles intersect rq.
func (t *Tree) Search(rq geom.Rect) []any {
	var out []any
	var visit func(n *node)
	visit = func(n *node) {
		for _, e := range n.entries {
			if !e.rect.Intersects(rq) {
				continue
			}
			if n.leaf() {
				out = append(out, e.item)
			} else {
				visit(e.child)
			}
		}
	}
	visit(t.root)
	return out
}

// Delete removes the item with the given rectangle and payload (compared
// with ==). It reports whether a matching entry was found.
func (t *Tree) Delete(rect geom.Rect, item any) bool {
	leaf, path, idx := t.findLeaf(t.root, nil, rect, item)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(leaf, path)
	return true
}

// findLeaf locates the leaf holding (rect, item) by exhaustive overlap
// descent.
func (t *Tree) findLeaf(n *node, path []*node, rect geom.Rect, item any) (*node, []*node, int) {
	if n.leaf() {
		for i, e := range n.entries {
			if e.item == item && e.rect.Equal(rect) {
				return n, path, i
			}
		}
		return nil, nil, -1
	}
	for _, e := range n.entries {
		if e.rect.Contains(rect) {
			if leaf, p, i := t.findLeaf(e.child, append(path, n), rect, item); leaf != nil {
				return leaf, p, i
			}
		}
	}
	return nil, nil, -1
}

// condense implements CondenseTree: underfull nodes along the path are
// removed and their entries reinserted at their original level; the root is
// collapsed when it has a single child.
func (t *Tree) condense(n *node, path []*node) {
	type orphan struct {
		e     entry
		level int
	}
	var orphans []orphan

	for i := len(path) - 1; i >= 0; i-- {
		parent := path[i]
		if len(n.entries) < t.minE {
			// Remove n from its parent, orphan its entries.
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries = append(parent.entries[:j], parent.entries[j+1:]...)
					break
				}
			}
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e, n.level})
			}
		} else {
			refreshEntry(parent, n)
		}
		n = parent
	}

	// Root adjustments.
	if !t.root.leaf() && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf() && len(t.root.entries) == 0 {
		t.root = &node{level: 0}
	}

	// Reinsert orphans at their levels (deepest payload entries are level-0)
	// so leaf depth stays uniform. If the tree shrank below an orphan
	// subtree's level, fall back to reinserting its leaf items one by one.
	for _, o := range orphans {
		reinserted := make(map[int]bool)
		switch {
		case o.level == 0:
			t.insertAtLevel(o.e, 0, reinserted)
		case o.level <= t.root.level:
			t.insertAtLevel(o.e, o.level, reinserted)
		default:
			for _, le := range collectLeafEntries(o.e.child) {
				t.insertAtLevel(le, 0, make(map[int]bool))
			}
		}
	}
}

// collectLeafEntries gathers every leaf entry in the subtree rooted at n.
func collectLeafEntries(n *node) []entry {
	if n.leaf() {
		return append([]entry(nil), n.entries...)
	}
	var out []entry
	for _, e := range n.entries {
		out = append(out, collectLeafEntries(e.child)...)
	}
	return out
}

// CheckInvariants validates structural invariants; tests call it after
// random workloads. It returns an error describing the first violation.
func (t *Tree) CheckInvariants() error {
	count := 0
	var walk func(n *node, isRoot bool) (geom.Rect, error)
	walk = func(n *node, isRoot bool) (geom.Rect, error) {
		if len(n.entries) == 0 {
			if isRoot {
				return geom.Rect{}, nil
			}
			return geom.Rect{}, fmt.Errorf("rstar: empty non-root node at level %d", n.level)
		}
		if !isRoot && len(n.entries) < t.minE {
			return geom.Rect{}, fmt.Errorf("rstar: underfull node: %d < %d", len(n.entries), t.minE)
		}
		if len(n.entries) > t.maxE {
			return geom.Rect{}, fmt.Errorf("rstar: overfull node: %d > %d", len(n.entries), t.maxE)
		}
		if n.leaf() {
			count += len(n.entries)
			return n.mbr(), nil
		}
		for _, e := range n.entries {
			if e.child.level != n.level-1 {
				return geom.Rect{}, fmt.Errorf("rstar: level mismatch: child %d under %d", e.child.level, n.level)
			}
			childMBR, err := walk(e.child, false)
			if err != nil {
				return geom.Rect{}, err
			}
			if !e.rect.Equal(childMBR) {
				if !e.rect.Contains(childMBR) {
					return geom.Rect{}, fmt.Errorf("rstar: parent entry %v does not cover child MBR %v", e.rect, childMBR)
				}
			}
		}
		return n.mbr(), nil
	}
	if _, err := walk(t.root, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rstar: size %d but %d leaf entries", t.size, count)
	}
	return nil
}
