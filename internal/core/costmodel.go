package core

import (
	"fmt"

	"repro/internal/geom"
)

// The paper's conclusion names analytical cost models (in the spirit of
// Theodoridis & Sellis [12]) as future work: predict a prob-range query's
// node accesses without executing it, for use in query optimization. This
// file implements that model for the U-tree.
//
// The model keeps, per tree level and per catalog value p_j, the node
// count and the average side length of the nodes' bounding boxes at p_j.
// Under the classical uniform-query-center assumption, a node whose box has
// sides s_i is intersected by a query with sides q_i with probability
// Π_i min(1, (s_i + q_i) / W_i), where W_i is the data-space extent. The
// expected node accesses of a query are the sum of those probabilities over
// all non-root levels, plus one for the root. Because the descent of
// Observation 4 visits a node exactly when its entry box at p_j intersects
// the query (and containment makes intersection propagate upward), this is
// the U-tree analogue of the R-tree access model.
//
// Query centers that follow the data distribution (the paper's workloads)
// concentrate probability mass where nodes are, so the uniform-center model
// underestimates; the model optionally applies a calibration factor fitted
// from a handful of sample queries.

// CostModel is a compact summary of a U-tree for cost prediction.
type CostModel struct {
	dim     int
	m       int
	domain  geom.Rect
	levels  []levelSummary
	calibce float64 // multiplicative calibration (1 = pure analytic model)
}

type levelSummary struct {
	level    int
	nodes    int
	avgSides [][]float64 // [catalogIdx][dim] average side length
}

// BuildCostModel walks the tree once and summarizes it. domain is the data
// space (pass the dataset MBR; zero-extent dimensions are rejected).
func (t *Tree) BuildCostModel(domain geom.Rect) (*CostModel, error) {
	if domain.Dim() != t.dim {
		return nil, fmt.Errorf("core: domain dim %d, tree dim %d", domain.Dim(), t.dim)
	}
	for i := 0; i < t.dim; i++ {
		if domain.Side(i) <= 0 {
			return nil, fmt.Errorf("core: domain has zero extent on dim %d", i)
		}
	}
	cm := &CostModel{dim: t.dim, m: t.cat.Size(), domain: domain.Clone(), calibce: 1}
	byLevel := map[int]*levelSummary{}
	err := t.walk(t.rootPage, func(n *node) error {
		ls, ok := byLevel[n.level]
		if !ok {
			ls = &levelSummary{level: n.level, avgSides: make([][]float64, t.cat.Size())}
			for j := range ls.avgSides {
				ls.avgSides[j] = make([]float64, t.dim)
			}
			byLevel[n.level] = ls
		}
		if len(n.entries) == 0 {
			return nil
		}
		ls.nodes++
		boxes := t.nodeBoundary(n)
		for j := 0; j < t.cat.Size(); j++ {
			b := t.boxAt(boxes, j)
			for i := 0; i < t.dim; i++ {
				ls.avgSides[j][i] += b.Side(i)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for lvl := 0; lvl <= t.rootLevel; lvl++ {
		ls, ok := byLevel[lvl]
		if !ok {
			continue
		}
		for j := range ls.avgSides {
			for i := range ls.avgSides[j] {
				if ls.nodes > 0 {
					ls.avgSides[j][i] /= float64(ls.nodes)
				}
			}
		}
		cm.levels = append(cm.levels, *ls)
	}
	return cm, nil
}

// EstimateNodeAccesses predicts the tree pages visited by a prob-range
// query with the given rectangle side lengths and probability threshold.
func (cm *CostModel) EstimateNodeAccesses(querySides []float64, pq float64, catalogIdx int) float64 {
	total := 1.0 // the root is always visited
	for _, ls := range cm.levels {
		if ls.level == len(cm.levels)-1 {
			continue // root level counted above
		}
		total += cm.levelAccesses(ls, querySides, catalogIdx)
	}
	return total * cm.calibce
}

func (cm *CostModel) levelAccesses(ls levelSummary, querySides []float64, j int) float64 {
	p := 1.0
	for i := 0; i < cm.dim; i++ {
		w := cm.domain.Side(i)
		frac := (ls.avgSides[j][i] + querySides[i]) / w
		if frac > 1 {
			frac = 1
		}
		p *= frac
	}
	return p * float64(ls.nodes)
}

// Calibrate fits the multiplicative correction from measured accesses of
// sample queries (predicted × c ≈ measured in the least-squares sense).
// Call with matching slices of per-query predictions and measurements.
func (cm *CostModel) Calibrate(predicted, measured []float64) error {
	if len(predicted) != len(measured) || len(predicted) == 0 {
		return fmt.Errorf("core: calibration needs matching non-empty samples")
	}
	var num, den float64
	for i := range predicted {
		num += predicted[i] * measured[i]
		den += predicted[i] * predicted[i]
	}
	if den == 0 {
		return fmt.Errorf("core: zero predictions cannot calibrate")
	}
	cm.calibce = num / den
	return nil
}

// CalibrationFactor exposes the fitted correction.
func (cm *CostModel) CalibrationFactor() float64 { return cm.calibce }

// Levels reports the number of summarized levels (diagnostics).
func (cm *CostModel) Levels() int { return len(cm.levels) }

// CatalogIndexFor maps a probability threshold to the catalog index the
// descent uses (largest p_j ≤ pq), so callers can query the model with the
// same index the executor would use.
func (t *Tree) CatalogIndexFor(pq float64) int {
	j, ok := t.cat.LargestLE(pq)
	if !ok {
		return 0
	}
	return j
}
