package core

import (
	"fmt"
	"math"
	"sort"
)

// BulkLoad builds the index bottom-up from a dataset using Sort-Tile-
// Recursive (STR) packing over the entries' e.MBR(p_median) centers — the
// same geometry the incremental split sorts by. Compared with one-by-one
// insertion it produces a near-full tree (fewer pages, fewer query I/Os)
// at a fraction of the build cost; the tree stays fully dynamic afterwards.
// It can only be called on an empty tree.
func (t *Tree) BulkLoad(objects []Object) error {
	if t.size != 0 {
		return fmt.Errorf("core: BulkLoad requires an empty tree (have %d objects)", t.size)
	}
	if len(objects) == 0 {
		return nil
	}
	// Build leaf entries (PCRs → CFBs) and data records first.
	entries := make([]entry, len(objects))
	for i, o := range objects {
		e, err := t.buildLeafEntry(o)
		if err != nil {
			return err
		}
		rec, err := encodeObject(o)
		if err != nil {
			return err
		}
		addr, err := t.data.Append(rec)
		if err != nil {
			return err
		}
		e.addr = addr
		entries[i] = e
	}

	// Level 0: tile leaf entries into leaf nodes.
	med := t.cat.MedianIndex()
	centersOf := func(es []entry, leaf bool) []float64 {
		// flattened center coordinates per entry (med box center)
		out := make([]float64, len(es)*t.dim)
		for i := range es {
			c := t.boxAt(t.boundary(&es[i], leaf), med).Center()
			copy(out[i*t.dim:], c)
		}
		return out
	}

	level := 0
	current := entries
	isLeaf := true
	for {
		capacity := t.leafCap
		minFill := t.minLeaf
		if !isLeaf {
			capacity = t.innerCap
			minFill = t.minInner
		}
		if len(current) <= capacity {
			// Final node: the root.
			root, err := t.allocNode(level)
			if err != nil {
				return err
			}
			root.entries = current
			if err := t.writeNode(root); err != nil {
				return err
			}
			// Free the initial empty root page created by New.
			if t.rootPage != root.page {
				if n, err := t.readNode(t.rootPage); err == nil && len(n.entries) == 0 {
					_ = t.freeNode(n)
				}
			}
			t.rootPage = root.page
			t.rootLevel = level
			t.size = len(objects)
			return nil
		}
		groups := strTile(current, centersOf(current, isLeaf), t.dim, capacity, minFill)
		next := make([]entry, 0, len(groups))
		for _, g := range groups {
			n, err := t.allocNode(level)
			if err != nil {
				return err
			}
			n.entries = g
			if err := t.writeNode(n); err != nil {
				return err
			}
			next = append(next, entry{child: n.page, boxes: t.nodeBoundary(n)})
		}
		current = next
		isLeaf = false
		level++
	}
}

// strTile partitions entries into groups of at most capacity (and at least
// minFill) using recursive sort-tile over the given flattened center
// coordinates.
func strTile(entries []entry, centers []float64, dim, capacity, minFill int) [][]entry {
	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	var groups [][]entry
	var recurse func(ids []int, d int)
	recurse = func(ids []int, d int) {
		pages := int(math.Ceil(float64(len(ids)) / float64(capacity)))
		if pages <= 1 || d == dim-1 {
			// Final dimension: sort and chunk.
			sort.Slice(ids, func(a, b int) bool {
				return centers[ids[a]*dim+d] < centers[ids[b]*dim+d]
			})
			groups = append(groups, chunk(entries, ids, capacity, minFill)...)
			return
		}
		// Slabs: ceil(pages^(1/(dim-d))) vertical cuts on dimension d.
		slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(dim-d))))
		if slabs < 1 {
			slabs = 1
		}
		sort.Slice(ids, func(a, b int) bool {
			return centers[ids[a]*dim+d] < centers[ids[b]*dim+d]
		})
		per := (len(ids) + slabs - 1) / slabs
		for lo := 0; lo < len(ids); lo += per {
			hi := lo + per
			if hi > len(ids) {
				hi = len(ids)
			}
			recurse(ids[lo:hi], d+1)
		}
	}
	recurse(idx, 0)
	return groups
}

// chunk slices the ordered ids into groups of `capacity`, balancing the
// tail so no group is below minFill.
func chunk(entries []entry, ids []int, capacity, minFill int) [][]entry {
	var out [][]entry
	n := len(ids)
	lo := 0
	for lo < n {
		hi := lo + capacity
		if hi > n {
			hi = n
		}
		// If the remainder after this chunk would be a too-small tail,
		// shrink this chunk to feed the tail (minFill ≤ 40% of capacity
		// keeps the shrunk chunk legal).
		if rest := n - hi; rest > 0 && rest < minFill {
			hi -= minFill - rest
		}
		g := make([]entry, 0, hi-lo)
		for _, id := range ids[lo:hi] {
			g = append(g, entries[id])
		}
		out = append(out, g)
		lo = hi
	}
	return out
}
