package core

import (
	"math/rand"
	"sync"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

// Per-query scratch pooling: the traversal state a query allocates afresh
// today — descent frontiers, candidate lists, the NN frontier heap, Monte
// Carlo sample buffers, seeded samplers — is recycled through sync.Pools.
// The discipline:
//
//   - Everything handed out is length-reset before reuse (capacity kept),
//     so no query ever observes another query's values.
//   - Nothing that escapes to the caller is pooled: result slices are
//     always allocated fresh.
//   - Scratch never holds pointers into tree pages or cached nodes — the
//     element types (PageID, candidate, nnItem, float64) are pointer-free,
//     so a pooled buffer retains no memory beyond its own backing array.
//
// Results are byte-identical to the unpooled path: pooling changes where
// buffers live, never the order of appends, pops, or sampler draws.

// candidate is a leaf entry awaiting refinement (id + data record address).
type candidate struct {
	id   int64
	addr pagefile.DataAddr
}

// queryScratch is one query's reusable traversal state.
type queryScratch struct {
	frontier []pagefile.PageID // current descent level
	next     []pagefile.PageID // next descent level (swapped per round)
	cands    []candidate       // refinement candidates
	pages    []pagefile.PageID // distinct refinement data pages (prefetch)
	heap     nnHeap            // NN frontier
	mc       geom.Point        // Monte Carlo sample point
}

var scratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

func getScratch() *queryScratch { return scratchPool.Get().(*queryScratch) }

// release resets every buffer's length (keeping capacity) and returns the
// scratch to the pool.
func (sc *queryScratch) release() {
	sc.frontier = sc.frontier[:0]
	sc.next = sc.next[:0]
	sc.cands = sc.cands[:0]
	sc.pages = sc.pages[:0]
	sc.heap = sc.heap[:0]
	scratchPool.Put(sc)
}

// point returns the scratch sample buffer resized to dim.
func (sc *queryScratch) point(dim int) geom.Point {
	if cap(sc.mc) < dim {
		sc.mc = make(geom.Point, dim)
	}
	return sc.mc[:dim]
}

// Typed nnHeap operations replacing container/heap: identical sift
// semantics (up stops on !Less(child, parent); down picks the right child
// only when strictly Less than the left), so pop order — and therefore
// tie-breaking among equal lower bounds — matches the boxed heap.Push/
// heap.Pop exactly. The payoff is no interface boxing: heap.Push allocates
// every nnItem onto the heap's any parameter; these don't.

func nnUp(h nnHeap, j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(h[j].lb < h[i].lb) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func nnDown(h nnHeap, i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].lb < h[j1].lb {
			j = j2
		}
		if !(h[j].lb < h[i].lb) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// nnPush appends it and restores the heap order (container/heap.Push).
func nnPush(h *nnHeap, it nnItem) {
	*h = append(*h, it)
	nnUp(*h, len(*h)-1)
}

// nnPop removes and returns the minimum (container/heap.Pop).
func nnPop(h *nnHeap) nnItem {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	nnDown(old, 0, n)
	it := old[n]
	*h = old[:n]
	return it
}

// Pooled deterministic samplers: rand.New allocates the Rand and its
// ~5 KB source on every call — one per RO/snapshot range query and one per
// NN expected-distance evaluation. Re-seeding a pooled *rand.Rand with
// (*Rand).Seed reproduces the exact sequence rand.New(rand.NewSource(seed))
// would produce, so pooling changes nothing about the draws.

var randPool = sync.Pool{New: func() any { return rand.New(rand.NewSource(1)) }}

// getSeededRand returns a pooled sampler reset to the given seed.
func getSeededRand(seed int64) *rand.Rand {
	r := randPool.Get().(*rand.Rand)
	r.Seed(seed)
	return r
}

func putRand(r *rand.Rand) { randPool.Put(r) }
