package core

import (
	"context"
	"fmt"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

// This file is the epoch surface of the tree: mutations build a
// copy-on-write path from leaf to root (writeNode relocates committed
// pages to shadow pages), Commit atomically publishes the new root as the
// next epoch, and Snapshot pins a committed epoch for lock-free reads.
// Writers still serialize among themselves; readers never wait on anyone.

// treeState is the committed state published at each epoch: everything a
// reader needs to traverse the tree as of that commit, and everything the
// writer needs to roll a failed batch back.
type treeState struct {
	rootPage  pagefile.PageID
	rootLevel int
	size      int
	dataPage  pagefile.PageID
	// rootMBR is the root boundary box at p = 0 — the rectangle containing
	// every object MBR of the epoch. Captured at publication so sharded
	// readers can prune whole shards against a query rect without touching
	// the shard's pages. Zero when unknown (planner off, empty tree or
	// read failure); consumers must treat zero as "cannot prune".
	rootMBR geom.Rect
}

func (t *Tree) workingState() *treeState {
	st := &treeState{
		rootPage:  t.rootPage,
		rootLevel: t.rootLevel,
		size:      t.size,
		dataPage:  t.data.CurrentPage(),
	}
	// Capture the root box only under adaptive planning: the quiet root
	// read warms the buffer pool, which non-planned trees' exact I/O
	// accounting (page budgets, cache-stat deltas) must not see.
	if t.planner != nil {
		st.rootMBR = t.rootBoundaryMBR()
	}
	return st
}

// Commit seals the open mutation batch: flushes the shadow pages through
// the buffer pool, then atomically publishes the working root as the new
// epoch. Readers pinning a snapshot before the commit keep the previous
// epoch's pages; readers pinning after see the new tree. Pages the batch
// retired are reclaimed once no older snapshot remains.
func (t *Tree) Commit() error { return t.CommitWithMeta(pagefile.InvalidPage) }

// CommitWithMeta is Commit plus a metadata-page write between the flush
// and the epoch publication — the crash-consistency point for file-backed
// trees: every page of the new epoch is durable before the metadata
// switches to it, and the old epoch's pages were never overwritten in
// place, so a crash at any operation boundary leaves the file recoverable
// at the last committed epoch.
func (t *Tree) CommitWithMeta(meta pagefile.PageID) error {
	// Data first: leaf entries flushed by the pool reference record
	// addresses that must be durable (and readable) no later than the
	// nodes pointing at them.
	if err := t.data.Flush(); err != nil {
		return err
	}
	if err := t.pool.Flush(); err != nil {
		return err
	}
	if meta != pagefile.InvalidPage {
		if err := t.writeMeta(meta); err != nil {
			return err
		}
	}
	if err := t.vs.Commit(t.workingState()); err != nil {
		return err
	}
	// Writer-side planner upkeep: rebuild the cost model when the committed
	// tree has drifted from the shape the model was fitted on.
	t.maybeRefreshPlanner()
	return nil
}

// Rollback abandons the open mutation batch after a failed operation:
// shadow pages are freed, deferred frees and tombstones are dropped (their
// targets are still live in the last committed epoch), and the working
// root/size/data state rewinds to the last commit. The tree remains
// usable; the failed operation simply never happened.
func (t *Tree) Rollback() error {
	st, _ := t.committedState()
	if st == nil {
		return fmt.Errorf("core: rollback with no committed epoch")
	}
	t.rootPage = st.rootPage
	t.rootLevel = st.rootLevel
	t.size = st.size
	t.data.SetCurrent(st.dataPage)
	return t.vs.Rollback()
}

func (t *Tree) committedState() (*treeState, uint64) {
	st := t.vs.State()
	if st == nil {
		return nil, 0
	}
	return st.(*treeState), t.vs.Epoch()
}

// Epoch returns the last committed epoch number.
func (t *Tree) Epoch() uint64 { return t.vs.Epoch() }

// CommittedLen returns the object count of the last committed epoch —
// readable concurrently with a writer (whose in-progress batch is not yet
// visible).
func (t *Tree) CommittedLen() int {
	st, _ := t.committedState()
	if st == nil {
		return 0
	}
	return st.size
}

// GCStats reports the epoch collector's state: committed epoch, live
// snapshot pins, and pages awaiting reclamation.
func (t *Tree) GCStats() (epoch uint64, pins int, pendingPages int) {
	return t.vs.GCStats()
}

// GCInfo reports the epoch collector's full health: pending epochs, pages
// and tombstones, lifetime reclaim counters, and reclaimer state.
func (t *Tree) GCInfo() pagefile.GCInfo { return t.vs.GCInfo() }

// StopBackgroundReclaim stops the background goroutines Options started —
// the epoch reclaimer and the page scrubber; idempotent. Garbage the
// reclaimer had not drained is picked up by the next Commit, Reclaim or
// Flush.
func (t *Tree) StopBackgroundReclaim() {
	t.vs.StopReclaimer()
	t.StopScrubber()
}

// Reclaim drains whatever retired pages and deferred tombstones the
// current snapshot pins allow. Writer-side, like Commit.
func (t *Tree) Reclaim() error { return t.vs.Reclaim() }

// Snapshot is a pinned view of one committed epoch. Any number of
// goroutines' snapshots coexist with each other and with the (single)
// writer: the pages a snapshot can reach are never rewritten in place and
// never recycled while the pin is held. Queries on a snapshot take no
// lock; Close releases the pin (idempotent) — forgetting it retains the
// epoch's retired pages until the tree closes.
type Snapshot struct {
	t       *Tree
	st      *treeState
	epoch   uint64
	release func()
}

// Snapshot pins the current committed epoch.
func (t *Tree) Snapshot() *Snapshot {
	st, epoch, release := t.vs.Pin()
	if st == nil {
		// No commit yet (mid-construction); pin the working state — there
		// are no concurrent readers before New returns.
		return &Snapshot{t: t, st: t.workingState(), epoch: epoch, release: release}
	}
	return &Snapshot{t: t, st: st.(*treeState), epoch: epoch, release: release}
}

// Close releases the snapshot's pin. Idempotent.
func (s *Snapshot) Close() { s.release() }

// Epoch returns the pinned epoch number.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Len returns the object count at the pinned epoch.
func (s *Snapshot) Len() int { return s.st.size }

// RootMBR returns the pinned epoch's root bounding box at p = 0 — the
// rectangle containing every indexed object's region MBR. The zero Rect
// means unknown (empty epoch); callers pruning on it must treat zero as
// "may contain anything".
func (s *Snapshot) RootMBR() geom.Rect { return s.st.rootMBR }

// RangeQuery answers a probabilistic range query against the pinned
// epoch, lock-free. The refinement sampler is seeded from (tree seed,
// query) exactly like RangeQueryRO, so results are reproducible per query
// whatever the scheduling.
func (s *Snapshot) RangeQuery(ctx context.Context, q Query, o QueryOpts) ([]Result, QueryStats, error) {
	p := s.t.resolvePlan(ctx, o)
	pred, armed := s.t.planQuery(q, o, &p)
	// The sampler is pooled and re-seeded per query — (*Rand).Seed
	// reproduces exactly the sequence a fresh rand.New would draw.
	rng := getSeededRand(s.t.roSeed(q))
	defer putRand(rng)
	res, stats, err := s.t.rangeQuery(s.st.rootPage, q, rng, &p)
	if armed && err == nil {
		s.t.planner.observe(pred, stats.NodeAccesses)
	}
	return res, stats, err
}

// NearestNeighbors answers an expected-distance k-NN query against the
// pinned epoch, lock-free (per-object sampler seeding, as always).
func (s *Snapshot) NearestNeighbors(ctx context.Context, q geom.Point, k int, o QueryOpts) ([]NNResult, NNStats, error) {
	return s.t.nearestNeighborsAt(s.st.rootPage, ctx, q, k, o)
}

// CheckInvariants validates the pinned epoch's structure — usable while a
// writer mutates the working tree, since the snapshot's pages are frozen.
func (s *Snapshot) CheckInvariants() error {
	return s.t.checkTreeAt(s.st.rootPage, s.st.rootLevel, s.st.size)
}
