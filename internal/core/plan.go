package core

import (
	"context"
	"errors"

	"repro/internal/pagefile"
)

// This file is the per-query execution plan behind the context-first query
// API: every query entry point (RangeQueryCtx, NearestNeighborsCtx and the
// legacy wrappers) resolves a QueryOpts against the tree's configuration
// once, up front, into an immutable qplan that the traversal then consults
// — no global mutator needs to run, and two concurrent queries on one tree
// can use different refinement precision, prefetch fan-out, or I/O budgets.

// ErrBudgetExceeded is returned by a query whose QueryOpts.PageBudget ran
// out: the traversal performed exactly the budgeted number of physical
// page fetches and then stopped, returning the results and stats gathered
// so far. Test with errors.Is; the partial results are still valid answers
// (every returned object truly qualifies), the set is just incomplete.
var ErrBudgetExceeded = errors.New("core: page budget exceeded")

// probFilterEps is the safety margin of the probabilistic candidate
// filter: a candidate is pruned only when its qualification-probability
// upper bound is below the query threshold by more than this, absorbing
// the float noise PCR nesting repair can introduce into stored slab
// positions.
const probFilterEps = 1e-9

// QueryOpts carries per-query overrides of the tree's configured query
// behavior. The zero value means "inherit everything" and reproduces the
// tree's configured behavior bit for bit.
type QueryOpts struct {
	// MCSamples overrides Options.MCSamples for this query's Monte Carlo
	// refinement when > 0.
	MCSamples int
	// Exact overrides Options.ExactRefinement when ExactSet is true.
	ExactSet bool
	Exact    bool
	// Prefetch overrides the tree's prefetch fan-out when PrefetchSet is
	// true: ≤ 0 disables prefetching for this query, > 0 gives the query
	// its own in-flight bound (independent of other queries').
	PrefetchSet bool
	Prefetch    int
	// Limit stops a range query after this many results (0 = unlimited);
	// for NN queries it caps k. The cut is deterministic: results arrive in
	// the serial traversal order, so a limited query returns a prefix of
	// the unlimited query's result sequence.
	Limit int
	// PageBudget bounds the physical page fetches (buffer-pool misses plus
	// data-page reads) the query may perform; 0 = unlimited. When the
	// budget runs out the query returns ErrBudgetExceeded with the partial
	// results and stats gathered so far. A budgeted query runs without
	// prefetching so the accounting is exact.
	PageBudget int
	// AllowDegraded opts a scatter-gather query into partial answers when
	// some (not all) shards fail with a storage error: the healthy shards'
	// results are returned together with a typed degraded-mode error. The
	// core traversal itself ignores the flag — a single tree has no
	// healthy remainder to serve — it is consumed by the sharded layer.
	AllowDegraded bool
	// ProbFilter overrides the tree's probabilistic candidate filter when
	// ProbFilterSet is true (see Options.ProbFilter).
	ProbFilterSet bool
	ProbFilter    bool
	// NNBound, when non-nil, is a shared upper bound on the k-th smallest
	// expected distance for an NN query — the cross-shard frontier of a
	// scatter-gather: the traversal stops once its heap's lower bound
	// exceeds it, and publishes its own k-th best into it. Range queries
	// ignore it.
	NNBound *NNBound
}

// qplan is a QueryOpts resolved against the tree's configuration: every
// field is concrete, nothing is inherited at use sites.
type qplan struct {
	ctx      context.Context
	samples  int
	exact    bool
	prefetch *pagefile.Prefetcher // nil = no prefetching
	limit    int
	budget   int
	// probFilter arms the PCR-slab qualification-probability filter in the
	// candidate stage (see Options.ProbFilter).
	probFilter bool
	// issueCap bounds the speculative async issues of the node prefetch
	// session when > 0 — set by the adaptive planner from its predicted
	// access count. Unissued pages degrade to synchronous reads; results
	// are unaffected.
	issueCap int
	// nnBound is the shared cross-shard k-th distance bound (nil outside
	// sharded NN scatter-gather).
	nnBound *NNBound
}

// resolvePlan merges o over the tree's configured defaults. With a zero
// QueryOpts the plan reproduces the tree's configuration exactly, which is
// what keeps default-option queries byte-identical to the pre-plan code.
func (t *Tree) resolvePlan(ctx context.Context, o QueryOpts) qplan {
	if ctx == nil {
		ctx = context.Background()
	}
	p := qplan{
		ctx:        ctx,
		samples:    t.samples,
		exact:      t.exact,
		prefetch:   t.prefetch,
		limit:      o.Limit,
		budget:     o.PageBudget,
		probFilter: t.probFilter,
		nnBound:    o.NNBound,
	}
	if o.MCSamples > 0 {
		p.samples = o.MCSamples
	}
	if o.ProbFilterSet {
		p.probFilter = o.ProbFilter
	}
	if o.ExactSet {
		p.exact = o.Exact
	}
	if o.PrefetchSet {
		if o.Prefetch <= 0 {
			p.prefetch = nil
		} else {
			p.prefetch = pagefile.NewPrefetcher(o.Prefetch)
		}
	}
	if p.budget > 0 {
		// Budget accounting charges buffer-pool misses per fetch; async
		// prefetch would make the charge order nondeterministic, so a
		// budgeted query runs serially.
		p.prefetch = nil
	}
	return p
}

// limitReached reports whether a range query holding n results must stop.
func (p *qplan) limitReached(n int) bool { return p.limit > 0 && n >= p.limit }

// fetchMeter charges physical page fetches against a query's page budget
// and tallies the query's decoded-node cache outcomes (threaded into
// QueryStats/NNStats by the traversals).
type fetchMeter struct {
	budget   int // 0 = unlimited
	spent    int
	ncHits   int // decoded-node cache hits this query
	ncMisses int // decoded-node cache misses this query (cache enabled only)
}

// chargeData reserves one data-page read (always physical: data pages
// bypass the buffer pool).
func (m *fetchMeter) chargeData() error {
	if m.budget > 0 && m.spent >= m.budget {
		return ErrBudgetExceeded
	}
	m.spent++
	return nil
}

// fetchNode reads a tree page under the meter. The decoded-node cache is
// consulted first: a hit costs no I/O, no decode and no budget — the node
// is returned shared (the traversals only read it). On a miss the node is
// decoded fresh and, when its page is committed, offered to the cache.
// When the budget is armed, a fetch that would have to touch storage past
// the budget is refused before any I/O happens, and actual misses are
// charged. Without a budget it defers to the (possibly prefetching)
// session path.
func (t *Tree) fetchNode(ses *pagefile.PrefetchSession, m *fetchMeter, id pagefile.PageID) (*node, error) {
	if t.ncache != nil {
		if n, ok := t.ncache.get(id); ok {
			t.nodeReads.Add(1) // still one logical node access
			m.ncHits++
			return n, nil
		}
		m.ncMisses++
	}
	if m.budget <= 0 {
		n, err := t.readNodeVia(ses, id)
		if err != nil {
			return nil, err
		}
		t.maybeCacheNode(n)
		return n, nil
	}
	if m.spent >= m.budget && !t.pool.Contains(id) {
		return nil, ErrBudgetExceeded
	}
	n, miss, err := t.readNodeMiss(id)
	if err != nil {
		return nil, err
	}
	t.maybeCacheNode(n)
	if miss {
		m.spent++
		if m.spent > m.budget {
			// A concurrent eviction turned the predicted hit into a miss
			// after the budget was spent; stop now so the overshoot is
			// bounded at one fetch (impossible for a query running alone,
			// where Contains' answer holds).
			return nil, ErrBudgetExceeded
		}
	}
	return n, nil
}

// fetchDataPage reads a data page under the meter (see fetchNode).
func (t *Tree) fetchDataPage(ses *pagefile.PrefetchSession, m *fetchMeter, id pagefile.PageID) ([]byte, error) {
	if m.budget > 0 {
		if err := m.chargeData(); err != nil {
			return nil, err
		}
	}
	return t.readDataPageVia(ses, id)
}
