// Package core implements the paper's contribution: the U-tree (Section 5)
// — a paged, fully dynamic R*-style index over uncertain objects whose leaf
// entries store conservative functional boxes and whose intermediate
// entries store the two rectangles defining the linear e.MBR(p) function —
// together with the U-PCR comparison structure of the experiments (entries
// store all catalog PCRs) and a sequential-scan baseline.
//
// Both index variants share one paged tree engine; they differ only in
// entry representation, penalty-metric geometry and the leaf filter rules
// (Observation 3 for the U-tree, Observation 2 for U-PCR).
package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/pagefile"
	"repro/internal/updf"
)

// Object is an uncertain object: an identifier plus its pdf (which carries
// the uncertainty region).
type Object struct {
	ID  int64
	PDF updf.PDF
}

// encodeObject serializes the detail record stored in the data file: the
// object id and the pdf parameters (from which the uncertainty region is
// recovered).
func encodeObject(o Object) ([]byte, error) {
	pb, err := updf.Encode(o.PDF)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8+len(pb))
	binary.LittleEndian.PutUint64(buf, uint64(o.ID))
	copy(buf[8:], pb)
	return buf, nil
}

// decodeObject reverses encodeObject.
func decodeObject(rec []byte) (Object, error) {
	if len(rec) < 9 {
		return Object{}, fmt.Errorf("core: object record too short (%d bytes)", len(rec))
	}
	id := int64(binary.LittleEndian.Uint64(rec))
	p, err := updf.Decode(rec[8:])
	if err != nil {
		return Object{}, err
	}
	return Object{ID: id, PDF: p}, nil
}

// putF64 / getF64 are the little-endian float helpers shared by entry and
// node serialization.
func putF64(buf []byte, off int, v float64) int {
	binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
	return off + 8
}

func getF64(buf []byte, off int) (float64, int) {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])), off + 8
}

// putAddr / getAddr serialize a data address in 8 bytes.
func putAddr(buf []byte, off int, a pagefile.DataAddr) int {
	binary.LittleEndian.PutUint32(buf[off:], uint32(a.Page))
	binary.LittleEndian.PutUint16(buf[off+4:], a.Slot)
	binary.LittleEndian.PutUint16(buf[off+6:], 0)
	return off + 8
}

func getAddr(buf []byte, off int) (pagefile.DataAddr, int) {
	return pagefile.DataAddr{
		Page: pagefile.PageID(binary.LittleEndian.Uint32(buf[off:])),
		Slot: binary.LittleEndian.Uint16(buf[off+4:]),
	}, off + 8
}
