package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

// TestNodeCacheBoundAndLRU unit-tests the cache container itself: the
// entry-count bound holds under overflow, eviction is least-recently-used,
// invalidate drops entries, and the counters record each outcome.
func TestNodeCacheBoundAndLRU(t *testing.T) {
	nc := newNodeCache(3)
	if got := len(nc.shards); got != 1 {
		t.Fatalf("3-entry cache built %d shards, want 1 (shard floor)", got)
	}
	nodes := make([]*node, 6)
	for i := range nodes {
		nodes[i] = &node{page: pagefile.PageID(i)}
	}
	for i := 0; i < 3; i++ {
		nc.put(pagefile.PageID(i), nodes[i], 7)
	}
	if nc.len() != 3 {
		t.Fatalf("len = %d after 3 puts, want 3", nc.len())
	}
	if ep, ok := nc.epochOf(1); !ok || ep != 7 {
		t.Fatalf("epochOf(1) = %d, %v; want 7, true", ep, ok)
	}

	// Touch page 0 so page 1 is the LRU victim of the next overflow.
	if n, ok := nc.get(0); !ok || n != nodes[0] {
		t.Fatalf("get(0) = %v, %v", n, ok)
	}
	nc.put(3, nodes[3], 8)
	if nc.len() != 3 {
		t.Fatalf("len = %d after overflow, want 3", nc.len())
	}
	if nc.contains(1) {
		t.Fatal("page 1 survived the overflow; LRU should have evicted it")
	}
	for _, id := range []pagefile.PageID{0, 2, 3} {
		if !nc.contains(id) {
			t.Fatalf("page %d missing after overflow", id)
		}
	}

	// Re-putting a cached page keeps the first decode and just refreshes LRU.
	other := &node{page: 2}
	nc.put(2, other, 9)
	if n, _ := nc.get(2); n != nodes[2] {
		t.Fatal("re-put replaced the cached node; same PageID must keep the first decode")
	}
	if ep, _ := nc.epochOf(2); ep != 7 {
		t.Fatalf("re-put rewrote the decode epoch to %d", ep)
	}

	nc.invalidate(2)
	if nc.contains(2) {
		t.Fatal("page 2 survived invalidate")
	}
	if nc.len() != 2 {
		t.Fatalf("len = %d after invalidate, want 2", nc.len())
	}
	if _, ok := nc.get(2); ok {
		t.Fatal("get(2) hit after invalidate")
	}

	hits, misses := nc.stats()
	// get(0) and get(2) hit; get(2)-after-invalidate missed. contains and
	// epochOf never touch the counters.
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 2 / 1", hits, misses)
	}

	// A large capacity splits into the bounded shard count, and the bound
	// still holds across shards.
	big := newNodeCache(1024)
	if got := len(big.shards); got != ncMaxShards {
		t.Fatalf("1024-entry cache built %d shards, want %d", got, ncMaxShards)
	}
	for i := 0; i < 5000; i++ {
		big.put(pagefile.PageID(i), &node{page: pagefile.PageID(i)}, 1)
	}
	if big.len() > 1024 {
		t.Fatalf("len = %d, bound 1024", big.len())
	}
}

// TestNodeCacheCoherenceUnderCommits is the -race coherence hammer: with a
// tiny cache (constant eviction and re-decode churn) and a writer stream of
// commits and reclaims, every pinned snapshot must keep answering its
// queries identically for as long as it is held — a snapshot observing a
// node decoded from a newer epoch's reuse of the page would change answers.
func TestNodeCacheCoherenceUnderCommits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	objs := makeObjects(300, 1000, rng)
	tree, err := New(Options{
		Dim:              2,
		ExactRefinement:  true,
		BufferPages:      16,
		NodeCacheEntries: 8, // tiny: force eviction + re-decode churn
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.StopBackgroundReclaim()
	for _, o := range objs {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Commit(); err != nil {
		t.Fatal(err)
	}

	queries := make([]Query, 8)
	for i := range queries {
		queries[i] = Query{Rect: randomQueryRect(rng, 1000), Prob: 0.3}
	}

	const readers = 4
	const rounds = 6
	const requeries = 5
	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	stop := make(chan struct{})

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				s := tree.Snapshot()
				q := queries[(r+round)%len(queries)]
				base, _, err := s.RangeQuery(context.Background(), q, QueryOpts{})
				if err != nil {
					s.Close()
					errCh <- err
					return
				}
				baseNN, _, err := s.NearestNeighbors(context.Background(), q.Rect.Lo, 3, QueryOpts{})
				if err != nil {
					s.Close()
					errCh <- err
					return
				}
				// Re-query the pinned epoch while the writer churns: any
				// drift means a node from a newer epoch leaked in.
				for i := 0; i < requeries; i++ {
					got, _, err := s.RangeQuery(context.Background(), q, QueryOpts{})
					if err != nil {
						s.Close()
						errCh <- err
						return
					}
					if len(got) != len(base) {
						s.Close()
						t.Errorf("reader %d round %d: snapshot answer drifted from %d to %d results",
							r, round, len(base), len(got))
						errCh <- nil
						return
					}
					for j := range got {
						if got[j] != base[j] {
							s.Close()
							t.Errorf("reader %d round %d: result %d drifted: %+v -> %+v",
								r, round, j, base[j], got[j])
							errCh <- nil
							return
						}
					}
					gotNN, _, err := s.NearestNeighbors(context.Background(), q.Rect.Lo, 3, QueryOpts{})
					if err != nil {
						s.Close()
						errCh <- err
						return
					}
					for j := range gotNN {
						if gotNN[j] != baseNN[j] {
							s.Close()
							t.Errorf("reader %d round %d: NN %d drifted: %+v -> %+v",
								r, round, j, baseNN[j], gotNN[j])
							errCh <- nil
							return
						}
					}
				}
				s.Close()
			}
		}(r)
	}

	// Writer: single-threaded commits and reclaims while the readers hold
	// their pins (Tree has one writer by contract; readers use snapshots).
	writerDone := make(chan error, 1)
	go func() {
		defer close(writerDone)
		wrng := rand.New(rand.NewSource(99))
		id := int64(10_000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			o := makeObjects(1, 1000, wrng)[0]
			o.ID = id
			id++
			if err := tree.Insert(o); err != nil {
				writerDone <- err
				return
			}
			if id%3 == 0 {
				if err := tree.Delete(o.ID, o.PDF.MBR()); err != nil {
					writerDone <- err
					return
				}
			}
			if err := tree.Commit(); err != nil {
				writerDone <- err
				return
			}
			if id%5 == 0 {
				if err := tree.Reclaim(); err != nil {
					writerDone <- err
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	if err := <-writerDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("reader: %v", err)
		}
	default:
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants after hammer: %v", err)
	}
	if hits, misses := tree.NodeCacheStats(); hits == 0 || misses == 0 {
		t.Fatalf("hammer exercised no cache churn: %d hits / %d misses", hits, misses)
	}
}

// TestPooledScratchNoAliasing is the -race aliasing check for the pooled
// per-query scratch: many goroutines draining the same query list through
// the pooled range and NN paths must each reproduce the serial baselines
// exactly — a scratch buffer leaking between in-flight queries would give
// the race detector an aliased write and the comparison a wrong answer.
func TestPooledScratchNoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	objs := makeObjects(400, 1000, rng)
	tree, err := New(Options{
		Dim:         2,
		MCSamples:   200, // Monte Carlo refinement: exercises the pooled sampler + sample buffer
		BufferPages: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.StopBackgroundReclaim()
	for _, o := range objs {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Commit(); err != nil {
		t.Fatal(err)
	}

	type work struct {
		q  Query
		pt geom.Point
	}
	items := make([]work, 24)
	for i := range items {
		rq := randomQueryRect(rng, 1000)
		items[i] = work{q: Query{Rect: rq, Prob: 0.05 + rng.Float64()*0.7}, pt: rq.Lo}
	}

	baseRange := make([][]Result, len(items))
	baseNN := make([][]NNResult, len(items))
	for i, it := range items {
		if baseRange[i], _, err = tree.RangeQueryRO(it.q); err != nil {
			t.Fatal(err)
		}
		if baseNN[i], _, err = tree.NearestNeighborsRO(it.pt, 4); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	const passes = 3
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := 0; p < passes; p++ {
				// Stagger the start so goroutines interleave different
				// queries against the shared pools.
				for off := 0; off < len(items); off++ {
					i := (off + w) % len(items)
					got, _, err := tree.RangeQueryRO(items[i].q)
					if err != nil {
						t.Errorf("worker %d query %d: %v", w, i, err)
						return
					}
					if len(got) != len(baseRange[i]) {
						t.Errorf("worker %d query %d: %d results, serial %d", w, i, len(got), len(baseRange[i]))
						return
					}
					for j := range got {
						if got[j] != baseRange[i][j] {
							t.Errorf("worker %d query %d result %d: %+v, serial %+v", w, i, j, got[j], baseRange[i][j])
							return
						}
					}
					nn, _, err := tree.NearestNeighborsRO(items[i].pt, 4)
					if err != nil {
						t.Errorf("worker %d NN %d: %v", w, i, err)
						return
					}
					for j := range nn {
						if nn[j] != baseNN[i][j] {
							t.Errorf("worker %d NN %d result %d: %+v, serial %+v", w, i, j, nn[j], baseNN[i][j])
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
