package core
