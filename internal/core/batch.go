package core

import (
	"fmt"

	"repro/internal/pagefile"
)

// The explicit batch surface: a batch groups any number of mutations into
// one commit epoch. The amortization falls out of the copy-on-write
// mechanics rather than extra bookkeeping — writeNode relocates a node
// only while !vs.Writable(page), and a relocated page is fresh (writable
// in place) until the next Commit seals it. With per-op commits every
// operation re-relocates the whole root path; inside a batch each node is
// relocated at most once, however many operations touch it, and the data
// file's append page is written once at the batch's flush instead of once
// per record.

// BeginBatch opens an explicit mutation batch: Insert/Delete/BulkLoad stop
// publishing epochs until CommitBatch. Nested batches are an error (the
// epoch surface has no savepoints).
func (t *Tree) BeginBatch() error {
	if t.inBatch {
		return fmt.Errorf("core: BeginBatch inside an open batch")
	}
	t.inBatch = true
	return nil
}

// InBatch reports whether an explicit batch is open.
func (t *Tree) InBatch() bool { return t.inBatch }

// CommitBatch seals the open batch as one commit epoch; see Commit.
func (t *Tree) CommitBatch() error { return t.CommitBatchWithMeta(pagefile.InvalidPage) }

// CommitBatchWithMeta is CommitBatch with the durable metadata write of
// CommitWithMeta — the batch-granular crash-consistency point: a crash
// anywhere before the metadata write recovers the previous epoch with no
// trace of the batch; after it, the whole batch.
func (t *Tree) CommitBatchWithMeta(meta pagefile.PageID) error {
	if !t.inBatch {
		return fmt.Errorf("core: CommitBatch without BeginBatch")
	}
	t.inBatch = false
	return t.CommitWithMeta(meta)
}

// RollbackBatch abandons the open batch; see Rollback.
func (t *Tree) RollbackBatch() error {
	if !t.inBatch {
		return fmt.Errorf("core: RollbackBatch without BeginBatch")
	}
	t.inBatch = false
	return t.Rollback()
}
