package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

// node is the in-memory form of a tree page.
type node struct {
	page    pagefile.PageID
	level   int // 0 = leaf
	entries []entry
}

func (n *node) leaf() bool { return n.level == 0 }

// readNode fetches and deserializes a page, counting one logical node
// access. It always decodes a private copy: the mutation paths (insert and
// delete descents) edit the returned node's entries in place, so they must
// never receive a node shared through the decoded-node cache. Query paths
// go through fetchNode, which consults the cache first.
func (t *Tree) readNode(id pagefile.PageID) (*node, error) {
	n, _, err := t.readNodeMiss(id)
	return n, err
}

// maybeCacheNode offers a freshly decoded node to the decoded-node cache.
// Only committed pages are cached — their bytes are COW-immutable while
// live, so the decoded form is shareable across lock-free readers; a
// shadow (fresh) page is still writable in place and bypasses the cache.
// Callers must not mutate n after offering it.
func (t *Tree) maybeCacheNode(n *node) {
	if t.ncache == nil {
		return
	}
	if committed, epoch := t.vs.CommittedInfo(n.page); committed {
		t.ncache.put(n.page, n, epoch)
	}
}

// readNodeMiss is readNode plus the buffer pool's per-call miss report,
// which the budgeted query path charges against its page budget. Pages in
// the quarantine registry fast-fail before touching storage, and a read or
// decode that proves corruption quarantines the page on its way out.
func (t *Tree) readNodeMiss(id pagefile.PageID) (*node, bool, error) {
	t.nodeReads.Add(1)
	if err := t.checkQuarantine(id); err != nil {
		return nil, false, err
	}
	buf, miss, err := t.pool.GetMiss(id)
	if err != nil {
		return nil, miss, fmt.Errorf("core: reading node %d: %w", id, t.noteReadError(id, err))
	}
	n, err := t.decodeNode(id, buf)
	if err != nil {
		return nil, miss, t.noteReadError(id, err)
	}
	return n, miss, nil
}

// writeNode serializes a node to its page — copy-on-write: a node whose
// page was live at the last commit is relocated to a fresh shadow page
// (the old page stays byte-intact for pinned snapshots and is reclaimed by
// the epoch GC once no snapshot can reference it). Callers must propagate
// n.page into the parent entry afterwards (refreshPath, split and condense
// do); the root's relocation updates t.rootPage here. A page allocated
// since the last commit is rewritten in place.
func (t *Tree) writeNode(n *node) error {
	t.nodeWrites.Add(1)
	if !t.vs.Writable(n.page) {
		old := n.page
		id, err := t.store.Alloc()
		if err != nil {
			return fmt.Errorf("core: shadowing node %d: %w", old, err)
		}
		n.page = id
		if old == t.rootPage {
			t.rootPage = id
		}
		if err := t.vs.Free(old); err != nil {
			return fmt.Errorf("core: retiring node %d: %w", old, err)
		}
	}
	buf := make([]byte, pagefile.PageSize)
	if err := t.encodeNode(n, buf); err != nil {
		return err
	}
	if err := t.pool.Put(n.page, buf); err != nil {
		return fmt.Errorf("core: writing node %d: %w", n.page, err)
	}
	return nil
}

// allocNode creates an empty node at the given level.
func (t *Tree) allocNode(level int) (*node, error) {
	id, err := t.store.Alloc()
	if err != nil {
		return nil, fmt.Errorf("core: allocating node: %w", err)
	}
	return &node{page: id, level: level}, nil
}

// freeNode releases a node's page: immediately when the page is a shadow
// of the open batch, deferred to the epoch GC when it was committed — a
// pinned snapshot may still descend into it.
func (t *Tree) freeNode(n *node) error {
	return t.vs.Free(n.page)
}

func (t *Tree) encodeNode(n *node, buf []byte) error {
	cap := t.leafCap
	sz := t.leafEntrySize
	if !n.leaf() {
		cap = t.innerCap
		sz = t.innerEntrySize
	}
	if len(n.entries) > cap {
		return fmt.Errorf("core: node %d holds %d entries, capacity %d", n.page, len(n.entries), cap)
	}
	buf[0] = byte(n.level)
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(n.entries)))
	off := nodeHeader
	for i := range n.entries {
		if n.leaf() {
			t.encodeLeafEntry(&n.entries[i], buf[off:off+sz])
		} else {
			t.encodeInnerEntry(&n.entries[i], buf[off:off+sz])
		}
		off += sz
	}
	return nil
}

func (t *Tree) decodeNode(id pagefile.PageID, buf []byte) (*node, error) {
	n := &node{page: id, level: int(buf[0])}
	count := int(binary.LittleEndian.Uint16(buf[2:]))
	cap, sz := t.innerCap, t.innerEntrySize
	if n.leaf() {
		cap, sz = t.leafCap, t.leafEntrySize
	}
	if count > cap {
		// A structurally impossible header is corruption the checksum layer
		// did not (or, on v1 files, could not) catch; type it so the
		// quarantine and degraded-read machinery treat it like one.
		return nil, fmt.Errorf("core: corrupt node %d: %w", id, &pagefile.BadPageError{
			Page:   id,
			Reason: fmt.Sprintf("entry count %d exceeds capacity %d", count, cap),
		})
	}
	n.entries = make([]entry, count)
	off := nodeHeader
	for i := 0; i < count; i++ {
		if n.leaf() {
			t.decodeLeafEntry(&n.entries[i], buf[off:off+sz])
		} else {
			t.decodeInnerEntry(&n.entries[i], buf[off:off+sz])
		}
		off += sz
	}
	return n, nil
}

func (t *Tree) encodeLeafEntry(e *entry, buf []byte) {
	binary.LittleEndian.PutUint64(buf, uint64(e.id))
	off := putAddr(buf, 8, e.addr)
	off = putRect(buf, off, e.mbr)
	if t.kind == UTree {
		off = putCFB(buf, off, e.out)
		putCFB(buf, off, e.in)
		return
	}
	// U-PCR: pcr(0) is the MBR itself, so boxes 1..m-1 follow the MBR slot.
	for j := 1; j < t.cat.Size(); j++ {
		off = putRect(buf, off, e.pcrs[j])
	}
}

func (t *Tree) decodeLeafEntry(e *entry, buf []byte) {
	e.id = int64(binary.LittleEndian.Uint64(buf))
	var off int
	e.addr, off = getAddr(buf, 8)
	e.mbr, off = getRect(buf, off, t.dim)
	if t.kind == UTree {
		e.out, off = getCFB(buf, off, t.dim)
		e.in, _ = getCFB(buf, off, t.dim)
		return
	}
	e.pcrs = make([]geom.Rect, t.cat.Size())
	e.pcrs[0] = e.mbr.Clone()
	for j := 1; j < t.cat.Size(); j++ {
		e.pcrs[j], off = getRect(buf, off, t.dim)
	}
}

func (t *Tree) encodeInnerEntry(e *entry, buf []byte) {
	binary.LittleEndian.PutUint32(buf, uint32(e.child))
	binary.LittleEndian.PutUint32(buf[4:], 0)
	off := 8
	for _, b := range e.boxes {
		off = putRect(buf, off, b)
	}
}

func (t *Tree) decodeInnerEntry(e *entry, buf []byte) {
	e.child = pagefile.PageID(binary.LittleEndian.Uint32(buf))
	nb := 2
	if t.kind == UPCR {
		nb = t.cat.Size()
	}
	e.boxes = make([]geom.Rect, nb)
	off := 8
	for i := 0; i < nb; i++ {
		e.boxes[i], off = getRect(buf, off, t.dim)
	}
}

func putRect(buf []byte, off int, r geom.Rect) int {
	for _, v := range r.Lo {
		off = putF64(buf, off, v)
	}
	for _, v := range r.Hi {
		off = putF64(buf, off, v)
	}
	return off
}

func getRect(buf []byte, off, dim int) (geom.Rect, int) {
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for i := 0; i < dim; i++ {
		lo[i], off = getF64(buf, off)
	}
	for i := 0; i < dim; i++ {
		hi[i], off = getF64(buf, off)
	}
	return geom.Rect{Lo: lo, Hi: hi}, off
}

func putCFB(buf []byte, off int, c pcrCFB) int {
	for _, arr := range [][]float64{c.AlphaLo, c.BetaLo, c.AlphaHi, c.BetaHi} {
		for _, v := range arr {
			off = putF64(buf, off, v)
		}
	}
	return off
}

func getCFB(buf []byte, off, dim int) (pcrCFB, int) {
	c := pcrCFB{
		AlphaLo: make([]float64, dim), BetaLo: make([]float64, dim),
		AlphaHi: make([]float64, dim), BetaHi: make([]float64, dim),
	}
	for _, arr := range [][]float64{c.AlphaLo, c.BetaLo, c.AlphaHi, c.BetaHi} {
		for i := 0; i < dim; i++ {
			arr[i], off = getF64(buf, off)
		}
	}
	return c, off
}
