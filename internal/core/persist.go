package core

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/pagefile"
	"repro/internal/pcr"
)

// Tree metadata is persisted in a dedicated page so file-backed indexes can
// be closed and reopened. Layout (little endian):
//
//	magic u32 | kind u8 | dim u8 | catalog u16 |
//	rootPage u32 | rootLevel u32 | size u64 | dataPage u32 | epoch u64
//
// The metadata page is the commit point of the shadow-paging scheme: it is
// the only page (besides slotted data pages) ever rewritten in place, and
// it is written only after every page of the epoch it names is durable.
const metaMagic = 0x55545231 // "UTR1"

// writeMeta serializes the tree's working state to the metadata page. The
// caller is responsible for flushing the buffer pool first (CommitWithMeta
// does); the page is exempted from the copy-on-write check because
// rewriting it in place is exactly how an epoch becomes the committed one.
func (t *Tree) writeMeta(page pagefile.PageID) error {
	buf := make([]byte, pagefile.PageSize)
	binary.LittleEndian.PutUint32(buf[0:], metaMagic)
	buf[4] = byte(t.kind)
	buf[5] = byte(t.dim)
	binary.LittleEndian.PutUint16(buf[6:], uint16(t.cat.Size()))
	binary.LittleEndian.PutUint32(buf[8:], uint32(t.rootPage))
	binary.LittleEndian.PutUint32(buf[12:], uint32(t.rootLevel))
	binary.LittleEndian.PutUint64(buf[16:], uint64(t.size))
	binary.LittleEndian.PutUint32(buf[24:], uint32(t.data.CurrentPage()))
	binary.LittleEndian.PutUint64(buf[28:], t.vs.Epoch()+1) // the epoch this write commits
	t.vs.MarkInPlace(page)
	return t.store.Write(page, buf)
}

// SaveMeta commits the tree through the given metadata page (allocate one
// with AllocMetaPage before first use): flush, metadata write, epoch
// publication — see CommitWithMeta.
func (t *Tree) SaveMeta(page pagefile.PageID) error {
	return t.CommitWithMeta(page)
}

// AllocMetaPage reserves a page for metadata on a fresh store; call before
// inserting so the page id is stable (typically the first page).
func (t *Tree) AllocMetaPage() (pagefile.PageID, error) {
	return t.store.Alloc()
}

// Open reconstructs a Tree from a store and its metadata page — after a
// clean close or a crash: the metadata names the last committed epoch, and
// since committed pages are never overwritten in place, that epoch's tree
// is intact whatever partial shadow writes a dying process left behind.
// Runtime options (buffering, refinement) come from opt; structural fields
// (kind, dim, catalog) come from the metadata.
func Open(store pagefile.Store, metaPage pagefile.PageID, opt Options) (*Tree, error) {
	buf := make([]byte, pagefile.PageSize)
	if err := store.Read(metaPage, buf); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != metaMagic {
		return nil, fmt.Errorf("core: page %d is not a U-tree metadata page", metaPage)
	}
	kind := Kind(buf[4])
	dim := int(buf[5])
	m := int(binary.LittleEndian.Uint16(buf[6:]))
	if dim < 1 || m < 2 || (kind != UTree && kind != UPCR) {
		return nil, fmt.Errorf("core: corrupt metadata (kind=%d dim=%d m=%d)", kind, dim, m)
	}

	bufPages := opt.BufferPages
	if bufPages == 0 {
		bufPages = 256
	}
	samples := opt.MCSamples
	if samples == 0 {
		samples = 10000
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	epoch := binary.LittleEndian.Uint64(buf[28:])
	vs := pagefile.NewVersionedStore(store, epoch)
	t := &Tree{
		kind:    kind,
		dim:     dim,
		cat:     pcr.UniformCatalog(m),
		store:   vs,
		vs:      vs,
		qcache:  pcr.NewQuantileCache(),
		rng:     rand.New(rand.NewSource(seed)),
		samples: samples,
		exact:   opt.ExactRefinement,
	}
	t.seed = seed
	if opt.AdaptivePlanning {
		t.planner = newPlanner()
	}
	t.probFilter = opt.ProbFilter
	t.setPrefetchWorkers(opt.PrefetchWorkers)
	t.pool = pagefile.NewBufferPool(t.store, bufPages)
	t.vs.AttachPool(t.pool)
	t.attachNodeCache(opt.NodeCacheEntries)
	t.leafCap, t.innerCap = capacities(kind, dim, m)
	t.leafEntrySize, t.innerEntrySize = entrySizes(kind, dim, m)
	t.minLeaf = max1(t.leafCap * 2 / 5)
	t.minInner = max1(t.innerCap * 2 / 5)
	t.reinsertLeaf = max1(t.leafCap * 3 / 10)
	t.reinsertInner = max1(t.innerCap * 3 / 10)

	t.rootPage = pagefile.PageID(binary.LittleEndian.Uint32(buf[8:]))
	t.rootLevel = int(binary.LittleEndian.Uint32(buf[12:]))
	t.size = int(binary.LittleEndian.Uint64(buf[16:]))
	t.data = pagefile.OpenDataFileAt(t.store, pagefile.PageID(binary.LittleEndian.Uint32(buf[24:])))
	t.vs.SetTombstoner(t.data.DeleteBatch)
	// Publish the recovered state as the committed epoch so snapshots work
	// immediately and the first mutation copy-on-writes the recovered pages.
	t.vs.SeedState(t.workingState())
	// A reopened tree is already committed, so the planner's model can be
	// built right away instead of waiting for the next commit.
	t.maybeRefreshPlanner()
	t.vs.StartReclaimer(opt.ReclaimInterval, opt.ReclaimBudget)
	t.StartScrubber(opt.ScrubInterval, opt.ScrubBudget)
	return t, nil
}

// ReachablePages walks the committed tree and returns every page it
// references: node pages, the data pages held by leaf entries, and the
// current append page. This is the live set for the open-time leak sweep —
// a crash between an epoch's metadata write and its garbage drain leaves
// superseded shadow pages allocated but unreferenced, and the store can
// return exactly the complement of this set (plus its own metadata) to the
// free list.
func (t *Tree) ReachablePages() (map[pagefile.PageID]bool, error) {
	reach := make(map[pagefile.PageID]bool)
	err := t.walk(t.rootPage, func(n *node) error {
		reach[n.page] = true
		if n.level == 0 {
			for i := range n.entries {
				if p := n.entries[i].addr.Page; p != pagefile.InvalidPage {
					reach[p] = true
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if p := t.data.CurrentPage(); p != pagefile.InvalidPage {
		reach[p] = true
	}
	return reach, nil
}
