package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/pagefile"
	"repro/internal/pcr"
	"repro/internal/rstar"
)

// Options configures a Tree.
type Options struct {
	// Dim is the data dimensionality (required, ≥ 1).
	Dim int
	// Kind selects U-tree (default) or U-PCR.
	Kind Kind
	// CatalogSize m; 0 selects the paper defaults (15 for U-tree, 9 for
	// U-PCR).
	CatalogSize int
	// Store supplies page storage; nil selects an in-memory store.
	Store pagefile.Store
	// BufferPages sizes the LRU pool (default 256).
	BufferPages int
	// MCSamples is n1 of Equation 3 for refinement (default 10000; the
	// paper uses 10^6 — see DESIGN.md substitution 3).
	MCSamples int
	// ExactRefinement uses the pdf's exact-probability oracle instead of
	// Monte Carlo when available (deterministic tests).
	ExactRefinement bool
	// Seed drives the refinement sampler (default 1).
	Seed int64
	// SplitStrategy selects how node splits sort entries (ablation knob;
	// the default is the paper's median-value heuristic).
	SplitStrategy SplitStrategy
	// DisableReinsert turns off R* forced reinsertion (ablation knob).
	DisableReinsert bool
	// PrefetchWorkers bounds the async page fetches one query may have in
	// flight: the query hot paths overlap the independent page reads a
	// traversal already knows it needs (sibling children, refinement data
	// pages, speculative NN heap entries). 0 disables intra-query
	// prefetching — every page read is a sequential stall, as in the
	// paper's serial cost model. Results are byte-identical either way.
	PrefetchWorkers int
	// ReclaimInterval > 0 starts the background epoch reclaimer: retired
	// pages and data-record tombstones drain on a dedicated goroutine's
	// ticks instead of inline at Commit, bounded by ReclaimBudget page
	// operations per tick (0 selects pagefile.DefaultReclaimBudget). The
	// owner must StopBackgroundReclaim (or Close via the public API) before
	// discarding the tree.
	ReclaimInterval time.Duration
	// ReclaimBudget is the per-tick page budget of the background
	// reclaimer; ignored when ReclaimInterval is 0.
	ReclaimBudget int
	// NodeCacheEntries bounds the decoded-node cache: an LRU of node
	// values decoded from committed pages, shared lock-free across
	// readers, sitting above the buffer pool so a hot traversal skips
	// both the page lookup and the per-entry decode allocations. 0
	// selects the default (1024 entries); negative disables the cache.
	// Coherence is automatic — entries drop when the versioned store
	// physically frees their page, and shadow pages are never cached.
	NodeCacheEntries int
	// ScrubInterval > 0 starts the background page scrubber: a dedicated
	// goroutine periodically walks the committed tree and verifies page
	// checksums through the store's PageVerifier probe, quarantining
	// latent corruption before any query trips over it (see HealthInfo).
	// The owner must StopBackgroundReclaim (which stops the scrubber too)
	// before discarding the tree.
	ScrubInterval time.Duration
	// ScrubBudget bounds the page verifications one scrub tick performs
	// (0 selects DefaultScrubBudget); ignored when ScrubInterval is 0.
	ScrubBudget int
	// AdaptivePlanning enables the cost-model-driven query planner: the
	// tree maintains a CostModel over its committed shape (rebuilt at
	// commit when the tree drifts), predicts each query's node accesses
	// before descent, and picks the prefetch fan-out and speculative-issue
	// cap from the prediction — serial for cheap queries, a deep pipeline
	// for expensive ones. Measured accesses calibrate the model online.
	// Explicit per-query options (WithPrefetchWorkers, WithPageBudget)
	// always override the planner. Results are byte-identical either way.
	AdaptivePlanning bool
	// ProbFilter enables the Bernecker-style probabilistic candidate
	// filter: before refinement, each candidate's qualification probability
	// is upper-bounded from its PCR slabs and the candidate is discarded
	// when the bound falls below the query threshold. The filter only
	// drops provably non-qualifying candidates, so the result set is
	// unchanged; under Monte-Carlo refinement the sampler stream shifts
	// (fewer candidates sampled), so byte-identity to the unfiltered path
	// is guaranteed only with ExactRefinement.
	ProbFilter bool
}

// SplitStrategy selects the rectangles fed to the R* split during overflow
// (Section 5.3 discusses the trade-off).
type SplitStrategy int

const (
	// SplitMedian uses e.MBR(p_median) — the paper's heuristic avoiding one
	// sort per catalog value.
	SplitMedian SplitStrategy = iota
	// SplitAtZero uses e.MBR(p_1) = e.MBR(0) only, ignoring the catalog —
	// the naive adaptation the paper improves upon.
	SplitAtZero
	// SplitSummed runs the R* split at every catalog value and keeps the
	// partition with the smallest summed overlap — the "ideal" split whose
	// sorting cost the paper deems too expensive.
	SplitSummed
)

// Tree is a paged uncertain-data index: the U-tree of the paper or its
// U-PCR variant. Not safe for concurrent use.
type Tree struct {
	kind Kind
	dim  int
	cat  pcr.Catalog

	// store is the versioned (copy-on-write) view over the caller's page
	// storage; vs is the same object with its epoch surface exposed. All
	// tree I/O — node pages via the pool, data pages, metadata — goes
	// through it.
	store pagefile.Store
	vs    *pagefile.VersionedStore
	pool  *pagefile.BufferPool
	data  *pagefile.DataFile

	// ncache caches decoded nodes of committed pages (nil when disabled);
	// consulted only by the query paths — mutation descents decode
	// private copies they may edit in place.
	ncache *nodeCache

	rootPage  pagefile.PageID
	rootLevel int
	size      int

	leafCap, innerCap             int
	leafEntrySize, innerEntrySize int
	minLeaf, minInner             int
	reinsertLeaf, reinsertInner   int

	qcache  *pcr.QuantileCache
	rng     *rand.Rand
	samples int
	exact   bool

	// seed is kept so the read-only query path can derive a deterministic
	// per-query sampler (concurrent queries must not share t.rng).
	seed int64

	splitStrategy   SplitStrategy
	disableReinsert bool

	// prefetch pipelines one query's independent page reads; nil when
	// intra-query prefetching is disabled. Fixed at open time (per-query
	// overrides carry their own prefetcher), so queries read it freely.
	prefetch *pagefile.Prefetcher

	// planner is the adaptive query planner (nil unless
	// Options.AdaptivePlanning); probFilter arms the PCR-slab candidate
	// filter by default (per-query options can still flip it).
	planner    *Planner
	probFilter bool

	// Logical I/O counters (reset via ResetCounters). Atomic so the
	// read-only query path can run under a shared lock.
	nodeReads  atomic.Int64
	nodeWrites atomic.Int64

	// Update statistics for the Fig. 11 experiment.
	insertStats UpdateStats
	deleteStats UpdateStats

	// inBatch marks an open explicit batch (BeginBatch/CommitBatch).
	inBatch bool

	// Storage-health state (see health.go and scrub.go): the quarantine
	// registry of condemned pages, the background scrubber's control
	// block and work queue, and its lifetime progress counters.
	quar         quarantine
	scrubMu      sync.Mutex
	scrub        *scrubState
	scrubQueueMu sync.Mutex
	scrubQueue   []pagefile.PageID
	scrubbed     atomic.Int64
	scrubErrs    atomic.Int64
}

// UpdateStats accumulates the paper's update-cost breakdown.
type UpdateStats struct {
	Ops        int64
	PageReads  int64 // logical node reads
	PageWrites int64 // logical node writes
	CPUTime    time.Duration
}

// New creates an empty index.
func New(opt Options) (*Tree, error) {
	if opt.Dim < 1 {
		return nil, fmt.Errorf("core: dimensionality %d", opt.Dim)
	}
	m := opt.CatalogSize
	if m == 0 {
		if opt.Kind == UPCR {
			m = 9
		} else {
			m = 15
		}
	}
	if m < 2 {
		return nil, fmt.Errorf("core: catalog size %d too small", m)
	}
	store := opt.Store
	if store == nil {
		store = pagefile.NewMemStore()
	}
	bufPages := opt.BufferPages
	if bufPages == 0 {
		bufPages = 256
	}
	samples := opt.MCSamples
	if samples == 0 {
		samples = 10000
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	vs := pagefile.NewVersionedStore(store, 0)
	t := &Tree{
		kind:    opt.Kind,
		dim:     opt.Dim,
		cat:     pcr.UniformCatalog(m),
		store:   vs,
		vs:      vs,
		qcache:  pcr.NewQuantileCache(),
		rng:     rand.New(rand.NewSource(seed)),
		samples: samples,
		exact:   opt.ExactRefinement,

		splitStrategy:   opt.SplitStrategy,
		disableReinsert: opt.DisableReinsert,
	}
	t.seed = seed
	if opt.AdaptivePlanning {
		t.planner = newPlanner()
	}
	t.probFilter = opt.ProbFilter
	t.setPrefetchWorkers(opt.PrefetchWorkers)
	t.pool = pagefile.NewBufferPool(t.store, bufPages)
	t.vs.AttachPool(t.pool)
	t.attachNodeCache(opt.NodeCacheEntries)
	t.data = pagefile.NewDataFile(t.store)
	t.vs.SetTombstoner(t.data.DeleteBatch)
	t.leafCap, t.innerCap = capacities(t.kind, t.dim, m)
	t.leafEntrySize, t.innerEntrySize = entrySizes(t.kind, t.dim, m)
	if t.leafCap < 4 || t.innerCap < 4 {
		return nil, fmt.Errorf("core: %v with d=%d m=%d yields fanout %d/%d < 4; reduce the catalog",
			t.kind, t.dim, m, t.leafCap, t.innerCap)
	}
	t.minLeaf = max1(t.leafCap * 2 / 5)
	t.minInner = max1(t.innerCap * 2 / 5)
	t.reinsertLeaf = max1(t.leafCap * 3 / 10)
	t.reinsertInner = max1(t.innerCap * 3 / 10)

	root, err := t.allocNode(0)
	if err != nil {
		return nil, err
	}
	if err := t.writeNode(root); err != nil {
		return nil, err
	}
	t.rootPage = root.page
	t.rootLevel = 0
	// Commit the empty tree as epoch 1 so snapshots exist from birth and
	// the copy-on-write discipline applies to every later mutation.
	if err := t.Commit(); err != nil {
		return nil, err
	}
	t.vs.StartReclaimer(opt.ReclaimInterval, opt.ReclaimBudget)
	t.StartScrubber(opt.ScrubInterval, opt.ScrubBudget)
	return t, nil
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// Kind returns the index variant.
func (t *Tree) Kind() Kind { return t.kind }

// Dim returns the data dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Catalog returns the U-catalog.
func (t *Tree) Catalog() pcr.Catalog { return t.cat }

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.rootLevel + 1 }

// Fanout reports the leaf and intermediate node capacities (for Table 1
// style reporting).
func (t *Tree) Fanout() (leaf, inner int) { return t.leafCap, t.innerCap }

// SizeBytes reports total pages × page size (index + data pages).
func (t *Tree) SizeBytes() int64 {
	return int64(t.store.NumPages()) * pagefile.PageSize
}

// IndexPages returns the number of tree pages (excludes data pages), walking
// the tree; O(nodes).
func (t *Tree) IndexPages() (int, error) {
	count := 0
	err := t.walk(t.rootPage, func(n *node) error {
		count++
		return nil
	})
	return count, err
}

// InsertStats and DeleteStats expose the accumulated update costs.
func (t *Tree) InsertStats() UpdateStats { return t.insertStats }
func (t *Tree) DeleteStats() UpdateStats { return t.deleteStats }

// ResetCounters zeroes the logical I/O counters and update stats.
func (t *Tree) ResetCounters() {
	t.nodeReads.Store(0)
	t.nodeWrites.Store(0)
	t.insertStats = UpdateStats{}
	t.deleteStats = UpdateStats{}
}

// NodeIO returns the logical node reads/writes since the last reset.
func (t *Tree) NodeIO() (reads, writes int64) {
	return t.nodeReads.Load(), t.nodeWrites.Load()
}

// CacheStats reports the buffer pool's hit/miss counters, for throughput
// reporting in batch query stats.
func (t *Tree) CacheStats() (hits, misses int64) { return t.pool.HitRate() }

// attachNodeCache builds the decoded-node cache per Options.NodeCacheEntries
// (0 → default, negative → disabled) and registers its invalidation hook
// with the versioned store, so entries drop the moment their page is
// physically freed.
func (t *Tree) attachNodeCache(entries int) {
	if entries < 0 {
		return
	}
	if entries == 0 {
		entries = defaultNodeCacheEntries
	}
	t.ncache = newNodeCache(entries)
	t.vs.AttachInvalidator(t.ncache.invalidate)
}

// NodeCacheStats reports the decoded-node cache's cumulative hit/miss
// counters (both zero when the cache is disabled).
func (t *Tree) NodeCacheStats() (hits, misses int64) {
	if t.ncache == nil {
		return 0, 0
	}
	return t.ncache.stats()
}

// setPrefetchWorkers arms the default intra-query prefetch fan-out
// (0 disables). Fixed at open time — per-query overrides go through
// QueryOpts.Prefetch, which takes no tree state at all.
func (t *Tree) setPrefetchWorkers(n int) {
	if n <= 0 {
		t.prefetch = nil
		return
	}
	t.prefetch = pagefile.NewPrefetcher(n)
}

// PrefetchWorkers reports the configured intra-query prefetch fan-out (0
// when disabled).
func (t *Tree) PrefetchWorkers() int {
	if t.prefetch == nil {
		return 0
	}
	return t.prefetch.Workers()
}

// Flush writes the buffered data page and all buffered node pages through
// to the store and drains whatever retired pages the current snapshot pins
// allow (writer-side, like Commit).
func (t *Tree) Flush() error {
	if err := t.data.Flush(); err != nil {
		return err
	}
	if err := t.pool.Flush(); err != nil {
		return err
	}
	return t.vs.Reclaim()
}

// buildLeafEntry derives the leaf entry of an object: PCRs at the catalog
// values, then CFBs (U-tree) or the PCR list itself (U-PCR).
func (t *Tree) buildLeafEntry(o Object) (entry, error) {
	if o.PDF.Dim() != t.dim {
		return entry{}, fmt.Errorf("core: object dim %d, tree dim %d", o.PDF.Dim(), t.dim)
	}
	pcrs := pcr.Compute(o.PDF, t.cat, t.qcache)
	e := entry{id: o.ID, mbr: o.PDF.MBR()}
	if t.kind == UTree {
		e.out = pcr.FitOut(pcrs)
		e.in = pcr.FitIn(pcrs)
	} else {
		e.pcrs = pcrs.Boxes
		// pcr(0) is the region MBR by construction; keep them identical so
		// the shared serialization slot holds.
		e.pcrs[0] = e.mbr.Clone()
	}
	return e, nil
}

// Insert adds an object to the index. The object's details (pdf parameters)
// are appended to the data file and referenced from the leaf entry.
func (t *Tree) Insert(o Object) error {
	start := time.Now()
	r0, w0 := t.nodeReads.Load(), t.nodeWrites.Load()

	e, err := t.buildLeafEntry(o)
	if err != nil {
		return err
	}
	rec, err := encodeObject(o)
	if err != nil {
		return err
	}
	addr, err := t.data.Append(rec)
	if err != nil {
		return err
	}
	e.addr = addr

	if err := t.insertEntry(e, 0, make(map[int]bool)); err != nil {
		return err
	}
	t.size++

	t.insertStats.Ops++
	t.insertStats.PageReads += t.nodeReads.Load() - r0
	t.insertStats.PageWrites += t.nodeWrites.Load() - w0
	t.insertStats.CPUTime += time.Since(start)
	return nil
}

// pathElem records one step of a root-to-node descent.
type pathElem struct {
	n        *node
	childIdx int
}

// insertEntry places e on a node at the target level, handling overflow via
// forced reinsertion (once per level per top-level operation) and splits.
// An overfull node is never serialized: reinsertion/split shrink it in
// memory first.
func (t *Tree) insertEntry(e entry, level int, reinserted map[int]bool) error {
	n, path, err := t.choosePath(e, level)
	if err != nil {
		return err
	}
	n.entries = append(n.entries, e)
	capacity := t.leafCap
	if !n.leaf() {
		capacity = t.innerCap
	}
	if len(n.entries) <= capacity {
		if err := t.writeNode(n); err != nil {
			return err
		}
		return t.refreshPath(path, n)
	}
	// Ancestors must cover the new entry regardless of how the overflow is
	// resolved; n itself is rewritten by the overflow treatment.
	if err := t.refreshPath(path, n); err != nil {
		return err
	}
	return t.handleOverflow(n, path, reinserted)
}

// choosePath descends to the insertion node at the target level using the
// summed-metric ChooseSubtree (Section 5.3), returning the node and the
// root-to-parent path.
func (t *Tree) choosePath(e entry, level int) (*node, []pathElem, error) {
	n, err := t.readNode(t.rootPage)
	if err != nil {
		return nil, nil, err
	}
	eBoxes := t.boundary(&e, level == 0)
	var path []pathElem
	for n.level > level {
		idx := t.chooseSubtree(n, eBoxes)
		path = append(path, pathElem{n: n, childIdx: idx})
		child, err := t.readNode(n.entries[idx].child)
		if err != nil {
			return nil, nil, err
		}
		n = child
	}
	return n, path, nil
}

// chooseSubtree picks the child entry of n minimizing the summed penalty:
// overlap enlargement when children are leaves, else area enlargement, with
// summed area as tiebreak (the R* criteria with each metric replaced by its
// sum over the catalog, Section 5.3).
func (t *Tree) chooseSubtree(n *node, eBoxes []geom.Rect) int {
	m := t.cat.Size()
	best := 0
	if n.level == 1 {
		bestOv, bestEnl, bestArea := inf(), inf(), inf()
		for i := range n.entries {
			grown := t.grownBoxes(n.entries[i].boxes, eBoxes)
			var dOv float64
			for j := 0; j < m; j++ {
				gj := t.boxAt(grown, j)
				oj := t.boxAt(n.entries[i].boxes, j)
				for k := range n.entries {
					if k == i {
						continue
					}
					other := t.boxAt(n.entries[k].boxes, j)
					dOv += gj.Overlap(other) - oj.Overlap(other)
				}
			}
			enl := t.summedEnlargement(n.entries[i].boxes, grown)
			area := t.summedArea(n.entries[i].boxes)
			if dOv < bestOv || (dOv == bestOv && enl < bestEnl) ||
				(dOv == bestOv && enl == bestEnl && area < bestArea) {
				bestOv, bestEnl, bestArea, best = dOv, enl, area, i
			}
		}
		return best
	}
	bestEnl, bestArea := inf(), inf()
	for i := range n.entries {
		grown := t.grownBoxes(n.entries[i].boxes, eBoxes)
		enl := t.summedEnlargement(n.entries[i].boxes, grown)
		area := t.summedArea(n.entries[i].boxes)
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			bestEnl, bestArea, best = enl, area, i
		}
	}
	return best
}

func inf() float64 { return 1e308 }

// grownBoxes returns the parent boundary boxes after absorbing eBoxes.
// Both sets share the same length (2 for U-tree, m for U-PCR).
func (t *Tree) grownBoxes(parent, eBoxes []geom.Rect) []geom.Rect {
	g := cloneBoxes(parent)
	unionBoundaries(g, eBoxes)
	return g
}

// summedArea is Σ_j AREA(boxAt(j)).
func (t *Tree) summedArea(boxes []geom.Rect) float64 {
	var s float64
	for j := 0; j < t.cat.Size(); j++ {
		s += t.boxAt(boxes, j).Area()
	}
	return s
}

// summedMargin is Σ_j MARGIN(boxAt(j)).
func (t *Tree) summedMargin(boxes []geom.Rect) float64 {
	var s float64
	for j := 0; j < t.cat.Size(); j++ {
		s += t.boxAt(boxes, j).Margin()
	}
	return s
}

// summedEnlargement is Σ_j [AREA(grown_j) − AREA(old_j)].
func (t *Tree) summedEnlargement(old, grown []geom.Rect) float64 {
	var s float64
	for j := 0; j < t.cat.Size(); j++ {
		s += t.boxAt(grown, j).Area() - t.boxAt(old, j).Area()
	}
	return s
}

// summedCenterDist is Σ_j CDIST(aBoxes_j, bBoxes_j).
func (t *Tree) summedCenterDist(a, b []geom.Rect) float64 {
	var s float64
	for j := 0; j < t.cat.Size(); j++ {
		s += t.boxAt(a, j).CenterDist(t.boxAt(b, j))
	}
	return s
}

// nodeBoundary computes a node's boundary boxes (union over its entries).
func (t *Tree) nodeBoundary(n *node) []geom.Rect {
	b := cloneBoxes(t.boundary(&n.entries[0], n.leaf()))
	for i := 1; i < len(n.entries); i++ {
		unionBoundaries(b, t.boundary(&n.entries[i], n.leaf()))
	}
	return b
}

// refreshPath recomputes the parent entries' boxes bottom-up along the
// descent path after child mutation, and refreshes the child page pointer
// — copy-on-write relocates a rewritten child to a shadow page, so the
// parent entry must follow it.
func (t *Tree) refreshPath(path []pathElem, target *node) error {
	child := target
	for i := len(path) - 1; i >= 0; i-- {
		pe := path[i]
		pe.n.entries[pe.childIdx].boxes = t.nodeBoundary(child)
		pe.n.entries[pe.childIdx].child = child.page
		if err := t.writeNode(pe.n); err != nil {
			return err
		}
		child = pe.n
	}
	return nil
}

// handleOverflow applies R* overflow treatment: forced reinsertion the
// first time a level overflows within one top-level operation (never for
// the root), split otherwise.
func (t *Tree) handleOverflow(n *node, path []pathElem, reinserted map[int]bool) error {
	capByLevel := t.leafCap
	if !n.leaf() {
		capByLevel = t.innerCap
	}
	if len(n.entries) <= capByLevel {
		return nil
	}
	if len(path) > 0 && !reinserted[n.level] && !t.disableReinsert {
		reinserted[n.level] = true
		return t.forceReinsert(n, path, reinserted)
	}
	return t.split(n, path, reinserted)
}

// forceReinsert removes the 30% of entries whose summed centroid distance
// from the node's boundary is largest, then reinserts them closest-first.
func (t *Tree) forceReinsert(n *node, path []pathElem, reinserted map[int]bool) error {
	nodeBoxes := t.nodeBoundary(n)
	type cand struct {
		idx  int
		dist float64
	}
	cands := make([]cand, len(n.entries))
	for i := range n.entries {
		cands[i] = cand{i, t.summedCenterDist(t.boundary(&n.entries[i], n.leaf()), nodeBoxes)}
	}
	// Selection-sort the p farthest (p is small).
	p := t.reinsertLeaf
	if !n.leaf() {
		p = t.reinsertInner
	}
	for i := 0; i < p; i++ {
		maxJ := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].dist > cands[maxJ].dist {
				maxJ = j
			}
		}
		cands[i], cands[maxJ] = cands[maxJ], cands[i]
	}
	removeSet := make(map[int]bool, p)
	removed := make([]entry, 0, p)
	for i := 0; i < p; i++ {
		removeSet[cands[i].idx] = true
	}
	kept := make([]entry, 0, len(n.entries)-p)
	for i := range n.entries {
		if removeSet[i] {
			removed = append(removed, n.entries[i])
		} else {
			kept = append(kept, n.entries[i])
		}
	}
	n.entries = kept
	if err := t.writeNode(n); err != nil {
		return err
	}
	if err := t.refreshPath(path, n); err != nil {
		return err
	}
	// Close reinsert: the selection placed the farthest first; reinsert in
	// reverse so the closest go back in first.
	for i := len(removed) - 1; i >= 0; i-- {
		if err := t.insertEntry(removed[i], n.level, reinserted); err != nil {
			return err
		}
	}
	return nil
}

// split divides an overflowing node. Per Section 5.3, the entry
// distribution is decided by the R* split applied to the e.MBR(p_median)
// rectangles of the node's entries (other strategies available as ablation
// knobs).
func (t *Tree) split(n *node, path []pathElem, reinserted map[int]bool) error {
	minFill := t.minLeaf
	if !n.leaf() {
		minFill = t.minInner
	}
	li, ri := t.chooseSplit(n, minFill)
	left := make([]entry, 0, len(li))
	right := make([]entry, 0, len(ri))
	for _, i := range li {
		left = append(left, n.entries[i])
	}
	for _, i := range ri {
		right = append(right, n.entries[i])
	}
	n.entries = left
	sib, err := t.allocNode(n.level)
	if err != nil {
		return err
	}
	sib.entries = right
	if err := t.writeNode(n); err != nil {
		return err
	}
	if err := t.writeNode(sib); err != nil {
		return err
	}

	if len(path) == 0 {
		// Root split: grow the tree.
		newRoot, err := t.allocNode(n.level + 1)
		if err != nil {
			return err
		}
		newRoot.entries = []entry{
			{child: n.page, boxes: t.nodeBoundary(n)},
			{child: sib.page, boxes: t.nodeBoundary(sib)},
		}
		if err := t.writeNode(newRoot); err != nil {
			return err
		}
		t.rootPage = newRoot.page
		t.rootLevel = newRoot.level
		return nil
	}

	parent := path[len(path)-1]
	parent.n.entries[parent.childIdx].boxes = t.nodeBoundary(n)
	parent.n.entries[parent.childIdx].child = n.page // COW may have moved n
	parent.n.entries = append(parent.n.entries, entry{child: sib.page, boxes: t.nodeBoundary(sib)})
	if len(parent.n.entries) <= t.innerCap {
		if err := t.writeNode(parent.n); err != nil {
			return err
		}
		return t.refreshPath(path[:len(path)-1], parent.n)
	}
	if err := t.refreshPath(path[:len(path)-1], parent.n); err != nil {
		return err
	}
	return t.handleOverflow(parent.n, path[:len(path)-1], reinserted)
}

// chooseSplit returns the two index groups for splitting node n according
// to the tree's split strategy.
func (t *Tree) chooseSplit(n *node, minFill int) (left, right []int) {
	boundaries := make([][]geom.Rect, len(n.entries))
	for i := range n.entries {
		boundaries[i] = t.boundary(&n.entries[i], n.leaf())
	}
	rectsAt := func(j int) []geom.Rect {
		rects := make([]geom.Rect, len(boundaries))
		for i := range boundaries {
			rects[i] = t.boxAt(boundaries[i], j)
		}
		return rects
	}
	switch t.splitStrategy {
	case SplitAtZero:
		return rstar.SplitGroups(rectsAt(0), minFill)
	case SplitSummed:
		// Evaluate the R* split at every catalog value, score each
		// partition by its summed group overlap, keep the best.
		bestScore := inf()
		for j := 0; j < t.cat.Size(); j++ {
			li, ri := rstar.SplitGroups(rectsAt(j), minFill)
			score := t.partitionOverlap(boundaries, li, ri)
			if score < bestScore {
				bestScore = score
				left, right = li, ri
			}
		}
		return left, right
	default: // SplitMedian — the paper's heuristic.
		return rstar.SplitGroups(rectsAt(t.cat.MedianIndex()), minFill)
	}
}

// partitionOverlap scores a candidate split: Σ_j OVERLAP(mbr(left, j),
// mbr(right, j)).
func (t *Tree) partitionOverlap(boundaries [][]geom.Rect, li, ri []int) float64 {
	groupBoxes := func(idx []int) []geom.Rect {
		g := cloneBoxes(boundaries[idx[0]])
		for _, i := range idx[1:] {
			unionBoundaries(g, boundaries[i])
		}
		return g
	}
	lb := groupBoxes(li)
	rb := groupBoxes(ri)
	var s float64
	for j := 0; j < t.cat.Size(); j++ {
		s += t.boxAt(lb, j).Overlap(t.boxAt(rb, j))
	}
	return s
}

// walk visits every node of the tree.
func (t *Tree) walk(page pagefile.PageID, fn func(*node) error) error {
	n, err := t.readNode(page)
	if err != nil {
		return err
	}
	if err := fn(n); err != nil {
		return err
	}
	if n.leaf() {
		return nil
	}
	for i := range n.entries {
		if err := t.walk(n.entries[i].child, fn); err != nil {
			return err
		}
	}
	return nil
}
