package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/updf"
)

// --- Nearest neighbors -----------------------------------------------------

// bruteNN is the oracle: expected distances for every object, sorted.
func bruteNN(objs []Object, q geom.Point, k, samples int) []NNResult {
	all := make([]NNResult, len(objs))
	for i, o := range objs {
		all[i] = NNResult{ID: o.ID, ExpectedDist: ExpectedDistance(o.PDF, q, samples, o.ID)}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].ExpectedDist < all[b].ExpectedDist })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestNearestNeighborsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	objs := makeObjects(500, 1000, rng)
	tree, err := New(Options{Dim: 2, ExactRefinement: true, MCSamples: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 12; trial++ {
		q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		k := 1 + rng.Intn(8)
		got, stats, err := tree.NearestNeighbors(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteNN(objs, q, k, tree.samples)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			// IDs may swap between near-equal distances; distances must
			// agree position-wise (deterministic estimator).
			if math.Abs(got[i].ExpectedDist-want[i].ExpectedDist) > 1e-9 {
				t.Fatalf("trial %d rank %d: dist %g vs %g",
					trial, i, got[i].ExpectedDist, want[i].ExpectedDist)
			}
		}
		// Ascending order.
		for i := 1; i < len(got); i++ {
			if got[i].ExpectedDist < got[i-1].ExpectedDist {
				t.Fatalf("results not sorted: %+v", got)
			}
		}
		// Best-first search must evaluate far fewer objects than brute force.
		if stats.DistanceComps >= len(objs) {
			t.Fatalf("trial %d: %d distance computations for %d objects",
				trial, stats.DistanceComps, len(objs))
		}
	}
}

func TestNearestNeighborsKLargerThanData(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	objs := makeObjects(10, 200, rng)
	tree := buildTree(t, UTree, objs, 0)
	got, _, err := tree.NearestNeighbors(geom.Point{100, 100}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d results, want all 10", len(got))
	}
}

func TestNearestNeighborsValidation(t *testing.T) {
	tree, _ := New(Options{Dim: 2})
	if _, _, err := tree.NearestNeighbors(geom.Point{1}, 1); err == nil {
		t.Error("wrong-dim query accepted")
	}
	if _, _, err := tree.NearestNeighbors(geom.Point{1, 2}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	// Empty tree: no results, no error.
	got, _, err := tree.NearestNeighbors(geom.Point{1, 2}, 3)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty tree NN: %v, %d results", err, len(got))
	}
}

func TestExpectedDistanceDeterministic(t *testing.T) {
	p := updf.NewUniformBall(geom.Point{50, 50}, 10)
	q := geom.Point{80, 50}
	a := ExpectedDistance(p, q, 5000, 7)
	b := ExpectedDistance(p, q, 5000, 7)
	if a != b {
		t.Fatal("same seed produced different estimates")
	}
	// Ball at distance 30 with radius 10: E[dist] ∈ (20, 40), near 30.
	if a < 25 || a > 35 {
		t.Fatalf("E[dist] = %g, expected ≈ 30", a)
	}
}

func TestMinDist(t *testing.T) {
	r := geom.NewRect(geom.Point{0, 0}, geom.Point{10, 10})
	if got := minDist(geom.Point{5, 5}, r); got != 0 {
		t.Fatalf("inside point minDist = %g", got)
	}
	if got := minDist(geom.Point{13, 14}, r); math.Abs(got-5) > 1e-12 {
		t.Fatalf("corner minDist = %g, want 5", got)
	}
	if got := minDist(geom.Point{-3, 5}, r); got != 3 {
		t.Fatalf("edge minDist = %g, want 3", got)
	}
}

// --- Bulk loading -----------------------------------------------------------

func TestBulkLoadMatchesIncremental(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running; skipped with -short")
	}
	rng := rand.New(rand.NewSource(23))
	objs := makeObjects(1200, 1500, rng)

	inc := buildTree(t, UTree, objs, 0)
	bulk, err := New(Options{Dim: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.BulkLoad(objs); err != nil {
		t.Fatal(err)
	}
	if bulk.Len() != len(objs) {
		t.Fatalf("bulk Len = %d", bulk.Len())
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatalf("bulk invariants: %v", err)
	}

	// Query equivalence.
	for q := 0; q < 60; q++ {
		query := Query{Rect: randomQueryRect(rng, 1500), Prob: 0.05 + rng.Float64()*0.9}
		a, _, err := inc.RangeQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := bulk.RangeQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(resultIDs(a), resultIDs(b)) {
			t.Fatalf("query %d: bulk and incremental disagree", q)
		}
	}

	// Packing: bulk tree should not use more index pages.
	incPages, _ := inc.IndexPages()
	bulkPages, _ := bulk.IndexPages()
	if bulkPages > incPages {
		t.Fatalf("bulk pages %d > incremental %d", bulkPages, incPages)
	}
}

func TestBulkLoadStaysDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	objs := makeObjects(600, 800, rng)
	tree, err := New(Options{Dim: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad(objs[:500]); err != nil {
		t.Fatal(err)
	}
	for _, o := range objs[500:] {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range objs[:100] {
		if err := tree.Delete(o.ID, o.PDF.MBR()); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	scan := NewScan(objs[100:], 9, 0, true, 1)
	for q := 0; q < 30; q++ {
		query := Query{Rect: randomQueryRect(rng, 800), Prob: 0.05 + rng.Float64()*0.9}
		got, _, err := tree.RangeQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		want := scan.BruteForce(query)
		if !sameIDs(resultIDs(got), resultIDs(want)) {
			t.Fatalf("query %d after mixed bulk/dynamic ops", q)
		}
	}
}

func TestBulkLoadErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	objs := makeObjects(10, 100, rng)
	tree, _ := New(Options{Dim: 2})
	if err := tree.Insert(objs[0]); err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad(objs); err == nil {
		t.Error("bulk load on non-empty tree accepted")
	}
	empty, _ := New(Options{Dim: 2})
	if err := empty.BulkLoad(nil); err != nil {
		t.Errorf("empty bulk load: %v", err)
	}
	if empty.Len() != 0 {
		t.Error("empty bulk load changed size")
	}
}

func TestBulkLoadSmallAndExactCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, n := range []int{1, 5, 23, 24, 100} {
		objs := makeObjects(n, 300, rng)
		tree, _ := New(Options{Dim: 2, ExactRefinement: true})
		if err := tree.BulkLoad(objs); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tree.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tree.Len())
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// --- Cost model --------------------------------------------------------------

func TestCostModelPredictsWithinBand(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running; skipped with -short")
	}
	rng := rand.New(rand.NewSource(27))
	objs := makeObjects(2500, 2000, rng)
	tree := buildTree(t, UTree, objs, 0)
	domain := geom.NewRect(geom.Point{0, 0}, geom.Point{2000, 2000})
	cm, err := tree.BuildCostModel(domain)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Levels() < 2 {
		t.Fatalf("model has %d levels", cm.Levels())
	}

	type sample struct{ pred, meas float64 }
	var samples []sample
	for _, qs := range []float64{100, 200, 400, 800} {
		j := tree.CatalogIndexFor(0.6)
		pred := cm.EstimateNodeAccesses([]float64{qs, qs}, 0.6, j)
		var meas float64
		const nq = 30
		for i := 0; i < nq; i++ {
			c := objs[rng.Intn(len(objs))].PDF.Center()
			rq := geom.NewRect(
				geom.Point{c[0] - qs/2, c[1] - qs/2},
				geom.Point{c[0] + qs/2, c[1] + qs/2})
			_, stats, err := tree.RangeQuery(Query{Rect: rq, Prob: 0.6})
			if err != nil {
				t.Fatal(err)
			}
			meas += float64(stats.NodeAccesses)
		}
		meas /= nq
		samples = append(samples, sample{pred, meas})
	}
	// Uncalibrated predictions must be monotone in qs and within a factor
	// of 4 (data-following query centers bias the uniform model).
	for i := 1; i < len(samples); i++ {
		if samples[i].pred <= samples[i-1].pred {
			t.Fatalf("prediction not monotone in qs: %+v", samples)
		}
	}
	for _, s := range samples {
		ratio := s.pred / s.meas
		if ratio < 0.25 || ratio > 4 {
			t.Fatalf("uncalibrated prediction off by >4×: pred=%.1f meas=%.1f", s.pred, s.meas)
		}
	}
	// Calibration tightens the fit.
	preds := make([]float64, len(samples))
	meass := make([]float64, len(samples))
	for i, s := range samples {
		preds[i] = s.pred
		meass[i] = s.meas
	}
	if err := cm.Calibrate(preds, meass); err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		cal := s.pred * cm.CalibrationFactor()
		if ratio := cal / s.meas; ratio < 0.5 || ratio > 2 {
			t.Fatalf("calibrated sample %d off by >2×: %.1f vs %.1f", i, cal, s.meas)
		}
	}
}

func TestCostModelValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	objs := makeObjects(100, 300, rng)
	tree := buildTree(t, UTree, objs, 0)
	if _, err := tree.BuildCostModel(geom.NewRect(geom.Point{0}, geom.Point{1})); err == nil {
		t.Error("wrong-dim domain accepted")
	}
	flat := geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{300, 0}}
	if _, err := tree.BuildCostModel(flat); err == nil {
		t.Error("zero-extent domain accepted")
	}
	cm, err := tree.BuildCostModel(geom.NewRect(geom.Point{0, 0}, geom.Point{300, 300}))
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.Calibrate(nil, nil); err == nil {
		t.Error("empty calibration accepted")
	}
	if err := cm.Calibrate([]float64{0}, []float64{1}); err == nil {
		t.Error("zero-prediction calibration accepted")
	}
}

// --- Ablation knobs ----------------------------------------------------------

func TestSplitStrategiesStayCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running; skipped with -short")
	}
	rng := rand.New(rand.NewSource(29))
	objs := makeObjects(500, 700, rng)
	scan := NewScan(objs, 9, 0, true, 1)
	for _, strat := range []SplitStrategy{SplitMedian, SplitAtZero, SplitSummed} {
		tree, err := New(Options{Dim: 2, ExactRefinement: true, SplitStrategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range objs {
			if err := tree.Insert(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("strategy %d: %v", strat, err)
		}
		for q := 0; q < 25; q++ {
			query := Query{Rect: randomQueryRect(rng, 700), Prob: 0.05 + rng.Float64()*0.9}
			got, _, err := tree.RangeQuery(query)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(resultIDs(got), resultIDs(scan.BruteForce(query))) {
				t.Fatalf("strategy %d query %d mismatch", strat, q)
			}
		}
	}
}

func TestDisableReinsertStaysCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	objs := makeObjects(500, 700, rng)
	tree, err := New(Options{Dim: 2, ExactRefinement: true, DisableReinsert: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	scan := NewScan(objs, 9, 0, true, 1)
	for q := 0; q < 25; q++ {
		query := Query{Rect: randomQueryRect(rng, 700), Prob: 0.05 + rng.Float64()*0.9}
		got, _, err := tree.RangeQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(resultIDs(got), resultIDs(scan.BruteForce(query))) {
			t.Fatalf("query %d mismatch with reinsert disabled", q)
		}
	}
}

// --- Polygon / mixture objects through the full stack ------------------------

func TestPolygonAndMixtureObjectsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var objs []Object
	for i := 0; i < 120; i++ {
		cx, cy := rng.Float64()*500, rng.Float64()*500
		if i%2 == 0 {
			// Random convex polygon: hull of 6 points around (cx, cy).
			pts := make([]geom.Point, 6)
			for k := range pts {
				pts[k] = geom.Point{cx + rng.Float64()*40 - 20, cy + rng.Float64()*40 - 20}
			}
			objs = append(objs, Object{ID: int64(i), PDF: updf.NewUniformPolygon(pts)})
		} else {
			m := updf.NewMixture([]updf.PDF{
				updf.NewUniformBall(geom.Point{cx, cy}, 8),
				updf.NewUniformBall(geom.Point{cx + 25, cy + 10}, 6),
			}, []float64{2, 1})
			objs = append(objs, Object{ID: int64(i), PDF: m})
		}
	}
	tree, err := New(Options{Dim: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	scan := NewScan(objs, 9, 0, true, 1)
	for q := 0; q < 40; q++ {
		query := Query{Rect: randomQueryRect(rng, 500), Prob: 0.05 + rng.Float64()*0.9}
		got, _, err := tree.RangeQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		want := scan.BruteForce(query)
		if !sameIDs(resultIDs(got), resultIDs(want)) {
			t.Fatalf("polygon/mixture query %d mismatch", q)
		}
	}
	// Deletions work for these pdfs too.
	for _, o := range objs[:30] {
		if err := tree.Delete(o.ID, o.PDF.MBR()); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteAfterBulkLoadSharedShapes: insert-then-delete must succeed on
// trees bulk-loaded with identically shaped objects in any order. The
// shared quantile cache used to make leaf CFBs depend on which object
// computed the cached quantiles first, and a ~1e-13 undershoot versus the
// MBR made the strict delete descent miss freshly inserted entries for
// some load orders (the failing orders varied with Go's map iteration).
func TestDeleteAfterBulkLoadSharedShapes(t *testing.T) {
	for shuf := int64(0); shuf < 8; shuf++ {
		rng := rand.New(rand.NewSource(1000 + shuf))
		objs := make([]Object, 120)
		for i := range objs {
			ctr := geom.Point{250 + rng.Float64()*9500, 250 + rng.Float64()*9500}
			objs[i] = Object{ID: int64(i), PDF: updf.NewUniformBall(ctr, 250)}
		}
		rng.Shuffle(len(objs), func(i, j int) { objs[i], objs[j] = objs[j], objs[i] })
		tree, err := New(Options{Dim: 2, ExactRefinement: true, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.BulkLoad(objs); err != nil {
			t.Fatal(err)
		}
		for op := int64(0); op < 150; op++ {
			ctr := geom.Point{250 + rng.Float64()*9500, 250 + rng.Float64()*9500}
			pdf := updf.NewUniformBall(ctr, 250)
			id := 1_000_000 + op
			if err := tree.Insert(Object{ID: id, PDF: pdf}); err != nil {
				t.Fatal(err)
			}
			if op%2 == 0 {
				if err := tree.Delete(id, pdf.MBR()); err != nil {
					t.Fatalf("shuffle %d op %d: delete %d: %v", shuf, op, id, err)
				}
			}
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("shuffle %d: %v", shuf, err)
		}
	}
}
