package core

import (
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

// ErrNotFound is returned by Delete when no entry matches.
var ErrNotFound = fmt.Errorf("core: object not found")

// Delete removes the object with the given id and pdf MBR from the index
// and tombstones its data record. The MBR guides the descent (only subtrees
// whose bounding geometry can contain the object's entry are visited),
// mirroring R-tree deletion.
func (t *Tree) Delete(id int64, mbr geom.Rect) error {
	start := time.Now()
	r0, w0 := t.nodeReads.Load(), t.nodeWrites.Load()

	leaf, path, idx, err := t.findLeaf(t.rootPage, nil, id, mbr)
	if err != nil {
		return err
	}
	if leaf == nil {
		return ErrNotFound
	}
	addr := leaf.entries[idx].addr
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	if err := t.writeNode(leaf); err != nil {
		return err
	}
	if err := t.condense(leaf, path); err != nil {
		return err
	}
	// Tombstoning the data record is deferred to the epoch GC: a snapshot
	// pinned before this delete commits still holds a leaf entry pointing
	// at the record and must be able to refine it. The GC coalesces the
	// epoch's tombstones per data page and applies them once no such
	// snapshot remains.
	t.vs.DeferTombstone(addr.Page, addr.Slot)
	t.size--

	t.deleteStats.Ops++
	t.deleteStats.PageReads += t.nodeReads.Load() - r0
	t.deleteStats.PageWrites += t.nodeWrites.Load() - w0
	t.deleteStats.CPUTime += time.Since(start)
	return nil
}

// findLeaf locates the leaf containing (id, mbr). A subtree can hold the
// entry only if its boundary box at p_1 = 0 contains the object's MBR: a
// leaf entry's cfb_out(0) (U-tree) or pcr(0) (U-PCR) covers the region MBR,
// and intermediate boxes cover those in turn. The descent tolerates the
// same float epsilon as CheckInvariants, so a box whose faces round a hair
// inside the true union never hides an existing entry.
func (t *Tree) findLeaf(page pagefile.PageID, path []pathElem, id int64, mbr geom.Rect) (*node, []pathElem, int, error) {
	n, err := t.readNode(page)
	if err != nil {
		return nil, nil, -1, err
	}
	if n.leaf() {
		for i := range n.entries {
			if n.entries[i].id == id && n.entries[i].mbr.Equal(mbr) {
				return n, path, i, nil
			}
		}
		return nil, nil, -1, nil
	}
	for i := range n.entries {
		if !containsEps(t.boxAt(n.entries[i].boxes, 0), mbr, 1e-7) {
			continue
		}
		leaf, p, idx, err := t.findLeaf(n.entries[i].child, append(path, pathElem{n: n, childIdx: i}), id, mbr)
		if err != nil {
			return nil, nil, -1, err
		}
		if leaf != nil {
			return leaf, p, idx, nil
		}
	}
	return nil, nil, -1, nil
}

// condense removes underfull nodes along the path and reinserts their
// entries at the appropriate level (CondenseTree adapted to the U-tree).
func (t *Tree) condense(n *node, path []pathElem) error {
	type orphan struct {
		e     entry
		level int
	}
	var orphans []orphan

	for i := len(path) - 1; i >= 0; i-- {
		parent := path[i]
		minFill := t.minLeaf
		if !n.leaf() {
			minFill = t.minInner
		}
		if len(n.entries) < minFill {
			parent.n.entries = append(parent.n.entries[:parent.childIdx], parent.n.entries[parent.childIdx+1:]...)
			// Later path elements' childIdx values are positions in other
			// nodes, unaffected; earlier ones reference parent nodes above.
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e, n.level})
			}
			if err := t.freeNode(n); err != nil {
				return err
			}
		} else if len(n.entries) > 0 {
			parent.n.entries[parent.childIdx].boxes = t.nodeBoundary(n)
			parent.n.entries[parent.childIdx].child = n.page // COW may have moved n
		}
		if err := t.writeNode(parent.n); err != nil {
			return err
		}
		n = parent.n
	}

	// Root adjustments: collapse single-child internal roots; reset an
	// empty internal root to an empty leaf.
	for {
		root, err := t.readNode(t.rootPage)
		if err != nil {
			return err
		}
		if root.leaf() {
			break
		}
		if len(root.entries) == 1 {
			child := root.entries[0].child
			childNode, err := t.readNode(child)
			if err != nil {
				return err
			}
			if err := t.freeNode(root); err != nil {
				return err
			}
			t.rootPage = child
			t.rootLevel = childNode.level
			continue
		}
		if len(root.entries) == 0 {
			if err := t.freeNode(root); err != nil {
				return err
			}
			fresh, err := t.allocNode(0)
			if err != nil {
				return err
			}
			if err := t.writeNode(fresh); err != nil {
				return err
			}
			t.rootPage = fresh.page
			t.rootLevel = 0
		}
		break
	}

	// Reinsert orphans. Subtree entries go back at their original level; if
	// the tree shrank below that level, fall back to reinserting the
	// subtree's leaf entries individually.
	for _, o := range orphans {
		switch {
		case o.level == 0:
			if err := t.insertEntry(o.e, 0, make(map[int]bool)); err != nil {
				return err
			}
		case o.level <= t.rootLevel:
			if err := t.insertEntry(o.e, o.level, make(map[int]bool)); err != nil {
				return err
			}
		default:
			leaves, err := t.collectLeafEntries(o.e.child)
			if err != nil {
				return err
			}
			for _, le := range leaves {
				if err := t.insertEntry(le, 0, make(map[int]bool)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// collectLeafEntries drains the subtree rooted at page, freeing its nodes.
func (t *Tree) collectLeafEntries(page pagefile.PageID) ([]entry, error) {
	n, err := t.readNode(page)
	if err != nil {
		return nil, err
	}
	var out []entry
	if n.leaf() {
		out = append(out, n.entries...)
	} else {
		for i := range n.entries {
			sub, err := t.collectLeafEntries(n.entries[i].child)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
	}
	if err := t.freeNode(n); err != nil {
		return nil, err
	}
	return out, nil
}
