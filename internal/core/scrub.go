package core

import (
	"time"

	"repro/internal/pagefile"
)

// Background page scrubbing: a dedicated goroutine periodically walks the
// committed tree and verifies page checksums through the store stack's
// PageVerifier probe, so latent corruption (bit rot, torn writes that no
// query has tripped over yet) is found and quarantined proactively instead
// of at first read. The scrubber follows the background reclaimer's
// budget/tick discipline — at most ScrubBudget page verifications per tick
// — so it never monopolizes the store.
//
// A scrub cycle has two phases. When its work queue is empty, a tick pins
// the committed epoch (a snapshot pin, exactly like a reader) and walks the
// committed tree collecting the reachable page set: node pages, leaf data
// pages, the current append page. The walk reads node pages directly from
// the store — not through the buffer pool or the decoded-node cache — so
// scrubbing neither pollutes the query caches nor inflates the logical I/O
// counters the experiments report. Subsequent ticks then drain the queue,
// verifying up to the budget per tick. Verification itself reads only the
// stored trailer (no cache, no simulated latency, no Stats charge).

// DefaultScrubBudget bounds one scrub tick's page verifications when
// Options.ScrubBudget is zero.
const DefaultScrubBudget = 64

// scrubState is the background scrubber's control block.
type scrubState struct {
	stop  chan struct{}
	done  chan struct{}
	queue []pagefile.PageID // pages awaiting verification this cycle
}

// StartScrubber launches the background scrubber (no-op when interval ≤ 0
// or one is already running). budget ≤ 0 selects DefaultScrubBudget.
func (t *Tree) StartScrubber(interval time.Duration, budget int) {
	if interval <= 0 {
		return
	}
	t.scrubMu.Lock()
	defer t.scrubMu.Unlock()
	if t.scrub != nil {
		return
	}
	if budget <= 0 {
		budget = DefaultScrubBudget
	}
	s := &scrubState{stop: make(chan struct{}), done: make(chan struct{})}
	t.scrub = s
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-ticker.C:
				t.ScrubOnce(budget)
			}
		}
	}()
}

// StopScrubber stops the background scrubber and waits for its goroutine
// to exit; idempotent, no-op when none is running.
func (t *Tree) StopScrubber() {
	t.scrubMu.Lock()
	s := t.scrub
	t.scrub = nil
	t.scrubMu.Unlock()
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}

// scrubRunning reports whether the background scrubber is active.
func (t *Tree) scrubRunning() bool {
	t.scrubMu.Lock()
	defer t.scrubMu.Unlock()
	return t.scrub != nil
}

// ScrubOnce performs one scrub tick — refilling the work queue from the
// committed tree when it is empty, then verifying up to budget pages — and
// reports how many pages it verified. Corrupt pages are quarantined (see
// HealthInfo); pages freed between collection and verification are skipped
// silently. Exported so tests and tooling can drive a deterministic full
// scrub without the background goroutine; safe to call concurrently with
// readers and the writer.
func (t *Tree) ScrubOnce(budget int) int {
	if budget <= 0 {
		budget = DefaultScrubBudget
	}
	t.scrubQueueMu.Lock()
	defer t.scrubQueueMu.Unlock()
	if len(t.scrubQueue) == 0 {
		t.scrubQueue = t.collectScrubTargets(t.scrubQueue)
	}
	verifier, _ := t.store.(pagefile.PageVerifier)
	verified := 0
	for verified < budget && len(t.scrubQueue) > 0 {
		id := t.scrubQueue[len(t.scrubQueue)-1]
		t.scrubQueue = t.scrubQueue[:len(t.scrubQueue)-1]
		if verifier == nil {
			// No integrity probe in this store stack (plain MemStore up):
			// count the visit so progress is still observable.
			t.scrubbed.Add(1)
			verified++
			continue
		}
		if err := verifier.VerifyPage(id); err != nil {
			if isCorruption(err) {
				t.scrubErrs.Add(1)
				t.noteReadError(id, err)
			}
			// Non-corruption errors (page freed since collection, transient
			// faults) are neither progress nor damage; skip.
			continue
		}
		t.scrubbed.Add(1)
		verified++
	}
	return verified
}

// collectScrubTargets pins the committed epoch and walks its tree for the
// reachable page set, appending onto buf. Node pages are read directly
// from the store (bypassing both caches; see the file comment). A corrupt
// node encountered during collection is quarantined immediately and its
// subtree skipped — the walk cannot see past it.
func (t *Tree) collectScrubTargets(buf []pagefile.PageID) []pagefile.PageID {
	st, _, release := t.vs.Pin()
	defer release()
	ts, ok := st.(*treeState)
	if !ok || ts == nil {
		return buf
	}
	seenData := make(map[pagefile.PageID]bool)
	var walk func(id pagefile.PageID)
	walk = func(id pagefile.PageID) {
		buf = append(buf, id)
		pageBuf := make([]byte, pagefile.PageSize)
		if err := t.store.Read(id, pageBuf); err != nil {
			if isCorruption(err) {
				t.scrubErrs.Add(1)
				t.noteReadError(id, err)
			}
			return
		}
		n, err := t.decodeNode(id, pageBuf)
		if err != nil {
			t.scrubErrs.Add(1)
			t.noteReadError(id, err)
			return
		}
		if n.leaf() {
			for i := range n.entries {
				if p := n.entries[i].addr.Page; p != pagefile.InvalidPage && !seenData[p] {
					seenData[p] = true
					buf = append(buf, p)
				}
			}
			return
		}
		for i := range n.entries {
			walk(n.entries[i].child)
		}
	}
	walk(ts.rootPage)
	if p := ts.dataPage; p != pagefile.InvalidPage && !seenData[p] {
		buf = append(buf, p)
	}
	return buf
}
