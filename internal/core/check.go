package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

// CheckInvariants validates the structural and geometric invariants of the
// index:
//
//   - node occupancy within [minFill, capacity] (root exempt from the
//     minimum),
//   - uniform leaf depth,
//   - every intermediate entry's bounding boxes covering the corresponding
//     boundary boxes of its child's entries at every catalog value
//     (the containment property behind Observation 4),
//   - stored object count matching the leaf entry count.
//
// It returns the first violation found, or nil.
func (t *Tree) CheckInvariants() error {
	return t.checkTreeAt(t.rootPage, t.rootLevel, t.size)
}

// checkTreeAt validates the tree rooted at the given page against the
// given expected root level and object count — shared by the working-state
// check above and Snapshot.CheckInvariants (pinned epochs).
func (t *Tree) checkTreeAt(rootPage pagefile.PageID, rootLevel, size int) error {
	total := 0
	var check func(page pagefile.PageID, isRoot bool, wantLevel int) ([]geom.Rect, error)
	check = func(page pagefile.PageID, isRoot bool, wantLevel int) ([]geom.Rect, error) {
		n, err := t.readNode(page)
		if err != nil {
			return nil, err
		}
		if wantLevel >= 0 && n.level != wantLevel {
			return nil, fmt.Errorf("core: node %d at level %d, want %d", page, n.level, wantLevel)
		}
		capacity, minFill := t.leafCap, t.minLeaf
		if !n.leaf() {
			capacity, minFill = t.innerCap, t.minInner
		}
		if len(n.entries) > capacity {
			return nil, fmt.Errorf("core: node %d overfull: %d > %d", page, len(n.entries), capacity)
		}
		if !isRoot && len(n.entries) < minFill {
			return nil, fmt.Errorf("core: node %d underfull: %d < %d", page, len(n.entries), minFill)
		}
		if n.leaf() {
			total += len(n.entries)
			if len(n.entries) == 0 {
				return nil, nil
			}
			return t.nodeBoundary(n), nil
		}
		if len(n.entries) == 0 {
			return nil, fmt.Errorf("core: empty intermediate node %d", page)
		}
		for i := range n.entries {
			childBoxes, err := check(n.entries[i].child, false, n.level-1)
			if err != nil {
				return nil, err
			}
			if childBoxes == nil {
				return nil, fmt.Errorf("core: intermediate node %d has empty child", page)
			}
			// Containment at every catalog value (interpolated where the
			// representation is linear).
			for j := 0; j < t.cat.Size(); j++ {
				parentBox := t.boxAt(n.entries[i].boxes, j)
				childBox := t.boxAt(childBoxes, j)
				if !containsEps(parentBox, childBox, 1e-7) {
					return nil, fmt.Errorf("core: node %d entry %d at p_%d: parent box %v does not cover child %v",
						page, i, j, parentBox, childBox)
				}
			}
		}
		return t.nodeBoundary(n), nil
	}
	if _, err := check(rootPage, true, rootLevel); err != nil {
		return err
	}
	if total != size {
		return fmt.Errorf("core: size %d but %d leaf entries", size, total)
	}
	return nil
}

// containsEps is Contains with an absolute tolerance absorbing the float
// round-trip through page serialization.
func containsEps(outer, inner geom.Rect, eps float64) bool {
	for i := range outer.Lo {
		if inner.Lo[i] < outer.Lo[i]-eps || inner.Hi[i] > outer.Hi[i]+eps {
			return false
		}
	}
	return true
}
