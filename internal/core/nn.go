package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/pagefile"
	"repro/internal/updf"
)

// The paper's conclusion lists "algorithms that deploy U-trees to solve
// other types of queries" as future work, pointing at the query taxonomy of
// Cheng et al. [4]. This file implements the expected-distance k-nearest-
// neighbor query from that taxonomy on top of the U-tree: return the k
// objects minimizing
//
//	E[dist(o, q)] = ∫ dist(x, q) · o.pdf(x) dx,
//
// using best-first tree traversal. The traversal is admissible because
// MINDIST(q, box) lower-bounds the distance to every point of any
// descendant's uncertainty region (intermediate boxes at p_1 = 0 contain
// cfb_out(0) ⊇ pcr(0) = the region MBR), and E[dist] is at least the
// minimum distance.

// NNResult is one nearest-neighbor answer.
type NNResult struct {
	ID int64
	// ExpectedDist is E[dist(o, q)].
	ExpectedDist float64
}

// NNStats reports the traversal cost.
type NNStats struct {
	NodeAccesses  int
	DistanceComps int // expected-distance evaluations (the expensive step)
	RefinementIOs int

	// Intra-query prefetch counters (zero when prefetching is off); NN
	// prefetch is speculative — it guesses from the frontier heap — so
	// PrefetchWasted is normally nonzero here, unlike range queries.
	PrefetchIssued    int
	PrefetchCoalesced int
	PrefetchWasted    int

	// PagesFetched counts the physical fetches charged against
	// QueryOpts.PageBudget; filled only when a budget is armed.
	PagesFetched int

	// Decoded-node cache outcomes of this query's tree-page reads (both
	// zero when the cache is disabled).
	NodeCacheHits   int
	NodeCacheMisses int

	// Retries counts the transient-fault retries the storage stack
	// performed while this query ran (see QueryStats.Retries for the
	// attribution caveat under concurrency).
	Retries int

	// BoundPruned counts frontier entries abandoned because the shared
	// cross-shard k-th distance bound proved them unable to reach the
	// merged top k (zero outside sharded scatter-gather).
	BoundPruned int

	// ShardsPruned counts whole shards skipped by root-MBR distance
	// ranking against the shared bound (filled by the sharded layer).
	ShardsPruned int
}

// Add accumulates o into s — the NN counterpart of QueryStats.Add, shared
// by batch aggregation and shard merging.
func (s *NNStats) Add(o NNStats) {
	s.NodeAccesses += o.NodeAccesses
	s.DistanceComps += o.DistanceComps
	s.RefinementIOs += o.RefinementIOs
	s.PrefetchIssued += o.PrefetchIssued
	s.PrefetchCoalesced += o.PrefetchCoalesced
	s.PrefetchWasted += o.PrefetchWasted
	s.PagesFetched += o.PagesFetched
	s.NodeCacheHits += o.NodeCacheHits
	s.NodeCacheMisses += o.NodeCacheMisses
	s.Retries += o.Retries
	s.BoundPruned += o.BoundPruned
	s.ShardsPruned += o.ShardsPruned
}

// nnItem is a priority-queue element: either a tree node or a leaf object
// awaiting refinement.
type nnItem struct {
	lb     float64
	isNode bool
	page   pagefile.PageID
	id     int64
	addr   pagefile.DataAddr
}

// nnHeap is a min-heap on lb, maintained by the typed nnPush/nnPop in
// scratch.go (which replicate container/heap's sift semantics exactly, so
// tie-breaking among equal lower bounds is unchanged from the boxed heap).
type nnHeap []nnItem

func (h nnHeap) Len() int { return len(h) }

// NearestNeighborsRO is the read-only NN entry point, mirroring
// RangeQueryRO: NN traversal already keeps all its state on the stack
// (ExpectedDistance seeds a fresh sampler per object), so with the sharded
// buffer pool and atomic I/O counters it is safe for any number of
// concurrent readers — provided no writer runs at the same time.
func (t *Tree) NearestNeighborsRO(q geom.Point, k int) ([]NNResult, NNStats, error) {
	return t.NearestNeighbors(q, k)
}

// NearestNeighbors returns the k objects with the smallest expected
// distance to the query point q, in ascending order.
//
// With intra-query prefetching armed, the traversal speculatively
// prefetches the pages behind the most promising frontier heap entries
// while the current item's page read and (CPU-heavy) expected-distance
// integration run — the best-first pop order, the refinement order, and
// the per-object sampler seeding are untouched, so results are
// byte-identical to the serial traversal.
func (t *Tree) NearestNeighbors(q geom.Point, k int) ([]NNResult, NNStats, error) {
	//ulint:ignore ctxflow legacy non-cancellable entry point; the root context is the documented contract
	return t.NearestNeighborsCtx(context.Background(), q, k, QueryOpts{})
}

// NearestNeighborsCtx is NearestNeighbors with a cancellation context and
// per-query options. The best-first loop checks ctx before every pop, so a
// cancelled traversal returns ctx.Err() with the (admissible but possibly
// incomplete) neighbors found so far. QueryOpts.Limit caps k;
// QueryOpts.PageBudget stops the traversal with ErrBudgetExceeded after
// exactly that many physical page fetches. With a zero QueryOpts, results
// are byte-identical to NearestNeighbors. It runs against the working
// root; Snapshot.NearestNeighbors runs the same traversal against a
// pinned epoch.
func (t *Tree) NearestNeighborsCtx(ctx context.Context, q geom.Point, k int, o QueryOpts) ([]NNResult, NNStats, error) {
	// Working-root queries must see this batch's appends (refinement reads
	// data pages from the store, never the append cache).
	if err := t.data.Flush(); err != nil {
		return nil, NNStats{}, err
	}
	return t.nearestNeighborsAt(t.rootPage, ctx, q, k, o)
}

func (t *Tree) nearestNeighborsAt(root pagefile.PageID, ctx context.Context, q geom.Point, k int, o QueryOpts) (best []NNResult, stats NNStats, err error) {
	if len(q) != t.dim {
		return nil, stats, fmt.Errorf("core: query point dim %d, tree dim %d", len(q), t.dim)
	}
	if k < 1 {
		return nil, stats, fmt.Errorf("core: k must be positive, got %d", k)
	}
	plan := t.resolvePlan(ctx, o)
	if plan.limit > 0 && plan.limit < k {
		k = plan.limit
	}
	ses := t.openSessions(&plan)
	defer ses.drainInto(&stats.PrefetchIssued, &stats.PrefetchCoalesced, &stats.PrefetchWasted)

	meter := fetchMeter{budget: plan.budget}
	retries0 := t.store.Stats().Retries.Load()
	partial := func(err error) ([]NNResult, NNStats, error) {
		stats.PagesFetched = meter.spent
		stats.NodeCacheHits = meter.ncHits
		stats.NodeCacheMisses = meter.ncMisses
		stats.Retries = int(t.store.Stats().Retries.Load() - retries0)
		return best, stats, err
	}

	// Pooled frontier heap and sample buffer; the best slice escapes to
	// the caller and is never pooled. The typed nnPush/nnPop replicate
	// container/heap's sift semantics exactly, so the pop order — and
	// with it every result — is unchanged.
	sc := getScratch()
	defer sc.release()
	distBuf := sc.point(t.dim)
	pq := &sc.heap
	*pq = append((*pq)[:0], nnItem{lb: 0, isNode: true, page: root})

	worst := math.Inf(1)

	for pq.Len() > 0 {
		if cerr := plan.ctx.Err(); cerr != nil {
			return partial(cerr)
		}
		it := nnPop(pq)
		if len(best) == k && it.lb >= worst {
			break // every remaining item is at least as far
		}
		if plan.nnBound != nil && it.lb > plan.nnBound.Load() {
			// The shared cross-shard bound already proves every remaining
			// frontier entry (dist ≥ lb > bound ≥ merged k-th) out of the
			// merged top k — stop before fetching their pages. Strict >
			// keeps distance ties eligible, so (dist, ID) merge tie-breaks
			// are unaffected.
			stats.BoundPruned += pq.Len() + 1
			break
		}
		if ses.nodes != nil {
			t.speculateNN(pq, ses, len(best) == k, worst)
		}
		if it.isNode {
			n, err := t.fetchNode(ses.nodes, &meter, it.page)
			if err != nil {
				return partial(err)
			}
			stats.NodeAccesses++
			if n.leaf() {
				for i := range n.entries {
					e := &n.entries[i]
					nnPush(pq, nnItem{
						lb:   minDist(q, e.mbr),
						id:   e.id,
						addr: e.addr,
					})
				}
			} else {
				for i := range n.entries {
					nnPush(pq, nnItem{
						lb:     t.minDistAt(q, n.entries[i].boxes, 0),
						isNode: true,
						page:   n.entries[i].child,
					})
				}
			}
			continue
		}
		// Leaf object: refine its expected distance (DataFile.Read is
		// exactly this page-read + slot-extract, so serial behavior is
		// unchanged).
		pageBuf, err := t.fetchDataPage(ses.data, &meter, it.addr.Page)
		if err != nil {
			return partial(err)
		}
		rec, err := pagefile.RecordFromPage(pageBuf, it.addr.Slot)
		if err != nil {
			return nil, stats, err
		}
		stats.RefinementIOs++
		obj, err := decodeObject(rec)
		if err != nil {
			return nil, stats, err
		}
		d := expectedDistanceScratch(obj.PDF, q, plan.samples, obj.ID, distBuf)
		stats.DistanceComps++
		if len(best) < k || d < worst {
			best = insertNN(best, NNResult{ID: obj.ID, ExpectedDist: d}, k)
			worst = best[len(best)-1].ExpectedDist
			if len(best) < k {
				worst = math.Inf(1)
			} else if plan.nnBound != nil {
				// This traversal's k-th best upper-bounds the merged k-th
				// (the merge only improves on any single shard's list).
				plan.nnBound.Update(worst)
			}
		}
	}
	if plan.budget > 0 {
		stats.PagesFetched = meter.spent
	}
	stats.NodeCacheHits = meter.ncHits
	stats.NodeCacheMisses = meter.ncMisses
	stats.Retries = int(t.store.Stats().Retries.Load() - retries0)
	return best, stats, nil
}

// speculateDepth is how many frontier heap entries NN prefetch looks at
// per pop. The heap slice's prefix holds its smallest elements in rough
// order — good enough for speculation, which only affects timing, never
// results.
const speculateDepth = 4

// speculateNN prefetches the pages behind the heap's most promising
// entries: child pages of frontier nodes through the buffer pool, data
// pages of frontier objects through the raw store. Entries already beyond
// the current k-th best distance are skipped — they can never be popped
// for processing — as are nodes already in the decoded-node cache, whose
// async reads a cache hit would leave unclaimed.
func (t *Tree) speculateNN(pq *nnHeap, ses querySessions, full bool, worst float64) {
	depth := speculateDepth
	if depth > pq.Len() {
		depth = pq.Len()
	}
	for i := 0; i < depth; i++ {
		it := (*pq)[i]
		if full && it.lb >= worst {
			continue
		}
		if it.isNode {
			if t.ncache == nil || !t.ncache.contains(it.page) {
				ses.nodes.Prefetch(it.page)
			}
		} else {
			ses.data.Prefetch(it.addr.Page)
		}
	}
}

// insertNN inserts r into the ascending top-k list.
func insertNN(best []NNResult, r NNResult, k int) []NNResult {
	pos := sort.Search(len(best), func(i int) bool {
		return best[i].ExpectedDist > r.ExpectedDist
	})
	best = append(best, NNResult{})
	copy(best[pos+1:], best[pos:])
	best[pos] = r
	if len(best) > k {
		best = best[:k]
	}
	return best
}

// MinDist exposes the traversal's MINDIST for the sharded layer's
// cost-ranked NN shard ordering (rank shards by distance to their root
// MBR; visit nearest first so the shared bound tightens early).
func MinDist(q geom.Point, rect geom.Rect) float64 { return minDist(q, rect) }

// minDist is the classic MINDIST: the distance from q to the nearest point
// of rect (0 when q is inside).
func minDist(q geom.Point, rect geom.Rect) float64 {
	var s float64
	for i := range q {
		var d float64
		if q[i] < rect.Lo[i] {
			d = rect.Lo[i] - q[i]
		} else if q[i] > rect.Hi[i] {
			d = q[i] - rect.Hi[i]
		}
		s += d * d
	}
	return math.Sqrt(s)
}

// ExpectedDistance evaluates E[dist(X, q)] by pdf-weighted Monte Carlo with
// a deterministic seed derived from the object id, so repeated evaluations
// (and brute-force oracles in tests) agree exactly.
func ExpectedDistance(p updf.PDF, q geom.Point, samples int, seed int64) float64 {
	return expectedDistanceScratch(p, q, samples, seed, nil)
}

// expectedDistanceScratch is ExpectedDistance writing samples into the
// caller's scratch point (allocated fresh when nil or mis-sized) and drawing
// from a pooled sampler. (*Rand).Seed reproduces exactly the sequence
// rand.New(rand.NewSource(seed)) draws, so values match ExpectedDistance's
// historical output bit for bit.
func expectedDistanceScratch(p updf.PDF, q geom.Point, samples int, seed int64, x geom.Point) float64 {
	if samples <= 0 {
		samples = 10000
	}
	rng := getSeededRand(seed*1099511628211 + 14695981039346656037>>32)
	defer putRand(rng)
	if len(x) != p.Dim() {
		x = make(geom.Point, p.Dim())
	}
	var num, den float64
	for i := 0; i < samples; i++ {
		p.SampleUniform(rng, x)
		w := p.Density(x)
		if w == 0 {
			continue
		}
		den += w
		num += w * x.Dist(q)
	}
	if den == 0 {
		// Degenerate pdf: fall back to the distance to the region center.
		return p.Center().Dist(q)
	}
	return num / den
}
