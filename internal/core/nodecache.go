package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/pagefile"
)

// nodeCache is a sharded LRU cache of decoded nodes, sitting above the
// BufferPool: where the pool caches page *bytes*, this caches the *node*
// values decodeNode builds from them, so a hot traversal skips both the
// pool lookup and the per-entry decode allocations entirely.
//
// Coherence rests on the copy-on-write epoch discipline (VersionedStore):
//
//   - Only committed pages are inserted (writeNode relocates any committed
//     page before rewriting it, so a committed page's bytes — and therefore
//     its decoded node — are immutable for as long as the page is live).
//     Shadow (fresh) pages bypass the cache: maybeCacheNode refuses them,
//     and since a PageID is only recycled after its physical free runs the
//     cache invalidator first, a fresh page can never alias a live entry.
//   - Entries are dropped when the VersionedStore physically frees the
//     page (reclaim, rollback, fresh-free) — the only moment a PageID's
//     bytes can change. Until then the entry is valid for every reader,
//     whatever epoch it pinned: snapshots at different epochs that can
//     reach the same live page see the same bytes by construction.
//
// Each entry records the epoch at which it was decoded, purely for
// observability and tests; the PageID is the coherence key.
//
// Cached nodes are shared across concurrent lock-free readers and MUST be
// treated as immutable. The query paths only read them; mutation paths
// (insert/delete descents) never touch the cache — they decode private
// copies they are free to edit in place.
type nodeCache struct {
	shards []ncShard
	hits   atomic.Int64
	misses atomic.Int64
}

type ncShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[pagefile.PageID]*list.Element
	lru      *list.List // front = most recent
}

type ncEntry struct {
	id    pagefile.PageID
	n     *node
	epoch uint64 // committed epoch at decode time (observability only)
}

const (
	// ncMaxShards mirrors the buffer pool's shard bound (power of two for
	// cheap masking).
	ncMaxShards = 16
	// ncMinShardEntries keeps shards from degenerating into single-entry
	// LRUs on small caches.
	ncMinShardEntries = 4
	// defaultNodeCacheEntries is the Options.NodeCacheEntries default.
	defaultNodeCacheEntries = 1024
)

// newNodeCache builds a cache bounded at capacity decoded nodes (minimum 1),
// split across PageID-hashed shards like the buffer pool.
func newNodeCache(capacity int) *nodeCache {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n*2 <= ncMaxShards && capacity/(n*2) >= ncMinShardEntries {
		n *= 2
	}
	nc := &nodeCache{shards: make([]ncShard, n)}
	for i := range nc.shards {
		c := capacity / n
		if i < capacity%n {
			c++
		}
		if c < 1 {
			c = 1
		}
		nc.shards[i] = ncShard{
			capacity: c,
			entries:  make(map[pagefile.PageID]*list.Element, c),
			lru:      list.New(),
		}
	}
	return nc
}

func (nc *nodeCache) shard(id pagefile.PageID) *ncShard {
	return &nc.shards[int(id)&(len(nc.shards)-1)]
}

// get returns the cached node for id, marking it most recently used.
func (nc *nodeCache) get(id pagefile.PageID) (*node, bool) {
	s := nc.shard(id)
	s.mu.Lock()
	el, ok := s.entries[id]
	if !ok {
		s.mu.Unlock()
		nc.misses.Add(1)
		return nil, false
	}
	s.lru.MoveToFront(el)
	n := el.Value.(*ncEntry).n
	s.mu.Unlock()
	nc.hits.Add(1)
	return n, true
}

// put inserts (or refreshes) the node decoded from a committed page,
// evicting the shard's least recently used entry on overflow. Callers must
// only pass committed pages (maybeCacheNode enforces this).
func (nc *nodeCache) put(id pagefile.PageID, n *node, epoch uint64) {
	s := nc.shard(id)
	s.mu.Lock()
	if el, ok := s.entries[id]; ok {
		// Same PageID, same bytes (committed pages are immutable while
		// live): keep whichever decode arrived first, just refresh LRU.
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.entries[id] = s.lru.PushFront(&ncEntry{id: id, n: n, epoch: epoch})
	if s.lru.Len() > s.capacity {
		victim := s.lru.Back()
		s.lru.Remove(victim)
		delete(s.entries, victim.Value.(*ncEntry).id)
	}
	s.mu.Unlock()
}

// invalidate drops the entry for id — called by the VersionedStore
// immediately before a page is physically freed, so the PageID can be
// recycled without a stale decoded node surviving it.
func (nc *nodeCache) invalidate(id pagefile.PageID) {
	s := nc.shard(id)
	s.mu.Lock()
	if el, ok := s.entries[id]; ok {
		s.lru.Remove(el)
		delete(s.entries, id)
	}
	s.mu.Unlock()
}

// contains reports whether id is cached without touching the LRU order or
// the hit/miss counters — the peek the prefetch planner uses to avoid
// scheduling async reads for pages a cache hit would leave unclaimed.
func (nc *nodeCache) contains(id pagefile.PageID) bool {
	s := nc.shard(id)
	s.mu.Lock()
	_, ok := s.entries[id]
	s.mu.Unlock()
	return ok
}

// stats returns the cumulative hit/miss counters.
func (nc *nodeCache) stats() (hits, misses int64) {
	return nc.hits.Load(), nc.misses.Load()
}

// len reports the number of cached nodes (tests: the entry-count bound).
func (nc *nodeCache) len() int {
	n := 0
	for i := range nc.shards {
		s := &nc.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// epochOf reports the decode epoch recorded for a cached page (tests).
func (nc *nodeCache) epochOf(id pagefile.PageID) (uint64, bool) {
	s := nc.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[id]; ok {
		return el.Value.(*ncEntry).epoch, true
	}
	return 0, false
}
