package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/pagefile"
	"repro/internal/updf"
)

// makeObjects builds a mixed-pdf object set over [0, span]² with exact
// oracles (deterministic ground truth).
func makeObjects(n int, span float64, rng *rand.Rand) []Object {
	objs := make([]Object, 0, n)
	for i := 0; i < n; i++ {
		cx := rng.Float64() * span
		cy := rng.Float64() * span
		var p updf.PDF
		switch i % 4 {
		case 0:
			p = updf.NewUniformBall(geom.Point{cx, cy}, 25)
		case 1:
			r := geom.NewRect(geom.Point{cx, cy}, geom.Point{cx + 40, cy + 30})
			p = updf.NewUniformRect(r)
		case 2:
			p = updf.NewConGauBall(geom.Point{cx, cy}, 25, 12.5)
		default:
			r := geom.NewRect(geom.Point{cx, cy}, geom.Point{cx + 35, cy + 35})
			p = updf.NewGaussRect(r, geom.Point{cx + 17, cy + 17}, []float64{10, 14})
		}
		objs = append(objs, Object{ID: int64(i), PDF: p})
	}
	return objs
}

func buildTree(t *testing.T, kind Kind, objs []Object, catalogSize int) *Tree {
	t.Helper()
	tree, err := New(Options{
		Dim:             2,
		Kind:            kind,
		CatalogSize:     catalogSize,
		ExactRefinement: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := tree.Insert(o); err != nil {
			t.Fatalf("insert %d: %v", o.ID, err)
		}
	}
	return tree
}

func resultIDs(rs []Result) []int64 {
	ids := make([]int64, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomQueryRect(rng *rand.Rand, span float64) geom.Rect {
	cx := rng.Float64() * span
	cy := rng.Float64() * span
	w := 20 + rng.Float64()*span/4
	h := 20 + rng.Float64()*span/4
	return geom.NewRect(geom.Point{cx - w/2, cy - h/2}, geom.Point{cx + w/2, cy + h/2})
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	objs := makeObjects(800, 1000, rng)
	scan := NewScan(objs, 9, 0, true, 1)

	for _, kind := range []Kind{UTree, UPCR} {
		tree := buildTree(t, kind, objs, 0)
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if tree.Len() != len(objs) {
			t.Fatalf("%v: Len = %d", kind, tree.Len())
		}
		for q := 0; q < 120; q++ {
			rq := randomQueryRect(rng, 1000)
			pq := 0.05 + rng.Float64()*0.9
			query := Query{Rect: rq, Prob: pq}
			got, stats, err := tree.RangeQuery(query)
			if err != nil {
				t.Fatalf("%v query %d: %v", kind, q, err)
			}
			want := scan.BruteForce(query)
			if !sameIDs(resultIDs(got), resultIDs(want)) {
				t.Fatalf("%v query %d (pq=%.3f rq=%v): got %v want %v",
					kind, q, pq, rq, resultIDs(got), resultIDs(want))
			}
			if stats.NodeAccesses < 1 {
				t.Fatalf("%v: no node accesses recorded", kind)
			}
			if stats.Results != len(got) {
				t.Fatalf("%v: stats.Results=%d, len=%d", kind, stats.Results, len(got))
			}
		}
	}
}

func TestValidatedResultsAreMarked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	objs := makeObjects(300, 500, rng)
	tree := buildTree(t, UTree, objs, 0)
	// A giant query validates everything without probability computations.
	all := Query{Rect: geom.NewRect(geom.Point{-100, -100}, geom.Point{700, 700}), Prob: 0.5}
	got, stats, err := tree.RangeQuery(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(objs) {
		t.Fatalf("covering query returned %d of %d", len(got), len(objs))
	}
	if stats.ProbComputations != 0 {
		t.Fatalf("covering query computed %d probabilities", stats.ProbComputations)
	}
	for _, r := range got {
		if !r.Validated || r.Prob != -1 {
			t.Fatalf("validated result not marked: %+v", r)
		}
	}
}

func TestDisjointQueryTouchesFewNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running; skipped with -short")
	}
	rng := rand.New(rand.NewSource(3))
	objs := makeObjects(1000, 1000, rng)
	tree := buildTree(t, UTree, objs, 0)
	q := Query{Rect: geom.NewRect(geom.Point{5000, 5000}, geom.Point{5100, 5100}), Prob: 0.5}
	got, stats, err := tree.RangeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("disjoint query returned %d results", len(got))
	}
	if stats.NodeAccesses > 1 {
		t.Fatalf("disjoint query visited %d nodes, want 1 (root only)", stats.NodeAccesses)
	}
}

func TestDeleteThenQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	objs := makeObjects(600, 800, rng)
	for _, kind := range []Kind{UTree, UPCR} {
		tree := buildTree(t, kind, objs, 0)
		// Delete a random half.
		perm := rng.Perm(len(objs))
		deleted := map[int64]bool{}
		for _, idx := range perm[:300] {
			o := objs[idx]
			if err := tree.Delete(o.ID, o.PDF.MBR()); err != nil {
				t.Fatalf("%v: delete %d: %v", kind, o.ID, err)
			}
			deleted[o.ID] = true
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("%v after deletes: %v", kind, err)
		}
		if tree.Len() != 300 {
			t.Fatalf("%v: Len = %d, want 300", kind, tree.Len())
		}
		var remaining []Object
		for _, o := range objs {
			if !deleted[o.ID] {
				remaining = append(remaining, o)
			}
		}
		scan := NewScan(remaining, 9, 0, true, 1)
		for q := 0; q < 50; q++ {
			query := Query{Rect: randomQueryRect(rng, 800), Prob: 0.05 + rng.Float64()*0.9}
			got, _, err := tree.RangeQuery(query)
			if err != nil {
				t.Fatal(err)
			}
			want := scan.BruteForce(query)
			if !sameIDs(resultIDs(got), resultIDs(want)) {
				t.Fatalf("%v query %d after deletes: got %v want %v",
					kind, q, resultIDs(got), resultIDs(want))
			}
		}
	}
}

func TestDeleteAllLeavesEmptyUsableTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	objs := makeObjects(250, 400, rng)
	tree := buildTree(t, UTree, objs, 0)
	for _, o := range objs {
		if err := tree.Delete(o.ID, o.PDF.MBR()); err != nil {
			t.Fatalf("delete %d: %v", o.ID, err)
		}
	}
	if tree.Len() != 0 || tree.Height() != 1 {
		t.Fatalf("Len=%d Height=%d after delete-all", tree.Len(), tree.Height())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Still usable.
	if err := tree.Insert(objs[0]); err != nil {
		t.Fatal(err)
	}
	got, _, err := tree.RangeQuery(Query{
		Rect: geom.NewRect(geom.Point{-1000, -1000}, geom.Point{2000, 2000}),
		Prob: 0.5,
	})
	if err != nil || len(got) != 1 {
		t.Fatalf("post-rebuild query: %v, %d results", err, len(got))
	}
}

func TestDeleteNotFound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	objs := makeObjects(50, 200, rng)
	tree := buildTree(t, UTree, objs, 0)
	err := tree.Delete(99999, objs[0].PDF.MBR())
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	wrongMBR := geom.NewRect(geom.Point{9000, 9000}, geom.Point{9001, 9001})
	if err := tree.Delete(objs[0].ID, wrongMBR); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestInterleavedInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tree, err := New(Options{Dim: 2, Kind: UTree, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	live := map[int64]Object{}
	nextID := int64(0)
	for step := 0; step < 1200; step++ {
		if len(live) == 0 || rng.Float64() < 0.62 {
			o := makeObjects(1, 600, rng)[0]
			o.ID = nextID
			nextID++
			if err := tree.Insert(o); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			live[o.ID] = o
		} else {
			var victim Object
			k := rng.Intn(len(live))
			for _, o := range live {
				if k == 0 {
					victim = o
					break
				}
				k--
			}
			if err := tree.Delete(victim.ID, victim.PDF.MBR()); err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
			delete(live, victim.ID)
		}
		if step%300 == 299 {
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Final correctness check.
	var objs []Object
	for _, o := range live {
		objs = append(objs, o)
	}
	scan := NewScan(objs, 9, 0, true, 1)
	for q := 0; q < 30; q++ {
		query := Query{Rect: randomQueryRect(rng, 600), Prob: 0.05 + rng.Float64()*0.9}
		got, _, err := tree.RangeQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		want := scan.BruteForce(query)
		if !sameIDs(resultIDs(got), resultIDs(want)) {
			t.Fatalf("query %d: got %v want %v", q, resultIDs(got), resultIDs(want))
		}
	}
}

func TestUTreeSmallerThanUPCR(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running; skipped with -short")
	}
	// Table 1's headline: the U-tree is much smaller despite its larger
	// catalog (15 vs 9), because entries store 8d CFB values instead of
	// 2dm PCR values.
	rng := rand.New(rand.NewSource(8))
	objs := makeObjects(2000, 2000, rng)
	ut := buildTree(t, UTree, objs, 15)
	up := buildTree(t, UPCR, objs, 9)
	utPages, err := ut.IndexPages()
	if err != nil {
		t.Fatal(err)
	}
	upPages, err := up.IndexPages()
	if err != nil {
		t.Fatal(err)
	}
	if utPages >= upPages {
		t.Fatalf("U-tree pages %d ≥ U-PCR pages %d", utPages, upPages)
	}
	ratio := float64(upPages) / float64(utPages)
	if ratio < 1.5 {
		t.Fatalf("size ratio %.2f, expected ≥ 1.5 (paper shows ≈ 2.4–2.8)", ratio)
	}
	// Fanout relations from Section 6.3.
	utLeaf, utInner := ut.Fanout()
	upLeaf, upInner := up.Fanout()
	if utLeaf <= upLeaf || utInner <= upInner {
		t.Fatalf("fanout: U-tree %d/%d vs U-PCR %d/%d", utLeaf, utInner, upLeaf, upInner)
	}
}

func TestUTreeFewerNodeAccesses(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running; skipped with -short")
	}
	rng := rand.New(rand.NewSource(9))
	objs := makeObjects(3000, 3000, rng)
	ut := buildTree(t, UTree, objs, 15)
	up := buildTree(t, UPCR, objs, 9)
	var utIO, upIO int
	for q := 0; q < 40; q++ {
		query := Query{Rect: randomQueryRect(rng, 3000), Prob: 0.6}
		_, s1, err := ut.RangeQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		_, s2, err := up.RangeQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		utIO += s1.NodeAccesses
		upIO += s2.NodeAccesses
	}
	if utIO >= upIO {
		t.Fatalf("U-tree node accesses %d ≥ U-PCR %d (paper: U-tree significantly lower)", utIO, upIO)
	}
}

func TestQueryValidation(t *testing.T) {
	tree, err := New(Options{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []Query{
		{Rect: geom.NewRect(geom.Point{0}, geom.Point{1}), Prob: 0.5},       // wrong dim
		{Rect: geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1}), Prob: 0},   // pq = 0
		{Rect: geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1}), Prob: 1.1}, // pq > 1
	}
	for i, q := range cases {
		if _, _, err := tree.RangeQuery(q); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Invalid rectangle (NaN) must be rejected too.
	bad := Query{Rect: geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{1, 1}}, Prob: 0.5}
	bad.Rect.Lo[0] = 2 // inverted
	if _, _, err := tree.RangeQuery(bad); err == nil {
		t.Error("inverted rect accepted")
	}
}

func TestEmptyTreeQuery(t *testing.T) {
	tree, err := New(Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := tree.RangeQuery(Query{
		Rect: geom.NewRect(geom.Point{0, 0, 0}, geom.Point{1, 1, 1}),
		Prob: 0.5,
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty tree query: %v, %d results", err, len(got))
	}
	if stats.NodeAccesses != 1 {
		t.Fatalf("NodeAccesses = %d", stats.NodeAccesses)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Dim: 0}); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := New(Options{Dim: 2, CatalogSize: 1}); err == nil {
		t.Error("catalog 1 accepted")
	}
	// Enormous catalog with U-PCR in high dimension → fanout too small.
	if _, err := New(Options{Dim: 8, Kind: UPCR, CatalogSize: 40}); err == nil {
		t.Error("fanout <4 configuration accepted")
	}
}

func TestInsertDimMismatch(t *testing.T) {
	tree, _ := New(Options{Dim: 2})
	o := Object{ID: 1, PDF: updf.NewUniformBall(geom.Point{0, 0, 0}, 1)}
	if err := tree.Insert(o); err == nil {
		t.Error("3D object accepted by 2D tree")
	}
}

func Test3DTree(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var objs []Object
	for i := 0; i < 400; i++ {
		ctr := geom.Point{rng.Float64() * 500, rng.Float64() * 500, rng.Float64() * 500}
		objs = append(objs, Object{ID: int64(i), PDF: updf.NewUniformBall(ctr, 12.5)})
	}
	tree, err := New(Options{Dim: 3, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	scan := NewScan(objs, 9, 0, true, 1)
	for q := 0; q < 40; q++ {
		c := geom.Point{rng.Float64() * 500, rng.Float64() * 500, rng.Float64() * 500}
		s := 30 + rng.Float64()*80
		rq := geom.NewRect(
			geom.Point{c[0] - s, c[1] - s, c[2] - s},
			geom.Point{c[0] + s, c[1] + s, c[2] + s})
		query := Query{Rect: rq, Prob: 0.05 + rng.Float64()*0.9}
		got, _, err := tree.RangeQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		want := scan.BruteForce(query)
		if !sameIDs(resultIDs(got), resultIDs(want)) {
			t.Fatalf("3D query %d: got %v want %v", q, resultIDs(got), resultIDs(want))
		}
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	objs := makeObjects(400, 600, rng)
	store := pagefile.NewMemStore()
	tree, err := New(Options{Dim: 2, Store: store, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := tree.AllocMetaPage()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.SaveMeta(meta); err != nil {
		t.Fatal(err)
	}

	re, err := Open(store, meta, Options{ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != tree.Len() || re.Kind() != tree.Kind() || re.Dim() != 2 {
		t.Fatalf("reopened tree mismatch: len=%d kind=%v", re.Len(), re.Kind())
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	scan := NewScan(objs, 9, 0, true, 1)
	for q := 0; q < 40; q++ {
		query := Query{Rect: randomQueryRect(rng, 600), Prob: 0.05 + rng.Float64()*0.9}
		got, _, err := re.RangeQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		want := scan.BruteForce(query)
		if !sameIDs(resultIDs(got), resultIDs(want)) {
			t.Fatalf("reopened query %d mismatch", q)
		}
	}
	// Reopened tree accepts further updates.
	extra := makeObjects(1, 600, rng)[0]
	extra.ID = 999999
	if err := re.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := re.Delete(extra.ID, extra.PDF.MBR()); err != nil {
		t.Fatal(err)
	}
}

func TestOpenBadMeta(t *testing.T) {
	store := pagefile.NewMemStore()
	id, _ := store.Alloc()
	if _, err := Open(store, id, Options{}); err == nil {
		t.Error("garbage metadata accepted")
	}
}

func TestFaultInjectionSurfacesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	inner := pagefile.NewMemStore()
	fs := pagefile.NewFaultStore(inner, -1)
	tree, err := New(Options{Dim: 2, Store: fs, BufferPages: 1, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	objs := makeObjects(64, 300, rng)
	for _, o := range objs[:32] {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	// Trip the store and verify errors propagate rather than panic.
	fs.Arm(0)
	if err := tree.Insert(objs[40]); !errors.Is(err, pagefile.ErrInjected) {
		t.Fatalf("insert under fault: %v", err)
	}
	fs.Arm(0)
	if _, _, err := tree.RangeQuery(Query{
		Rect: geom.NewRect(geom.Point{0, 0}, geom.Point{300, 300}), Prob: 0.5,
	}); !errors.Is(err, pagefile.ErrInjected) {
		t.Fatalf("query under fault: %v", err)
	}
	// Heal and confirm reads still work (tree structure was not corrupted
	// by the failed insert attempt before any page mutation).
	fs.Arm(-1)
	if _, _, err := tree.RangeQuery(Query{
		Rect: geom.NewRect(geom.Point{0, 0}, geom.Point{300, 300}), Prob: 0.5,
	}); err != nil {
		t.Fatalf("query after heal: %v", err)
	}
}

func TestUpdateStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	objs := makeObjects(200, 400, rng)
	tree := buildTree(t, UTree, objs, 0)
	ins := tree.InsertStats()
	if ins.Ops != 200 || ins.PageWrites == 0 || ins.CPUTime == 0 {
		t.Fatalf("insert stats: %+v", ins)
	}
	for _, o := range objs[:50] {
		if err := tree.Delete(o.ID, o.PDF.MBR()); err != nil {
			t.Fatal(err)
		}
	}
	del := tree.DeleteStats()
	if del.Ops != 50 || del.PageReads == 0 {
		t.Fatalf("delete stats: %+v", del)
	}
	tree.ResetCounters()
	if s := tree.InsertStats(); s.Ops != 0 {
		t.Fatal("reset did not clear stats")
	}
}

func TestScanAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	objs := makeObjects(300, 500, rng)
	scan := NewScan(objs, 9, 0, true, 1)
	for q := 0; q < 60; q++ {
		query := Query{Rect: randomQueryRect(rng, 500), Prob: 0.05 + rng.Float64()*0.9}
		got, stats, err := scan.RangeQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		want := scan.BruteForce(query)
		if !sameIDs(resultIDs(got), resultIDs(want)) {
			t.Fatalf("scan query %d mismatch", q)
		}
		if stats.ProbComputations > len(objs) {
			t.Fatalf("more prob computations than objects: %d", stats.ProbComputations)
		}
	}
}

func TestKindString(t *testing.T) {
	if UTree.String() != "U-tree" || UPCR.String() != "U-PCR" {
		t.Fatal("Kind.String broken")
	}
}

func TestHistogramObjectsEndToEnd(t *testing.T) {
	// "Arbitrary pdfs": random histograms through the full index stack.
	rng := rand.New(rand.NewSource(15))
	var objs []Object
	for i := 0; i < 150; i++ {
		cx, cy := rng.Float64()*400, rng.Float64()*400
		w := make([]float64, 9)
		for k := range w {
			w[k] = rng.Float64()
		}
		rect := geom.NewRect(geom.Point{cx, cy}, geom.Point{cx + 30, cy + 24})
		objs = append(objs, Object{ID: int64(i), PDF: updf.NewHistogramRect(rect, []int{3, 3}, w)})
	}
	tree, err := New(Options{Dim: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	scan := NewScan(objs, 9, 0, true, 1)
	for q := 0; q < 50; q++ {
		query := Query{Rect: randomQueryRect(rng, 400), Prob: 0.05 + rng.Float64()*0.9}
		got, _, err := tree.RangeQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		want := scan.BruteForce(query)
		if !sameIDs(resultIDs(got), resultIDs(want)) {
			t.Fatalf("histogram query %d mismatch", q)
		}
	}
}
