package core

import (
	"math/rand"
	"testing"

	"repro/internal/pagefile"
)

// TestBatchAmortizesRelocations pins down the batch surface's reason to
// exist: committing per operation shadow-relocates the whole root path
// every time, while a batch relocates each node at most once — so the
// batched build must allocate far fewer pages for the same inserts.
func TestBatchAmortizesRelocations(t *testing.T) {
	build := func(batch bool) int64 {
		store := pagefile.NewMemStore()
		tree, err := New(Options{Dim: 2, ExactRefinement: true, Store: store})
		if err != nil {
			t.Fatal(err)
		}
		objs := makeObjects(200, 1000, rand.New(rand.NewSource(11)))
		if batch {
			if err := tree.BeginBatch(); err != nil {
				t.Fatal(err)
			}
		}
		for _, o := range objs {
			if err := tree.Insert(o); err != nil {
				t.Fatal(err)
			}
			if !batch {
				if err := tree.Commit(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if batch {
			if err := tree.CommitBatch(); err != nil {
				t.Fatal(err)
			}
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if tree.Len() != len(objs) {
			t.Fatalf("Len = %d, want %d", tree.Len(), len(objs))
		}
		_, _, allocs, _ := store.Stats().Snapshot()
		return allocs
	}
	perOp := build(false)
	batched := build(true)
	if batched*2 >= perOp {
		t.Fatalf("batched build allocated %d pages vs %d per-op — no relocation amortization", batched, perOp)
	}
}

func TestBatchStateMachine(t *testing.T) {
	tree, err := New(Options{Dim: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	if tree.InBatch() {
		t.Fatal("fresh tree reports an open batch")
	}
	if err := tree.CommitBatch(); err == nil {
		t.Fatal("CommitBatch without BeginBatch succeeded")
	}
	if err := tree.RollbackBatch(); err == nil {
		t.Fatal("RollbackBatch without BeginBatch succeeded")
	}
	if err := tree.BeginBatch(); err != nil {
		t.Fatal(err)
	}
	if err := tree.BeginBatch(); err == nil {
		t.Fatal("nested BeginBatch succeeded")
	}
	objs := makeObjects(3, 1000, rand.New(rand.NewSource(3)))
	for _, o := range objs {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if tree.CommittedLen() != 0 {
		t.Fatalf("uncommitted batch visible: CommittedLen=%d", tree.CommittedLen())
	}
	if err := tree.RollbackBatch(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 0 || tree.InBatch() {
		t.Fatalf("rollback left Len=%d inBatch=%v", tree.Len(), tree.InBatch())
	}
	if err := tree.BeginBatch(); err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CommitBatch(); err != nil {
		t.Fatal(err)
	}
	if tree.CommittedLen() != len(objs) {
		t.Fatalf("CommittedLen=%d after batch commit, want %d", tree.CommittedLen(), len(objs))
	}
}

// TestGCStatsCounters checks the extended GC surface end to end: deletes
// queue per-page tombstones, the counters move, and an idle reclaim drains
// everything.
func TestGCInfoCounters(t *testing.T) {
	tree, err := New(Options{Dim: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	objs := makeObjects(60, 1000, rand.New(rand.NewSource(5)))
	for _, o := range objs {
		if err := tree.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := tree.Snapshot() // blocks the drain
	for _, o := range objs[:20] {
		if err := tree.Delete(o.ID, o.PDF.MBR()); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Commit(); err != nil {
		t.Fatal(err)
	}
	info := tree.GCInfo()
	if info.PendingEpochs == 0 || info.PendingTombstones != 20 {
		t.Fatalf("with a pin held: %+v, want pending epochs > 0, 20 tombstones", info)
	}
	snap.Close()
	if err := tree.Reclaim(); err != nil {
		t.Fatal(err)
	}
	info = tree.GCInfo()
	if info.PendingPages != 0 || info.PendingTombstones != 0 {
		t.Fatalf("after reclaim: %+v, want nothing pending", info)
	}
	if info.ReclaimedTombstones != 20 || info.ReclaimedPages == 0 {
		t.Fatalf("reclaim counters %+v, want 20 tombstones and some pages", info)
	}
}
