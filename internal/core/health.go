package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/pagefile"
)

// Corruption containment: a page whose read fails the checksum (or whose
// trailer names another page, or whose decoded header is structurally
// impossible) is QUARANTINED — recorded in a tree-level registry and
// invalidated out of both caches, so its bytes can never be served from the
// buffer pool or the decoded-node cache as if they were good, and every
// later read of the page fast-fails with the recorded cause instead of
// re-reading garbage. Quarantine never repairs anything; it turns silent
// corruption into a typed, reportable error (pagefile.ErrChecksum /
// pagefile.ErrBadPage) and keeps it contained to queries whose traversal
// actually needs the damaged page.

// QuarantinedPage describes one page in the quarantine registry.
type QuarantinedPage struct {
	Page pagefile.PageID `json:"page"`
	// Epoch is the committed epoch when the damage was first observed.
	Epoch uint64 `json:"epoch"`
	// Cause is the first error that condemned the page (its Error() text).
	Cause string `json:"cause"`
}

// HealthInfo is the tree's storage-health report: the quarantine registry,
// the retry traffic the storage stack absorbed, and the background
// scrubber's progress. Like QueryStats, aggregation goes through Add — a
// new HealthInfo field only needs its merge rule stated there.
type HealthInfo struct {
	// Quarantined lists the condemned pages, ordered by PageID.
	Quarantined []QuarantinedPage `json:"quarantined,omitempty"`
	// QuarantinedPages is len(Quarantined) — kept explicit so merged and
	// JSON-round-tripped reports stay self-describing.
	QuarantinedPages int `json:"quarantined_pages"`
	// Retries is the cumulative transient-fault retries the storage stack
	// performed (pagefile.Stats.Retries).
	Retries int64 `json:"retries"`
	// ScrubbedPages / ScrubErrors are the background scrubber's lifetime
	// verify count and detected-corruption count.
	ScrubbedPages int64 `json:"scrubbed_pages"`
	ScrubErrors   int64 `json:"scrub_errors"`
	// ScrubberRunning reports whether the background scrubber is active.
	ScrubberRunning bool `json:"scrubber_running"`
}

// Add accumulates o into h — the merge point for sharded indexes: counters
// sum, quarantine lists concatenate (re-sorted by page), and the scrubber
// is "running" when any shard's is.
func (h *HealthInfo) Add(o HealthInfo) {
	h.Quarantined = append(h.Quarantined, o.Quarantined...)
	sort.Slice(h.Quarantined, func(a, b int) bool {
		return h.Quarantined[a].Page < h.Quarantined[b].Page
	})
	h.QuarantinedPages += o.QuarantinedPages
	h.Retries += o.Retries
	h.ScrubbedPages += o.ScrubbedPages
	h.ScrubErrors += o.ScrubErrors
	h.ScrubberRunning = h.ScrubberRunning || o.ScrubberRunning
}

// quarantine is the tree-level registry of condemned pages. The count is
// kept in an atomic alongside the map so the query hot path pays one atomic
// load — not a lock — in the (overwhelmingly common) healthy case.
type quarantine struct {
	mu    sync.Mutex
	pages map[pagefile.PageID]QuarantinedPage
	n     atomic.Int64
}

// add condemns a page; the first cause wins. Reports whether the page was
// newly added.
func (q *quarantine) add(id pagefile.PageID, epoch uint64, cause error) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.pages == nil {
		q.pages = make(map[pagefile.PageID]QuarantinedPage)
	}
	if _, ok := q.pages[id]; ok {
		return false
	}
	q.pages[id] = QuarantinedPage{Page: id, Epoch: epoch, Cause: cause.Error()}
	q.n.Store(int64(len(q.pages)))
	return true
}

// get returns the quarantine record for id, if any.
func (q *quarantine) get(id pagefile.PageID) (QuarantinedPage, bool) {
	if q.n.Load() == 0 {
		return QuarantinedPage{}, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	rec, ok := q.pages[id]
	return rec, ok
}

// list returns the registry ordered by PageID.
func (q *quarantine) list() []QuarantinedPage {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]QuarantinedPage, 0, len(q.pages))
	for _, rec := range q.pages {
		out = append(out, rec)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Page < out[b].Page })
	return out
}

// isCorruption reports whether err condemns the page it came from: a
// checksum mismatch, a misdirected-write trailer, or a structurally
// impossible decode. Transient faults and plain I/O errors do NOT
// quarantine — they may heal on retry, and condemning a page on a fault
// that never inspected its bytes would turn an availability problem into a
// (false) integrity report.
func isCorruption(err error) bool {
	return errors.Is(err, pagefile.ErrChecksum) || errors.Is(err, pagefile.ErrBadPage)
}

// checkQuarantine fast-fails a read of a condemned page with its recorded
// cause. One atomic load when the registry is empty.
func (t *Tree) checkQuarantine(id pagefile.PageID) error {
	if rec, ok := t.quar.get(id); ok {
		return fmt.Errorf("core: page %d quarantined (epoch %d): %s: %w",
			id, rec.Epoch, rec.Cause, pagefile.ErrBadPage)
	}
	return nil
}

// noteReadError inspects a failed page read and quarantines the page when
// the error proves corruption, evicting it from the buffer pool and the
// decoded-node cache so no stale good-looking copy survives. Always returns
// err, so call sites can hook it into their error returns inline.
func (t *Tree) noteReadError(id pagefile.PageID, err error) error {
	if err == nil || !isCorruption(err) {
		return err
	}
	if t.quar.add(id, t.vs.Epoch(), err) {
		t.pool.Invalidate(id)
		if t.ncache != nil {
			t.ncache.invalidate(id)
		}
	}
	return err
}

// Health reports the tree's storage-health state.
func (t *Tree) Health() HealthInfo {
	q := t.quar.list()
	return HealthInfo{
		Quarantined:      q,
		QuarantinedPages: len(q),
		Retries:          t.store.Stats().Retries.Load(),
		ScrubbedPages:    t.scrubbed.Load(),
		ScrubErrors:      t.scrubErrs.Load(),
		ScrubberRunning:  t.scrubRunning(),
	}
}
