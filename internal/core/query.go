package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/geom"
	"repro/internal/pagefile"
	"repro/internal/pcr"
	"repro/internal/updf"
)

// Query is a probabilistic range query: find objects appearing in Rect with
// probability at least Prob.
type Query struct {
	Rect geom.Rect
	Prob float64
}

// Result is one qualifying object.
type Result struct {
	ID int64
	// Prob is the appearance probability when it was computed during
	// refinement; for directly validated objects it is set to -1 (the whole
	// point of the index is not computing it).
	Prob float64
	// Validated reports whether the object was reported without probability
	// computation.
	Validated bool
}

// QueryStats reports the cost metrics of one query, matching the paper's
// plots: node accesses (Fig. 9/10 left column), number of appearance
// probability computations and directly-validated percentage (middle
// column), and refinement I/Os.
type QueryStats struct {
	NodeAccesses     int // tree pages visited
	LeafAccesses     int
	Candidates       int // entries that needed refinement
	ProbComputations int
	Validated        int // results reported without probability computation
	RefinementIOs    int // distinct data pages fetched
	Results          int
	FilterTime       time.Duration
	RefineTime       time.Duration

	// Intra-query prefetch counters (all zero when prefetching is off):
	// async page reads issued, requests coalesced onto an in-flight fetch,
	// and issued reads that were never consumed (speculation waste).
	PrefetchIssued    int
	PrefetchCoalesced int
	PrefetchWasted    int

	// PagesFetched counts the physical page fetches (buffer-pool misses +
	// data-page reads) charged against QueryOpts.PageBudget. It is filled
	// only when a budget is armed — the budgeted path is the only one that
	// observes per-call hit/miss outcomes — and is 0 otherwise.
	PagesFetched int

	// Decoded-node cache outcomes of this query's tree-page reads (both
	// zero when the cache is disabled): a hit skipped the buffer pool and
	// the node decode entirely.
	NodeCacheHits   int
	NodeCacheMisses int

	// Retries counts the transient-fault retries the storage stack
	// performed while this query ran (RetryStore attempts beyond each
	// operation's first). Measured as the delta of the store-wide retry
	// counter over the query, so with concurrent queries on one tree a
	// retry may be attributed to whichever query was in flight — the sum
	// across queries remains exact.
	Retries int

	// ProbFilterPruned counts candidates discarded by the probabilistic
	// PCR-slab filter before refinement (zero when the filter is off) —
	// each one is a probability computation and possibly a data-page read
	// that never happened.
	ProbFilterPruned int

	// ShardsPruned counts whole shards skipped by root-MBR pruning in a
	// sharded scatter-gather (always zero for a single tree; filled by the
	// sharded layer through Add).
	ShardsPruned int
}

// Add accumulates o into s, field by field. It is the single merge point
// for query-cost aggregation — batch engines summing per-query stats and
// sharded indexes merging per-shard stats both go through it, so a new
// QueryStats field only needs its merge rule stated here.
func (s *QueryStats) Add(o QueryStats) {
	s.NodeAccesses += o.NodeAccesses
	s.LeafAccesses += o.LeafAccesses
	s.Candidates += o.Candidates
	s.ProbComputations += o.ProbComputations
	s.Validated += o.Validated
	s.RefinementIOs += o.RefinementIOs
	s.Results += o.Results
	s.FilterTime += o.FilterTime
	s.RefineTime += o.RefineTime
	s.PrefetchIssued += o.PrefetchIssued
	s.PrefetchCoalesced += o.PrefetchCoalesced
	s.PrefetchWasted += o.PrefetchWasted
	s.PagesFetched += o.PagesFetched
	s.NodeCacheHits += o.NodeCacheHits
	s.NodeCacheMisses += o.NodeCacheMisses
	s.Retries += o.Retries
	s.ProbFilterPruned += o.ProbFilterPruned
	s.ShardsPruned += o.ShardsPruned
}

// RangeQuery executes a prob-range query (Section 5.2): Observation 4
// pruning during the descent, Observation 3 (U-tree) or Observation 2
// (U-PCR) filtering at leaves, then refinement of surviving candidates with
// their appearance probabilities, fetching each distinct data page once.
//
// Like the rest of Tree, it is not safe for concurrent use (it advances the
// shared refinement sampler); concurrent readers go through RangeQueryRO.
func (t *Tree) RangeQuery(q Query) ([]Result, QueryStats, error) {
	//ulint:ignore ctxflow legacy non-cancellable entry point; the root context is the documented contract
	return t.RangeQueryCtx(context.Background(), q, QueryOpts{})
}

// RangeQueryCtx is RangeQuery with a cancellation context and per-query
// options. The traversal checks ctx before every page fetch and every
// refinement integration, so a cancelled query returns ctx.Err() within
// roughly one page latency of the cancellation (plus draining the at most
// prefetch-bound in-flight fetches). With a zero QueryOpts, results and
// logical stats are byte-identical to RangeQuery.
func (t *Tree) RangeQueryCtx(ctx context.Context, q Query, o QueryOpts) ([]Result, QueryStats, error) {
	// Working-root queries must see this batch's appends: refinement reads
	// data pages from the store, never the append cache.
	if err := t.data.Flush(); err != nil {
		return nil, QueryStats{}, err
	}
	p := t.resolvePlan(ctx, o)
	pred, armed := t.planQuery(q, o, &p)
	res, stats, err := t.rangeQuery(t.rootPage, q, t.rng, &p)
	if armed && err == nil {
		t.planner.observe(pred, stats.NodeAccesses)
	}
	return res, stats, err
}

// RangeQueryRO is the read-only query entry point: it answers q against
// the working root without touching any insert/delete state, so any
// number of goroutines may call it concurrently — provided no writer
// (Insert/Delete/BulkLoad) runs at the same time. To read concurrently
// WITH a writer, pin a Snapshot and query that instead: its epoch's pages
// are immune to the writer's copy-on-write churn. The refinement sampler
// is seeded from (tree seed, query), so Monte Carlo results are
// reproducible per query regardless of scheduling or batch order (like
// ExpectedDistance's per-object seeding).
func (t *Tree) RangeQueryRO(q Query) ([]Result, QueryStats, error) {
	//ulint:ignore ctxflow legacy non-cancellable entry point; the root context is the documented contract
	return t.RangeQueryROCtx(context.Background(), q, QueryOpts{})
}

// RangeQueryROCtx is RangeQueryRO with a cancellation context and
// per-query options (see RangeQueryCtx for the cancellation contract).
func (t *Tree) RangeQueryROCtx(ctx context.Context, q Query, o QueryOpts) ([]Result, QueryStats, error) {
	// See RangeQueryCtx: append-cache visibility. Flushing is a no-op for
	// the RO contract's "no concurrent writer" case with nothing buffered.
	if err := t.data.Flush(); err != nil {
		return nil, QueryStats{}, err
	}
	p := t.resolvePlan(ctx, o)
	pred, armed := t.planQuery(q, o, &p)
	rng := getSeededRand(t.roSeed(q))
	defer putRand(rng)
	res, stats, err := t.rangeQuery(t.rootPage, q, rng, &p)
	if armed && err == nil {
		t.planner.observe(pred, stats.NodeAccesses)
	}
	return res, stats, err
}

// roSeed derives a deterministic sampler seed from the tree seed and the
// query geometry (FNV-1a over the coordinate bits).
func (t *Tree) roSeed(q Query) int64 {
	h := (uint64(t.seed) ^ 14695981039346656037) * 1099511628211
	mix := func(f float64) {
		h ^= math.Float64bits(f)
		h *= 1099511628211
	}
	for _, v := range q.Rect.Lo {
		mix(v)
	}
	for _, v := range q.Rect.Hi {
		mix(v)
	}
	mix(q.Prob)
	return int64(h)
}

// querySessions is the per-query prefetch state: one session over the
// buffer pool (tree pages; a prefetch warms the cache the claim then reads)
// and one over the raw store (data pages, which bypass the pool). Both are
// nil when the plan has no prefetcher — the serial cost-model path.
type querySessions struct {
	nodes *pagefile.PrefetchSession
	data  *pagefile.PrefetchSession
}

// openSessions creates the sessions when the plan has a prefetcher armed.
// The sessions carry the query context: cancellation fails the scheduled
// backlog without touching storage, so Drain only waits out genuinely
// in-flight reads.
func (t *Tree) openSessions(p *qplan) querySessions {
	if p.prefetch == nil {
		return querySessions{}
	}
	qs := querySessions{
		nodes: p.prefetch.NewSessionCtx(p.ctx, t.pool),
		data:  p.prefetch.NewSessionCtx(p.ctx, pagefile.AsGetter(t.store)),
	}
	if p.issueCap > 0 {
		// The planner's speculative-issue budget applies to the node
		// session only: data-page prefetches are never speculative (every
		// scheduled page is consumed by a candidate).
		qs.nodes.LimitIssued(p.issueCap)
	}
	return qs
}

// drainInto waits out any in-flight fetches (mandatory: fetch goroutines
// must not outlive the query's lock window) and records the prefetch
// counters into stats.
func (qs querySessions) drainInto(issued, coalesced, wasted *int) {
	if qs.nodes == nil {
		return
	}
	var st pagefile.PrefetchStats
	st.Add(qs.nodes.Drain())
	st.Add(qs.data.Drain())
	*issued += st.Issued
	*coalesced += st.Coalesced
	*wasted += st.Wasted
}

// readNodeVia reads a tree page through the prefetch session when one is
// active (claiming the async fetch), else synchronously — both paths count
// one logical node read.
func (t *Tree) readNodeVia(ses *pagefile.PrefetchSession, id pagefile.PageID) (*node, error) {
	if ses == nil {
		return t.readNode(id)
	}
	t.nodeReads.Add(1)
	if err := t.checkQuarantine(id); err != nil {
		return nil, err
	}
	buf, err := ses.Get(id)
	if err != nil {
		return nil, fmt.Errorf("core: reading node %d: %w", id, t.noteReadError(id, err))
	}
	n, err := t.decodeNode(id, buf)
	if err != nil {
		return nil, t.noteReadError(id, err)
	}
	return n, nil
}

// readDataPageVia reads a data page through the session when active, else
// directly from the data file. Quarantined pages fast-fail; a read that
// proves corruption quarantines the page.
func (t *Tree) readDataPageVia(ses *pagefile.PrefetchSession, id pagefile.PageID) ([]byte, error) {
	if err := t.checkQuarantine(id); err != nil {
		return nil, err
	}
	var buf []byte
	var err error
	if ses == nil {
		buf, err = t.data.ReadPage(id)
	} else {
		buf, err = ses.Get(id)
	}
	if err != nil {
		return nil, t.noteReadError(id, err)
	}
	return buf, nil
}

// rangeQuery is the shared implementation of every range entry point: a
// level-batched descent (Observation 4 pruning), Observation 3/2 filtering
// at the leaves, then refinement of the surviving candidates — all driven
// by the resolved per-query plan.
//
// The descent processes one level's surviving nodes per round, in
// discovery order. With prefetching armed, a round's pages are fetched
// concurrently (bounded in flight) and the refinement data pages are
// prefetched while earlier candidates integrate — but nodes are still
// *processed* in the identical deterministic order, candidates are still
// refined in (page, slot) order, and the refinement sampler is still
// consumed serially, so the pipelined path returns byte-identical results
// and logical counters to the serial one; only wall-clock changes.
//
// Cancellation is checked before every page fetch and every refinement
// integration; a cancelled query returns plan.ctx.Err() with the partial
// results and stats gathered so far. A page budget stops the query the
// same way with ErrBudgetExceeded after exactly plan.budget physical
// fetches, and a result limit cuts the query once that many results exist.
func (t *Tree) rangeQuery(root pagefile.PageID, q Query, rng *rand.Rand, plan *qplan) (results []Result, stats QueryStats, err error) {
	if err := validateQuery(t.dim, q); err != nil {
		return nil, stats, err
	}
	start := time.Now() //ulint:ignore detquery timing feeds QueryStats only, never the result set

	ses := t.openSessions(plan)
	defer ses.drainInto(&stats.PrefetchIssued, &stats.PrefetchCoalesced, &stats.PrefetchWasted)

	meter := fetchMeter{budget: plan.budget}
	retries0 := t.store.Stats().Retries.Load()
	// partial finalizes an early exit (cancel, budget, limit): the results
	// so far are valid answers, the stats describe the work actually done.
	partial := func(err error) ([]Result, QueryStats, error) {
		stats.Results = len(results)
		stats.PagesFetched = meter.spent
		stats.NodeCacheHits = meter.ncHits
		stats.NodeCacheMisses = meter.ncMisses
		stats.Retries = int(t.store.Stats().Retries.Load() - retries0)
		return results, stats, err
	}

	// p_j for Observation 4: largest catalog value ≤ p_q (always exists
	// since p_1 = 0).
	jDescend, _ := t.cat.LargestLE(q.Prob)

	// Pooled traversal scratch: the two descent-level buffers (swapped per
	// round instead of reallocated), the candidate list, and the Monte
	// Carlo sample point. The results slice escapes to the caller and is
	// never pooled. Append order is unchanged, so results stay
	// byte-identical to the unpooled path.
	sc := getScratch()
	frontier := append(sc.frontier[:0], root)
	next := sc.next[:0]
	cands := sc.cands[:0]
	defer func() {
		// Hand the (possibly grown) buffers back before releasing.
		sc.frontier, sc.next, sc.cands = frontier, next, cands
		sc.release()
	}()
descent:
	for len(frontier) > 0 {
		if ses.nodes != nil && len(frontier) > 1 {
			// Prefetch copies the ids out synchronously; reusing the
			// buffer afterwards is safe. Pages whose decoded node is
			// already cached are skipped — fetchNode would never claim
			// the async read (the hit bypasses the pool entirely).
			pf := frontier
			if t.ncache != nil {
				pf = sc.pages[:0]
				for _, id := range frontier {
					if !t.ncache.contains(id) {
						pf = append(pf, id)
					}
				}
				sc.pages = pf
			}
			ses.nodes.Prefetch(pf...)
		}
		next = next[:0]
		for _, page := range frontier {
			if cerr := plan.ctx.Err(); cerr != nil {
				return partial(cerr)
			}
			if plan.limitReached(len(results)) {
				break descent
			}
			n, err := t.fetchNode(ses.nodes, &meter, page)
			if err != nil {
				return partial(err)
			}
			stats.NodeAccesses++
			if !n.leaf() {
				for i := range n.entries {
					// Observation 4: the subtree cannot contain results if rq
					// misses e.MBR(p_j).
					if t.boxIntersectsAt(q.Rect, n.entries[i].boxes, jDescend) {
						next = append(next, n.entries[i].child)
					}
				}
				continue
			}
			stats.LeafAccesses++
			for i := range n.entries {
				e := &n.entries[i]
				var outcome pcr.Outcome
				if t.kind == UTree {
					outcome = pcr.FilterCFB(e.out, e.in, t.cat, e.mbr, q.Rect, q.Prob)
				} else {
					outcome = pcr.FilterCatalogPCR(pcr.PCRs{Cat: t.cat, Boxes: e.pcrs}, e.mbr, q.Rect, q.Prob)
				}
				switch outcome {
				case pcr.Validated:
					results = append(results, Result{ID: e.id, Prob: -1, Validated: true})
					stats.Validated++
					if plan.limitReached(len(results)) {
						break descent
					}
				case pcr.Unknown:
					if plan.probFilter {
						// Bernecker-style probabilistic filter: bound the
						// qualification probability from the PCR slabs; a
						// candidate whose bound is provably below p_q never
						// reaches refinement. The epsilon absorbs the float
						// noise of PCR nesting repair, so only strictly
						// non-qualifying candidates drop.
						var ub float64
						if t.kind == UTree {
							ub = pcr.ProbUpperBoundCFB(e.out, e.in, t.cat, q.Rect)
						} else {
							ub = pcr.ProbUpperBoundPCR(pcr.PCRs{Cat: t.cat, Boxes: e.pcrs}, q.Rect)
						}
						if ub < q.Prob-probFilterEps {
							stats.ProbFilterPruned++
							continue
						}
					}
					cands = append(cands, candidate{e.id, e.addr})
				}
			}
		}
		frontier, next = next, frontier
	}
	stats.Candidates = len(cands)
	stats.FilterTime = time.Since(start)

	// Refinement: group candidates by data page (one I/O per page).
	refineStart := time.Now() //ulint:ignore detquery timing feeds QueryStats only, never the result set
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].addr.Page != cands[b].addr.Page {
			return cands[a].addr.Page < cands[b].addr.Page
		}
		return cands[a].addr.Slot < cands[b].addr.Slot
	})
	if ses.data != nil {
		// Overlap the data-page reads with the (CPU-heavy) integration of
		// earlier candidates: schedule every distinct page up front.
		pages := sc.pages[:0]
		last := pagefile.InvalidPage
		for _, c := range cands {
			if c.addr.Page != last {
				pages = append(pages, c.addr.Page)
				last = c.addr.Page
			}
		}
		ses.data.Prefetch(pages...)
		sc.pages = pages
	}
	mcBuf := sc.point(t.dim)
	var pageBuf []byte
	pageID := pagefile.InvalidPage
	for _, c := range cands {
		if cerr := plan.ctx.Err(); cerr != nil {
			stats.RefineTime = time.Since(refineStart)
			return partial(cerr)
		}
		if plan.limitReached(len(results)) {
			break
		}
		if c.addr.Page != pageID {
			var err error
			pageBuf, err = t.fetchDataPage(ses.data, &meter, c.addr.Page)
			if err != nil {
				stats.RefineTime = time.Since(refineStart)
				return partial(err)
			}
			pageID = c.addr.Page
			stats.RefinementIOs++
		}
		rec, err := pagefile.RecordFromPage(pageBuf, c.addr.Slot)
		if err != nil {
			return nil, stats, fmt.Errorf("core: refining object %d: %w", c.id, err)
		}
		obj, err := decodeObject(rec)
		if err != nil {
			return nil, stats, fmt.Errorf("core: refining object %d: %w", c.id, err)
		}
		p := t.appearanceProbability(obj.PDF, q.Rect, rng, plan, mcBuf)
		stats.ProbComputations++
		if p >= q.Prob {
			results = append(results, Result{ID: obj.ID, Prob: p})
		}
	}
	stats.RefineTime = time.Since(refineStart)
	stats.Results = len(results)
	if plan.budget > 0 {
		stats.PagesFetched = meter.spent
	}
	stats.NodeCacheHits = meter.ncHits
	stats.NodeCacheMisses = meter.ncMisses
	stats.Retries = int(t.store.Stats().Retries.Load() - retries0)
	return results, stats, nil
}

// appearanceProbability evaluates Equation 2, by exact oracle when the
// plan asks for it and the pdf supports it, else by Monte Carlo (Equation
// 3) driven by the caller's sampler at the plan's sample count. scratch is
// the sample-point buffer (len = tree dim), reused across candidates.
func (t *Tree) appearanceProbability(p updf.PDF, rq geom.Rect, rng *rand.Rand, plan *qplan, scratch geom.Point) float64 {
	if plan.exact {
		if ex, ok := p.(updf.ExactProber); ok {
			return ex.ExactProb(rq)
		}
	}
	return updf.MonteCarloProbScratch(p, rq, plan.samples, rng, scratch)
}

func validateQuery(dim int, q Query) error {
	if q.Rect.Dim() != dim {
		return fmt.Errorf("core: query dim %d, tree dim %d", q.Rect.Dim(), dim)
	}
	if !q.Rect.IsValid() {
		return fmt.Errorf("core: invalid query rectangle %v", q.Rect)
	}
	if q.Prob <= 0 || q.Prob > 1 {
		return fmt.Errorf("core: query probability %g outside (0, 1]", q.Prob)
	}
	return nil
}
