package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/pagefile"
	"repro/internal/pcr"
)

// randRectIn produces a well-formed rectangle inside [0, span]^d.
func randRectIn(rng *rand.Rand, d int, span float64) geom.Rect {
	lo := make(geom.Point, d)
	hi := make(geom.Point, d)
	for i := 0; i < d; i++ {
		a := rng.Float64() * span
		b := a + rng.Float64()*span/10
		lo[i], hi[i] = a, b
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// randCFB produces a structurally valid CFB.
func randCFB(rng *rand.Rand, d int) pcr.CFB {
	c := pcr.CFB{
		AlphaLo: make([]float64, d), BetaLo: make([]float64, d),
		AlphaHi: make([]float64, d), BetaHi: make([]float64, d),
	}
	for i := 0; i < d; i++ {
		c.AlphaLo[i] = rng.Float64() * 100
		c.AlphaHi[i] = c.AlphaLo[i] + rng.Float64()*50
		c.BetaLo[i] = rng.NormFloat64() * 10
		c.BetaHi[i] = rng.NormFloat64() * 10
	}
	return c
}

func cfbEqual(a, b pcr.CFB) bool {
	for i := range a.AlphaLo {
		if a.AlphaLo[i] != b.AlphaLo[i] || a.BetaLo[i] != b.BetaLo[i] ||
			a.AlphaHi[i] != b.AlphaHi[i] || a.BetaHi[i] != b.BetaHi[i] {
			return false
		}
	}
	return true
}

// TestNodeSerializationRoundTripUTree encodes and decodes random U-tree
// nodes (leaf and intermediate) and demands bit-exact field recovery.
func TestNodeSerializationRoundTripUTree(t *testing.T) {
	for _, dim := range []int{1, 2, 3} {
		tree, err := New(Options{Dim: dim})
		if err != nil {
			t.Fatal(err)
		}
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			// Leaf node.
			leaf := &node{page: 12, level: 0}
			n := 1 + rng.Intn(tree.leafCap)
			for i := 0; i < n; i++ {
				leaf.entries = append(leaf.entries, entry{
					id:   rng.Int63(),
					addr: pagefile.DataAddr{Page: pagefile.PageID(rng.Uint32()), Slot: uint16(rng.Intn(100))},
					mbr:  randRectIn(rng, dim, 1000),
					out:  randCFB(rng, dim),
					in:   randCFB(rng, dim),
				})
			}
			buf := make([]byte, pagefile.PageSize)
			if err := tree.encodeNode(leaf, buf); err != nil {
				return false
			}
			got, err := tree.decodeNode(12, buf)
			if err != nil || got.level != 0 || len(got.entries) != n {
				return false
			}
			for i := range leaf.entries {
				a, b := &leaf.entries[i], &got.entries[i]
				if a.id != b.id || a.addr != b.addr || !a.mbr.Equal(b.mbr) ||
					!cfbEqual(a.out, b.out) || !cfbEqual(a.in, b.in) {
					return false
				}
			}
			// Intermediate node.
			inner := &node{page: 13, level: 1 + rng.Intn(4)}
			ni := 1 + rng.Intn(tree.innerCap)
			for i := 0; i < ni; i++ {
				inner.entries = append(inner.entries, entry{
					child: pagefile.PageID(rng.Uint32() % 1_000_000),
					boxes: []geom.Rect{randRectIn(rng, dim, 1000), randRectIn(rng, dim, 1000)},
				})
			}
			buf2 := make([]byte, pagefile.PageSize)
			if err := tree.encodeNode(inner, buf2); err != nil {
				return false
			}
			got2, err := tree.decodeNode(13, buf2)
			if err != nil || got2.level != inner.level || len(got2.entries) != ni {
				return false
			}
			for i := range inner.entries {
				if inner.entries[i].child != got2.entries[i].child {
					return false
				}
				for j := range inner.entries[i].boxes {
					if !inner.entries[i].boxes[j].Equal(got2.entries[i].boxes[j]) {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("dim %d: %v", dim, err)
		}
	}
}

// TestNodeSerializationRoundTripUPCR does the same for U-PCR entries
// (m PCR boxes with pcr(0) doubling as the MBR).
func TestNodeSerializationRoundTripUPCR(t *testing.T) {
	tree, err := New(Options{Dim: 2, Kind: UPCR, CatalogSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	m := tree.cat.Size()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		leaf := &node{page: 5, level: 0}
		n := 1 + rng.Intn(tree.leafCap)
		for i := 0; i < n; i++ {
			// Nested boxes: box j+1 inside box j, as real PCRs are.
			boxes := make([]geom.Rect, m)
			boxes[0] = randRectIn(rng, 2, 1000)
			for j := 1; j < m; j++ {
				prev := boxes[j-1]
				shrink := rng.Float64() * 0.4
				lo := geom.Point{
					prev.Lo[0] + prev.Side(0)*shrink/2,
					prev.Lo[1] + prev.Side(1)*shrink/2,
				}
				hi := geom.Point{
					prev.Hi[0] - prev.Side(0)*shrink/2,
					prev.Hi[1] - prev.Side(1)*shrink/2,
				}
				boxes[j] = geom.Rect{Lo: lo, Hi: hi}
			}
			leaf.entries = append(leaf.entries, entry{
				id:   rng.Int63(),
				addr: pagefile.DataAddr{Page: pagefile.PageID(rng.Uint32()), Slot: uint16(rng.Intn(100))},
				mbr:  boxes[0].Clone(),
				pcrs: boxes,
			})
		}
		buf := make([]byte, pagefile.PageSize)
		if err := tree.encodeNode(leaf, buf); err != nil {
			return false
		}
		got, err := tree.decodeNode(5, buf)
		if err != nil || len(got.entries) != n {
			return false
		}
		for i := range leaf.entries {
			a, b := &leaf.entries[i], &got.entries[i]
			if a.id != b.id || a.addr != b.addr || !a.mbr.Equal(b.mbr) {
				return false
			}
			for j := 0; j < m; j++ {
				if !a.pcrs[j].Equal(b.pcrs[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeNodeRejectsOverfull(t *testing.T) {
	tree, _ := New(Options{Dim: 2})
	n := &node{page: 1, level: 0}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i <= tree.leafCap; i++ { // one beyond capacity
		n.entries = append(n.entries, entry{
			id:  int64(i),
			mbr: randRectIn(rng, 2, 100),
			out: randCFB(rng, 2),
			in:  randCFB(rng, 2),
		})
	}
	buf := make([]byte, pagefile.PageSize)
	if err := tree.encodeNode(n, buf); err == nil {
		t.Fatal("overfull node serialized")
	}
}

func TestDecodeNodeRejectsCorruptCount(t *testing.T) {
	tree, _ := New(Options{Dim: 2})
	buf := make([]byte, pagefile.PageSize)
	buf[0] = 0   // leaf
	buf[2] = 255 // count 255 > capacity
	if _, err := tree.decodeNode(1, buf); err == nil {
		t.Fatal("corrupt count accepted")
	}
}

// TestEntrySizesMatchPaperArithmetic pins the storage arithmetic of
// Section 6.3: 16 CFB values per 2D U-tree entry (24 in 3D) versus 2dm PCR
// values per U-PCR entry.
func TestEntrySizesMatchPaperArithmetic(t *testing.T) {
	// d=2 U-tree: id(8)+addr(8)+MBR(32)+CFBs(16 floats = 128) = 176.
	leaf, inner := entrySizes(UTree, 2, 15)
	if leaf != 176 {
		t.Errorf("U-tree 2D leaf entry = %d B, want 176", leaf)
	}
	if inner != 8+64 {
		t.Errorf("U-tree 2D inner entry = %d B, want 72", inner)
	}
	// d=3 U-tree: CFBs are 24 floats.
	leaf3, _ := entrySizes(UTree, 3, 15)
	if leaf3 != 16+48+192 {
		t.Errorf("U-tree 3D leaf entry = %d B, want 256", leaf3)
	}
	// d=2 U-PCR at m=9: 36 PCR values = 288 B + ids.
	leafP, innerP := entrySizes(UPCR, 2, 9)
	if leafP != 16+9*32 {
		t.Errorf("U-PCR 2D leaf entry = %d B, want 304", leafP)
	}
	if innerP != 8+9*32 {
		t.Errorf("U-PCR 2D inner entry = %d B, want 296", innerP)
	}
	// Fanout relations of Table 1's discussion.
	lc, ic := capacities(UTree, 2, 15)
	lcP, icP := capacities(UPCR, 2, 9)
	if !(lc > lcP && ic > icP) {
		t.Errorf("fanouts: U-tree %d/%d vs U-PCR %d/%d", lc, ic, lcP, icP)
	}
	// U-tree entry size is independent of the catalog size m.
	a, _ := entrySizes(UTree, 2, 3)
	b, _ := entrySizes(UTree, 2, 30)
	if a != b {
		t.Error("U-tree entry size depends on m (it must not)")
	}
}

// TestInterpRectBounds verifies the linear e.MBR(p) interpolation agrees
// with its endpoints and stays between them.
func TestInterpRectBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		outer := randRectIn(rng, 2, 1000)
		inner := geom.Rect{
			Lo: geom.Point{outer.Lo[0] + outer.Side(0)*0.2, outer.Lo[1] + outer.Side(1)*0.3},
			Hi: geom.Point{outer.Hi[0] - outer.Side(0)*0.25, outer.Hi[1] - outer.Side(1)*0.15},
		}
		if interpRect(outer, inner, 0).Equal(outer) != true {
			t.Fatal("f=0 must return the first box")
		}
		if interpRect(outer, inner, 1).Equal(inner) != true {
			t.Fatal("f=1 must return the second box")
		}
		for _, f := range []float64{0.25, 0.5, 0.75} {
			mid := interpRect(outer, inner, f)
			if !outer.Contains(mid) || !mid.Contains(inner) {
				t.Fatalf("interp at %g escapes its bounds", f)
			}
		}
	}
}

// TestBoxAtMonotoneShrink: for nested boundary boxes, boxAt(j) must shrink
// (or stay equal) as j grows — the geometric property Observation 4 leans
// on.
func TestBoxAtMonotoneShrink(t *testing.T) {
	tree, _ := New(Options{Dim: 2, CatalogSize: 8})
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		outer := randRectIn(rng, 2, 1000)
		inner := geom.Rect{
			Lo: geom.Point{outer.Lo[0] + outer.Side(0)*0.3, outer.Lo[1] + outer.Side(1)*0.3},
			Hi: geom.Point{outer.Hi[0] - outer.Side(0)*0.3, outer.Hi[1] - outer.Side(1)*0.3},
		}
		boxes := []geom.Rect{outer, inner}
		prevArea := math.Inf(1)
		for j := 0; j < tree.cat.Size(); j++ {
			b := tree.boxAt(boxes, j)
			if !outer.Contains(b) {
				t.Fatal("interpolated box escapes MBR⊥")
			}
			area := b.Area()
			if area > prevArea+1e-9 {
				t.Fatalf("boxAt grew from p_%d to p_%d", j-1, j)
			}
			prevArea = area
		}
	}
}
