package core

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/pagefile"
)

// This file is the adaptive query planner: the component that finally
// consumes the analytical cost model's predictions (costmodel.go) at query
// time instead of leaving them as offline diagnostics. Per query it
// predicts the node accesses with EstimateNodeAccesses and derives the
// execution strategy from the prediction — serial descent when the query
// is predicted cheap (a prefetch pipeline's setup would cost more than the
// handful of stalls it hides), a deep prefetch pipeline with an issuance
// cap when the query is predicted expensive. Measured accesses feed back
// into CostModel.Calibrate on a sliding window, so predictions track the
// live tree without an offline calibration pass.
//
// Planner decisions are strictly result-neutral: they pick prefetch
// fan-out and speculative-issue caps, never which pages the traversal
// logically reads or the order candidates refine in, so a planned query
// returns byte-identical results to the unplanned path.

const (
	// plannerMinSize is the smallest committed tree the planner models —
	// below it every query is a page or two and planning is pure overhead.
	plannerMinSize = 64
	// plannerWindow is the sliding calibration window: after this many
	// observed queries the accumulated (predicted, measured) pairs refit
	// the model's multiplicative correction and the window restarts.
	plannerWindow = 32
	// plannerSerialThreshold: below this many predicted node accesses the
	// query runs serially (no prefetch pipeline).
	plannerSerialThreshold = 6
	// plannerMaxFanout caps the adaptive prefetch fan-out.
	plannerMaxFanout = 16
)

// Planner holds the per-tree adaptive-planning state: the current cost
// model (rebuilt by the writer when the tree drifts), the sliding
// calibration window, and the lifetime counters behind PlannerInfo.
// Method receivers never expose the model itself; queries and the writer
// synchronize on mu.
type Planner struct {
	mu        sync.Mutex
	model     *CostModel
	builtSize int // tree size when the model was last built

	// Sliding calibration window (under mu).
	predWin []float64
	measWin []float64

	// Per-fanout prefetcher cache: planner queries at one fan-out share a
	// Prefetcher (and so a global in-flight bound), and no query allocates
	// a semaphore channel on the hot path.
	prefetchers map[int]*pagefile.Prefetcher

	queries  atomic.Int64
	rebuilds atomic.Int64
	// predSum/measSum are lifetime access sums (under mu, read by
	// PlannerInfo) for the predicted-vs-measured diagnostic.
	predSum float64
	measSum float64
}

func newPlanner() *Planner {
	return &Planner{prefetchers: make(map[int]*pagefile.Prefetcher)}
}

// PlannerInfo is the observability snapshot of a tree's adaptive planner,
// exposed through the public index surface and the CLIs.
type PlannerInfo struct {
	// Enabled reports whether adaptive planning is on for the index.
	Enabled bool
	// Queries is the number of queries the planner decided for (and
	// observed to completion).
	Queries int64
	// PredictedAccesses and MeasuredAccesses are the lifetime sums of
	// predicted and measured node accesses over those queries; their ratio
	// is the live prediction error.
	PredictedAccesses float64
	MeasuredAccesses  float64
	// CalibrationFactor is the model's current multiplicative correction
	// (1 = pure analytic model, 0 = no model built yet).
	CalibrationFactor float64
	// ModelRebuilds counts commit-time cost-model rebuilds.
	ModelRebuilds int64
}

// Add merges o into i — the merge rule for sharded indexes: counters and
// sums add, Enabled ors, and the calibration factor becomes the
// query-weighted mean so a mostly-idle shard doesn't dominate it.
func (i *PlannerInfo) Add(o PlannerInfo) {
	wi, wo := float64(i.Queries), float64(o.Queries)
	if wi+wo > 0 {
		i.CalibrationFactor = (i.CalibrationFactor*wi + o.CalibrationFactor*wo) / (wi + wo)
	} else if o.CalibrationFactor != 0 {
		i.CalibrationFactor = o.CalibrationFactor
	}
	i.Enabled = i.Enabled || o.Enabled
	i.Queries += o.Queries
	i.PredictedAccesses += o.PredictedAccesses
	i.MeasuredAccesses += o.MeasuredAccesses
	i.ModelRebuilds += o.ModelRebuilds
}

// PlannerInfo reports the planner's lifetime diagnostics (all zero with
// adaptive planning off).
func (t *Tree) PlannerInfo() PlannerInfo {
	p := t.planner
	if p == nil {
		return PlannerInfo{}
	}
	info := PlannerInfo{
		Enabled:       true,
		Queries:       p.queries.Load(),
		ModelRebuilds: p.rebuilds.Load(),
	}
	p.mu.Lock()
	info.PredictedAccesses = p.predSum
	info.MeasuredAccesses = p.measSum
	if p.model != nil {
		info.CalibrationFactor = p.model.CalibrationFactor()
	}
	p.mu.Unlock()
	return info
}

// readNodeQuiet reads a node without counting a logical node access — the
// planner's commit-time bookkeeping must not perturb the update-cost
// statistics the experiments measure.
func (t *Tree) readNodeQuiet(id pagefile.PageID) (*node, error) {
	if err := t.checkQuarantine(id); err != nil {
		return nil, err
	}
	buf, err := t.pool.Get(id)
	if err != nil {
		return nil, t.noteReadError(id, err)
	}
	return t.decodeNode(id, buf)
}

// rootBoundaryMBR computes the committed tree's root bounding box at
// p = 0 — the rectangle containing every indexed object's region MBR
// (containment chain: inner boxes at p=0 ⊇ cfb_out(0) ⊇ pcr(0) = the
// object MBR). The zero Rect means "unknown" (empty tree or read failure)
// and disables every consumer (shard pruning, model domains).
func (t *Tree) rootBoundaryMBR() geom.Rect {
	n, err := t.readNodeQuiet(t.rootPage)
	if err != nil || len(n.entries) == 0 {
		return geom.Rect{}
	}
	return t.boxAt(t.nodeBoundary(n), 0)
}

// maybeRefreshPlanner is the writer-side hook, called after each commit:
// when the committed tree has drifted more than 25% (or 64 objects,
// whichever is larger) from the size the model was built at, the model is
// rebuilt over the current root boundary. The fitted calibration factor
// carries over — level statistics change faster than the workload's
// systematic prediction bias.
func (t *Tree) maybeRefreshPlanner() {
	p := t.planner
	if p == nil || t.size < plannerMinSize {
		return
	}
	p.mu.Lock()
	built := p.builtSize
	hasModel := p.model != nil
	p.mu.Unlock()
	drift := t.size - built
	if drift < 0 {
		drift = -drift
	}
	threshold := built / 4
	if threshold < 64 {
		threshold = 64
	}
	if hasModel && drift <= threshold {
		return
	}
	domain := t.rootBoundaryMBR()
	if domain.Dim() != t.dim {
		return
	}
	for i := 0; i < t.dim; i++ {
		if domain.Side(i) <= 0 {
			return // degenerate data space; the model would reject it
		}
	}
	model, err := t.BuildCostModel(domain)
	if err != nil {
		return
	}
	p.mu.Lock()
	if p.model != nil {
		model.calibce = p.model.calibce
	}
	p.model = model
	p.builtSize = t.size
	p.mu.Unlock()
	p.rebuilds.Add(1)
}

// planQuery is the query-side decision point, called by every range entry
// after resolvePlan: with adaptive planning on and no explicit per-query
// prefetch/budget override (explicit options stay authoritative), it
// predicts the query's node accesses and arms the plan accordingly —
// serial for cheap queries, a pooled prefetcher with an issuance cap for
// expensive ones. It returns the prediction and whether a decision was
// made (so the caller can feed the measured accesses back via observe).
func (t *Tree) planQuery(q Query, o QueryOpts, p *qplan) (pred float64, armed bool) {
	pl := t.planner
	if pl == nil || o.PrefetchSet || p.budget > 0 {
		return 0, false
	}
	pl.mu.Lock()
	model := pl.model
	pl.mu.Unlock()
	if model == nil {
		return 0, false
	}
	sides := make([]float64, t.dim)
	for i := range sides {
		sides[i] = q.Rect.Side(i)
	}
	pred = model.EstimateNodeAccesses(sides, q.Prob, t.CatalogIndexFor(q.Prob))
	if math.IsNaN(pred) || pred < 1 {
		pred = 1
	}
	if pred < plannerSerialThreshold {
		p.prefetch = nil
		p.issueCap = 0
		return pred, true
	}
	fan := int(pred / 4)
	if fan < 2 {
		fan = 2
	}
	if fan > plannerMaxFanout {
		fan = plannerMaxFanout
	}
	p.prefetch = pl.prefetcher(fan)
	// The internal page budget: speculative async issuance is capped near
	// the predicted access count, so a badly overestimated query cannot
	// flood the buffer pool. Unissued pages fall back to synchronous reads
	// — the cap shapes I/O, it never stops the traversal.
	p.issueCap = int(2*pred) + 8
	return pred, true
}

// prefetcher returns the shared planner prefetcher for one fan-out.
func (p *Planner) prefetcher(fan int) *pagefile.Prefetcher {
	p.mu.Lock()
	defer p.mu.Unlock()
	pf, ok := p.prefetchers[fan]
	if !ok {
		pf = pagefile.NewPrefetcher(fan)
		p.prefetchers[fan] = pf
	}
	return pf
}

// observe feeds one completed query's measurement into the sliding
// calibration window; every plannerWindow observations the window refits
// the model's multiplicative correction. Only cleanly completed queries
// observe — a cancelled or budget-stopped traversal measures the
// interruption, not the tree.
func (p *Planner) observe(pred float64, measured int) {
	p.queries.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.predSum += pred
	p.measSum += float64(measured)
	p.predWin = append(p.predWin, pred)
	p.measWin = append(p.measWin, float64(measured))
	if len(p.predWin) >= plannerWindow && p.model != nil {
		// Calibrate rejects degenerate windows (all-zero predictions);
		// either way the window slides.
		_ = p.model.Calibrate(p.predWin, p.measWin)
		p.predWin = p.predWin[:0]
		p.measWin = p.measWin[:0]
	}
}

// PredictSearchIO predicts the node accesses of a prob-range query without
// executing it — the admission-control input. ok is false when adaptive
// planning is off or no model has been built yet.
func (t *Tree) PredictSearchIO(rect geom.Rect, prob float64) (float64, bool) {
	pl := t.planner
	if pl == nil || rect.Dim() != t.dim {
		return 0, false
	}
	pl.mu.Lock()
	model := pl.model
	pl.mu.Unlock()
	if model == nil {
		return 0, false
	}
	sides := make([]float64, t.dim)
	for i := range sides {
		sides[i] = rect.Side(i)
	}
	pred := model.EstimateNodeAccesses(sides, prob, t.CatalogIndexFor(prob))
	if math.IsNaN(pred) || pred < 1 {
		pred = 1
	}
	return pred, true
}

// NNBound is a monotonically decreasing upper bound on the k-th smallest
// expected distance, shared across the shards of one scatter-gather NN
// query. Each shard publishes its own k-th best once its result list
// fills (the global k-th is never larger than any single shard's k-th),
// and every shard's best-first loop stops as soon as its frontier's lower
// bound exceeds the shared value — the remaining candidates are provably
// outside the merged top k. The zero value is ready to use (bound +Inf).
type NNBound struct {
	bits atomic.Uint64 // float64 bits; 0 = unset (+Inf)
}

// NewNNBound returns a fresh unset bound.
func NewNNBound() *NNBound { return &NNBound{} }

// Update lowers the bound to d when d improves it (CAS-min; d must be a
// non-negative distance). Concurrent updates keep the minimum.
func (b *NNBound) Update(d float64) {
	if math.IsInf(d, 1) || math.IsNaN(d) || d == 0 {
		// d == 0 would collide with the unset sentinel; an exact-zero k-th
		// distance only forgoes pruning, never correctness.
		return
	}
	bits := math.Float64bits(d)
	for {
		old := b.bits.Load()
		if old != 0 && math.Float64frombits(old) <= d {
			return
		}
		if b.bits.CompareAndSwap(old, bits) {
			return
		}
	}
}

// Load returns the current bound (+Inf until the first Update).
func (b *NNBound) Load() float64 {
	bits := b.bits.Load()
	if bits == 0 {
		return math.Inf(1)
	}
	return math.Float64frombits(bits)
}
