package core

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/geom"
)

// --- Cost model edge cases ---------------------------------------------------

func TestCostModelEmptyTree(t *testing.T) {
	tree, err := New(Options{Dim: 2, ExactRefinement: true})
	if err != nil {
		t.Fatal(err)
	}
	domain := geom.NewRect(geom.Point{0, 0}, geom.Point{100, 100})
	cm, err := tree.BuildCostModel(domain)
	if err != nil {
		t.Fatalf("empty tree: %v", err)
	}
	// The empty root is the only (empty) level; every query is predicted
	// to cost exactly the root read.
	if got := cm.EstimateNodeAccesses([]float64{10, 10}, 0.5, 0); got != 1 {
		t.Fatalf("empty tree estimate = %v, want 1", got)
	}
}

func TestCostModelSingleLevelTree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	objs := makeObjects(5, 300, rng)
	tree := buildTree(t, UTree, objs, 0)
	if tree.rootLevel != 0 {
		t.Fatalf("fixture grew beyond one level (rootLevel=%d)", tree.rootLevel)
	}
	cm, err := tree.BuildCostModel(geom.NewRect(geom.Point{0, 0}, geom.Point{300, 300}))
	if err != nil {
		t.Fatal(err)
	}
	if cm.Levels() != 1 {
		t.Fatalf("Levels() = %d, want 1", cm.Levels())
	}
	// A single-level tree is just its root: the prediction must be exactly
	// 1 whatever the query shape or threshold.
	for _, qs := range []float64{1, 50, 10000} {
		if got := cm.EstimateNodeAccesses([]float64{qs, qs}, 0.3, tree.CatalogIndexFor(0.3)); got != 1 {
			t.Fatalf("qs=%v: estimate = %v, want 1", qs, got)
		}
	}
}

func TestCatalogIndexForBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tree := buildTree(t, UTree, makeObjects(10, 300, rng), 0)
	last := tree.cat.Size() - 1
	cases := []struct {
		pq   float64
		want int
	}{
		{0, 0},             // p_1 = 0 is the largest value ≤ 0
		{-0.5, 0},          // below the catalog: fallback to 0
		{0.5, last},        // p_m = 0.5 exactly
		{1, last},          // above the catalog max clamps to the last slab
		{0.5 + 1e-9, last}, // just past the max still clamps
	}
	for _, c := range cases {
		if got := tree.CatalogIndexFor(c.pq); got != c.want {
			t.Errorf("CatalogIndexFor(%v) = %d, want %d", c.pq, got, c.want)
		}
	}
}

func TestCalibrateRejectsMismatchedSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tree := buildTree(t, UTree, makeObjects(50, 300, rng), 0)
	cm, err := tree.BuildCostModel(geom.NewRect(geom.Point{0, 0}, geom.Point{300, 300}))
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.Calibrate([]float64{1, 2}, []float64{3}); err == nil {
		t.Error("mismatched sample lengths accepted")
	}
	if err := cm.Calibrate([]float64{}, []float64{}); err == nil {
		t.Error("zero-length samples accepted")
	}
	if err := cm.Calibrate([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("all-zero predictions accepted")
	}
	if cm.CalibrationFactor() != 1 {
		t.Errorf("failed calibrations moved the factor to %v", cm.CalibrationFactor())
	}
}

// --- NNBound -----------------------------------------------------------------

func TestNNBound(t *testing.T) {
	b := NewNNBound()
	if !math.IsInf(b.Load(), 1) {
		t.Fatalf("fresh bound = %v, want +Inf", b.Load())
	}
	b.Update(5)
	if b.Load() != 5 {
		t.Fatalf("after Update(5): %v", b.Load())
	}
	b.Update(7) // larger: no effect
	if b.Load() != 5 {
		t.Fatalf("Update(7) raised the bound to %v", b.Load())
	}
	b.Update(3)
	if b.Load() != 3 {
		t.Fatalf("after Update(3): %v", b.Load())
	}
	// Ignored inputs: zero (sentinel collision), NaN, +Inf.
	b.Update(0)
	b.Update(math.NaN())
	b.Update(math.Inf(1))
	if b.Load() != 3 {
		t.Fatalf("degenerate updates moved the bound to %v", b.Load())
	}
}

func TestNNBoundConcurrentMin(t *testing.T) {
	b := NewNNBound()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				b.Update(float64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if b.Load() != 1 {
		t.Fatalf("concurrent CAS-min settled at %v, want 1", b.Load())
	}
}

// --- Planner result-neutrality and feedback ----------------------------------

// TestAdaptivePlanningEquivalence is the tentpole's core safety property:
// a tree with adaptive planning on must return byte-identical results to
// an identically-built tree with planning off — the planner only chooses
// prefetch fan-out and issuance caps. It also checks the feedback loop
// actually observes queries and calibrates.
func TestAdaptivePlanningEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	objs := makeObjects(600, 1500, rng)

	plain := buildTree(t, UTree, objs, 0)
	adaptive, err := New(Options{Dim: 2, Kind: UTree, ExactRefinement: true, AdaptivePlanning: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := adaptive.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := adaptive.Commit(); err != nil { // builds the cost model
		t.Fatal(err)
	}
	if info := adaptive.PlannerInfo(); !info.Enabled || info.ModelRebuilds == 0 {
		t.Fatalf("planner did not build a model at commit: %+v", info)
	}

	ctx := context.Background()
	for q := 0; q < 60; q++ {
		rq := randomQueryRect(rng, 1500)
		pq := 0.05 + rng.Float64()*0.9
		query := Query{Rect: rq, Prob: pq}
		want, _, err := plain.RangeQueryCtx(ctx, query, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := adaptive.RangeQueryCtx(ctx, query, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d (pq=%.3f rq=%v): planned results differ", q, pq, rq)
		}
	}
	info := adaptive.PlannerInfo()
	if info.Queries != 60 {
		t.Fatalf("planner observed %d queries, want 60", info.Queries)
	}
	if info.PredictedAccesses <= 0 || info.MeasuredAccesses <= 0 {
		t.Fatalf("planner sums not populated: %+v", info)
	}
	// 60 observations crossed the calibration window at least once; the
	// factor should have moved off the pure analytic 1.0.
	if info.CalibrationFactor == 0 {
		t.Fatalf("no calibration factor after %d queries", info.Queries)
	}

	// Explicit per-query options stay authoritative: a prefetch override
	// must still produce identical results.
	rq := randomQueryRect(rng, 1500)
	query := Query{Rect: rq, Prob: 0.4}
	want, _, err := adaptive.RangeQueryCtx(ctx, query, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := adaptive.RangeQueryCtx(ctx, query, QueryOpts{PrefetchSet: true, Prefetch: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("prefetch override changed results")
	}
}

// TestPredictSearchIO checks the admission-control input surface.
func TestPredictSearchIO(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	objs := makeObjects(400, 1000, rng)

	plain := buildTree(t, UTree, objs, 0)
	if _, ok := plain.PredictSearchIO(randomQueryRect(rng, 1000), 0.5); ok {
		t.Fatal("planning-off tree claimed a prediction")
	}

	adaptive, err := New(Options{Dim: 2, Kind: UTree, ExactRefinement: true, AdaptivePlanning: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := adaptive.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := adaptive.PredictSearchIO(randomQueryRect(rng, 1000), 0.5); ok {
		t.Fatal("uncommitted tree (no model yet) claimed a prediction")
	}
	if err := adaptive.Commit(); err != nil {
		t.Fatal(err)
	}
	small, ok := adaptive.PredictSearchIO(geom.NewRect(geom.Point{10, 10}, geom.Point{20, 20}), 0.5)
	if !ok || small < 1 {
		t.Fatalf("small-query prediction = %v ok=%v", small, ok)
	}
	large, ok := adaptive.PredictSearchIO(geom.NewRect(geom.Point{0, 0}, geom.Point{1000, 1000}), 0.5)
	if !ok || large <= small {
		t.Fatalf("prediction not monotone in query size: %v vs %v", large, small)
	}
	// Dim mismatch: no prediction, no panic.
	if _, ok := adaptive.PredictSearchIO(geom.NewRect(geom.Point{0}, geom.Point{1}), 0.5); ok {
		t.Fatal("dim-mismatched rect claimed a prediction")
	}
}

// TestProbFilterEquivalence: with exact refinement, the Bernecker-style
// probability-bound filter must not change any query's result set, while
// actually pruning refinement work in its enrichment zone — narrow
// queries hitting the core of a pdf with a threshold above the mass the
// rect can capture, which the paper's rectangle-test rules cannot prune.
func TestProbFilterEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	objs := makeObjects(500, 1000, rng)
	ctx := context.Background()
	for _, kind := range []Kind{UTree, UPCR} {
		tree := buildTree(t, kind, objs, 0)
		totalPruned := 0
		for q := 0; q < 160; q++ {
			var rq geom.Rect
			var pq float64
			if q%2 == 0 {
				// Broad random rects: the equivalence half of the contract.
				rq = randomQueryRect(rng, 1000)
				pq = 0.05 + rng.Float64()*0.9
			} else {
				// Narrow interior rects over an object's center: the zone
				// where the slab bound out-prunes Observations 2/3.
				c := objs[rng.Intn(len(objs))].PDF.Center()
				h := 3 + rng.Float64()*10
				rq = geom.NewRect(geom.Point{c[0] - h, c[1] - h}, geom.Point{c[0] + h, c[1] + h})
				pq = 0.2 + rng.Float64()*0.6
			}
			query := Query{Rect: rq, Prob: pq}
			want, _, err := tree.RangeQueryCtx(ctx, query, QueryOpts{})
			if err != nil {
				t.Fatal(err)
			}
			got, stats, err := tree.RangeQueryCtx(ctx, query, QueryOpts{ProbFilterSet: true, ProbFilter: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v query %d (pq=%.3f): prob filter changed results", kind, q, pq)
			}
			totalPruned += stats.ProbFilterPruned
		}
		if totalPruned == 0 {
			t.Fatalf("%v: prob filter never pruned across 160 queries", kind)
		}
	}
}
