package core

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/pcr"
	"repro/internal/updf"
)

// Scan is the no-index baseline of Section 5's opening: objects (with
// pre-computed CFBs) inspected sequentially, filtered with Observation 3,
// and refined when needed. It doubles as the ground-truth oracle in tests
// when exact refinement is enabled.
type Scan struct {
	cat     pcr.Catalog
	objects []scanItem
	samples int
	exact   bool
	rng     *rand.Rand
}

type scanItem struct {
	obj Object
	mbr geom.Rect
	out pcr.CFB
	in  pcr.CFB
}

// NewScan builds a sequential-scan baseline over the given objects with the
// given catalog size.
func NewScan(objects []Object, catalogSize int, samples int, exact bool, seed int64) *Scan {
	cat := pcr.UniformCatalog(catalogSize)
	cache := pcr.NewQuantileCache()
	s := &Scan{cat: cat, samples: samples, exact: exact, rng: rand.New(rand.NewSource(seed))}
	for _, o := range objects {
		pcrs := pcr.Compute(o.PDF, cat, cache)
		s.objects = append(s.objects, scanItem{
			obj: o,
			mbr: o.PDF.MBR(),
			out: pcr.FitOut(pcrs),
			in:  pcr.FitIn(pcrs),
		})
	}
	return s
}

// RangeQuery answers a prob-range query by full scan. Stats report the
// number of probability computations avoided by the CFB filter.
func (s *Scan) RangeQuery(q Query) ([]Result, QueryStats, error) {
	var stats QueryStats
	var results []Result
	for i := range s.objects {
		it := &s.objects[i]
		switch pcr.FilterCFB(it.out, it.in, s.cat, it.mbr, q.Rect, q.Prob) {
		case pcr.Validated:
			results = append(results, Result{ID: it.obj.ID, Prob: -1, Validated: true})
			stats.Validated++
		case pcr.Unknown:
			stats.Candidates++
			var p float64
			if s.exact {
				if ex, ok := it.obj.PDF.(updf.ExactProber); ok {
					p = ex.ExactProb(q.Rect)
				} else {
					p = updf.MonteCarloProb(it.obj.PDF, q.Rect, s.samples, s.rng)
				}
			} else {
				p = updf.MonteCarloProb(it.obj.PDF, q.Rect, s.samples, s.rng)
			}
			stats.ProbComputations++
			if p >= q.Prob {
				results = append(results, Result{ID: it.obj.ID, Prob: p})
			}
		}
	}
	stats.Results = len(results)
	return results, stats, nil
}

// BruteForce computes the exact result set with no filtering at all (every
// object's probability evaluated) — the slowest, most trustworthy oracle.
func (s *Scan) BruteForce(q Query) []Result {
	var results []Result
	for i := range s.objects {
		it := &s.objects[i]
		var p float64
		if ex, ok := it.obj.PDF.(updf.ExactProber); ok && s.exact {
			p = ex.ExactProb(q.Rect)
		} else {
			p = updf.MonteCarloProb(it.obj.PDF, q.Rect, s.samples, s.rng)
		}
		if p >= q.Prob {
			results = append(results, Result{ID: it.obj.ID, Prob: p})
		}
	}
	return results
}
