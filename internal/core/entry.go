package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/pagefile"
	"repro/internal/pcr"
)

// pcrCFB aliases pcr.CFB for the serialization helpers.
type pcrCFB = pcr.CFB

// Kind selects the index variant.
type Kind int

const (
	// UTree stores CFBs in leaves and two boundary rectangles (MBR⊥, MBR⊤)
	// in intermediate entries — the paper's proposal.
	UTree Kind = iota
	// UPCR stores all m PCRs in leaves and m bounding rectangles in
	// intermediate entries — the comparison structure of Section 6.
	UPCR
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == UPCR {
		return "U-PCR"
	}
	return "U-tree"
}

// entry is the in-memory form of a node entry for either kind and either
// node level.
//
// Leaf entries: id, addr, mbr are always set; a U-tree leaf carries out/in
// CFBs, a U-PCR leaf carries pcrBoxes (length m, pcrBoxes[0] == mbr).
//
// Intermediate entries: child is set and boxes carries the bounding
// geometry — length 2 for the U-tree ([MBR⊥, MBR⊤], interpolated linearly
// in p) and length m for U-PCR (one bounding rectangle per catalog value).
type entry struct {
	// Leaf fields.
	id   int64
	addr pagefile.DataAddr
	mbr  geom.Rect
	out  pcr.CFB
	in   pcr.CFB
	pcrs []geom.Rect

	// Intermediate fields.
	child pagefile.PageID
	boxes []geom.Rect
}

// boundary returns the entry's representative boxes used to build parent
// entries: for U-tree entries 2 boxes (at p_1 and p_m), for U-PCR entries m
// boxes (one per catalog value).
func (t *Tree) boundary(e *entry, leaf bool) []geom.Rect {
	if !leaf {
		return e.boxes
	}
	if t.kind == UTree {
		return []geom.Rect{e.out.Rect(0), e.out.Rect(t.cat.Max())}
	}
	return e.pcrs
}

// boxAt evaluates an entry's bounding rectangle at catalog index j. For
// 2-box (U-tree) geometry this interpolates the linear e.MBR(p) function of
// Equation 15 (p_1 = 0 makes α = MBR⊥ and β = (MBR⊥−MBR⊤)/p_m); for m-box
// geometry it returns the stored rectangle.
func (t *Tree) boxAt(boxes []geom.Rect, j int) geom.Rect {
	if len(boxes) == t.cat.Size() {
		return boxes[j]
	}
	if len(boxes) != 2 {
		panic(fmt.Sprintf("core: entry with %d boxes (want 2 or %d)", len(boxes), t.cat.Size()))
	}
	f := t.cat.Value(j) / t.cat.Max()
	return interpRect(boxes[0], boxes[1], f)
}

// boxIntersectsAt reports whether r intersects boxAt(boxes, j) without
// materializing the interpolated rectangle — the allocation-free form of
// r.Intersects(t.boxAt(boxes, j)) used by the descent's Observation 4
// pruning. The interpolation arithmetic is written exactly as interpRect's
// and the comparison exactly as geom.Rect.Intersects', so the outcome is
// bit-identical to the allocating composition.
func (t *Tree) boxIntersectsAt(r geom.Rect, boxes []geom.Rect, j int) bool {
	if len(boxes) == t.cat.Size() {
		return r.Intersects(boxes[j])
	}
	if len(boxes) != 2 {
		panic(fmt.Sprintf("core: entry with %d boxes (want 2 or %d)", len(boxes), t.cat.Size()))
	}
	f := t.cat.Value(j) / t.cat.Max()
	a, b := boxes[0], boxes[1]
	for i := range r.Lo {
		lo := a.Lo[i] + (b.Lo[i]-a.Lo[i])*f
		hi := a.Hi[i] + (b.Hi[i]-a.Hi[i])*f
		if r.Hi[i] < lo || hi < r.Lo[i] {
			return false
		}
	}
	return true
}

// minDistAt is MINDIST(q, boxAt(boxes, j)) without materializing the
// interpolated rectangle — the allocation-free form of
// minDist(q, t.boxAt(boxes, j)) used by the NN frontier. Same
// bit-identical-arithmetic contract as boxIntersectsAt.
func (t *Tree) minDistAt(q geom.Point, boxes []geom.Rect, j int) float64 {
	if len(boxes) == t.cat.Size() {
		return minDist(q, boxes[j])
	}
	if len(boxes) != 2 {
		panic(fmt.Sprintf("core: entry with %d boxes (want 2 or %d)", len(boxes), t.cat.Size()))
	}
	f := t.cat.Value(j) / t.cat.Max()
	a, b := boxes[0], boxes[1]
	var s float64
	for i := range q {
		lo := a.Lo[i] + (b.Lo[i]-a.Lo[i])*f
		hi := a.Hi[i] + (b.Hi[i]-a.Hi[i])*f
		var d float64
		if q[i] < lo {
			d = lo - q[i]
		} else if q[i] > hi {
			d = q[i] - hi
		}
		s += d * d
	}
	return math.Sqrt(s)
}

// interpRect linearly interpolates each face: (1−f)·a + f·b.
func interpRect(a, b geom.Rect, f float64) geom.Rect {
	d := a.Dim()
	lo := make(geom.Point, d)
	hi := make(geom.Point, d)
	for i := 0; i < d; i++ {
		lo[i] = a.Lo[i] + (b.Lo[i]-a.Lo[i])*f
		hi[i] = a.Hi[i] + (b.Hi[i]-a.Hi[i])*f
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// unionBoundaries unions per-slot boxes of two boundary sets (same length).
func unionBoundaries(dst, src []geom.Rect) {
	for i := range dst {
		dst[i].UnionInPlace(src[i])
	}
}

// cloneBoxes deep-copies a boundary set.
func cloneBoxes(b []geom.Rect) []geom.Rect {
	out := make([]geom.Rect, len(b))
	for i := range b {
		out[i] = b[i].Clone()
	}
	return out
}

// entrySizes returns the on-page sizes (bytes) of leaf and intermediate
// entries for the given kind, dimensionality and catalog size.
func entrySizes(kind Kind, dim, m int) (leaf, inner int) {
	rect := 16 * dim // 2d float64
	switch kind {
	case UTree:
		// id(8) + addr(8) + MBR + cfb_out(4d) + cfb_in(4d).
		leaf = 16 + rect + 64*dim
		// child(8) + MBR⊥ + MBR⊤.
		inner = 8 + 2*rect
	case UPCR:
		// id(8) + addr(8) + m PCR boxes (pcr(0) doubles as the MBR).
		leaf = 16 + m*rect
		// child(8) + m bounding boxes.
		inner = 8 + m*rect
	}
	return leaf, inner
}

// nodeHeader is the per-page header: level(1) + pad(1) + count(2) + pad(4).
const nodeHeader = 8

// capacities derives node fan-outs from the page and entry sizes.
func capacities(kind Kind, dim, m int) (leafCap, innerCap int) {
	leafSz, innerSz := entrySizes(kind, dim, m)
	leafCap = (pagefile.PageSize - nodeHeader) / leafSz
	innerCap = (pagefile.PageSize - nodeHeader) / innerSz
	return leafCap, innerCap
}
