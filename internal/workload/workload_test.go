package workload

import (
	"testing"

	"repro/internal/geom"
)

func centers() []geom.Point {
	return []geom.Point{{1000, 2000}, {5000, 5000}, {9000, 8000}}
}

func TestWorkloadShape(t *testing.T) {
	w := New(Config{QS: 500, PQ: 0.6, Centers: centers(), Domain: 10000})
	if len(w.Queries) != DefaultQueries {
		t.Fatalf("%d queries, want %d", len(w.Queries), DefaultQueries)
	}
	for i, q := range w.Queries {
		if q.Prob != 0.6 {
			t.Fatalf("query %d prob %g", i, q.Prob)
		}
		for k := 0; k < 2; k++ {
			side := q.Rect.Side(k)
			if side < 499.999 || side > 500.001 {
				t.Fatalf("query %d side %g, want 500", i, side)
			}
			if q.Rect.Lo[k] < 0 || q.Rect.Hi[k] > 10000 {
				t.Fatalf("query %d outside domain: %v", i, q.Rect)
			}
		}
	}
}

func TestWorkloadCount(t *testing.T) {
	w := New(Config{QS: 100, PQ: 0.3, Count: 17, Centers: centers()})
	if len(w.Queries) != 17 {
		t.Fatalf("%d queries, want 17", len(w.Queries))
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	a := New(Config{QS: 100, PQ: 0.3, Seed: 5, Centers: centers()})
	b := New(Config{QS: 100, PQ: 0.3, Seed: 5, Centers: centers()})
	for i := range a.Queries {
		if !a.Queries[i].Rect.Equal(b.Queries[i].Rect) {
			t.Fatalf("query %d differs across identical seeds", i)
		}
	}
}

func TestWorkloadFollowsCenters(t *testing.T) {
	// Every query center must coincide with a data point (that's the
	// paper's location distribution).
	cs := centers()
	w := New(Config{QS: 10, PQ: 0.5, Centers: cs})
	for i, q := range w.Queries {
		c := q.Rect.Center()
		found := false
		for _, p := range cs {
			if c.Equal(p) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("query %d center %v not a data point", i, c)
		}
	}
}

func TestWorkloadPanicsWithoutCenters(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no centers should panic")
		}
	}()
	New(Config{QS: 10, PQ: 0.5})
}

func TestWorkload3D(t *testing.T) {
	cs := []geom.Point{{100, 200, 300}}
	w := New(Config{QS: 50, PQ: 0.7, Centers: cs, Domain: 10000, Count: 5})
	for _, q := range w.Queries {
		if q.Rect.Dim() != 3 {
			t.Fatalf("3D workload produced %dD query", q.Rect.Dim())
		}
	}
}
