// Package workload builds the query workloads of the paper's evaluation
// (Section 6): each workload holds 100 prob-range queries sharing the same
// parameters qs (side length of the square/cube search region) and pq
// (probability threshold), with query locations following the distribution
// of the underlying data (a query center is a sampled data point).
package workload

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
)

// DefaultQueries is the paper's workload size.
const DefaultQueries = 100

// Workload is a set of queries sharing parameters.
type Workload struct {
	QS      float64 // search-region side length
	PQ      float64 // probability threshold
	Queries []core.Query
}

// Config parameterizes workload generation.
type Config struct {
	QS      float64
	PQ      float64
	Count   int // 0 → DefaultQueries
	Seed    int64
	Domain  float64 // data-space extent per axis (for clamping); 0 → no clamp
	Centers []geom.Point
}

// New builds a workload whose query centers are drawn from cfg.Centers (the
// dataset's points), matching "the distribution of the region's location …
// follows that of the underlying data".
func New(cfg Config) Workload {
	count := cfg.Count
	if count == 0 {
		count = DefaultQueries
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	w := Workload{QS: cfg.QS, PQ: cfg.PQ, Queries: make([]core.Query, 0, count)}
	if len(cfg.Centers) == 0 {
		panic("workload: no centers supplied")
	}
	dim := len(cfg.Centers[0])
	half := cfg.QS / 2
	for i := 0; i < count; i++ {
		c := cfg.Centers[rng.Intn(len(cfg.Centers))]
		lo := make(geom.Point, dim)
		hi := make(geom.Point, dim)
		for k := 0; k < dim; k++ {
			lo[k] = c[k] - half
			hi[k] = c[k] + half
			if cfg.Domain > 0 {
				if lo[k] < 0 {
					lo[k], hi[k] = 0, cfg.QS
				}
				if hi[k] > cfg.Domain {
					lo[k], hi[k] = cfg.Domain-cfg.QS, cfg.Domain
				}
			}
		}
		w.Queries = append(w.Queries, core.Query{
			Rect: geom.Rect{Lo: lo, Hi: hi},
			Prob: cfg.PQ,
		})
	}
	return w
}
