// Package dataset generates the three evaluation datasets of the U-tree
// paper (Section 6). The original LB and CA point sets come from the
// census TIGER archive, which is unavailable offline; they are replaced by
// seeded synthetic generators reproducing their statistical role — spatially
// clustered point populations in a [0, 10000]² domain used as (i) centers of
// fixed-radius uncertainty regions and (ii) the query-location distribution
// (see DESIGN.md, substitution 1). Aircraft is generated exactly as the
// paper describes.
//
// All generators are deterministic in their seed.
package dataset

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/updf"
)

// Domain is the normalized domain length of every axis (Section 6: "All
// dimensions are normalized to have domains [0, 10000]").
const Domain = 10000.0

// Name identifies one of the paper's datasets.
type Name string

// The paper's three datasets.
const (
	LB       Name = "LB"       // 53k points, uniform circular uncertainty (r=250)
	CA       Name = "CA"       // 62k points, Con-Gau circular uncertainty (r=250, σ=125)
	Aircraft Name = "Aircraft" // 100k 3D aircraft, uniform spherical uncertainty (r=125)
)

// Sizes of the paper's datasets.
const (
	LBSize       = 53000
	CASize       = 62000
	AircraftSize = 100000
)

// Config controls generation.
type Config struct {
	Name Name
	// Scale shrinks the object count (1.0 = paper size). The experiments
	// default to scaled-down datasets so `go test -bench` stays tractable;
	// cmd/ubench -scale 1 reproduces paper scale.
	Scale float64
	Seed  int64
}

// Generate produces the uncertain objects of the chosen dataset.
func Generate(cfg Config) []core.Object {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	switch cfg.Name {
	case LB:
		n := scaled(LBSize, cfg.Scale)
		pts := ClusteredPoints(n, 2, cfg.Seed, 40, 0.05)
		return wrapUniform(pts, 250)
	case CA:
		n := scaled(CASize, cfg.Scale)
		pts := ClusteredPoints(n, 2, cfg.Seed+1, 55, 0.08)
		return wrapConGau(pts, 250, 125)
	case Aircraft:
		n := scaled(AircraftSize, cfg.Scale)
		return aircraft(n, cfg.Seed+2)
	default:
		panic("dataset: unknown dataset " + string(cfg.Name))
	}
}

// Points returns just the underlying point set (query-center sampling uses
// this).
func Points(cfg Config) []geom.Point {
	objs := Generate(cfg)
	pts := make([]geom.Point, len(objs))
	for i, o := range objs {
		pts[i] = o.PDF.Center()
	}
	return pts
}

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 100 {
		v = 100
	}
	return v
}

// ClusteredPoints generates n points in [0, Domain]^dim with geographic-like
// skew: a two-level Gaussian mixture ("metro areas" with "sub-clusters")
// plus a uniform background fraction. Cluster centers, spreads and weights
// are drawn from the seed.
func ClusteredPoints(n, dim int, seed int64, clusters int, backgroundFrac float64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	type cluster struct {
		center geom.Point
		spread float64
		weight float64
		subs   []geom.Point
	}
	cs := make([]cluster, clusters)
	totalW := 0.0
	for i := range cs {
		c := cluster{
			center: randPoint(rng, dim, Domain),
			spread: 120 + rng.Float64()*700,
			// Zipf-ish weights: few dense metros, many sparse towns.
			weight: 1 / math.Pow(float64(i+1), 0.8),
		}
		nSubs := 1 + rng.Intn(5)
		for s := 0; s < nSubs; s++ {
			sub := make(geom.Point, dim)
			for k := 0; k < dim; k++ {
				sub[k] = c.center[k] + rng.NormFloat64()*c.spread
			}
			c.subs = append(c.subs, sub)
		}
		totalW += c.weight
		cs[i] = c
	}
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		if rng.Float64() < backgroundFrac {
			pts = append(pts, randPoint(rng, dim, Domain))
			continue
		}
		// Pick a cluster by weight.
		w := rng.Float64() * totalW
		ci := 0
		for ; ci < len(cs)-1; ci++ {
			if w < cs[ci].weight {
				break
			}
			w -= cs[ci].weight
		}
		c := cs[ci]
		sub := c.subs[rng.Intn(len(c.subs))]
		p := make(geom.Point, dim)
		ok := true
		for k := 0; k < dim; k++ {
			p[k] = sub[k] + rng.NormFloat64()*c.spread*0.35
			if p[k] < 0 || p[k] > Domain {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, p)
		}
	}
	return pts
}

func randPoint(rng *rand.Rand, dim int, span float64) geom.Point {
	p := make(geom.Point, dim)
	for i := range p {
		p[i] = rng.Float64() * span
	}
	return p
}

// wrapUniform turns points into uncertain objects with uniform circular
// uncertainty regions of the given radius, clamping centers so regions stay
// inside the domain.
func wrapUniform(pts []geom.Point, radius float64) []core.Object {
	objs := make([]core.Object, len(pts))
	for i, p := range pts {
		objs[i] = core.Object{
			ID:  int64(i),
			PDF: updf.NewUniformBall(clampCenter(p, radius), radius),
		}
	}
	return objs
}

// wrapConGau is wrapUniform with the paper's Constrained Gaussian pdf.
func wrapConGau(pts []geom.Point, radius, sigma float64) []core.Object {
	objs := make([]core.Object, len(pts))
	for i, p := range pts {
		objs[i] = core.Object{
			ID:  int64(i),
			PDF: updf.NewConGauBall(clampCenter(p, radius), radius, sigma),
		}
	}
	return objs
}

func clampCenter(p geom.Point, radius float64) geom.Point {
	q := p.Clone()
	for i := range q {
		if q[i] < radius {
			q[i] = radius
		}
		if q[i] > Domain-radius {
			q[i] = Domain - radius
		}
	}
	return q
}

// aircraft reproduces the paper's 3D Aircraft generator: 2000 "airports"
// sampled from an LB-like distribution; each aircraft's (x, y) is a random
// point on the segment between two random airports, its altitude uniform in
// [0, 10000]; uncertainty regions are spheres of radius 125 with uniform
// pdfs.
func aircraft(n int, seed int64) []core.Object {
	rng := rand.New(rand.NewSource(seed))
	airports := ClusteredPoints(2000, 2, seed*3+7, 40, 0.05)
	objs := make([]core.Object, n)
	const r = 125.0
	for i := 0; i < n; i++ {
		src := airports[rng.Intn(len(airports))]
		dst := airports[rng.Intn(len(airports))]
		f := rng.Float64()
		x := src[0] + (dst[0]-src[0])*f
		y := src[1] + (dst[1]-src[1])*f
		z := rng.Float64() * Domain
		ctr := clampCenter(geom.Point{x, y, z}, r)
		objs[i] = core.Object{ID: int64(i), PDF: updf.NewUniformBall(ctr, r)}
	}
	return objs
}

// Dim returns the dimensionality of a dataset.
func (n Name) Dim() int {
	if n == Aircraft {
		return 3
	}
	return 2
}

// All lists the paper's datasets in presentation order.
func All() []Name { return []Name{LB, CA, Aircraft} }
