package dataset

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/updf"
)

func TestGenerateSizesAndTypes(t *testing.T) {
	cases := []struct {
		name Name
		dim  int
		full int
	}{
		{LB, 2, LBSize},
		{CA, 2, CASize},
		{Aircraft, 3, AircraftSize},
	}
	for _, c := range cases {
		objs := Generate(Config{Name: c.name, Scale: 0.01})
		want := int(float64(c.full) * 0.01)
		if len(objs) != want {
			t.Errorf("%s: %d objects, want %d", c.name, len(objs), want)
		}
		if c.name.Dim() != c.dim {
			t.Errorf("%s: Dim() = %d, want %d", c.name, c.name.Dim(), c.dim)
		}
		for i, o := range objs[:50] {
			if o.PDF.Dim() != c.dim {
				t.Fatalf("%s obj %d: pdf dim %d", c.name, i, o.PDF.Dim())
			}
			mbr := o.PDF.MBR()
			for k := 0; k < c.dim; k++ {
				if mbr.Lo[k] < -1e-9 || mbr.Hi[k] > Domain+1e-9 {
					t.Fatalf("%s obj %d: region %v outside domain", c.name, i, mbr)
				}
			}
		}
	}
}

func TestPDFTypesMatchPaper(t *testing.T) {
	lb := Generate(Config{Name: LB, Scale: 0.005})
	if _, ok := lb[0].PDF.(*updf.UniformBall); !ok {
		t.Errorf("LB pdf type %T, want UniformBall", lb[0].PDF)
	}
	if b := lb[0].PDF.(*updf.UniformBall); b.R != 250 {
		t.Errorf("LB radius %g, want 250 (2.5%% of the axis)", b.R)
	}
	ca := Generate(Config{Name: CA, Scale: 0.005})
	cg, ok := ca[0].PDF.(*updf.ConGauBall)
	if !ok {
		t.Fatalf("CA pdf type %T, want ConGauBall", ca[0].PDF)
	}
	if cg.R != 250 || cg.Sigma != 125 {
		t.Errorf("CA params r=%g σ=%g, want 250/125", cg.R, cg.Sigma)
	}
	air := Generate(Config{Name: Aircraft, Scale: 0.002})
	ab, ok := air[0].PDF.(*updf.UniformBall)
	if !ok {
		t.Fatalf("Aircraft pdf type %T, want UniformBall", air[0].PDF)
	}
	if ab.R != 125 {
		t.Errorf("Aircraft radius %g, want 125", ab.R)
	}
}

func TestDeterministicInSeed(t *testing.T) {
	a := Generate(Config{Name: LB, Scale: 0.01, Seed: 5})
	b := Generate(Config{Name: LB, Scale: 0.01, Seed: 5})
	c := Generate(Config{Name: LB, Scale: 0.01, Seed: 6})
	if len(a) != len(b) {
		t.Fatal("same seed, different sizes")
	}
	for i := range a {
		if !a[i].PDF.Center().Equal(b[i].PDF.Center()) {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	same := 0
	for i := range a {
		if a[i].PDF.Center().Equal(c[i].PDF.Center()) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestClusteredPointsAreSkewed(t *testing.T) {
	// Compare the occupancy histogram of a clustered sample against a
	// uniform grid: clustering must concentrate mass (higher max-cell
	// share) — this is the property the TIGER substitution must preserve.
	pts := ClusteredPoints(20000, 2, 3, 40, 0.05)
	const g = 10
	var cells [g][g]int
	for _, p := range pts {
		x := int(p[0] / Domain * g)
		y := int(p[1] / Domain * g)
		if x >= g {
			x = g - 1
		}
		if y >= g {
			y = g - 1
		}
		cells[x][y]++
	}
	maxCell := 0
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			if cells[i][j] > maxCell {
				maxCell = cells[i][j]
			}
		}
	}
	uniformShare := 1.0 / (g * g)
	share := float64(maxCell) / float64(len(pts))
	if share < 3*uniformShare {
		t.Fatalf("max cell share %.4f under 3× uniform (%.4f): not skewed", share, uniformShare)
	}
	for _, p := range pts {
		if p[0] < 0 || p[0] > Domain || p[1] < 0 || p[1] > Domain {
			t.Fatalf("point %v outside domain", p)
		}
	}
}

func TestAircraftGeometry(t *testing.T) {
	objs := Generate(Config{Name: Aircraft, Scale: 0.01})
	// Altitudes should span most of [0, 10000] (uniform), while (x, y)
	// follow airport segments.
	minZ, maxZ := math.Inf(1), math.Inf(-1)
	for _, o := range objs {
		z := o.PDF.Center()[2]
		minZ = math.Min(minZ, z)
		maxZ = math.Max(maxZ, z)
	}
	if minZ > 1500 || maxZ < 8500 {
		t.Fatalf("altitude range [%g, %g] not covering the domain", minZ, maxZ)
	}
}

func TestPointsMatchesGenerate(t *testing.T) {
	cfg := Config{Name: LB, Scale: 0.005, Seed: 9}
	objs := Generate(cfg)
	pts := Points(cfg)
	if len(objs) != len(pts) {
		t.Fatal("length mismatch")
	}
	for i := range pts {
		if !pts[i].Equal(objs[i].PDF.Center()) {
			t.Fatalf("point %d mismatch", i)
		}
	}
}

func TestScaleFloor(t *testing.T) {
	objs := Generate(Config{Name: LB, Scale: 0.000001})
	if len(objs) != 100 {
		t.Fatalf("tiny scale produced %d objects, want floor 100", len(objs))
	}
}

func TestUnknownDatasetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset did not panic")
		}
	}()
	Generate(Config{Name: "nope"})
}

func TestAllDatasets(t *testing.T) {
	names := All()
	if len(names) != 3 || names[0] != LB || names[1] != CA || names[2] != Aircraft {
		t.Fatalf("All() = %v", names)
	}
}

func TestClampCenter(t *testing.T) {
	p := clampCenter(geom.Point{10, 9995}, 250)
	if p[0] != 250 || p[1] != Domain-250 {
		t.Fatalf("clamp = %v", p)
	}
}
