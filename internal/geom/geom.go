// Package geom provides d-dimensional points and axis-aligned rectangles
// (hyper-rectangles) with the geometric predicates and penalty metrics used
// throughout the U-tree reproduction: intersection, union, containment,
// area (volume), margin (perimeter sum), overlap and centroid distance.
//
// A Rect is stored as two corner points Lo and Hi with Lo[i] <= Hi[i] on
// every dimension i. Degenerate rectangles (zero extent on some axis) are
// legal; they arise naturally as PCRs approach p = 0.5.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a position in d-dimensional space.
type Point []float64

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// String renders p as "(x1, x2, ...)".
func (p Point) String() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprintf("%g", v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Rect is an axis-aligned hyper-rectangle [Lo, Hi].
type Rect struct {
	Lo, Hi Point
}

// NewRect constructs a rectangle from corner points, panicking on malformed
// input (mismatched dimensionality or inverted extents). Construction is the
// only place this is enforced, so downstream code can assume well-formedness.
func NewRect(lo, hi Point) Rect {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("geom: corner dimensionality mismatch %d vs %d", len(lo), len(hi)))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("geom: inverted extent on dim %d: [%g, %g]", i, lo[i], hi[i]))
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// RectFromPoint returns the degenerate rectangle containing only p.
func RectFromPoint(p Point) Rect {
	return Rect{Lo: p.Clone(), Hi: p.Clone()}
}

// Dim returns the dimensionality of r.
func (r Rect) Dim() int { return len(r.Lo) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()}
}

// Equal reports whether r and s are identical.
func (r Rect) Equal(s Rect) bool {
	return r.Lo.Equal(s.Lo) && r.Hi.Equal(s.Hi)
}

// IsValid reports whether r is well-formed (Lo <= Hi on every axis, no NaNs).
func (r Rect) IsValid() bool {
	if len(r.Lo) != len(r.Hi) || len(r.Lo) == 0 {
		return false
	}
	for i := range r.Lo {
		if math.IsNaN(r.Lo[i]) || math.IsNaN(r.Hi[i]) || r.Lo[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Side returns the extent of r along dimension i.
func (r Rect) Side(i int) float64 { return r.Hi[i] - r.Lo[i] }

// Area returns the d-dimensional volume of r.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Lo {
		a *= r.Hi[i] - r.Lo[i]
	}
	return a
}

// Margin returns the sum of side lengths of r. (The R*-tree literature calls
// this the margin; it is proportional to the perimeter/surface metric.)
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Lo {
		m += r.Hi[i] - r.Lo[i]
	}
	return m
}

// Center returns the centroid of r.
func (r Rect) Center() Point {
	c := make(Point, len(r.Lo))
	for i := range r.Lo {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

// CenterDist returns the Euclidean distance between the centroids of r and s.
func (r Rect) CenterDist(s Rect) float64 {
	return r.Center().Dist(s.Center())
}

// Contains reports whether r fully contains s (boundaries included).
func (r Rect) Contains(s Rect) bool {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] || s.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether p lies in r (boundaries included).
func (r Rect) ContainsPoint(p Point) bool {
	for i := range r.Lo {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point. Touching
// boundaries count as intersecting, matching the closed-rectangle semantics
// of the paper.
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Lo {
		if r.Hi[i] < s.Lo[i] || s.Hi[i] < r.Lo[i] {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of r and s. ok is false when the
// rectangles are disjoint, in which case the returned Rect is the zero value.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		lo[i] = math.Max(r.Lo[i], s.Lo[i])
		hi[i] = math.Min(r.Hi[i], s.Hi[i])
		if lo[i] > hi[i] {
			return Rect{}, false
		}
	}
	return Rect{Lo: lo, Hi: hi}, true
}

// Overlap returns the volume of the intersection of r and s (0 if disjoint).
func (r Rect) Overlap(s Rect) float64 {
	v := 1.0
	for i := range r.Lo {
		lo := math.Max(r.Lo[i], s.Lo[i])
		hi := math.Min(r.Hi[i], s.Hi[i])
		if lo >= hi {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		lo[i] = math.Min(r.Lo[i], s.Lo[i])
		hi[i] = math.Max(r.Hi[i], s.Hi[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// UnionInPlace grows r to cover s, avoiding allocation on hot paths.
func (r *Rect) UnionInPlace(s Rect) {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] {
			r.Lo[i] = s.Lo[i]
		}
		if s.Hi[i] > r.Hi[i] {
			r.Hi[i] = s.Hi[i]
		}
	}
}

// Enlargement returns the volume increase of r needed to cover s:
// Area(r ∪ s) − Area(r).
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// MBR returns the minimum bounding rectangle of the given rectangles.
// It panics when called with no rectangles.
func MBR(rects ...Rect) Rect {
	if len(rects) == 0 {
		panic("geom: MBR of empty set")
	}
	u := rects[0].Clone()
	for _, r := range rects[1:] {
		u.UnionInPlace(r)
	}
	return u
}

// ClipInterval returns r with its extent on dimension dim clipped to
// [lo, hi]. empty is true when the clipped slab does not meet r, in which
// case the returned Rect is the zero value. This is the "part of o.MBR
// between two planes" primitive of Observation 1.
func (r Rect) ClipInterval(dim int, lo, hi float64) (Rect, bool) {
	clo := math.Max(r.Lo[dim], lo)
	chi := math.Min(r.Hi[dim], hi)
	if clo > chi {
		return Rect{}, false
	}
	out := r.Clone()
	out.Lo[dim] = clo
	out.Hi[dim] = chi
	return out, true
}

// String renders r as "[lo ; hi]".
func (r Rect) String() string {
	return "[" + r.Lo.String() + " ; " + r.Hi.String() + "]"
}
