package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func rect2(lox, loy, hix, hiy float64) Rect {
	return NewRect(Point{lox, loy}, Point{hix, hiy})
}

func TestPointDist(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if got := p.Dist(q); got != 5 {
		t.Fatalf("Dist = %g, want 5", got)
	}
	if got := p.Dist(p); got != 0 {
		t.Fatalf("Dist to self = %g, want 0", got)
	}
}

func TestPointCloneIndependent(t *testing.T) {
	p := Point{1, 2}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestNewRectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRect with inverted extent did not panic")
		}
	}()
	NewRect(Point{1, 0}, Point{0, 1})
}

func TestNewRectDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRect with mismatched dims did not panic")
		}
	}()
	NewRect(Point{0}, Point{1, 1})
}

func TestAreaMargin(t *testing.T) {
	r := rect2(0, 0, 2, 3)
	if got := r.Area(); got != 6 {
		t.Fatalf("Area = %g, want 6", got)
	}
	if got := r.Margin(); got != 5 {
		t.Fatalf("Margin = %g, want 5", got)
	}
	deg := rect2(1, 1, 1, 5)
	if got := deg.Area(); got != 0 {
		t.Fatalf("degenerate Area = %g, want 0", got)
	}
	if got := deg.Margin(); got != 4 {
		t.Fatalf("degenerate Margin = %g, want 4", got)
	}
}

func TestContainsIntersects(t *testing.T) {
	outer := rect2(0, 0, 10, 10)
	inner := rect2(2, 2, 5, 5)
	disjoint := rect2(11, 11, 12, 12)
	touching := rect2(10, 0, 12, 5)

	if !outer.Contains(inner) {
		t.Error("outer should contain inner")
	}
	if inner.Contains(outer) {
		t.Error("inner should not contain outer")
	}
	if !outer.Contains(outer) {
		t.Error("rect should contain itself")
	}
	if !outer.Intersects(inner) || !inner.Intersects(outer) {
		t.Error("nested rects should intersect")
	}
	if outer.Intersects(disjoint) {
		t.Error("disjoint rects should not intersect")
	}
	if !outer.Intersects(touching) {
		t.Error("boundary-touching rects should intersect (closed semantics)")
	}
	if !outer.ContainsPoint(Point{0, 0}) || !outer.ContainsPoint(Point{10, 10}) {
		t.Error("corners are contained")
	}
	if outer.ContainsPoint(Point{10.001, 5}) {
		t.Error("outside point is not contained")
	}
}

func TestIntersect(t *testing.T) {
	a := rect2(0, 0, 4, 4)
	b := rect2(2, 3, 6, 8)
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("expected intersection")
	}
	want := rect2(2, 3, 4, 4)
	if !got.Equal(want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	if _, ok := a.Intersect(rect2(5, 5, 6, 6)); ok {
		t.Fatal("disjoint rects should not intersect")
	}
	// Touching rectangles intersect in a degenerate rect.
	touch, ok := a.Intersect(rect2(4, 0, 5, 4))
	if !ok || touch.Area() != 0 {
		t.Fatalf("touching intersection = %v ok=%v, want degenerate rect", touch, ok)
	}
}

func TestOverlap(t *testing.T) {
	a := rect2(0, 0, 4, 4)
	b := rect2(2, 2, 6, 6)
	if got := a.Overlap(b); got != 4 {
		t.Fatalf("Overlap = %g, want 4", got)
	}
	if got := a.Overlap(rect2(4, 0, 5, 4)); got != 0 {
		t.Fatalf("touching Overlap = %g, want 0", got)
	}
	if got := a.Overlap(rect2(10, 10, 11, 11)); got != 0 {
		t.Fatalf("disjoint Overlap = %g, want 0", got)
	}
}

func TestUnionEnlargement(t *testing.T) {
	a := rect2(0, 0, 2, 2)
	b := rect2(3, 3, 4, 4)
	u := a.Union(b)
	if !u.Equal(rect2(0, 0, 4, 4)) {
		t.Fatalf("Union = %v", u)
	}
	if got := a.Enlargement(b); got != 12 {
		t.Fatalf("Enlargement = %g, want 12", got)
	}
	if got := a.Enlargement(rect2(0.5, 0.5, 1, 1)); got != 0 {
		t.Fatalf("Enlargement of contained = %g, want 0", got)
	}
}

func TestUnionInPlace(t *testing.T) {
	a := rect2(0, 0, 2, 2)
	a.UnionInPlace(rect2(-1, 1, 1, 3))
	if !a.Equal(rect2(-1, 0, 2, 3)) {
		t.Fatalf("UnionInPlace = %v", a)
	}
}

func TestMBR(t *testing.T) {
	got := MBR(rect2(0, 0, 1, 1), rect2(5, -2, 6, 0), rect2(2, 2, 3, 9))
	if !got.Equal(rect2(0, -2, 6, 9)) {
		t.Fatalf("MBR = %v", got)
	}
}

func TestMBRPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MBR() did not panic")
		}
	}()
	MBR()
}

func TestCenterDist(t *testing.T) {
	a := rect2(0, 0, 2, 2) // center (1,1)
	b := rect2(3, 1, 5, 7) // center (4,4)
	want := math.Sqrt(18)
	if got := a.CenterDist(b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CenterDist = %g, want %g", got, want)
	}
}

func TestClipInterval(t *testing.T) {
	r := rect2(0, 0, 10, 10)
	got, ok := r.ClipInterval(0, 3, 7)
	if !ok || !got.Equal(rect2(3, 0, 7, 10)) {
		t.Fatalf("ClipInterval = %v ok=%v", got, ok)
	}
	// Clip extends beyond the rect: result clamped to the rect.
	got, ok = r.ClipInterval(1, -5, 4)
	if !ok || !got.Equal(rect2(0, 0, 10, 4)) {
		t.Fatalf("ClipInterval clamp = %v ok=%v", got, ok)
	}
	// Empty clip.
	if _, ok := r.ClipInterval(0, 11, 12); ok {
		t.Fatal("ClipInterval outside rect should report empty")
	}
	// Degenerate (plane) clip is allowed.
	got, ok = r.ClipInterval(0, 5, 5)
	if !ok || got.Side(0) != 0 {
		t.Fatalf("plane clip = %v ok=%v", got, ok)
	}
}

func TestIsValid(t *testing.T) {
	if !rect2(0, 0, 1, 1).IsValid() {
		t.Error("valid rect reported invalid")
	}
	bad := Rect{Lo: Point{1, 0}, Hi: Point{0, 1}}
	if bad.IsValid() {
		t.Error("inverted rect reported valid")
	}
	nan := Rect{Lo: Point{math.NaN(), 0}, Hi: Point{1, 1}}
	if nan.IsValid() {
		t.Error("NaN rect reported valid")
	}
	if (Rect{}).IsValid() {
		t.Error("zero rect reported valid")
	}
}

// randomRect produces a well-formed rectangle for property tests.
func randomRect(rng *rand.Rand, d int) Rect {
	lo := make(Point, d)
	hi := make(Point, d)
	for i := 0; i < d; i++ {
		a := rng.Float64()*200 - 100
		b := a + rng.Float64()*50
		lo[i], hi[i] = a, b
	}
	return Rect{Lo: lo, Hi: hi}
}

func TestPropertyUnionContainsBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(4)
		a, b := randomRect(rng, d), randomRect(rng, d)
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIntersectionSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		d := 1 + int(seed&3)
		a, b := randomRect(rng, d), randomRect(rng, d)
		i1, ok1 := a.Intersect(b)
		i2, ok2 := b.Intersect(a)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return a.Overlap(b) == 0
		}
		return i1.Equal(i2) && a.Contains(i1) && b.Contains(i1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyOverlapMatchesIntersectArea(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		d := 1 + int(seed&3)
		a, b := randomRect(rng, d), randomRect(rng, d)
		ov := a.Overlap(b)
		in, ok := a.Intersect(b)
		if !ok {
			return ov == 0
		}
		return math.Abs(ov-in.Area()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEnlargementNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		d := 1 + int(seed&3)
		a, b := randomRect(rng, d), randomRect(rng, d)
		return a.Enlargement(b) >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyContainmentTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		d := 1 + rng.Intn(3)
		a := randomRect(rng, d)
		b := a.Clone()
		// Shrink b inside a, c inside b.
		c := a.Clone()
		for j := 0; j < d; j++ {
			w := a.Side(j)
			b.Lo[j] += w * 0.1
			b.Hi[j] -= w * 0.1
			c.Lo[j] += w * 0.2
			c.Hi[j] -= w * 0.2
			if b.Lo[j] > b.Hi[j] || c.Lo[j] > c.Hi[j] {
				// Degenerate shrink; clamp to midpoint.
				m := (a.Lo[j] + a.Hi[j]) / 2
				b.Lo[j], b.Hi[j] = m, m
				c.Lo[j], c.Hi[j] = m, m
			}
		}
		if !a.Contains(b) || !b.Contains(c) || !a.Contains(c) {
			t.Fatalf("containment chain broken: a=%v b=%v c=%v", a, b, c)
		}
	}
}

func TestString(t *testing.T) {
	r := rect2(0, 1, 2, 3)
	if got := r.String(); got != "[(0, 1) ; (2, 3)]" {
		t.Fatalf("String = %q", got)
	}
}
