// Package errfix exercises the typederr analyzer: sentinel errors are
// matched with errors.Is and wrapped with %w, never compared or %v'd.
package errfix

import (
	"errors"
	"fmt"
)

// ErrTorn mirrors a repository sentinel: package-level, Err-prefixed.
var ErrTorn = errors.New("torn write")

// errInternal is unexported and outside the Err* convention: not a
// sentinel, so direct comparison against it is not this analyzer's
// business.
var errInternal = errors.New("internal")

func check(err error) bool {
	if err == ErrTorn { // want `direct == comparison against sentinel ErrTorn`
		return true
	}
	if err != ErrTorn { // want `direct != comparison against sentinel ErrTorn`
		return false
	}
	switch err {
	case ErrTorn: // want `switch-case comparison against sentinel ErrTorn`
		return true
	}
	return errors.Is(err, ErrTorn)
}

func private(err error) bool {
	return err == errInternal
}

func wrapOpaque(err error) error {
	return fmt.Errorf("flush: %v", err) // want `fmt\.Errorf folds the error in under %v`
}

func wrapSentinelOpaque() error {
	return fmt.Errorf("flush: %v", ErrTorn) // want `fmt\.Errorf folds ErrTorn in under %v`
}

func wrapOK(err error) error {
	return fmt.Errorf("flush: %w", err)
}

func wrapMixed(err error) error {
	return fmt.Errorf("page %d: %w", 7, err)
}

func wrapStarWidth(err error) error {
	return fmt.Errorf("%*d: %w", 4, 7, err)
}

type faultErr struct{ code int }

func (e *faultErr) Error() string { return "fault" }

// Is implements the errors.Is protocol: direct comparison against
// sentinels is its entire job, so the whole body is exempt.
func (e *faultErr) Is(target error) bool {
	return target == ErrTorn
}

// compat shows the waiver mechanism.
func compat(err error) bool {
	//ulint:ignore typederr fixture exercises the waiver path
	return err == ErrTorn
}
