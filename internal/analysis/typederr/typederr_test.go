package typederr_test

import (
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/typederr"
)

func TestTypederr(t *testing.T) {
	framework.RunFixture(t, typederr.Analyzer, "testdata/typederr")
}
