// Package typederr enforces the typed-error discipline: the repository's
// sentinel errors (ErrCOWViolation, ErrTornWrite, ErrSnapshotTooOld, ...)
// travel through wrapped chains — %w at wrap sites, errors.Is/As at
// check sites. A direct ==/!= against a sentinel breaks the moment any
// layer wraps the error (the fault-injection stores do, deliberately),
// and an fmt.Errorf that folds a sentinel in with %v instead of %w
// strips the identity that callers match on.
package typederr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer flags identity-breaking uses of sentinel errors.
var Analyzer = &framework.Analyzer{
	Name: "typederr",
	Doc: "flag ==/!= and switch-case comparisons against sentinel errors " +
		"(use errors.Is) and fmt.Errorf wrapping a sentinel without %w",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isIsMethod(pass, fd) {
				// The Is(target) method IS the errors.Is hook: direct
				// comparison against sentinels is its entire job.
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					checkCompare(pass, n)
				case *ast.SwitchStmt:
					checkSwitch(pass, n)
				case *ast.CallExpr:
					checkErrorf(pass, n)
				}
				return true
			})
		}
	}
	return nil
}

// isIsMethod matches the errors.Is protocol method `Is(error) bool`.
func isIsMethod(pass *framework.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Is" {
		return false
	}
	obj, ok := pass.ObjectOf(fd.Name).(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	return sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
		types.Identical(sig.Params().At(0).Type(), types.Universe.Lookup("error").Type()) &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

func checkCompare(pass *framework.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if name := sentinelName(pass, side); name != "" {
			pass.Reportf(be.Pos(),
				"direct %s comparison against sentinel %s: wrapped chains never match; use errors.Is(err, %s)",
				be.Op, name, name)
			return
		}
	}
}

func checkSwitch(pass *framework.Pass, sw *ast.SwitchStmt) {
	// `switch err { case ErrX: ... }` is == in disguise.
	if sw.Tag == nil || !isErrorType(pass.TypeOf(sw.Tag)) {
		return
	}
	for _, st := range sw.Body.List {
		cc, ok := st.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name := sentinelName(pass, e); name != "" {
				pass.Reportf(e.Pos(),
					"switch-case comparison against sentinel %s: wrapped chains never match; use errors.Is(err, %s)",
					name, name)
			}
		}
	}
}

// checkErrorf flags fmt.Errorf calls that pass a sentinel (or any error
// value) under a verb other than %w.
func checkErrorf(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if pn, ok := pass.ObjectOf(id).(*types.PkgName); !ok || pn.Imported().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format := pass.TypesInfo.Types[call.Args[0]].Value
	if format == nil {
		return
	}
	verbs, ok := formatVerbs(formatString(format.ExactString()))
	for i, arg := range call.Args[1:] {
		name := sentinelName(pass, arg)
		if name == "" && !isErrorType(pass.TypeOf(arg)) {
			continue
		}
		if name == "" {
			name = "the error"
		}
		if !ok {
			// Indexed or otherwise unparseable format: settle for "is
			// there a %w at all".
			if !strings.Contains(formatString(format.ExactString()), "%w") {
				pass.Reportf(arg.Pos(),
					"fmt.Errorf folds %s in without %%w: the sentinel identity is stripped and errors.Is stops matching", name)
			}
			continue
		}
		if i >= len(verbs) || verbs[i] != 'w' {
			pass.Reportf(arg.Pos(),
				"fmt.Errorf folds %s in under %%%s: use %%w so errors.Is still matches through the wrap",
				name, verbAt(verbs, i))
		}
	}
}

func verbAt(verbs []byte, i int) string {
	if i < len(verbs) {
		return string(verbs[i])
	}
	return "v"
}

// formatString strips the quotes from a constant's exact string form.
func formatString(exact string) string {
	if len(exact) >= 2 {
		return exact[1 : len(exact)-1]
	}
	return exact
}

// formatVerbs returns the argument-consuming verb for each successive
// argument of a Printf-style format. ok is false when the format uses
// explicit argument indexes, which this parser does not model.
func formatVerbs(format string) (verbs []byte, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	verb:
		for ; i < len(format); i++ {
			switch c := format[i]; {
			case c == '%':
				break verb // literal %%
			case c == '[':
				return nil, false // indexed argument
			case c == '*':
				verbs = append(verbs, '*') // width/precision consumes an arg
			case c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || (c >= '1' && c <= '9'):
				// flags, width, precision digits
			default:
				verbs = append(verbs, c)
				break verb
			}
		}
	}
	return verbs, true
}

// sentinelName returns the qualified name of e when it denotes a
// sentinel error — a package-level error variable named Err*, io.EOF,
// or the context cancellation sentinels — and "" otherwise.
func sentinelName(pass *framework.Pass, e ast.Expr) string {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	v, ok := pass.ObjectOf(id).(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "" // not package-level
	}
	if !isErrorType(v.Type()) {
		return ""
	}
	switch {
	case strings.HasPrefix(v.Name(), "Err"),
		v.Name() == "EOF",
		v.Pkg().Path() == "context" && (v.Name() == "Canceled" || v.Name() == "DeadlineExceeded"):
		return v.Name()
	}
	return ""
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
