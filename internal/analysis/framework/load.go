package framework

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *listErr
}

type listErr struct{ Err string }

// Load resolves patterns with the go command and type-checks every
// matched package from source, resolving imports (standard library and
// intra-module alike) through the gc export data that `go list -export`
// produces into the build cache. Only non-test Go files are analyzed:
// the ulint invariants govern library code, and tests legitimately poke
// at internals (writing raw pages, comparing errors they just made).
func Load(dir string, patterns ...string) ([]*Package, error) {
	exports, targets, err := goList(dir, true, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, tp := range targets {
		if tp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", tp.ImportPath, tp.Error.Err)
		}
		if len(tp.GoFiles) == 0 {
			continue // nothing to analyze (e.g. a test-only package)
		}
		var files []*ast.File
		for _, name := range tp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(tp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, err := typeCheck(fset, imp, tp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -e -export -json` (with -deps when deps is true)
// and splits the result into an importPath→export-file map and the
// directly matched (non-dependency) packages.
func goList(dir string, deps bool, patterns []string) (map[string]string, []*listPkg, error) {
	args := []string{"list", "-e", "-export"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, "-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Error")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}
	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}
	return exports, targets, nil
}

// newExportImporter returns a types.Importer that reads gc export data
// from the files recorded in exports. All packages loaded through one
// importer share type identities, which is what makes cross-package
// comparisons inside a single pass sound.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})
}

// typeCheck runs go/types over already-parsed files.
func typeCheck(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
