// Package framework is a self-contained reimplementation of the narrow
// slice of golang.org/x/tools/go/analysis that the ulint analyzer suite
// needs: an Analyzer/Pass/Diagnostic surface, a package loader built on
// `go list -export` plus the standard library's gc export-data importer
// (so the module keeps its zero-dependency property), and an
// analysistest-style fixture runner driven by `// want` annotations.
//
// Suppression: a diagnostic is dropped when the flagged line — or the
// line directly above it — carries a comment of the form
//
//	//ulint:ignore <name>[,<name>...] <reason>
//
// naming the analyzer (or the wildcard "all"). The reason is mandatory
// by convention: a waiver documents why the invariant does not apply at
// that site, exactly like a code-review exemption would.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ulint:ignore waivers.
	Name string
	// Doc is the one-paragraph description shown by `ulint -list`.
	Doc string
	// Run reports the analyzer's findings on one package via
	// Pass.Reportf.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass carries one analyzer run over one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil when the checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object denoted by id (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.TypesInfo.ObjectOf(id) }

// RunAnalyzer runs a over pkg and returns its diagnostics with
// //ulint:ignore waivers applied, sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	ig := buildIgnoreIndex(pkg.Fset, pkg.Files)
	out := pass.diags[:0]
	for _, d := range pass.diags {
		if !ig.ignored(pkg.Fset, d.Pos, a.Name) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// ignoreIndex maps file → line → analyzer names waived on that line.
type ignoreIndex map[string]map[int][]string

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := ignoreIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "ulint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "ulint:ignore"))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], strings.Split(fields[0], ",")...)
			}
		}
	}
	return idx
}

// ignored reports whether a waiver on the diagnostic's line, or on the
// line directly above it, names the analyzer.
func (idx ignoreIndex) ignored(fset *token.FileSet, pos token.Pos, name string) bool {
	p := fset.Position(pos)
	lines := idx[p.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{p.Line, p.Line - 1} {
		for _, n := range lines[l] {
			if n == name || n == "all" {
				return true
			}
		}
	}
	return false
}
