package framework

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads the single Go package in dir (typically a testdata
// directory, which the go tool itself never builds), runs a over it, and
// compares the diagnostics against the fixture's `// want` annotations —
// the analysistest contract. An annotation attaches one or more quoted
// regular expressions to its own line:
//
//	err == ErrBad // want `use errors\.Is`
//
// Every diagnostic must be matched by a want on its line and vice versa.
// //ulint:ignore waivers apply before matching, so fixtures can (and do)
// exercise the suppression mechanism: a waived line carries no want.
//
// Fixture packages may import anything resolvable by `go list` from the
// test's working directory — in practice the standard library, which
// keeps fixtures hermetic.
func RunFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixture files in %s (err=%v)", dir, err)
	}
	sort.Strings(paths)

	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		for _, im := range f.Imports {
			if ip, err := strconv.Unquote(im.Path.Value); err == nil {
				importSet[ip] = true
			}
		}
	}

	exports := map[string]string{}
	if len(importSet) > 0 {
		var imports []string
		for ip := range importSet {
			imports = append(imports, ip)
		}
		sort.Strings(imports)
		exports, _, err = goList(".", true, imports)
		if err != nil {
			t.Fatalf("resolving fixture imports: %v", err)
		}
	}

	pkgPath := "fixture/" + files[0].Name.Name
	pkg, err := typeCheck(fset, newExportImporter(fset, exports), pkgPath, files)
	if err != nil {
		t.Fatalf("fixture does not type-check: %v", err)
	}

	diags, err := RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := parseWants(t, fset, files)
	got := map[string][]string{}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
		got[key] = append(got[key], d.Message)
	}

	keys := map[string]bool{}
	for k := range wants {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	for k := range keys {
		ws, ds := wants[k], got[k]
		if len(ws) != len(ds) {
			t.Errorf("%s: want %d diagnostic(s) %v, got %d: %q", k, len(ws), patterns(ws), len(ds), ds)
			continue
		}
		used := make([]bool, len(ds))
	match:
		for _, w := range ws {
			for i, d := range ds {
				if !used[i] && w.MatchString(d) {
					used[i] = true
					continue match
				}
			}
			t.Errorf("%s: no diagnostic matching %q among %q", k, w, ds)
		}
	}
}

func patterns(ws []*regexp.Regexp) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.String()
	}
	return out
}

// parseWants extracts `// want "rx" ...` annotations, keyed file:line.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, lit := range splitQuoted(t, text[len("want "):], pos) {
					rx, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, lit, err)
					}
					wants[key] = append(wants[key], rx)
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a space-separated sequence of Go string literals
// (double- or back-quoted).
func splitQuoted(t *testing.T, s string, pos token.Position) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		var end int
		switch s[0] {
		case '`':
			i := strings.Index(s[1:], "`")
			if i < 0 {
				t.Fatalf("%s: unterminated want pattern %q", pos, s)
			}
			end = i + 2
		case '"':
			end = -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i + 1
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern %q", pos, s)
			}
		default:
			t.Fatalf("%s: want patterns must be quoted, got %q", pos, s)
		}
		lit, err := strconv.Unquote(s[:end])
		if err != nil {
			t.Fatalf("%s: bad want literal %q: %v", pos, s[:end], err)
		}
		out = append(out, lit)
		s = s[end:]
	}
}
