package cowwrite_test

import (
	"testing"

	"repro/internal/analysis/cowwrite"
	"repro/internal/analysis/framework"
)

func TestCowwrite(t *testing.T) {
	framework.RunFixture(t, cowwrite.Analyzer, "testdata/cowwrite")
}
