// Package cowfix exercises the cowwrite analyzer: page mutations are
// legal only inside the relocation/commit funnel.
package cowfix

// PageID mirrors the pagefile page identifier.
type PageID uint32

// Store mirrors the page store: its name triggers the Write check.
type Store struct{ pages map[PageID][]byte }

// Write is a funnel name: page mutation inside it is its whole job.
func (s *Store) Write(id PageID, b []byte) { s.pages[id] = b }

// MarkInPlace is likewise a funnel name.
func (s *Store) MarkInPlace(id PageID) {}

// MemStore exercises the *Store-suffix naming convention.
type MemStore struct{ pages map[PageID][]byte }

// Write mutates a page (funnel name, allowed inside).
func (s *MemStore) Write(id PageID, b []byte) { s.pages[id] = b }

// BufferPool mirrors the page cache.
type BufferPool struct{ cache map[PageID][]byte }

// Put caches a page; storing into the map keeps Put itself clean.
func (bp *BufferPool) Put(id PageID, b []byte) { bp.cache[id] = b }

type node struct{ id PageID }

type tree struct {
	store *Store
	mem   *MemStore
	pool  *BufferPool
}

// writeNode is the COW relocation funnel: direct page writes are its job.
func (t *tree) writeNode(n *node, buf []byte) {
	t.store.Write(n.id, buf)
	t.pool.Put(n.id, buf)
}

// writeMeta is the commit point, the one place in-place is sanctioned.
func (t *tree) writeMeta(buf []byte) {
	t.store.MarkInPlace(0)
	t.store.Write(0, buf)
}

// rebalance is NOT in the funnel: every page mutation here breaks COW.
func (t *tree) rebalance(n *node, buf []byte) {
	t.store.Write(n.id, buf)  // want `page write \(Store\.Write\) outside the COW funnel in rebalance`
	t.mem.Write(n.id, buf)    // want `page write \(MemStore\.Write\) outside the COW funnel in rebalance`
	t.pool.Put(n.id, buf)     // want `BufferPool\.Put outside the COW funnel in rebalance`
	t.store.MarkInPlace(n.id) // want `MarkInPlace outside the COW funnel in rebalance`
}

// compact shows the waiver mechanism: the mutation is argued, not hidden.
func (t *tree) compact(n *node, buf []byte) {
	//ulint:ignore cowwrite recovery rewrites the page image it has just validated
	t.store.Write(n.id, buf)
}

// logger has a Write method but is no page store: never flagged.
type logger struct{}

// Write appends to the log.
func (l *logger) Write(p []byte) (int, error) { return len(p), nil }

func audit(l *logger, p []byte) {
	l.Write(p)
}
