// Package cowwrite enforces the copy-on-write discipline introduced in
// PR 5: committed pages are byte-immutable, so every page mutation must
// flow through the blessed relocation/commit funnel — writeNode (which
// relocates committed nodes to shadow pages), writeMeta (the commit
// point), the buffer-pool write-back paths, and the slotted data-page
// funnels. A Store.Write, BufferPool.Put, or MarkInPlace call anywhere
// else is a latent snapshot-isolation break that the runtime COW check
// would only catch when that exact path executes.
package cowwrite

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer flags page mutations outside the COW funnel.
var Analyzer = &framework.Analyzer{
	Name: "cowwrite",
	Doc: "flag Store.Write / BufferPool.Put / MarkInPlace calls outside the " +
		"allowlisted relocation/commit funnel (the COW discipline)",
	Run: run,
}

// funnel is the set of functions allowed to mutate pages directly:
// store wrappers delegating inward (Write, MarkInPlace), the node
// relocation and metadata commit funnels (writeNode, writeMeta), the
// buffer-pool write-back paths (insert, Flush), and the slotted
// data-page funnels (flushLocked, DeleteBatch, markInPlace).
var funnel = map[string]bool{
	"Write":       true,
	"MarkInPlace": true,
	"writeNode":   true,
	"writeMeta":   true,
	"insert":      true,
	"Flush":       true,
	"flushLocked": true,
	"DeleteBatch": true,
	"markInPlace": true,
}

// scope: within this repository the COW discipline governs the tree and
// the page store; fixture packages (non-repro paths) are always checked.
var scoped = map[string]bool{
	"repro/internal/core":     true,
	"repro/internal/pagefile": true,
}

func run(pass *framework.Pass) error {
	if path := pass.Pkg.Path(); strings.HasPrefix(path, "repro/") && !scoped[path] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || funnel[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || pass.TypesInfo.Selections[sel] == nil {
					return true // not a method/field selection
				}
				recv := namedName(pass.TypeOf(sel.X))
				switch sel.Sel.Name {
				case "Write":
					if isStoreType(recv) {
						pass.Reportf(call.Pos(),
							"page write (%s.Write) outside the COW funnel in %s: committed pages are immutable; route the mutation through writeNode/writeMeta or a flush funnel",
							recv, fd.Name.Name)
					}
				case "Put":
					if recv == "BufferPool" {
						pass.Reportf(call.Pos(),
							"BufferPool.Put outside the COW funnel in %s: dirtying a cached page bypasses copy-on-write relocation; go through writeNode",
							fd.Name.Name)
					}
				case "MarkInPlace":
					pass.Reportf(call.Pos(),
						"MarkInPlace outside the COW funnel in %s: only the metadata and slotted data-page funnels may exempt a page from copy-on-write",
						fd.Name.Name)
				}
				return true
			})
		}
	}
	return nil
}

// namedName returns the name of the (possibly pointed-to) named type.
func namedName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isStoreType matches the page-store naming convention: the Store
// interface itself and every wrapper implementation (FileStore,
// MemStore, VersionedStore, LatencyStore, ChaosStore, RetryStore, ...).
func isStoreType(name string) bool {
	return name == "Store" || strings.HasSuffix(name, "Store")
}
