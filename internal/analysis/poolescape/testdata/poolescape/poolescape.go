// Package poolfix exercises the poolescape analyzer: pooled query
// scratch must not outlive the query that borrowed it.
package poolfix

import "sync"

type point []float64

// queryScratch mirrors the pooled per-query scratch space.
type queryScratch struct {
	frontier []uint32
	mc       point
}

var scratchPool = sync.Pool{New: func() any { return &queryScratch{} }}

// getScratch is the pool hand-out funnel.
func getScratch() *queryScratch { return scratchPool.Get().(*queryScratch) }

// release is the pool hand-back funnel.
func (sc *queryScratch) release() { scratchPool.Put(sc) }

// point carves the pooled MC buffer out of the scratch.
func (sc *queryScratch) point(dim int) point {
	if cap(sc.mc) < dim {
		sc.mc = make(point, dim)
	}
	return sc.mc[:dim]
}

// cursor is a long-lived structure; pooled scratch must not end up in it.
type cursor struct {
	cached []uint32
}

// stash parks pooled scratch in a field that outlives the query.
func (c *cursor) stash() {
	sc := getScratch()
	c.cached = sc.frontier // want `pooled scratch stored in a field or container in stash`
	sc.release()
}

// leakReturn hands pooled memory to the caller after the Put site.
func leakReturn() []uint32 {
	sc := getScratch()
	defer sc.release()
	return sc.frontier // want `pooled scratch returned from leakReturn`
}

// leakDerived shows taint flowing through a projection (the MC buffer).
func leakDerived(dim int) point {
	sc := getScratch()
	defer sc.release()
	buf := sc.point(dim)
	return buf // want `pooled scratch returned from leakDerived`
}

// leakGoroutine races the pool: the goroutine may still hold the
// scratch after release returns it for reuse.
func leakGoroutine() {
	sc := getScratch()
	go func() { // want `pooled scratch captured by a goroutine in leakGoroutine`
		_ = sc.frontier
	}()
	sc.release()
}

// leakSend escapes through a channel to a receiver with its own lifetime.
func leakSend(ch chan []uint32) {
	sc := getScratch()
	ch <- sc.frontier // want `pooled scratch sent on a channel in leakSend`
	sc.release()
}

// query is the blessed pattern: borrow, use synchronously, copy values
// out, release. Nothing here is flagged.
func query(root uint32, dim int) []uint32 {
	sc := getScratch()
	defer sc.release()
	frontier := sc.frontier[:0]
	frontier = append(frontier, root)
	sink(sc.point(dim))
	out := make([]uint32, 0, len(frontier))
	out = append(out, frontier...)
	return out
}

// handoff shows the waiver: a documented transfer of ownership.
func handoff() []uint32 {
	sc := getScratch()
	//ulint:ignore poolescape the caller adopts the scratch and releases it
	return sc.frontier
}

func sink(point) {}
