package poolescape_test

import (
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/poolescape"
)

func TestPoolescape(t *testing.T) {
	framework.RunFixture(t, poolescape.Analyzer, "testdata/poolescape")
}
