// Package poolescape enforces the scratch-pooling discipline introduced
// in PR 7: values handed out by the query-scratch pools (queryScratch,
// the pooled seeded *rand.Rand, and every buffer carved out of them)
// must never outlive the query that borrowed them. Storing pooled
// memory in a struct field, returning it past the Put site, sending it
// on a channel, or capturing it in a goroutine aliases one query's
// scratch into another's — exactly the corruption the pooling tests
// hammer for, caught here before it runs.
//
// The analysis is per-function and flow-insensitive: a local becomes
// tainted when it is initialized from a pool source (getScratch,
// getSeededRand, or a (*sync.Pool).Get) or from any reference-typed
// expression that carries a tainted value (selectors, slices of,
// appends onto pooled backing arrays). Passing pooled scratch DOWN into
// a synchronous call is fine — that is the whole point of scratch.
package poolescape

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer flags pooled query scratch escaping its query.
var Analyzer = &framework.Analyzer{
	Name: "poolescape",
	Doc: "flag pooled query scratch (queryScratch, pooled *rand.Rand, MC " +
		"buffers) stored in fields, returned, sent on channels, or captured " +
		"by goroutines",
	Run: run,
}

// poolFunnel names the pool accessors themselves, whose job is handing
// pooled values out and back.
var poolFunnel = map[string]bool{
	"getScratch":    true,
	"getSeededRand": true,
	"putRand":       true,
	"release":       true,
}

func run(pass *framework.Pass) error {
	if path := pass.Pkg.Path(); strings.HasPrefix(path, "repro/") && path != "repro/internal/core" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || poolFunnel[fd.Name.Name] {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	tainted := map[types.Object]bool{}

	// Fixpoint taint propagation across the function's assignments:
	// x := getScratch();  f := append(sc.frontier[:0], root);  etc.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.ObjectOf(id)
				if obj == nil || tainted[obj] {
					continue
				}
				var rhs ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				} else if len(as.Rhs) == 1 && i == 0 {
					rhs = as.Rhs[0] // x, ok := pool.Get().(*T) style
				} else {
					continue
				}
				if carries(pass, tainted, rhs) {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// Sink detection.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// Deferred releases (sc.release(), putRand(r)) run on the
			// query's own goroutine before return: the Put site itself.
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if carries(pass, tainted, res) {
					pass.Reportf(res.Pos(),
						"pooled scratch returned from %s: it escapes past its Put site and will alias a later query's buffers",
						fd.Name.Name)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				base, indirect := storeTarget(lhs)
				if !indirect || carries(pass, tainted, base) {
					continue // writing into the scratch itself is fine
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				} else {
					continue
				}
				if carries(pass, tainted, rhs) {
					pass.Reportf(lhs.Pos(),
						"pooled scratch stored in a field or container in %s: it outlives the query that borrowed it",
						fd.Name.Name)
				}
			}
		case *ast.SendStmt:
			if carries(pass, tainted, n.Value) {
				pass.Reportf(n.Value.Pos(),
					"pooled scratch sent on a channel in %s: the receiver outlives the Put site", fd.Name.Name)
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if carries(pass, tainted, arg) {
					pass.Reportf(arg.Pos(),
						"pooled scratch passed to a goroutine in %s: it races the pool once the query releases it", fd.Name.Name)
				}
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					id, ok := m.(*ast.Ident)
					if ok && tainted[pass.ObjectOf(id)] {
						pass.Reportf(n.Pos(),
							"pooled scratch captured by a goroutine in %s: it races the pool once the query releases it", fd.Name.Name)
						return false
					}
					return true
				})
			}
		}
		return true
	})
}

// storeTarget decomposes an assignment target: x.f and m[k] store into a
// longer-lived structure rooted at base.
func storeTarget(lhs ast.Expr) (base ast.Expr, indirect bool) {
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr:
		return lhs.X, true
	case *ast.IndexExpr:
		return lhs.X, true
	case *ast.StarExpr:
		return lhs.X, true
	}
	return nil, false
}

// carries reports whether e evaluates to a value that aliases pooled
// scratch: the pooled pointer itself, a projection of it (field, index,
// slice), an append onto its backing array, or the result of a method
// called on it (queryScratch.point hands out the pooled MC buffer).
// Value-typed results (ints, structs copied by value) never carry.
func carries(pass *framework.Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	if e == nil || !refType(pass.TypeOf(e)) {
		return false
	}
	switch e := e.(type) {
	case *ast.Ident:
		return tainted[pass.ObjectOf(e)]
	case *ast.SelectorExpr:
		return carries(pass, tainted, e.X)
	case *ast.IndexExpr:
		return carries(pass, tainted, e.X)
	case *ast.SliceExpr:
		return carries(pass, tainted, e.X)
	case *ast.ParenExpr:
		return carries(pass, tainted, e.X)
	case *ast.StarExpr:
		return carries(pass, tainted, e.X)
	case *ast.UnaryExpr:
		return carries(pass, tainted, e.X)
	case *ast.TypeAssertExpr:
		return carries(pass, tainted, e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if carries(pass, tainted, el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if isPoolSource(pass, e) {
			return true
		}
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin && len(e.Args) > 0 {
				if carries(pass, tainted, e.Args[0]) {
					return true // append onto a pooled backing array
				}
				for i, arg := range e.Args[1:] {
					t := pass.TypeOf(arg)
					if e.Ellipsis.IsValid() && i == len(e.Args)-2 {
						// append(out, frontier...) copies frontier's
						// ELEMENTS; only their type decides aliasing.
						if s, ok := t.Underlying().(*types.Slice); ok {
							t = s.Elem()
						}
					}
					if refType(t) && carries(pass, tainted, arg) {
						return true // appending pooled references
					}
				}
				return false
			}
		}
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && pass.TypesInfo.Selections[sel] != nil {
			// A method on pooled scratch hands out pooled memory
			// (queryScratch.point returns the pooled MC buffer).
			return carries(pass, tainted, sel.X)
		}
		return false
	}
	return false
}

// isPoolSource matches the pool hand-out sites: the named accessors and
// raw (*sync.Pool).Get calls.
func isPoolSource(pass *framework.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "getScratch" || fun.Name == "getSeededRand"
	case *ast.SelectorExpr:
		if fun.Sel.Name != "Get" || pass.TypesInfo.Selections[fun] == nil {
			return false
		}
		t := pass.TypeOf(fun.X)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() == "Pool" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
		}
	case *ast.TypeAssertExpr:
		if inner, ok := fun.X.(*ast.CallExpr); ok {
			return isPoolSource(pass, inner)
		}
	}
	return false
}

// refType reports whether t can alias memory: pointers, slices, maps,
// channels, funcs, and interfaces carry references; basic values and
// by-value structs do not.
func refType(t types.Type) bool {
	if t == nil {
		return true // be conservative when the checker recorded no type
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}
