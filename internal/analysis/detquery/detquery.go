// Package detquery enforces query-path determinism: range, NN, and scan
// results must be reproducible run-to-run given the same tree and the
// same query seed, because the probability-threshold tests and the
// cross-backend equivalence harness compare exact result sets. Wall
// clocks, the globally-seeded math/rand functions, and Go's randomized
// map iteration order all smuggle nondeterminism into that path.
//
// Seeded generators are the sanctioned alternative and stay legal:
// rand.New(rand.NewSource(seed)) pins the MC sampling sequence.
package detquery

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer flags nondeterminism on the deterministic query path.
var Analyzer = &framework.Analyzer{
	Name: "detquery",
	Doc: "flag time.Now, globally-seeded math/rand calls, and map iteration " +
		"in deterministic query-path files (core query/NN/scan)",
	Run: run,
}

// queryFiles are the deterministic query-path files inside
// repro/internal/core. Fixture packages are checked file-by-file too,
// but every fixture file qualifies.
var queryFiles = map[string]bool{
	"query.go": true,
	"nn.go":    true,
	"scan.go":  true,
}

// seededCtors are the math/rand functions that construct or feed seeded
// generators rather than consuming global state.
var seededCtors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func run(pass *framework.Pass) error {
	inRepro := strings.HasPrefix(pass.Pkg.Path(), "repro/")
	if inRepro && pass.Pkg.Path() != "repro/internal/core" {
		return nil
	}
	for _, f := range pass.Files {
		if inRepro && !queryFiles[filepath.Base(pass.Fset.Position(f.Pos()).Filename)] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(),
							"map iteration on the deterministic query path: Go randomizes range order; sort the keys or use a slice")
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.ObjectOf(id).(*types.PkgName)
	if !ok {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		if sel.Sel.Name == "Now" {
			pass.Reportf(call.Pos(),
				"time.Now on the deterministic query path: results must not depend on the wall clock")
		}
	case "math/rand", "math/rand/v2":
		if !seededCtors[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"globally-seeded rand.%s on the deterministic query path: use the pooled seeded generator (getSeededRand) instead",
				sel.Sel.Name)
		}
	}
}
