// Package detfix exercises the detquery analyzer: the query path must
// not read wall clocks, global rand state, or map iteration order.
package detfix

import (
	"math/rand"
	"sort"
	"time"
)

type tree struct {
	pages map[uint32][]byte
}

// scanPages iterates a map directly: result order is randomized per run.
func (t *tree) scanPages() int {
	n := 0
	for range t.pages { // want `map iteration on the deterministic query path`
		n++
	}
	return n
}

// sortedScan re-establishes a deterministic order; the waiver documents
// why the raw iteration underneath is safe.
func (t *tree) sortedScan() []uint32 {
	keys := make([]uint32, 0, len(t.pages))
	//ulint:ignore detquery order is re-established by the sort below
	for id := range t.pages {
		keys = append(keys, id)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}

// sample draws from the globally seeded generator: unreproducible.
func sample() float64 {
	return rand.Float64() // want `globally-seeded rand\.Float64 on the deterministic query path`
}

// seededSample pins the sequence: New/NewSource are sanctioned ctors,
// and methods on the resulting *rand.Rand are not package-level calls.
func seededSample(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// stamp reads the wall clock into the result.
func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now on the deterministic query path`
}

// elapsed measures a duration for stats: time.Since is not flagged.
func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
