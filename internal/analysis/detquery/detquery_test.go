package detquery_test

import (
	"testing"

	"repro/internal/analysis/detquery"
	"repro/internal/analysis/framework"
)

func TestDetquery(t *testing.T) {
	framework.RunFixture(t, detquery.Analyzer, "testdata/detquery")
}
