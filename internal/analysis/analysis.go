// Package analysis registers the ulint analyzer suite: five
// project-specific invariant checkers that mechanically enforce the
// disciplines this codebase accumulated PR by PR — copy-on-write page
// immutability (PR 5), scratch pooling (PR 7), context plumbing (PR 4),
// typed errors (PR 8), and query-path determinism (PR 1).
package analysis

import (
	"repro/internal/analysis/cowwrite"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/detquery"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/poolescape"
	"repro/internal/analysis/typederr"
)

// All returns every ulint analyzer in stable (alphabetical) order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		cowwrite.Analyzer,
		ctxflow.Analyzer,
		detquery.Analyzer,
		poolescape.Analyzer,
		typederr.Analyzer,
	}
}
