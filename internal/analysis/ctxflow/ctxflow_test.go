package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/framework"
)

func TestCtxflow(t *testing.T) {
	framework.RunFixture(t, ctxflow.Analyzer, "testdata/ctxflow")
}
