// Package ctxfix exercises the ctxflow analyzer: contexts must be
// threaded, not dropped or re-minted.
package ctxfix

import "context"

type store struct{}

// Read is the legacy ctx-less accessor.
func (s *store) Read(id uint32) error { return nil }

// ReadCtx is its cancellable sibling.
func (s *store) ReadCtx(_ context.Context, id uint32) error { return nil }

func fetch(id uint32) error { return nil }

func fetchCtx(_ context.Context, id uint32) error { return nil }

// search has a ctx in hand but calls the ctx-less method anyway.
func search(ctx context.Context, s *store) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return s.Read(7) // want `store\.Read drops the context in search: a ReadCtx variant exists`
}

// drive drops the ctx on the package-level function call.
func drive(ctx context.Context, s *store) error {
	if err := fetchCtx(ctx, 2); err != nil {
		return err
	}
	return fetch(3) // want `fetch drops the context in drive: a fetchCtx variant exists`
}

// threaded is the compliant counterpart of search.
func threaded(ctx context.Context, s *store) error {
	return s.ReadCtx(ctx, 7)
}

// ignored takes a ctx and never reads it: cancellation silently dies here.
func ignored(ctx context.Context) error { // want `context parameter ctx is never used in ignored`
	return nil
}

// discarded documents the drop with the blank identifier: not flagged.
func discarded(_ context.Context) error { return nil }

// openSession mints a root context in library code.
func openSession(s *store) error {
	ctx := context.Background() // want `context\.Background\(\) in library code \(openSession\)`
	return s.ReadCtx(ctx, 1)
}

// todoSession does the same with TODO.
func todoSession(s *store) error {
	return s.ReadCtx(context.TODO(), 1) // want `context\.TODO\(\) in library code \(todoSession\)`
}

// compat is the one blessed Background: the nil-guard shim for legacy
// callers.
func compat(ctx context.Context, s *store) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return s.ReadCtx(ctx, 1)
}

// legacy shows the waiver for a documented non-cancellable entry point.
func legacy(s *store) error {
	//ulint:ignore ctxflow fixture exercises the waiver path
	return s.ReadCtx(context.Background(), 1)
}
