// Package ctxflow enforces the cancellation-plumbing discipline from
// the PR 4 context-first redesign: once a query or maintenance path accepts a
// context.Context it must actually thread it — calling the ctx-less
// sibling of a *Ctx API, or ignoring the parameter entirely, silently
// severs cancellation for every caller above. It also bans fresh
// context.Background()/context.TODO() roots in library code: a library
// that mints its own root context cannot be cancelled from outside.
//
// Three rules:
//
//  1. context.Background()/context.TODO() is flagged in library
//     packages, except inside the canonical nil-guard
//     `if ctx == nil { ctx = context.Background() }` (the documented
//     compatibility shim for legacy callers).
//  2. Inside a function that has a context.Context parameter, a call to
//     F(...) without a ctx argument is flagged when an FCtx sibling
//     (same package for functions, same method set for methods) exists.
//  3. A named, non-underscore context.Context parameter that the body
//     never reads is flagged.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer flags broken context propagation on the query path.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc: "flag context.Background()/TODO() in library code, calls to ctx-less " +
		"siblings of *Ctx APIs from ctx-bearing functions, and ignored " +
		"context parameters",
	Run: run,
}

// exemptPrefixes carves out binaries, examples, and the experiment
// harness: these are program roots, where minting context.Background()
// is exactly right.
var exemptPrefixes = []string{
	"repro/cmd/",
	"repro/examples/",
	"repro/internal/experiments",
}

func run(pass *framework.Pass) error {
	path := pass.Pkg.Path()
	if path == "repro" {
		return nil
	}
	if strings.HasPrefix(path, "repro/") {
		for _, p := range exemptPrefixes {
			if strings.HasPrefix(path, p) {
				return nil
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRoots(pass, fd)
			if ctxParam := contextParam(pass, fd); ctxParam != nil {
				checkSiblings(pass, fd)
				checkUnused(pass, fd, ctxParam)
			}
		}
	}
	return nil
}

// checkRoots flags context.Background()/TODO() outside the nil-guard.
func checkRoots(pass *framework.Pass, fd *ast.FuncDecl) {
	guarded := nilGuardCalls(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || guarded[call] {
			return true
		}
		name := contextRootCall(pass, call)
		if name == "" {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s() in library code (%s): minting a root context here severs caller cancellation; accept a ctx or add the nil-guard shim",
			name, fd.Name.Name)
		return true
	})
}

// nilGuardCalls collects the context.Background()/TODO() calls that
// appear as `ctx = context.Background()` inside an `if ctx == nil`
// block — the one blessed construction.
func nilGuardCalls(pass *framework.Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	guarded := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !isNilCheck(pass, ifs.Cond) {
			return true
		}
		for _, st := range ifs.Body.List {
			as, ok := st.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok && contextRootCall(pass, call) != "" {
				guarded[call] = true
			}
		}
		return true
	})
	return guarded
}

// isNilCheck matches `x == nil` / `nil == x` where x is a
// context.Context.
func isNilCheck(pass *framework.Pass, cond ast.Expr) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op.String() != "==" {
		return false
	}
	x, y := be.X, be.Y
	if isNilIdent(y) {
		return isContextType(pass.TypeOf(x))
	}
	if isNilIdent(x) {
		return isContextType(pass.TypeOf(y))
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// contextRootCall returns "Background" or "TODO" when call is
// context.Background() or context.TODO(), else "".
func contextRootCall(pass *framework.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.ObjectOf(id).(*types.PkgName); ok && pn.Imported().Path() == "context" {
		return sel.Sel.Name
	}
	return ""
}

// contextParam returns the first context.Context parameter object of fd,
// or nil when fd takes none.
func contextParam(pass *framework.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		if !isContextType(pass.TypeOf(field.Type)) {
			continue
		}
		if len(field.Names) == 0 {
			return nil // anonymous ctx: explicitly discarded
		}
		return pass.ObjectOf(field.Names[0])
	}
	return nil
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkSiblings flags calls that drop the context when a *Ctx sibling
// of the callee exists.
func checkSiblings(pass *framework.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || callPassesContext(pass, call) {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			obj := pass.ObjectOf(fun)
			f, ok := obj.(*types.Func)
			if !ok || strings.HasSuffix(f.Name(), "Ctx") {
				return true
			}
			if f.Pkg() != nil && f.Pkg().Scope().Lookup(f.Name()+"Ctx") != nil {
				pass.Reportf(call.Pos(),
					"%s drops the context in %s: a %sCtx variant exists; call it with the ctx in hand",
					f.Name(), fd.Name.Name, f.Name())
			}
		case *ast.SelectorExpr:
			selInfo := pass.TypesInfo.Selections[fun]
			if selInfo == nil || strings.HasSuffix(fun.Sel.Name, "Ctx") {
				return true
			}
			recv := selInfo.Recv()
			sib, _, _ := types.LookupFieldOrMethod(recv, true, pass.Pkg, fun.Sel.Name+"Ctx")
			if _, ok := sib.(*types.Func); ok {
				pass.Reportf(call.Pos(),
					"%s.%s drops the context in %s: a %sCtx variant exists; call it with the ctx in hand",
					typeName(recv), fun.Sel.Name, fd.Name.Name, fun.Sel.Name)
			}
		}
		return true
	})
}

// callPassesContext reports whether any argument of call has context
// type — if so, the caller is threading a ctx and rule 2 is satisfied.
func callPassesContext(pass *framework.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isContextType(pass.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// checkUnused flags a named ctx parameter the body never mentions.
func checkUnused(pass *framework.Pass, fd *ast.FuncDecl, ctxParam types.Object) {
	if ctxParam.Name() == "_" {
		return
	}
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == ctxParam {
			used = true
			return false
		}
		return !used
	})
	if !used {
		pass.Reportf(ctxParam.Pos(),
			"context parameter %s is never used in %s: either thread it into the calls below or rename it _ to document the drop",
			ctxParam.Name(), fd.Name.Name)
	}
}

func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
