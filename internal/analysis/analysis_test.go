package analysis

import (
	"testing"

	"repro/internal/analysis/framework"
)

// TestRepoBaseline runs the full ulint suite over the whole repository
// and requires zero diagnostics: every invariant violation is either
// fixed or carries an explicit //ulint:ignore waiver with a reason.
// This is the same gate CI runs as `go run ./cmd/ulint ./...`.
func TestRepoBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline sweep rebuilds export data for the whole module; skipped in -short")
	}
	pkgs, err := framework.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader matched no packages")
	}
	for _, pkg := range pkgs {
		for _, a := range All() {
			diags, err := framework.RunAnalyzer(a, pkg)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s (%s)", pkg.Fset.Position(d.Pos), d.Message, a.Name)
			}
		}
	}
}

// TestAllStable pins the suite roster: names must be unique, sorted,
// and documented.
func TestAllStable(t *testing.T) {
	as := All()
	if len(as) != 5 {
		t.Fatalf("expected 5 analyzers, got %d", len(as))
	}
	for i, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %d is missing name, doc, or run", i)
		}
		if i > 0 && as[i-1].Name >= a.Name {
			t.Errorf("analyzers out of order: %s before %s", as[i-1].Name, a.Name)
		}
	}
}
