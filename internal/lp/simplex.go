// Package lp implements a dense two-phase simplex solver for small linear
// programs of the form
//
//	maximize    c·x
//	subject to  A x ≤ b,   x free
//
// It is the solver behind the conservative functional box (CFB) fitting of
// Section 4.4 of the U-tree paper, which casts the tightest linear
// over/under-approximation of a PCR family as linear programming and solves
// it with the classic Simplex method. Free variables are handled by the
// standard x = x⁺ − x⁻ split; infeasibility and unboundedness are detected
// and reported as errors.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Errors reported by Solve.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: objective is unbounded")
	ErrCycling    = errors.New("lp: iteration limit exceeded")
)

const eps = 1e-9

// Problem is max C·x subject to A x ≤ B with free (sign-unrestricted) x.
type Problem struct {
	C []float64
	A [][]float64
	B []float64
}

// Validate checks structural consistency of the problem.
func (p Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return fmt.Errorf("lp: empty objective")
	}
	if len(p.A) != len(p.B) {
		return fmt.Errorf("lp: %d constraint rows but %d bounds", len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	return nil
}

// Solve returns an optimal solution x and objective value. The solution is a
// vertex of the feasible polytope; ties between optimal vertices are broken
// arbitrarily.
func Solve(p Problem) (x []float64, value float64, err error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(p.C)
	m := len(p.A)
	if m == 0 {
		// No constraints: any nonzero objective direction is unbounded.
		for _, cj := range p.C {
			if cj != 0 {
				return nil, 0, ErrUnbounded
			}
		}
		return make([]float64, n), 0, nil
	}

	// Split free variables: x_j = u_j − v_j, u,v ≥ 0. Column layout:
	// [u_0..u_{n-1}, v_0..v_{n-1}, slack_0..slack_{m-1}, artificials...].
	nv := 2 * n
	cols := nv + m // before artificials
	t := newTableau(m, cols)
	art := make([]int, 0, m)
	for i := 0; i < m; i++ {
		bi := p.B[i]
		sign := 1.0
		if bi < 0 {
			// Normalize to a nonnegative RHS; the slack then enters with −1
			// and an artificial variable provides the starting basis.
			sign = -1.0
		}
		for j := 0; j < n; j++ {
			t.a[i][j] = sign * p.A[i][j]
			t.a[i][n+j] = -sign * p.A[i][j]
		}
		t.a[i][nv+i] = sign // slack
		t.rhs[i] = sign * bi
		if bi < 0 {
			art = append(art, i)
		} else {
			t.basis[i] = nv + i
		}
	}
	// Append artificial columns.
	for k, i := range art {
		col := cols + k
		t.grow(1)
		t.a[i][col] = 1
		t.basis[i] = col
	}
	nArt := len(art)
	total := cols + nArt

	if nArt > 0 {
		// Phase 1: maximize −Σ artificials.
		obj := make([]float64, total)
		for k := 0; k < nArt; k++ {
			obj[cols+k] = -1
		}
		if err := t.run(obj); err != nil {
			return nil, 0, err
		}
		if t.objective(obj) < -1e-7 {
			return nil, 0, ErrInfeasible
		}
		// Drive any lingering (degenerate, zero-valued) artificials out of
		// the basis so phase 2 never pivots on them.
		for i := 0; i < m; i++ {
			if t.basis[i] >= cols {
				pivoted := false
				for j := 0; j < cols; j++ {
					if math.Abs(t.a[i][j]) > eps {
						t.pivot(i, j)
						pivoted = true
						break
					}
				}
				if !pivoted {
					// Row is all zeros over real columns: redundant
					// constraint; leave the artificial basic at value 0.
					_ = pivoted
				}
			}
		}
		// Forbid artificial columns from re-entering by zeroing them.
		for i := 0; i < m; i++ {
			for k := 0; k < nArt; k++ {
				t.a[i][cols+k] = 0
			}
		}
	}

	// Phase 2: the real objective over the split variables.
	obj := make([]float64, total)
	for j := 0; j < n; j++ {
		obj[j] = p.C[j]
		obj[n+j] = -p.C[j]
	}
	if err := t.run(obj); err != nil {
		return nil, 0, err
	}

	sol := t.solution(total)
	x = make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = sol[j] - sol[n+j]
	}
	return x, t.objective(obj), nil
}

// tableau is a dense simplex tableau without an embedded objective row; the
// objective is passed to run/pricing explicitly, which keeps phase switching
// trivial.
type tableau struct {
	m     int
	a     [][]float64
	rhs   []float64
	basis []int
}

func newTableau(m, cols int) *tableau {
	t := &tableau{m: m, rhs: make([]float64, m), basis: make([]int, m)}
	t.a = make([][]float64, m)
	for i := range t.a {
		t.a[i] = make([]float64, cols)
	}
	for i := range t.basis {
		t.basis[i] = -1
	}
	return t
}

func (t *tableau) grow(extra int) {
	for i := range t.a {
		t.a[i] = append(t.a[i], make([]float64, extra)...)
	}
}

// reducedCost computes c_j − c_B·B⁻¹A_j for column j given objective c.
func (t *tableau) reducedCost(c []float64, j int) float64 {
	r := c[j]
	for i := 0; i < t.m; i++ {
		if b := t.basis[i]; b >= 0 && c[b] != 0 {
			r -= c[b] * t.a[i][j]
		}
	}
	return r
}

// objective evaluates c over the current basic solution.
func (t *tableau) objective(c []float64) float64 {
	var v float64
	for i := 0; i < t.m; i++ {
		if b := t.basis[i]; b >= 0 {
			v += c[b] * t.rhs[i]
		}
	}
	return v
}

// solution extracts the current basic solution over `total` columns.
func (t *tableau) solution(total int) []float64 {
	x := make([]float64, total)
	for i := 0; i < t.m; i++ {
		if b := t.basis[i]; b >= 0 {
			x[b] = t.rhs[i]
		}
	}
	return x
}

// pivot performs a standard pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	inv := 1 / p
	for j := range t.a[row] {
		t.a[row][j] *= inv
	}
	t.rhs[row] *= inv
	t.a[row][col] = 1 // kill residual roundoff
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := range t.a[i] {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.a[i][col] = 0
		t.rhs[i] -= f * t.rhs[row]
	}
	t.basis[row] = col
}

// run optimizes objective c (maximization) with Bland's rule, which cannot
// cycle; problem sizes here are tiny so the simplicity/robustness trade is
// the right one.
func (t *tableau) run(c []float64) error {
	if t.m == 0 {
		return nil
	}
	cols := len(t.a[0])
	for iter := 0; iter < 10000; iter++ {
		// Bland: entering = lowest-index column with positive reduced cost.
		enter := -1
		for j := 0; j < cols; j++ {
			if t.reducedCost(c, j) > eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		// Ratio test; Bland tie-break on lowest basis index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > eps {
				ratio := t.rhs[i] / t.a[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return ErrUnbounded
		}
		t.pivot(leave, enter)
	}
	return ErrCycling
}
