package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimpleMax(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4; 2y ≤ 12; 3x + 2y ≤ 18 → x=2, y=6, z=36.
	p := Problem{
		C: []float64{3, 5},
		A: [][]float64{{1, 0}, {0, 2}, {3, 2}},
		B: []float64{4, 12, 18},
	}
	x, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(v, 36, 1e-7) || !approx(x[0], 2, 1e-7) || !approx(x[1], 6, 1e-7) {
		t.Fatalf("x=%v v=%g, want (2,6) 36", x, v)
	}
}

func TestNegativeRHSRequiresPhase1(t *testing.T) {
	// max -x s.t. -x ≤ -3 (i.e. x ≥ 3); x ≤ 10 → x=3, z=-3.
	p := Problem{
		C: []float64{-1},
		A: [][]float64{{-1}, {1}},
		B: []float64{-3, 10},
	}
	x, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 3, 1e-7) || !approx(v, -3, 1e-7) {
		t.Fatalf("x=%v v=%g, want x=3 v=-3", x, v)
	}
}

func TestFreeVariableGoesNegative(t *testing.T) {
	// max -x s.t. -x ≤ 5 (x ≥ -5) → x=-5, z=5.
	p := Problem{
		C: []float64{-1},
		A: [][]float64{{-1}},
		B: []float64{5},
	}
	x, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], -5, 1e-7) || !approx(v, 5, 1e-7) {
		t.Fatalf("x=%v v=%g, want x=-5 v=5", x, v)
	}
}

func TestInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 3.
	p := Problem{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{1, -3},
	}
	_, _, err := Solve(p)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// max x s.t. -x ≤ 0 (x ≥ 0 only).
	p := Problem{
		C: []float64{1},
		A: [][]float64{{-1}},
		B: []float64{0},
	}
	_, _, err := Solve(p)
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestEqualityViaTwoInequalities(t *testing.T) {
	// max x+y s.t. x+y ≤ 4, -(x+y) ≤ -4 (x+y=4), x ≤ 3, y ≤ 3 → z=4.
	p := Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 1}, {-1, -1}, {1, 0}, {0, 1}},
		B: []float64{4, -4, 3, 3},
	}
	_, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(v, 4, 1e-7) {
		t.Fatalf("v=%g, want 4", v)
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// A classically degenerate LP (Beale-like); Bland's rule must terminate.
	p := Problem{
		C: []float64{0.75, -150, 0.02, -6},
		A: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
			{-1, 0, 0, 0}, // x1 ≥ 0
			{0, -1, 0, 0}, // x2 ≥ 0
			{0, 0, -1, 0},
			{0, 0, 0, -1},
		},
		B: []float64{0, 0, 1, 0, 0, 0, 0},
	}
	_, v, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(v, 0.05, 1e-7) {
		t.Fatalf("Beale optimum = %g, want 0.05", v)
	}
}

func TestValidateErrors(t *testing.T) {
	if _, _, err := Solve(Problem{}); err == nil {
		t.Error("empty problem should error")
	}
	if _, _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); err == nil {
		t.Error("ragged row should error")
	}
	if _, _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}}); err == nil {
		t.Error("row/bound mismatch should error")
	}
}

func TestNoConstraintsUnbounded(t *testing.T) {
	p := Problem{C: []float64{1}, A: nil, B: nil}
	_, _, err := Solve(p)
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

// TestAgainstGridBruteForce cross-checks the simplex against exhaustive
// vertex enumeration on random bounded 2-variable problems.
func TestAgainstGridBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		// Box constraints keep it bounded and feasible: |x|,|y| ≤ 10.
		a := [][]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
		b := []float64{10, 10, 10, 10}
		// Add a couple of random half-planes through large offsets so the
		// origin (a feasible point) stays feasible.
		for k := 0; k < 2; k++ {
			a = append(a, []float64{rng.NormFloat64(), rng.NormFloat64()})
			b = append(b, math.Abs(rng.NormFloat64())*10+1)
		}
		c := []float64{rng.NormFloat64(), rng.NormFloat64()}
		p := Problem{C: c, A: a, B: b}
		x, v, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Feasibility check.
		for i, row := range a {
			lhs := row[0]*x[0] + row[1]*x[1]
			if lhs > b[i]+1e-6 {
				t.Fatalf("trial %d: constraint %d violated: %g > %g", trial, i, lhs, b[i])
			}
		}
		// Optimality via dense grid (resolution 0.05 → tolerance scaled).
		best := math.Inf(-1)
		for xi := -10.0; xi <= 10.0; xi += 0.05 {
			for yi := -10.0; yi <= 10.0; yi += 0.05 {
				ok := true
				for i, row := range a {
					if row[0]*xi+row[1]*yi > b[i]+1e-9 {
						ok = false
						break
					}
				}
				if ok {
					if val := c[0]*xi + c[1]*yi; val > best {
						best = val
					}
				}
			}
		}
		if v < best-0.05*(math.Abs(c[0])+math.Abs(c[1]))-1e-6 {
			t.Fatalf("trial %d: simplex %g below grid optimum %g (c=%v)", trial, v, best, c)
		}
	}
}

// TestCFBShapedProblem mirrors the exact LP structure used for cfb_out
// fitting: maximize m·α − P·β subject to α − β·p_j ≤ c_j.
func TestCFBShapedProblem(t *testing.T) {
	ps := []float64{0, 0.125, 0.25, 0.375, 0.5}
	cs := []float64{-10, -8, -5, -3, -1} // pcr lows, increasing with p
	m := float64(len(ps))
	var P float64
	for _, p := range ps {
		P += p
	}
	a := make([][]float64, len(ps))
	b := make([]float64, len(ps))
	for j := range ps {
		a[j] = []float64{1, -ps[j]}
		b[j] = cs[j]
	}
	x, _, err := Solve(Problem{C: []float64{m, -P}, A: a, B: b})
	if err != nil {
		t.Fatal(err)
	}
	alpha, beta := x[0], x[1]
	// Solution must satisfy every covering constraint.
	for j := range ps {
		if alpha-beta*ps[j] > cs[j]+1e-7 {
			t.Fatalf("cover violated at p=%g: %g > %g", ps[j], alpha-beta*ps[j], cs[j])
		}
	}
	// Exact oracle: a bounded 2-variable LP attains its optimum at the
	// intersection of two active constraints; enumerate all pairs.
	best := math.Inf(-1)
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			// α − β·p_i = c_i and α − β·p_j = c_j.
			if ps[i] == ps[j] {
				continue
			}
			bt := (cs[i] - cs[j]) / (ps[j] - ps[i])
			al := cs[i] + bt*ps[i]
			feasible := true
			for k := range ps {
				if al-bt*ps[k] > cs[k]+1e-9 {
					feasible = false
					break
				}
			}
			if feasible {
				if obj := m*al - P*bt; obj > best {
					best = obj
				}
			}
		}
	}
	objSolve := m*alpha - P*beta
	if math.Abs(objSolve-best) > 1e-6 {
		t.Fatalf("simplex objective %g, active-set oracle %g", objSolve, best)
	}
}
