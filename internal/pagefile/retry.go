package pagefile

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds RetryStore's retry loop. The zero value is filled
// with defaults by NewRetryStore: 3 total attempts, 100µs base backoff,
// 10ms cap.
type RetryPolicy struct {
	// MaxAttempts is the total tries per operation, including the first;
	// values below 2 disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each subsequent
	// retry doubles it, capped at MaxDelay. The actual sleep is jittered
	// uniformly over [d/2, d) to decorrelate retry storms.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed fixes the jitter sequence for reproducible schedules.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Microsecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 10 * time.Millisecond
	}
	return p
}

// RetryStore wraps a Store and retries operations that fail with a
// transient error (IsTransient), sleeping a jittered exponential backoff
// between attempts. Permanent errors — checksum mismatches, out-of-range
// pages, real I/O failures — surface immediately: retrying them wastes
// latency and, for corruption, returns the same bytes anyway.
//
// It sits UNDER the BufferPool and VersionedStore in the stack (wrapping
// the latency/chaos/base stores), so a read that needed three attempts is
// still exactly one buffer-pool miss and one page-budget charge: retries
// are a storage-latency phenomenon, not extra logical I/O. Each retry
// increments both the wrapper's own counter and the Retries field of the
// inner store's Stats, where experiment harnesses already look.
type RetryStore struct {
	Inner Store
	pol   RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand

	retries atomic.Int64
	ctx     atomic.Pointer[context.Context]
}

// NewRetryStore wraps inner with the policy (zero fields defaulted).
func NewRetryStore(inner Store, pol RetryPolicy) *RetryStore {
	pol = pol.withDefaults()
	return &RetryStore{Inner: inner, pol: pol, rng: rand.New(rand.NewSource(pol.Seed))}
}

// Retries reports the total retry attempts performed (not counting each
// operation's first try).
func (rs *RetryStore) Retries() int64 { return rs.retries.Load() }

// BindContext makes backoff sleeps abort when ctx is cancelled, returning
// an unbind func. The binding is store-wide and last-writer-wins — it is
// a shutdown hook (Close binds a cancelled context so no goroutine sits
// out a backoff during teardown), not a per-query channel; per-query
// cancellation already interrupts queries between page fetches.
func (rs *RetryStore) BindContext(ctx context.Context) (unbind func()) {
	rs.ctx.Store(&ctx)
	return func() { rs.ctx.CompareAndSwap(&ctx, nil) }
}

// backoff returns the jittered sleep before retry attempt i (0-based).
func (rs *RetryStore) backoff(i int) time.Duration {
	d := rs.pol.BaseDelay << i
	if d > rs.pol.MaxDelay || d <= 0 {
		d = rs.pol.MaxDelay
	}
	rs.mu.Lock()
	j := d/2 + time.Duration(rs.rng.Int63n(int64(d/2)+1))
	rs.mu.Unlock()
	return j
}

// sleep waits out the backoff, or returns false early if the bound
// context is cancelled.
func (rs *RetryStore) sleep(d time.Duration) bool {
	ctxp := rs.ctx.Load()
	if ctxp == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-(*ctxp).Done():
		return false
	}
}

// do runs op with the retry loop.
func (rs *RetryStore) do(op func() error) error {
	var err error
	for i := 0; ; i++ {
		err = op()
		if err == nil || !IsTransient(err) || i+1 >= rs.pol.MaxAttempts {
			return err
		}
		rs.retries.Add(1)
		rs.Inner.Stats().Retries.Add(1)
		if !rs.sleep(rs.backoff(i)) {
			return err
		}
	}
}

func (rs *RetryStore) Alloc() (PageID, error) {
	var id PageID
	err := rs.do(func() error {
		var e error
		id, e = rs.Inner.Alloc()
		return e
	})
	return id, err
}

func (rs *RetryStore) Read(id PageID, buf []byte) error {
	return rs.do(func() error { return rs.Inner.Read(id, buf) })
}

func (rs *RetryStore) Write(id PageID, buf []byte) error {
	return rs.do(func() error { return rs.Inner.Write(id, buf) })
}

func (rs *RetryStore) Free(id PageID) error {
	return rs.do(func() error { return rs.Inner.Free(id) })
}

func (rs *RetryStore) NumPages() int { return rs.Inner.NumPages() }
func (rs *RetryStore) Stats() *Stats { return rs.Inner.Stats() }

// VerifyPage forwards the scrubber's integrity probe; verification
// failures are permanent by construction, so no retry loop applies.
func (rs *RetryStore) VerifyPage(id PageID) error {
	if v, ok := rs.Inner.(PageVerifier); ok {
		return v.VerifyPage(id)
	}
	return nil
}
