package pagefile

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func testStores(t *testing.T) map[string]Store {
	t.Helper()
	dir := t.TempDir()
	fs, err := CreateFileStore(filepath.Join(dir, "store.pg"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return map[string]Store{
		"mem":  NewMemStore(),
		"file": fs,
	}
}

func TestStoreReadAfterWrite(t *testing.T) {
	for name, s := range testStores(t) {
		id, err := s.Alloc()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		in := make([]byte, PageSize)
		for i := range in {
			in[i] = byte(i * 7)
		}
		if err := s.Write(id, in); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := make([]byte, PageSize)
		if err := s.Read(id, out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(in, out) {
			t.Fatalf("%s: read != write", name)
		}
	}
}

func TestStoreAllocIsZeroed(t *testing.T) {
	for name, s := range testStores(t) {
		id, _ := s.Alloc()
		junk := make([]byte, PageSize)
		for i := range junk {
			junk[i] = 0xAB
		}
		s.Write(id, junk)
		if err := s.Free(id); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		id2, _ := s.Alloc() // should reuse the freed page, zeroed
		out := make([]byte, PageSize)
		if err := s.Read(id2, out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, b := range out {
			if b != 0 {
				t.Fatalf("%s: recycled page not zeroed at %d", name, i)
			}
		}
	}
}

func TestStoreErrors(t *testing.T) {
	for name, s := range testStores(t) {
		buf := make([]byte, PageSize)
		if err := s.Read(PageID(9999), buf); err == nil {
			t.Errorf("%s: read of unallocated page succeeded", name)
		}
		if err := s.Write(PageID(9999), buf); err == nil {
			t.Errorf("%s: write of unallocated page succeeded", name)
		}
		if err := s.Free(PageID(9999)); err == nil {
			t.Errorf("%s: free of unallocated page succeeded", name)
		}
		id, _ := s.Alloc()
		if err := s.Read(id, make([]byte, 10)); !errors.Is(err, ErrBadLength) {
			t.Errorf("%s: short buffer accepted: %v", name, err)
		}
	}
}

func TestMemStoreDoubleFree(t *testing.T) {
	s := NewMemStore()
	id, _ := s.Alloc()
	if err := s.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(id); !errors.Is(err, ErrPageFreed) {
		t.Fatalf("double free: %v", err)
	}
	if err := s.Read(id, make([]byte, PageSize)); !errors.Is(err, ErrPageFreed) {
		t.Fatalf("read of freed page: %v", err)
	}
}

func TestStatsCounting(t *testing.T) {
	s := NewMemStore()
	id, _ := s.Alloc()
	buf := make([]byte, PageSize)
	s.Write(id, buf)
	s.Read(id, buf)
	s.Read(id, buf)
	r, w, a, f := s.Stats().Snapshot()
	if r != 2 || w != 1 || a != 1 || f != 0 {
		t.Fatalf("stats = %d/%d/%d/%d, want 2/1/1/0", r, w, a, f)
	}
	s.Stats().Reset()
	r, w, a, f = s.Stats().Snapshot()
	if r+w+a+f != 0 {
		t.Fatal("reset did not zero stats")
	}
}

func TestFileStorePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "persist.pg")
	fs, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	id1, _ := fs.Alloc()
	id2, _ := fs.Alloc()
	in := make([]byte, PageSize)
	copy(in, []byte("hello page"))
	fs.Write(id1, in)
	fs.Free(id2)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	out := make([]byte, PageSize)
	if err := re.Read(id1, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatal("data lost across reopen")
	}
	// The freed page must be recycled before extending the file.
	id3, _ := re.Alloc()
	if id3 != id2 {
		t.Fatalf("free list not persisted: got %d, want %d", id3, id2)
	}
	if re.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", re.NumPages())
	}
}

func TestOpenFileStoreBadMagic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk.pg")
	if err := os.WriteFile(path, make([]byte, PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestBufferPoolReadThroughAndWriteBack(t *testing.T) {
	s := NewMemStore()
	bp := NewBufferPool(s, 2)
	id, _ := s.Alloc()
	in := make([]byte, PageSize)
	in[0] = 42
	if err := bp.Put(id, in); err != nil {
		t.Fatal(err)
	}
	// Dirty page visible through the pool before flush.
	got, err := bp.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatal("pool lost dirty write")
	}
	// Underlying store must see it after Flush.
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, PageSize)
	s.Read(id, out)
	if out[0] != 42 {
		t.Fatal("flush did not write back")
	}
}

func TestBufferPoolEviction(t *testing.T) {
	s := NewMemStore()
	bp := NewBufferPool(s, 2)
	ids := make([]PageID, 3)
	for i := range ids {
		ids[i], _ = s.Alloc()
		buf := make([]byte, PageSize)
		buf[0] = byte(i + 1)
		if err := bp.Put(ids[i], buf); err != nil {
			t.Fatal(err)
		}
	}
	// Pool holds 2 frames; inserting the 3rd evicted (and wrote back) the 1st.
	out := make([]byte, PageSize)
	s.Read(ids[0], out)
	if out[0] != 1 {
		t.Fatal("evicted dirty page not written back")
	}
	// Re-reading page 0 must still return correct data (read-through).
	got, err := bp.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("read-through after eviction broken")
	}
	if _, err := bp.Get(ids[0]); err != nil { // now cached: a hit
		t.Fatal(err)
	}
	hits, misses := bp.HitRate()
	if hits != 1 || misses != 1 {
		t.Fatalf("unexpected hit/miss counts: %d/%d, want 1/1", hits, misses)
	}
}

func TestBufferPoolInvalidate(t *testing.T) {
	s := NewMemStore()
	bp := NewBufferPool(s, 4)
	id, _ := s.Alloc()
	buf := make([]byte, PageSize)
	buf[0] = 7
	bp.Put(id, buf)
	bp.Invalidate(id)
	s.Free(id)
	// A fresh alloc may reuse the page; the pool must not serve stale bytes.
	id2, _ := s.Alloc()
	if id2 != id {
		t.Skip("allocator did not recycle; nothing to check")
	}
	got, err := bp.Get(id2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("pool served stale frame after invalidate")
	}
}

func TestDataFileAppendRead(t *testing.T) {
	s := NewMemStore()
	df := NewDataFile(s)
	recs := [][]byte{
		[]byte("alpha"),
		[]byte("beta-longer-record"),
		bytes.Repeat([]byte{0xCD}, 1000),
	}
	addrs := make([]DataAddr, len(recs))
	for i, r := range recs {
		a, err := df.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
	}
	// Appends are write-combined; reads go to the store, so flush first.
	if err := df.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		got, err := df.Read(a)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// Small records share a page.
	if addrs[0].Page != addrs[1].Page {
		t.Fatal("small records did not share a page")
	}
}

func TestDataFilePageOverflow(t *testing.T) {
	s := NewMemStore()
	df := NewDataFile(s)
	big := bytes.Repeat([]byte{1}, 1500)
	var pages []PageID
	for i := 0; i < 5; i++ {
		a, err := df.Append(big)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, a.Page)
	}
	// 1500-byte records: two fit per 4096-byte page, so 5 records → 3 pages.
	distinct := map[PageID]bool{}
	for _, p := range pages {
		distinct[p] = true
	}
	if len(distinct) != 3 {
		t.Fatalf("got %d pages, want 3 (layout: %v)", len(distinct), pages)
	}
}

func TestDataFileTooLarge(t *testing.T) {
	s := NewMemStore()
	df := NewDataFile(s)
	if _, err := df.Append(make([]byte, PageSize)); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
}

func TestDataFileDelete(t *testing.T) {
	s := NewMemStore()
	df := NewDataFile(s)
	a, _ := df.Append([]byte("doomed"))
	b, _ := df.Append([]byte("survivor"))
	if err := df.Delete(a); err != nil {
		t.Fatal(err)
	}
	if err := df.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := df.Read(a); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("deleted record read: %v", err)
	}
	got, err := df.Read(b)
	if err != nil || !bytes.Equal(got, []byte("survivor")) {
		t.Fatalf("sibling record damaged: %v %q", err, got)
	}
}

func TestDataFileReadPageGrouping(t *testing.T) {
	s := NewMemStore()
	df := NewDataFile(s)
	a1, _ := df.Append([]byte("one"))
	a2, _ := df.Append([]byte("two"))
	if a1.Page != a2.Page {
		t.Fatal("expected same page")
	}
	if err := df.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Stats().Reset()
	page, err := df.ReadPage(a1.Page)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RecordFromPage(page, a1.Slot)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RecordFromPage(page, a2.Slot)
	if err != nil {
		t.Fatal(err)
	}
	if string(r1) != "one" || string(r2) != "two" {
		t.Fatalf("grouped read mismatch: %q %q", r1, r2)
	}
	reads, _, _, _ := s.Stats().Snapshot()
	if reads != 1 {
		t.Fatalf("grouped fetch used %d reads, want 1", reads)
	}
}

func TestDataFileBadSlot(t *testing.T) {
	s := NewMemStore()
	df := NewDataFile(s)
	a, _ := df.Append([]byte("x"))
	if _, err := df.Read(DataAddr{Page: a.Page, Slot: 99}); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("err = %v, want ErrBadSlot", err)
	}
}

func TestDataFileManyRecordsStress(t *testing.T) {
	s := NewMemStore()
	df := NewDataFile(s)
	rng := rand.New(rand.NewSource(6))
	type kept struct {
		addr DataAddr
		data []byte
	}
	var all []kept
	for i := 0; i < 2000; i++ {
		rec := make([]byte, 10+rng.Intn(200))
		rng.Read(rec)
		a, err := df.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, kept{a, rec})
	}
	if err := df.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, k := range all {
		got, err := df.Read(k.addr)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, k.data) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

func TestFaultStoreInjection(t *testing.T) {
	inner := NewMemStore()
	fs := NewFaultStore(inner, 2)
	if _, err := fs.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Alloc(); !errors.Is(err, ErrInjected) {
		t.Fatalf("third op: %v, want ErrInjected", err)
	}
	buf := make([]byte, PageSize)
	if err := fs.Read(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after trip: %v", err)
	}
	fs.Arm(-1) // disable
	if err := fs.Read(0, buf); err != nil {
		t.Fatalf("disabled injector still failing: %v", err)
	}
}

func TestDataFileFaultPropagation(t *testing.T) {
	inner := NewMemStore()
	fs := NewFaultStore(inner, 0)
	df := NewDataFile(fs)
	if _, err := df.Append([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("append under fault: %v", err)
	}
}
