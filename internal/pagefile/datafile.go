package pagefile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// DataFile stores variable-length object-detail records (serialized
// uncertainty region + pdf parameters) in slotted pages. U-tree leaf
// entries keep a DataAddr; the refinement step groups candidates by page so
// each data page is read once per query — exactly the paper's "elements in
// S_can are first grouped by their associated disk addresses".
//
// Appends are write-combined: the current append page is cached in memory
// and mutated there, and Flush writes it to the store once — so a group
// commit of N inserts costs one data-page write, not N read-modify-writes.
// Reads (Read/ReadPage) always go to the store and never see the cache;
// the owner flushes before any read that must observe uncommitted appends
// (working-root queries) and before every commit, so snapshot readers —
// which run lock-free against committed pages — never race the cache.
type DataFile struct {
	mu      sync.Mutex
	store   Store
	current PageID // page still accepting appends; InvalidPage when none
	buf     []byte // cached copy of current; nil until first append needs it
	dirty   bool   // buf has mutations the store has not seen
}

// DataAddr is the disk address of one record.
type DataAddr struct {
	Page PageID
	Slot uint16
}

// Errors returned by DataFile.
var (
	ErrRecordTooLarge = errors.New("pagefile: record exceeds page capacity")
	ErrBadSlot        = errors.New("pagefile: slot out of range or deleted")
)

// Slotted page layout:
//
//	[0:2)  count  — number of slots
//	[2:4)  free   — offset of free space start
//	then per slot i: [4+4i : 4+4i+2) offset, [4+4i+2 : 4+4i+4) length
//	(length 0 marks a deleted record)
//	records grow upward from the slot directory's end.
const dataHeader = 4

// NewDataFile creates a data file on the given store.
func NewDataFile(store Store) *DataFile {
	return &DataFile{store: store, current: InvalidPage}
}

// OpenDataFileAt resumes appending to an existing data file whose last page
// is `last` (InvalidPage for none).
func OpenDataFileAt(store Store, last PageID) *DataFile {
	return &DataFile{store: store, current: last}
}

// CurrentPage exposes the append page (persisted by index headers).
func (df *DataFile) CurrentPage() PageID {
	df.mu.Lock()
	defer df.mu.Unlock()
	return df.current
}

// SetCurrent rewinds the append page and drops the append cache — the
// rollback path: a failed batch may have advanced current to a page the
// rollback then frees, and may have buffered appends that must not reach
// the store. The next Append re-reads the committed page bytes (every
// commit flushes first, so the store copy is the committed truth). Records
// a failed batch already flushed stay as unreferenced slots; later appends
// go after them (the slot directory lives in the page itself), so
// committed addresses never change.
func (df *DataFile) SetCurrent(id PageID) {
	df.mu.Lock()
	df.current = id
	df.buf = nil
	df.dirty = false
	df.mu.Unlock()
}

// Dirty reports whether the append cache holds unflushed mutations.
func (df *DataFile) Dirty() bool {
	df.mu.Lock()
	defer df.mu.Unlock()
	return df.dirty
}

// Flush writes the cached append page through to the store if it has
// unflushed mutations. The owner calls it before commit (durability) and
// before working-root queries (visibility); snapshot reads never need it.
func (df *DataFile) Flush() error {
	df.mu.Lock()
	defer df.mu.Unlock()
	return df.flushLocked()
}

func (df *DataFile) flushLocked() error {
	if !df.dirty {
		return nil
	}
	markInPlace(df.store, df.current)
	if err := df.store.Write(df.current, df.buf); err != nil {
		return err
	}
	df.dirty = false
	return nil
}

// inPlaceMarker is implemented by VersionedStore: slotted data pages are
// legitimately written in place (appends never move committed records,
// tombstones only zero a slot length), so the data file exempts its pages
// from the copy-on-write check.
type inPlaceMarker interface{ MarkInPlace(id PageID) }

func markInPlace(s Store, id PageID) {
	if m, ok := s.(inPlaceMarker); ok {
		m.MarkInPlace(id)
	}
}

// Append stores rec in the in-memory append cache and returns its address;
// the bytes reach the store at the next Flush. Records larger than a
// page's usable space are rejected.
func (df *DataFile) Append(rec []byte) (DataAddr, error) {
	need := len(rec) + 4 // record + slot entry
	if dataHeader+need > PageSize {
		return DataAddr{}, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	df.mu.Lock()
	defer df.mu.Unlock()
	if df.current != InvalidPage {
		if df.buf == nil {
			buf := make([]byte, PageSize)
			if err := df.store.Read(df.current, buf); err != nil {
				return DataAddr{}, err
			}
			df.buf = buf
		}
		if addr, ok := df.tryAppend(rec); ok {
			return addr, nil
		}
		// Current page is full: flush it before moving on, or its last
		// buffered records would be lost when the cache moves to a new page.
		if err := df.flushLocked(); err != nil {
			return DataAddr{}, err
		}
	}
	id, err := df.store.Alloc()
	if err != nil {
		return DataAddr{}, err
	}
	buf := make([]byte, PageSize)
	binary.LittleEndian.PutUint16(buf[2:], PageSize) // free space grows down
	df.current = id
	df.buf = buf
	addr, ok := df.tryAppend(rec)
	if !ok {
		return DataAddr{}, ErrRecordTooLarge
	}
	return addr, nil
}

// tryAppend places rec in the cached page if it fits; caller holds df.mu.
func (df *DataFile) tryAppend(rec []byte) (DataAddr, bool) {
	buf := df.buf
	count := int(binary.LittleEndian.Uint16(buf[0:]))
	free := int(binary.LittleEndian.Uint16(buf[2:]))
	if free == 0 {
		free = PageSize
	}
	dirEnd := dataHeader + 4*(count+1)
	if free-len(rec) < dirEnd {
		return DataAddr{}, false
	}
	off := free - len(rec)
	copy(buf[off:], rec)
	binary.LittleEndian.PutUint16(buf[dataHeader+4*count:], uint16(off))
	binary.LittleEndian.PutUint16(buf[dataHeader+4*count+2:], uint16(len(rec)))
	binary.LittleEndian.PutUint16(buf[0:], uint16(count+1))
	binary.LittleEndian.PutUint16(buf[2:], uint16(off))
	df.dirty = true
	return DataAddr{Page: df.current, Slot: uint16(count)}, true
}

// Read returns one record.
func (df *DataFile) Read(addr DataAddr) ([]byte, error) {
	buf := make([]byte, PageSize)
	if err := df.store.Read(addr.Page, buf); err != nil {
		return nil, err
	}
	return recordFromPage(buf, addr.Slot)
}

// ReadPage returns the raw page for addr.Page in one I/O; use
// RecordFromPage to extract multiple candidates that share the page.
func (df *DataFile) ReadPage(id PageID) ([]byte, error) {
	buf := make([]byte, PageSize)
	if err := df.store.Read(id, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// RecordFromPage extracts slot `slot` from a page previously returned by
// ReadPage, without further I/O.
func RecordFromPage(page []byte, slot uint16) ([]byte, error) {
	return recordFromPage(page, slot)
}

func recordFromPage(buf []byte, slot uint16) ([]byte, error) {
	count := binary.LittleEndian.Uint16(buf[0:])
	if slot >= count {
		return nil, fmt.Errorf("%w: slot %d of %d", ErrBadSlot, slot, count)
	}
	off := int(binary.LittleEndian.Uint16(buf[dataHeader+4*int(slot):]))
	ln := int(binary.LittleEndian.Uint16(buf[dataHeader+4*int(slot)+2:]))
	if ln == 0 {
		return nil, fmt.Errorf("%w: slot %d deleted", ErrBadSlot, slot)
	}
	if off+ln > PageSize {
		return nil, fmt.Errorf("pagefile: corrupt slot %d (off=%d len=%d)", slot, off, ln)
	}
	out := make([]byte, ln)
	copy(out, buf[off:off+ln])
	return out, nil
}

// Delete tombstones one record; see DeleteBatch.
func (df *DataFile) Delete(addr DataAddr) error {
	return df.DeleteBatch(addr.Page, []uint16{addr.Slot})
}

// DeleteBatch tombstones a set of records on one page in a single
// read-modify-write (record space is not reclaimed; compaction is a
// rebuild concern, as in the paper where object details are write-once).
// This is the VersionedStore tombstoner: an epoch's deferred deletes
// arrive here coalesced per page, and df.mu makes it safe to run from the
// background reclaimer while the writer appends. Tombstones landing in the
// cached append page become durable at the next Flush — acceptable,
// because a tombstone's record is already unreferenced by the index.
func (df *DataFile) DeleteBatch(page PageID, slots []uint16) error {
	df.mu.Lock()
	defer df.mu.Unlock()
	buf := df.buf
	cached := page == df.current && buf != nil
	if !cached {
		buf = make([]byte, PageSize)
		if err := df.store.Read(page, buf); err != nil {
			return err
		}
	}
	count := binary.LittleEndian.Uint16(buf[0:])
	for _, slot := range slots {
		if slot >= count {
			return fmt.Errorf("%w: slot %d of %d", ErrBadSlot, slot, count)
		}
		binary.LittleEndian.PutUint16(buf[dataHeader+4*int(slot)+2:], 0)
	}
	if cached {
		df.dirty = true
		return nil
	}
	markInPlace(df.store, page)
	return df.store.Write(page, buf)
}
