package pagefile

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// DataFile stores variable-length object-detail records (serialized
// uncertainty region + pdf parameters) in slotted pages. U-tree leaf
// entries keep a DataAddr; the refinement step groups candidates by page so
// each data page is read once per query — exactly the paper's "elements in
// S_can are first grouped by their associated disk addresses".
type DataFile struct {
	store   Store
	current PageID // page still accepting appends; InvalidPage when none
}

// DataAddr is the disk address of one record.
type DataAddr struct {
	Page PageID
	Slot uint16
}

// Errors returned by DataFile.
var (
	ErrRecordTooLarge = errors.New("pagefile: record exceeds page capacity")
	ErrBadSlot        = errors.New("pagefile: slot out of range or deleted")
)

// Slotted page layout:
//
//	[0:2)  count  — number of slots
//	[2:4)  free   — offset of free space start
//	then per slot i: [4+4i : 4+4i+2) offset, [4+4i+2 : 4+4i+4) length
//	(length 0 marks a deleted record)
//	records grow upward from the slot directory's end.
const dataHeader = 4

// NewDataFile creates a data file on the given store.
func NewDataFile(store Store) *DataFile {
	return &DataFile{store: store, current: InvalidPage}
}

// OpenDataFileAt resumes appending to an existing data file whose last page
// is `last` (InvalidPage for none).
func OpenDataFileAt(store Store, last PageID) *DataFile {
	return &DataFile{store: store, current: last}
}

// CurrentPage exposes the append page (persisted by index headers).
func (df *DataFile) CurrentPage() PageID { return df.current }

// SetCurrent rewinds the append page — the rollback path: a failed batch
// may have advanced current to a page the rollback then frees, so the
// writer restores the last committed append page. Records appended by the
// failed batch stay as unreferenced slots; later appends go after them
// (the slot directory lives in the page itself), so committed addresses
// never change.
func (df *DataFile) SetCurrent(id PageID) { df.current = id }

// inPlaceMarker is implemented by VersionedStore: slotted data pages are
// legitimately written in place (appends never move committed records,
// tombstones only zero a slot length), so the data file exempts its pages
// from the copy-on-write check.
type inPlaceMarker interface{ MarkInPlace(id PageID) }

func markInPlace(s Store, id PageID) {
	if m, ok := s.(inPlaceMarker); ok {
		m.MarkInPlace(id)
	}
}

// Append stores rec and returns its address. Records larger than a page's
// usable space are rejected.
func (df *DataFile) Append(rec []byte) (DataAddr, error) {
	need := len(rec) + 4 // record + slot entry
	if dataHeader+need > PageSize {
		return DataAddr{}, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	buf := make([]byte, PageSize)
	if df.current != InvalidPage {
		if err := df.store.Read(df.current, buf); err != nil {
			return DataAddr{}, err
		}
		if addr, ok, err := df.tryAppend(df.current, buf, rec); err != nil || ok {
			return addr, err
		}
	}
	id, err := df.store.Alloc()
	if err != nil {
		return DataAddr{}, err
	}
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint16(buf[2:], PageSize) // free space grows down
	df.current = id
	addr, ok, err := df.tryAppend(id, buf, rec)
	if err != nil {
		return DataAddr{}, err
	}
	if !ok {
		return DataAddr{}, ErrRecordTooLarge
	}
	return addr, nil
}

func (df *DataFile) tryAppend(id PageID, buf, rec []byte) (DataAddr, bool, error) {
	count := int(binary.LittleEndian.Uint16(buf[0:]))
	free := int(binary.LittleEndian.Uint16(buf[2:]))
	if free == 0 {
		free = PageSize
	}
	dirEnd := dataHeader + 4*(count+1)
	if free-len(rec) < dirEnd {
		return DataAddr{}, false, nil
	}
	off := free - len(rec)
	copy(buf[off:], rec)
	binary.LittleEndian.PutUint16(buf[dataHeader+4*count:], uint16(off))
	binary.LittleEndian.PutUint16(buf[dataHeader+4*count+2:], uint16(len(rec)))
	binary.LittleEndian.PutUint16(buf[0:], uint16(count+1))
	binary.LittleEndian.PutUint16(buf[2:], uint16(off))
	markInPlace(df.store, id)
	if err := df.store.Write(id, buf); err != nil {
		return DataAddr{}, false, err
	}
	return DataAddr{Page: id, Slot: uint16(count)}, true, nil
}

// Read returns one record.
func (df *DataFile) Read(addr DataAddr) ([]byte, error) {
	buf := make([]byte, PageSize)
	if err := df.store.Read(addr.Page, buf); err != nil {
		return nil, err
	}
	return recordFromPage(buf, addr.Slot)
}

// ReadPage returns the raw page for addr.Page in one I/O; use
// RecordFromPage to extract multiple candidates that share the page.
func (df *DataFile) ReadPage(id PageID) ([]byte, error) {
	buf := make([]byte, PageSize)
	if err := df.store.Read(id, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// RecordFromPage extracts slot `slot` from a page previously returned by
// ReadPage, without further I/O.
func RecordFromPage(page []byte, slot uint16) ([]byte, error) {
	return recordFromPage(page, slot)
}

func recordFromPage(buf []byte, slot uint16) ([]byte, error) {
	count := binary.LittleEndian.Uint16(buf[0:])
	if slot >= count {
		return nil, fmt.Errorf("%w: slot %d of %d", ErrBadSlot, slot, count)
	}
	off := int(binary.LittleEndian.Uint16(buf[dataHeader+4*int(slot):]))
	ln := int(binary.LittleEndian.Uint16(buf[dataHeader+4*int(slot)+2:]))
	if ln == 0 {
		return nil, fmt.Errorf("%w: slot %d deleted", ErrBadSlot, slot)
	}
	if off+ln > PageSize {
		return nil, fmt.Errorf("pagefile: corrupt slot %d (off=%d len=%d)", slot, off, ln)
	}
	out := make([]byte, ln)
	copy(out, buf[off:off+ln])
	return out, nil
}

// Delete tombstones a record (its space is not reclaimed; compaction is a
// rebuild concern, as in the paper where object details are write-once).
func (df *DataFile) Delete(addr DataAddr) error {
	buf := make([]byte, PageSize)
	if err := df.store.Read(addr.Page, buf); err != nil {
		return err
	}
	count := binary.LittleEndian.Uint16(buf[0:])
	if addr.Slot >= count {
		return fmt.Errorf("%w: slot %d of %d", ErrBadSlot, addr.Slot, count)
	}
	binary.LittleEndian.PutUint16(buf[dataHeader+4*int(addr.Slot)+2:], 0)
	markInPlace(df.store, addr.Page)
	return df.store.Write(addr.Page, buf)
}
