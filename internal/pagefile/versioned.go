package pagefile

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// VersionedStore layers copy-on-write epoch semantics over a Store — the
// storage half of snapshot isolation. The discipline it enforces:
//
//   - Pages allocated since the last commit ("fresh") are private to the
//     writer and may be written in place; freeing one reclaims it
//     immediately.
//   - Pages that were live at the last commit are immutable: writing one is
//     a COW violation (the tree must relocate the node to a fresh page),
//     and freeing one is deferred — the page stays readable until every
//     snapshot pinned at an epoch that could reference it has been
//     released.
//   - Commit seals the open batch: the batch's deferred frees become
//     garbage of the new epoch, the fresh set resets, and an opaque
//     committed-state handle (the tree's root/size record) is published
//     atomically with the epoch bump. Pin returns that handle together
//     with a release closure; a pinned epoch's pages are never recycled.
//
// Pages that are legitimately mutated in place — slotted data pages
// (append-only record space) and the metadata page — are exempted via
// MarkInPlace; everything else writing a committed page fails loudly with
// ErrCOWViolation, which is the safety net that turns a missed relocation
// into a test failure instead of silent snapshot corruption.
//
// Reclamation normally runs on the writer's side (Commit, Reclaim, or the
// owner's Flush/Close) so a reader releasing the last pin never pays the
// physical free/tombstone I/O; until the next writer-side call the
// garbage is merely retained, never lost. With the background reclaimer
// started (StartReclaimer), reclamation leaves the commit path entirely:
// Commit only queues the batch's garbage, and a dedicated goroutine drains
// quiesced epochs under a per-tick page budget.
type VersionedStore struct {
	inner Store
	pool  *BufferPool  // optional: invalidated on physical free
	inval func(PageID) // optional extra invalidation hook (decoded-node cache)

	mu      sync.Mutex
	epoch   uint64
	state   any
	pins    map[uint64]int
	fresh   map[PageID]bool
	inPlace map[PageID]bool
	batch   garbage   // open (uncommitted) batch
	pending []garbage // committed garbage awaiting pin drain

	// tombstoner applies a batch of record tombstones to one data page in a
	// single read-modify-write (DataFile.DeleteBatch); registered once at
	// tree construction, before any DeferTombstone call.
	tombstoner func(PageID, []uint16) error

	reclaimErr error // first deferred-reclaim failure, surfaced at next Commit/Reclaim

	// reclaimMu serializes physical drains: writer-side Reclaim/Commit and
	// the background reclaimer must not interleave their free/tombstone I/O
	// (a partially drained batch is held outside pending while its pages
	// are freed).
	reclaimMu sync.Mutex

	bgRunning bool // background reclaimer lifecycle, under mu
	bgStop    chan struct{}
	bgDone    chan struct{}

	reclaimedPages      atomic.Int64
	reclaimedTombstones atomic.Int64
}

// garbage is one commit's deferred work: pages dead as of that epoch and
// data-record tombstones that must not run while an older snapshot could
// still read the records, batched per data page so reclaiming an epoch
// costs one read-modify-write per touched page, not one per record.
type garbage struct {
	epoch      uint64
	pages      []PageID
	tombstones map[PageID][]uint16
}

func (g *garbage) empty() bool { return len(g.pages) == 0 && len(g.tombstones) == 0 }

func (g *garbage) tombstoneCount() int {
	n := 0
	for _, slots := range g.tombstones {
		n += len(slots)
	}
	return n
}

// ErrCOWViolation reports an in-place write to a committed page that was
// not exempted with MarkInPlace — a broken copy-on-write path.
var ErrCOWViolation = errors.New("pagefile: in-place write to a committed page (COW violation)")

// NewVersionedStore wraps inner starting at the given committed epoch
// (0 for a fresh store; a reopened index passes its persisted epoch).
func NewVersionedStore(inner Store, epoch uint64) *VersionedStore {
	return &VersionedStore{
		inner:   inner,
		epoch:   epoch,
		pins:    make(map[uint64]int),
		fresh:   make(map[PageID]bool),
		inPlace: make(map[PageID]bool),
	}
}

// AttachPool registers the buffer pool whose frames must be dropped when a
// page is physically freed (reclaimed pages may be recycled by Alloc, and
// a stale frame would leak the previous epoch's bytes into the new use).
func (v *VersionedStore) AttachPool(pool *BufferPool) { v.pool = pool }

// AttachInvalidator registers an extra per-page invalidation hook, called
// at exactly the points the buffer pool is invalidated: immediately before
// a page is physically freed (and therefore before its id can be
// recycled). The tree uses it to drop decoded-node cache entries. Attach
// before any concurrent use; fn must be safe for concurrent calls.
func (v *VersionedStore) AttachInvalidator(fn func(PageID)) { v.inval = fn }

// invalidate drops the page from the attached pool and invalidator hook —
// every physical-free site funnels through here.
func (v *VersionedStore) invalidate(id PageID) {
	if v.pool != nil {
		v.pool.Invalidate(id)
	}
	if v.inval != nil {
		v.inval(id)
	}
}

// CommittedInfo reports whether id is a committed page — immutable in
// place under the COW discipline, and therefore safe to share a decoded
// form of — together with the current committed epoch, in one lock
// acquisition (the decoded-node cache's insert-path check).
func (v *VersionedStore) CommittedInfo(id PageID) (committed bool, epoch uint64) {
	v.mu.Lock()
	committed = !v.fresh[id]
	epoch = v.epoch
	v.mu.Unlock()
	return committed, epoch
}

// Alloc allocates a page and marks it fresh: writable in place until the
// next Commit seals it.
func (v *VersionedStore) Alloc() (PageID, error) {
	id, err := v.inner.Alloc()
	if err != nil {
		return id, err
	}
	v.mu.Lock()
	v.fresh[id] = true
	v.mu.Unlock()
	return id, nil
}

// Read passes through without taking the store mutex — the read path is
// the hot path and needs no versioning state.
func (v *VersionedStore) Read(id PageID, buf []byte) error { return v.inner.Read(id, buf) }

// Write enforces the COW discipline, then delegates. The check runs under
// the mutex; the (possibly latency-charged) inner write does not.
func (v *VersionedStore) Write(id PageID, buf []byte) error {
	v.mu.Lock()
	ok := v.fresh[id] || v.inPlace[id]
	v.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: page %d at epoch %d", ErrCOWViolation, id, v.Epoch())
	}
	return v.inner.Write(id, buf)
}

// Free releases a page: immediately when it is fresh (never committed, no
// snapshot can reference it), otherwise deferred into the open batch and
// physically reclaimed only after the freeing commit's older pins drain.
func (v *VersionedStore) Free(id PageID) error {
	v.mu.Lock()
	if v.fresh[id] {
		delete(v.fresh, id)
		// Drop any in-place exemption with the page: a recycled id must
		// re-earn it, or a future tree node on this id would dodge the COW
		// check.
		delete(v.inPlace, id)
		v.mu.Unlock()
		v.invalidate(id)
		return v.inner.Free(id)
	}
	v.batch.pages = append(v.batch.pages, id)
	v.mu.Unlock()
	return nil
}

// SetTombstoner registers the function that applies a batch of record
// tombstones to one data page in a single read-modify-write (the owner's
// DataFile.DeleteBatch). Register before the first DeferTombstone; with no
// tombstoner registered, deferred tombstones are dropped at reclaim time
// (the records are unreferenced either way — a tombstone only compacts).
func (v *VersionedStore) SetTombstoner(fn func(PageID, []uint16) error) {
	v.mu.Lock()
	v.tombstoner = fn
	v.mu.Unlock()
}

// DeferTombstone queues a data-record tombstone with the open batch,
// coalesced per page: however many records on a page die in this epoch,
// reclaiming the epoch rewrites that page exactly once. The tombstone runs
// only after the batch's commit is unreachable by any snapshot.
func (v *VersionedStore) DeferTombstone(page PageID, slot uint16) {
	v.mu.Lock()
	if v.batch.tombstones == nil {
		v.batch.tombstones = make(map[PageID][]uint16)
	}
	v.batch.tombstones[page] = append(v.batch.tombstones[page], slot)
	v.mu.Unlock()
}

// MarkInPlace exempts a page from the COW write check: slotted data pages
// (whose committed records are never moved by an append) and the metadata
// page.
func (v *VersionedStore) MarkInPlace(id PageID) {
	v.mu.Lock()
	v.inPlace[id] = true
	v.mu.Unlock()
}

// Writable reports whether a page may be written in place (fresh this
// batch). The tree's writeNode relocates the node when this is false.
func (v *VersionedStore) Writable(id PageID) bool {
	v.mu.Lock()
	ok := v.fresh[id]
	v.mu.Unlock()
	return ok
}

// Epoch returns the last committed epoch.
func (v *VersionedStore) Epoch() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.epoch
}

// SeedState installs the committed-state handle recovered from storage
// without bumping the epoch — the reopen path, where the state on disk IS
// the committed epoch.
func (v *VersionedStore) SeedState(state any) {
	v.mu.Lock()
	v.state = state
	v.mu.Unlock()
}

// State returns the committed-state handle published by the last Commit
// (nil before the first).
func (v *VersionedStore) State() any {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.state
}

// Commit seals the open batch and publishes state as the new epoch's
// committed state, atomically with the epoch bump: a Pin issued after
// Commit returns sees the new state, one issued before keeps the old
// epoch's pages alive. The caller must have made the batch durable first
// (data flush, buffer-pool flush, metadata write).
//
// Without the background reclaimer, Commit also drains whatever garbage
// the current pins allow; with it running, Commit only queues the batch —
// reclamation happens on the reclaimer's ticks, off the commit path. A
// drain failure never fails the commit — the epoch is already published,
// so reporting it here would make a durable mutation look failed (and
// trigger a bogus rollback). Drain errors are stashed and surfaced by the
// next Reclaim (or the owner's Flush); a page whose free failed is leaked
// until the store closes, never corrupted.
func (v *VersionedStore) Commit(state any) error {
	v.mu.Lock()
	v.epoch++
	v.state = state
	if !v.batch.empty() {
		v.batch.epoch = v.epoch
		v.pending = append(v.pending, v.batch)
	}
	v.batch = garbage{}
	for id := range v.fresh {
		delete(v.fresh, id)
	}
	bg := v.bgRunning
	v.mu.Unlock()
	if !bg {
		v.reclaimSome(0) // errors stashed in reclaimErr
	}
	return nil
}

// Rollback abandons the open batch after a failed mutation: fresh pages
// are freed immediately (no snapshot can reference them) and the batch's
// deferred frees are dropped — those pages are still live in the last
// committed epoch. The caller restores its in-memory state from the
// committed-state handle.
func (v *VersionedStore) Rollback() error {
	v.mu.Lock()
	freshPages := make([]PageID, 0, len(v.fresh))
	for id := range v.fresh {
		freshPages = append(freshPages, id)
		delete(v.fresh, id)
		delete(v.inPlace, id) // see Free: recycled ids must re-earn exemption
	}
	v.batch = garbage{}
	v.mu.Unlock()
	var first error
	for _, id := range freshPages {
		v.invalidate(id)
		if err := v.inner.Free(id); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Pin takes a snapshot reference on the current epoch and returns the
// committed-state handle, the pinned epoch, and a release closure. While
// the pin is held, no page live at that epoch is recycled and no deferred
// tombstone of a later commit runs. Release is cheap and never performs
// I/O; the retained garbage drains at the next writer-side Commit /
// Reclaim / Flush.
func (v *VersionedStore) Pin() (state any, epoch uint64, release func()) {
	v.mu.Lock()
	e := v.epoch
	v.pins[e]++
	st := v.state
	v.mu.Unlock()
	var once sync.Once
	return st, e, func() {
		once.Do(func() {
			v.mu.Lock()
			if v.pins[e]--; v.pins[e] <= 0 {
				delete(v.pins, e)
			}
			v.mu.Unlock()
		})
	}
}

// Reclaim drains every garbage batch the current pins allow: a batch
// freed at commit E is reclaimable once no snapshot pinned at an epoch
// < E remains. Unbudgeted; safe to call concurrently with the background
// reclaimer (reclaimMu serializes the physical work). Returns and clears
// the first stashed reclaim error, its own included.
func (v *VersionedStore) Reclaim() error {
	v.reclaimSome(0)
	v.mu.Lock()
	err := v.reclaimErr
	v.reclaimErr = nil
	v.mu.Unlock()
	return err
}

// DefaultReclaimBudget is the background reclaimer's per-tick page budget
// when the caller passes one <= 0: one budget unit is one page operation
// (a tombstone read-modify-write or a page free).
const DefaultReclaimBudget = 128

// StartReclaimer starts the background reclaimer: a goroutine that every
// interval drains quiesced epochs, at most pageBudget page operations per
// tick, so a burst of commits never stalls the writer on reclamation I/O
// and garbage drains even while the writer idles. While it runs, Commit no
// longer drains inline. Pinned snapshots stay safe: the reclaimer only
// collects batches no live pin predates. No-op when already running or
// interval <= 0; pageBudget <= 0 means DefaultReclaimBudget.
func (v *VersionedStore) StartReclaimer(interval time.Duration, pageBudget int) {
	if interval <= 0 {
		return
	}
	if pageBudget <= 0 {
		pageBudget = DefaultReclaimBudget
	}
	v.mu.Lock()
	if v.bgRunning {
		v.mu.Unlock()
		return
	}
	v.bgRunning = true
	stop := make(chan struct{})
	done := make(chan struct{})
	v.bgStop, v.bgDone = stop, done
	v.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				v.reclaimSome(pageBudget) // errors stashed in reclaimErr
			}
		}
	}()
}

// StopReclaimer stops the background reclaimer and waits out any in-flight
// tick; whatever it had not yet drained is picked up by the next
// writer-side Commit or Reclaim. Idempotent.
func (v *VersionedStore) StopReclaimer() {
	v.mu.Lock()
	if !v.bgRunning {
		v.mu.Unlock()
		return
	}
	v.bgRunning = false
	stop, done := v.bgStop, v.bgDone
	v.bgStop, v.bgDone = nil, nil
	v.mu.Unlock()
	close(stop)
	<-done
}

// ReclaimerRunning reports whether the background reclaimer is active.
func (v *VersionedStore) ReclaimerRunning() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.bgRunning
}

// collectDrainableLocked removes and returns the pending batches whose
// epochs no live pin predates. Caller holds v.mu.
func (v *VersionedStore) collectDrainableLocked() []garbage {
	minPinned := uint64(math.MaxUint64)
	for e := range v.pins {
		if e < minPinned {
			minPinned = e
		}
	}
	var drain []garbage
	kept := v.pending[:0]
	for _, g := range v.pending {
		if g.epoch <= minPinned {
			drain = append(drain, g)
		} else {
			kept = append(kept, g)
		}
	}
	v.pending = kept
	return drain
}

// reclaimSome collects the drainable batches and physically reclaims up to
// budget page operations (0 = unlimited) outside v.mu: per batch, the
// coalesced per-page tombstone writes first (the records' pages are still
// live; the batch's own dead pages must not be recycled under them), then
// the page frees, invalidating any cached frame before the slot can be
// recycled. When the budget runs out, the partially drained batch and
// everything after it go back to the FRONT of pending, preserving epoch
// order for the next tick. reclaimMu serializes the physical work against
// concurrent drains; failures are stashed in reclaimErr and the work is
// counted done regardless (an unfreed page is leaked, never corrupted).
func (v *VersionedStore) reclaimSome(budget int) int {
	v.reclaimMu.Lock()
	defer v.reclaimMu.Unlock()
	v.mu.Lock()
	drain := v.collectDrainableLocked()
	tomb := v.tombstoner
	v.mu.Unlock()
	var first error
	done := 0
	for i := range drain {
		g := &drain[i]
		for page, slots := range g.tombstones {
			if budget > 0 && done >= budget {
				v.requeueFront(drain[i:], first)
				return done
			}
			if tomb != nil {
				if err := tomb(page, slots); err != nil && first == nil {
					first = err
				}
			}
			v.reclaimedTombstones.Add(int64(len(slots)))
			delete(g.tombstones, page)
			done++
		}
		g.tombstones = nil
		for len(g.pages) > 0 {
			if budget > 0 && done >= budget {
				v.requeueFront(drain[i:], first)
				return done
			}
			id := g.pages[0]
			g.pages = g.pages[1:]
			v.invalidate(id)
			v.mu.Lock()
			delete(v.inPlace, id)
			v.mu.Unlock()
			if err := v.inner.Free(id); err != nil && first == nil {
				first = err
			}
			v.reclaimedPages.Add(1)
			done++
		}
	}
	v.stashReclaimErr(first)
	return done
}

// requeueFront pushes the batches a budget cutoff left undrained back at
// the front of pending (epoch order preserved) and stashes err.
func (v *VersionedStore) requeueFront(rest []garbage, err error) {
	kept := make([]garbage, 0, len(rest))
	for i := range rest {
		if !rest[i].empty() {
			kept = append(kept, rest[i])
		}
	}
	v.mu.Lock()
	if len(kept) > 0 {
		v.pending = append(kept, v.pending...)
	}
	if err != nil && v.reclaimErr == nil {
		v.reclaimErr = err
	}
	v.mu.Unlock()
}

func (v *VersionedStore) stashReclaimErr(err error) {
	if err == nil {
		return
	}
	v.mu.Lock()
	if v.reclaimErr == nil {
		v.reclaimErr = err
	}
	v.mu.Unlock()
}

// GCStats reports the collector's state: the committed epoch, live pins,
// and pages awaiting reclamation (uncommitted batch included) — the
// page-leak assertion surface for tests.
func (v *VersionedStore) GCStats() (epoch uint64, pins int, pendingPages int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, n := range v.pins {
		pins += n
	}
	for _, g := range v.pending {
		pendingPages += len(g.pages)
	}
	pendingPages += len(v.batch.pages)
	return v.epoch, pins, pendingPages
}

// GCInfo is the collector's full health report: epoch and pin state,
// garbage awaiting reclamation (uncommitted batch included), lifetime
// reclaim counters, and whether the background reclaimer is running.
type GCInfo struct {
	Epoch               uint64 `json:"epoch"`
	Pins                int    `json:"pins"`
	PendingEpochs       int    `json:"pending_epochs"`
	PendingPages        int    `json:"pending_pages"`
	PendingTombstones   int    `json:"pending_tombstones"`
	ReclaimedPages      int64  `json:"reclaimed_pages"`
	ReclaimedTombstones int64  `json:"reclaimed_tombstones"`
	ReclaimerRunning    bool   `json:"reclaimer_running"`
}

// Add merges o into g — the shard-aggregation rule: epochs take the max,
// counters sum, and the running flag ORs.
func (g *GCInfo) Add(o GCInfo) {
	if o.Epoch > g.Epoch {
		g.Epoch = o.Epoch
	}
	g.Pins += o.Pins
	g.PendingEpochs += o.PendingEpochs
	g.PendingPages += o.PendingPages
	g.PendingTombstones += o.PendingTombstones
	g.ReclaimedPages += o.ReclaimedPages
	g.ReclaimedTombstones += o.ReclaimedTombstones
	g.ReclaimerRunning = g.ReclaimerRunning || o.ReclaimerRunning
}

// GCInfo reports the collector's full state; see GCStats for the compact
// 3-tuple form.
func (v *VersionedStore) GCInfo() GCInfo {
	v.mu.Lock()
	defer v.mu.Unlock()
	info := GCInfo{
		Epoch:               v.epoch,
		PendingEpochs:       len(v.pending),
		ReclaimedPages:      v.reclaimedPages.Load(),
		ReclaimedTombstones: v.reclaimedTombstones.Load(),
		ReclaimerRunning:    v.bgRunning,
	}
	for _, n := range v.pins {
		info.Pins += n
	}
	for i := range v.pending {
		info.PendingPages += len(v.pending[i].pages)
		info.PendingTombstones += v.pending[i].tombstoneCount()
	}
	info.PendingPages += len(v.batch.pages)
	info.PendingTombstones += v.batch.tombstoneCount()
	return info
}

func (v *VersionedStore) NumPages() int { return v.inner.NumPages() }
func (v *VersionedStore) Stats() *Stats { return v.inner.Stats() }

// VerifyPage forwards the scrubber's integrity probe down the stack; no
// versioning state applies to a read-only trailer check.
func (v *VersionedStore) VerifyPage(id PageID) error {
	if pv, ok := v.inner.(PageVerifier); ok {
		return pv.VerifyPage(id)
	}
	return nil
}
