package pagefile

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// VersionedStore layers copy-on-write epoch semantics over a Store — the
// storage half of snapshot isolation. The discipline it enforces:
//
//   - Pages allocated since the last commit ("fresh") are private to the
//     writer and may be written in place; freeing one reclaims it
//     immediately.
//   - Pages that were live at the last commit are immutable: writing one is
//     a COW violation (the tree must relocate the node to a fresh page),
//     and freeing one is deferred — the page stays readable until every
//     snapshot pinned at an epoch that could reference it has been
//     released.
//   - Commit seals the open batch: the batch's deferred frees become
//     garbage of the new epoch, the fresh set resets, and an opaque
//     committed-state handle (the tree's root/size record) is published
//     atomically with the epoch bump. Pin returns that handle together
//     with a release closure; a pinned epoch's pages are never recycled.
//
// Pages that are legitimately mutated in place — slotted data pages
// (append-only record space) and the metadata page — are exempted via
// MarkInPlace; everything else writing a committed page fails loudly with
// ErrCOWViolation, which is the safety net that turns a missed relocation
// into a test failure instead of silent snapshot corruption.
//
// Reclamation runs on the writer's side only (Commit, Reclaim, or the
// owner's Flush/Close) so a reader releasing the last pin never pays the
// physical free/tombstone I/O; until the next writer-side call the
// garbage is merely retained, never lost.
type VersionedStore struct {
	inner Store
	pool  *BufferPool // optional: invalidated on physical free

	mu      sync.Mutex
	epoch   uint64
	state   any
	pins    map[uint64]int
	fresh   map[PageID]bool
	inPlace map[PageID]bool
	batch   garbage   // open (uncommitted) batch
	pending []garbage // committed garbage awaiting pin drain

	reclaimErr error // first deferred-reclaim failure, surfaced at next Commit/Reclaim
}

// garbage is one commit's deferred work: pages dead as of that epoch and
// reclaim hooks (data-record tombstones) that must not run while an older
// snapshot could still read the records.
type garbage struct {
	epoch     uint64
	pages     []PageID
	onReclaim []func() error
}

// ErrCOWViolation reports an in-place write to a committed page that was
// not exempted with MarkInPlace — a broken copy-on-write path.
var ErrCOWViolation = errors.New("pagefile: in-place write to a committed page (COW violation)")

// NewVersionedStore wraps inner starting at the given committed epoch
// (0 for a fresh store; a reopened index passes its persisted epoch).
func NewVersionedStore(inner Store, epoch uint64) *VersionedStore {
	return &VersionedStore{
		inner:   inner,
		epoch:   epoch,
		pins:    make(map[uint64]int),
		fresh:   make(map[PageID]bool),
		inPlace: make(map[PageID]bool),
	}
}

// AttachPool registers the buffer pool whose frames must be dropped when a
// page is physically freed (reclaimed pages may be recycled by Alloc, and
// a stale frame would leak the previous epoch's bytes into the new use).
func (v *VersionedStore) AttachPool(pool *BufferPool) { v.pool = pool }

// Alloc allocates a page and marks it fresh: writable in place until the
// next Commit seals it.
func (v *VersionedStore) Alloc() (PageID, error) {
	id, err := v.inner.Alloc()
	if err != nil {
		return id, err
	}
	v.mu.Lock()
	v.fresh[id] = true
	v.mu.Unlock()
	return id, nil
}

// Read passes through without taking the store mutex — the read path is
// the hot path and needs no versioning state.
func (v *VersionedStore) Read(id PageID, buf []byte) error { return v.inner.Read(id, buf) }

// Write enforces the COW discipline, then delegates. The check runs under
// the mutex; the (possibly latency-charged) inner write does not.
func (v *VersionedStore) Write(id PageID, buf []byte) error {
	v.mu.Lock()
	ok := v.fresh[id] || v.inPlace[id]
	v.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: page %d at epoch %d", ErrCOWViolation, id, v.Epoch())
	}
	return v.inner.Write(id, buf)
}

// Free releases a page: immediately when it is fresh (never committed, no
// snapshot can reference it), otherwise deferred into the open batch and
// physically reclaimed only after the freeing commit's older pins drain.
func (v *VersionedStore) Free(id PageID) error {
	v.mu.Lock()
	if v.fresh[id] {
		delete(v.fresh, id)
		// Drop any in-place exemption with the page: a recycled id must
		// re-earn it, or a future tree node on this id would dodge the COW
		// check.
		delete(v.inPlace, id)
		v.mu.Unlock()
		if v.pool != nil {
			v.pool.Invalidate(id)
		}
		return v.inner.Free(id)
	}
	v.batch.pages = append(v.batch.pages, id)
	v.mu.Unlock()
	return nil
}

// Deferred registers a reclaim hook with the open batch; it runs when the
// batch's commit becomes unreachable by any snapshot (the data-record
// tombstone path).
func (v *VersionedStore) Deferred(fn func() error) {
	v.mu.Lock()
	v.batch.onReclaim = append(v.batch.onReclaim, fn)
	v.mu.Unlock()
}

// MarkInPlace exempts a page from the COW write check: slotted data pages
// (whose committed records are never moved by an append) and the metadata
// page.
func (v *VersionedStore) MarkInPlace(id PageID) {
	v.mu.Lock()
	v.inPlace[id] = true
	v.mu.Unlock()
}

// Writable reports whether a page may be written in place (fresh this
// batch). The tree's writeNode relocates the node when this is false.
func (v *VersionedStore) Writable(id PageID) bool {
	v.mu.Lock()
	ok := v.fresh[id]
	v.mu.Unlock()
	return ok
}

// Epoch returns the last committed epoch.
func (v *VersionedStore) Epoch() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.epoch
}

// SeedState installs the committed-state handle recovered from storage
// without bumping the epoch — the reopen path, where the state on disk IS
// the committed epoch.
func (v *VersionedStore) SeedState(state any) {
	v.mu.Lock()
	v.state = state
	v.mu.Unlock()
}

// State returns the committed-state handle published by the last Commit
// (nil before the first).
func (v *VersionedStore) State() any {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.state
}

// Commit seals the open batch and publishes state as the new epoch's
// committed state, atomically with the epoch bump: a Pin issued after
// Commit returns sees the new state, one issued before keeps the old
// epoch's pages alive. The caller must have made the batch durable first
// (buffer-pool flush, metadata write). Commit also drains whatever
// garbage the current pins allow, but a drain failure never fails the
// commit — the epoch is already published, so reporting it here would
// make a durable mutation look failed (and trigger a bogus rollback).
// Drain errors are stashed and surfaced by the next Reclaim (or the
// owner's Flush); a page whose free failed is leaked until the store
// closes, never corrupted.
func (v *VersionedStore) Commit(state any) error {
	v.mu.Lock()
	v.epoch++
	v.state = state
	if len(v.batch.pages) > 0 || len(v.batch.onReclaim) > 0 {
		v.batch.epoch = v.epoch
		v.pending = append(v.pending, v.batch)
	}
	v.batch = garbage{}
	for id := range v.fresh {
		delete(v.fresh, id)
	}
	drain := v.collectDrainableLocked()
	v.mu.Unlock()
	_ = v.drainGarbage(drain) // errors stashed in reclaimErr
	return nil
}

// Rollback abandons the open batch after a failed mutation: fresh pages
// are freed immediately (no snapshot can reference them) and the batch's
// deferred frees are dropped — those pages are still live in the last
// committed epoch. The caller restores its in-memory state from the
// committed-state handle.
func (v *VersionedStore) Rollback() error {
	v.mu.Lock()
	freshPages := make([]PageID, 0, len(v.fresh))
	for id := range v.fresh {
		freshPages = append(freshPages, id)
		delete(v.fresh, id)
		delete(v.inPlace, id) // see Free: recycled ids must re-earn exemption
	}
	v.batch = garbage{}
	v.mu.Unlock()
	var first error
	for _, id := range freshPages {
		if v.pool != nil {
			v.pool.Invalidate(id)
		}
		if err := v.inner.Free(id); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Pin takes a snapshot reference on the current epoch and returns the
// committed-state handle, the pinned epoch, and a release closure. While
// the pin is held, no page live at that epoch is recycled and no deferred
// tombstone of a later commit runs. Release is cheap and never performs
// I/O; the retained garbage drains at the next writer-side Commit /
// Reclaim / Flush.
func (v *VersionedStore) Pin() (state any, epoch uint64, release func()) {
	v.mu.Lock()
	e := v.epoch
	v.pins[e]++
	st := v.state
	v.mu.Unlock()
	var once sync.Once
	return st, e, func() {
		once.Do(func() {
			v.mu.Lock()
			if v.pins[e]--; v.pins[e] <= 0 {
				delete(v.pins, e)
			}
			v.mu.Unlock()
		})
	}
}

// Reclaim drains every garbage batch the current pins allow: a batch
// freed at commit E is reclaimable once no snapshot pinned at an epoch
// < E remains. Writer-side only (the tree's commit path, Flush, Close,
// tests); must not run concurrently with itself.
func (v *VersionedStore) Reclaim() error {
	v.mu.Lock()
	drain := v.collectDrainableLocked()
	err := v.reclaimErr
	v.reclaimErr = nil
	v.mu.Unlock()
	if derr := v.drainGarbage(drain); err == nil {
		err = derr
	}
	return err
}

// collectDrainableLocked removes and returns the pending batches whose
// epochs no live pin predates. Caller holds v.mu.
func (v *VersionedStore) collectDrainableLocked() []garbage {
	minPinned := uint64(math.MaxUint64)
	for e := range v.pins {
		if e < minPinned {
			minPinned = e
		}
	}
	var drain []garbage
	kept := v.pending[:0]
	for _, g := range v.pending {
		if g.epoch <= minPinned {
			drain = append(drain, g)
		} else {
			kept = append(kept, g)
		}
	}
	v.pending = kept
	return drain
}

// drainGarbage physically frees the collected batches outside the mutex:
// reclaim hooks first (tombstones touch still-live data pages), then page
// frees, invalidating any cached frame before the slot can be recycled.
// The first failure is stashed in reclaimErr (surfaced by Reclaim) as
// well as returned.
func (v *VersionedStore) drainGarbage(drain []garbage) error {
	var first error
	for _, g := range drain {
		for _, fn := range g.onReclaim {
			if err := fn(); err != nil && first == nil {
				first = err
			}
		}
		for _, id := range g.pages {
			if v.pool != nil {
				v.pool.Invalidate(id)
			}
			v.mu.Lock()
			delete(v.inPlace, id)
			v.mu.Unlock()
			if err := v.inner.Free(id); err != nil && first == nil {
				first = err
			}
		}
	}
	if first != nil {
		v.mu.Lock()
		if v.reclaimErr == nil {
			v.reclaimErr = first
		}
		v.mu.Unlock()
	}
	return first
}

// GCStats reports the collector's state: the committed epoch, live pins,
// and pages awaiting reclamation (uncommitted batch included) — the
// page-leak assertion surface for tests.
func (v *VersionedStore) GCStats() (epoch uint64, pins int, pendingPages int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, n := range v.pins {
		pins += n
	}
	for _, g := range v.pending {
		pendingPages += len(g.pages)
	}
	pendingPages += len(v.batch.pages)
	return v.epoch, pins, pendingPages
}

func (v *VersionedStore) NumPages() int { return v.inner.NumPages() }
func (v *VersionedStore) Stats() *Stats { return v.inner.Stats() }
