package pagefile

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosStore wraps a Store and injects faults according to a programmable
// rule list — the failure-injection harness for exercising every error
// path in the layers above. Each rule names the operation kind it applies
// to, the fault it injects, and a trigger: either a per-operation
// probability or a countdown of matching operations. All randomness comes
// from one seeded generator, so a single-threaded workload replays the
// exact same failure schedule from the same seed (concurrent workloads
// keep the same fault *rate* but not the same placement).
//
// Fault semantics:
//
//   - FaultTransient / FaultPermanent: the operation does not reach the
//     inner store; the error is ErrInjected, additionally marked so
//     IsTransient reports true for the transient kind.
//   - FaultBitFlip (reads): the inner store's payload is corrupted via
//     its Corrupter capability — one bit flipped on the medium without
//     resealing the checksum — and the read then proceeds normally, so a
//     checksummed store returns a *ChecksumError and an unchecksummed one
//     silently returns wrong bytes (the failure mode checksums close).
//     Without a Corrupter, the flip happens in the returned buffer only.
//   - FaultTornWrite (writes): only the first half of the page persists,
//     via the inner store's TornWriter capability; the call still reports
//     success, because a real torn write is silent until the page is next
//     read. Without a TornWriter the tail is zeroed and written normally
//     (detectability is then up to the page's own decode validation).
//   - FaultLatency: the operation stalls for the rule's Latency, then
//     proceeds (and remains subject to later rules).
type ChaosStore struct {
	Inner Store

	mu    sync.Mutex
	rng   *rand.Rand
	rules []*chaosRule

	counts [faultKinds]atomic.Int64
}

// ChaosOp selects which operations a rule applies to.
type ChaosOp uint8

const (
	OpAny ChaosOp = iota
	OpRead
	OpWrite
	OpAlloc
	OpFree
)

// FaultKind is the failure a rule injects.
type FaultKind uint8

const (
	FaultTransient FaultKind = iota
	FaultPermanent
	FaultBitFlip
	FaultTornWrite
	FaultLatency
	faultKinds = 5
)

func (k FaultKind) String() string {
	switch k {
	case FaultTransient:
		return "transient"
	case FaultPermanent:
		return "permanent"
	case FaultBitFlip:
		return "bitflip"
	case FaultTornWrite:
		return "torn"
	case FaultLatency:
		return "latency"
	}
	return "unknown"
}

// ChaosRule is one injection trigger. When Prob > 0 the rule fires on each
// matching operation with that probability; otherwise Countdown matching
// operations succeed before it fires (Countdown < 0 disarms the rule), and
// Sticky keeps it firing on every subsequent match — the legacy FaultStore
// behaviour.
type ChaosRule struct {
	Op    ChaosOp
	Fault FaultKind
	// Prob is the per-operation trigger probability (probabilistic mode).
	Prob float64
	// Countdown arms a deterministic trigger: fires after this many
	// matching operations pass through. Ignored when Prob > 0.
	Countdown int64
	// Sticky keeps a countdown rule firing after its first trigger.
	Sticky bool
	// Latency is the stall injected by FaultLatency rules.
	Latency time.Duration
	// Bit is the payload bit a FaultBitFlip rule flips; < 0 picks a random
	// bit per trigger.
	Bit int
}

// chaosRule is a rule plus its mutable trigger state, under ChaosStore.mu.
type chaosRule struct {
	ChaosRule
	remaining int64 // countdown state; <0 disarmed
	fired     atomic.Int64
}

// RuleHandle exposes one installed rule's trigger state — crash sweeps
// watch Remaining to detect that a countdown outlived the operation under
// test, and chaos experiments read Triggered for their injection tallies.
type RuleHandle struct {
	cs *ChaosStore
	r  *chaosRule
}

// Remaining reports the matching operations left before a countdown rule
// fires (<0 when disarmed; 0 when fired/firing). Probabilistic rules
// always report 0.
func (h *RuleHandle) Remaining() int64 {
	h.cs.mu.Lock()
	defer h.cs.mu.Unlock()
	return h.r.remaining
}

// Arm resets a countdown rule's trigger (n < 0 disarms).
func (h *RuleHandle) Arm(n int64) {
	h.cs.mu.Lock()
	defer h.cs.mu.Unlock()
	h.r.remaining = n
}

// Triggered reports how many times the rule has fired.
func (h *RuleHandle) Triggered() int64 { return h.r.fired.Load() }

// NewChaosStore wraps inner with an empty rule list; the seed fixes the
// probabilistic schedule.
func NewChaosStore(inner Store, seed int64) *ChaosStore {
	return &ChaosStore{Inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// AddRule installs a rule and returns its handle. Rules are evaluated in
// installation order; the first non-latency rule that fires decides the
// operation's fate.
func (cs *ChaosStore) AddRule(r ChaosRule) (*RuleHandle, error) {
	switch r.Fault {
	case FaultBitFlip:
		if r.Op != OpRead && r.Op != OpAny {
			return nil, fmt.Errorf("pagefile: bit-flip rules apply to reads, got op %d", r.Op)
		}
	case FaultTornWrite:
		if r.Op != OpWrite && r.Op != OpAny {
			return nil, fmt.Errorf("pagefile: torn-write rules apply to writes, got op %d", r.Op)
		}
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cr := &chaosRule{ChaosRule: r, remaining: r.Countdown}
	cs.rules = append(cs.rules, cr)
	return &RuleHandle{cs: cs, r: cr}, nil
}

// MustAddRule is AddRule for statically-valid rules; it panics on the
// validation errors AddRule reports.
func (cs *ChaosStore) MustAddRule(r ChaosRule) *RuleHandle {
	h, err := cs.AddRule(r)
	if err != nil {
		panic(err)
	}
	return h
}

// InjectedCount reports how many faults of the given kind have fired.
func (cs *ChaosStore) InjectedCount(k FaultKind) int64 {
	if int(k) >= faultKinds {
		return 0
	}
	return cs.counts[k].Load()
}

// chaosAction is the decided fate of one operation.
type chaosAction struct {
	kind  FaultKind
	fire  bool
	bit   int
	rule  *chaosRule
	delay time.Duration // accumulated latency-rule stalls
}

// decide evaluates the rules for op. Latency rules accumulate into the
// action's delay and evaluation continues; the first other rule that fires
// wins.
func (cs *ChaosStore) decide(op ChaosOp) chaosAction {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var act chaosAction
	for _, r := range cs.rules {
		if r.Op != OpAny && r.Op != op {
			continue
		}
		// Bit-flip rules installed with OpAny still only apply to reads
		// (AddRule enforces Op ∈ {OpRead, OpAny}); same for torn writes.
		if r.Fault == FaultBitFlip && op != OpRead {
			continue
		}
		if r.Fault == FaultTornWrite && op != OpWrite {
			continue
		}
		fire := false
		if r.Prob > 0 {
			fire = cs.rng.Float64() < r.Prob
		} else if r.remaining == 0 {
			fire = true
			if !r.Sticky {
				r.remaining = -1
			}
		} else if r.remaining > 0 {
			r.remaining--
		}
		if !fire {
			continue
		}
		r.fired.Add(1)
		cs.counts[r.Fault].Add(1)
		if r.Fault == FaultLatency {
			act.delay += r.Latency
			continue
		}
		act.kind = r.Fault
		act.fire = true
		act.rule = r
		act.bit = r.Bit
		if r.Fault == FaultBitFlip && r.Bit < 0 {
			act.bit = cs.rng.Intn(PageSize * 8)
		}
		break
	}
	return act
}

func (cs *ChaosStore) Alloc() (PageID, error) {
	act := cs.decide(OpAlloc)
	if act.delay > 0 {
		time.Sleep(act.delay)
	}
	if act.fire {
		if act.kind == FaultTransient {
			return InvalidPage, MarkTransient(ErrInjected)
		}
		return InvalidPage, ErrInjected
	}
	return cs.Inner.Alloc()
}

func (cs *ChaosStore) Read(id PageID, buf []byte) error {
	act := cs.decide(OpRead)
	if act.delay > 0 {
		time.Sleep(act.delay)
	}
	if act.fire {
		switch act.kind {
		case FaultTransient:
			return MarkTransient(ErrInjected)
		case FaultBitFlip:
			if c, ok := cs.Inner.(Corrupter); ok {
				if err := c.CorruptPayload(id, act.bit); err != nil {
					return err
				}
				// The medium is now corrupt; read it back normally so a
				// checksummed store detects the damage itself.
				return cs.Inner.Read(id, buf)
			}
			if err := cs.Inner.Read(id, buf); err != nil {
				return err
			}
			buf[act.bit/8] ^= 1 << (act.bit % 8)
			return nil
		default:
			return ErrInjected
		}
	}
	return cs.Inner.Read(id, buf)
}

func (cs *ChaosStore) Write(id PageID, buf []byte) error {
	act := cs.decide(OpWrite)
	if act.delay > 0 {
		time.Sleep(act.delay)
	}
	if act.fire {
		switch act.kind {
		case FaultTransient:
			return MarkTransient(ErrInjected)
		case FaultTornWrite:
			if tw, ok := cs.Inner.(TornWriter); ok {
				if err := tw.WriteTorn(id, buf, PageSize/2); err != nil {
					return err
				}
				return nil // torn writes are silent
			}
			torn := make([]byte, PageSize)
			copy(torn, buf[:PageSize/2])
			return cs.Inner.Write(id, torn)
		default:
			return ErrInjected
		}
	}
	return cs.Inner.Write(id, buf)
}

func (cs *ChaosStore) Free(id PageID) error {
	act := cs.decide(OpFree)
	if act.delay > 0 {
		time.Sleep(act.delay)
	}
	if act.fire {
		if act.kind == FaultTransient {
			return MarkTransient(ErrInjected)
		}
		return ErrInjected
	}
	return cs.Inner.Free(id)
}

func (cs *ChaosStore) NumPages() int { return cs.Inner.NumPages() }
func (cs *ChaosStore) Stats() *Stats { return cs.Inner.Stats() }

// VerifyPage forwards the scrubber's integrity probe without injecting
// faults: injection happens on real reads and writes; the scrubber's job
// is to find the damage those left behind.
func (cs *ChaosStore) VerifyPage(id PageID) error {
	if v, ok := cs.Inner.(PageVerifier); ok {
		return v.VerifyPage(id)
	}
	return nil
}
