package pagefile

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBufferPoolSingleFlight is the dedicated regression test for the
// pool's single-flight read path: many goroutines missing on the same cold
// page at once must coalesce into exactly one inner-store read, not a
// thundering herd. The slow store holds the first read open long enough
// that every contender arrives while it is still in flight. Run with -race.
func TestBufferPoolSingleFlight(t *testing.T) {
	ms := NewMemStore()
	id, err := ms.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, PageSize)
	want[0] = 0xAB
	if err := ms.Write(id, want); err != nil {
		t.Fatal(err)
	}
	ms.Stats().Reset()
	slow := NewLatencyStore(ms, 20*time.Millisecond, 0)

	bp := NewBufferPool(slow, 8)
	const contenders = 32
	var (
		start = make(chan struct{})
		wg    sync.WaitGroup
	)
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			got, err := bp.Get(id)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			if got[0] != 0xAB {
				t.Errorf("Get returned byte %#x, want 0xAB", got[0])
			}
		}()
	}
	close(start)
	wg.Wait()

	if reads, _, _, _ := ms.Stats().Snapshot(); reads != 1 {
		t.Fatalf("%d inner-store reads for one page, want 1 (single-flight broken)", reads)
	}
	hits, misses := bp.HitRate()
	if hits+misses != contenders {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, contenders)
	}
}

// TestBufferPoolConcurrentGet hammers Get from many goroutines over a
// working set larger than the pool, so hits, misses, evictions and the
// lost-insert race all occur. Run with -race; this is the regression test
// for the unsynchronized LRU the pool shipped with.
func TestBufferPoolConcurrentGet(t *testing.T) {
	s := NewMemStore()
	const pages = 64
	ids := make([]PageID, pages)
	for i := range ids {
		id, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, PageSize)
		buf[0] = byte(id)
		if err := s.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	bp := NewBufferPool(s, 16) // smaller than the working set: constant eviction
	const workers = 16
	const getsPerWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < getsPerWorker; i++ {
				id := ids[rng.Intn(pages)]
				got, err := bp.Get(id)
				if err != nil {
					t.Errorf("worker %d: Get(%d): %v", w, id, err)
					return
				}
				if got[0] != byte(id) {
					t.Errorf("worker %d: Get(%d) returned page stamped %d", w, id, got[0])
					return
				}
				if i%97 == 0 {
					bp.Invalidate(id) // concurrent drops must not corrupt other readers
				}
			}
		}(w)
	}
	wg.Wait()

	// Every Get counts exactly one hit or one miss.
	hits, misses := bp.HitRate()
	if hits+misses != workers*getsPerWorker {
		t.Fatalf("hits+misses = %d+%d = %d, want %d",
			hits, misses, hits+misses, workers*getsPerWorker)
	}
	if misses == 0 {
		t.Fatal("expected misses with a pool smaller than the working set")
	}
	// Concurrent misses on one page coalesce into a single store read, so
	// physical reads never exceed recorded misses.
	physReads, _, _, _ := s.Stats().Snapshot()
	if physReads > misses {
		t.Fatalf("%d physical reads > %d misses: concurrent misses not coalesced", physReads, misses)
	}
}
