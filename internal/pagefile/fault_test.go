package pagefile

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// fillPage returns a page-sized buffer with a recognizable pattern.
func fillPage(seed byte) []byte {
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = seed + byte(i%251)
	}
	return buf
}

func TestFileStoreChecksumRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v2.pg")
	fs, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Version() != 2 {
		t.Fatalf("new store version = %d, want 2", fs.Version())
	}
	id, err := fs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	want := fillPage(7)
	if err := fs.Write(id, want); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs, err = OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	got := make([]byte, PageSize)
	if err := fs.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted across reopen")
	}
	if err := fs.VerifyPage(id); err != nil {
		t.Fatalf("VerifyPage on intact page: %v", err)
	}
}

func TestFileStoreDetectsBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v2.pg")
	fs, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	id, _ := fs.Alloc()
	if err := fs.Write(id, fillPage(3)); err != nil {
		t.Fatal(err)
	}
	if err := fs.CorruptPayload(id, 12345); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	err = fs.Read(id, buf)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("read of corrupt page: %v, want ErrChecksum", err)
	}
	var ce *ChecksumError
	if !errors.As(err, &ce) || ce.Page != id || ce.Want == ce.Got {
		t.Fatalf("checksum error detail wrong: %+v", ce)
	}
	if err := fs.VerifyPage(id); !errors.Is(err, ErrChecksum) {
		t.Fatalf("VerifyPage on corrupt page: %v, want ErrChecksum", err)
	}
	if IsTransient(err) {
		t.Fatal("checksum errors must not be transient")
	}
}

func TestFileStoreDetectsTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v2.pg")
	fs, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	id, _ := fs.Alloc()
	if err := fs.Write(id, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	// A torn write persists half the new page over the old one; the stale
	// trailer no longer matches.
	if err := fs.WriteTorn(id, fillPage(99), PageSize/2); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := fs.Read(id, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("read of torn page: %v, want ErrChecksum", err)
	}
}

func TestFileStoreV1StillWorks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.pg")
	fs, err := CreateFileStoreV1(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Version() != 1 {
		t.Fatalf("v1 store version = %d", fs.Version())
	}
	id, _ := fs.Alloc()
	want := fillPage(5)
	if err := fs.Write(id, want); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs, err = OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if fs.Version() != 1 {
		t.Fatalf("reopened v1 store version = %d", fs.Version())
	}
	got := make([]byte, PageSize)
	if err := fs.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("v1 payload corrupted")
	}
	// Nothing to verify on v1: no trailer.
	if err := fs.VerifyPage(id); err != nil {
		t.Fatalf("VerifyPage on v1: %v", err)
	}
}

func TestMigrateFileStoreV1ToV2(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "v1.pg")
	dst := filepath.Join(dir, "v2.pg")
	fs, err := CreateFileStoreV1(src)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 5; i++ {
		id, err := fs.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(id, fillPage(byte(i))); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Free one so the migrated file carries a non-trivial free list.
	if err := fs.Free(ids[2]); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	if err := MigrateFileStore(src, dst); err != nil {
		t.Fatal(err)
	}
	m, err := OpenFileStore(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Version() != 2 {
		t.Fatalf("migrated version = %d, want 2", m.Version())
	}
	if m.NumPages() != 4 {
		t.Fatalf("migrated live pages = %d, want 4", m.NumPages())
	}
	buf := make([]byte, PageSize)
	for i, id := range ids {
		if i == 2 {
			continue
		}
		if err := m.Read(id, buf); err != nil {
			t.Fatalf("page %d after migration: %v", id, err)
		}
		if !bytes.Equal(buf, fillPage(byte(i))) {
			t.Fatalf("page %d payload changed by migration", id)
		}
	}
	// The free list survived: allocating reuses the freed page.
	id, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id != ids[2] {
		t.Fatalf("alloc after migration = %d, want recycled %d", id, ids[2])
	}
}

func TestMigrateRefusesCorruptSource(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.pg")
	fs, err := CreateFileStore(src)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := fs.Alloc()
	if err := fs.Write(id, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	if err := fs.CorruptPayload(id, 99); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err == nil {
		// Close writes the header; corruption elsewhere doesn't fail it.
		_ = err
	}
	err = MigrateFileStore(src, filepath.Join(dir, "dst.pg"))
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("migrating corrupt source: %v, want ErrChecksum", err)
	}
}

func TestTransientMarking(t *testing.T) {
	base := errors.New("disk hiccup")
	if IsTransient(base) {
		t.Fatal("unmarked error reported transient")
	}
	m := MarkTransient(base)
	if !IsTransient(m) {
		t.Fatal("marked error not transient")
	}
	if !errors.Is(m, base) {
		t.Fatal("marking hides the cause")
	}
	if MarkTransient(nil) != nil {
		t.Fatal("MarkTransient(nil) != nil")
	}
}

func TestChaosStoreTransientCountdown(t *testing.T) {
	inner := NewMemStore()
	cs := NewChaosStore(inner, 1)
	h := cs.MustAddRule(ChaosRule{Op: OpRead, Fault: FaultTransient, Countdown: 2})
	id, err := cs.Alloc() // Alloc doesn't match OpRead
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := 0; i < 2; i++ {
		if err := cs.Read(id, buf); err != nil {
			t.Fatalf("read %d before countdown: %v", i, err)
		}
	}
	err = cs.Read(id, buf)
	if !errors.Is(err, ErrInjected) || !IsTransient(err) {
		t.Fatalf("countdown read: %v, want transient ErrInjected", err)
	}
	if h.Triggered() != 1 {
		t.Fatalf("triggered = %d, want 1", h.Triggered())
	}
	// Non-sticky: next read succeeds.
	if err := cs.Read(id, buf); err != nil {
		t.Fatalf("read after non-sticky trigger: %v", err)
	}
	if cs.InjectedCount(FaultTransient) != 1 {
		t.Fatalf("injected count = %d", cs.InjectedCount(FaultTransient))
	}
}

func TestChaosStoreProbabilisticDeterminism(t *testing.T) {
	run := func() int64 {
		inner := NewMemStore()
		cs := NewChaosStore(inner, 42)
		h := cs.MustAddRule(ChaosRule{Op: OpRead, Fault: FaultTransient, Prob: 0.3})
		id, _ := cs.Alloc()
		buf := make([]byte, PageSize)
		for i := 0; i < 200; i++ {
			_ = cs.Read(id, buf)
		}
		return h.Triggered()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	if a == 0 || a == 200 {
		t.Fatalf("implausible trigger count %d for p=0.3 over 200 ops", a)
	}
}

func TestChaosStoreBitFlipOnFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.pg")
	fs, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	cs := NewChaosStore(fs, 7)
	id, _ := cs.Alloc()
	if err := cs.Write(id, fillPage(9)); err != nil {
		t.Fatal(err)
	}
	cs.MustAddRule(ChaosRule{Op: OpRead, Fault: FaultBitFlip, Countdown: 0, Bit: -1})
	buf := make([]byte, PageSize)
	if err := cs.Read(id, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("bit-flipped read on checksummed store: %v, want ErrChecksum", err)
	}
	// The damage is on the medium: later reads without injection fail too.
	if err := fs.Read(id, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("direct read after flip: %v, want ErrChecksum", err)
	}
}

func TestChaosStoreTornWriteOnFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.pg")
	fs, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	cs := NewChaosStore(fs, 7)
	id, _ := cs.Alloc()
	if err := cs.Write(id, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	cs.MustAddRule(ChaosRule{Op: OpWrite, Fault: FaultTornWrite, Countdown: 0})
	// The torn write reports success — tearing is silent until read back.
	if err := cs.Write(id, fillPage(50)); err != nil {
		t.Fatalf("torn write surfaced an error: %v", err)
	}
	buf := make([]byte, PageSize)
	if err := cs.Read(id, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("read after torn write: %v, want ErrChecksum", err)
	}
}

func TestChaosStoreRuleValidation(t *testing.T) {
	cs := NewChaosStore(NewMemStore(), 0)
	if _, err := cs.AddRule(ChaosRule{Op: OpWrite, Fault: FaultBitFlip}); err == nil {
		t.Fatal("bit-flip on writes accepted")
	}
	if _, err := cs.AddRule(ChaosRule{Op: OpRead, Fault: FaultTornWrite}); err == nil {
		t.Fatal("torn write on reads accepted")
	}
}

func TestChaosStoreLatencyRule(t *testing.T) {
	inner := NewMemStore()
	cs := NewChaosStore(inner, 0)
	cs.MustAddRule(ChaosRule{Op: OpRead, Fault: FaultLatency, Countdown: 0, Latency: 20 * time.Millisecond})
	id, _ := cs.Alloc()
	buf := make([]byte, PageSize)
	start := time.Now()
	if err := cs.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("latency spike not applied: %v", d)
	}
}

func TestRetryStoreRecoversTransient(t *testing.T) {
	inner := NewMemStore()
	cs := NewChaosStore(inner, 0)
	// Fails the next 2 reads transiently, then heals.
	h := cs.MustAddRule(ChaosRule{Op: OpRead, Fault: FaultTransient, Countdown: 0, Sticky: true})
	rs := NewRetryStore(cs, RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond})
	id, err := rs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	// Allow exactly 2 failures: disarm after two triggers by re-arming the
	// rule off-thread is racy, so instead use countdown+non-sticky twice.
	h.Arm(-1)
	cs.MustAddRule(ChaosRule{Op: OpRead, Fault: FaultTransient, Countdown: 0})
	cs.MustAddRule(ChaosRule{Op: OpRead, Fault: FaultTransient, Countdown: 0})
	buf := make([]byte, PageSize)
	if err := rs.Read(id, buf); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if rs.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", rs.Retries())
	}
	if got := inner.Stats().Retries.Load(); got != 2 {
		t.Fatalf("Stats.Retries = %d, want 2", got)
	}
}

func TestRetryStoreGivesUpAfterMaxAttempts(t *testing.T) {
	inner := NewMemStore()
	cs := NewChaosStore(inner, 0)
	cs.MustAddRule(ChaosRule{Op: OpRead, Fault: FaultTransient, Countdown: 0, Sticky: true})
	rs := NewRetryStore(cs, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond})
	id, _ := rs.Alloc()
	buf := make([]byte, PageSize)
	err := rs.Read(id, buf)
	if !errors.Is(err, ErrInjected) || !IsTransient(err) {
		t.Fatalf("exhausted retry: %v, want transient ErrInjected", err)
	}
	if rs.Retries() != 2 {
		t.Fatalf("retries = %d, want 2 (3 attempts)", rs.Retries())
	}
}

func TestRetryStoreDoesNotRetryPermanent(t *testing.T) {
	inner := NewMemStore()
	cs := NewChaosStore(inner, 0)
	cs.MustAddRule(ChaosRule{Op: OpRead, Fault: FaultPermanent, Countdown: 0, Sticky: true})
	rs := NewRetryStore(cs, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond})
	id, _ := rs.Alloc()
	buf := make([]byte, PageSize)
	if err := rs.Read(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("permanent fault: %v", err)
	}
	if rs.Retries() != 0 {
		t.Fatalf("permanent error was retried %d times", rs.Retries())
	}
}

func TestRetryStoreBoundContextAbortsBackoff(t *testing.T) {
	inner := NewMemStore()
	cs := NewChaosStore(inner, 0)
	cs.MustAddRule(ChaosRule{Op: OpRead, Fault: FaultTransient, Countdown: 0, Sticky: true})
	rs := NewRetryStore(cs, RetryPolicy{MaxAttempts: 1000, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second})
	id, _ := rs.Alloc()
	ctx, cancel := context.WithCancel(context.Background())
	unbind := rs.BindContext(ctx)
	defer unbind()
	cancel()
	buf := make([]byte, PageSize)
	start := time.Now()
	err := rs.Read(id, buf)
	if err == nil {
		t.Fatal("read under sticky fault succeeded")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled backoff still slept %v", d)
	}
}

func TestBufferPoolEvictionWriteFaultKeepsFrameDirty(t *testing.T) {
	inner := NewMemStore()
	cs := NewChaosStore(inner, 0)
	pool := NewBufferPool(cs, 1)
	a, _ := cs.Alloc()
	b, _ := cs.Alloc()
	if err := pool.Put(a, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	// All further writes fail: evicting dirty page a must not lose it.
	wf := cs.MustAddRule(ChaosRule{Op: OpWrite, Fault: FaultPermanent, Countdown: 0, Sticky: true})
	err := pool.Put(b, fillPage(2))
	if err == nil {
		t.Fatal("eviction write fault not surfaced by Put")
	}
	if got := pool.Dirty(); got != 2 {
		t.Fatalf("dirty frames = %d, want 2 (victim kept + new put)", got)
	}
	// Both pages must still be readable from the pool with their contents.
	for id, seed := range map[PageID]byte{a: 1, b: 2} {
		data, err := pool.Get(id)
		if err != nil {
			t.Fatalf("get %d: %v", id, err)
		}
		if !bytes.Equal(data, fillPage(seed)) {
			t.Fatalf("page %d contents lost", id)
		}
	}
	// Flush keeps failing while the fault is armed, frames stay dirty...
	if err := pool.Flush(); err == nil {
		t.Fatal("flush under write fault succeeded")
	}
	if pool.Dirty() != 2 {
		t.Fatalf("dirty after failed flush = %d, want 2", pool.Dirty())
	}
	// ...and succeeds once the store heals, with nothing lost.
	wf.Arm(-1)
	if err := pool.Flush(); err != nil {
		t.Fatalf("flush after heal: %v", err)
	}
	if pool.Dirty() != 0 {
		t.Fatalf("dirty after heal flush = %d", pool.Dirty())
	}
	buf := make([]byte, PageSize)
	for id, seed := range map[PageID]byte{a: 1, b: 2} {
		if err := inner.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, fillPage(seed)) {
			t.Fatalf("page %d not durable after heal", id)
		}
	}
}

func TestBufferPoolGetMissServesDataWhenEvictionFails(t *testing.T) {
	inner := NewMemStore()
	cs := NewChaosStore(inner, 0)
	pool := NewBufferPool(cs, 1)
	a, _ := cs.Alloc()
	b, _ := cs.Alloc()
	if err := cs.Write(b, fillPage(8)); err != nil {
		t.Fatal(err)
	}
	if err := pool.Put(a, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	wf := cs.MustAddRule(ChaosRule{Op: OpWrite, Fault: FaultPermanent, Countdown: 0, Sticky: true})
	// Reading b evicts dirty a; the write-back fails but the READ succeeded
	// — the data must be served and the error deferred to Flush.
	data, err := pool.Get(b)
	if err != nil {
		t.Fatalf("get with failing eviction: %v", err)
	}
	if !bytes.Equal(data, fillPage(8)) {
		t.Fatal("wrong data served")
	}
	wf.Arm(-1)
	if err := pool.Flush(); err == nil {
		t.Fatal("deferred eviction error not surfaced at Flush")
	}
	// Second flush: error cleared, everything durable.
	if err := pool.Flush(); err != nil {
		t.Fatalf("second flush: %v", err)
	}
	buf := make([]byte, PageSize)
	if err := inner.Read(a, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, fillPage(1)) {
		t.Fatal("dirty victim lost after deferred eviction failure")
	}
}
