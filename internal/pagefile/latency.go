package pagefile

import (
	"sync/atomic"
	"time"
)

// LatencyStore wraps a Store and sleeps a fixed duration on every page read
// and write — a stand-in for disk or network storage latency, in the spirit
// of the paper's era cost model (10 ms per page access). The in-memory
// store makes every access CPU-fast, which hides the benefit of
// overlapping I/O; wrapping it with LatencyStore restores the latency
// profile of a disk-resident index, so cache hit rates and parallel query
// fan-out have measurable effect even on one core. Concurrent callers
// sleep concurrently: the delay is taken outside the inner store's locks.
type LatencyStore struct {
	Inner Store
	// delays in nanoseconds, atomic so they can be re-armed after a cheap
	// zero-latency build phase.
	readDelay  atomic.Int64
	writeDelay atomic.Int64
}

// NewLatencyStore wraps inner with the given per-read and per-write delays.
func NewLatencyStore(inner Store, readDelay, writeDelay time.Duration) *LatencyStore {
	ls := &LatencyStore{Inner: inner}
	ls.SetDelays(readDelay, writeDelay)
	return ls
}

// SetDelays re-arms the simulated latencies (e.g. 0 during bulk build, then
// the target latency for measurement).
func (ls *LatencyStore) SetDelays(readDelay, writeDelay time.Duration) {
	ls.readDelay.Store(int64(readDelay))
	ls.writeDelay.Store(int64(writeDelay))
}

func (ls *LatencyStore) sleep(d *atomic.Int64) {
	if ns := d.Load(); ns > 0 {
		time.Sleep(time.Duration(ns))
	}
}

// Alloc delegates without delay (allocation is metadata, not a page
// transfer).
func (ls *LatencyStore) Alloc() (PageID, error) { return ls.Inner.Alloc() }

func (ls *LatencyStore) Read(id PageID, buf []byte) error {
	ls.sleep(&ls.readDelay)
	return ls.Inner.Read(id, buf)
}

func (ls *LatencyStore) Write(id PageID, buf []byte) error {
	ls.sleep(&ls.writeDelay)
	return ls.Inner.Write(id, buf)
}

func (ls *LatencyStore) Free(id PageID) error { return ls.Inner.Free(id) }

func (ls *LatencyStore) NumPages() int { return ls.Inner.NumPages() }

func (ls *LatencyStore) Stats() *Stats { return ls.Inner.Stats() }

// VerifyPage forwards the scrubber's integrity probe without the
// simulated transfer delay: verification reads the trailer off the hot
// path and is not part of the modelled query I/O.
func (ls *LatencyStore) VerifyPage(id PageID) error {
	if v, ok := ls.Inner.(PageVerifier); ok {
		return v.VerifyPage(id)
	}
	return nil
}
