// Package pagefile provides the disk substrate of the U-tree reproduction:
// fixed-size 4096-byte pages (the paper's page size), an in-memory and a
// file-backed store, an LRU buffer pool, I/O statistics, and a slotted data
// file holding object details (uncertainty region + pdf parameters) that
// U-tree leaf entries reference by disk address.
package pagefile

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the fixed page size in bytes (Section 6: "The page size is
// fixed to 4096 bytes").
const PageSize = 4096

// PageID identifies a page within a store.
type PageID uint32

// InvalidPage is the nil page identifier.
const InvalidPage = PageID(0xFFFFFFFF)

// Errors returned by stores.
var (
	ErrPageOutOfRange = errors.New("pagefile: page id out of range")
	ErrPageFreed      = errors.New("pagefile: page is on the free list")
	ErrBadLength      = errors.New("pagefile: buffer length must equal PageSize")
)

// Stats counts page-level operations; counters are atomic so stores can be
// shared across goroutines.
type Stats struct {
	Reads  atomic.Int64
	Writes atomic.Int64
	Allocs atomic.Int64
	Frees  atomic.Int64
	// Retries counts transient-fault retries performed by a RetryStore
	// layered above this store. It lives here (rather than only on the
	// wrapper) so every consumer that already holds the base store's
	// Stats — experiment harnesses, QueryStats deltas — sees retry
	// traffic without plumbing a new accessor through the stack.
	Retries atomic.Int64
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() (reads, writes, allocs, frees int64) {
	return s.Reads.Load(), s.Writes.Load(), s.Allocs.Load(), s.Frees.Load()
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.Reads.Store(0)
	s.Writes.Store(0)
	s.Allocs.Store(0)
	s.Frees.Store(0)
	s.Retries.Store(0)
}

// Store is the page-granularity storage abstraction.
type Store interface {
	// Alloc returns a zeroed page.
	Alloc() (PageID, error)
	// Read copies the page into buf (len PageSize).
	Read(id PageID, buf []byte) error
	// Write copies buf (len PageSize) into the page.
	Write(id PageID, buf []byte) error
	// Free returns the page to the allocator.
	Free(id PageID) error
	// NumPages reports the number of allocated (live) pages.
	NumPages() int
	// Stats exposes the operation counters.
	Stats() *Stats
}

// MemStore is an in-memory Store; the default substrate for experiments
// (the paper's I/O metric is node/page *accesses*, which we count, not
// physical disk time).
type MemStore struct {
	mu    sync.Mutex
	pages [][]byte
	freed []PageID
	live  map[PageID]bool
	stats Stats
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{live: make(map[PageID]bool)}
}

func (m *MemStore) Alloc() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Allocs.Add(1)
	if n := len(m.freed); n > 0 {
		id := m.freed[n-1]
		m.freed = m.freed[:n-1]
		for i := range m.pages[id] {
			m.pages[id][i] = 0
		}
		m.live[id] = true
		return id, nil
	}
	id := PageID(len(m.pages))
	m.pages = append(m.pages, make([]byte, PageSize))
	m.live[id] = true
	return id, nil
}

func (m *MemStore) check(id PageID) error {
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: %d", ErrPageOutOfRange, id)
	}
	if !m.live[id] {
		return fmt.Errorf("%w: %d", ErrPageFreed, id)
	}
	return nil
}

func (m *MemStore) Read(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadLength
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(id); err != nil {
		return err
	}
	m.stats.Reads.Add(1)
	copy(buf, m.pages[id])
	return nil
}

func (m *MemStore) Write(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return ErrBadLength
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(id); err != nil {
		return err
	}
	m.stats.Writes.Add(1)
	copy(m.pages[id], buf)
	return nil
}

func (m *MemStore) Free(id PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(id); err != nil {
		return err
	}
	m.stats.Frees.Add(1)
	delete(m.live, id)
	m.freed = append(m.freed, id)
	return nil
}

func (m *MemStore) NumPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.live)
}

func (m *MemStore) Stats() *Stats { return &m.stats }

// VerifyPage implements PageVerifier: memory has no checksum trailer, so a
// live in-range page verifies trivially.
func (m *MemStore) VerifyPage(id PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.check(id)
}

// CorruptPayload implements Corrupter: flips one bit of the page in place.
// With no trailer the flip is undetectable by Read — detection tests must
// use FileStore.
func (m *MemStore) CorruptPayload(id PageID, bit int) error {
	if bit < 0 || bit >= PageSize*8 {
		return fmt.Errorf("pagefile: corrupt bit %d out of range", bit)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(id); err != nil {
		return err
	}
	m.pages[id][bit/8] ^= 1 << (bit % 8)
	return nil
}

// WriteTorn implements TornWriter: persists only the first n bytes of buf,
// leaving the page tail at its previous contents.
func (m *MemStore) WriteTorn(id PageID, buf []byte, n int) error {
	if len(buf) != PageSize {
		return ErrBadLength
	}
	if n < 0 || n > PageSize {
		return fmt.Errorf("pagefile: torn length %d out of range", n)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(id); err != nil {
		return err
	}
	m.stats.Writes.Add(1)
	copy(m.pages[id][:n], buf[:n])
	return nil
}

// SizeBytes reports the total allocated page bytes — the "size comparison"
// number of Table 1.
func (m *MemStore) SizeBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.live)) * PageSize
}
