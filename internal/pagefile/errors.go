package pagefile

import (
	"errors"
	"fmt"
)

// Error taxonomy of the fault-tolerance layer. Every storage failure a
// caller can observe falls into one of three buckets:
//
//   - ErrChecksum: the bytes came back, but they are not the bytes that
//     were written — detected corruption. Permanent for that page until
//     repaired; retrying the read returns the same corrupt bytes.
//   - ErrBadPage: the page is unusable for a structural reason (failed
//     decode, quarantined after a checksum failure). Permanent.
//   - transient (IsTransient == true): the operation failed in a way
//     that may succeed on retry — an injected transient fault, or a
//     wrapped environmental error. RetryStore retries exactly these.
//
// Anything else (I/O errors from the OS, ErrPageOutOfRange, ...) is
// treated as permanent: retried never, surfaced verbatim.

// ErrChecksum is the sentinel matched by errors.Is for any page whose
// stored CRC does not cover its payload. The concrete error in the chain
// is a *ChecksumError carrying the page and both CRC values.
var ErrChecksum = errors.New("pagefile: page checksum mismatch")

// ChecksumError reports a corrupt page detected on read or scrub.
type ChecksumError struct {
	Page PageID
	Want uint32 // CRC stored in the page trailer
	Got  uint32 // CRC computed over the payload read back
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("pagefile: page %d checksum mismatch (stored %08x, computed %08x)", e.Page, e.Want, e.Got)
}

// Is makes errors.Is(err, ErrChecksum) match.
func (e *ChecksumError) Is(target error) bool { return target == ErrChecksum }

// ErrBadPage is the sentinel matched by errors.Is for pages that are
// structurally unusable: quarantined after a checksum failure, or failing
// validation during decode. The concrete error is a *BadPageError.
var ErrBadPage = errors.New("pagefile: bad page")

// BadPageError reports a page rejected for a structural reason.
type BadPageError struct {
	Page   PageID
	Reason string
}

func (e *BadPageError) Error() string {
	return fmt.Sprintf("pagefile: bad page %d: %s", e.Page, e.Reason)
}

// Is makes errors.Is(err, ErrBadPage) match.
func (e *BadPageError) Is(target error) bool { return target == ErrBadPage }

// transientError marks an error as worth retrying. It wraps rather than
// replaces, so errors.Is still matches the underlying cause (e.g. a
// transient injected fault matches both IsTransient and ErrInjected).
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() + " (transient)" }
func (e *transientError) Unwrap() error { return e.err }

// MarkTransient wraps err so IsTransient reports true for it. A nil err
// stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (anywhere in its chain) was marked
// transient — the predicate RetryStore uses to decide between retrying
// and surfacing. Checksum and bad-page errors are never transient: the
// same bytes come back on every retry.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// Optional store capabilities, probed with type assertions by the layers
// above. Wrappers forward them to their inner store so a capability
// implemented by the base store stays reachable through the whole stack.

// PageVerifier verifies a page's checksum without returning its contents
// and without charging the read to Stats — the scrubber's off-hot-path
// probe. Stores without checksums return nil (nothing to verify).
type PageVerifier interface {
	VerifyPage(id PageID) error
}

// Corrupter flips one payload bit in place WITHOUT updating any checksum
// trailer — the chaos harness's model of silent media corruption. On a
// checksummed store the next Read returns a *ChecksumError; on a plain
// store the flip is undetectable (which is exactly the failure mode
// checksums exist to close).
type Corrupter interface {
	CorruptPayload(id PageID, bit int) error
}

// TornWriter persists only the first n bytes of buf, leaving the page
// tail and any checksum trailer at their previous contents — the chaos
// harness's model of a torn (partially persisted) write.
type TornWriter interface {
	WriteTorn(id PageID, buf []byte, n int) error
}
