package pagefile

import (
	"errors"
)

// ErrInjected is the error surfaced by injected faults (FaultStore and
// ChaosStore alike).
var ErrInjected = errors.New("pagefile: injected fault")

// FaultStore is the legacy one-shot countdown injector, kept as a thin
// shim over ChaosStore for the crash sweeps: every operation after n
// successes fails permanently with ErrInjected. New error-path tests
// should use ChaosStore directly — it adds probabilistic triggers,
// transient faults, bit flips, torn writes and latency spikes.
type FaultStore struct {
	*ChaosStore
	h *RuleHandle
}

// NewFaultStore wraps inner, failing every operation after n successes.
// n < 0 disables injection.
func NewFaultStore(inner Store, n int64) *FaultStore {
	cs := NewChaosStore(inner, 0)
	h := cs.MustAddRule(ChaosRule{Op: OpAny, Fault: FaultPermanent, Countdown: n, Sticky: true})
	return &FaultStore{ChaosStore: cs, h: h}
}

// Arm resets the countdown.
func (f *FaultStore) Arm(n int64) { f.h.Arm(n) }

// Remaining reports the successful operations left before the fault fires
// (< 0 when injection is disabled). A crash sweep uses it to detect that
// the countdown outlived the operation under test — every offset has been
// exercised.
func (f *FaultStore) Remaining() int64 { return f.h.Remaining() }
