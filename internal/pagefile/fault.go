package pagefile

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the error surfaced by FaultStore when a fault triggers.
var ErrInjected = errors.New("pagefile: injected fault")

// FaultStore wraps a Store and fails operations once a countdown reaches
// zero — the failure-injection harness for exercising error paths in the
// trees and the data file.
type FaultStore struct {
	Inner     Store
	failAfter atomic.Int64 // remaining successful ops; <0 disables
}

// NewFaultStore wraps inner, failing every operation after n successes.
// n < 0 disables injection.
func NewFaultStore(inner Store, n int64) *FaultStore {
	fs := &FaultStore{Inner: inner}
	fs.failAfter.Store(n)
	return fs
}

// Arm resets the countdown.
func (f *FaultStore) Arm(n int64) { f.failAfter.Store(n) }

// Remaining reports the successful operations left before the fault fires
// (< 0 when injection is disabled). A crash sweep uses it to detect that
// the countdown outlived the operation under test — every offset has been
// exercised.
func (f *FaultStore) Remaining() int64 { return f.failAfter.Load() }

func (f *FaultStore) tick() error {
	for {
		cur := f.failAfter.Load()
		if cur < 0 {
			return nil
		}
		if cur == 0 {
			return ErrInjected
		}
		if f.failAfter.CompareAndSwap(cur, cur-1) {
			return nil
		}
	}
}

func (f *FaultStore) Alloc() (PageID, error) {
	if err := f.tick(); err != nil {
		return InvalidPage, err
	}
	return f.Inner.Alloc()
}

func (f *FaultStore) Read(id PageID, buf []byte) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Inner.Read(id, buf)
}

func (f *FaultStore) Write(id PageID, buf []byte) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Inner.Write(id, buf)
}

func (f *FaultStore) Free(id PageID) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Inner.Free(id)
}

func (f *FaultStore) NumPages() int { return f.Inner.NumPages() }
func (f *FaultStore) Stats() *Stats { return f.Inner.Stats() }
