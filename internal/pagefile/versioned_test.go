package pagefile

import (
	"errors"
	"testing"
	"time"
)

func fill(b byte) []byte {
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func TestVersionedCOWViolation(t *testing.T) {
	vs := NewVersionedStore(NewMemStore(), 0)
	id, err := vs.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := vs.Write(id, fill(1)); err != nil {
		t.Fatalf("write to fresh page: %v", err)
	}
	if err := vs.Commit("epoch1"); err != nil {
		t.Fatal(err)
	}
	if err := vs.Write(id, fill(2)); !errors.Is(err, ErrCOWViolation) {
		t.Fatalf("in-place write to committed page: got %v, want ErrCOWViolation", err)
	}
	vs.MarkInPlace(id)
	if err := vs.Write(id, fill(2)); err != nil {
		t.Fatalf("write to exempted page: %v", err)
	}
}

func TestVersionedDeferredFreeAndPins(t *testing.T) {
	inner := NewMemStore()
	vs := NewVersionedStore(inner, 0)
	old, _ := vs.Alloc()
	if err := vs.Write(old, fill(7)); err != nil {
		t.Fatal(err)
	}
	if err := vs.Commit(nil); err != nil {
		t.Fatal(err)
	}

	// Reader pins epoch 1; writer retires the page and commits epoch 2.
	_, epoch, release := vs.Pin()
	if epoch != 1 {
		t.Fatalf("pinned epoch %d, want 1", epoch)
	}
	if err := vs.Free(old); err != nil {
		t.Fatal(err)
	}
	tombstoned := false
	vs.SetTombstoner(func(page PageID, slots []uint16) error {
		if page != 42 || len(slots) != 1 || slots[0] != 3 {
			t.Errorf("tombstoner got page %d slots %v, want 42/[3]", page, slots)
		}
		tombstoned = true
		return nil
	})
	vs.DeferTombstone(42, 3)
	if err := vs.Commit(nil); err != nil {
		t.Fatal(err)
	}

	// The pinned snapshot must still read the retired page's bytes.
	buf := make([]byte, PageSize)
	if err := vs.Read(old, buf); err != nil || buf[0] != 7 {
		t.Fatalf("pinned read: err=%v buf[0]=%d", err, buf[0])
	}
	if tombstoned {
		t.Fatal("deferred tombstone ran while an older snapshot was pinned")
	}
	if _, pins, pending := vs.GCStats(); pins != 1 || pending != 1 {
		t.Fatalf("GCStats pins=%d pending=%d, want 1/1", pins, pending)
	}

	// Release + writer-side reclaim frees the page and runs the tombstone.
	release()
	release() // idempotent
	if err := vs.Reclaim(); err != nil {
		t.Fatal(err)
	}
	if !tombstoned {
		t.Fatal("deferred tombstone did not run after the pin drained")
	}
	if err := vs.Read(old, buf); err == nil {
		t.Fatal("read of reclaimed page succeeded")
	}
	if _, pins, pending := vs.GCStats(); pins != 0 || pending != 0 {
		t.Fatalf("GCStats after reclaim pins=%d pending=%d, want 0/0", pins, pending)
	}
}

func TestVersionedFreshFreeIsImmediate(t *testing.T) {
	inner := NewMemStore()
	vs := NewVersionedStore(inner, 0)
	id, _ := vs.Alloc()
	if err := vs.Free(id); err != nil {
		t.Fatal(err)
	}
	if n := inner.NumPages(); n != 0 {
		t.Fatalf("fresh free left %d live pages", n)
	}
	if _, _, pending := vs.GCStats(); pending != 0 {
		t.Fatalf("fresh free deferred %d pages", pending)
	}
}

func TestVersionedRollback(t *testing.T) {
	inner := NewMemStore()
	vs := NewVersionedStore(inner, 0)
	committed, _ := vs.Alloc()
	if err := vs.Write(committed, fill(3)); err != nil {
		t.Fatal(err)
	}
	if err := vs.Commit(nil); err != nil {
		t.Fatal(err)
	}

	// A failed batch: one shadow page allocated, the committed page retired.
	shadow, _ := vs.Alloc()
	if err := vs.Write(shadow, fill(4)); err != nil {
		t.Fatal(err)
	}
	if err := vs.Free(committed); err != nil {
		t.Fatal(err)
	}
	if err := vs.Rollback(); err != nil {
		t.Fatal(err)
	}

	// The shadow page is gone, the committed page is intact and writable
	// only via COW (its deferred free was dropped).
	buf := make([]byte, PageSize)
	if err := vs.Read(committed, buf); err != nil || buf[0] != 3 {
		t.Fatalf("committed page after rollback: err=%v buf[0]=%d", err, buf[0])
	}
	if err := vs.Read(shadow, buf); err == nil {
		t.Fatal("shadow page survived rollback")
	}
	if _, _, pending := vs.GCStats(); pending != 0 {
		t.Fatalf("rollback left %d pending pages", pending)
	}
	if err := vs.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := vs.Read(committed, buf); err != nil || buf[0] != 3 {
		t.Fatalf("committed page after post-rollback commit: err=%v buf[0]=%d", err, buf[0])
	}
}

func TestVersionedTombstonesCoalescePerPage(t *testing.T) {
	vs := NewVersionedStore(NewMemStore(), 0)
	calls := 0
	slotsSeen := 0
	vs.SetTombstoner(func(page PageID, slots []uint16) error {
		calls++
		slotsSeen += len(slots)
		return nil
	})
	// Five records die on page 7, two on page 9, all in one epoch.
	for slot := uint16(0); slot < 5; slot++ {
		vs.DeferTombstone(7, slot)
	}
	vs.DeferTombstone(9, 0)
	vs.DeferTombstone(9, 1)
	if info := vs.GCInfo(); info.PendingTombstones != 7 {
		t.Fatalf("pending tombstones %d, want 7", info.PendingTombstones)
	}
	if err := vs.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if calls != 2 || slotsSeen != 7 {
		t.Fatalf("tombstoner ran %d times over %d slots, want one r-m-w per page: 2/7", calls, slotsSeen)
	}
	info := vs.GCInfo()
	if info.PendingTombstones != 0 || info.ReclaimedTombstones != 7 {
		t.Fatalf("after commit: pending %d reclaimed %d, want 0/7", info.PendingTombstones, info.ReclaimedTombstones)
	}
}

func TestVersionedBudgetedReclaimPreservesOrder(t *testing.T) {
	inner := NewMemStore()
	vs := NewVersionedStore(inner, 0)
	// Two committed epochs, each retiring two pages.
	var retired []PageID
	for e := 0; e < 2; e++ {
		var fresh []PageID
		for i := 0; i < 2; i++ {
			id, _ := vs.Alloc()
			if err := vs.Write(id, fill(byte(e+1))); err != nil {
				t.Fatal(err)
			}
			fresh = append(fresh, id)
		}
		if err := vs.Commit(nil); err != nil {
			t.Fatal(err)
		}
		// Pin blocks the drain so the frees queue up across commits.
		_, _, release := vs.Pin()
		for _, id := range fresh {
			if err := vs.Free(id); err != nil {
				t.Fatal(err)
			}
		}
		retired = append(retired, fresh...)
		if err := vs.Commit(nil); err != nil {
			t.Fatal(err)
		}
		release()
	}
	// The second epoch's pin blocked its drain; 2 pages from each round may
	// remain. Reclaim with budget 1 three times: pages must drain oldest
	// epoch first, remainder requeued.
	info := vs.GCInfo()
	if info.PendingPages == 0 {
		t.Skip("all garbage drained eagerly; nothing to budget")
	}
	start := info.ReclaimedPages
	for vs.GCInfo().PendingPages > 0 {
		before := vs.GCInfo().PendingPages
		if n := vs.reclaimSome(1); n != 1 {
			t.Fatalf("budget-1 tick reclaimed %d ops", n)
		}
		if after := vs.GCInfo().PendingPages; after != before-1 {
			t.Fatalf("pending went %d -> %d on a budget-1 tick", before, after)
		}
	}
	if got := vs.GCInfo().ReclaimedPages - start; got == 0 {
		t.Fatal("no pages reclaimed")
	}
	for _, id := range retired {
		buf := make([]byte, PageSize)
		if err := vs.Read(id, buf); err == nil {
			t.Fatalf("retired page %d still readable after full drain", id)
		}
	}
}

func TestVersionedBackgroundReclaimerDrainsWhileIdle(t *testing.T) {
	inner := NewMemStore()
	vs := NewVersionedStore(inner, 0)
	vs.StartReclaimer(time.Millisecond, 4)
	defer vs.StopReclaimer()
	vs.StartReclaimer(time.Millisecond, 4) // idempotent
	if !vs.ReclaimerRunning() {
		t.Fatal("reclaimer not running")
	}
	// Retire 20 pages across several epochs; Commit must NOT drain inline
	// while the reclaimer runs, and the reclaimer must drain them all with
	// no further writer activity.
	for e := 0; e < 5; e++ {
		var fresh []PageID
		for i := 0; i < 4; i++ {
			id, _ := vs.Alloc()
			if err := vs.Write(id, fill(9)); err != nil {
				t.Fatal(err)
			}
			fresh = append(fresh, id)
		}
		if err := vs.Commit(nil); err != nil {
			t.Fatal(err)
		}
		for _, id := range fresh {
			if err := vs.Free(id); err != nil {
				t.Fatal(err)
			}
		}
		if err := vs.Commit(nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		info := vs.GCInfo()
		if info.PendingPages == 0 && info.PendingTombstones == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reclaimer did not drain: %+v", info)
		}
		time.Sleep(time.Millisecond)
	}
	if n := inner.NumPages(); n != 0 {
		t.Fatalf("%d pages live after idle drain", n)
	}
	vs.StopReclaimer()
	vs.StopReclaimer() // idempotent
	if vs.ReclaimerRunning() {
		t.Fatal("reclaimer still running after stop")
	}
}

func TestVersionedCommitPublishesStateAtomically(t *testing.T) {
	vs := NewVersionedStore(NewMemStore(), 5)
	if e := vs.Epoch(); e != 5 {
		t.Fatalf("seeded epoch %d, want 5", e)
	}
	vs.SeedState("recovered")
	st, epoch, release := vs.Pin()
	if st != "recovered" || epoch != 5 {
		t.Fatalf("pin got (%v, %d), want (recovered, 5)", st, epoch)
	}
	release()
	if err := vs.Commit("next"); err != nil {
		t.Fatal(err)
	}
	st, epoch, release = vs.Pin()
	defer release()
	if st != "next" || epoch != 6 {
		t.Fatalf("pin got (%v, %d), want (next, 6)", st, epoch)
	}
}
